// Serving throughput: micro-batched multi-threaded serving vs. the naive
// one-request-at-a-time loop, on the same model and the same request
// stream.
//
// For each (workers, max_batch) configuration, P producer threads submit
// the full request set through the MicroBatcher and we measure wall-clock
// requests/sec; the baseline serves the same requests sequentially through
// InferenceSession::Predict. The table reports throughput, speedup over
// the baseline, achieved mean batch size, and latency percentiles.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "bench/bench_common.h"
#include "check/sentinel.h"
#include "core/rnp.h"
#include "net/client.h"
#include "net/http.h"
#include "net/routes.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace_context.h"
#include "serve/batcher.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "serve/thread_pool.h"
#include "sync/mutex.h"

namespace {

using namespace dar;

/// Deterministic request stream drawn from the dataset vocabulary.
std::vector<std::string> BuildRequests(
    const datasets::SyntheticDataset& dataset, size_t count, uint64_t seed) {
  std::vector<std::string> requests;
  requests.reserve(count);
  Pcg32 rng(seed, 17);
  for (size_t i = 0; i < count; ++i) {
    int len = 12 + static_cast<int>(rng.Below(20));
    std::string text;
    for (int t = 0; t < len; ++t) {
      if (t) text += ' ';
      int64_t id = 2 + static_cast<int64_t>(rng.Below(
                           static_cast<uint32_t>(dataset.vocab.size() - 2)));
      text += dataset.vocab.Token(id);
    }
    requests.push_back(text);
  }
  return requests;
}

double MeasureNaive(const serve::InferenceSession& session,
                    const std::vector<std::string>& requests) {
  auto start = std::chrono::steady_clock::now();
  for (const std::string& text : requests) session.Predict(text);
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(requests.size()) / elapsed.count();
}

double MeasureBatched(const serve::InferenceSession& session,
                      const std::vector<std::string>& requests,
                      const serve::BatcherConfig& config, int num_producers) {
  serve::MicroBatcher batcher(session, config);
  std::vector<std::future<serve::InferenceResult>> futures(requests.size());

  auto start = std::chrono::steady_clock::now();
  {
    serve::ThreadPool producers(num_producers);
    size_t per_producer =
        (requests.size() + static_cast<size_t>(num_producers) - 1) /
        static_cast<size_t>(num_producers);
    for (int p = 0; p < num_producers; ++p) {
      size_t begin = static_cast<size_t>(p) * per_producer;
      size_t end = std::min(begin + per_producer, requests.size());
      producers.Submit([&, begin, end] {
        for (size_t i = begin; i < end; ++i) {
          futures[i] = batcher.Submit(requests[i]);
        }
      });
    }
    producers.Wait();
  }
  for (std::future<serve::InferenceResult>& f : futures) f.get();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(requests.size()) / elapsed.count();
}

/// Median-of-N rate with the rep-to-rep spread ((max-min)/median, percent)
/// recorded alongside. The overhead gates below compare two arms whose true
/// difference is a couple percent; a better-of-2 estimator lets one noisy
/// rep on either side swing the verdict (the sentinel-off gate once read
/// 5% purely from scheduler noise). The median is robust to a disturbed
/// rep, and the spread states how much the verdict can be trusted: an
/// overhead reading well inside the spread is noise, not regression.
struct RepeatedRate {
  double median = 0.0;
  double spread_pct = 0.0;
};

RepeatedRate MedianOf(std::vector<double> rates) {
  std::sort(rates.begin(), rates.end());
  RepeatedRate out;
  out.median = rates[rates.size() / 2];
  if (out.median > 0.0) {
    out.spread_pct = (rates.back() - rates.front()) / out.median * 100.0;
  }
  return out;
}

/// Gate verdict that uses the recorded spreads: a reading over the 2%
/// threshold but inside the combined rep-to-rep spread of the two arms
/// being compared is indistinguishable from noise and must not read as a
/// regression (nor as a clean pass — it reads as an inconclusive run).
const char* GateVerdict(double overhead_pct, const RepeatedRate& baseline,
                        const RepeatedRate& arm) {
  if (overhead_pct <= 2.0) return "  PASS <= 2%";
  if (overhead_pct <= 0.5 * (baseline.spread_pct + arm.spread_pct)) {
    return "  over 2% but within rep spread — rerun to confirm";
  }
  return "  ABOVE 2%";
}

template <typename Fn>
RepeatedRate MeasureMedian(int reps, Fn&& once) {
  std::vector<double> rates;
  rates.reserve(static_cast<size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) rates.push_back(once());
  return MedianOf(std::move(rates));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Serving throughput: micro-batching x worker threads",
                     "serving-path scaling (no paper analogue)", options);

  // Throughput depends on architecture and shapes, not on trained weights:
  // an untrained RNP serves identical tensor work per request.
  datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAppearance, {.train = 50, .dev = 10, .test = 10},
      options.seed);
  core::TrainConfig config;
  config.seed = options.seed;
  auto model = std::make_unique<core::RnpModel>(
      eval::BuildEmbeddings(dataset, config), config);
  serve::InferenceSession session(std::move(model), dataset.vocab);

  size_t num_requests = options.quick ? 1500 : 4000;
  std::vector<std::string> requests =
      BuildRequests(dataset, num_requests, options.seed);

  // Warm-up, then baseline. Every configuration (naive included) is
  // measured twice and reports its better run: wall-clock on a shared
  // machine is noisy, and the minimum is the standard estimator of the
  // undisturbed cost.
  MeasureNaive(session, {requests.begin(), requests.begin() + 50});
  double naive_rps = 0.0;
  serve::StatsSnapshot naive_stats;
  for (int rep = 0; rep < 2; ++rep) {
    session.stats().Reset();
    double rps = MeasureNaive(session, requests);
    if (rps > naive_rps) {
      naive_rps = rps;
      naive_stats = session.stats().Snapshot();
    }
  }

  eval::TablePrinter table({"Config", "Req/s", "Speedup", "MeanBatch",
                            "p50us", "p95us", "p99us"});
  auto add_row = [&](const std::string& label, double rps,
                     const serve::StatsSnapshot& stats) {
    char rps_buf[32], speedup[32], mean_batch[32];
    std::snprintf(rps_buf, sizeof(rps_buf), "%.0f", rps);
    std::snprintf(speedup, sizeof(speedup), "%.2fx", rps / naive_rps);
    std::snprintf(mean_batch, sizeof(mean_batch), "%.1f",
                  stats.mean_batch_size);
    table.AddRow({label, rps_buf, speedup, mean_batch,
                  std::to_string(stats.latency_p50_us),
                  std::to_string(stats.latency_p95_us),
                  std::to_string(stats.latency_p99_us)});
  };
  add_row("naive 1-at-a-time", naive_rps, naive_stats);

  struct Arm {
    int workers;
    int64_t max_batch;
    int producers;
  };
  std::vector<Arm> arms = {{1, 1, 2},  {1, 8, 2},  {1, 32, 4}, {1, 64, 4},
                           {2, 16, 4}, {4, 32, 4}, {2, 64, 4}, {2, 128, 4}};
  double best_rps = 0.0;
  for (const Arm& arm : arms) {
    serve::BatcherConfig batcher_config;
    batcher_config.num_workers = arm.workers;
    batcher_config.max_batch = arm.max_batch;
    batcher_config.max_wait_us = 200;
    // Backpressure: cap queued requests at the batcher's length-selection
    // scan window; deeper queues only add queueing delay and cache traffic.
    batcher_config.max_queue = arm.max_batch * 8;
    double rps = 0.0;
    serve::StatsSnapshot stats;
    for (int rep = 0; rep < 2; ++rep) {
      session.stats().Reset();
      double rep_rps = MeasureBatched(session, requests, batcher_config,
                                      arm.producers);
      if (rep_rps > rps) {
        rps = rep_rps;
        stats = session.stats().Snapshot();
      }
    }
    best_rps = std::max(best_rps, rps);
    char label[64];
    std::snprintf(label, sizeof(label), "%dw x batch%lld", arm.workers,
                  static_cast<long long>(arm.max_batch));
    add_row(label, rps, stats);
  }
  table.Print();

  std::printf("\nbest micro-batched speedup over naive: %.2fx (%s)\n",
              best_rps / naive_rps,
              best_rps / naive_rps >= 4.0 ? "PASS >= 4x" : "BELOW 4x target");

  // Overhead arms on the naive path, all measured *interleaved*: each
  // round takes one rep of every arm before any arm gets its second rep,
  // so slow machine drift (thermal, co-tenants) lands on every arm
  // equally, and each arm reports the median of its reps with the
  // rep-to-rep spread alongside. The previous one-arm-at-a-time
  // better-of-2 scheme compared runs taken minutes apart; the
  // sentinel-off arm — the *same configuration* as the trace-off
  // baseline — once recorded a 5% "overhead" that was pure drift.
  //
  // Arms: baseline is the shipping default (trace kOff, sentinel kOff; a
  // Span is one relaxed atomic load, every sentinel hook one relaxed
  // load + predictable branch). kCoarse adds one steady_clock pair per
  // request; kDetailed times every matmul/GRU step/Gumbel sample.
  // sent-off duplicates the baseline configuration on purpose: it is an
  // A/A arm whose gated "overhead" measures the residual noise floor of
  // this harness — if it fails its gate, no other verdict here means
  // anything. kRecord/kTrap scan every op output and gradient; reported
  // for calibration, not gated.
  const int overhead_reps = options.quick ? 3 : 5;
  struct NaiveArm {
    const char* label;
    obs::TraceLevel level;
    check::SentinelMode mode;
    bool gated;
    RepeatedRate rate;
  };
  std::vector<NaiveArm> naive_arms = {
      {"baseline", obs::TraceLevel::kOff, check::SentinelMode::kOff, false,
       {}},
      {"coarse", obs::TraceLevel::kCoarse, check::SentinelMode::kOff, true,
       {}},
      {"detailed", obs::TraceLevel::kDetailed, check::SentinelMode::kOff,
       false, {}},
      {"sent-off", obs::TraceLevel::kOff, check::SentinelMode::kOff, true,
       {}},
      {"record", obs::TraceLevel::kOff, check::SentinelMode::kRecord, false,
       {}},
      {"trap", obs::TraceLevel::kOff, check::SentinelMode::kTrap, false, {}},
  };
  {
    std::vector<std::vector<double>> rates(naive_arms.size());
    for (int rep = 0; rep < overhead_reps; ++rep) {
      for (size_t a = 0; a < naive_arms.size(); ++a) {
        obs::SetTraceLevel(naive_arms[a].level);
        check::SetSentinelMode(naive_arms[a].mode);
        session.stats().Reset();
        rates[a].push_back(MeasureNaive(session, requests));
      }
    }
    obs::SetTraceLevel(obs::TraceLevel::kOff);
    check::SetSentinelMode(check::SentinelMode::kOff);
    check::DrainSentinelFindings();  // serving an untrained model is finite
    for (size_t a = 0; a < naive_arms.size(); ++a) {
      naive_arms[a].rate = MedianOf(std::move(rates[a]));
    }
  }
  const double baseline_rps = naive_arms[0].rate.median;
  double coarse_overhead = 0.0;
  double sentinel_off_overhead = 0.0;
  std::printf("\nspan + sentinel overhead on the naive path (interleaved,\n"
              "median of %d reps):\n",
              overhead_reps);
  std::printf("  %-9s %8.0f req/s (baseline, spread %.1f%%)\n",
              naive_arms[0].label, baseline_rps,
              naive_arms[0].rate.spread_pct);
  for (size_t a = 1; a < naive_arms.size(); ++a) {
    const NaiveArm& arm = naive_arms[a];
    const double overhead = (baseline_rps / arm.rate.median - 1.0) * 100.0;
    if (std::strcmp(arm.label, "coarse") == 0) coarse_overhead = overhead;
    if (std::strcmp(arm.label, "sent-off") == 0) {
      sentinel_off_overhead = overhead;
    }
    std::printf("  %-9s %8.0f req/s (%+.2f%% overhead, spread %.1f%%)%s\n",
                arm.label, arm.rate.median, overhead, arm.rate.spread_pct,
                arm.gated ? GateVerdict(overhead, naive_arms[0].rate, arm.rate)
                          : "");
  }

  // Serving-cache arms (serve/cache.h). A second session with identical
  // weights (same seed, same construction) carries the cache so the arms
  // above stay untouched. Four measurements:
  //   off    — cache attached but disabled: the per-batch enabled check is
  //            the only extra work, gated <= 2% against a baseline
  //            re-measured interleaved with it (same drift cancellation
  //            as the group above).
  //   cold   — enabled cache, every sequence distinct: all misses, i.e. the
  //            insert-side overhead of populating both tiers.
  //   warm   — the same stream repeated: encoder-tier hits skip both
  //            recurrent encoders, the headline speedup.
  //   prefix — perturbed stream (one word appended): encoder misses but
  //            embedding rows reuse, the partial-hit path.
  RepeatedRate cache_base_rate, cache_off_rate;
  double cache_cold_rps = 0.0, cache_warm_rps = 0.0;
  double cache_prefix_rps = 0.0, cache_hit_rate = 0.0;
  double cache_embedding_hit_rate = 0.0;
  {
    core::TrainConfig cache_config = config;
    auto cached_model = std::make_unique<core::RnpModel>(
        eval::BuildEmbeddings(dataset, cache_config), cache_config);
    serve::InferenceSession cached_session(std::move(cached_model),
                                           dataset.vocab);

    serve::CacheConfig off_config;  // enabled = false
    serve::ServeCache off_cache(off_config);
    cached_session.EnableCache(&off_cache, "bench");
    {
      std::vector<double> base_rates, off_rates;
      for (int rep = 0; rep < overhead_reps; ++rep) {
        session.stats().Reset();
        base_rates.push_back(MeasureNaive(session, requests));
        cached_session.stats().Reset();
        off_rates.push_back(MeasureNaive(cached_session, requests));
      }
      cache_base_rate = MedianOf(std::move(base_rates));
      cache_off_rate = MedianOf(std::move(off_rates));
    }

    std::vector<std::string> prefix_requests;
    prefix_requests.reserve(requests.size());
    for (const std::string& text : requests) {
      prefix_requests.push_back(text + " " + dataset.vocab.Token(2));
    }

    serve::CacheConfig on_config;
    on_config.enabled = true;
    serve::ServeCache cache(on_config);
    for (int rep = 0; rep < 2; ++rep) {
      // Re-enabling issues a fresh cache model id, so every rep starts cold.
      cached_session.EnableCache(&cache, "bench");
      serve::ServeCache::ModelId id = cached_session.cache_model_id();
      cache_cold_rps = std::max(cache_cold_rps,
                                MeasureNaive(cached_session, requests));
      serve::CacheTierStats enc_before =
          cache.Stats(id, serve::ServeCache::kEncoderTierName);
      double warm = MeasureNaive(cached_session, requests);
      if (warm > cache_warm_rps) {
        cache_warm_rps = warm;
        serve::CacheTierStats enc_after =
            cache.Stats(id, serve::ServeCache::kEncoderTierName);
        int64_t hits = enc_after.hits - enc_before.hits;
        int64_t misses = enc_after.misses - enc_before.misses;
        cache_hit_rate = static_cast<double>(hits) /
                         static_cast<double>(std::max<int64_t>(1, hits + misses));
      }
      serve::CacheTierStats emb_before =
          cache.Stats(id, serve::ServeCache::kEmbeddingTierName);
      double prefix = MeasureNaive(cached_session, prefix_requests);
      if (prefix > cache_prefix_rps) {
        cache_prefix_rps = prefix;
        serve::CacheTierStats emb_after =
            cache.Stats(id, serve::ServeCache::kEmbeddingTierName);
        int64_t hits = emb_after.hits - emb_before.hits;
        int64_t misses = emb_after.misses - emb_before.misses;
        cache_embedding_hit_rate =
            static_cast<double>(hits) /
            static_cast<double>(std::max<int64_t>(1, hits + misses));
      }
      cache.InvalidateModel(id);
    }
  }
  const double cache_off_overhead =
      (cache_base_rate.median / cache_off_rate.median - 1.0) * 100.0;
  std::printf("\nserving cache (naive path; gated off arm interleaved with a\n"
              "fresh baseline, median of %d reps; speedup arms better of 2):\n",
              overhead_reps);
  std::printf("  base     %8.0f req/s (re-measured baseline, spread %.1f%%)\n",
              cache_base_rate.median, cache_base_rate.spread_pct);
  std::printf("  off      %8.0f req/s (%+.2f%% overhead, spread %.1f%%)%s\n",
              cache_off_rate.median, cache_off_overhead,
              cache_off_rate.spread_pct,
              GateVerdict(cache_off_overhead, cache_base_rate,
                          cache_off_rate));
  std::printf("  cold     %8.0f req/s (%.2fx vs naive, all misses)\n",
              cache_cold_rps, cache_cold_rps / naive_rps);
  std::printf("  warm     %8.0f req/s (%.2fx vs naive, hit rate %.3f)\n",
              cache_warm_rps, cache_warm_rps / naive_rps, cache_hit_rate);
  std::printf("  prefix   %8.0f req/s (%.2fx vs naive, embedding hit rate "
              "%.3f)\n",
              cache_prefix_rps, cache_prefix_rps / naive_rps,
              cache_embedding_hit_rate);

  // Request-tracing arms: the full router path (traceparent parsing, span
  // collection across router/batcher/session, flight-recorder Record,
  // latency exemplar) driven in-process through Router::Handle so no
  // socket noise enters. The batcher runs max_batch=1 / max_wait_us=0 so
  // no arm hides behind coalescing waits. Arms are interleaved like the
  // groups above and reported with spreads:
  //   off     — RouterConfig.tracing.enabled = false: baseline.
  //   idle    — tracing on, tail threshold 60s: the sampler retains
  //             nothing (steady-state production shape); the ring and
  //             exemplars still run every request.
  //   sampled — threshold 0: every request's span tree is retained in the
  //             tail store, the worst case.
  //
  // The <= 2% idle gate is NOT computed from these throughput arms: the
  // true per-request tracing cost is ~1us against a ~1ms predict, so the
  // ratio of two full-path arms measures machine drift, not tracing (the
  // A/A arm above shows the noise floor). Instead the absolute cost is
  // resolved by a paired-difference probe on /healthz — a route cheap
  // enough (~1us) that a long Handle loop gives sub-100ns resolution on
  // the same traced machinery (context mint, collector, root+router
  // spans, Finish, ring Record, exemplar, header) — and gated as a
  // fraction of the median traced predict request.
  RepeatedRate trace_off_rate, trace_idle_rate, trace_sampled_rate;
  double trace_cost_us = 0.0;
  {
    std::shared_ptr<serve::InferenceSession> shared_session(
        &session, [](serve::InferenceSession*) {});
    std::vector<net::HttpRequest> trace_requests;
    trace_requests.reserve(requests.size());
    for (const std::string& text : requests) {
      net::HttpRequest request;
      request.method = "POST";
      request.target = "/v1/models/bench/predict";
      request.version = "HTTP/1.1";
      request.headers = {{"content-type", "application/json"}};
      request.body =
          net::JsonValue::Object().Set("text", net::JsonValue::Str(text))
              .Dump();
      trace_requests.push_back(std::move(request));
    }
    net::RouterConfig off_config;
    off_config.tracing.enabled = false;
    net::RouterConfig idle_config;
    idle_config.tracing.tail.latency_threshold_us = 60'000'000;
    net::RouterConfig sampled_config;
    sampled_config.tracing.tail.latency_threshold_us = 0;
    serve::ModelRegistry registries[3];
    std::vector<std::unique_ptr<net::Router>> routers;
    const net::RouterConfig* configs[3] = {&off_config, &idle_config,
                                           &sampled_config};
    for (int a = 0; a < 3; ++a) {
      net::RouterConfig config = *configs[a];
      config.batcher = {.max_batch = 1, .max_wait_us = 0, .num_workers = 1,
                        .max_queue = 64};
      routers.push_back(std::make_unique<net::Router>(registries[a], config));
      routers.back()->ServeModel("bench", shared_session);
    }
    auto measure_once = [&](net::Router& router) {
      auto start = std::chrono::steady_clock::now();
      for (const net::HttpRequest& request : trace_requests) {
        net::HttpResponse response = router.Handle(request);
        if (response.status != 200) return 0.0;
      }
      std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      return static_cast<double>(trace_requests.size()) / elapsed.count();
    };
    std::vector<double> arm_rates[3];
    for (int rep = 0; rep < overhead_reps; ++rep) {
      for (int a = 0; a < 3; ++a) {
        arm_rates[a].push_back(measure_once(*routers[a]));
      }
    }
    trace_off_rate = MedianOf(std::move(arm_rates[0]));
    trace_idle_rate = MedianOf(std::move(arm_rates[1]));
    trace_sampled_rate = MedianOf(std::move(arm_rates[2]));

    // Paired-difference probe for the gate: per-request Handle cost on
    // /healthz, idle-traced minus untraced, median over reps.
    net::HttpRequest healthz;
    healthz.method = "GET";
    healthz.target = "/healthz";
    healthz.version = "HTTP/1.1";
    const int probe_requests = options.quick ? 100000 : 200000;
    auto probe_us = [&](net::Router& router) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < probe_requests; ++i) {
        net::HttpResponse response = router.Handle(healthz);
        if (response.status != 200) return -1.0;
      }
      std::chrono::duration<double, std::micro> elapsed =
          std::chrono::steady_clock::now() - start;
      return elapsed.count() / probe_requests;
    };
    probe_us(*routers[0]);  // warm both paths once
    probe_us(*routers[1]);
    std::vector<double> costs;
    for (int rep = 0; rep < overhead_reps; ++rep) {
      const double off_us = probe_us(*routers[0]);
      const double idle_us = probe_us(*routers[1]);
      costs.push_back(idle_us - off_us);
    }
    std::sort(costs.begin(), costs.end());
    trace_cost_us = costs[costs.size() / 2];
  }
  const double predict_request_us = 1e6 / trace_idle_rate.median;
  const double trace_idle_overhead_pct =
      trace_cost_us / predict_request_us * 100.0;
  const double trace_sampled_overhead =
      (trace_off_rate.median / trace_sampled_rate.median - 1.0) * 100.0;
  std::printf("\nrequest tracing through the router (interleaved, median of "
              "%d reps):\n",
              overhead_reps);
  std::printf("  off      %8.0f req/s (baseline, spread %.1f%%)\n",
              trace_off_rate.median, trace_off_rate.spread_pct);
  std::printf("  idle     %8.0f req/s (spread %.1f%%)\n",
              trace_idle_rate.median, trace_idle_rate.spread_pct);
  std::printf("  sampled  %8.0f req/s (%+.2f%% vs off, spread %.1f%%)\n",
              trace_sampled_rate.median, trace_sampled_overhead,
              trace_sampled_rate.spread_pct);
  std::printf("  idle tracing cost %.3f us/request = %.3f%% of a %.0f us "
              "predict  %s\n",
              trace_cost_us, trace_idle_overhead_pct, predict_request_us,
              trace_idle_overhead_pct <= 2.0 ? "PASS <= 2%" : "ABOVE 2%");

  // Micro-rates for the two always-on tracing consumers, so a regression in
  // either shows up directly instead of inside the 2% envelope above.
  double ring_record_per_sec = 0.0;
  double exemplar_observe_per_sec = 0.0;
  {
    obs::TraceCollector collector(obs::MakeTraceContext());
    {
      obs::ScopedActiveCollector guard(&collector);
      obs::Span span("serve.forward");
    }
    obs::CompletedTrace trace = collector.Finish("predict", "bench", 200);
    obs::FlightRecorder ring;
    constexpr int kRingOps = 200000;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kRingOps; ++i) ring.Record(trace);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    ring_record_per_sec = kRingOps / elapsed.count();

    obs::Histogram hist(obs::DurationBucketsUs());
    constexpr int kObserveOps = 1000000;
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < kObserveOps; ++i) {
      hist.ObserveWithExemplar(static_cast<double>(i % 5000), 0xbe, 0xef);
    }
    elapsed = std::chrono::steady_clock::now() - start;
    exemplar_observe_per_sec = kObserveOps / elapsed.count();
  }
  std::printf("  ring Record          %12.0f ops/s\n", ring_record_per_sec);
  std::printf("  ObserveWithExemplar  %12.0f ops/s\n",
              exemplar_observe_per_sec);

  // Sync-layer arms (sync/mutex.h): the runtime gates of the annotated
  // mutex wrapper, measured on the *batched* path where its locks are
  // actually hot (batcher queue, thread pool, stats). The gate loads are
  // compiled in unconditionally, so sync-off is an A/A arm against an
  // interleaved baseline of the identical configuration — its gated
  // "overhead" is the off-mode cost of the wrapper plus the harness noise
  // floor, and <= 2% is the ship criterion. rank / contention / both
  // price the diagnostic modes (not gated: they are opt-in debugging).
  RepeatedRate sync_base_rate, sync_off_rate, sync_rank_rate;
  RepeatedRate sync_contention_rate, sync_both_rate;
  double sync_lock_pair_off_ns = 0.0;
  double sync_lock_pair_tracked_ns = 0.0;
  {
    serve::BatcherConfig sync_batcher;
    sync_batcher.num_workers = 2;
    sync_batcher.max_batch = 16;
    sync_batcher.max_wait_us = 200;
    sync_batcher.max_queue = 128;
    struct SyncArm {
      bool rank;
      bool contention;
      std::vector<double> rates;
    };
    SyncArm sync_arms[5] = {{false, false, {}},  // base
                            {false, false, {}},  // off (A/A, gated)
                            {true, false, {}},   // rank checks
                            {false, true, {}},   // contention tracking
                            {true, true, {}}};   // both
    for (int rep = 0; rep < overhead_reps; ++rep) {
      for (SyncArm& arm : sync_arms) {
        sync::SetLockRankCheck(arm.rank);
        sync::SetContentionTracking(arm.contention);
        session.stats().Reset();
        arm.rates.push_back(
            MeasureBatched(session, requests, sync_batcher, 4));
      }
    }
    sync::SetLockRankCheck(false);
    sync::SetContentionTracking(false);
    sync_base_rate = MedianOf(std::move(sync_arms[0].rates));
    sync_off_rate = MedianOf(std::move(sync_arms[1].rates));
    sync_rank_rate = MedianOf(std::move(sync_arms[2].rates));
    sync_contention_rate = MedianOf(std::move(sync_arms[3].rates));
    sync_both_rate = MedianOf(std::move(sync_arms[4].rates));

    // Micro-probe: an uncontended Lock/Unlock pair, off-mode vs with
    // contention tracking armed. Resolves the wrapper's absolute cost
    // (two relaxed loads + branch off-mode; one try_lock extra when
    // tracking) below what the throughput arms can see.
    sync::Mutex probe_mu(sync::Rank::kStats, "bench.lock_probe");
    constexpr int kLockOps = 2000000;
    auto pair_ns = [&probe_mu] {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kLockOps; ++i) {
        probe_mu.Lock();
        probe_mu.Unlock();
      }
      std::chrono::duration<double, std::nano> elapsed =
          std::chrono::steady_clock::now() - start;
      return elapsed.count() / kLockOps;
    };
    pair_ns();  // warm
    sync_lock_pair_off_ns = pair_ns();
    sync::SetContentionTracking(true);
    sync_lock_pair_tracked_ns = pair_ns();
    sync::SetContentionTracking(false);
  }
  const double sync_off_overhead =
      (sync_base_rate.median / sync_off_rate.median - 1.0) * 100.0;
  const double sync_rank_overhead =
      (sync_base_rate.median / sync_rank_rate.median - 1.0) * 100.0;
  const double sync_contention_overhead =
      (sync_base_rate.median / sync_contention_rate.median - 1.0) * 100.0;
  const double sync_both_overhead =
      (sync_base_rate.median / sync_both_rate.median - 1.0) * 100.0;
  std::printf("\nsync layer on the batched path (interleaved, median of %d "
              "reps):\n",
              overhead_reps);
  std::printf("  base        %8.0f req/s (baseline, spread %.1f%%)\n",
              sync_base_rate.median, sync_base_rate.spread_pct);
  std::printf("  off         %8.0f req/s (%+.2f%% overhead, spread %.1f%%)%s\n",
              sync_off_rate.median, sync_off_overhead,
              sync_off_rate.spread_pct,
              GateVerdict(sync_off_overhead, sync_base_rate, sync_off_rate));
  std::printf("  rank        %8.0f req/s (%+.2f%% overhead, spread %.1f%%)\n",
              sync_rank_rate.median, sync_rank_overhead,
              sync_rank_rate.spread_pct);
  std::printf("  contention  %8.0f req/s (%+.2f%% overhead, spread %.1f%%)\n",
              sync_contention_rate.median, sync_contention_overhead,
              sync_contention_rate.spread_pct);
  std::printf("  both        %8.0f req/s (%+.2f%% overhead, spread %.1f%%)\n",
              sync_both_rate.median, sync_both_overhead,
              sync_both_rate.spread_pct);
  std::printf("  Lock/Unlock pair  %6.1f ns off-mode, %6.1f ns tracked "
              "(uncontended)\n",
              sync_lock_pair_off_ns, sync_lock_pair_tracked_ns);

  // HTTP loopback arm: the same request stream through the whole network
  // front — parser, router, micro-batcher — over real loopback sockets
  // with keep-alive clients. The gap to the best in-process batched arm is
  // the cost of the HTTP layer itself (syscalls, framing, JSON).
  double http_rps = 0.0;
  {
    // The router rebinds the session's stats under a {model=...} label
    // into its own metrics registry; ~ModelRegistry restores the binding
    // when this scope ends, so the outliving session's stats stay valid.
    // Non-owning alias: the session outlives the registry.
    std::shared_ptr<serve::InferenceSession> shared_session(
        &session, [](serve::InferenceSession*) {});
    serve::ModelRegistry registry;
    net::RouterConfig router_config;
    router_config.batcher = {.max_batch = 32,
                             .max_wait_us = 200,
                             .num_workers = 2,
                             .max_queue = 256};
    net::Router router(registry, router_config);
    router.ServeModel("bench", shared_session);
    net::ServerConfig server_config;
    server_config.num_threads = 4;
    net::HttpServer server(router.AsHandler(), server_config);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "http loopback arm skipped: %s\n", error.c_str());
    } else {
      std::vector<std::string> bodies;
      bodies.reserve(requests.size());
      for (const std::string& text : requests) {
        bodies.push_back(
            net::JsonValue::Object().Set("text", net::JsonValue::Str(text))
                .Dump());
      }
      constexpr int kClients = 4;
      for (int rep = 0; rep < 2; ++rep) {
        std::atomic<size_t> failures{0};
        auto start = std::chrono::steady_clock::now();
        {
          serve::ThreadPool clients(kClients);
          for (int c = 0; c < kClients; ++c) {
            clients.Submit([&, c] {
              net::HttpClient client("127.0.0.1", server.port());
              for (size_t i = static_cast<size_t>(c); i < bodies.size();
                   i += kClients) {
                auto response =
                    client.Post("/v1/models/bench/predict", bodies[i]);
                if (!response.has_value() || response->status != 200) {
                  failures.fetch_add(1);
                }
              }
            });
          }
          clients.Wait();
        }
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        if (failures.load() != 0) {
          std::fprintf(stderr, "http loopback arm: %zu failed requests\n",
                       failures.load());
        }
        http_rps = std::max(
            http_rps, static_cast<double>(requests.size()) / elapsed.count());
      }
      server.Stop();
      std::printf("\nhttp loopback (%d keep-alive clients): %.0f req/s "
                  "(%.1f%% of best in-process batched)\n",
                  kClients, http_rps, 100.0 * http_rps / best_rps);
    }
  }

  bench::BenchJsonWriter json("serve_throughput", options);
  json.Field("requests", static_cast<int64_t>(num_requests));
  json.Field("naive_rps", naive_rps, 2);
  json.Field("best_batched_rps", best_rps, 2);
  json.Field("best_speedup", best_rps / naive_rps);
  json.Field("overhead_reps", static_cast<int64_t>(overhead_reps));
  json.Field("span_overhead_off_rps", naive_arms[0].rate.median, 2);
  json.Field("span_overhead_off_spread_pct", naive_arms[0].rate.spread_pct,
             2);
  json.Field("span_overhead_coarse_rps", naive_arms[1].rate.median, 2);
  json.Field("span_overhead_coarse_spread_pct", naive_arms[1].rate.spread_pct,
             2);
  json.Field("span_overhead_detailed_rps", naive_arms[2].rate.median, 2);
  json.Field("span_overhead_coarse_pct", coarse_overhead, 2);
  json.Field("sentinel_overhead_off_rps", naive_arms[3].rate.median, 2);
  json.Field("sentinel_overhead_off_spread_pct",
             naive_arms[3].rate.spread_pct, 2);
  json.Field("sentinel_overhead_record_rps", naive_arms[4].rate.median, 2);
  json.Field("sentinel_overhead_trap_rps", naive_arms[5].rate.median, 2);
  json.Field("sentinel_overhead_off_pct", sentinel_off_overhead, 2);
  json.Field("cache_base_rps", cache_base_rate.median, 2);
  json.Field("cache_base_spread_pct", cache_base_rate.spread_pct, 2);
  json.Field("cache_off_rps", cache_off_rate.median, 2);
  json.Field("cache_off_spread_pct", cache_off_rate.spread_pct, 2);
  json.Field("cache_off_overhead_pct", cache_off_overhead, 2);
  json.Field("cache_cold_rps", cache_cold_rps, 2);
  json.Field("cache_warm_rps", cache_warm_rps, 2);
  json.Field("cache_warm_speedup", cache_warm_rps / naive_rps);
  json.Field("cache_hit_rate", cache_hit_rate);
  json.Field("cache_prefix_rps", cache_prefix_rps, 2);
  json.Field("cache_embedding_hit_rate", cache_embedding_hit_rate);
  json.Field("trace_off_rps", trace_off_rate.median, 2);
  json.Field("trace_off_spread_pct", trace_off_rate.spread_pct, 2);
  json.Field("trace_idle_rps", trace_idle_rate.median, 2);
  json.Field("trace_idle_spread_pct", trace_idle_rate.spread_pct, 2);
  json.Field("trace_cost_us", trace_cost_us);
  json.Field("trace_idle_overhead_pct", trace_idle_overhead_pct, 2);
  json.Field("trace_sampled_rps", trace_sampled_rate.median, 2);
  json.Field("trace_sampled_overhead_pct", trace_sampled_overhead, 2);
  json.Field("flight_recorder_record_per_sec", ring_record_per_sec, 0);
  json.Field("exemplar_observe_per_sec", exemplar_observe_per_sec, 0);
  json.Field("sync_base_rps", sync_base_rate.median, 2);
  json.Field("sync_base_spread_pct", sync_base_rate.spread_pct, 2);
  json.Field("sync_off_rps", sync_off_rate.median, 2);
  json.Field("sync_off_spread_pct", sync_off_rate.spread_pct, 2);
  json.Field("sync_off_overhead_pct", sync_off_overhead, 2);
  json.Field("sync_rank_rps", sync_rank_rate.median, 2);
  json.Field("sync_rank_overhead_pct", sync_rank_overhead, 2);
  json.Field("sync_contention_rps", sync_contention_rate.median, 2);
  json.Field("sync_contention_overhead_pct", sync_contention_overhead, 2);
  json.Field("sync_both_rps", sync_both_rate.median, 2);
  json.Field("sync_both_overhead_pct", sync_both_overhead, 2);
  json.Field("sync_lock_pair_off_ns", sync_lock_pair_off_ns, 2);
  json.Field("sync_lock_pair_tracked_ns", sync_lock_pair_tracked_ns, 2);
  json.Field("http_loopback_rps", http_rps, 2);
  json.Field("http_loopback_fraction_of_best", http_rps / best_rps);
  if (json.Write("BENCH_serve_throughput.json")) {
    std::printf("\nwrote BENCH_serve_throughput.json\n");
  }
  return 0;
}
