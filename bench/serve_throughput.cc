// Serving throughput: micro-batched multi-threaded serving vs. the naive
// one-request-at-a-time loop, on the same model and the same request
// stream.
//
// For each (workers, max_batch) configuration, P producer threads submit
// the full request set through the MicroBatcher and we measure wall-clock
// requests/sec; the baseline serves the same requests sequentially through
// InferenceSession::Predict. The table reports throughput, speedup over
// the baseline, achieved mean batch size, and latency percentiles.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "bench/bench_common.h"
#include "check/sentinel.h"
#include "core/rnp.h"
#include "net/client.h"
#include "net/http.h"
#include "net/routes.h"
#include "net/server.h"
#include "serve/batcher.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "serve/thread_pool.h"

namespace {

using namespace dar;

/// Deterministic request stream drawn from the dataset vocabulary.
std::vector<std::string> BuildRequests(
    const datasets::SyntheticDataset& dataset, size_t count, uint64_t seed) {
  std::vector<std::string> requests;
  requests.reserve(count);
  Pcg32 rng(seed, 17);
  for (size_t i = 0; i < count; ++i) {
    int len = 12 + static_cast<int>(rng.Below(20));
    std::string text;
    for (int t = 0; t < len; ++t) {
      if (t) text += ' ';
      int64_t id = 2 + static_cast<int64_t>(rng.Below(
                           static_cast<uint32_t>(dataset.vocab.size() - 2)));
      text += dataset.vocab.Token(id);
    }
    requests.push_back(text);
  }
  return requests;
}

double MeasureNaive(const serve::InferenceSession& session,
                    const std::vector<std::string>& requests) {
  auto start = std::chrono::steady_clock::now();
  for (const std::string& text : requests) session.Predict(text);
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(requests.size()) / elapsed.count();
}

double MeasureBatched(const serve::InferenceSession& session,
                      const std::vector<std::string>& requests,
                      const serve::BatcherConfig& config, int num_producers) {
  serve::MicroBatcher batcher(session, config);
  std::vector<std::future<serve::InferenceResult>> futures(requests.size());

  auto start = std::chrono::steady_clock::now();
  {
    serve::ThreadPool producers(num_producers);
    size_t per_producer =
        (requests.size() + static_cast<size_t>(num_producers) - 1) /
        static_cast<size_t>(num_producers);
    for (int p = 0; p < num_producers; ++p) {
      size_t begin = static_cast<size_t>(p) * per_producer;
      size_t end = std::min(begin + per_producer, requests.size());
      producers.Submit([&, begin, end] {
        for (size_t i = begin; i < end; ++i) {
          futures[i] = batcher.Submit(requests[i]);
        }
      });
    }
    producers.Wait();
  }
  for (std::future<serve::InferenceResult>& f : futures) f.get();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(requests.size()) / elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Serving throughput: micro-batching x worker threads",
                     "serving-path scaling (no paper analogue)", options);

  // Throughput depends on architecture and shapes, not on trained weights:
  // an untrained RNP serves identical tensor work per request.
  datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAppearance, {.train = 50, .dev = 10, .test = 10},
      options.seed);
  core::TrainConfig config;
  config.seed = options.seed;
  auto model = std::make_unique<core::RnpModel>(
      eval::BuildEmbeddings(dataset, config), config);
  serve::InferenceSession session(std::move(model), dataset.vocab);

  size_t num_requests = options.quick ? 1500 : 4000;
  std::vector<std::string> requests =
      BuildRequests(dataset, num_requests, options.seed);

  // Warm-up, then baseline. Every configuration (naive included) is
  // measured twice and reports its better run: wall-clock on a shared
  // machine is noisy, and the minimum is the standard estimator of the
  // undisturbed cost.
  MeasureNaive(session, {requests.begin(), requests.begin() + 50});
  double naive_rps = 0.0;
  serve::StatsSnapshot naive_stats;
  for (int rep = 0; rep < 2; ++rep) {
    session.stats().Reset();
    double rps = MeasureNaive(session, requests);
    if (rps > naive_rps) {
      naive_rps = rps;
      naive_stats = session.stats().Snapshot();
    }
  }

  eval::TablePrinter table({"Config", "Req/s", "Speedup", "MeanBatch",
                            "p50us", "p95us", "p99us"});
  auto add_row = [&](const std::string& label, double rps,
                     const serve::StatsSnapshot& stats) {
    char rps_buf[32], speedup[32], mean_batch[32];
    std::snprintf(rps_buf, sizeof(rps_buf), "%.0f", rps);
    std::snprintf(speedup, sizeof(speedup), "%.2fx", rps / naive_rps);
    std::snprintf(mean_batch, sizeof(mean_batch), "%.1f",
                  stats.mean_batch_size);
    table.AddRow({label, rps_buf, speedup, mean_batch,
                  std::to_string(stats.latency_p50_us),
                  std::to_string(stats.latency_p95_us),
                  std::to_string(stats.latency_p99_us)});
  };
  add_row("naive 1-at-a-time", naive_rps, naive_stats);

  struct Arm {
    int workers;
    int64_t max_batch;
    int producers;
  };
  std::vector<Arm> arms = {{1, 1, 2},  {1, 8, 2},  {1, 32, 4}, {1, 64, 4},
                           {2, 16, 4}, {4, 32, 4}, {2, 64, 4}, {2, 128, 4}};
  double best_rps = 0.0;
  for (const Arm& arm : arms) {
    serve::BatcherConfig batcher_config;
    batcher_config.num_workers = arm.workers;
    batcher_config.max_batch = arm.max_batch;
    batcher_config.max_wait_us = 200;
    // Backpressure: cap queued requests at the batcher's length-selection
    // scan window; deeper queues only add queueing delay and cache traffic.
    batcher_config.max_queue = arm.max_batch * 8;
    double rps = 0.0;
    serve::StatsSnapshot stats;
    for (int rep = 0; rep < 2; ++rep) {
      session.stats().Reset();
      double rep_rps = MeasureBatched(session, requests, batcher_config,
                                      arm.producers);
      if (rep_rps > rps) {
        rps = rep_rps;
        stats = session.stats().Snapshot();
      }
    }
    best_rps = std::max(best_rps, rps);
    char label[64];
    std::snprintf(label, sizeof(label), "%dw x batch%lld", arm.workers,
                  static_cast<long long>(arm.max_batch));
    add_row(label, rps, stats);
  }
  table.Print();

  std::printf("\nbest micro-batched speedup over naive: %.2fx (%s)\n",
              best_rps / naive_rps,
              best_rps / naive_rps >= 4.0 ? "PASS >= 4x" : "BELOW 4x target");

  // Span overhead: the naive path re-measured at every trace level, better
  // of two reps each. kOff is the shipping default (a Span is one relaxed
  // atomic load); kCoarse adds one steady_clock pair per request; kDetailed
  // times every matmul/GRU step/Gumbel sample inside the forward.
  struct OverheadArm {
    const char* label;
    obs::TraceLevel level;
    double rps = 0.0;
  };
  std::vector<OverheadArm> levels = {{"off", obs::TraceLevel::kOff},
                                     {"coarse", obs::TraceLevel::kCoarse},
                                     {"detailed", obs::TraceLevel::kDetailed}};
  for (OverheadArm& arm : levels) {
    obs::SetTraceLevel(arm.level);
    for (int rep = 0; rep < 2; ++rep) {
      session.stats().Reset();
      arm.rps = std::max(arm.rps, MeasureNaive(session, requests));
    }
  }
  obs::SetTraceLevel(obs::TraceLevel::kOff);
  std::printf("\nspan overhead on the naive path (better of 2 reps):\n");
  std::printf("  off      %8.0f req/s (baseline)\n", levels[0].rps);
  double coarse_overhead = 0.0;
  for (size_t i = 1; i < levels.size(); ++i) {
    const double overhead = (levels[0].rps / levels[i].rps - 1.0) * 100.0;
    if (i == 1) coarse_overhead = overhead;
    std::printf("  %-8s %8.0f req/s (%+.2f%% overhead)%s\n", levels[i].label,
                levels[i].rps, overhead,
                i == 1 ? (overhead <= 2.0 ? "  PASS <= 2%" : "  ABOVE 2%")
                       : "");
  }

  // Sentinel overhead: the same naive path re-measured at every sentinel
  // mode. kOff is the shipping default — every hook (Tensor::Scratch,
  // MakeOpResult, Backward) is one relaxed atomic load and a predictable
  // branch, which the <= 2% gate below guards against regression. kRecord
  // and kTrap scan every op output and every gradient, so their cost is
  // reported for calibration, not gated.
  struct SentinelArm {
    const char* label;
    check::SentinelMode mode;
    double rps = 0.0;
  };
  std::vector<SentinelArm> sentinel_arms = {
      {"off", check::SentinelMode::kOff},
      {"record", check::SentinelMode::kRecord},
      {"trap", check::SentinelMode::kTrap}};
  for (SentinelArm& arm : sentinel_arms) {
    check::SetSentinelMode(arm.mode);
    for (int rep = 0; rep < 2; ++rep) {
      session.stats().Reset();
      arm.rps = std::max(arm.rps, MeasureNaive(session, requests));
    }
  }
  check::SetSentinelMode(check::SentinelMode::kOff);
  check::DrainSentinelFindings();  // serving an untrained model is finite
  const double sentinel_off_overhead =
      (levels[0].rps / sentinel_arms[0].rps - 1.0) * 100.0;
  std::printf("\nsentinel overhead on the naive path (better of 2 reps,\n"
              "baseline = trace-off arm above):\n");
  for (const SentinelArm& arm : sentinel_arms) {
    const double overhead = (levels[0].rps / arm.rps - 1.0) * 100.0;
    std::printf("  %-8s %8.0f req/s (%+.2f%% overhead)%s\n", arm.label,
                arm.rps, overhead,
                arm.mode == check::SentinelMode::kOff
                    ? (overhead <= 2.0 ? "  PASS <= 2%" : "  ABOVE 2%")
                    : "");
  }

  // Serving-cache arms (serve/cache.h). A second session with identical
  // weights (same seed, same construction) carries the cache so the arms
  // above stay untouched. Four measurements:
  //   off    — cache attached but disabled: the per-batch enabled check is
  //            the only extra work, gated <= 2% against the trace-off arm.
  //   cold   — enabled cache, every sequence distinct: all misses, i.e. the
  //            insert-side overhead of populating both tiers.
  //   warm   — the same stream repeated: encoder-tier hits skip both
  //            recurrent encoders, the headline speedup.
  //   prefix — perturbed stream (one word appended): encoder misses but
  //            embedding rows reuse, the partial-hit path.
  double cache_off_rps = 0.0, cache_cold_rps = 0.0, cache_warm_rps = 0.0;
  double cache_prefix_rps = 0.0, cache_hit_rate = 0.0;
  double cache_embedding_hit_rate = 0.0;
  {
    core::TrainConfig cache_config = config;
    auto cached_model = std::make_unique<core::RnpModel>(
        eval::BuildEmbeddings(dataset, cache_config), cache_config);
    serve::InferenceSession cached_session(std::move(cached_model),
                                           dataset.vocab);

    serve::CacheConfig off_config;  // enabled = false
    serve::ServeCache off_cache(off_config);
    cached_session.EnableCache(&off_cache, "bench");
    for (int rep = 0; rep < 2; ++rep) {
      cached_session.stats().Reset();
      cache_off_rps = std::max(cache_off_rps,
                               MeasureNaive(cached_session, requests));
    }

    std::vector<std::string> prefix_requests;
    prefix_requests.reserve(requests.size());
    for (const std::string& text : requests) {
      prefix_requests.push_back(text + " " + dataset.vocab.Token(2));
    }

    serve::CacheConfig on_config;
    on_config.enabled = true;
    serve::ServeCache cache(on_config);
    for (int rep = 0; rep < 2; ++rep) {
      // Re-enabling issues a fresh cache model id, so every rep starts cold.
      cached_session.EnableCache(&cache, "bench");
      serve::ServeCache::ModelId id = cached_session.cache_model_id();
      cache_cold_rps = std::max(cache_cold_rps,
                                MeasureNaive(cached_session, requests));
      serve::CacheTierStats enc_before =
          cache.Stats(id, serve::ServeCache::kEncoderTierName);
      double warm = MeasureNaive(cached_session, requests);
      if (warm > cache_warm_rps) {
        cache_warm_rps = warm;
        serve::CacheTierStats enc_after =
            cache.Stats(id, serve::ServeCache::kEncoderTierName);
        int64_t hits = enc_after.hits - enc_before.hits;
        int64_t misses = enc_after.misses - enc_before.misses;
        cache_hit_rate = static_cast<double>(hits) /
                         static_cast<double>(std::max<int64_t>(1, hits + misses));
      }
      serve::CacheTierStats emb_before =
          cache.Stats(id, serve::ServeCache::kEmbeddingTierName);
      double prefix = MeasureNaive(cached_session, prefix_requests);
      if (prefix > cache_prefix_rps) {
        cache_prefix_rps = prefix;
        serve::CacheTierStats emb_after =
            cache.Stats(id, serve::ServeCache::kEmbeddingTierName);
        int64_t hits = emb_after.hits - emb_before.hits;
        int64_t misses = emb_after.misses - emb_before.misses;
        cache_embedding_hit_rate =
            static_cast<double>(hits) /
            static_cast<double>(std::max<int64_t>(1, hits + misses));
      }
      cache.InvalidateModel(id);
    }
  }
  const double cache_off_overhead =
      (levels[0].rps / cache_off_rps - 1.0) * 100.0;
  std::printf("\nserving cache (naive path, better of 2 reps, baseline =\n"
              "trace-off arm above):\n");
  std::printf("  off      %8.0f req/s (%+.2f%% overhead)%s\n", cache_off_rps,
              cache_off_overhead,
              cache_off_overhead <= 2.0 ? "  PASS <= 2%" : "  ABOVE 2%");
  std::printf("  cold     %8.0f req/s (%.2fx vs naive, all misses)\n",
              cache_cold_rps, cache_cold_rps / naive_rps);
  std::printf("  warm     %8.0f req/s (%.2fx vs naive, hit rate %.3f)\n",
              cache_warm_rps, cache_warm_rps / naive_rps, cache_hit_rate);
  std::printf("  prefix   %8.0f req/s (%.2fx vs naive, embedding hit rate "
              "%.3f)\n",
              cache_prefix_rps, cache_prefix_rps / naive_rps,
              cache_embedding_hit_rate);

  // HTTP loopback arm: the same request stream through the whole network
  // front — parser, router, micro-batcher — over real loopback sockets
  // with keep-alive clients. The gap to the best in-process batched arm is
  // the cost of the HTTP layer itself (syscalls, framing, JSON).
  double http_rps = 0.0;
  {
    // The router rebinds the session's stats under a {model=...} label;
    // that is fine here because every in-process arm above has already
    // been measured. Non-owning alias: the session outlives the registry.
    std::shared_ptr<serve::InferenceSession> shared_session(
        &session, [](serve::InferenceSession*) {});
    serve::ModelRegistry registry;
    net::RouterConfig router_config;
    router_config.batcher = {.max_batch = 32,
                             .max_wait_us = 200,
                             .num_workers = 2,
                             .max_queue = 256};
    net::Router router(registry, router_config);
    router.ServeModel("bench", shared_session);
    net::ServerConfig server_config;
    server_config.num_threads = 4;
    net::HttpServer server(router.AsHandler(), server_config);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "http loopback arm skipped: %s\n", error.c_str());
    } else {
      std::vector<std::string> bodies;
      bodies.reserve(requests.size());
      for (const std::string& text : requests) {
        bodies.push_back(
            net::JsonValue::Object().Set("text", net::JsonValue::Str(text))
                .Dump());
      }
      constexpr int kClients = 4;
      for (int rep = 0; rep < 2; ++rep) {
        std::atomic<size_t> failures{0};
        auto start = std::chrono::steady_clock::now();
        {
          serve::ThreadPool clients(kClients);
          for (int c = 0; c < kClients; ++c) {
            clients.Submit([&, c] {
              net::HttpClient client("127.0.0.1", server.port());
              for (size_t i = static_cast<size_t>(c); i < bodies.size();
                   i += kClients) {
                auto response =
                    client.Post("/v1/models/bench/predict", bodies[i]);
                if (!response.has_value() || response->status != 200) {
                  failures.fetch_add(1);
                }
              }
            });
          }
          clients.Wait();
        }
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        if (failures.load() != 0) {
          std::fprintf(stderr, "http loopback arm: %zu failed requests\n",
                       failures.load());
        }
        http_rps = std::max(
            http_rps, static_cast<double>(requests.size()) / elapsed.count());
      }
      server.Stop();
      std::printf("\nhttp loopback (%d keep-alive clients): %.0f req/s "
                  "(%.1f%% of best in-process batched)\n",
                  kClients, http_rps, 100.0 * http_rps / best_rps);
    }
  }

  bench::BenchJsonWriter json("serve_throughput", options);
  json.Field("requests", static_cast<int64_t>(num_requests));
  json.Field("naive_rps", naive_rps, 2);
  json.Field("best_batched_rps", best_rps, 2);
  json.Field("best_speedup", best_rps / naive_rps);
  json.Field("span_overhead_off_rps", levels[0].rps, 2);
  json.Field("span_overhead_coarse_rps", levels[1].rps, 2);
  json.Field("span_overhead_detailed_rps", levels[2].rps, 2);
  json.Field("span_overhead_coarse_pct", coarse_overhead, 2);
  json.Field("sentinel_overhead_off_rps", sentinel_arms[0].rps, 2);
  json.Field("sentinel_overhead_record_rps", sentinel_arms[1].rps, 2);
  json.Field("sentinel_overhead_trap_rps", sentinel_arms[2].rps, 2);
  json.Field("sentinel_overhead_off_pct", sentinel_off_overhead, 2);
  json.Field("cache_off_rps", cache_off_rps, 2);
  json.Field("cache_off_overhead_pct", cache_off_overhead, 2);
  json.Field("cache_cold_rps", cache_cold_rps, 2);
  json.Field("cache_warm_rps", cache_warm_rps, 2);
  json.Field("cache_warm_speedup", cache_warm_rps / naive_rps);
  json.Field("cache_hit_rate", cache_hit_rate);
  json.Field("cache_prefix_rps", cache_prefix_rps, 2);
  json.Field("cache_embedding_hit_rate", cache_embedding_hit_rate);
  json.Field("http_loopback_rps", http_rps, 2);
  json.Field("http_loopback_fraction_of_best", http_rps / best_rps);
  if (json.Write("BENCH_serve_throughput.json")) {
    std::printf("\nwrote BENCH_serve_throughput.json\n");
  }
  return 0;
}
