// Fig. 3b + Table I — Rationale shift in vanilla RNP on HotelReview.
//
// Fig. 3b: RNP's predictor classifies the *selected rationale* well but can
// fail on the *full text* for Service/Cleanliness — evidence that the
// rationale semantics deviated from the input. Table I details the
// full-text predictions: on the degenerate aspects the predictor collapses
// onto one class (precision "nan" or recall ~0).
#include "bench/bench_common.h"

namespace {

struct PaperRow {
  const char* aspect;
  float s, p, r, f1;  // paper Table I (full-text prediction PRF of RNP)
  bool nan_precision;
};
constexpr PaperRow kPaperTable1[3] = {
    {"Location", 9.0f, 92.0f, 66.4f, 77.1f, false},
    {"Service", 11.6f, 100.0f, 1.0f, 2.0f, false},
    {"Cleanliness", 10.8f, 0.0f, 0.0f, 0.0f, true},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Fig. 3b + Table I: rationale shift in RNP",
                     "paper Fig. 3b (rationale vs full-text accuracy) and "
                     "Table I (full-text P/R/F1)",
                     options);
  core::TrainConfig base = options.config();

  eval::TablePrinter fig3b({"Aspect", "Acc(rationale)", "Acc(full text)",
                            "Gap"});
  eval::TablePrinter table1({"Aspect", "S", "P", "R", "F1", "Paper P/R/F1"});
  for (int aspect = 0; aspect < 3; ++aspect) {
    datasets::SyntheticDataset dataset = datasets::MakeHotelDataset(
        static_cast<datasets::HotelAspect>(aspect), options.sizes(),
        options.seed);
    eval::MethodResult result = bench::RunMethod("RNP", dataset, base);
    std::string name = datasets::HotelAspectName(
        static_cast<datasets::HotelAspect>(aspect));
    fig3b.AddRow({name, eval::FormatPercent(result.rationale_acc),
                  eval::FormatPercent(result.full_text_acc),
                  eval::FormatPercent(result.rationale_acc -
                                      result.full_text_acc)});
    char paper[48];
    std::snprintf(paper, sizeof(paper), "%s/%.1f/%s",
                  kPaperTable1[aspect].nan_precision
                      ? "nan"
                      : eval::FormatFloat(kPaperTable1[aspect].p).c_str(),
                  kPaperTable1[aspect].r,
                  kPaperTable1[aspect].nan_precision
                      ? "nan"
                      : eval::FormatFloat(kPaperTable1[aspect].f1).c_str());
    table1.AddRow(
        {name, eval::FormatPercent(result.rationale.sparsity),
         result.full_text_prf.defined
             ? eval::FormatPercent(result.full_text_prf.precision)
             : std::string("nan"),
         eval::FormatPercent(result.full_text_prf.recall),
         result.full_text_prf.defined
             ? eval::FormatPercent(result.full_text_prf.f1)
             : std::string("nan"),
         paper});
  }
  std::printf("-- Fig. 3b: RNP accuracy, rationale input vs full text --\n");
  fig3b.Print();
  std::printf(
      "\n-- Table I: RNP full-text positive-class P/R/F1 per aspect --\n");
  table1.Print();
  std::printf(
      "\nShape to check: on at least one aspect the two accuracies diverge\n"
      "sharply — rationale and input semantics are misaligned. The paper's\n"
      "RNP collapses predictor-side (rationale acc high, full-text acc low,\n"
      "one-class full-text P/R); on the synthetic corpus the same game also\n"
      "collapses generator-side (near-empty rationales: S << alpha with\n"
      "rationale accuracy near chance while the full-text probe stays\n"
      "high). Either way the vanilla game has drifted from the input —\n"
      "the failure DAR is built to prevent (contrast with Fig. 6).\n");
  return 0;
}
