// Table VII — Skewed predictor (the interlocking setting of A2R).
//
// Protocol (paper Section V-C): pretrain the predictor on the *first
// sentence only* (about appearance) for k epochs, then run the cooperative
// game on Aroma / Palate from that poisoned initialization. RNP collapses
// as k grows (Palate F1 down to 0.6); A2R degrades; DAR is barely affected.
#include "bench/bench_common.h"

#include "core/skew.h"
#include "core/trainer.h"

namespace {

struct PaperCell {
  float rnp, a2r, dar;
};
// Paper Table VII F1 by (aspect, skew level).
constexpr PaperCell kPaper[2][3] = {
    // Aroma: skew10 / skew15 / skew20
    {{61.5f, 69.2f, 73.9f}, {49.3f, 51.7f, 74.2f}, {11.0f, 46.3f, 74.2f}},
    // Palate
    {{5.5f, 45.5f, 60.0f}, {1.3f, 27.7f, 60.1f}, {0.6f, 0.6f, 59.8f}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Table VII: skewed predictor (interlocking)",
                     "paper Table VII — Aroma & Palate, skew k in {10,15,20} "
                     "pretraining epochs (scaled here to {1,2,4})",
                     options);
  core::TrainConfig base = options.config();

  // The paper pretrains for 10/15/20 epochs at batch 500 over ~15k
  // examples (~300-600 optimizer steps). Our datasets are ~20x smaller, so
  // matching the *step count* (not the epoch count) reproduces the same
  // mild-to-severe poisoning range: {4, 8, 16} epochs at batch 64.
  const int64_t skew_epochs[3] = {4, 8, 16};
  const char* skew_names[3] = {"skew-mild", "skew-medium", "skew-severe"};
  const datasets::BeerAspect aspects[2] = {datasets::BeerAspect::kAroma,
                                           datasets::BeerAspect::kPalate};

  for (int a = 0; a < 2; ++a) {
    datasets::SyntheticDataset dataset =
        datasets::MakeBeerDataset(aspects[a], options.sizes(), options.seed);
    core::TrainConfig config =
        base.WithSparsityTarget(dataset.AnnotationSparsity());
    std::printf("-- Beer-%s --\n",
                datasets::BeerAspectName(aspects[a]).c_str());
    eval::TablePrinter table({"Setting", "Method", "SkewAcc", "Acc", "P", "R",
                              "F1", "F1(paper)"});
    for (int s = 0; s < 3; ++s) {
      const char* methods[3] = {"RNP", "A2R", "DAR"};
      const float paper_f1[3] = {kPaper[a][s].rnp, kPaper[a][s].a2r,
                                 kPaper[a][s].dar};
      for (int m = 0; m < 3; ++m) {
        auto model = eval::MakeMethod(methods[m], dataset, config);
        Pcg32 skew_rng(options.seed ^ (0x5e << s) ^ static_cast<uint64_t>(m));
        float skew_acc = core::SkewPredictorPretrain(
            model->predictor(), dataset, skew_epochs[s], skew_rng,
            /*batch_size=*/64, /*lr=*/2e-3f);
        eval::MethodResult result = eval::TrainAndEvaluate(*model, dataset);
        table.AddRow({skew_names[s], result.method,
                      eval::FormatPercent(skew_acc),
                      eval::FormatPercent(result.rationale_acc),
                      eval::FormatPercent(result.rationale.precision),
                      eval::FormatPercent(result.rationale.recall),
                      eval::FormatPercent(result.rationale.f1),
                      eval::FormatFloat(paper_f1[m])});
      }
      if (s < 2) table.AddRule();
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Shape to check against the paper: DAR's F1 stays ~flat across skew\n"
      "levels while RNP (and, at severe skew, A2R) falls off.\n");
  return 0;
}
