// Table V — BeerAdvocate with *low* rationale sparsity (~10-12%).
//
// The paper follows CAR/DMR and forces all methods to select far fewer
// tokens than the human annotations; DAR's lead grows (Aroma: 68.5 vs
// DMR's 54.3, +11.2 absolute over the best baseline).
#include "bench/bench_common.h"

namespace {

struct PaperRow {
  const char* method;
  float f1[3];  // appearance, aroma, palate
};
constexpr PaperRow kPaper[] = {
    {"RNP", {56.2f, 57.3f, 47.5f}},
    {"CAR", {59.9f, 40.1f, 50.9f}},
    {"DMR", {64.7f, 54.3f, 51.7f}},
    {"DAR", {71.7f, 68.5f, 58.2f}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Table V: BeerAdvocate at low sparsity",
                     "paper Table V (alpha ~ 0.10-0.12, below annotation "
                     "level)",
                     options);
  core::TrainConfig base = options.config();

  const char* methods[] = {"RNP", "CAR", "DMR", "DAR"};
  float measured_f1[4][3] = {};
  for (int aspect = 0; aspect < 3; ++aspect) {
    datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
        static_cast<datasets::BeerAspect>(aspect), options.sizes(),
        options.seed);
    // Low-sparsity protocol: the budget is ~70% of the gold level instead
    // of matching it (mirrors the paper's ~11% targets vs 12-18% gold).
    float alpha = 0.7f * dataset.AnnotationSparsity();
    std::printf("-- Beer-%s (alpha %.1f%%, gold %.1f%%) --\n",
                datasets::BeerAspectName(
                    static_cast<datasets::BeerAspect>(aspect))
                    .c_str(),
                100.0f * alpha, 100.0f * dataset.AnnotationSparsity());
    eval::TablePrinter table({"Method", "S", "Acc", "P", "R", "F1"});
    for (int m = 0; m < 4; ++m) {
      core::TrainConfig config = base.WithSparsityTarget(alpha);
      auto model = eval::MakeMethod(methods[m], dataset, config);
      eval::MethodResult result = eval::TrainAndEvaluate(*model, dataset);
      bench::AddResultRow(table, result.method, result,
                          std::string(methods[m]) != "CAR");
      measured_f1[m][aspect] = 100.0f * result.rationale.f1;
    }
    table.Print();
    std::printf("\n");
  }

  std::printf("-- Paper vs measured F1 --\n");
  eval::TablePrinter cmp({"Method", "App(paper)", "App(ours)", "Aroma(paper)",
                          "Aroma(ours)", "Palate(paper)", "Palate(ours)"});
  for (int m = 0; m < 4; ++m) {
    cmp.AddRow({kPaper[m].method, eval::FormatFloat(kPaper[m].f1[0]),
                eval::FormatFloat(measured_f1[m][0]),
                eval::FormatFloat(kPaper[m].f1[1]),
                eval::FormatFloat(measured_f1[m][1]),
                eval::FormatFloat(kPaper[m].f1[2]),
                eval::FormatFloat(measured_f1[m][2])});
  }
  cmp.Print();
  return 0;
}
