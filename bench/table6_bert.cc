// Table VI — Pretrained over-parameterized encoders (the paper's BERT
// setting) on Beer-Appearance.
//
// The paper's finding (after Chen et al. 2022): RNP-family methods (VIB,
// SPECTRA, re-RNP) collapse when the players use a powerful *pretrained*
// encoder — it can latch on to tiny rationale deviations, making rationale
// shift catastrophic — while DAR stays strong (72.8 F1 vs re-RNP's 20.5).
//
// Our BERT stand-in: a Transformer encoder pretrained on the synthetic
// corpus with the masked-token objective (core/mlm.h); every method
// warm-starts both players' encoders from it — the capacity + pretraining
// combination that triggers the failure.
#include "bench/bench_common.h"

#include "core/dar.h"
#include "core/mlm.h"
#include "core/predictor.h"
#include "core/trainer.h"

namespace {

struct PaperRow {
  const char* method;
  float f1;
};
constexpr PaperRow kPaper[] = {
    {"VIB", 20.5f},
    {"SPECTRA", 28.6f},
    {"RNP", 20.5f},  // "re-RNP" row
    {"DAR", 72.8f},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Table VI: pretrained (BERT-like) encoders",
                     "paper Table VI on Beer-Appearance", options);

  datasets::SplitSizes sizes = options.sizes();
  if (!options.quick) {
    // Transformers are ~4x the GRU cost; trim the split, keep the shape.
    sizes.train = 600;
    sizes.test = 200;
  }
  datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAppearance, sizes, options.seed);

  core::TrainConfig config = options.config();
  config.encoder = core::EncoderKind::kTransformer;
  config.transformer.dim = 32;
  config.transformer.num_heads = 2;
  config.transformer.ffn_dim = 64;
  config.transformer.num_layers = 2;
  config.transformer.max_len = 96;
  config.batch_size = 32;
  config = config.WithSparsityTarget(dataset.AnnotationSparsity());

  // "Pretrained BERT": a Transformer encoder pretrained with the
  // masked-token objective over the train split.
  Tensor embeddings = eval::BuildEmbeddings(dataset, config);
  Pcg32 pretrain_rng(options.seed ^ 0xbe27);
  core::MlmPretrainer pretrainer(embeddings, config,
                                 dataset.vocab.IdOrUnk("<mask>"),
                                 pretrain_rng);
  core::MlmConfig mlm;
  mlm.epochs = options.quick ? 2 : 3;
  mlm.batch_size = config.batch_size;
  Pcg32 mlm_rng(options.seed ^ 0x317);
  float mlm_acc = pretrainer.Train(dataset, mlm, mlm_rng);
  std::printf("MLM pretraining: masked-token accuracy %.1f%%\n\n",
              100.0f * mlm_acc);

  eval::TablePrinter table({"Method", "S", "Acc", "P", "R", "F1"});
  float measured_f1[4] = {};
  const char* methods[] = {"VIB", "SPECTRA", "RNP", "DAR"};
  for (int m = 0; m < 4; ++m) {
    auto model = eval::MakeMethod(methods[m], dataset, config);
    // Warm-start both players (the paper fine-tunes BERT in both roles);
    // DAR's discriminator is BERT-initialized too before its full-text
    // pretraining (eq. 4) runs inside Prepare().
    pretrainer.InitializeEncoder(model->generator().encoder());
    pretrainer.InitializeEncoder(model->predictor().encoder());
    if (auto* dar_model = dynamic_cast<core::DarModel*>(model.get())) {
      pretrainer.InitializeEncoder(dar_model->discriminator().encoder());
    }
    eval::MethodResult result = eval::TrainAndEvaluate(*model, dataset);
    bench::AddResultRow(table, result.method, result);
    measured_f1[m] = 100.0f * result.rationale.f1;
  }
  table.Print();

  std::printf("\n-- Paper vs measured F1 (Beer-Appearance) --\n");
  eval::TablePrinter cmp({"Method", "F1(paper)", "F1(ours)"});
  for (int m = 0; m < 4; ++m) {
    cmp.AddRow({kPaper[m].method, eval::FormatFloat(kPaper[m].f1),
                eval::FormatFloat(measured_f1[m])});
  }
  cmp.Print();
  std::printf("\nShape check — DAR best with pretrained encoder (paper: yes): %s\n",
              (measured_f1[3] >= measured_f1[0] &&
               measured_f1[3] >= measured_f1[1] && measured_f1[3] >= measured_f1[2])
                  ? "yes"
                  : "NO");
  return 0;
}
