// Data-parallel training scaling sweep.
//
// Trains the same RNP configuration with the shard → replica → reduce →
// step engine (core/parallel_trainer.h) at 1/2/4/8 workers and reports
// wall-clock epoch throughput and speedup over the 1-worker run. Each
// sweep point uses num_shards == num_workers, i.e. the schedule an actual
// deployment would run; deterministic_reduce stays on, so the measured
// configuration is the bit-reproducible one.
//
// Besides the table, the bench records a machine-readable baseline in
// BENCH_train_scaling.json (cwd; run via run_benches.sh from the repo
// root) so later changes can be compared against it. The host core count
// is part of the record: speedup is bounded by physical parallelism, and
// a single-core host pins every point near 1.0x. The sweep runs under
// coarse tracing, so the record also carries the train.shard /
// train.reduce / train.step / train.broadcast span histograms.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/parallel_trainer.h"
#include "core/trainer.h"
#include "datasets/beer.h"
#include "eval/table.h"

#include <thread>

namespace dar {
namespace {

struct ScalingPoint {
  int workers = 1;
  double seconds = 0.0;
  double examples_per_sec = 0.0;
  double speedup = 1.0;
  float final_dev_acc = 0.0f;
};

int Main(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("train_scaling",
                     "data-parallel training throughput (workers sweep)",
                     options);
  // Coarse spans (per-phase timers) cost one steady_clock pair per batch
  // phase — negligible against the forwards they bracket — and let the
  // JSON record show where the wall-clock went.
  obs::SetTraceLevel(obs::TraceLevel::kCoarse);

  const datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAroma, options.sizes(), options.seed);
  core::TrainConfig config = options.config();
  config.epochs = options.quick ? 2 : 4;

  const unsigned host_cores = std::thread::hardware_concurrency();
  const std::vector<int> worker_counts = {1, 2, 4, 8};
  std::vector<ScalingPoint> points;
  for (int workers : worker_counts) {
    auto model = eval::MakeMethod("RNP", dataset, config);
    const core::ParallelTrainConfig parallel{.num_workers = workers,
                                             .num_shards = workers};
    const auto start = std::chrono::steady_clock::now();
    core::TrainRun run = core::Fit(*model, dataset, parallel);
    const auto end = std::chrono::steady_clock::now();

    ScalingPoint point;
    point.workers = workers;
    point.seconds = std::chrono::duration<double>(end - start).count();
    point.examples_per_sec =
        static_cast<double>(dataset.train.size()) *
        static_cast<double>(config.epochs) / point.seconds;
    point.speedup = points.empty()
                        ? 1.0
                        : points.front().seconds / point.seconds;
    point.final_dev_acc = run.best_dev_acc;
    points.push_back(point);
    std::printf("  workers=%d done in %.2fs\n", workers, point.seconds);
    std::fflush(stdout);
  }

  std::printf("\nhost hardware threads: %u\n\n", host_cores);
  eval::TablePrinter table(
      {"Workers", "Seconds", "Examples/s", "Speedup", "BestDevAcc"});
  for (const ScalingPoint& p : points) {
    char seconds[32], eps[32], speedup[32], acc[32];
    std::snprintf(seconds, sizeof(seconds), "%.2f", p.seconds);
    std::snprintf(eps, sizeof(eps), "%.1f", p.examples_per_sec);
    std::snprintf(speedup, sizeof(speedup), "%.2fx", p.speedup);
    std::snprintf(acc, sizeof(acc), "%.3f", p.final_dev_acc);
    table.AddRow({std::to_string(p.workers), seconds, eps, speedup, acc});
  }
  table.Print();

  const char* json_path = "BENCH_train_scaling.json";
  bench::BenchJsonWriter json("train_scaling", options);
  json.Field("host_hardware_threads", static_cast<int64_t>(host_cores));
  json.Field("train_examples", static_cast<int64_t>(dataset.train.size()));
  json.Field("epochs", static_cast<int64_t>(config.epochs));
  std::string results = "[\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalingPoint& p = points[i];
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "    {\"workers\": %d, \"seconds\": %.4f, "
                  "\"examples_per_sec\": %.2f, \"speedup\": %.4f, "
                  "\"best_dev_acc\": %.4f}%s\n",
                  p.workers, p.seconds, p.examples_per_sec, p.speedup,
                  p.final_dev_acc, i + 1 < points.size() ? "," : "");
    results += buf;
  }
  results += "  ]";
  json.RawField("results", results);
  if (json.Write(json_path)) {
    std::printf("\nwrote %s\n", json_path);
  } else {
    std::printf("\ncould not write %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace dar

int main(int argc, char** argv) { return dar::Main(argc, argv); }
