// GEMM kernel-layer bench: blocked/packed kernel vs the seed naive matmul.
//
// Measures, per encoder-relevant shape class and per transpose variant:
//   * GFLOP/s of the blocked kernel (tensor/gemm.h),
//   * speedup over the seed repo's naive kernel (reproduced below verbatim,
//     zero-skip branch included), and
//   * thread scaling at the largest shape (single-core containers will
//     honestly record ~1x, like train_scaling does).
//
// Emits BENCH_gemm.json. The headline field `speedup_256cubed` (blocked vs
// seed-naive at 256x256x256, single-threaded) is the one CI smoke-greps.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "tensor/gemm.h"
#include "tensor/random.h"

namespace dar {
namespace bench {
namespace {

/// The seed repo's MatMul inner loops, kept verbatim as the speedup
/// baseline: i-k-j order with the per-element zero-skip branch the kernel
/// layer removed. (GemmReference is NOT this — it is the std::fma witness;
/// the seed kernel is what the acceptance speedup is measured against.)
void SeedNaiveMatMul(int64_t m, int64_t n, int64_t k, const float* a,
                     const float* b, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = a[i * k + kk];
      if (av == 0.0f) continue;
      for (int64_t j = 0; j < n; ++j) {
        c[i * n + j] += av * b[kk * n + j];
      }
    }
  }
}

double MedianMs(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct ShapeResult {
  std::string label;
  int64_t m, n, k;
  double naive_ms;
  double blocked_ms;
  double gflops;   // blocked kernel throughput
  double speedup;  // naive_ms / blocked_ms
};

/// Times one shape: median-of-`reps` for both kernels on identical inputs.
ShapeResult TimeShape(const std::string& label, gemm::Trans trans, int64_t m,
                      int64_t n, int64_t k, int reps) {
  Pcg32 rng(1234 + m + n + k);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& x : a) x = rng.NextFloat() * 2.0f - 1.0f;
  for (float& x : b) x = rng.NextFloat() * 2.0f - 1.0f;
  std::vector<float> c(static_cast<size_t>(m * n));

  auto time_one = [&](auto&& fn) {
    std::vector<double> samples;
    samples.reserve(static_cast<size_t>(reps));
    for (int rep = 0; rep < reps; ++rep) {
      std::fill(c.begin(), c.end(), 0.0f);
      auto t0 = std::chrono::steady_clock::now();
      fn();
      auto t1 = std::chrono::steady_clock::now();
      samples.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return MedianMs(samples);
  };

  ShapeResult r{label, m, n, k, 0.0, 0.0, 0.0, 0.0};
  // The seed kernel only ever implemented the NN orientation; time the
  // equivalent-cost NN product as its stand-in for TA/TB rows.
  r.naive_ms =
      time_one([&] { SeedNaiveMatMul(m, n, k, a.data(), b.data(), c.data()); });
  r.blocked_ms = time_one(
      [&] { gemm::Gemm(trans, m, n, k, a.data(), b.data(), c.data()); });
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  r.gflops = flops / (r.blocked_ms * 1e6);
  r.speedup = r.naive_ms / r.blocked_ms;
  return r;
}

std::string ResultJson(const ShapeResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"shape\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld, "
                "\"naive_ms\": %.3f, \"blocked_ms\": %.3f, \"gflops\": %.2f, "
                "\"speedup\": %.2f}",
                r.label.c_str(), static_cast<long long>(r.m),
                static_cast<long long>(r.n), static_cast<long long>(r.k),
                r.naive_ms, r.blocked_ms, r.gflops, r.speedup);
  return buf;
}

}  // namespace

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  PrintHeader("GEMM kernel layer",
              "kernel substrate for all encoder forwards/backwards "
              "(supports every paper table; no table of its own)",
              options);

  const int reps = options.quick ? 3 : 7;
  gemm::SetKernelThreads(1);

  // Shape classes: the acceptance square, the encoder's flat input
  // projection, the tiny recurrent step (small-path regression guard), and
  // the backward's transposed products at the acceptance size.
  struct Case {
    const char* label;
    gemm::Trans trans;
    int64_t m, n, k;
  };
  const Case cases[] = {
      {"square_256_nn", gemm::Trans::kNN, 256, 256, 256},
      {"square_128_nn", gemm::Trans::kNN, 128, 128, 128},
      {"flat_proj_nn", gemm::Trans::kNN, 512, 96, 32},
      {"recurrent_step_nn", gemm::Trans::kNN, 64, 72, 24},
      {"backward_ta_256", gemm::Trans::kTA, 256, 256, 256},
      {"backward_tb_256", gemm::Trans::kTB, 256, 256, 256},
  };

  std::printf("%-20s %6s %6s %6s %12s %12s %9s %9s\n", "shape", "m", "n", "k",
              "naive_ms", "blocked_ms", "GFLOP/s", "speedup");
  std::string results = "[\n    ";
  double speedup_256 = 0.0;
  double gflops_256 = 0.0;
  bool first = true;
  for (const Case& cs : cases) {
    ShapeResult r = TimeShape(cs.label, cs.trans, cs.m, cs.n, cs.k, reps);
    std::printf("%-20s %6lld %6lld %6lld %12.3f %12.3f %9.2f %9.2f\n",
                r.label.c_str(), static_cast<long long>(r.m),
                static_cast<long long>(r.n), static_cast<long long>(r.k),
                r.naive_ms, r.blocked_ms, r.gflops, r.speedup);
    std::fflush(stdout);
    if (!first) results += ",\n    ";
    results += ResultJson(r);
    first = false;
    if (r.label == "square_256_nn") {
      speedup_256 = r.speedup;
      gflops_256 = r.gflops;
    }
  }
  results += "\n  ]";

  // Thread-scaling arm at the acceptance shape. Results are bit-identical
  // across worker counts by construction (gemm.h); only latency can move.
  std::printf("\nthread scaling at 256x256x256 (total threads incl. caller):\n");
  std::string scaling = "[\n    ";
  double base_ms = 0.0;
  for (int threads : {1, 2, 4}) {
    gemm::SetKernelThreads(threads);
    ShapeResult r =
        TimeShape("square_256_nn", gemm::Trans::kNN, 256, 256, 256, reps);
    if (threads == 1) base_ms = r.blocked_ms;
    const double scale = base_ms / r.blocked_ms;
    std::printf("  threads=%d  %8.3f ms  %6.2fx\n", threads, r.blocked_ms,
                scale);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "{\"threads\": %d, \"blocked_ms\": %.3f, \"scale\": %.2f}",
                  threads, r.blocked_ms, scale);
    if (threads != 1) scaling += ",\n    ";
    scaling += buf;
  }
  scaling += "\n  ]";
  gemm::SetKernelThreads(1);

  std::printf("\nheadline: blocked vs seed-naive at 256^3 = %.2fx (%.2f "
              "GFLOP/s)\n",
              speedup_256, gflops_256);

  BenchJsonWriter json("gemm", options);
  json.Field("speedup_256cubed", speedup_256, 2);
  json.Field("gflops_256cubed", gflops_256, 2);
  json.RawField("results", results);
  json.RawField("thread_scaling", scaling);
  if (!json.Write("BENCH_gemm.json")) {
    std::fprintf(stderr, "failed to write BENCH_gemm.json\n");
    return 1;
  }
  std::printf("wrote BENCH_gemm.json\n");
  return 0;
}

}  // namespace bench
}  // namespace dar

int main(int argc, char** argv) { return dar::bench::Main(argc, argv); }
