// Figs. 3a, 7, 8 — Full-text accuracy vs rationale quality across
// hyper-parameter settings.
//
// The paper trains vanilla RNP with five hyper-parameter sets (Table X:
// lr / batch size / hidden dim) on each HotelReview aspect and shows the
// predictor's *full-text* accuracy is positively related to the rationale
// F1 — the observation motivating DAR. We sweep the scaled analogue of
// Table X and report the (accuracy, F1) series plus their Pearson
// correlation per aspect.
#include <cmath>

#include "bench/bench_common.h"

namespace {

struct ParamSet {
  const char* name;
  float lr;
  int64_t batch;
  int64_t hidden;
};
// Scaled analogue of paper Table X (lr 1e-4/2e-4, batch 256/512, hidden
// 100/200 -> our single-core scale).
constexpr ParamSet kParams[5] = {
    {"Param1", 1e-3f, 64, 12}, {"Param2", 1e-3f, 64, 24},
    {"Param3", 2e-3f, 64, 24}, {"Param4", 1e-3f, 128, 24},
    {"Param5", 2e-3f, 128, 24},
};

float Pearson(const std::vector<float>& x, const std::vector<float>& y) {
  float mx = 0.0f, my = 0.0f;
  for (size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<float>(x.size());
  my /= static_cast<float>(y.size());
  float sxy = 0.0f, sxx = 0.0f, syy = 0.0f;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  float denom = std::sqrt(sxx * syy);
  return denom > 1e-9f ? sxy / denom : 0.0f;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Figs. 3a / 7 / 8: full-text accuracy vs rationale F1",
                     "paper Figs. 3a (Service), 7 (Location), 8 "
                     "(Cleanliness); RNP with 5 hyper-parameter sets",
                     options);
  core::TrainConfig base = options.config();
  // This bench runs 15 trainings; shrink each to keep the total bounded.
  datasets::SplitSizes sizes = options.sizes();
  sizes.train = options.quick ? 300 : 600;

  for (int aspect = 0; aspect < 3; ++aspect) {
    datasets::SyntheticDataset dataset = datasets::MakeHotelDataset(
        static_cast<datasets::HotelAspect>(aspect), sizes, options.seed);
    std::printf("-- Hotel-%s --\n",
                datasets::HotelAspectName(
                    static_cast<datasets::HotelAspect>(aspect))
                    .c_str());
    eval::TablePrinter table(
        {"Params", "lr", "batch", "hidden", "Acc(full)", "F1"});
    std::vector<float> accs, f1s;
    for (const ParamSet& p : kParams) {
      core::TrainConfig config = base;
      config.lr = p.lr;
      config.batch_size = p.batch;
      config.hidden_dim = p.hidden;
      config = config.WithSparsityTarget(dataset.AnnotationSparsity());
      auto model = eval::MakeMethod("RNP", dataset, config);
      eval::MethodResult result = eval::TrainAndEvaluate(*model, dataset);
      accs.push_back(result.full_text_acc);
      f1s.push_back(result.rationale.f1);
      char lr_buf[16];
      std::snprintf(lr_buf, sizeof(lr_buf), "%.0e", p.lr);
      table.AddRow({p.name, lr_buf, std::to_string(p.batch),
                    std::to_string(p.hidden),
                    eval::FormatPercent(result.full_text_acc),
                    eval::FormatPercent(result.rationale.f1)});
    }
    table.Print();
    std::printf("Pearson correlation(full-text acc, F1) = %.2f\n\n",
                Pearson(accs, f1s));
  }
  std::printf(
      "Shape to check: positive correlation on each aspect — runs whose\n"
      "predictor classifies the full text well also select better\n"
      "rationales (paper Figs. 3a/7/8).\n");
  return 0;
}
