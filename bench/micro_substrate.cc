// Micro-benchmarks of the substrate (google-benchmark): tensor kernels,
// autograd overhead, GRU/Transformer forward+backward, dataset synthesis.
// Not a paper table — used to size the training configurations.
#include <benchmark/benchmark.h>

#include "core/generator.h"
#include "core/predictor.h"
#include "data/dataloader.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "nn/gru.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace {

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Pcg32 rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_SoftmaxRows(benchmark::State& state) {
  Pcg32 rng(2);
  Tensor logits = Tensor::Randn({256, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxRows(logits));
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_AutogradElementwiseChain(benchmark::State& state) {
  Pcg32 rng(3);
  Tensor t = Tensor::Randn({64, 64}, rng);
  for (auto _ : state) {
    ag::Variable x = ag::Variable::Param(t);
    ag::Variable y = x;
    for (int i = 0; i < 16; ++i) y = ag::Tanh(ag::AddScalar(y, 0.01f));
    ag::Sum(y).Backward();
    benchmark::DoNotOptimize(x.grad());
  }
}
BENCHMARK(BM_AutogradElementwiseChain);

void BM_BiGruForwardBackward(benchmark::State& state) {
  int64_t batch = state.range(0);
  Pcg32 rng(4);
  nn::BiGru gru(32, 24, rng);
  Pcg32 data_rng(5);
  Tensor x = Tensor::Randn({batch, 40, 32}, data_rng, 0.3f);
  for (auto _ : state) {
    ag::Variable xv = ag::Variable::Param(x);
    ag::Variable out = gru.Forward(xv);
    ag::Sum(out).Backward();
    benchmark::DoNotOptimize(xv.grad());
  }
  state.SetItemsProcessed(state.iterations() * batch * 40);
}
BENCHMARK(BM_BiGruForwardBackward)->Arg(16)->Arg(64);

void BM_GeneratorMaskSampling(benchmark::State& state) {
  datasets::SyntheticDataset ds = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAroma, {.train = 64, .dev = 8, .test = 8}, 7);
  core::TrainConfig config;
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  Pcg32 rng(8);
  core::Generator generator(embeddings, config, rng);
  data::DataLoader loader(ds.train, 64, /*shuffle=*/false);
  data::Batch batch = loader.Sequential()[0];
  Pcg32 sample_rng(9);
  for (auto _ : state) {
    nn::GumbelMask mask = generator.SampleMask(batch, sample_rng);
    benchmark::DoNotOptimize(mask.hard.value());
  }
}
BENCHMARK(BM_GeneratorMaskSampling);

void BM_PredictorForward(benchmark::State& state) {
  datasets::SyntheticDataset ds = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAroma, {.train = 64, .dev = 8, .test = 8}, 10);
  core::TrainConfig config;
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  Pcg32 rng(11);
  core::Predictor predictor(embeddings, config, rng);
  predictor.SetTraining(false);
  data::DataLoader loader(ds.train, 64, /*shuffle=*/false);
  data::Batch batch = loader.Sequential()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.ForwardFullText(batch).value());
  }
}
BENCHMARK(BM_PredictorForward);

void BM_DatasetSynthesis(benchmark::State& state) {
  for (auto _ : state) {
    datasets::SyntheticDataset ds = datasets::MakeBeerDataset(
        datasets::BeerAspect::kPalate, {.train = 200, .dev = 20, .test = 20},
        12);
    benchmark::DoNotOptimize(ds.train.size());
  }
}
BENCHMARK(BM_DatasetSynthesis);

}  // namespace
}  // namespace dar

BENCHMARK_MAIN();
