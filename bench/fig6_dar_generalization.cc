// Fig. 6 — DAR's predictor generalizes to the full text.
//
// Theorem 1's empirical check: although DAR's predictor only ever sees
// selected rationales during training, its accuracy with the *full text*
// as input stays close to its rationale accuracy on all six datasets —
// the alignment worked. (Contrast with Fig. 3b, where RNP's full-text
// accuracy collapses on some aspects.)
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Fig. 6: DAR predictor accuracy, rationale vs full text",
                     "paper Fig. 6 (both datasets, all aspects)", options);
  core::TrainConfig base = options.config();

  eval::TablePrinter table(
      {"Dataset", "Acc(rationale)", "Acc(full text)", "Gap"});
  float worst_gap = 0.0f;
  for (int d = 0; d < 6; ++d) {
    datasets::SyntheticDataset dataset =
        d < 3 ? datasets::MakeBeerDataset(static_cast<datasets::BeerAspect>(d),
                                          options.sizes(), options.seed)
              : datasets::MakeHotelDataset(
                    static_cast<datasets::HotelAspect>(d - 3), options.sizes(),
                    options.seed);
    std::string name =
        d < 3 ? "Beer-" + datasets::BeerAspectName(
                              static_cast<datasets::BeerAspect>(d))
              : "Hotel-" + datasets::HotelAspectName(
                               static_cast<datasets::HotelAspect>(d - 3));
    eval::MethodResult result = bench::RunMethod("DAR", dataset, base);
    float gap = result.rationale_acc - result.full_text_acc;
    worst_gap = std::max(worst_gap, gap);
    table.AddRow({name, eval::FormatPercent(result.rationale_acc),
                  eval::FormatPercent(result.full_text_acc),
                  eval::FormatPercent(gap)});
  }
  table.Print();
  std::printf(
      "\nShape to check: small gaps everywhere (paper Fig. 6 shows full-text\n"
      "accuracy close to rationale accuracy on all six aspects).\n"
      "Worst rationale-minus-full-text gap: %.1f%%\n",
      100.0f * worst_gap);
  return 0;
}
