// Table VIII — Skewed generator on Beer-Palate.
//
// Protocol: pretrain the generator so that *selecting the first token*
// encodes the label (select for class 1, deselect for class 0) until the
// degenerate first-token classifier passes an accuracy threshold k; then
// run the game. The predictor only needs the position-0 leak to classify,
// so RNP's rationales collapse as k grows (F1 43.9 -> 8.8 in the paper)
// while DAR stays in the 49-56 range.
#include "bench/bench_common.h"

#include "core/skew.h"

namespace {

struct PaperCell {
  float rnp_f1, dar_f1;
};
constexpr float kThresholds[4] = {0.60f, 0.65f, 0.70f, 0.75f};
constexpr PaperCell kPaper[4] = {
    {43.9f, 55.7f}, {42.7f, 53.6f}, {10.8f, 51.2f}, {8.8f, 49.7f}};

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Table VIII: skewed generator",
                     "paper Table VIII — Beer-Palate, skew threshold k in "
                     "{60, 65, 70, 75}%",
                     options);

  datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kPalate, options.sizes(), options.seed);
  core::TrainConfig config =
      options.config().WithSparsityTarget(dataset.AnnotationSparsity());

  eval::TablePrinter table({"Setting", "Method", "Pre_acc", "S", "Acc", "P",
                            "R", "F1", "F1(paper)"});
  for (int s = 0; s < 4; ++s) {
    const char* methods[2] = {"RNP", "DAR"};
    const float paper_f1[2] = {kPaper[s].rnp_f1, kPaper[s].dar_f1};
    for (int m = 0; m < 2; ++m) {
      auto model = eval::MakeMethod(methods[m], dataset, config);
      Pcg32 skew_rng(options.seed ^ (0x8e << s) ^ static_cast<uint64_t>(m));
      float pre_acc = core::SkewGeneratorPretrain(
          model->generator(), dataset, kThresholds[s], skew_rng);
      eval::MethodResult result = eval::TrainAndEvaluate(*model, dataset);
      char setting[32];
      std::snprintf(setting, sizeof(setting), "skew%.1f",
                    100.0f * kThresholds[s]);
      table.AddRow({setting, result.method, eval::FormatPercent(pre_acc),
                    eval::FormatPercent(result.rationale.sparsity),
                    eval::FormatPercent(result.rationale_acc),
                    eval::FormatPercent(result.rationale.precision),
                    eval::FormatPercent(result.rationale.recall),
                    eval::FormatPercent(result.rationale.f1),
                    eval::FormatFloat(paper_f1[m])});
    }
    if (s < 3) table.AddRule();
  }
  table.Print();
  std::printf(
      "\nShape to check against the paper: RNP's F1 decays as Pre_acc rises\n"
      "(the leak gets stronger); DAR degrades only mildly.\n");
  return 0;
}
