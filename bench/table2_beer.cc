// Table II — Results on BeerAdvocate (synthetic analogue).
//
// Methods: RNP, re-DMR, re-Inter_RAT, re-A2R, DAR; aspects: Appearance,
// Aroma, Palate. The paper's headline: DAR beats every baseline on F1 in
// all three aspects (e.g. Palate 66.6 vs A2R's 58.0).
#include "bench/bench_common.h"

namespace {

// Paper F1 values (Table II), for shape comparison.
struct PaperRow {
  const char* method;
  float f1[3];  // appearance, aroma, palate
};
constexpr PaperRow kPaper[] = {
    {"RNP", {72.8f, 65.9f, 51.0f}},     {"DMR", {70.7f, 59.3f, 52.0f}},
    {"Inter_RAT", {57.3f, 64.0f, 50.5f}}, {"A2R", {72.5f, 63.2f, 57.4f}},
    {"DAR", {79.8f, 74.4f, 66.6f}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Table II: BeerAdvocate",
                     "paper Table II (S/Acc/P/R/F1 per aspect)", options);
  core::TrainConfig base = options.config();

  const char* methods[] = {"RNP", "DMR", "Inter_RAT", "A2R", "DAR"};
  float measured_f1[5][3] = {};
  for (int aspect = 0; aspect < 3; ++aspect) {
    datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
        static_cast<datasets::BeerAspect>(aspect), options.sizes(),
        options.seed);
    std::printf("-- Beer-%s (gold sparsity %.1f%%) --\n",
                datasets::BeerAspectName(
                    static_cast<datasets::BeerAspect>(aspect))
                    .c_str(),
                100.0f * dataset.AnnotationSparsity());
    eval::TablePrinter table({"Method", "S", "Acc", "P", "R", "F1"});
    for (int m = 0; m < 5; ++m) {
      eval::MethodResult result = bench::RunMethod(methods[m], dataset, base);
      bench::AddResultRow(table, result.method, result);
      measured_f1[m][aspect] = 100.0f * result.rationale.f1;
    }
    table.Print();
    std::printf("\n");
  }

  std::printf("-- Paper vs measured F1 --\n");
  eval::TablePrinter cmp({"Method", "App(paper)", "App(ours)", "Aroma(paper)",
                          "Aroma(ours)", "Palate(paper)", "Palate(ours)"});
  for (int m = 0; m < 5; ++m) {
    cmp.AddRow({kPaper[m].method, eval::FormatFloat(kPaper[m].f1[0]),
                eval::FormatFloat(measured_f1[m][0]),
                eval::FormatFloat(kPaper[m].f1[1]),
                eval::FormatFloat(measured_f1[m][1]),
                eval::FormatFloat(kPaper[m].f1[2]),
                eval::FormatFloat(measured_f1[m][2])});
  }
  cmp.Print();

  bool dar_wins = true;
  for (int aspect = 0; aspect < 3; ++aspect) {
    for (int m = 0; m < 4; ++m) {
      if (measured_f1[4][aspect] < measured_f1[m][aspect]) dar_wins = false;
    }
  }
  std::printf("\nShape check — DAR best F1 in all aspects (paper: yes): %s\n",
              dar_wins ? "yes" : "NO");
  return 0;
}
