// Ablation — which parts of DAR matter (DESIGN.md section 4).
//
// Not a paper table; isolates DAR's central design decision: the auxiliary
// predictor must be (a) pretrained on the full input and (b) frozen.
//   * DAR            — pretrained + frozen (the paper's method)
//   * DAR-cotrained  — random init, co-trained with the game (the DMR-like
//                      degradation the paper argues against in Section II)
//   * RNP            — no auxiliary module at all
// plus a sweep over the discriminator loss weight (eq. 6's implicit 1.0).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Ablation: DAR's frozen pretrained discriminator",
                     "DESIGN.md ablation 1 & 4 (not a paper table)", options);

  // High shortcut strength: the regime where the auxiliary module's
  // robustness matters most.
  datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAroma, options.sizes(), options.seed,
      /*shortcut_strength=*/0.8f);
  core::TrainConfig base =
      options.config().WithSparsityTarget(dataset.AnnotationSparsity());

  std::printf("-- Arm comparison (Beer-Aroma, shortcut strength 0.8) --\n");
  eval::TablePrinter arms({"Arm", "S", "Acc", "P", "R", "F1", "FullAcc"});
  for (const char* method : {"DAR", "DAR-cotrained", "RNP"}) {
    auto model = eval::MakeMethod(method, dataset, base);
    eval::MethodResult result = eval::TrainAndEvaluate(*model, dataset);
    arms.AddRow({method, eval::FormatPercent(result.rationale.sparsity),
                 eval::FormatPercent(result.rationale_acc),
                 eval::FormatPercent(result.rationale.precision),
                 eval::FormatPercent(result.rationale.recall),
                 eval::FormatPercent(result.rationale.f1),
                 eval::FormatPercent(result.full_text_acc)});
  }
  arms.Print();

  std::printf("\n-- Discriminator weight sweep (eq. 6 term weight) --\n");
  eval::TablePrinter sweep({"aux_weight", "S", "Acc", "F1"});
  for (float weight : {0.25f, 0.5f, 1.0f, 2.0f}) {
    core::TrainConfig config = base;
    config.aux_weight = weight;
    auto model = eval::MakeMethod("DAR", dataset, config);
    eval::MethodResult result = eval::TrainAndEvaluate(*model, dataset);
    sweep.AddRow({eval::FormatFloat(weight, 2),
                  eval::FormatPercent(result.rationale.sparsity),
                  eval::FormatPercent(result.rationale_acc),
                  eval::FormatPercent(result.rationale.f1)});
  }
  sweep.Print();
  std::printf(
      "\nExpected shape: frozen-pretrained DAR >= co-trained arm >= RNP on\n"
      "F1; the weight sweep is flat-ish around 1.0 (the paper's implicit\n"
      "choice), degrading at the extremes.\n");
  return 0;
}
