// Table IX — Dataset statistics (synthetic analogue).
//
// Prints size, class balance, and annotation sparsity of every generated
// dataset next to the paper's Table IX. Counts are scaled down (~1/15);
// balance and the *ordering* of annotation sparsities are preserved.
#include "bench/bench_common.h"

namespace {

struct PaperRow {
  const char* name;
  int train_pos, train_neg;
  float sparsity;  // annotation percentage
};
constexpr PaperRow kPaper[6] = {
    {"Beer-Appearance", 16891, 16891, 18.5f},
    {"Beer-Aroma", 15169, 15169, 15.6f},
    {"Beer-Palate", 13652, 13652, 12.4f},
    {"Hotel-Location", 7236, 7236, 8.5f},
    {"Hotel-Service", 50742, 50742, 11.5f},
    {"Hotel-Cleanliness", 75049, 75049, 8.9f},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Table IX: dataset statistics",
                     "paper Table IX (counts, balance, annotation sparsity)",
                     options);

  eval::TablePrinter table({"Dataset", "Train(pos/neg)", "Dev", "Test",
                            "Vocab", "Sparsity(ours)", "Sparsity(paper)"});
  for (int d = 0; d < 6; ++d) {
    datasets::SyntheticDataset ds =
        d < 3 ? datasets::MakeBeerDataset(static_cast<datasets::BeerAspect>(d),
                                          options.sizes(), options.seed)
              : datasets::MakeHotelDataset(
                    static_cast<datasets::HotelAspect>(d - 3), options.sizes(),
                    options.seed);
    int64_t pos = 0;
    for (const data::Example& e : ds.train) pos += e.label;
    char balance[48];
    std::snprintf(balance, sizeof(balance), "%lld/%lld",
                  static_cast<long long>(pos),
                  static_cast<long long>(ds.train.size()) -
                      static_cast<long long>(pos));
    table.AddRow({kPaper[d].name, balance, std::to_string(ds.dev.size()),
                  std::to_string(ds.test.size()),
                  std::to_string(ds.vocab.size()),
                  eval::FormatPercent(ds.AnnotationSparsity()),
                  eval::FormatFloat(kPaper[d].sparsity)});
  }
  table.Print();
  std::printf(
      "\nShape to check: balanced classes everywhere; Beer sparsities above\n"
      "Hotel's, Appearance > Aroma > Palate, Service > Location/Cleanliness.\n");
  return 0;
}
