// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every bench accepts:
//   --quick     smaller datasets / fewer epochs (CI-sized)
//   --seed N    master seed (default 42)
// and prints the paper table it reproduces alongside the measured values.
#ifndef DAR_BENCH_BENCH_COMMON_H_
#define DAR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/train_config.h"
#include "datasets/beer.h"
#include "datasets/hotel.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dar {
namespace bench {

/// Command-line options shared by all benches.
struct BenchOptions {
  bool quick = false;
  uint64_t seed = 42;

  static BenchOptions Parse(int argc, char** argv) {
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        options.quick = true;
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        options.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf("usage: %s [--quick] [--seed N]\n", argv[0]);
        std::exit(0);
      }
    }
    // The environment knob lets `for b in build/bench/*; do $b; done` run
    // the quick profile without editing the loop.
    if (const char* env = std::getenv("DAR_BENCH_QUICK");
        env != nullptr && env[0] != '0') {
      options.quick = true;
    }
    return options;
  }

  datasets::SplitSizes sizes() const {
    if (quick) return {.train = 400, .dev = 100, .test = 120};
    return {.train = 800, .dev = 160, .test = 250};
  }

  core::TrainConfig config() const {
    core::TrainConfig config;
    config.seed = seed;
    config.epochs = quick ? 8 : 9;
    config.pretrain_epochs = quick ? 4 : 5;
    if (quick) {
      // Keep the optimizer step count up on the smaller dataset.
      config.batch_size = 32;
      config.lr = 2e-3f;
    }
    return config;
  }
};

/// Prints the standard bench banner.
inline void PrintHeader(const char* title, const char* paper_ref,
                        const BenchOptions& options) {
  std::printf("=== %s ===\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("profile=%s seed=%llu\n\n", options.quick ? "quick" : "standard",
              static_cast<unsigned long long>(options.seed));
  std::fflush(stdout);
}

/// Adds the standard S/Acc/P/R/F1 row for a method result.
inline void AddResultRow(eval::TablePrinter& table, const std::string& label,
                         const eval::MethodResult& result,
                         bool accuracy_applicable = true) {
  table.AddRow({label, eval::FormatPercent(result.rationale.sparsity),
                accuracy_applicable ? eval::FormatPercent(result.rationale_acc)
                                    : std::string("N/A"),
                eval::FormatPercent(result.rationale.precision),
                eval::FormatPercent(result.rationale.recall),
                eval::FormatPercent(result.rationale.f1)});
}

/// Assembles a BENCH_*.json record on top of the obs JSONL exporter.
///
/// Scalar fields and a raw `results` array come from the bench itself;
/// Write() then flushes the thread-local span buffers and appends every
/// `span.*` histogram of the global registry (one exporter line each) as
/// the `"spans"` array — so any bench that runs under
/// obs::SetTraceLevel(kCoarse or kDetailed) records its phase timings
/// alongside the numbers it measures.
class BenchJsonWriter {
 public:
  BenchJsonWriter(const std::string& name, const BenchOptions& options) {
    Field("bench", name);
    Field("profile", options.quick ? "quick" : "standard");
    Field("seed", static_cast<int64_t>(options.seed));
  }

  void Field(const std::string& name, const std::string& value) {
    fields_.push_back("\"" + name + "\": \"" + value + "\"");
  }
  void Field(const std::string& name, const char* value) {
    Field(name, std::string(value));
  }
  void Field(const std::string& name, int64_t value) {
    fields_.push_back("\"" + name + "\": " + std::to_string(value));
  }
  void Field(const std::string& name, double value, int precision = 4) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    fields_.push_back("\"" + name + "\": " + buf);
  }
  /// `json` must be a complete JSON value (typically the results array).
  void RawField(const std::string& name, const std::string& json) {
    fields_.push_back("\"" + name + "\": " + json);
  }

  bool Write(const std::string& path) {
    obs::FlushThreadSpans();
    std::string spans;
    std::string jsonl = obs::MetricsRegistry::Global().ExportJsonl();
    size_t start = 0;
    while (start < jsonl.size()) {
      size_t end = jsonl.find('\n', start);
      if (end == std::string::npos) end = jsonl.size();
      std::string line = jsonl.substr(start, end - start);
      if (line.find("\"name\":\"span.") != std::string::npos) {
        if (!spans.empty()) spans += ",\n    ";
        spans += line;
      }
      start = end + 1;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n");
    for (const std::string& field : fields_) {
      std::fprintf(f, "  %s,\n", field.c_str());
    }
    std::fprintf(f, "  \"spans\": [\n    %s\n  ]\n}\n", spans.c_str());
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::string> fields_;
};

/// Trains `method` on `dataset` with the sparsity target matched to the
/// gold annotation level (the paper's protocol) and returns the result.
inline eval::MethodResult RunMethod(const std::string& method,
                                    const datasets::SyntheticDataset& dataset,
                                    const core::TrainConfig& base_config,
                                    bool verbose = false) {
  core::TrainConfig config =
      base_config.WithSparsityTarget(dataset.AnnotationSparsity());
  auto model = eval::MakeMethod(method, dataset, config);
  return eval::TrainAndEvaluate(*model, dataset, verbose);
}

}  // namespace bench
}  // namespace dar

#endif  // DAR_BENCH_BENCH_COMMON_H_
