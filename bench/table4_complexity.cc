// Table IV — Model complexity: player modules and parameter multiples.
//
// The paper counts 1 generator + k predictors per method and reports the
// parameter total as a multiple of one player ("2x" for RNP). We build
// every model and count actual parameters (embeddings excluded — all
// methods share the same frozen table).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Table IV: model complexity",
                     "paper Table IV (modules / parameter multiples)",
                     options);

  datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAroma, {.train = 16, .dev = 8, .test = 8},
      options.seed);
  core::TrainConfig config = options.config();

  struct Row {
    const char* method;
    const char* paper_modules;
    const char* paper_params;
  };
  const Row rows[] = {
      {"RNP", "1gen+1pred", "2x"},     {"CAR", "1gen+2pred", "3x"},
      {"DMR", "1gen+3pred", "4x"},     {"A2R", "1gen+2pred", "3x"},
      {"DAR", "1gen+2pred", "3x"},     {"3PLAYER", "1gen+2pred", "3x"},
      {"Inter_RAT", "-", "-"},         {"VIB", "-", "-"},
      {"SPECTRA", "-", "-"},
  };

  auto rnp = eval::MakeMethod("RNP", dataset, config);
  double player_unit = static_cast<double>(rnp->TotalParameters()) / 2.0;

  eval::TablePrinter table({"Method", "Modules(paper)", "Modules(ours)",
                            "Params(ours)", "Multiple(paper)",
                            "Multiple(ours)"});
  for (const Row& row : rows) {
    auto model = eval::MakeMethod(row.method, dataset, config);
    char modules[32];
    std::snprintf(modules, sizeof(modules), "%lld",
                  static_cast<long long>(model->NumModules()));
    char params[32];
    std::snprintf(params, sizeof(params), "%lld",
                  static_cast<long long>(model->TotalParameters()));
    char multiple[32];
    std::snprintf(multiple, sizeof(multiple), "%.1fx",
                  static_cast<double>(model->TotalParameters()) / player_unit);
    table.AddRow({row.method, row.paper_modules, modules, params,
                  row.paper_params, multiple});
  }
  table.Print();
  std::printf(
      "\nNote: our re-DMR uses one teacher predictor (paper DMR uses two\n"
      "auxiliary heads plus the rationale predictor, hence its 4x). The\n"
      "relative ordering RNP < {CAR, A2R, DAR, 3PLAYER} holds.\n");
  return 0;
}
