// Table III — Results on HotelReview (synthetic analogue).
//
// Methods: RNP, CAR, DMR, re-Inter_RAT, re-A2R, DAR; aspects: Location,
// Service, Cleanliness. CAR routes the label into generation, so rationale
// accuracy is not applicable ("N/A" in the paper).
#include "bench/bench_common.h"

namespace {

struct PaperRow {
  const char* method;
  float f1[3];  // location, service, cleanliness
};
constexpr PaperRow kPaper[] = {
    {"RNP", {48.6f, 39.1f, 33.0f}},       {"CAR", {51.7f, 41.1f, 33.9f}},
    {"DMR", {53.1f, 43.3f, 33.7f}},       {"Inter_RAT", {39.1f, 37.2f, 34.9f}},
    {"A2R", {43.1f, 37.2f, 33.3f}},       {"DAR", {56.0f, 48.4f, 39.5f}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("Table III: HotelReview",
                     "paper Table III (S/Acc/P/R/F1 per aspect)", options);
  core::TrainConfig base = options.config();

  const char* methods[] = {"RNP", "CAR", "DMR", "Inter_RAT", "A2R", "DAR"};
  float measured_f1[6][3] = {};
  for (int aspect = 0; aspect < 3; ++aspect) {
    datasets::SyntheticDataset dataset = datasets::MakeHotelDataset(
        static_cast<datasets::HotelAspect>(aspect), options.sizes(),
        options.seed);
    std::printf("-- Hotel-%s (gold sparsity %.1f%%) --\n",
                datasets::HotelAspectName(
                    static_cast<datasets::HotelAspect>(aspect))
                    .c_str(),
                100.0f * dataset.AnnotationSparsity());
    eval::TablePrinter table({"Method", "S", "Acc", "P", "R", "F1"});
    for (int m = 0; m < 6; ++m) {
      eval::MethodResult result = bench::RunMethod(methods[m], dataset, base);
      bool acc_applicable = std::string(methods[m]) != "CAR";
      bench::AddResultRow(table, result.method, result, acc_applicable);
      measured_f1[m][aspect] = 100.0f * result.rationale.f1;
    }
    table.Print();
    std::printf("\n");
  }

  std::printf("-- Paper vs measured F1 --\n");
  eval::TablePrinter cmp({"Method", "Loc(paper)", "Loc(ours)", "Svc(paper)",
                          "Svc(ours)", "Cln(paper)", "Cln(ours)"});
  for (int m = 0; m < 6; ++m) {
    cmp.AddRow({kPaper[m].method, eval::FormatFloat(kPaper[m].f1[0]),
                eval::FormatFloat(measured_f1[m][0]),
                eval::FormatFloat(kPaper[m].f1[1]),
                eval::FormatFloat(measured_f1[m][1]),
                eval::FormatFloat(kPaper[m].f1[2]),
                eval::FormatFloat(measured_f1[m][2])});
  }
  cmp.Print();

  bool dar_wins = true;
  for (int aspect = 0; aspect < 3; ++aspect) {
    for (int m = 0; m < 5; ++m) {
      if (measured_f1[5][aspect] < measured_f1[m][aspect]) dar_wins = false;
    }
  }
  std::printf("\nShape check — DAR best F1 in all aspects (paper: yes): %s\n",
              dar_wins ? "yes" : "NO");
  return 0;
}
