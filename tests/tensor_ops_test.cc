// Tests for tensor/tensor_ops.h kernels.
#include "tensor/tensor_ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/random.h"

namespace dar {
namespace {

Tensor T2(std::vector<float> v, int64_t rows, int64_t cols) {
  return Tensor(Shape{rows, cols}, std::move(v));
}

TEST(ElementwiseTest, AddSubMulDiv) {
  Tensor a = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  Tensor b = Tensor::FromVector({4.0f, 5.0f, 6.0f});
  EXPECT_TRUE(Add(a, b).AllClose(Tensor::FromVector({5.0f, 7.0f, 9.0f})));
  EXPECT_TRUE(Sub(a, b).AllClose(Tensor::FromVector({-3.0f, -3.0f, -3.0f})));
  EXPECT_TRUE(Mul(a, b).AllClose(Tensor::FromVector({4.0f, 10.0f, 18.0f})));
  EXPECT_TRUE(Div(b, a).AllClose(Tensor::FromVector({4.0f, 2.5f, 2.0f})));
}

TEST(ElementwiseTest, ShapeMismatchAborts) {
  Tensor a(Shape{2});
  Tensor b(Shape{3});
  EXPECT_DEATH(Add(a, b), "equal shapes");
}

TEST(ElementwiseTest, InPlaceOps) {
  Tensor a = Tensor::FromVector({1.0f, 2.0f});
  Tensor b = Tensor::FromVector({10.0f, 20.0f});
  AddInPlace(a, b);
  EXPECT_TRUE(a.AllClose(Tensor::FromVector({11.0f, 22.0f})));
  AxpyInPlace(a, b, 0.5f);
  EXPECT_TRUE(a.AllClose(Tensor::FromVector({16.0f, 32.0f})));
  ScaleInPlace(a, 0.25f);
  EXPECT_TRUE(a.AllClose(Tensor::FromVector({4.0f, 8.0f})));
}

TEST(ElementwiseTest, ScalarOps) {
  Tensor a = Tensor::FromVector({1.0f, -2.0f});
  EXPECT_TRUE(AddScalar(a, 1.0f).AllClose(Tensor::FromVector({2.0f, -1.0f})));
  EXPECT_TRUE(MulScalar(a, -2.0f).AllClose(Tensor::FromVector({-2.0f, 4.0f})));
  EXPECT_TRUE(Neg(a).AllClose(Tensor::FromVector({-1.0f, 2.0f})));
  EXPECT_TRUE(Abs(a).AllClose(Tensor::FromVector({1.0f, 2.0f})));
}

TEST(UnaryTest, MathFunctions) {
  Tensor a = Tensor::FromVector({0.0f, 1.0f});
  EXPECT_NEAR(Exp(a).at(1), std::exp(1.0f), 1e-5f);
  EXPECT_NEAR(Log(Tensor::FromVector({std::exp(2.0f)})).at(0), 2.0f, 1e-4f);
  EXPECT_NEAR(Tanh(a).at(1), std::tanh(1.0f), 1e-5f);
  EXPECT_NEAR(Sigmoid(Tensor::FromVector({0.0f})).at(0), 0.5f, 1e-6f);
  EXPECT_TRUE(Relu(Tensor::FromVector({-1.0f, 2.0f}))
                  .AllClose(Tensor::FromVector({0.0f, 2.0f})));
  EXPECT_NEAR(Sqrt(Tensor::FromVector({9.0f})).at(0), 3.0f, 1e-5f);
}

TEST(UnaryTest, LogClampsNearZero) {
  Tensor out = Log(Tensor::FromVector({0.0f}));
  EXPECT_TRUE(std::isfinite(out.at(0)));
}

TEST(MatMulTest, KnownProduct) {
  Tensor a = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor b = T2({7, 8, 9, 10, 11, 12}, 3, 2);
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(c.AllClose(T2({58, 64, 139, 154}, 2, 2)));
}

TEST(MatMulTest, IdentityIsNoop) {
  Pcg32 rng(3);
  Tensor a = Tensor::Randn({4, 4}, rng);
  EXPECT_TRUE(MatMul(a, Tensor::Eye(4)).AllClose(a, 1e-5f));
  EXPECT_TRUE(MatMul(Tensor::Eye(4), a).AllClose(a, 1e-5f));
}

TEST(MatMulTest, TransposedVariantsAgree) {
  Pcg32 rng(4);
  Tensor a = Tensor::Randn({5, 3}, rng);
  Tensor b = Tensor::Randn({5, 4}, rng);
  // A^T B  ==  transpose(A) * B
  EXPECT_TRUE(MatMulTA(a, b).AllClose(MatMul(Transpose(a), b), 1e-4f));
  Tensor c = Tensor::Randn({6, 3}, rng);
  Tensor d = Tensor::Randn({4, 3}, rng);
  // C D^T  ==  C * transpose(D)
  EXPECT_TRUE(MatMulTB(c, d).AllClose(MatMul(c, Transpose(d)), 1e-4f));
}

TEST(MatMulTest, InnerDimMismatchAborts) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{4, 2});
  EXPECT_DEATH(MatMul(a, b), "DAR_CHECK");
}

/// Parameterized sweep: matmul against a naive reference over shapes.
class MatMulSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulSweep, MatchesNaive) {
  auto [m, k, n] = GetParam();
  Pcg32 rng(static_cast<uint64_t>(m * 100 + k * 10 + n));
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor c = MatMul(a, b);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += a.at(i, kk) * b.at(kk, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-3f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulSweep,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 7, 3},
                      std::tuple{5, 1, 5}, std::tuple{8, 8, 8},
                      std::tuple{3, 17, 5}, std::tuple{16, 2, 9}));

TEST(BroadcastTest, AddRowBroadcast) {
  Tensor m = T2({1, 2, 3, 4}, 2, 2);
  Tensor row = Tensor::FromVector({10.0f, 20.0f});
  EXPECT_TRUE(AddRowBroadcast(m, row).AllClose(T2({11, 22, 13, 24}, 2, 2)));
}

TEST(BroadcastTest, SumRows) {
  Tensor m = T2({1, 2, 3, 4}, 2, 2);
  EXPECT_TRUE(SumRows(m).AllClose(Tensor::FromVector({4.0f, 6.0f})));
}

TEST(ReduceTest, Aggregates) {
  Tensor a = Tensor::FromVector({1.0f, -2.0f, 3.0f});
  EXPECT_NEAR(SumAll(a), 2.0f, 1e-6f);
  EXPECT_NEAR(MeanAll(a), 2.0f / 3.0f, 1e-6f);
  EXPECT_EQ(MaxAll(a), 3.0f);
  EXPECT_EQ(MinAll(a), -2.0f);
}

TEST(ReduceTest, ArgMaxRows) {
  Tensor m = T2({1, 5, 2, 9, 3, 4}, 2, 3);
  std::vector<int64_t> idx = ArgMaxRows(m);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Pcg32 rng(5);
  Tensor logits = Tensor::Randn({4, 6}, rng, 3.0f);
  Tensor p = SoftmaxRows(logits);
  for (int64_t i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_GT(p.at(i, j), 0.0f);
      sum += p.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, StableUnderLargeLogits) {
  Tensor logits = T2({1000.0f, 999.0f}, 1, 2);
  Tensor p = SoftmaxRows(logits);
  EXPECT_TRUE(std::isfinite(p.at(0, 0)));
  EXPECT_GT(p.at(0, 0), p.at(0, 1));
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Pcg32 rng(6);
  Tensor logits = Tensor::Randn({3, 5}, rng);
  Tensor ls = LogSoftmaxRows(logits);
  Tensor p = SoftmaxRows(logits);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(ls.at(i, j), std::log(p.at(i, j)), 1e-4f);
    }
  }
}

TEST(ShapeOpsTest, Transpose) {
  Tensor m = T2({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor t = Transpose(m);
  EXPECT_EQ(t.size(0), 3);
  EXPECT_EQ(t.at(2, 1), 6.0f);
}

TEST(ShapeOpsTest, ConcatCols) {
  Tensor a = T2({1, 2, 3, 4}, 2, 2);
  Tensor b = T2({5, 6}, 2, 1);
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c.size(1), 3);
  EXPECT_EQ(c.at(0, 2), 5.0f);
  EXPECT_EQ(c.at(1, 1), 4.0f);
}

TEST(ShapeOpsTest, SliceAndSetTime) {
  Tensor x(Shape{2, 3, 2});
  Tensor step = T2({1, 2, 3, 4}, 2, 2);
  SetTime(x, 1, step);
  Tensor got = SliceTime(x, 1);
  EXPECT_TRUE(got.AllClose(step));
  EXPECT_EQ(SliceTime(x, 0).at(0, 0), 0.0f);
}

TEST(ShapeOpsTest, Norm2) {
  EXPECT_NEAR(Norm2(Tensor::FromVector({3.0f, 4.0f})), 5.0f, 1e-5f);
}

}  // namespace
}  // namespace dar
