// Tests for eval/aggregate.h: multi-seed summaries.
#include "eval/aggregate.h"

#include <gtest/gtest.h>

#include "datasets/beer.h"

namespace dar {
namespace eval {
namespace {

MethodResult FakeResult(float f1, float acc) {
  MethodResult result;
  result.method = "FAKE";
  result.rationale.f1 = f1;
  result.rationale.precision = f1;
  result.rationale.recall = f1;
  result.rationale.sparsity = 0.1f;
  result.rationale_acc = acc;
  result.full_text_acc = acc;
  return result;
}

TEST(AggregateTest, MeanAndStddev) {
  std::vector<MethodResult> results = {FakeResult(0.6f, 0.9f),
                                       FakeResult(0.8f, 0.9f)};
  AggregateResult aggregate = Aggregate("FAKE", results);
  EXPECT_EQ(aggregate.num_seeds, 2);
  EXPECT_NEAR(aggregate.f1.mean, 0.7f, 1e-6f);
  EXPECT_NEAR(aggregate.f1.stddev, 0.1f, 1e-6f);
  EXPECT_NEAR(aggregate.rationale_acc.stddev, 0.0f, 1e-6f);
}

TEST(AggregateTest, SingleResultHasZeroSpread) {
  AggregateResult aggregate = Aggregate("FAKE", {FakeResult(0.5f, 0.8f)});
  EXPECT_EQ(aggregate.f1.stddev, 0.0f);
}

TEST(AggregateTest, ToStringFormatsPercentages) {
  MetricSummary summary{0.642f, 0.021f};
  EXPECT_EQ(summary.ToString(), "64.2 ± 2.1");
}

TEST(AggregateTest, EmptyResultsAbort) {
  EXPECT_DEATH(Aggregate("FAKE", {}), "DAR_CHECK");
}

TEST(AggregateTest, RunAcrossSeedsEndToEnd) {
  datasets::SyntheticDataset ds = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAroma, {.train = 96, .dev = 24, .test = 24},
      /*seed=*/101);
  core::TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  config.batch_size = 16;
  config.epochs = 2;
  config.pretrain_epochs = 1;
  config.dropout = 0.0f;
  AggregateResult aggregate = RunAcrossSeeds("RNP", ds, config, {1, 2});
  EXPECT_EQ(aggregate.num_seeds, 2);
  EXPECT_GE(aggregate.f1.mean, 0.0f);
  EXPECT_LE(aggregate.f1.mean, 1.0f);
  EXPECT_GE(aggregate.rationale_acc.mean, 0.0f);
}

}  // namespace
}  // namespace eval
}  // namespace dar
