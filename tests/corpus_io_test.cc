// Tests for data/corpus_io.h: the plain-text corpus format.
#include "data/corpus_io.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace dar {
namespace data {
namespace {

TEST(ParseCorpusTest, BasicExamples) {
  Vocabulary vocab;
  CorpusLoadResult result = ParseCorpus(
      "1\tthe beer is golden\n"
      "0\tmurky pour\n",
      vocab, /*grow_vocabulary=*/true);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.examples.size(), 2u);
  EXPECT_EQ(result.examples[0].label, 1);
  EXPECT_EQ(result.examples[0].tokens.size(), 4u);
  EXPECT_EQ(result.examples[1].label, 0);
  EXPECT_TRUE(result.examples[0].rationale.empty());
  EXPECT_TRUE(vocab.Contains("golden"));
}

TEST(ParseCorpusTest, RationaleBits) {
  Vocabulary vocab;
  CorpusLoadResult result = ParseCorpus("1\ta b c\t010\n", vocab, true);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.examples[0].rationale.size(), 3u);
  EXPECT_EQ(result.examples[0].rationale[0], 0);
  EXPECT_EQ(result.examples[0].rationale[1], 1);
}

TEST(ParseCorpusTest, SkipsCommentsAndBlanks) {
  Vocabulary vocab;
  CorpusLoadResult result =
      ParseCorpus("# header\n\n1\tx y\n\n# trailing\n", vocab, true);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.examples.size(), 1u);
}

TEST(ParseCorpusTest, WindowsLineEndings) {
  Vocabulary vocab;
  CorpusLoadResult result = ParseCorpus("1\ta b\r\n0\tc d\r\n", vocab, true);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.examples.size(), 2u);
  EXPECT_EQ(result.examples[0].tokens.size(), 2u);
}

TEST(ParseCorpusTest, FrozenVocabularyMapsToUnk) {
  Vocabulary vocab;
  vocab.AddToken("known");
  CorpusLoadResult result =
      ParseCorpus("0\tknown unknown\n", vocab, /*grow_vocabulary=*/false);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.examples[0].tokens[0], vocab.IdOrUnk("known"));
  EXPECT_EQ(result.examples[0].tokens[1], Vocabulary::kUnkId);
  EXPECT_FALSE(vocab.Contains("unknown"));
}

TEST(ParseCorpusTest, RejectsBadLabel) {
  Vocabulary vocab;
  CorpusLoadResult result = ParseCorpus("abc\tx y\n", vocab, true);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 1"), std::string::npos);
}

TEST(ParseCorpusTest, RejectsNegativeLabel) {
  Vocabulary vocab;
  EXPECT_FALSE(ParseCorpus("-1\tx\n", vocab, true).ok);
}

TEST(ParseCorpusTest, RejectsFieldCountErrors) {
  Vocabulary vocab;
  EXPECT_FALSE(ParseCorpus("1\n", vocab, true).ok);
  EXPECT_FALSE(ParseCorpus("1\ta\t1\textra\n", vocab, true).ok);
}

TEST(ParseCorpusTest, RejectsEmptyTokenList) {
  Vocabulary vocab;
  EXPECT_FALSE(ParseCorpus("1\t \n", vocab, true).ok);
}

TEST(ParseCorpusTest, RejectsRationaleLengthMismatch) {
  Vocabulary vocab;
  CorpusLoadResult result = ParseCorpus("1\ta b c\t01\n", vocab, true);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("length"), std::string::npos);
}

TEST(ParseCorpusTest, RejectsNonBinaryRationale) {
  Vocabulary vocab;
  EXPECT_FALSE(ParseCorpus("1\ta b\t0x\n", vocab, true).ok);
}

TEST(FormatCorpusTest, RoundTrip) {
  Vocabulary vocab;
  std::vector<Example> examples;
  {
    CorpusLoadResult parsed = ParseCorpus(
        "1\tthe head is pale\t0011\n"
        "0\tgreat beer\n",
        vocab, true);
    ASSERT_TRUE(parsed.ok);
    examples = std::move(parsed.examples);
  }
  std::string text = FormatCorpus(examples, vocab);
  Vocabulary vocab2;
  CorpusLoadResult reparsed = ParseCorpus(text, vocab2, true);
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  ASSERT_EQ(reparsed.examples.size(), examples.size());
  for (size_t i = 0; i < examples.size(); ++i) {
    EXPECT_EQ(reparsed.examples[i].label, examples[i].label);
    EXPECT_EQ(reparsed.examples[i].tokens.size(), examples[i].tokens.size());
    EXPECT_EQ(reparsed.examples[i].rationale, examples[i].rationale);
  }
}

TEST(CorpusFileTest, SaveAndLoad) {
  Vocabulary vocab;
  CorpusLoadResult parsed =
      ParseCorpus("1\tx y z\t101\n", vocab, true);
  ASSERT_TRUE(parsed.ok);
  std::string path = ::testing::TempDir() + "/dar_corpus_test.txt";
  ASSERT_TRUE(SaveCorpusFile(path, parsed.examples, vocab));
  Vocabulary vocab2;
  CorpusLoadResult loaded = LoadCorpusFile(path, vocab2, true);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.examples.size(), 1u);
  EXPECT_EQ(loaded.examples[0].rationale.size(), 3u);
  std::remove(path.c_str());
}

TEST(CorpusFileTest, MissingFileReportsError) {
  Vocabulary vocab;
  CorpusLoadResult result =
      LoadCorpusFile("/nonexistent/path/corpus.txt", vocab, true);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace data
}  // namespace dar
