// Tests for the serving subsystem (src/serve/): session, micro-batcher,
// registry, stats, thread pool, and checkpoint-restored serving.
#include <atomic>
#include <future>
#include <thread>

#include <gtest/gtest.h>

#include "core/dar.h"
#include "core/rnp.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "serve/batcher.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "serve/thread_pool.h"

namespace dar {
namespace serve {
namespace {

/// A tiny dataset + untrained RNP model: serving correctness (batched ==
/// unbatched, determinism, routing) does not require a trained model, and
/// random weights still produce non-trivial masks and logits.
datasets::SyntheticDataset TinyDataset(uint64_t seed = 3) {
  return datasets::MakeBeerDataset(datasets::BeerAspect::kAppearance,
                                   {.train = 40, .dev = 10, .test = 10}, seed);
}

core::TrainConfig TinyConfig() {
  core::TrainConfig config;
  config.embedding_dim = 16;
  config.hidden_dim = 8;
  return config;
}

std::unique_ptr<InferenceSession> MakeSession(uint64_t seed = 3) {
  datasets::SyntheticDataset dataset = TinyDataset(seed);
  core::TrainConfig config = TinyConfig();
  config.seed = seed;
  auto model = std::make_unique<core::RnpModel>(
      eval::BuildEmbeddings(dataset, config), config);
  return std::make_unique<InferenceSession>(std::move(model), dataset.vocab);
}

/// Sample request texts built from dataset vocabulary tokens (so they
/// exercise real embeddings) with varying lengths.
std::vector<std::string> SampleTexts(const datasets::SyntheticDataset& dataset,
                                     size_t count) {
  std::vector<std::string> texts;
  Pcg32 rng(99);
  for (size_t i = 0; i < count; ++i) {
    int len = 3 + static_cast<int>(rng.Below(12));
    std::string text;
    for (int t = 0; t < len; ++t) {
      if (t) text += ' ';
      // Skip <pad>/<unk>: real requests carry real words.
      int64_t id = 2 + static_cast<int64_t>(
                           rng.Below(static_cast<uint32_t>(
                               dataset.vocab.size() - 2)));
      text += dataset.vocab.Token(id);
    }
    texts.push_back(text);
  }
  return texts;
}

void ExpectSameResult(const InferenceResult& a, const InferenceResult& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_FLOAT_EQ(a.confidence, b.confidence);
  ASSERT_EQ(a.mask.size(), b.mask.size());
  EXPECT_EQ(a.mask, b.mask);
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_EQ(a.rationale_text, b.rationale_text);
  ASSERT_EQ(a.spans.size(), b.spans.size());
  for (size_t s = 0; s < a.spans.size(); ++s) {
    EXPECT_TRUE(a.spans[s] == b.spans[s]);
  }
}

TEST(MaskToSpansTest, CollapsesRuns) {
  EXPECT_TRUE(MaskToSpans({}).empty());
  EXPECT_TRUE(MaskToSpans({0, 0, 0}).empty());

  std::vector<RationaleSpan> spans = MaskToSpans({1, 1, 0, 1, 0, 0, 1});
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_TRUE((spans[0] == RationaleSpan{0, 2}));
  EXPECT_TRUE((spans[1] == RationaleSpan{3, 4}));
  EXPECT_TRUE((spans[2] == RationaleSpan{6, 7}));

  spans = MaskToSpans({1, 1, 1});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE((spans[0] == RationaleSpan{0, 3}));
}

TEST(InferenceSessionTest, PredictReturnsConsistentFields) {
  auto session = MakeSession();
  InferenceResult r = session->Predict("the beer looks great great great");
  EXPECT_GE(r.label, 0);
  EXPECT_LT(r.label, 2);
  EXPECT_GT(r.confidence, 0.0f);
  EXPECT_LE(r.confidence, 1.0f);
  ASSERT_EQ(r.probs.size(), 2u);
  EXPECT_NEAR(r.probs[0] + r.probs[1], 1.0f, 1e-5f);
  EXPECT_EQ(r.tokens.size(), 6u);
  EXPECT_EQ(r.mask.size(), 6u);
  // Spans and rationale text are consistent with the mask.
  size_t selected = 0;
  for (uint8_t m : r.mask) selected += m;
  size_t span_tokens = 0;
  for (const RationaleSpan& s : r.spans) {
    span_tokens += static_cast<size_t>(s.end - s.begin);
  }
  EXPECT_EQ(selected, span_tokens);
}

TEST(InferenceSessionTest, EmptyTextServable) {
  auto session = MakeSession();
  InferenceResult r = session->Predict("");
  EXPECT_EQ(r.tokens.size(), 1u);
  EXPECT_EQ(r.tokens[0], "<unk>");
}

TEST(InferenceSessionTest, OutOfVocabularyMapsToUnk) {
  auto session = MakeSession();
  InferenceResult r = session->Predict("zzzzqqqq_not_a_word");
  ASSERT_EQ(r.tokens.size(), 1u);
  EXPECT_EQ(r.tokens[0], "<unk>");
}

TEST(InferenceSessionTest, PredictIsDeterministic) {
  auto session = MakeSession();
  std::string text = "smells of citrus and pine with a thin head";
  InferenceResult a = session->Predict(text);
  InferenceResult b = session->Predict(text);
  ExpectSameResult(a, b);
}

TEST(InferenceSessionTest, BatchedForwardMatchesSingleRequests) {
  datasets::SyntheticDataset dataset = TinyDataset();
  auto session = MakeSession();
  std::vector<std::string> texts = SampleTexts(dataset, 17);
  std::vector<InferenceResult> batched = session->PredictBatch(texts);
  ASSERT_EQ(batched.size(), texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    InferenceResult single = session->Predict(texts[i]);
    ExpectSameResult(batched[i], single);
  }
}

TEST(InferenceSessionTest, FromCheckpointRestoresExactModel) {
  datasets::SyntheticDataset dataset = TinyDataset();
  core::TrainConfig config = TinyConfig();
  Tensor embeddings = eval::BuildEmbeddings(dataset, config);

  auto trained = std::make_unique<core::DarModel>(embeddings, config);
  std::string path = ::testing::TempDir() + "/serve_session_test.ckpt";
  ASSERT_TRUE(core::SaveRationalizer(*trained, path));

  config.seed = 1234;  // fresh model starts from different random weights
  auto fresh = std::make_unique<core::DarModel>(embeddings, config);
  std::string error;
  auto restored = InferenceSession::FromCheckpoint(
      std::move(fresh), dataset.vocab, path, &error);
  ASSERT_NE(restored, nullptr) << error;

  InferenceSession original(std::move(trained), dataset.vocab);
  for (const std::string& text : SampleTexts(dataset, 5)) {
    ExpectSameResult(original.Predict(text), restored->Predict(text));
  }
  std::remove(path.c_str());
}

TEST(InferenceSessionTest, FromCheckpointRejectsMissingFile) {
  datasets::SyntheticDataset dataset = TinyDataset();
  core::TrainConfig config = TinyConfig();
  auto model = std::make_unique<core::RnpModel>(
      eval::BuildEmbeddings(dataset, config), config);
  std::string error;
  auto session = InferenceSession::FromCheckpoint(
      std::move(model), dataset.vocab, "/nonexistent/model.ckpt", &error);
  EXPECT_EQ(session, nullptr);
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(MicroBatcherTest, BatchedResultsEqualSingleRequestPath) {
  datasets::SyntheticDataset dataset = TinyDataset();
  auto session = MakeSession();
  std::vector<std::string> texts = SampleTexts(dataset, 40);

  BatcherConfig config;
  config.max_batch = 8;
  config.max_wait_us = 500;
  config.num_workers = 2;
  MicroBatcher batcher(*session, config);

  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(texts.size());
  for (const std::string& text : texts) futures.push_back(batcher.Submit(text));
  for (size_t i = 0; i < texts.size(); ++i) {
    InferenceResult batched = futures[i].get();
    InferenceResult single = session->Predict(texts[i]);
    ExpectSameResult(batched, single);
  }
}

TEST(MicroBatcherTest, ConcurrentProducersAllResolve) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 30;
  datasets::SyntheticDataset dataset = TinyDataset();
  auto session = MakeSession();
  std::vector<std::string> texts =
      SampleTexts(dataset, kProducers * kPerProducer);

  BatcherConfig config;
  config.max_batch = 16;
  config.max_wait_us = 200;
  config.num_workers = 3;
  std::atomic<int> resolved{0};
  {
    MicroBatcher batcher(*session, config);
    std::vector<std::thread> producers;
    std::vector<std::vector<std::future<InferenceResult>>> futures(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          futures[static_cast<size_t>(p)].push_back(
              batcher.Submit(texts[static_cast<size_t>(p * kPerProducer + i)]));
        }
      });
    }
    for (std::thread& t : producers) t.join();
    for (int p = 0; p < kProducers; ++p) {
      for (int i = 0; i < kPerProducer; ++i) {
        InferenceResult batched = futures[static_cast<size_t>(p)]
                                      [static_cast<size_t>(i)].get();
        InferenceResult single =
            session->Predict(texts[static_cast<size_t>(p * kPerProducer + i)]);
        ExpectSameResult(batched, single);
        ++resolved;
      }
    }
  }
  EXPECT_EQ(resolved.load(), kProducers * kPerProducer);
}

TEST(MicroBatcherTest, ShutdownDrainsQueue) {
  auto session = MakeSession();
  BatcherConfig config;
  config.max_batch = 4;
  config.max_wait_us = 50;
  config.num_workers = 1;
  std::vector<std::future<InferenceResult>> futures;
  {
    MicroBatcher batcher(*session, config);
    for (int i = 0; i < 10; ++i) {
      futures.push_back(batcher.Submit("a beer with some hops"));
    }
    // Destructor shuts down; every future must still resolve.
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
}

TEST(MicroBatcherTest, CoalescesUnderConcurrentLoad) {
  auto session = MakeSession();
  BatcherConfig config;
  config.max_batch = 8;
  config.max_wait_us = 2000;
  config.num_workers = 1;
  {
    MicroBatcher batcher(*session, config);
    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 32; ++i) {
      futures.push_back(batcher.Submit("crisp golden lager"));
    }
    for (auto& f : futures) f.get();
  }
  StatsSnapshot snapshot = session->stats().Snapshot();
  EXPECT_EQ(snapshot.requests, 32);
  // With one worker and a linger window, requests must have been coalesced
  // into far fewer forwards than requests.
  EXPECT_LT(snapshot.batches, 32);
  EXPECT_GT(snapshot.mean_batch_size, 1.0);
}

TEST(MicroBatcherTest, BoundedQueueStillServesEverything) {
  datasets::SyntheticDataset dataset = TinyDataset();
  auto session = MakeSession();
  std::vector<std::string> texts = SampleTexts(dataset, 48);

  BatcherConfig config;
  config.max_batch = 4;
  config.max_wait_us = 100;
  config.num_workers = 1;
  config.max_queue = 6;  // far fewer slots than in-flight submissions
  MicroBatcher batcher(*session, config);

  constexpr int kProducers = 3;
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<InferenceResult>>> futures(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = static_cast<size_t>(p); i < texts.size();
           i += kProducers) {
        futures[static_cast<size_t>(p)].push_back(batcher.Submit(texts[i]));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  // Backpressure may block submitters but must never drop or corrupt a
  // request: every future resolves to the single-request result.
  for (int p = 0; p < kProducers; ++p) {
    size_t slot = 0;
    for (size_t i = static_cast<size_t>(p); i < texts.size();
         i += kProducers, ++slot) {
      InferenceResult batched = futures[static_cast<size_t>(p)][slot].get();
      ExpectSameResult(batched, session->Predict(texts[i]));
    }
  }
}

TEST(MicroBatcherTest, TrySubmitRejectsAtQueueBound) {
  auto session = MakeSession();
  BatcherConfig config;
  config.max_batch = 8;
  // A long linger keeps the lone worker waiting for the batch to fill
  // *without dequeuing* — the queued request deterministically occupies
  // the one queue slot while we probe the bound.
  config.max_wait_us = 1'500'000;
  config.num_workers = 1;
  config.max_queue = 1;
  MicroBatcher batcher(*session, config);

  auto accepted = batcher.TrySubmit("first request fills the queue");
  ASSERT_TRUE(accepted.has_value());
  auto rejected = batcher.TrySubmit("second request must shed");
  EXPECT_FALSE(rejected.has_value());

  // The accepted request is served normally once the linger expires, and
  // rejection never corrupted it.
  ExpectSameResult(accepted->get(),
                   session->Predict("first request fills the queue"));
  // With the queue drained, admission reopens.
  auto after = batcher.TrySubmit("third request fits again");
  EXPECT_TRUE(after.has_value());
  ExpectSameResult(after->get(),
                   session->Predict("third request fits again"));
}

TEST(MicroBatcherTest, TrySubmitUnboundedNeverRejects) {
  auto session = MakeSession();
  BatcherConfig config;
  config.max_batch = 2;
  config.max_wait_us = 0;
  config.num_workers = 1;
  config.max_queue = 0;  // unbounded
  MicroBatcher batcher(*session, config);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 32; ++i) {
    auto future = batcher.TrySubmit("always admitted");
    ASSERT_TRUE(future.has_value()) << i;
    futures.push_back(std::move(*future));
  }
  InferenceResult direct = session->Predict("always admitted");
  for (auto& future : futures) ExpectSameResult(future.get(), direct);
}

TEST(ServingStatsTest, SnapshotAggregates) {
  ServingStats stats;
  stats.RecordBatch(1);
  stats.RecordBatch(3);
  stats.RecordBatch(4);
  for (int64_t us : {100, 200, 300, 400, 500, 600, 700, 800}) {
    stats.RecordLatencyUs(us);
  }
  StatsSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.requests, 8);
  EXPECT_EQ(snapshot.batches, 3);
  EXPECT_DOUBLE_EQ(snapshot.mean_batch_size, 8.0 / 3.0);
  EXPECT_EQ(snapshot.batch_size_histogram.at(1), 1);
  EXPECT_EQ(snapshot.batch_size_histogram.at(3), 1);
  EXPECT_EQ(snapshot.batch_size_histogram.at(4), 1);
  EXPECT_EQ(snapshot.latency_p50_us, 400);
  EXPECT_EQ(snapshot.latency_p95_us, 800);
  EXPECT_EQ(snapshot.latency_p99_us, 800);
  EXPECT_EQ(snapshot.latency_max_us, 800);
  EXPECT_FALSE(snapshot.ToString().empty());

  stats.Reset();
  snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.requests, 0);
  EXPECT_EQ(snapshot.latency_p99_us, 0);
}

TEST(ModelRegistryTest, RoutesByName) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.Contains("beer"));
  EXPECT_EQ(registry.Predict("beer", "some text"), std::nullopt);

  std::shared_ptr<InferenceSession> beer = MakeSession(3);
  std::shared_ptr<InferenceSession> hotel = MakeSession(7);
  registry.Register("beer", beer);
  registry.Register("hotel", hotel);

  std::vector<std::string> names = registry.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "beer");
  EXPECT_EQ(names[1], "hotel");
  EXPECT_EQ(registry.Get("beer"), beer);

  // Routing reaches the right model: each session records its own stats.
  ASSERT_TRUE(registry.Predict("beer", "pours a hazy amber").has_value());
  EXPECT_EQ(beer->stats().Snapshot().requests, 1);
  EXPECT_EQ(hotel->stats().Snapshot().requests, 0);

  EXPECT_TRUE(registry.Unregister("hotel"));
  EXPECT_FALSE(registry.Unregister("hotel"));
  EXPECT_FALSE(registry.Contains("hotel"));
}

TEST(ModelRegistryTest, PublishMetricsLabelsSeriesPerModel) {
  obs::MetricsRegistry metrics;
  ModelRegistry registry;
  registry.PublishMetrics(&metrics);
  registry.Register("beer", MakeSession(3));
  registry.Register("hotel", MakeSession(7));

  ASSERT_TRUE(registry.Predict("beer", "pours a hazy amber").has_value());
  ASSERT_TRUE(registry.Predict("beer", "thin head but clear").has_value());
  ASSERT_TRUE(registry.Predict("hotel", "spotless lobby").has_value());

  // One shared exposition carries a distinct series per model.
  std::string exposition = metrics.ExportPrometheus();
  EXPECT_NE(exposition.find("serve_requests_total{model=\"beer\"} 2"),
            std::string::npos)
      << exposition;
  EXPECT_NE(exposition.find("serve_requests_total{model=\"hotel\"} 1"),
            std::string::npos)
      << exposition;
  // Latency histograms carry the model label merged with the bucket label.
  EXPECT_NE(exposition.find("serve_latency_us_bucket{model=\"beer\",le="),
            std::string::npos)
      << exposition;
}

TEST(ModelRegistryTest, DestructionRestoresSessionStatsBinding) {
  std::shared_ptr<InferenceSession> session = MakeSession(3);
  {
    obs::MetricsRegistry metrics;
    ModelRegistry registry;
    registry.PublishMetrics(&metrics);
    registry.Register("beer", session);
    ASSERT_TRUE(registry.Predict("beer", "pours a hazy amber").has_value());
    // The session's stats now publish into `metrics`, which dies with this
    // scope. The registry's destructor must rebind them to a private
    // registry — before it did, the lines below wrote freed memory
    // (caught by ASan; see bench/serve_throughput.cc's router arms, which
    // hit exactly this sequence).
  }
  session->stats().Reset();
  ASSERT_FALSE(
      session->Predict("still serving after the registry died").mask.empty());
  EXPECT_EQ(session->stats().Snapshot().requests, 1);
}

TEST(ModelRegistryTest, HotSwapAndUnregisterKeepPrivateStatsPrivate) {
  // Sessions never rebound (no PublishMetrics) must keep their private
  // stats across hot swap, unregister, and registry destruction — the
  // destructor only undoes bindings it made, so recorded counts survive.
  std::shared_ptr<InferenceSession> first = MakeSession(3);
  std::shared_ptr<InferenceSession> second = MakeSession(7);
  {
    ModelRegistry registry;
    registry.Register("beer", first);
    ASSERT_TRUE(registry.Predict("beer", "pours a hazy amber").has_value());
    registry.Register("beer", second);  // hot swap
    ASSERT_TRUE(registry.Predict("beer", "thin head but clear").has_value());
    EXPECT_TRUE(registry.Unregister("beer"));
  }
  EXPECT_EQ(first->stats().Snapshot().requests, 1);
  EXPECT_EQ(second->stats().Snapshot().requests, 1);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
    // Pool is reusable after Wait.
    pool.Submit([&counter] { ++counter; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 101);
}

}  // namespace
}  // namespace serve
}  // namespace dar
