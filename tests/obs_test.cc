// Tests for src/obs/ and its integrations: percentile math, histogram
// estimation, concurrent registry updates (the TSan lane builds this
// target), trace gating, the ServingStats migration, and the training
// telemetry path — including passivity (an attached observer never changes
// the trajectory) and the paper-Fig.-3 property that DAR's rationale-shift
// gauge ends below vanilla RNP's.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "core/parallel_trainer.h"
#include "core/telemetry.h"
#include "core/trainer.h"
#include "datasets/beer.h"
#include "datasets/hotel.h"
#include "eval/experiment.h"
#include "obs/trace.h"
#include "obs/train_observer.h"
#include "serve/stats.h"

namespace dar {
namespace {

// ---------------------------------------------------------------------------
// Percentile math.

TEST(PercentileSortedTest, EmptySampleIsZero) {
  EXPECT_EQ(obs::PercentileSorted({}, 50.0), 0);
  EXPECT_EQ(obs::PercentileSorted({}, 99.0), 0);
}

TEST(PercentileSortedTest, SingleElement) {
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(obs::PercentileSorted({7}, p), 7) << "p=" << p;
  }
}

TEST(PercentileSortedTest, AllTied) {
  std::vector<int64_t> tied(100, 42);
  EXPECT_EQ(obs::PercentileSorted(tied, 50.0), 42);
  EXPECT_EQ(obs::PercentileSorted(tied, 99.0), 42);
}

TEST(PercentileSortedTest, NearestRankOnUniform) {
  std::vector<int64_t> sorted(100);
  for (int i = 0; i < 100; ++i) sorted[i] = i + 1;  // 1..100
  EXPECT_EQ(obs::PercentileSorted(sorted, 50.0), 50);
  EXPECT_EQ(obs::PercentileSorted(sorted, 95.0), 95);
  EXPECT_EQ(obs::PercentileSorted(sorted, 99.0), 99);
  EXPECT_EQ(obs::PercentileSorted(sorted, 100.0), 100);
}

TEST(PercentileSortedTest, AdversarialHeavyTail) {
  // 99 fast requests, one 1000x outlier: p50/p95 must not see the tail,
  // p99 nearest-rank is still the 99th sample, max-like p100 the outlier.
  std::vector<int64_t> sorted(99, 10);
  sorted.push_back(10000);
  EXPECT_EQ(obs::PercentileSorted(sorted, 50.0), 10);
  EXPECT_EQ(obs::PercentileSorted(sorted, 95.0), 10);
  EXPECT_EQ(obs::PercentileSorted(sorted, 99.0), 10);
  EXPECT_EQ(obs::PercentileSorted(sorted, 100.0), 10000);
}

TEST(PercentileSortedTest, TwoElements) {
  EXPECT_EQ(obs::PercentileSorted({1, 9}, 50.0), 1);
  EXPECT_EQ(obs::PercentileSorted({1, 9}, 51.0), 9);
}

// ---------------------------------------------------------------------------
// Histogram.

TEST(HistogramTest, EmptyHistogram) {
  obs::Histogram hist(obs::DurationBucketsUs());
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.Percentile(50.0), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
}

TEST(HistogramTest, EmptyPercentileIsZeroForEveryP) {
  // Convention (metrics.h): degenerate inputs have defined values. An
  // empty histogram answers 0 for any percentile, never NaN.
  obs::Histogram hist({10.0, 20.0});
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(hist.Percentile(p), 0.0) << "p=" << p;
  }
}

TEST(HistogramTest, SingleSampleReportsItExactly) {
  // A single observation must come back exactly — not as the upper edge
  // of whatever bucket it landed in (13 would otherwise estimate as 20).
  obs::Histogram hist({10.0, 20.0, 50.0});
  hist.Observe(13.0);
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(hist.Percentile(p), 13.0) << "p=" << p;
  }
}

TEST(HistogramTest, BucketEdgesAreInclusiveUppers) {
  obs::Histogram hist({10.0, 20.0});
  hist.Observe(10.0);  // exactly on the first edge -> first bucket
  hist.Observe(10.5);  // -> second bucket
  hist.Observe(25.0);  // -> overflow bucket
  std::vector<int64_t> counts = hist.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
}

TEST(HistogramTest, ExactStatsAreExact) {
  obs::Histogram hist(obs::DurationBucketsUs());
  double sum = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    hist.Observe(static_cast<double>(i));
    sum += i;
  }
  EXPECT_EQ(hist.count(), 1000);
  EXPECT_DOUBLE_EQ(hist.sum(), sum);
  EXPECT_DOUBLE_EQ(hist.max(), 1000.0);
}

TEST(HistogramTest, PercentileWithinBucketResolution) {
  // Uniform 1..1000: the estimator must land inside the bucket that holds
  // the exact nearest-rank value (1-2-5 ladder => factor <= 2.5 off).
  obs::Histogram hist(obs::DurationBucketsUs());
  std::vector<int64_t> exact;
  for (int i = 1; i <= 1000; ++i) {
    hist.Observe(static_cast<double>(i));
    exact.push_back(i);
  }
  for (double p : {50.0, 95.0, 99.0}) {
    double est = hist.Percentile(p);
    double truth = static_cast<double>(obs::PercentileSorted(exact, p));
    EXPECT_GE(est, truth / 2.5) << "p=" << p;
    EXPECT_LE(est, truth * 2.5) << "p=" << p;
    EXPECT_LE(est, hist.max()) << "p=" << p;
  }
}

TEST(HistogramTest, OverflowBucketReportsExactMax) {
  obs::Histogram hist({10.0});
  hist.Observe(123456.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(99.0), 123456.0);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  obs::Histogram hist(obs::DurationBucketsUs());
  Pcg32 rng(7, 3);
  for (int i = 0; i < 5000; ++i) {
    hist.Observe(static_cast<double>(1 + rng.Below(100000)));
  }
  EXPECT_LE(hist.Percentile(50.0), hist.Percentile(95.0));
  EXPECT_LE(hist.Percentile(95.0), hist.Percentile(99.0));
  EXPECT_LE(hist.Percentile(99.0), hist.max());
}

TEST(HistogramTest, MergeCountsMatchesObserve) {
  obs::Histogram direct(obs::DurationBucketsUs());
  obs::Histogram merged(obs::DurationBucketsUs());
  std::vector<int64_t> buckets(obs::DurationBucketsUs().size() + 1, 0);
  int64_t count = 0;
  double sum = 0.0, max = 0.0;
  const std::vector<double>& bounds = obs::DurationBucketsUs();
  for (int i = 1; i <= 300; ++i) {
    double v = static_cast<double>(i * 37 % 9001);
    direct.Observe(v);
    size_t idx = static_cast<size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
    ++buckets[idx];
    ++count;
    sum += v;
    max = std::max(max, v);
  }
  merged.MergeCounts(buckets.data(), count, sum, max);
  EXPECT_EQ(direct.BucketCounts(), merged.BucketCounts());
  EXPECT_EQ(direct.count(), merged.count());
  EXPECT_DOUBLE_EQ(direct.sum(), merged.sum());
  EXPECT_DOUBLE_EQ(direct.Percentile(95.0), merged.Percentile(95.0));
}

// ---------------------------------------------------------------------------
// Registry: concurrency (TSan builds this test) and exporters.

TEST(MetricsRegistryTest, ConcurrentUpdatesAreExact) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Half the threads race instrument *creation* too, not just updates.
      obs::Counter& counter = registry.GetCounter("c");
      obs::Gauge& gauge = registry.GetGauge("g");
      obs::Histogram& hist =
          registry.GetHistogram("h", obs::DurationBucketsUs());
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        gauge.Set(static_cast<double>(i));
        hist.Observe(static_cast<double>(i % 1000));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("c").value(), kThreads * kPerThread);
  obs::Histogram& hist = registry.GetHistogram("h", obs::DurationBucketsUs());
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  double one_thread_sum = 0.0;
  for (int i = 0; i < kPerThread; ++i) one_thread_sum += i % 1000;
  EXPECT_DOUBLE_EQ(hist.sum(), one_thread_sum * kThreads);
}

TEST(MetricsRegistryTest, JsonlExportShape) {
  obs::MetricsRegistry registry;
  registry.GetCounter("requests").Increment(3);
  registry.GetGauge("loss").Set(0.25);
  registry.GetHistogram("lat", obs::DurationBucketsUs()).Observe(42.0);
  std::string jsonl = registry.ExportJsonl();
  EXPECT_NE(jsonl.find("{\"type\":\"counter\",\"name\":\"requests\","
                       "\"value\":3}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("{\"type\":\"gauge\",\"name\":\"loss\","
                       "\"value\":0.25}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"lat\",\"count\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"p99\":"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExportShape) {
  obs::MetricsRegistry registry;
  registry.GetCounter("serve.requests_total").Increment(5);
  registry.GetHistogram("serve.latency_us", obs::DurationBucketsUs())
      .Observe(99.0);
  std::string text = registry.ExportPrometheus();
  EXPECT_NE(text.find("# TYPE serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("serve_requests_total 5"), std::string::npos);
  EXPECT_NE(text.find("serve_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_us_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesEverything) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c").Increment(9);
  registry.GetHistogram("h", obs::DurationBucketsUs()).Observe(1.0);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("c").value(), 0);
  EXPECT_EQ(registry.GetHistogram("h", obs::DurationBucketsUs()).count(), 0);
}

// ---------------------------------------------------------------------------
// Trace spans.

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::SetTraceRegistry(&registry_); }
  void TearDown() override {
    obs::SetTraceLevel(obs::TraceLevel::kOff);
    obs::SetTraceRegistry(nullptr);
  }
  obs::MetricsRegistry registry_;
};

TEST_F(TraceTest, OffLevelRecordsNothing) {
  obs::SetTraceLevel(obs::TraceLevel::kOff);
  { obs::Span span("obs_test.off"); }
  obs::FlushThreadSpans();
  EXPECT_EQ(registry_.ExportJsonl().find("span.obs_test.off.us"),
            std::string::npos);
}

TEST_F(TraceTest, CoarseLevelGatesDetailedSpans) {
  obs::SetTraceLevel(obs::TraceLevel::kCoarse);
  { obs::Span span("obs_test.coarse"); }
  { obs::Span span("obs_test.detailed", obs::TraceLevel::kDetailed); }
  obs::FlushThreadSpans();
  std::string jsonl = registry_.ExportJsonl();
  EXPECT_NE(jsonl.find("span.obs_test.coarse.us"), std::string::npos);
  EXPECT_EQ(jsonl.find("span.obs_test.detailed.us"), std::string::npos);
}

TEST_F(TraceTest, DetailedLevelRecordsBoth) {
  obs::SetTraceLevel(obs::TraceLevel::kDetailed);
  for (int i = 0; i < 10; ++i) {
    obs::Span coarse("obs_test.c2");
    obs::Span detailed("obs_test.d2", obs::TraceLevel::kDetailed);
  }
  obs::FlushThreadSpans();
  obs::Histogram& hist =
      registry_.GetHistogram("span.obs_test.c2.us", obs::DurationBucketsUs());
  EXPECT_EQ(hist.count(), 10);
  obs::Histogram& detailed =
      registry_.GetHistogram("span.obs_test.d2.us", obs::DurationBucketsUs());
  EXPECT_EQ(detailed.count(), 10);
}

TEST_F(TraceTest, WorkerThreadSpansFlushOnThreadExit) {
  obs::SetTraceLevel(obs::TraceLevel::kCoarse);
  std::thread worker([] {
    for (int i = 0; i < 5; ++i) obs::Span span("obs_test.worker");
  });
  worker.join();  // thread exit flushes its buffer
  obs::Histogram& hist = registry_.GetHistogram("span.obs_test.worker.us",
                                                obs::DurationBucketsUs());
  EXPECT_EQ(hist.count(), 5);
}

// ---------------------------------------------------------------------------
// ServingStats migration.

TEST(ServingStatsTest, EmptySnapshotIsAllZeros) {
  // Degenerate-sample convention: a snapshot before any traffic is fully
  // defined — zeros everywhere, no division by the empty sample.
  serve::ServingStats stats;
  serve::StatsSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.requests, 0);
  EXPECT_EQ(snapshot.batches, 0);
  EXPECT_DOUBLE_EQ(snapshot.mean_batch_size, 0.0);
  EXPECT_EQ(snapshot.latency_p50_us, 0);
  EXPECT_EQ(snapshot.latency_p95_us, 0);
  EXPECT_EQ(snapshot.latency_p99_us, 0);
  EXPECT_EQ(snapshot.latency_max_us, 0);
}

TEST(ServingStatsTest, SingleLatencyReportsItAtEveryPercentile) {
  serve::ServingStats stats;
  stats.RecordBatch(1);
  stats.RecordLatencyUs(137);
  serve::StatsSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.latency_p50_us, 137);
  EXPECT_EQ(snapshot.latency_p95_us, 137);
  EXPECT_EQ(snapshot.latency_p99_us, 137);
  EXPECT_EQ(snapshot.latency_max_us, 137);
  // The histogram estimator agrees exactly on a single sample (cap 0
  // forces the estimator path even for the first observation).
  serve::ServingStats capped(nullptr, "serve", /*exact_latency_cap=*/0);
  capped.RecordLatencyUs(137);
  serve::StatsSnapshot est = capped.Snapshot();
  EXPECT_EQ(est.latency_p50_us, 137);
  EXPECT_EQ(est.latency_p99_us, 137);
}

TEST(ServingStatsTest, CountsAndExactPercentilesBelowCap) {
  serve::ServingStats stats;
  stats.RecordBatch(4);
  stats.RecordBatch(4);
  stats.RecordBatch(8);
  std::vector<int64_t> latencies;
  Pcg32 rng(11, 5);
  for (int i = 0; i < 997; ++i) {
    latencies.push_back(1 + static_cast<int64_t>(rng.Below(50000)));
  }
  stats.RecordLatenciesUs(latencies);
  serve::StatsSnapshot snapshot = stats.Snapshot();

  EXPECT_EQ(snapshot.requests, 16);
  EXPECT_EQ(snapshot.batches, 3);
  EXPECT_EQ(snapshot.batch_size_histogram.at(4), 2);
  EXPECT_EQ(snapshot.batch_size_histogram.at(8), 1);
  EXPECT_DOUBLE_EQ(snapshot.mean_batch_size, 16.0 / 3.0);

  // Below the cap the percentiles are the exact nearest-rank values — the
  // pre-migration behavior, bit for bit.
  std::vector<int64_t> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(snapshot.latency_p50_us, obs::PercentileSorted(sorted, 50.0));
  EXPECT_EQ(snapshot.latency_p95_us, obs::PercentileSorted(sorted, 95.0));
  EXPECT_EQ(snapshot.latency_p99_us, obs::PercentileSorted(sorted, 99.0));
  EXPECT_EQ(snapshot.latency_max_us, sorted.back());
}

TEST(ServingStatsTest, EstimatorTakesOverPastCap) {
  // Tiny cap so the test crosses it instantly; the histogram sees every
  // observation, so estimates stay within one 1-2-5 bucket of truth and
  // the max stays exact.
  serve::ServingStats stats(nullptr, "serve", /*exact_latency_cap=*/64);
  std::vector<int64_t> latencies;
  Pcg32 rng(13, 9);
  for (int i = 0; i < 5000; ++i) {
    latencies.push_back(1 + static_cast<int64_t>(rng.Below(200000)));
  }
  stats.RecordLatenciesUs(latencies);
  serve::StatsSnapshot snapshot = stats.Snapshot();

  std::vector<int64_t> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(snapshot.latency_max_us, sorted.back());
  struct Case {
    double p;
    int64_t got;
  };
  for (const Case& c : {Case{50.0, snapshot.latency_p50_us},
                        Case{95.0, snapshot.latency_p95_us},
                        Case{99.0, snapshot.latency_p99_us}}) {
    int64_t truth = obs::PercentileSorted(sorted, c.p);
    EXPECT_GE(c.got, truth / 3) << "p=" << c.p;
    EXPECT_LE(c.got, truth * 3) << "p=" << c.p;
    EXPECT_LE(c.got, snapshot.latency_max_us) << "p=" << c.p;
  }
  EXPECT_LE(snapshot.latency_p50_us, snapshot.latency_p95_us);
  EXPECT_LE(snapshot.latency_p95_us, snapshot.latency_p99_us);
}

TEST(ServingStatsTest, BoundedMemoryPastCap) {
  serve::ServingStats stats(nullptr, "serve", /*exact_latency_cap=*/16);
  for (int i = 0; i < 100000; ++i) stats.RecordLatencyUs(i % 777);
  // No direct memory probe; the contract is that Snapshot still works and
  // counts everything while the exact sample froze at the cap.
  serve::StatsSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.latency_max_us, 776);
  std::string text = stats.ExportPrometheus();
  EXPECT_NE(text.find("serve_latency_us_count 100000"), std::string::npos);
}

TEST(ServingStatsTest, ResetClearsRegistryInstruments) {
  serve::ServingStats stats;
  stats.RecordBatch(3);
  stats.RecordLatencyUs(100);
  stats.Reset();
  serve::StatsSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.requests, 0);
  EXPECT_EQ(snapshot.batches, 0);
  EXPECT_EQ(snapshot.latency_max_us, 0);
  EXPECT_NE(stats.ExportPrometheus().find("serve_requests_total 0"),
            std::string::npos);
}

TEST(ServingStatsTest, SharedRegistryPublishesUnderPrefix) {
  obs::MetricsRegistry registry;
  serve::ServingStats stats(&registry, "beer_model");
  stats.RecordBatch(2);
  std::string text = registry.ExportPrometheus();
  EXPECT_NE(text.find("beer_model_requests_total 2"), std::string::npos);
  EXPECT_NE(text.find("beer_model_batches_total 1"), std::string::npos);
}

TEST(ServingStatsTest, ConcurrentRecordingIsExact) {
  serve::ServingStats stats;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < kPerThread; ++i) {
        stats.RecordBatch(1);
        stats.RecordLatencyUs(i + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  serve::StatsSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.requests, kThreads * kPerThread);
  EXPECT_EQ(snapshot.batches, kThreads * kPerThread);
  EXPECT_EQ(snapshot.latency_max_us, kPerThread);
}

// ---------------------------------------------------------------------------
// Training telemetry.

const datasets::SyntheticDataset& ObsDataset() {
  static const datasets::SyntheticDataset& ds = *new datasets::SyntheticDataset(
      datasets::MakeBeerDataset(datasets::BeerAspect::kAroma,
                                {.train = 96, .dev = 32, .test = 32},
                                /*seed=*/81));
  return ds;
}

core::TrainConfig TinyConfig() {
  core::TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  config.batch_size = 16;
  config.epochs = 3;
  config.pretrain_epochs = 2;
  config.dropout = 0.0f;
  config.lr = 3e-3f;
  return config;
}

/// Stores every telemetry record for inspection.
class RecordingObserver : public obs::TrainObserver {
 public:
  explicit RecordingObserver(bool wants_shift = true)
      : wants_shift_(wants_shift) {}
  void OnBatch(const obs::BatchTelemetry& t) override {
    batches_.push_back(t);
  }
  void OnEpoch(const obs::EpochTelemetry& t) override {
    epochs_.push_back(t);
  }
  bool WantsRationaleShift() const override { return wants_shift_; }

  const std::vector<obs::BatchTelemetry>& batches() const { return batches_; }
  const std::vector<obs::EpochTelemetry>& epochs() const { return epochs_; }

 private:
  bool wants_shift_;
  std::vector<obs::BatchTelemetry> batches_;
  std::vector<obs::EpochTelemetry> epochs_;
};

TEST(TrainObserverTest, SequentialFitReportsFullTelemetry) {
  auto model = eval::MakeMethod("DAR", ObsDataset(), TinyConfig());
  RecordingObserver recorder;
  core::TrainRun run =
      core::Fit(*model, ObsDataset(), /*verbose=*/false, &recorder);

  ASSERT_EQ(recorder.epochs().size(), 3u);
  EXPECT_EQ(recorder.batches().size(), 3u * 6u);  // 96 / 16 per epoch
  for (const obs::EpochTelemetry& t : recorder.epochs()) {
    EXPECT_TRUE(t.has_breakdown);
    EXPECT_TRUE(t.has_align);  // DAR's alignment CE
    EXPECT_TRUE(t.has_shift);
    EXPECT_GT(t.batches, 0);
    EXPECT_GT(t.grad_norm, 0.0);
    EXPECT_GT(t.sparsity, 0.0);
    EXPECT_LT(t.sparsity, 1.0);
    EXPECT_GE(t.rationale_shift, 0.0);
    EXPECT_EQ(t.model, "DAR");
  }
  // Epoch aggregates match the trainer's own bookkeeping.
  for (size_t e = 0; e < recorder.epochs().size(); ++e) {
    EXPECT_FLOAT_EQ(static_cast<float>(recorder.epochs()[e].train_loss),
                    run.epochs[e].train_loss);
    EXPECT_FLOAT_EQ(static_cast<float>(recorder.epochs()[e].dev_acc),
                    run.epochs[e].dev_acc);
  }
}

TEST(TrainObserverTest, RnpHasNoAlignmentComponent) {
  auto model = eval::MakeMethod("RNP", ObsDataset(), TinyConfig());
  RecordingObserver recorder(/*wants_shift=*/false);
  core::Fit(*model, ObsDataset(), /*verbose=*/false, &recorder);
  ASSERT_FALSE(recorder.epochs().empty());
  EXPECT_TRUE(recorder.epochs().back().has_breakdown);
  EXPECT_FALSE(recorder.epochs().back().has_align);
  EXPECT_FALSE(recorder.epochs().back().has_shift);  // not requested
}

TEST(TrainObserverTest, TelemetryIsPassive) {
  // Same seed, one run observed (with the shift probe), one not: the
  // trained parameters must be bit-identical.
  auto plain = eval::MakeMethod("DAR", ObsDataset(), TinyConfig());
  core::Fit(*plain, ObsDataset());

  auto observed = eval::MakeMethod("DAR", ObsDataset(), TinyConfig());
  RecordingObserver recorder;  // wants the shift gauge -> probe is built
  core::Fit(*observed, ObsDataset(), /*verbose=*/false, &recorder);

  EXPECT_EQ(core::ParameterChecksum(*plain),
            core::ParameterChecksum(*observed));
}

TEST(TrainObserverTest, ParallelTelemetryIsPassiveAndTagged) {
  core::ParallelTrainConfig parallel{.num_workers = 2, .num_shards = 2};
  auto plain = eval::MakeMethod("RNP", ObsDataset(), TinyConfig());
  core::Fit(*plain, ObsDataset(), parallel);

  auto observed = eval::MakeMethod("RNP", ObsDataset(), TinyConfig());
  RecordingObserver recorder;
  core::Fit(*observed, ObsDataset(), parallel, /*verbose=*/false, &recorder);

  EXPECT_EQ(core::ParameterChecksum(*plain),
            core::ParameterChecksum(*observed));
  ASSERT_FALSE(recorder.epochs().empty());
  const obs::EpochTelemetry& last = recorder.epochs().back();
  EXPECT_EQ(last.model, "RNP x2");
  EXPECT_TRUE(last.has_breakdown);
  EXPECT_TRUE(last.has_shift);
  EXPECT_GT(last.grad_norm, 0.0);
}

TEST(TrainObserverTest, JsonlEpochLineCarriesAllComponents) {
  auto model = eval::MakeMethod("DAR", ObsDataset(), TinyConfig());
  std::ostringstream out;
  obs::JsonlTrainObserver jsonl(out);
  core::Fit(*model, ObsDataset(), /*verbose=*/false, &jsonl);
  std::string text = out.str();
  EXPECT_NE(text.find("\"event\":\"epoch\""), std::string::npos);
  EXPECT_NE(text.find("\"model\":\"DAR\""), std::string::npos);
  for (const char* key :
       {"\"train_loss\":", "\"dev_acc\":", "\"grad_norm\":", "\"task_ce\":",
        "\"omega\":", "\"rationale_sparsity\":", "\"align_ce\":",
        "\"rationale_shift\":"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
  // One line per epoch.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(TrainObserverTest, MetricsObserverPopulatesRegistry) {
  auto model = eval::MakeMethod("DAR", ObsDataset(), TinyConfig());
  obs::MetricsRegistry registry;
  obs::MetricsTrainObserver metrics(&registry);
  core::Fit(*model, ObsDataset(), /*verbose=*/false, &metrics);
  EXPECT_EQ(registry.GetCounter("train.steps_total").value(), 3 * 6);
  EXPECT_EQ(registry.GetCounter("train.epochs_total").value(), 3);
  EXPECT_EQ(
      registry.GetHistogram("train.grad_norm", obs::DurationBucketsUs())
          .count(),
      3 * 6);
  EXPECT_GT(registry.GetGauge("train.loss").value(), 0.0);
  EXPECT_GE(registry.GetGauge("train.rationale_shift").value(), 0.0);
}

// The paper's Fig. 3 phenomenon, live on the gauge: as sparsity tightens,
// vanilla RNP's rationales deviate and the frozen full-text probe loses
// cross-entropy reading them (the gauge plateaus high), while DAR's
// alignment term — which trains Z to be read by exactly such a frozen
// full-text predictor — pulls the gauge back down over the later epochs.
// Loose tolerance: both are stochastic small-scale runs, so we only
// require DAR's late-epoch mean to stay below RNP's.
TEST(TrainObserverTest, DarShiftStaysBelowRnp) {
  core::TrainConfig config;
  config.embedding_dim = 16;
  config.hidden_dim = 12;
  config.batch_size = 32;
  config.lr = 2e-3f;
  config.dropout = 0.0f;
  config.epochs = 12;
  config.pretrain_epochs = 4;
  const datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAroma,
      {.train = 400, .dev = 100, .test = 100},
      /*seed=*/42);
  config = config.WithSparsityTarget(dataset.AnnotationSparsity());

  auto run_with_shift = [&](const char* method) {
    auto model = eval::MakeMethod(method, dataset, config);
    RecordingObserver recorder;
    core::Fit(*model, dataset, /*verbose=*/false, &recorder);
    for (const obs::EpochTelemetry& t : recorder.epochs()) {
      std::printf("[shift %s] epoch %lld shift=%.6f sparsity=%.3f\n", method,
                  static_cast<long long>(t.epoch), t.rationale_shift,
                  t.sparsity);
    }
    double shift = 0.0;
    int tail = 0;
    // Mean over the last two epochs irons out per-epoch jitter.
    for (size_t e = recorder.epochs().size() >= 2
                        ? recorder.epochs().size() - 2
                        : 0;
         e < recorder.epochs().size(); ++e) {
      shift += recorder.epochs()[e].rationale_shift;
      ++tail;
    }
    return shift / std::max(tail, 1);
  };

  const double rnp_shift = run_with_shift("RNP");
  const double dar_shift = run_with_shift("DAR");
  std::printf("[shift gauge] RNP=%.6f DAR=%.6f\n", rnp_shift, dar_shift);
  EXPECT_GE(rnp_shift, 0.0);
  EXPECT_GE(dar_shift, 0.0);
  // Loose tolerance: DAR may not dominate by much at this scale, but it
  // must not exceed RNP's deviation.
  EXPECT_LT(dar_shift, rnp_shift + 1e-6);
}

}  // namespace
}  // namespace dar
