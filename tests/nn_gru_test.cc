// Tests for the GRU / BiGRU encoders.
#include "nn/gru.h"

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace nn {
namespace {

ag::Variable Embed(const Tensor& t) { return ag::Variable::Constant(t); }

TEST(GruTest, OutputShape) {
  Pcg32 rng(1);
  Gru gru(3, 5, rng);
  Tensor x(Shape{2, 4, 3}, 0.1f);
  ag::Variable out = gru.Forward(Embed(x));
  EXPECT_EQ(out.value().shape(), (Shape{2, 4, 5}));
}

TEST(GruTest, ParameterCount) {
  Pcg32 rng(2);
  Gru gru(3, 5, rng);
  // w_x [3,15] + w_h [5,15] + b [15].
  EXPECT_EQ(gru.NumParameters(), 3 * 15 + 5 * 15 + 15);
}

TEST(GruTest, ZeroInputZeroStateStaysSmall) {
  Pcg32 rng(3);
  Gru gru(2, 3, rng);
  Tensor x(Shape{1, 5, 2});  // zeros
  Tensor out = gru.Forward(Embed(x)).value();
  // With zero input and zero initial state, tanh/sigmoid keep values
  // bounded well inside (-1, 1).
  EXPECT_LT(MaxAll(Abs(out)), 1.0f);
}

TEST(GruTest, StatePropagatesThroughTime) {
  Pcg32 rng(4);
  Gru gru(1, 4, rng);
  Tensor x(Shape{1, 3, 1});
  x.at(0, 0, 0) = 5.0f;  // impulse at t=0, zero afterwards
  Tensor out = gru.Forward(Embed(x)).value();
  // The impulse response must persist: later steps differ from what an
  // all-zero input would give (memory).
  Tensor zero_x(Shape{1, 3, 1});
  Tensor zero_out = gru.Forward(Embed(zero_x)).value();
  EXPECT_FALSE(SliceTime(out, 2).AllClose(SliceTime(zero_out, 2), 1e-4f));
}

TEST(GruTest, MaskFreezesStateAtPadding) {
  Pcg32 rng(5);
  Gru gru(2, 3, rng);
  Pcg32 data_rng(6);
  Tensor x = Tensor::Randn({1, 4, 2}, data_rng);
  Tensor valid(Shape{1, 4}, {1, 1, 0, 0});
  Tensor out = gru.Forward(Embed(x), &valid).value();
  // After the sequence ends, the hidden state must stay frozen.
  EXPECT_TRUE(SliceTime(out, 2).AllClose(SliceTime(out, 1)));
  EXPECT_TRUE(SliceTime(out, 3).AllClose(SliceTime(out, 1)));
}

TEST(GruTest, PaddingContentDoesNotAffectValidStates) {
  Pcg32 rng(7);
  Gru gru(2, 3, rng);
  Pcg32 data_rng(8);
  Tensor x1 = Tensor::Randn({1, 4, 2}, data_rng);
  Tensor x2 = x1;
  // Corrupt padded positions only.
  x2.at(0, 3, 0) = 100.0f;
  Tensor valid(Shape{1, 4}, {1, 1, 1, 0});
  Tensor out1 = gru.Forward(Embed(x1), &valid).value();
  Tensor out2 = gru.Forward(Embed(x2), &valid).value();
  for (int64_t t = 0; t < 3; ++t) {
    EXPECT_TRUE(SliceTime(out1, t).AllClose(SliceTime(out2, t)));
  }
}

TEST(GruTest, ReverseDirectionMirrorsForward) {
  Pcg32 rng(9);
  // Same weights: construct forward, copy into reverse.
  Gru forward(2, 3, rng, /*reverse=*/false);
  Pcg32 rng2(9);
  Gru reverse(2, 3, rng2, /*reverse=*/true);  // identical init (same seed)
  Pcg32 data_rng(10);
  Tensor x = Tensor::Randn({1, 4, 2}, data_rng);
  // Time-reversed copy of x.
  Tensor xr(Shape{1, 4, 2});
  for (int64_t t = 0; t < 4; ++t) SetTime(xr, t, SliceTime(x, 3 - t));
  Tensor out_fwd = forward.Forward(Embed(xr)).value();
  Tensor out_rev = reverse.Forward(Embed(x)).value();
  // reverse(x) at time t == forward(reversed x) at time 3-t.
  for (int64_t t = 0; t < 4; ++t) {
    EXPECT_TRUE(SliceTime(out_rev, t).AllClose(SliceTime(out_fwd, 3 - t), 1e-5f));
  }
}

TEST(BiGruTest, OutputConcatenatesDirections) {
  Pcg32 rng(11);
  BiGru bigru(3, 4, rng);
  EXPECT_EQ(bigru.output_dim(), 8);
  Tensor x(Shape{2, 5, 3}, 0.2f);
  ag::Variable out = bigru.Forward(Embed(x));
  EXPECT_EQ(out.value().shape(), (Shape{2, 5, 8}));
}

TEST(BiGruTest, BackwardHalfSeesFuture) {
  Pcg32 rng(12);
  BiGru bigru(1, 2, rng);
  Tensor x1(Shape{1, 3, 1});
  Tensor x2(Shape{1, 3, 1});
  x2.at(0, 2, 0) = 3.0f;  // differ only at the last step
  Tensor out1 = bigru.Forward(Embed(x1)).value();
  Tensor out2 = bigru.Forward(Embed(x2)).value();
  // At t=0 the forward half agrees but the backward half must differ.
  bool fw_same = true, bw_differ = false;
  for (int64_t j = 0; j < 2; ++j) {
    if (std::abs(out1.at(0, 0, j) - out2.at(0, 0, j)) > 1e-6f) fw_same = false;
    if (std::abs(out1.at(0, 0, 2 + j) - out2.at(0, 0, 2 + j)) > 1e-6f) {
      bw_differ = true;
    }
  }
  EXPECT_TRUE(fw_same);
  EXPECT_TRUE(bw_differ);
}

TEST(GruTest, GradCheckThroughTime) {
  Pcg32 rng(13);
  Gru gru(2, 2, rng);
  Pcg32 data_rng(14);
  ag::GradCheckResult r = ag::CheckGradients(
      [&gru](const std::vector<ag::Variable>& v) {
        ag::Variable y = gru.Forward(v[0]);
        return ag::Sum(ag::Mul(y, y));
      },
      {Tensor::Randn({1, 3, 2}, data_rng, 0.5f)});
  EXPECT_TRUE(r.ok) << "max error " << r.max_abs_error << " at "
                    << r.worst_location;
}

TEST(GruTest, GradientsReachAllWeights) {
  Pcg32 rng(15);
  Gru gru(2, 3, rng);
  Pcg32 data_rng(16);
  Tensor x = Tensor::Randn({2, 3, 2}, data_rng);
  ag::Sum(gru.Forward(Embed(x))).Backward();
  for (const NamedParameter& p : gru.Parameters()) {
    EXPECT_TRUE(p.variable.has_grad()) << p.name;
    EXPECT_GT(Norm2(p.variable.grad()), 0.0f) << p.name;
  }
}

}  // namespace
}  // namespace nn
}  // namespace dar
