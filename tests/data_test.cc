// Tests for the data layer: vocabulary, tokenizer, batching, data loading,
// synthetic embeddings.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/batch.h"
#include "data/dataloader.h"
#include "data/synthetic_glove.h"
#include "data/tokenizer.h"
#include "data/vocabulary.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace data {
namespace {

TEST(VocabularyTest, ReservedTokens) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.size(), 2);
  EXPECT_EQ(vocab.Token(Vocabulary::kPadId), "<pad>");
  EXPECT_EQ(vocab.Token(Vocabulary::kUnkId), "<unk>");
}

TEST(VocabularyTest, AddIsIdempotent) {
  Vocabulary vocab;
  int64_t id1 = vocab.AddToken("beer");
  int64_t id2 = vocab.AddToken("beer");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(vocab.size(), 3);
}

TEST(VocabularyTest, LookupBehaviour) {
  Vocabulary vocab;
  int64_t id = vocab.AddToken("hoppy");
  EXPECT_EQ(vocab.IdOrUnk("hoppy"), id);
  EXPECT_EQ(vocab.IdOrUnk("nonexistent"), Vocabulary::kUnkId);
  EXPECT_TRUE(vocab.TryId("hoppy").has_value());
  EXPECT_FALSE(vocab.TryId("nonexistent").has_value());
  EXPECT_TRUE(vocab.Contains("hoppy"));
}

TEST(TokenizerTest, SplitsOnWhitespace) {
  std::vector<std::string> tokens = Tokenize("  the  head is\tpale \n");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "the");
  EXPECT_EQ(tokens[3], "pale");
}

TEST(TokenizerTest, EmptyString) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   ").empty());
}

TEST(TokenizerTest, EncodeDecodeRoundTrip) {
  Vocabulary vocab;
  vocab.AddToken("the");
  vocab.AddToken("head");
  std::vector<int64_t> ids = Encode("the head the", vocab);
  EXPECT_EQ(Decode(ids, vocab), "the head the");
}

TEST(TokenizerTest, UnknownBecomesUnk) {
  Vocabulary vocab;
  std::vector<int64_t> ids = Encode("mystery", vocab);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], Vocabulary::kUnkId);
}

std::vector<Example> MakeExamples() {
  return {
      {{5, 6, 7}, 1, {0, 1, 0}},
      {{8, 9}, 0, {}},
      {{10, 11, 12, 13, 14}, 1, {1, 0, 0, 0, 1}},
  };
}

TEST(BatchTest, PadsToLongest) {
  std::vector<Example> examples = MakeExamples();
  Batch batch = Batch::FromExamples(examples, 0, 3, /*pad_id=*/0);
  EXPECT_EQ(batch.batch_size(), 3);
  EXPECT_EQ(batch.max_len(), 5);
  EXPECT_EQ(batch.tokens[0][3], 0);  // padded
  EXPECT_EQ(batch.tokens[2][4], 14);
}

TEST(BatchTest, ValidityMask) {
  std::vector<Example> examples = MakeExamples();
  Batch batch = Batch::FromExamples(examples, 0, 3, 0);
  EXPECT_EQ(batch.valid.at(0, 2), 1.0f);
  EXPECT_EQ(batch.valid.at(0, 3), 0.0f);
  EXPECT_EQ(batch.valid.at(1, 1), 1.0f);
  EXPECT_EQ(batch.valid.at(1, 2), 0.0f);
  EXPECT_EQ(batch.valid.at(2, 4), 1.0f);
}

TEST(BatchTest, RationalesPaddedOrEmpty) {
  std::vector<Example> examples = MakeExamples();
  Batch batch = Batch::FromExamples(examples, 0, 3, 0);
  EXPECT_EQ(batch.rationales[0].size(), 5u);
  EXPECT_EQ(batch.rationales[0][1], 1);
  EXPECT_EQ(batch.rationales[0][4], 0);  // padded tail
  EXPECT_TRUE(batch.rationales[1].empty());  // unannotated example
}

TEST(BatchTest, SubRange) {
  std::vector<Example> examples = MakeExamples();
  Batch batch = Batch::FromExamples(examples, 1, 2, 0);
  EXPECT_EQ(batch.batch_size(), 2);
  EXPECT_EQ(batch.labels[0], 0);
  EXPECT_EQ(batch.labels[1], 1);
}

TEST(DataLoaderTest, SequentialCoversAllExamples) {
  std::vector<Example> examples(10, Example{{1, 2}, 0, {}});
  DataLoader loader(examples, 3, /*shuffle=*/false);
  std::vector<Batch> batches = loader.Sequential();
  ASSERT_EQ(batches.size(), 4u);  // 3+3+3+1
  EXPECT_EQ(batches.back().batch_size(), 1);
}

TEST(DataLoaderTest, EpochIsPermutation) {
  std::vector<Example> examples;
  for (int64_t i = 0; i < 20; ++i) examples.push_back({{100 + i}, 0, {}});
  DataLoader loader(examples, 7, /*shuffle=*/true);
  Pcg32 rng(1);
  std::vector<Batch> batches = loader.Epoch(rng);
  std::multiset<int64_t> seen;
  for (const Batch& b : batches) {
    for (const auto& toks : b.tokens) seen.insert(toks[0]);
  }
  EXPECT_EQ(seen.size(), 20u);
  for (int64_t i = 0; i < 20; ++i) EXPECT_EQ(seen.count(100 + i), 1u);
}

TEST(DataLoaderTest, ShuffleIsDeterministicGivenSeed) {
  std::vector<Example> examples;
  for (int64_t i = 0; i < 16; ++i) examples.push_back({{i}, 0, {}});
  DataLoader l1(examples, 4, true), l2(examples, 4, true);
  Pcg32 r1(9), r2(9);
  std::vector<Batch> b1 = l1.Epoch(r1), b2 = l2.Epoch(r2);
  ASSERT_EQ(b1.size(), b2.size());
  for (size_t i = 0; i < b1.size(); ++i) {
    EXPECT_EQ(b1[i].tokens, b2[i].tokens);
  }
}

TEST(SyntheticGloveTest, PadRowIsZero) {
  Pcg32 rng(2);
  Tensor table = BuildSyntheticGlove({-1, -1, 0, 0, 1}, {.dim = 8}, rng);
  for (int64_t j = 0; j < 8; ++j) EXPECT_EQ(table.at(0, j), 0.0f);
}

TEST(SyntheticGloveTest, FamiliesClusterTighterThanAcross) {
  Pcg32 rng(3);
  // Tokens 1-8: family 0; 9-16: family 1.
  std::vector<int32_t> family(17, -1);
  for (int i = 1; i <= 8; ++i) family[static_cast<size_t>(i)] = 0;
  for (int i = 9; i <= 16; ++i) family[static_cast<size_t>(i)] = 1;
  SyntheticGloveConfig config;
  config.dim = 16;
  Tensor table = BuildSyntheticGlove(family, config, rng);

  auto dist = [&](int64_t a, int64_t b) {
    double d = 0.0;
    for (int64_t j = 0; j < config.dim; ++j) {
      double diff = table.at(a, j) - table.at(b, j);
      d += diff * diff;
    }
    return std::sqrt(d);
  };
  double within = 0.0, across = 0.0;
  int wn = 0, an = 0;
  for (int64_t a = 1; a <= 8; ++a) {
    for (int64_t b = a + 1; b <= 8; ++b) {
      within += dist(a, b);
      ++wn;
    }
    for (int64_t b = 9; b <= 16; ++b) {
      across += dist(a, b);
      ++an;
    }
  }
  EXPECT_LT(within / wn, 0.6 * across / an);
}

TEST(SyntheticGloveTest, DeterministicGivenSeed) {
  Pcg32 r1(4), r2(4);
  std::vector<int32_t> family{-1, 0, 0, 1};
  Tensor t1 = BuildSyntheticGlove(family, {.dim = 4}, r1);
  Tensor t2 = BuildSyntheticGlove(family, {.dim = 4}, r2);
  EXPECT_TRUE(t1.AllClose(t2));
}

}  // namespace
}  // namespace data
}  // namespace dar
