// Differential certification of the serving cache (src/serve/cache.h).
//
// The cache's contract is absolute: a cached session's responses are
// bit-identical to an uncached session's on the same checkpoint — same
// label, same probability bits, same rationale mask — across randomized
// request streams (repeats, shared prefixes), forced evictions, forced
// hash collisions, and concurrent checkpoint reloads. Every test here
// compares against an uncached reference restored from the same
// checkpoint file, at float-bit granularity.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/sentinel.h"
#include "core/baselines/vib.h"
#include "core/dar.h"
#include "core/rnp.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "net/routes.h"
#include "serve/cache.h"
#include "serve/registry.h"
#include "serve/session.h"

namespace dar {
namespace serve {
namespace {

datasets::SyntheticDataset TinyDataset(uint64_t seed = 3) {
  return datasets::MakeBeerDataset(datasets::BeerAspect::kAppearance,
                                   {.train = 40, .dev = 10, .test = 10}, seed);
}

core::TrainConfig TinyConfig(uint64_t seed = 3) {
  core::TrainConfig config;
  config.embedding_dim = 16;
  config.hidden_dim = 8;
  config.seed = seed;
  return config;
}

enum class Method { kRnp, kDar, kVib };

std::unique_ptr<core::RationalizerBase> MakeModel(Method method,
                                                  const Tensor& embeddings,
                                                  core::TrainConfig config) {
  switch (method) {
    case Method::kRnp:
      return std::make_unique<core::RnpModel>(embeddings, config);
    case Method::kDar:
      return std::make_unique<core::DarModel>(embeddings, config);
    case Method::kVib:
      return std::make_unique<core::VibModel>(embeddings, config);
  }
  return nullptr;
}

/// A cached/uncached session pair restored from the SAME checkpoint file,
/// plus the cache the cached half is attached to.
struct DifferentialPair {
  std::unique_ptr<ServeCache> cache;
  std::unique_ptr<InferenceSession> cached;
  std::unique_ptr<InferenceSession> uncached;
  ServeCache::ModelId model_id = 0;
};

DifferentialPair MakePair(Method method, CacheConfig cache_config,
                          uint64_t seed = 3) {
  datasets::SyntheticDataset dataset = TinyDataset(seed);
  core::TrainConfig config = TinyConfig(seed);
  Tensor embeddings = eval::BuildEmbeddings(dataset, config);

  auto source = MakeModel(method, embeddings, config);
  std::string path = ::testing::TempDir() + "/serve_cache_diff_" +
                     std::to_string(static_cast<int>(method)) + "_" +
                     std::to_string(seed) + ".ckpt";
  EXPECT_TRUE(core::SaveRationalizer(*source, path));

  DifferentialPair pair;
  pair.cache = std::make_unique<ServeCache>(cache_config);
  // Different construction seeds prove the restore (not shared init luck)
  // is what makes the two sessions agree.
  core::TrainConfig cached_config = TinyConfig(seed + 1000);
  core::TrainConfig uncached_config = TinyConfig(seed + 2000);
  std::string error;
  pair.cached = InferenceSession::FromCheckpoint(
      MakeModel(method, embeddings, cached_config), dataset.vocab, path,
      &error);
  EXPECT_NE(pair.cached, nullptr) << error;
  pair.uncached = InferenceSession::FromCheckpoint(
      MakeModel(method, embeddings, uncached_config), dataset.vocab, path,
      &error);
  EXPECT_NE(pair.uncached, nullptr) << error;
  pair.cached->EnableCache(pair.cache.get(), "diff");
  pair.model_id = pair.cached->cache_model_id();
  std::remove(path.c_str());
  return pair;
}

uint32_t FloatBits(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// True when the two results agree at float-bit granularity.
bool BitIdentical(const InferenceResult& a, const InferenceResult& b) {
  if (a.label != b.label) return false;
  if (FloatBits(a.confidence) != FloatBits(b.confidence)) return false;
  if (a.probs.size() != b.probs.size()) return false;
  for (size_t i = 0; i < a.probs.size(); ++i) {
    if (FloatBits(a.probs[i]) != FloatBits(b.probs[i])) return false;
  }
  return a.mask == b.mask && a.tokens == b.tokens &&
         a.spans.size() == b.spans.size() &&
         a.rationale_text == b.rationale_text;
}

void ExpectBitIdentical(const InferenceResult& a, const InferenceResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.label, b.label) << what;
  EXPECT_EQ(FloatBits(a.confidence), FloatBits(b.confidence)) << what;
  ASSERT_EQ(a.probs.size(), b.probs.size()) << what;
  for (size_t i = 0; i < a.probs.size(); ++i) {
    EXPECT_EQ(FloatBits(a.probs[i]), FloatBits(b.probs[i]))
        << what << " probs[" << i << "]";
  }
  EXPECT_EQ(a.mask, b.mask) << what;
  EXPECT_EQ(a.tokens, b.tokens) << what;
  EXPECT_EQ(a.rationale_text, b.rationale_text) << what;
}

/// Builds a text of `count` distinct in-vocabulary words starting at
/// vocab id `first` (ids 0/1 are <pad>/<unk>).
std::string DistinctText(const data::Vocabulary& vocab, int64_t first,
                         int64_t count) {
  std::string text;
  for (int64_t i = 0; i < count; ++i) {
    if (i) text += ' ';
    text += vocab.Token(2 + ((first + i) % (vocab.size() - 2)));
  }
  return text;
}

/// A randomized request stream over `base` texts: repeats (hot keys) and
/// shared-prefix variants (exercising the embedding tier).
std::vector<std::string> RandomStream(const std::vector<std::string>& base,
                                      size_t length, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::string> stream;
  stream.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    const std::string& pick =
        base[rng.Below(static_cast<uint32_t>(base.size()))];
    switch (rng.Below(4)) {
      case 0: {
        // Shared-prefix variant: the same words plus a one-word suffix —
        // a different sequence (encoder miss) reusing cached rows.
        const std::string& other =
            base[rng.Below(static_cast<uint32_t>(base.size()))];
        size_t space = other.find(' ');
        stream.push_back(pick + ' ' + other.substr(0, space));
        break;
      }
      default:
        stream.push_back(pick);
    }
  }
  return stream;
}

// ---- Differential certification --------------------------------------------

TEST(ServeCacheDifferentialTest, RandomizedStreamsBitIdenticalAcrossMethods) {
  for (Method method : {Method::kRnp, Method::kDar, Method::kVib}) {
    CacheConfig config;
    config.enabled = true;
    DifferentialPair pair = MakePair(method, config);
    ASSERT_NE(pair.cached, nullptr);
    ASSERT_NE(pair.uncached, nullptr);

    std::vector<std::string> base;
    for (int64_t i = 0; i < 12; ++i) {
      base.push_back(
          DistinctText(pair.cached->vocab(), i * 7, 3 + (i % 9)));
    }
    std::vector<std::string> stream = RandomStream(base, 80, /*seed=*/41);
    for (size_t i = 0; i < stream.size(); ++i) {
      ExpectBitIdentical(pair.cached->Predict(stream[i]),
                         pair.uncached->Predict(stream[i]),
                         "method=" + std::to_string(static_cast<int>(method)) +
                             " request " + std::to_string(i));
    }
    // The stream's repeats must actually have exercised the fast path.
    CacheTierStats enc =
        pair.cache->Stats(pair.model_id, ServeCache::kEncoderTierName);
    EXPECT_GT(enc.hits, 0) << "stream never hit the encoder tier";
    CacheTierStats emb =
        pair.cache->Stats(pair.model_id, ServeCache::kEmbeddingTierName);
    EXPECT_GT(emb.hits, 0) << "stream never hit the embedding tier";
  }
}

TEST(ServeCacheDifferentialTest, BatchedRequestsMatchUncachedBatches) {
  CacheConfig config;
  config.enabled = true;
  DifferentialPair pair = MakePair(Method::kRnp, config);

  std::vector<std::vector<int64_t>> sequences;
  for (int64_t i = 0; i < 10; ++i) {
    sequences.push_back(pair.cached->Encode(
        DistinctText(pair.cached->vocab(), i * 3, 2 + (i % 7))));
  }
  // Twice: the second pass serves fully from the encoder tier, and both
  // passes must equal the uncached padded-batch forward.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<InferenceResult> cached =
        pair.cached->PredictTokenBatch(sequences);
    std::vector<InferenceResult> uncached =
        pair.uncached->PredictTokenBatch(sequences);
    ASSERT_EQ(cached.size(), uncached.size());
    for (size_t i = 0; i < cached.size(); ++i) {
      ExpectBitIdentical(cached[i], uncached[i],
                         "pass " + std::to_string(pass) + " row " +
                             std::to_string(i));
      if (pass == 1) {
        EXPECT_EQ(cached[i].cache, CacheOutcome::kHit);
      }
    }
  }
}

TEST(ServeCacheDifferentialTest, ForcedEvictionsStayBitIdentical) {
  CacheConfig config;
  config.enabled = true;
  // A few KB across 2 shards: a working set of 40 sequences cannot fit,
  // so the repeat pass recomputes through evicted keys constantly.
  config.capacity_bytes = 8 * 1024;
  config.num_shards = 2;
  DifferentialPair pair = MakePair(Method::kRnp, config);

  std::vector<std::string> texts;
  for (int64_t i = 0; i < 40; ++i) {
    texts.push_back(DistinctText(pair.cached->vocab(), i * 5, 4 + (i % 8)));
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& text : texts) {
      ExpectBitIdentical(pair.cached->Predict(text),
                         pair.uncached->Predict(text), "eviction stream");
    }
  }
  CacheTierStats enc =
      pair.cache->Stats(pair.model_id, ServeCache::kEncoderTierName);
  EXPECT_GT(enc.evictions, 0) << "capacity was meant to force evictions";
  EXPECT_LE(enc.bytes, static_cast<int64_t>(config.capacity_bytes));
}

TEST(ServeCacheDifferentialTest, HashCollisionsVerifiedAndRejected) {
  CacheConfig config;
  config.enabled = true;
  // Every sequence digests to the same value: every cross-sequence lookup
  // is a collision the full-id comparison must reject.
  config.sequence_hash_override = [](const std::vector<int64_t>&) {
    return uint64_t{42};
  };
  DifferentialPair pair = MakePair(Method::kRnp, config);

  std::string a = DistinctText(pair.cached->vocab(), 0, 5);
  std::string b = DistinctText(pair.cached->vocab(), 10, 5);
  ASSERT_NE(a, b);

  ExpectBitIdentical(pair.cached->Predict(a), pair.uncached->Predict(a),
                     "collision A cold");
  // Same sequence, same digest, ids verify: a genuine hit.
  InferenceResult repeat = pair.cached->Predict(a);
  EXPECT_EQ(repeat.cache, CacheOutcome::kHit);
  // Different sequence, same digest: must NOT serve A's states.
  ExpectBitIdentical(pair.cached->Predict(b), pair.uncached->Predict(b),
                     "collision B rejects A's entry");
  // B displaced A under the shared digest; A must again recompute, not
  // serve B's states.
  ExpectBitIdentical(pair.cached->Predict(a), pair.uncached->Predict(a),
                     "collision A rejects B's entry");

  CacheTierStats enc =
      pair.cache->Stats(pair.model_id, ServeCache::kEncoderTierName);
  EXPECT_GE(enc.collisions, 2);
  EXPECT_EQ(enc.hits, 1);
}

// ---- Outcome classification ------------------------------------------------

TEST(ServeCacheOutcomeTest, MissThenHitThenPartial) {
  CacheConfig config;
  config.enabled = true;
  DifferentialPair pair = MakePair(Method::kRnp, config);
  const data::Vocabulary& vocab = pair.cached->vocab();

  std::string text = DistinctText(vocab, 0, 6);
  EXPECT_EQ(pair.cached->Predict(text).cache, CacheOutcome::kMiss);
  EXPECT_EQ(pair.cached->Predict(text).cache, CacheOutcome::kHit);
  // Same words, different order: encoder misses (different sequence),
  // embedding rows all hit.
  std::string permuted = DistinctText(vocab, 3, 3) + ' ' +
                         DistinctText(vocab, 0, 3);
  EXPECT_EQ(pair.cached->Predict(permuted).cache, CacheOutcome::kPartial);
  // Fresh words again: a clean miss.
  EXPECT_EQ(pair.cached->Predict(DistinctText(vocab, 40, 6)).cache,
            CacheOutcome::kMiss);
}

TEST(ServeCacheOutcomeTest, EmbeddingTierOnlyNeverFullyHits) {
  CacheConfig config;
  config.enabled = true;
  config.encoder_tier = false;
  DifferentialPair pair = MakePair(Method::kRnp, config);

  std::string text = DistinctText(pair.cached->vocab(), 0, 6);
  EXPECT_EQ(pair.cached->Predict(text).cache, CacheOutcome::kMiss);
  InferenceResult repeat = pair.cached->Predict(text);
  EXPECT_EQ(repeat.cache, CacheOutcome::kPartial);
  ExpectBitIdentical(repeat, pair.uncached->Predict(text),
                     "embedding tier only");
}

TEST(ServeCacheOutcomeTest, EncoderTierOnlyNeverPartial) {
  CacheConfig config;
  config.enabled = true;
  config.embedding_tier = false;
  DifferentialPair pair = MakePair(Method::kRnp, config);

  std::string text = DistinctText(pair.cached->vocab(), 0, 6);
  EXPECT_EQ(pair.cached->Predict(text).cache, CacheOutcome::kMiss);
  EXPECT_EQ(pair.cached->Predict(text).cache, CacheOutcome::kHit);
  CacheTierStats emb =
      pair.cache->Stats(pair.model_id, ServeCache::kEmbeddingTierName);
  EXPECT_EQ(emb.hits + emb.misses, 0);
}

TEST(ServeCacheOutcomeTest, DisabledCacheReportsUncached) {
  auto session_pair = MakePair(Method::kRnp, CacheConfig{});  // enabled=false
  std::string text = DistinctText(session_pair.cached->vocab(), 0, 4);
  EXPECT_EQ(session_pair.cached->Predict(text).cache, CacheOutcome::kUncached);
  EXPECT_EQ(session_pair.uncached->Predict(text).cache,
            CacheOutcome::kUncached);
}

TEST(ServeCacheOutcomeTest, OutcomeNames) {
  EXPECT_STREQ(CacheOutcomeName(CacheOutcome::kUncached), "uncached");
  EXPECT_STREQ(CacheOutcomeName(CacheOutcome::kMiss), "miss");
  EXPECT_STREQ(CacheOutcomeName(CacheOutcome::kPartial), "partial");
  EXPECT_STREQ(CacheOutcomeName(CacheOutcome::kHit), "hit");
}

// ---- Sentinels on the cache-restore path -----------------------------------

TEST(ServeCacheSentinelTest, CorruptedEntryRecordedInRecordMode) {
  CacheConfig config;
  config.enabled = true;
  DifferentialPair pair = MakePair(Method::kRnp, config);
  std::string text = DistinctText(pair.cached->vocab(), 0, 5);
  std::vector<int64_t> ids = pair.cached->Encode(text);
  pair.cached->Predict(text);  // warm
  ASSERT_TRUE(pair.cache->CorruptEncoderEntryForTesting(pair.model_id, ids));

  check::DrainSentinelFindings();
  check::SetSentinelMode(check::SentinelMode::kRecord);
  pair.cached->Predict(text);
  check::SetSentinelMode(check::SentinelMode::kOff);

  std::vector<check::SentinelFinding> findings =
      check::DrainSentinelFindings();
  bool found = false;
  for (const check::SentinelFinding& f : findings) {
    if (f.op == "serve.cache_restore") found = true;
  }
  EXPECT_TRUE(found)
      << "corrupted cached states must be attributed to the restore scan";
}

TEST(ServeCacheSentinelTest, OffModeStillServes) {
  CacheConfig config;
  config.enabled = true;
  DifferentialPair pair = MakePair(Method::kRnp, config);
  std::string text = DistinctText(pair.cached->vocab(), 0, 5);
  std::vector<int64_t> ids = pair.cached->Encode(text);
  pair.cached->Predict(text);
  ASSERT_TRUE(pair.cache->CorruptEncoderEntryForTesting(pair.model_id, ids));
  // kOff: no scan, the request completes (the poisoned value propagates —
  // exactly why the record/trap modes exist).
  check::SetSentinelMode(check::SentinelMode::kOff);
  InferenceResult r = pair.cached->Predict(text);
  EXPECT_EQ(r.cache, CacheOutcome::kHit);
}

TEST(ServeCacheSentinelDeathTest, TrapModeAbortsOnCorruptedEntry) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  CacheConfig config;
  config.enabled = true;
  DifferentialPair pair = MakePair(Method::kRnp, config);
  std::string text = DistinctText(pair.cached->vocab(), 0, 5);
  std::vector<int64_t> ids = pair.cached->Encode(text);
  pair.cached->Predict(text);
  ASSERT_TRUE(pair.cache->CorruptEncoderEntryForTesting(pair.model_id, ids));
  EXPECT_DEATH(
      {
        check::SetSentinelMode(check::SentinelMode::kTrap);
        pair.cached->Predict(text);
      },
      "serve.cache_restore");
  check::SetSentinelMode(check::SentinelMode::kOff);
}

// ---- LRU mechanics ----------------------------------------------------------

TEST(ServeCacheLruTest, MostRecentSurvivesEviction) {
  CacheConfig config;
  config.enabled = true;
  config.encoder_tier = false;
  config.num_shards = 1;
  // Budget for roughly two embedding rows (row = 16 floats + overhead).
  config.capacity_bytes = 2 * (16 * sizeof(float) + 96);
  ServeCache cache(config);
  ServeCache::ModelId model = cache.RegisterModel("lru");

  std::vector<float> row(16, 1.0f);
  std::vector<float> out(16);
  for (int64_t token = 0; token < 8; ++token) {
    row[0] = static_cast<float>(token);
    cache.InsertEmbeddingRow(model, 0, token, row.data(), 16);
    // The just-inserted row must always be resident.
    ASSERT_TRUE(cache.LookupEmbeddingRow(model, 0, token, out.data(), 16));
    EXPECT_EQ(out[0], static_cast<float>(token));
  }
  CacheTierStats emb = cache.Stats(model, ServeCache::kEmbeddingTierName);
  EXPECT_GT(emb.evictions, 0);
  EXPECT_LE(emb.entries, 2);
  // Oldest rows are gone; the newest survives.
  EXPECT_FALSE(cache.LookupEmbeddingRow(model, 0, 0, out.data(), 16));
  EXPECT_TRUE(cache.LookupEmbeddingRow(model, 0, 7, out.data(), 16));
}

TEST(ServeCacheLruTest, LookupRefreshesRecency) {
  CacheConfig config;
  config.enabled = true;
  config.encoder_tier = false;
  config.num_shards = 1;
  config.capacity_bytes = 2 * (16 * sizeof(float) + 96);
  ServeCache cache(config);
  ServeCache::ModelId model = cache.RegisterModel("lru");

  std::vector<float> row(16, 1.0f);
  std::vector<float> out(16);
  cache.InsertEmbeddingRow(model, 0, 1, row.data(), 16);
  cache.InsertEmbeddingRow(model, 0, 2, row.data(), 16);
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_TRUE(cache.LookupEmbeddingRow(model, 0, 1, out.data(), 16));
  cache.InsertEmbeddingRow(model, 0, 3, row.data(), 16);
  EXPECT_TRUE(cache.LookupEmbeddingRow(model, 0, 1, out.data(), 16));
  EXPECT_FALSE(cache.LookupEmbeddingRow(model, 0, 2, out.data(), 16));
}

// ---- Invalidation and reload ------------------------------------------------

TEST(ServeCacheInvalidationTest, RegistryReloadStartsColdAndSweeps) {
  CacheConfig config;
  config.enabled = true;
  ServeCache cache(config);
  ModelRegistry registry;
  registry.AttachCache(&cache);

  datasets::SyntheticDataset dataset = TinyDataset();
  core::TrainConfig model_config = TinyConfig();
  Tensor embeddings = eval::BuildEmbeddings(dataset, model_config);
  auto make_session = [&](uint64_t seed) {
    core::TrainConfig c = TinyConfig(seed);
    return std::make_shared<InferenceSession>(
        MakeModel(Method::kRnp, embeddings, c), dataset.vocab);
  };

  auto first = make_session(3);
  registry.Register("m", first);
  ServeCache::ModelId first_id = first->cache_model_id();
  std::string text = DistinctText(first->vocab(), 0, 5);
  registry.Predict("m", text);
  EXPECT_GT(cache.Stats(first_id, ServeCache::kEncoderTierName).entries, 0);

  // Hot swap = new cache model id, old entries swept.
  auto second = make_session(17);
  registry.Register("m", second);
  ServeCache::ModelId second_id = second->cache_model_id();
  EXPECT_NE(first_id, second_id);
  EXPECT_EQ(cache.Stats(first_id, ServeCache::kEncoderTierName).entries, 0);
  EXPECT_EQ(cache.Stats(first_id, ServeCache::kEncoderTierName).bytes, 0);

  // The reloaded model starts cold — its first request is a miss even
  // though the old model served the same text.
  std::optional<InferenceResult> r = registry.Predict("m", text);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cache, CacheOutcome::kMiss);

  // Late inserts from the invalidated session are dropped.
  first->Predict(text);
  EXPECT_EQ(cache.Stats(first_id, ServeCache::kEncoderTierName).entries, 0);

  registry.Unregister("m");
  EXPECT_EQ(cache.Stats(second_id, ServeCache::kEncoderTierName).entries, 0);
}

// ---- Concurrency (the TSan lane runs this) ----------------------------------

TEST(ServeCacheConcurrencyTest, EightClientsTwoModelsConcurrentReload) {
  CacheConfig config;
  config.enabled = true;
  config.capacity_bytes = 1 << 20;
  ServeCache cache(config);
  ModelRegistry registry;
  registry.AttachCache(&cache);

  datasets::SyntheticDataset dataset = TinyDataset();
  Tensor embeddings = eval::BuildEmbeddings(dataset, TinyConfig());
  const std::vector<std::string> names = {"m0", "m1"};
  const std::vector<uint64_t> gen1_seeds = {3, 7};
  const std::vector<uint64_t> gen2_seeds = {13, 17};

  auto make_session = [&](uint64_t seed) {
    return std::make_shared<InferenceSession>(
        MakeModel(Method::kRnp, embeddings, TinyConfig(seed)), dataset.vocab);
  };
  // Uncached references for both checkpoint generations of both models.
  std::vector<std::unique_ptr<InferenceSession>> gen1_ref, gen2_ref;
  for (size_t m = 0; m < 2; ++m) {
    gen1_ref.push_back(std::make_unique<InferenceSession>(
        MakeModel(Method::kRnp, embeddings, TinyConfig(gen1_seeds[m])),
        dataset.vocab));
    gen2_ref.push_back(std::make_unique<InferenceSession>(
        MakeModel(Method::kRnp, embeddings, TinyConfig(gen2_seeds[m])),
        dataset.vocab));
  }

  std::vector<std::string> texts;
  for (int64_t i = 0; i < 8; ++i) {
    texts.push_back(DistinctText(dataset.vocab, i * 3, 3 + (i % 5)));
  }
  // Expected responses per (model, generation, text), computed uncached.
  std::vector<std::vector<InferenceResult>> gen1_expected(2), gen2_expected(2);
  for (size_t m = 0; m < 2; ++m) {
    for (const std::string& text : texts) {
      gen1_expected[m].push_back(gen1_ref[m]->Predict(text));
      gen2_expected[m].push_back(gen2_ref[m]->Predict(text));
    }
  }

  registry.Register(names[0], make_session(gen1_seeds[0]));
  registry.Register(names[1], make_session(gen1_seeds[1]));

  std::atomic<int> mismatches{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c]() {
      while (!start.load()) std::this_thread::yield();
      Pcg32 rng(static_cast<uint64_t>(1000 + c));
      for (int i = 0; i < 60; ++i) {
        size_t m = (static_cast<size_t>(c) + static_cast<size_t>(i)) % 2;
        size_t t = rng.Below(static_cast<uint32_t>(texts.size()));
        std::optional<InferenceResult> r =
            registry.Predict(names[m], texts[t]);
        if (!r.has_value()) {
          ++mismatches;
          continue;
        }
        // During the hot swap a response may come from either checkpoint
        // generation — but never from a mixture, and never stale states
        // under the new generation's id.
        if (!BitIdentical(*r, gen1_expected[m][t]) &&
            !BitIdentical(*r, gen2_expected[m][t])) {
          ++mismatches;
        }
      }
    });
  }
  start.store(true);
  // Concurrent checkpoint reload of both models while clients hammer.
  registry.Register(names[0], make_session(gen2_seeds[0]));
  registry.Register(names[1], make_session(gen2_seeds[1]));
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // After the reload settles every response matches generation 2 exactly
  // (warm pass immediately after a cold pass: hits must stay exact too).
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t m = 0; m < 2; ++m) {
      for (size_t t = 0; t < texts.size(); ++t) {
        std::optional<InferenceResult> r =
            registry.Predict(names[m], texts[t]);
        ASSERT_TRUE(r.has_value());
        ExpectBitIdentical(*r, gen2_expected[m][t],
                           "post-reload model " + names[m] + " text " +
                               std::to_string(t));
      }
    }
  }
}

// ---- Metrics & stats surfaces ------------------------------------------------

TEST(ServeCacheMetricsTest, PrometheusExposesPerModelPerTierSeries) {
  CacheConfig config;
  config.enabled = true;
  ServeCache cache(config);
  obs::MetricsRegistry metrics;
  cache.PublishMetrics(&metrics);

  ModelRegistry registry;
  registry.PublishMetrics(&metrics);
  registry.AttachCache(&cache);

  datasets::SyntheticDataset dataset = TinyDataset();
  Tensor embeddings = eval::BuildEmbeddings(dataset, TinyConfig());
  auto session = std::make_shared<InferenceSession>(
      MakeModel(Method::kRnp, embeddings, TinyConfig()), dataset.vocab);
  registry.Register("beer", session);

  std::string text = DistinctText(dataset.vocab, 0, 5);
  registry.Predict("beer", text);
  registry.Predict("beer", text);

  std::string exposition = metrics.ExportPrometheus();
  EXPECT_NE(exposition.find(
                "serve_cache_hits_total{model=\"beer\",tier=\"encoder\"}"),
            std::string::npos)
      << exposition;
  EXPECT_NE(exposition.find(
                "serve_cache_misses_total{model=\"beer\",tier=\"encoder\"}"),
            std::string::npos);
  EXPECT_NE(exposition.find("serve_cache_bytes{model=\"beer\","),
            std::string::npos);
  EXPECT_NE(exposition.find("serve_cache_hit_rate{model=\"beer\","),
            std::string::npos);

  // Request-level outcome counters on the session's serving stats.
  StatsSnapshot snapshot = session->stats().Snapshot();
  EXPECT_EQ(snapshot.cache_misses, 1);
  EXPECT_EQ(snapshot.cache_hits, 1);
  EXPECT_DOUBLE_EQ(snapshot.cache_hit_rate, 0.5);
}

TEST(ServeCacheMetricsTest, HitRateGaugeTracksLookups) {
  CacheConfig config;
  config.enabled = true;
  ServeCache cache(config);
  obs::MetricsRegistry metrics;
  cache.PublishMetrics(&metrics);
  ServeCache::ModelId model = cache.RegisterModel("g");

  std::vector<int64_t> ids = {5, 6, 7};
  EXPECT_EQ(cache.LookupEncoderStates(model, ids), nullptr);
  cache.InsertEncoderStates(model, ids, Tensor(Shape{1, 3, 4}),
                            Tensor(Shape{1, 3, 4}));
  EXPECT_NE(cache.LookupEncoderStates(model, ids), nullptr);
  double rate =
      metrics
          .GetGauge(obs::LabeledName("serve.cache_hit_rate",
                                     {{"model", "g"}, {"tier", "encoder"}}))
          .value();
  EXPECT_DOUBLE_EQ(rate, 0.5);
}

// ---- HTTP header mapping -----------------------------------------------------

TEST(ServeCacheHttpTest, PredictResponsesCarryCacheHeader) {
  net::RouterConfig router_config;
  router_config.serve.cache.enabled = true;
  ModelRegistry registry;
  net::Router router(registry, router_config);
  ASSERT_NE(router.cache(), nullptr);

  datasets::SyntheticDataset dataset = TinyDataset();
  Tensor embeddings = eval::BuildEmbeddings(dataset, TinyConfig());
  router.ServeModel("beer",
                    std::make_shared<InferenceSession>(
                        MakeModel(Method::kRnp, embeddings, TinyConfig()),
                        dataset.vocab));

  net::HttpRequest request;
  request.method = "POST";
  request.target = "/v1/models/beer/predict";
  request.version = "HTTP/1.1";
  request.body = "{\"text\": \"" + DistinctText(dataset.vocab, 0, 5) + "\"}";

  auto cache_header = [](const net::HttpResponse& response) -> std::string {
    for (const auto& [k, v] : response.extra_headers) {
      if (k == "X-DAR-Cache") return v;
    }
    return "";
  };
  net::HttpResponse first = router.Handle(request);
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(cache_header(first), "miss");
  net::HttpResponse second = router.Handle(request);
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(cache_header(second), "hit");
  // Bodies are bit-identical across outcomes — the header is the only
  // observable difference.
  EXPECT_EQ(first.body, second.body);
}

}  // namespace
}  // namespace serve
}  // namespace dar
