// Tests for optim: SGD, Adam, gradient clipping.
#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "optim/adam.h"
#include "optim/clip.h"
#include "optim/schedule.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace optim {
namespace {

/// Quadratic loss 0.5 * ||w - target||^2 for optimizer convergence checks.
ag::Variable Quadratic(const ag::Variable& w, const Tensor& target) {
  ag::Variable diff = ag::Sub(w, ag::Variable::Constant(target));
  return ag::MulScalar(ag::Sum(ag::Mul(diff, diff)), 0.5f);
}

TEST(SgdTest, SingleStepMatchesFormula) {
  ag::Variable w = ag::Variable::Param(Tensor::FromVector({1.0f}));
  Sgd sgd({w}, {.lr = 0.1f});
  sgd.ZeroGrad();
  Quadratic(w, Tensor::FromVector({0.0f})).Backward();  // grad = w = 1
  sgd.Step();
  EXPECT_NEAR(w.value().at(0), 0.9f, 1e-6f);
}

TEST(SgdTest, MomentumAccumulates) {
  ag::Variable w = ag::Variable::Param(Tensor::FromVector({0.0f}));
  Sgd sgd({w}, {.lr = 1.0f, .momentum = 0.9f});
  // Constant gradient of 1 for two steps: velocity 1, then 1.9.
  for (int step = 0; step < 2; ++step) {
    sgd.ZeroGrad();
    ag::Sum(w).Backward();
    sgd.Step();
  }
  EXPECT_NEAR(w.value().at(0), -(1.0f + 1.9f), 1e-5f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  ag::Variable w = ag::Variable::Param(Tensor::FromVector({5.0f, -3.0f}));
  Tensor target = Tensor::FromVector({1.0f, 2.0f});
  Sgd sgd({w}, {.lr = 0.3f});
  for (int step = 0; step < 60; ++step) {
    sgd.ZeroGrad();
    Quadratic(w, target).Backward();
    sgd.Step();
  }
  EXPECT_TRUE(w.value().AllClose(target, 1e-3f));
}

TEST(AdamTest, FirstStepSizeIsLr) {
  // With bias correction, Adam's very first update is ~lr * sign(grad).
  ag::Variable w = ag::Variable::Param(Tensor::FromVector({1.0f}));
  Adam adam({w}, {.lr = 0.1f});
  adam.ZeroGrad();
  ag::Sum(w).Backward();  // grad = 1
  adam.Step();
  EXPECT_NEAR(w.value().at(0), 0.9f, 1e-3f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  ag::Variable w = ag::Variable::Param(Tensor::FromVector({4.0f, -4.0f}));
  Tensor target = Tensor::FromVector({-1.0f, 0.5f});
  Adam adam({w}, {.lr = 0.2f});
  for (int step = 0; step < 200; ++step) {
    adam.ZeroGrad();
    Quadratic(w, target).Backward();
    adam.Step();
  }
  EXPECT_TRUE(w.value().AllClose(target, 1e-2f));
}

TEST(AdamTest, SkipsFrozenParameters) {
  ag::Variable w = ag::Variable::Param(Tensor::FromVector({1.0f}));
  ag::Variable frozen = ag::Variable::Param(Tensor::FromVector({1.0f}));
  frozen.set_requires_grad(false);
  Adam adam({w, frozen}, {.lr = 0.1f});
  adam.ZeroGrad();
  ag::Sum(ag::Add(w, frozen)).Backward();
  adam.Step();
  EXPECT_NE(w.value().at(0), 1.0f);
  EXPECT_EQ(frozen.value().at(0), 1.0f);
}

TEST(AdamDeathTest, MissingGradAborts) {
  // A requires-grad parameter that never received a gradient means a broken
  // graph or a dropped data-parallel shard — silently skipping it hid such
  // bugs, so Step() now aborts by default.
  ag::Variable used = ag::Variable::Param(Tensor::FromVector({1.0f}));
  ag::Variable unused = ag::Variable::Param(Tensor::FromVector({1.0f}));
  Adam adam({used, unused}, {.lr = 0.1f});
  ag::Sum(used).Backward();
  EXPECT_DEATH(adam.Step(), "no accumulated");
}

TEST(AdamTest, AllowMissingGradOptsIntoSkipping) {
  ag::Variable used = ag::Variable::Param(Tensor::FromVector({1.0f}));
  ag::Variable unused = ag::Variable::Param(Tensor::FromVector({1.0f}));
  Adam adam({used, unused}, {.lr = 0.1f, .allow_missing_grad = true});
  ag::Sum(used).Backward();
  adam.Step();
  EXPECT_NE(used.value().at(0), 1.0f);
  EXPECT_EQ(unused.value().at(0), 1.0f);
}

TEST(SgdDeathTest, MissingGradAborts) {
  ag::Variable used = ag::Variable::Param(Tensor::FromVector({1.0f}));
  ag::Variable unused = ag::Variable::Param(Tensor::FromVector({1.0f}));
  Sgd sgd({used, unused}, {.lr = 0.1f});
  ag::Sum(used).Backward();
  EXPECT_DEATH(sgd.Step(), "no accumulated");
}

TEST(SgdTest, AllowMissingGradOptsIntoSkipping) {
  ag::Variable used = ag::Variable::Param(Tensor::FromVector({1.0f}));
  ag::Variable unused = ag::Variable::Param(Tensor::FromVector({1.0f}));
  Sgd sgd({used, unused}, {.lr = 0.1f, .allow_missing_grad = true});
  ag::Sum(used).Backward();
  sgd.Step();
  EXPECT_NE(used.value().at(0), 1.0f);
  EXPECT_EQ(unused.value().at(0), 1.0f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  ag::Variable w = ag::Variable::Param(Tensor::FromVector({10.0f}));
  Adam adam({w}, {.lr = 0.1f, .weight_decay = 1.0f});
  for (int step = 0; step < 50; ++step) {
    adam.ZeroGrad();
    // Loss gradient 0 via zero-contribution graph: decay alone drives w.
    ag::Sum(ag::MulScalar(w, 0.0f)).Backward();
    adam.Step();
  }
  EXPECT_LT(std::fabs(w.value().at(0)), 7.0f);
}

TEST(ClipTest, NormUnchangedBelowThreshold) {
  ag::Variable w = ag::Variable::Param(Tensor::FromVector({1.0f}));
  w.ZeroGrad();
  ag::Sum(w).Backward();  // grad norm 1
  float norm = ClipGradNorm({w}, 10.0f);
  EXPECT_NEAR(norm, 1.0f, 1e-6f);
  EXPECT_NEAR(w.grad().at(0), 1.0f, 1e-6f);
}

TEST(ClipTest, ScalesDownAboveThreshold) {
  ag::Variable w = ag::Variable::Param(Tensor::FromVector({3.0f, 4.0f}));
  w.ZeroGrad();
  ag::Variable loss = ag::Sum(ag::Mul(w, w));  // grad = 2w = (6, 8), norm 10
  loss.Backward();
  float norm = ClipGradNorm({w}, 5.0f);
  EXPECT_NEAR(norm, 10.0f, 1e-4f);
  EXPECT_NEAR(Norm2(w.grad()), 5.0f, 1e-3f);
  // Direction preserved.
  EXPECT_NEAR(w.grad().at(0) / w.grad().at(1), 6.0f / 8.0f, 1e-4f);
}

TEST(ClipTest, GlobalNormAcrossParameters) {
  ag::Variable a = ag::Variable::Param(Tensor::FromVector({3.0f}));
  ag::Variable b = ag::Variable::Param(Tensor::FromVector({4.0f}));
  a.ZeroGrad();
  b.ZeroGrad();
  ag::Sum(ag::Mul(a, a)).Backward();  // grad a = 6
  ag::Sum(ag::Mul(b, b)).Backward();  // grad b = 8
  float norm = ClipGradNorm({a, b}, 1.0f);
  EXPECT_NEAR(norm, 10.0f, 1e-4f);
  float combined = std::sqrt(a.grad().at(0) * a.grad().at(0) +
                             b.grad().at(0) * b.grad().at(0));
  EXPECT_NEAR(combined, 1.0f, 1e-3f);
}

TEST(ScheduleTest, ConstantIsAlwaysOne) {
  ConstantSchedule schedule;
  EXPECT_EQ(schedule.Multiplier(0), 1.0f);
  EXPECT_EQ(schedule.Multiplier(1000000), 1.0f);
}

TEST(ScheduleTest, WarmupRampsLinearly) {
  WarmupSchedule schedule{.warmup_steps = 10};
  EXPECT_NEAR(schedule.Multiplier(0), 0.1f, 1e-6f);
  EXPECT_NEAR(schedule.Multiplier(4), 0.5f, 1e-6f);
  EXPECT_EQ(schedule.Multiplier(10), 1.0f);
  EXPECT_EQ(schedule.Multiplier(99), 1.0f);
}

TEST(ScheduleTest, StepDecayHalves) {
  StepDecaySchedule schedule{.period = 5, .gamma = 0.5f};
  EXPECT_EQ(schedule.Multiplier(0), 1.0f);
  EXPECT_EQ(schedule.Multiplier(4), 1.0f);
  EXPECT_NEAR(schedule.Multiplier(5), 0.5f, 1e-6f);
  EXPECT_NEAR(schedule.Multiplier(12), 0.25f, 1e-6f);
}

TEST(ScheduleTest, CosineDecaysMonotonicallyToFloor) {
  CosineSchedule schedule{.total_steps = 100, .floor = 0.1f};
  float prev = schedule.Multiplier(0);
  EXPECT_NEAR(prev, 1.0f, 1e-5f);
  for (int64_t step = 1; step <= 100; ++step) {
    float m = schedule.Multiplier(step);
    EXPECT_LE(m, prev + 1e-6f);
    prev = m;
  }
  EXPECT_NEAR(schedule.Multiplier(100), 0.1f, 1e-5f);
  EXPECT_NEAR(schedule.Multiplier(500), 0.1f, 1e-5f);
}

TEST(ScheduleTest, ApplySetsOptimizerLr) {
  ag::Variable w = ag::Variable::Param(Tensor::FromVector({1.0f}));
  Adam adam({w}, {.lr = 1.0f});
  WarmupSchedule schedule{.warmup_steps = 4};
  ApplySchedule(adam, schedule, /*base_lr=*/0.8f, /*step=*/1);
  EXPECT_NEAR(adam.lr(), 0.8f * 0.5f, 1e-6f);
}

}  // namespace
}  // namespace optim
}  // namespace dar
