// Tests for src/check/: the numerical sentinels (mode gating, NaN/Inf
// attribution, scratch poisoning, tape-ownership tokens), the autograd
// graph auditor (every IssueKind, fan-in math, per-op attribution, metric
// export), and the model-zoo audit engine behind the dar_check CLI —
// including the mutation self-test that proves each defect class is
// detected.
#include "check/graph_audit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "check/model_audit.h"
#include "check/sentinel.h"
#include "tensor/check.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace dar {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Restores sentinel mode + poison flag and drains leftover findings so a
/// failing test cannot contaminate its neighbors.
class SentinelGuard {
 public:
  SentinelGuard() { Reset(); }
  ~SentinelGuard() { Reset(); }

 private:
  static void Reset() {
    check::SetSentinelMode(check::SentinelMode::kOff);
    check::SetPoisonScratch(false);
    check::DrainSentinelFindings();
  }
};

// ---------------------------------------------------------------------------
// Sentinel primitives.

TEST(SentinelTest, OffByDefault) {
  SentinelGuard guard;
  EXPECT_EQ(check::GetSentinelMode(), check::SentinelMode::kOff);
  EXPECT_FALSE(check::SentinelEnabled());
  EXPECT_FALSE(check::PoisonEnabled());
}

TEST(SentinelTest, ModeRoundTrip) {
  SentinelGuard guard;
  check::SetSentinelMode(check::SentinelMode::kRecord);
  EXPECT_EQ(check::GetSentinelMode(), check::SentinelMode::kRecord);
  EXPECT_TRUE(check::SentinelEnabled());
  check::SetSentinelMode(check::SentinelMode::kOff);
  EXPECT_FALSE(check::SentinelEnabled());
}

TEST(SentinelTest, ComputeStatsFiniteBuffer) {
  const float data[] = {1.0f, -3.0f, 2.0f};
  const check::TensorStats stats = check::ComputeStats(data, 3);
  EXPECT_EQ(stats.numel, 3);
  EXPECT_TRUE(stats.all_finite());
  EXPECT_FLOAT_EQ(stats.finite_min, -3.0f);
  EXPECT_FLOAT_EQ(stats.finite_max, 2.0f);
  EXPECT_FLOAT_EQ(stats.finite_mean, 0.0f);
}

TEST(SentinelTest, ComputeStatsCountsNanAndInf) {
  const float data[] = {1.0f, kNaN, kInf, -kInf, 5.0f};
  const check::TensorStats stats = check::ComputeStats(data, 5);
  EXPECT_EQ(stats.nan_count, 1);
  EXPECT_EQ(stats.inf_count, 2);
  EXPECT_FALSE(stats.all_finite());
  EXPECT_FLOAT_EQ(stats.finite_min, 1.0f);
  EXPECT_FLOAT_EQ(stats.finite_max, 5.0f);
}

TEST(SentinelTest, ScanCleanBufferRecordsNothing) {
  SentinelGuard guard;
  check::SetSentinelMode(check::SentinelMode::kRecord);
  const float data[] = {0.0f, 1.0f, -2.0f};
  EXPECT_TRUE(check::ScanForNonFinite("test_op", "value", data, 3));
  EXPECT_EQ(check::SentinelFindingCount(), 0u);
}

TEST(SentinelTest, RecordModeAttributesOpAndLocation) {
  SentinelGuard guard;
  check::SetSentinelMode(check::SentinelMode::kRecord);
  const float data[] = {1.0f, kNaN};
  EXPECT_FALSE(check::ScanForNonFinite("matmul", "grad", data, 2));
  const std::vector<check::SentinelFinding> findings =
      check::DrainSentinelFindings();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].op, "matmul");
  EXPECT_EQ(findings[0].where, "grad");
  EXPECT_EQ(findings[0].stats.nan_count, 1);
  // Drain clears.
  EXPECT_EQ(check::SentinelFindingCount(), 0u);
  EXPECT_TRUE(check::DrainSentinelFindings().empty());
}

TEST(SentinelTest, ForwardOpScanNamesTheProducingOp) {
  SentinelGuard guard;
  check::SetSentinelMode(check::SentinelMode::kRecord);
  ag::Variable x = ag::Variable::Param(Tensor::Full(Shape{3}, kNaN));
  ag::Variable y = ag::MulScalar(x, 2.0f);
  (void)y;
  const std::vector<check::SentinelFinding> findings =
      check::DrainSentinelFindings();
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings.front().op, "mul_scalar");
  EXPECT_EQ(findings.front().where, "value");
}

TEST(SentinelTest, BackwardScanCatchesNonFiniteGradient) {
  SentinelGuard guard;
  // Build a healthy graph, then seed Backward() with NaN: only the
  // gradient stream is poisoned, so any finding must come from the
  // backward-pass scan, attributed to the op whose grad went bad.
  Pcg32 rng(12);
  ag::Variable w = ag::Variable::Param(Tensor::Randn({3}, rng));
  ag::Variable loss = ag::Sum(ag::Mul(w, w));
  check::SetSentinelMode(check::SentinelMode::kRecord);
  loss.Backward(Tensor::Full(loss.value().shape(), kNaN));
  const std::vector<check::SentinelFinding> findings =
      check::DrainSentinelFindings();
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings.front().op, "sum");
  EXPECT_EQ(findings.front().where, "grad");
}

TEST(SentinelTest, TrapModeAborts) {
  SentinelGuard guard;
  const float data[] = {kInf};
  EXPECT_DEATH(
      {
        check::SetSentinelMode(check::SentinelMode::kTrap);
        check::ScanForNonFinite("bad_op", "value", data, 1);
      },
      "bad_op");
}

TEST(SentinelTest, TapeOwnerTokensAreNonzeroAndPerThread) {
  const uint32_t mine = check::TapeOwnerToken();
  EXPECT_NE(mine, 0u);
  EXPECT_EQ(check::TapeOwnerToken(), mine);  // stable within a thread
  uint32_t other = 0;
  std::thread t([&] { other = check::TapeOwnerToken(); });
  t.join();
  EXPECT_NE(other, 0u);
  EXPECT_NE(other, mine);
}

TEST(SentinelTest, TapeViolationIsRecorded) {
  SentinelGuard guard;
  check::SetSentinelMode(check::SentinelMode::kRecord);
  check::ReportTapeViolation("unit-test violation");
  const std::vector<check::SentinelFinding> findings =
      check::DrainSentinelFindings();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].op, "tape");
}

TEST(SentinelTest, ConcurrentBackwardOnDisjointTapesIsClean) {
  SentinelGuard guard;
  check::SetSentinelMode(check::SentinelMode::kRecord);
  // The PR 2 contract: disjoint graphs per thread are fine. The ownership
  // assertions must not fire here.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      Pcg32 rng(100 + t);
      ag::Variable w = ag::Variable::Param(Tensor::Randn({8}, rng));
      for (int step = 0; step < 10; ++step) {
        ag::Variable loss = ag::Sum(ag::Mul(w, w));
        loss.Backward();
        w.ZeroGrad();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(check::SentinelFindingCount(), 0u);
}

// ---------------------------------------------------------------------------
// Scratch poisoning.

TEST(ScratchTest, ZeroInitializedByDefault) {
  SentinelGuard guard;
  Tensor t = Tensor::Scratch(Shape{4});
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.flat(i), 0.0f);
}

TEST(ScratchTest, PoisonedWithNanWhenEnabled) {
  SentinelGuard guard;
  check::SetPoisonScratch(true);
  Tensor t = Tensor::Scratch(Shape{4});
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_TRUE(std::isnan(t.flat(i)));
}

TEST(ScratchTest, FullyOverwritingKernelsSurvivePoison) {
  SentinelGuard guard;
  check::SetPoisonScratch(true);
  check::SetSentinelMode(check::SentinelMode::kRecord);
  // Ops whose kernels allocate via Scratch must overwrite every element;
  // under poison any missed element would surface as a NaN finding.
  Pcg32 rng(7);
  ag::Variable a = ag::Variable::Param(Tensor::Randn({3, 5}, rng));
  ag::Variable b = ag::Variable::Param(Tensor::Randn({3, 5}, rng));
  ag::Variable loss = ag::Sum(ag::Mul(ag::Tanh(a), ag::Sigmoid(b)));
  loss.Backward();
  EXPECT_EQ(check::SentinelFindingCount(), 0u);
}

// ---------------------------------------------------------------------------
// DAR_DCHECK contract (tensor/check.h).

TEST(CheckMacroTest, DcheckOperandsNotEvaluatedTwice) {
  // The documented contract: DAR_CHECK* evaluate operands exactly once.
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  DAR_CHECK_GE(next(), 1);
  EXPECT_EQ(calls, 1);
}

TEST(CheckMacroTest, DcheckCompilesAndPasses) {
  DAR_DCHECK(1 + 1 == 2);
  DAR_DCHECK_EQ(2, 2);
  DAR_DCHECK_LT(1, 2);
  DAR_DCHECK_MSG(true, "never fires");
}

// ---------------------------------------------------------------------------
// GraphAudit.

TEST(GraphAuditTest, CleanGraphReportsNoFindings) {
  Pcg32 rng(1);
  ag::Variable w1 = ag::Variable::Param(Tensor::Randn({4}, rng));
  ag::Variable w2 = ag::Variable::Param(Tensor::Randn({4}, rng));
  ag::Variable loss = ag::Sum(ag::Add(ag::Mul(w1, w1), ag::Mul(w2, w2)));
  loss.Backward();
  const check::AuditReport report =
      check::AuditGraph(loss, {{"w1", w1}, {"w2", w2}});
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.params_audited, 2);
  EXPECT_EQ(report.params_reachable, 2);
  EXPECT_EQ(report.params_frozen, 0);
  EXPECT_GT(report.nodes_visited, 2);
  bool saw_mul = false;
  for (const check::OpGradStat& s : report.per_op) {
    if (s.op == "mul") {
      saw_mul = true;
      EXPECT_GT(s.grad_norm, 0.0);
    }
  }
  EXPECT_TRUE(saw_mul);
}

TEST(GraphAuditTest, SharedOperandFanInIsNotDoubleAccumulation) {
  // Mul(w, w) pushes two gradients into w in a single backward — the
  // fan-in accounting must not misread that as a double Backward().
  Pcg32 rng(2);
  ag::Variable w = ag::Variable::Param(Tensor::Randn({4}, rng));
  ag::Variable loss = ag::Sum(ag::Mul(w, w));
  loss.Backward();
  const check::AuditReport report = check::AuditGraph(loss, {{"w", w}});
  EXPECT_EQ(report.count(check::IssueKind::kDoubleAccumulation), 0)
      << report.ToString();
}

TEST(GraphAuditTest, DetachedParamIsOrphan) {
  Pcg32 rng(3);
  ag::Variable w1 = ag::Variable::Param(Tensor::Randn({3}, rng));
  ag::Variable w2 = ag::Variable::Param(Tensor::Randn({3}, rng));
  ag::Variable loss =
      ag::Sum(ag::Add(ag::Mul(w1, w1), ag::Mul(w2.Detach(), w2.Detach())));
  loss.Backward();
  const check::AuditReport report =
      check::AuditGraph(loss, {{"w1", w1}, {"w2", w2}});
  EXPECT_EQ(report.count(check::IssueKind::kOrphanParam), 1);
  ASSERT_FALSE(report.issues.empty());
  EXPECT_EQ(report.issues[0].where, "w2");
}

TEST(GraphAuditTest, FrozenParamInOptimizerListIsOrphan) {
  Pcg32 rng(4);
  ag::Variable w = ag::Variable::Param(Tensor::Randn({3}, rng));
  ag::Variable frozen = ag::Variable::Param(Tensor::Randn({3}, rng));
  frozen.node()->requires_grad = false;
  ag::Variable loss = ag::Sum(ag::Add(ag::Mul(w, w), ag::Mul(frozen, frozen)));
  loss.Backward();
  const check::AuditReport report =
      check::AuditGraph(loss, {{"w", w}, {"frozen", frozen}});
  EXPECT_EQ(report.count(check::IssueKind::kOrphanParam), 1);
  EXPECT_EQ(report.params_frozen, 1);
}

TEST(GraphAuditTest, MissingGradOnReachableParam) {
  // A buggy backward closure that never pushes into one parent: w2 is
  // reachable and gradients landed elsewhere, but its buffer is empty.
  Pcg32 rng(5);
  ag::Variable w1 = ag::Variable::Param(Tensor::Randn({3}, rng));
  ag::Variable w2 = ag::Variable::Param(Tensor::Randn({3}, rng));
  ag::Variable loss = ag::Sum(ag::Add(ag::Mul(w1, w1), ag::Mul(w2, w2)));
  loss.Backward();
  w2.node()->grad = Tensor();  // as if AccumulateGrad never ran
  const check::AuditReport report =
      check::AuditGraph(loss, {{"w1", w1}, {"w2", w2}});
  EXPECT_EQ(report.count(check::IssueKind::kMissingGrad), 1)
      << report.ToString();
}

TEST(GraphAuditTest, ForwardOnlyAuditSkipsGradExpectations) {
  Pcg32 rng(6);
  ag::Variable w = ag::Variable::Param(Tensor::Randn({3}, rng));
  ag::Variable loss = ag::Sum(ag::Mul(w, w));
  // No Backward(). With expect_gradients=false this graph is healthy.
  check::AuditOptions options;
  options.expect_gradients = false;
  const check::AuditReport report =
      check::AuditGraph(loss, {{"w", w}}, options);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(GraphAuditTest, StaleGradOnUnreachableParam) {
  Pcg32 rng(7);
  ag::Variable w1 = ag::Variable::Param(Tensor::Randn({3}, rng));
  ag::Variable w2 = ag::Variable::Param(Tensor::Randn({3}, rng));
  // w2 earns a gradient from an earlier step...
  ag::Variable old_loss = ag::Sum(ag::Mul(w2, w2));
  old_loss.Backward();
  // ...then the next step's graph detaches it, without a ZeroGrad.
  ag::Variable loss =
      ag::Sum(ag::Add(ag::Mul(w1, w1), ag::Mul(w2.Detach(), w2.Detach())));
  loss.Backward();
  const check::AuditReport report =
      check::AuditGraph(loss, {{"w1", w1}, {"w2", w2}});
  EXPECT_EQ(report.count(check::IssueKind::kOrphanParam), 1);
  EXPECT_EQ(report.count(check::IssueKind::kStaleGrad), 1);
}

TEST(GraphAuditTest, DoubleBackwardWithoutZeroGrad) {
  Pcg32 rng(8);
  ag::Variable w = ag::Variable::Param(Tensor::Randn({4}, rng));
  ag::Variable loss = ag::Sum(ag::Mul(w, w));
  loss.Backward();
  loss.Backward();
  const check::AuditReport report = check::AuditGraph(loss, {{"w", w}});
  EXPECT_GE(report.count(check::IssueKind::kDoubleAccumulation), 1)
      << report.ToString();
}

TEST(GraphAuditTest, CorruptGradShape) {
  Pcg32 rng(9);
  ag::Variable w = ag::Variable::Param(Tensor::Randn({4}, rng));
  ag::Variable loss = ag::Sum(ag::Mul(w, w));
  loss.Backward();
  w.node()->grad = Tensor(Shape{2, 2});
  const check::AuditReport report = check::AuditGraph(loss, {{"w", w}});
  EXPECT_GE(report.count(check::IssueKind::kShapeMismatch), 1);
}

TEST(GraphAuditTest, NonFiniteValueIsAttributedToOp) {
  ag::Variable x = ag::Variable::Param(Tensor::Full(Shape{3}, -1.0f));
  ag::Variable loss = ag::Sum(ag::Sqrt(x));  // sqrt(-1) = NaN
  loss.Backward();
  const check::AuditReport report = check::AuditGraph(loss, {{"x", x}});
  EXPECT_GE(report.count(check::IssueKind::kNonFinite), 1);
  bool sqrt_flagged = false;
  for (const check::AuditIssue& issue : report.issues) {
    if (issue.kind == check::IssueKind::kNonFinite && issue.where == "sqrt") {
      sqrt_flagged = true;
    }
  }
  EXPECT_TRUE(sqrt_flagged) << report.ToString();
}

TEST(GraphAuditTest, IssueStorageIsCappedButCountsAreNot) {
  Pcg32 rng(10);
  std::vector<nn::NamedParameter> params;
  ag::Variable w = ag::Variable::Param(Tensor::Randn({2}, rng));
  params.push_back({"w", w});
  std::vector<ag::Variable> detached;
  for (int i = 0; i < 5; ++i) {
    detached.push_back(ag::Variable::Param(Tensor::Randn({2}, rng)));
    params.push_back({"orphan" + std::to_string(i), detached.back()});
  }
  ag::Variable loss = ag::Sum(ag::Mul(w, w));
  loss.Backward();
  check::AuditOptions options;
  options.max_issues_per_kind = 2;
  const check::AuditReport report = check::AuditGraph(loss, params, options);
  EXPECT_EQ(report.count(check::IssueKind::kOrphanParam), 5);
  int64_t stored = 0;
  for (const check::AuditIssue& issue : report.issues) {
    if (issue.kind == check::IssueKind::kOrphanParam) ++stored;
  }
  EXPECT_EQ(stored, 2);
}

TEST(GraphAuditTest, PublishMetricsExportsFindingsAndNorms) {
  Pcg32 rng(11);
  ag::Variable w = ag::Variable::Param(Tensor::Randn({3}, rng));
  ag::Variable orphan = ag::Variable::Param(Tensor::Randn({3}, rng));
  ag::Variable loss = ag::Sum(ag::Mul(w, w));
  loss.Backward();
  const check::AuditReport report =
      check::AuditGraph(loss, {{"w", w}, {"orphan", orphan}});
  obs::MetricsRegistry registry;
  report.PublishMetrics(registry, "audit");
  EXPECT_EQ(registry.GetCounter("audit.findings.orphan_param").value(), 1);
  EXPECT_GT(registry.GetGauge("audit.grad_norm.mul").value(), 0.0);
  EXPECT_EQ(registry.GetGauge("audit.params").value(), 2.0);
}

// ---------------------------------------------------------------------------
// Model-zoo audits (the dar_check engine).

TEST(ModelAuditTest, AuditableMethodsCoverTheZoo) {
  const std::vector<std::string> methods = check::AuditableMethods();
  EXPECT_GE(methods.size(), 12u);
  EXPECT_NE(std::find(methods.begin(), methods.end(), "RNP"), methods.end());
  EXPECT_NE(std::find(methods.begin(), methods.end(), "DAR"), methods.end());
}

TEST(ModelAuditTest, RnpAuditsClean) {
  SentinelGuard guard;
  const check::MethodAuditResult result = check::AuditMethodByName("RNP");
  EXPECT_TRUE(result.ok) << result.report.ToString();
  EXPECT_GT(result.report.params_audited, 0);
  EXPECT_EQ(result.report.params_audited, result.report.params_reachable);
}

TEST(ModelAuditTest, DarAuditsClean) {
  SentinelGuard guard;
  const check::MethodAuditResult result = check::AuditMethodByName("DAR");
  EXPECT_TRUE(result.ok) << result.report.ToString();
  EXPECT_TRUE(result.sentinel_findings.empty());
}

TEST(ModelAuditTest, MutationSelfTestDetectsEveryDefectClass) {
  SentinelGuard guard;
  const std::vector<check::SelfTestResult> results =
      check::RunMutationSelfTest();
  EXPECT_GE(results.size(), 6u);
  for (const check::SelfTestResult& r : results) {
    EXPECT_TRUE(r.detected) << r.defect << ": " << r.detail;
  }
}

}  // namespace
}  // namespace dar
