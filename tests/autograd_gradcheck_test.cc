// Numerical gradient checks for every differentiable op: the analytic
// backward of each op is compared against central finite differences via
// ag::CheckGradients.
#include <cmath>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "core/regularizer.h"
#include "core/train_config.h"
#include "nn/attention.h"
#include "nn/gumbel.h"
#include "nn/layer_norm.h"
#include "nn/loss.h"
#include "tensor/random.h"

namespace dar {
namespace ag {
namespace {

/// A named scalar-valued function of leaf tensors plus its input shapes.
struct OpCase {
  std::string name;
  std::vector<Shape> shapes;
  std::function<Variable(const std::vector<Variable>&)> fn;
  /// Some inputs must stay positive (Log, Sqrt, Div denominator).
  bool positive_inputs = false;
};

class OpGradCheck : public ::testing::TestWithParam<OpCase> {};

TEST_P(OpGradCheck, MatchesNumericGradient) {
  const OpCase& c = GetParam();
  Pcg32 rng(static_cast<uint64_t>(std::hash<std::string>{}(c.name)));
  std::vector<Tensor> inputs;
  for (const Shape& s : c.shapes) {
    Tensor t = Tensor::Randn(s, rng, 0.6f);
    if (c.positive_inputs) {
      for (int64_t i = 0; i < t.numel(); ++i) {
        t.flat(i) = 0.3f + std::fabs(t.flat(i));
      }
    }
    inputs.push_back(std::move(t));
  }
  GradCheckResult r = CheckGradients(c.fn, inputs);
  EXPECT_TRUE(r.ok) << c.name << ": max error " << r.max_abs_error << " at "
                    << r.worst_location;
}

std::vector<OpCase> AllOpCases() {
  std::vector<OpCase> cases;
  auto add = [&](std::string name, std::vector<Shape> shapes,
                 std::function<Variable(const std::vector<Variable>&)> fn,
                 bool positive = false) {
    cases.push_back({std::move(name), std::move(shapes), std::move(fn), positive});
  };

  add("add", {{2, 3}, {2, 3}},
      [](const std::vector<Variable>& v) { return Sum(Add(v[0], v[1])); });
  add("sub", {{2, 3}, {2, 3}},
      [](const std::vector<Variable>& v) { return Sum(Sub(v[0], v[1])); });
  add("mul", {{2, 3}, {2, 3}},
      [](const std::vector<Variable>& v) { return Sum(Mul(v[0], v[1])); });
  add("div", {{2, 3}, {2, 3}},
      [](const std::vector<Variable>& v) { return Sum(Div(v[0], v[1])); },
      /*positive=*/true);
  add("neg", {{4}},
      [](const std::vector<Variable>& v) { return Sum(Neg(v[0])); });
  add("add_scalar", {{4}},
      [](const std::vector<Variable>& v) { return Sum(AddScalar(v[0], 2.5f)); });
  add("mul_scalar", {{4}},
      [](const std::vector<Variable>& v) { return Sum(MulScalar(v[0], -1.5f)); });
  add("add_bias", {{3, 4}, {4}},
      [](const std::vector<Variable>& v) { return Sum(AddBias(v[0], v[1])); });
  add("scale_last_dim", {{2, 3, 4}, {2, 3}}, [](const std::vector<Variable>& v) {
    return Sum(Mul(ScaleLastDim(v[0], v[1]), ScaleLastDim(v[0], v[1])));
  });
  add("scale_rows", {{3, 4}, {3}}, [](const std::vector<Variable>& v) {
    return Sum(Mul(ScaleRows(v[0], v[1]), ScaleRows(v[0], v[1])));
  });
  add("matmul", {{3, 4}, {4, 2}},
      [](const std::vector<Variable>& v) {
        Variable y = MatMul(v[0], v[1]);
        return Sum(Mul(y, y));  // nonlinear head exposes both factors
      });
  add("matmul_nt", {{3, 4}, {2, 4}}, [](const std::vector<Variable>& v) {
    Variable y = MatMulNT(v[0], v[1]);
    return Sum(Mul(y, y));
  });
  add("sigmoid", {{2, 3}},
      [](const std::vector<Variable>& v) { return Sum(Sigmoid(v[0])); });
  add("tanh", {{2, 3}},
      [](const std::vector<Variable>& v) { return Sum(Tanh(v[0])); });
  add("exp", {{2, 3}},
      [](const std::vector<Variable>& v) { return Sum(Exp(v[0])); });
  add("log", {{2, 3}},
      [](const std::vector<Variable>& v) { return Sum(Log(v[0])); },
      /*positive=*/true);
  add("sqrt", {{2, 3}},
      [](const std::vector<Variable>& v) { return Sum(Sqrt(v[0])); },
      /*positive=*/true);
  add("mean", {{5}},
      [](const std::vector<Variable>& v) { return Mean(Mul(v[0], v[0])); });
  add("sum_time", {{2, 3, 2}}, [](const std::vector<Variable>& v) {
    Variable y = SumTime(v[0]);
    return Sum(Mul(y, y));
  });
  add("row_sum", {{3, 4}}, [](const std::vector<Variable>& v) {
    Variable y = RowSum(v[0]);
    return Sum(Mul(y, y));
  });
  add("reshape", {{2, 6}}, [](const std::vector<Variable>& v) {
    Variable y = Reshape(v[0], Shape{3, 4});
    return Sum(Mul(y, y));
  });
  add("concat_cols", {{2, 3}, {2, 2}}, [](const std::vector<Variable>& v) {
    Variable y = ConcatCols(v[0], v[1]);
    return Sum(Mul(y, y));
  });
  add("slice_cols", {{2, 5}}, [](const std::vector<Variable>& v) {
    Variable y = SliceCols(v[0], 1, 3);
    return Sum(Mul(y, y));
  });
  add("slice_rows", {{4, 3}}, [](const std::vector<Variable>& v) {
    Variable y = SliceRows(v[0], 1, 2);
    return Sum(Mul(y, y));
  });
  add("concat_rows", {{2, 3}, {1, 3}}, [](const std::vector<Variable>& v) {
    Variable y = ConcatRows({v[0], v[1]});
    return Sum(Mul(y, y));
  });
  add("slice_time", {{2, 3, 2}}, [](const std::vector<Variable>& v) {
    Variable y = SliceTimeOp(v[0], 1);
    return Sum(Mul(y, y));
  });
  add("stack_time", {{2, 2}, {2, 2}}, [](const std::vector<Variable>& v) {
    Variable y = StackTimeOp({v[0], v[1]});
    return Sum(Mul(y, y));
  });
  add("time_diff", {{2, 4}}, [](const std::vector<Variable>& v) {
    Variable y = TimeDiff(v[0]);
    return Sum(Mul(y, y));
  });
  add("softmax_rows", {{3, 4}}, [](const std::vector<Variable>& v) {
    Variable y = SoftmaxRowsOp(v[0]);
    return Sum(Mul(y, y));
  });
  add("log_softmax_rows", {{3, 4}}, [](const std::vector<Variable>& v) {
    Variable y = LogSoftmaxRowsOp(v[0]);
    return Sum(Mul(y, y));
  });
  add("pick_columns", {{3, 4}}, [](const std::vector<Variable>& v) {
    Variable y = PickColumns(v[0], {1, 3, 0});
    return Sum(Mul(y, y));
  });
  add("embedding_lookup", {{4, 3}}, [](const std::vector<Variable>& v) {
    Variable y = EmbeddingLookup(v[0], {{0, 2, 2}, {1, 3, 0}});
    return Sum(Mul(y, y));
  });
  add("abs_smooth_region", {{2, 3}},
      // |x| is non-differentiable at 0; positive inputs keep the check in
      // the smooth region.
      [](const std::vector<Variable>& v) { return Sum(Abs(v[0])); },
      /*positive=*/true);
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpGradCheck,
                         ::testing::ValuesIn(AllOpCases()),
                         [](const ::testing::TestParamInfo<OpCase>& info) {
                           return info.param.name;
                         });

// ---- Rationalization building blocks ---------------------------------------
//
// The composite functions the training losses are built from: the
// Gumbel-softmax mask surrogate, cross-entropy behind a constant input
// mask, and the sparsity/coherence regularizer terms (eq. 3). These are
// exactly the gradients the data-parallel trainer shards and reduces.

/// A [3, 5] validity mask with a padded tail (rows of different lengths).
Tensor TestValidMask() {
  Tensor valid(Shape{3, 5}, 1.0f);
  valid.at(1, 4) = 0.0f;
  valid.at(2, 3) = 0.0f;
  valid.at(2, 4) = 0.0f;
  return valid;
}

/// Selection logits with well-separated neighbor values, so that the
/// regularizer's |m_t - m_{t-1}| terms stay far from their kinks under
/// finite-difference perturbation.
Tensor TestSelectionLogits() {
  return Tensor(Shape{3, 5}, {-2.0f, 1.5f, -1.0f, 2.0f, -2.5f,   //
                              1.0f, -1.8f, 2.2f, -0.8f, 1.7f,    //
                              -1.2f, 2.5f, -2.2f, 0.9f, -1.5f});
}

TEST(RationalizationGradCheck, GumbelSoftSurrogate) {
  const Tensor valid = TestValidMask();
  Pcg32 rng(17);
  const Tensor noise = nn::DrawBinaryMaskNoise(Shape{3, 5}, rng);
  auto fn = [&](const std::vector<Variable>& v) {
    nn::GumbelMask mask =
        nn::SampleBinaryMaskWithNoise(v[0], valid, /*tau=*/0.8f,
                                      /*training=*/true, noise);
    return Sum(Mul(mask.soft, mask.soft));
  };
  GradCheckResult r = CheckGradients(fn, {TestSelectionLogits()});
  EXPECT_TRUE(r.ok) << "gumbel soft surrogate: max error " << r.max_abs_error
                    << " at " << r.worst_location;
}

TEST(RationalizationGradCheck, StraightThroughHardUsesSoftGradient) {
  // The hard mask is a step function — its true derivative is zero almost
  // everywhere. The straight-through estimator defines its backward as the
  // soft surrogate's, so the two paths must produce identical logit grads.
  const Tensor valid = TestValidMask();
  Pcg32 rng(18);
  const Tensor noise = nn::DrawBinaryMaskNoise(Shape{3, 5}, rng);
  Variable logits_hard = Variable::Param(TestSelectionLogits());
  Variable logits_soft = Variable::Param(TestSelectionLogits());
  Sum(nn::SampleBinaryMaskWithNoise(logits_hard, valid, 0.8f, true, noise)
          .hard)
      .Backward();
  Sum(nn::SampleBinaryMaskWithNoise(logits_soft, valid, 0.8f, true, noise)
          .soft)
      .Backward();
  EXPECT_TRUE(logits_hard.grad().vec() == logits_soft.grad().vec());
}

TEST(RationalizationGradCheck, MaskedCrossEntropy) {
  // Cross-entropy over logits computed from a masked input: the rationale
  // mask zeroes features, and gradients must vanish there and match finite
  // differences everywhere else.
  const std::vector<int64_t> labels = {0, 2, 1};
  Tensor feature_mask(Shape{3, 4}, 1.0f);
  feature_mask.at(0, 3) = 0.0f;
  feature_mask.at(2, 1) = 0.0f;
  feature_mask.at(2, 2) = 0.0f;
  Tensor weights(Shape{4, 3},
                 {0.4f, -0.3f, 0.2f, -0.5f, 0.6f, 0.1f,  //
                  0.3f, -0.2f, 0.5f, 0.2f, -0.4f, 0.3f});
  auto fn = [&](const std::vector<Variable>& v) {
    Variable masked = Mul(v[0], Variable::Constant(feature_mask));
    Variable logits = MatMul(masked, Variable::Constant(weights));
    return nn::CrossEntropy(logits, labels);
  };
  Pcg32 rng(19);
  GradCheckResult r = CheckGradients(fn, {Tensor::Randn({3, 4}, rng, 0.6f)});
  EXPECT_TRUE(r.ok) << "masked cross-entropy: max error " << r.max_abs_error
                    << " at " << r.worst_location;
}

TEST(RationalizationGradCheck, SparsityPenaltyTerm) {
  const Tensor valid = TestValidMask();
  core::TrainConfig config;
  config.sparsity_lambda = 1.0f;
  config.coherence_lambda = 0.0f;  // isolate the |rate - alpha| term
  auto fn = [&](const std::vector<Variable>& v) {
    Variable soft = Sigmoid(v[0]);
    nn::GumbelMask mask{soft, soft};
    return core::SparsityCoherencePenalty(mask, valid, config);
  };
  GradCheckResult r = CheckGradients(fn, {TestSelectionLogits()});
  EXPECT_TRUE(r.ok) << "sparsity term: max error " << r.max_abs_error
                    << " at " << r.worst_location;
}

TEST(RationalizationGradCheck, CoherencePenaltyTerm) {
  const Tensor valid = TestValidMask();
  core::TrainConfig config;
  config.sparsity_lambda = 0.0f;  // isolate the |m_t - m_{t-1}| term
  config.coherence_lambda = 1.0f;
  auto fn = [&](const std::vector<Variable>& v) {
    Variable soft = Sigmoid(v[0]);
    nn::GumbelMask mask{soft, soft};
    return core::SparsityCoherencePenalty(mask, valid, config);
  };
  GradCheckResult r = CheckGradients(fn, {TestSelectionLogits()});
  EXPECT_TRUE(r.ok) << "coherence term: max error " << r.max_abs_error
                    << " at " << r.worst_location;
}

TEST(RationalizationGradCheck, CombinedRegularizerAtPaperWeights) {
  const Tensor valid = TestValidMask();
  const core::TrainConfig config;  // paper defaults: lambda_1=5, lambda_2=0.5
  auto fn = [&](const std::vector<Variable>& v) {
    Variable soft = Sigmoid(v[0]);
    nn::GumbelMask mask{soft, soft};
    return core::SparsityCoherencePenalty(mask, valid, config);
  };
  GradCheckResult r = CheckGradients(fn, {TestSelectionLogits()});
  EXPECT_TRUE(r.ok) << "combined regularizer: max error " << r.max_abs_error
                    << " at " << r.worst_location;
}

// ---------------------------------------------------------------------------
// Module-level gradchecks: composite backward paths that chain many op
// closures (the same idiom as GruTest.GradCheckThroughTime). The module is
// built outside the function so only the data input is perturbed.

TEST(ModuleGradCheck, MultiHeadAttentionBackward) {
  Pcg32 rng(51);
  nn::MultiHeadAttention attention(/*dim=*/4, /*num_heads=*/2, rng);
  const Tensor valid = Tensor::Full(Shape{1, 3}, 1.0f);
  Pcg32 data_rng(52);
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Variable>& v) {
        Variable y = attention.Forward(v[0], valid);
        return Sum(Mul(y, y));
      },
      {Tensor::Randn({1, 3, 4}, data_rng, 0.5f)});
  EXPECT_TRUE(r.ok) << "attention: max error " << r.max_abs_error << " at "
                    << r.worst_location;
}

TEST(ModuleGradCheck, MultiHeadAttentionRespectsPaddingMask) {
  // With a padded tail position the gradient must still match numerically:
  // the masked softmax path (large negative scores) is part of the graph.
  Pcg32 rng(53);
  nn::MultiHeadAttention attention(/*dim=*/4, /*num_heads=*/2, rng);
  Tensor valid = Tensor::Full(Shape{1, 4}, 1.0f);
  valid.flat(3) = 0.0f;  // last position is padding
  Pcg32 data_rng(54);
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Variable>& v) {
        Variable y = attention.Forward(v[0], valid);
        return Sum(Mul(y, y));
      },
      {Tensor::Randn({1, 4, 4}, data_rng, 0.5f)});
  EXPECT_TRUE(r.ok) << "masked attention: max error " << r.max_abs_error
                    << " at " << r.worst_location;
}

TEST(ModuleGradCheck, LayerNormBackward) {
  // The fused layer-norm backward (gain/bias affine over a normalized row)
  // against central differences, through a non-linear head so the
  // normalization Jacobian's off-diagonal terms matter.
  nn::LayerNorm norm(/*dim=*/5);
  Pcg32 data_rng(55);
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Variable>& v) {
        Variable y = norm.Forward(v[0]);
        return Sum(Mul(y, Sigmoid(y)));
      },
      {Tensor::Randn({3, 5}, data_rng, 0.8f)});
  EXPECT_TRUE(r.ok) << "layer_norm: max error " << r.max_abs_error << " at "
                    << r.worst_location;
}

}  // namespace
}  // namespace ag
}  // namespace dar
