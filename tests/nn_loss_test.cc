// Tests for nn/loss.h: cross-entropy, accuracy, KL, JS, Bernoulli KL.
#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace dar {
namespace nn {
namespace {

TEST(CrossEntropyTest, MatchesManualComputation) {
  // Single example, logits (1, 2): p = softmax, CE = -log p[label].
  ag::Variable logits =
      ag::Variable::Constant(Tensor(Shape{1, 2}, {1.0f, 2.0f}));
  float z = std::exp(1.0f) + std::exp(2.0f);
  float expected = -std::log(std::exp(2.0f) / z);
  EXPECT_NEAR(CrossEntropy(logits, {1}).value().item(), expected, 1e-5f);
}

TEST(CrossEntropyTest, PerfectPredictionApproachesZero) {
  ag::Variable logits =
      ag::Variable::Constant(Tensor(Shape{1, 2}, {20.0f, -20.0f}));
  EXPECT_LT(CrossEntropy(logits, {0}).value().item(), 1e-4f);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  ag::Variable logits = ag::Variable::Constant(Tensor(Shape{3, 4}));
  EXPECT_NEAR(CrossEntropy(logits, {0, 1, 2}).value().item(), std::log(4.0f),
              1e-5f);
}

TEST(CrossEntropyTest, GradientPushesTowardLabel) {
  ag::Variable logits = ag::Variable::Param(Tensor(Shape{1, 2}));
  CrossEntropy(logits, {0}).Backward();
  EXPECT_LT(logits.grad().at(0, 0), 0.0f);  // raise label logit
  EXPECT_GT(logits.grad().at(0, 1), 0.0f);  // lower the other
}

TEST(AccuracyTest, CountsArgmaxMatches) {
  Tensor logits(Shape{3, 2}, {2.0f, 1.0f,    // pred 0
                              0.0f, 3.0f,    // pred 1
                              5.0f, -1.0f});  // pred 0
  EXPECT_NEAR(Accuracy(logits, {0, 1, 1}), 2.0f / 3.0f, 1e-6f);
}

TEST(KlDivergenceTest, ZeroWhenDistributionsMatch) {
  Tensor logits(Shape{2, 2}, {1.0f, -1.0f, 0.5f, 0.5f});
  ag::Variable q = ag::Variable::Constant(logits);
  ag::Variable p = ag::Variable::Constant(SoftmaxRows(logits));
  EXPECT_NEAR(KlDivergence(p, q).value().item(), 0.0f, 1e-5f);
}

TEST(KlDivergenceTest, PositiveWhenDifferent) {
  ag::Variable p =
      ag::Variable::Constant(Tensor(Shape{1, 2}, {0.9f, 0.1f}));
  ag::Variable q = ag::Variable::Constant(Tensor(Shape{1, 2}, {0.0f, 0.0f}));
  EXPECT_GT(KlDivergence(p, q).value().item(), 0.1f);
}

TEST(JsDivergenceTest, ZeroOnIdenticalLogits) {
  Tensor logits(Shape{2, 3}, {1, 2, 3, -1, 0, 1});
  ag::Variable a = ag::Variable::Constant(logits);
  ag::Variable b = ag::Variable::Constant(logits);
  EXPECT_NEAR(JsDivergence(a, b).value().item(), 0.0f, 1e-5f);
}

TEST(JsDivergenceTest, SymmetricAndBounded) {
  ag::Variable a =
      ag::Variable::Constant(Tensor(Shape{1, 2}, {5.0f, -5.0f}));
  ag::Variable b =
      ag::Variable::Constant(Tensor(Shape{1, 2}, {-5.0f, 5.0f}));
  float ab = JsDivergence(a, b).value().item();
  float ba = JsDivergence(b, a).value().item();
  EXPECT_NEAR(ab, ba, 1e-5f);
  EXPECT_GT(ab, 0.0f);
  EXPECT_LE(ab, std::log(2.0f) + 1e-4f);  // JS upper bound (nats)
}

TEST(BernoulliKlTest, ZeroAtPrior) {
  ag::Variable p = ag::Variable::Constant(Tensor(Shape{2, 2}, 0.3f));
  EXPECT_NEAR(BernoulliKl(p, 0.3f).value().item(), 0.0f, 1e-5f);
}

TEST(BernoulliKlTest, GrowsAwayFromPrior) {
  ag::Variable near = ag::Variable::Constant(Tensor(Shape{1, 1}, 0.35f));
  ag::Variable far = ag::Variable::Constant(Tensor(Shape{1, 1}, 0.9f));
  EXPECT_LT(BernoulliKl(near, 0.3f).value().item(),
            BernoulliKl(far, 0.3f).value().item());
}

TEST(BernoulliKlTest, GradientPullsTowardPrior) {
  ag::Variable p = ag::Variable::Param(Tensor(Shape{1, 1}, 0.8f));
  BernoulliKl(p, 0.2f).Backward();
  EXPECT_GT(p.grad().at(0, 0), 0.0f);  // decrease p toward 0.2
}

}  // namespace
}  // namespace nn
}  // namespace dar
