// Tests for eval/analysis.h: token-selection diagnostics.
#include "eval/analysis.h"

#include <gtest/gtest.h>

#include "core/rnp.h"
#include "datasets/beer.h"
#include "eval/experiment.h"

namespace dar {
namespace eval {
namespace {

const datasets::SyntheticDataset& AnalysisDataset() {
  static const datasets::SyntheticDataset& ds = *new datasets::SyntheticDataset(
      datasets::MakeBeerDataset(datasets::BeerAspect::kAroma,
                                {.train = 64, .dev = 16, .test = 32},
                                /*seed=*/71));
  return ds;
}

core::TrainConfig TinyConfig() {
  core::TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  config.batch_size = 16;
  config.dropout = 0.0f;
  return config;
}

TEST(AnalysisTest, StatsCountOccurrences) {
  const datasets::SyntheticDataset& ds = AnalysisDataset();
  auto model = MakeMethod("RNP", ds, TinyConfig());
  TokenSelectionStats stats =
      ComputeTokenSelectionStats(*model, ds.test, ds.vocab.size());
  // Occurrence counts match the raw data, independent of the model.
  std::vector<int64_t> expected(static_cast<size_t>(ds.vocab.size()), 0);
  for (const data::Example& e : ds.test) {
    for (int64_t id : e.tokens) ++expected[static_cast<size_t>(id)];
  }
  EXPECT_EQ(stats.occurrences, expected);
  // Selections are bounded by occurrences.
  for (size_t id = 0; id < expected.size(); ++id) {
    EXPECT_LE(stats.selected[id], stats.occurrences[id]);
  }
}

TEST(AnalysisTest, RateIsZeroForAbsentToken) {
  const datasets::SyntheticDataset& ds = AnalysisDataset();
  auto model = MakeMethod("RNP", ds, TinyConfig());
  TokenSelectionStats stats =
      ComputeTokenSelectionStats(*model, ds.test, ds.vocab.size());
  // <mask> never appears in generated reviews.
  EXPECT_EQ(stats.Rate(ds.vocab.IdOrUnk("<mask>")), 0.0f);
}

TEST(AnalysisTest, TokenSelectionRateBounds) {
  const datasets::SyntheticDataset& ds = AnalysisDataset();
  auto model = MakeMethod("RNP", ds, TinyConfig());
  int64_t period = ds.vocab.IdOrUnk(".");
  float rate = TokenSelectionRate(*model, ds.test, period);
  EXPECT_GE(rate, 0.0f);
  EXPECT_LE(rate, 1.0f);
}

TEST(AnalysisTest, MostSelectedTokensFormatting) {
  TokenSelectionStats stats;
  stats.occurrences = {0, 0, 10, 10, 2};
  stats.selected = {0, 0, 9, 1, 2};
  data::Vocabulary vocab;  // ids 0,1 reserved
  vocab.AddToken("often");   // id 2
  vocab.AddToken("rarely");  // id 3
  vocab.AddToken("scarce");  // id 4
  std::vector<std::string> top =
      MostSelectedTokens(stats, vocab, /*top_k=*/2, /*min_occurrences=*/5);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_NE(top[0].find("often"), std::string::npos);
  EXPECT_NE(top[0].find("90%"), std::string::npos);
  EXPECT_NE(top[1].find("rarely"), std::string::npos);
}

TEST(AnalysisTest, MinOccurrenceFilter) {
  TokenSelectionStats stats;
  stats.occurrences = {0, 0, 2};
  stats.selected = {0, 0, 2};
  data::Vocabulary vocab;
  vocab.AddToken("scarce");
  EXPECT_TRUE(MostSelectedTokens(stats, vocab, 5, /*min_occurrences=*/5)
                  .empty());
}

}  // namespace
}  // namespace eval
}  // namespace dar
