// Tests for the annotated sync layer: lock-rank deadlock detection,
// held-lock tracking, contention counters, and the obs bridge that
// publishes them. The static half of the wall (Clang TSA) is exercised by
// CI's thread-safety lane, not here — this file covers the runtime half.
#include "sync/mutex.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/sentinel.h"
#include "obs/metrics.h"
#include "obs/sync_metrics.h"

namespace dar {
namespace sync {
namespace {

/// Restores both runtime gates and the violation handler on scope exit, so
/// tests cannot leak mode into each other.
class ScopedSyncModes {
 public:
  ScopedSyncModes() = default;
  ~ScopedSyncModes() {
    SetLockRankCheck(false);
    SetContentionTracking(false);
    SetRankViolationHandler(nullptr);
  }
};

/// Captures the last violation routed through the test handler (function
/// pointers cannot capture, so the mailbox is file-static).
RankViolation g_last_violation{nullptr, 0, nullptr, 0};
std::atomic<int> g_violation_count{0};

void RecordingHandler(const RankViolation& violation) {
  g_last_violation = violation;
  g_violation_count.fetch_add(1);
}

TEST(SyncMutexTest, LockUnlockAndTryLockOffMode) {
  Mutex mu(Rank::kLeaf, "test.basic");
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());  // non-recursive
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
  EXPECT_EQ(mu.rank(), static_cast<int>(Rank::kLeaf));
  EXPECT_STREQ(mu.name(), "test.basic");
}

TEST(SyncMutexTest, HeldLockCountTracksScopesAndUnwinds) {
  ScopedSyncModes restore;
  SetLockRankCheck(true);
  EXPECT_EQ(HeldLockCount(), 0u);
  Mutex low(Rank::kRegistry, "test.low");
  Mutex mid(Rank::kBatcher, "test.mid");
  Mutex high(Rank::kLeaf, "test.high");
  {
    MutexLock l1(low);
    EXPECT_EQ(HeldLockCount(), 1u);
    {
      MutexLock l2(mid);
      EXPECT_EQ(HeldLockCount(), 2u);
      // TryLock skips the rank check but still joins the held stack.
      ASSERT_TRUE(high.TryLock());
      EXPECT_EQ(HeldLockCount(), 3u);
      high.Unlock();
      EXPECT_EQ(HeldLockCount(), 2u);
    }
    EXPECT_EQ(HeldLockCount(), 1u);
  }
  EXPECT_EQ(HeldLockCount(), 0u);
}

TEST(SyncMutexTest, AscendingRanksAreClean) {
  ScopedSyncModes restore;
  SetRankViolationHandler(&RecordingHandler);
  g_violation_count.store(0);
  SetLockRankCheck(true);
  Mutex registry(Rank::kRegistry, "test.registry");
  Mutex stats(Rank::kStats, "test.stats");
  Mutex leaf(Rank::kLeaf, "test.leaf");
  {
    MutexLock l1(registry);
    MutexLock l2(stats);
    MutexLock l3(leaf);
  }
  EXPECT_EQ(g_violation_count.load(), 0);
}

TEST(SyncMutexTest, RankInversionRoutesThroughHandler) {
  ScopedSyncModes restore;
  SetRankViolationHandler(&RecordingHandler);
  g_violation_count.store(0);
  SetLockRankCheck(true);
  Mutex high(Rank::kStats, "test.held_high");
  Mutex low(Rank::kRegistry, "test.acquired_low");
  {
    MutexLock hold(high);
    MutexLock inversion(low);  // rank decreases: the violation
  }
  ASSERT_EQ(g_violation_count.load(), 1);
  EXPECT_STREQ(g_last_violation.held_name, "test.held_high");
  EXPECT_EQ(g_last_violation.held_rank, static_cast<int>(Rank::kStats));
  EXPECT_STREQ(g_last_violation.acquiring_name, "test.acquired_low");
  EXPECT_EQ(g_last_violation.acquiring_rank,
            static_cast<int>(Rank::kRegistry));
}

TEST(SyncMutexTest, EqualRankAlsoViolates) {
  // Equal ranks are the self-deadlock / shard-vs-shard class; the checker
  // demands strictly increasing ranks.
  ScopedSyncModes restore;
  SetRankViolationHandler(&RecordingHandler);
  g_violation_count.store(0);
  SetLockRankCheck(true);
  Mutex a(Rank::kCacheShard, "test.shard");
  Mutex b(Rank::kCacheShard, "test.shard");
  {
    MutexLock hold(a);
    MutexLock nested(b);
  }
  EXPECT_EQ(g_violation_count.load(), 1);
}

TEST(SyncMutexDeathTest, DefaultHandlerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetLockRankCheck(true);
        Mutex high(Rank::kStats, "death.high");
        Mutex low(Rank::kRegistry, "death.low");
        MutexLock hold(high);
        MutexLock inversion(low);
      },
      "lock-rank violation");
}

TEST(SyncMutexTest, SentinelRecordModeFilesLockrankFinding) {
  // The wiring the dar_check self-test relies on: sentinel handler
  // installed, kRecord mode, inversion -> finding instead of abort.
  ScopedSyncModes restore;
  check::DrainSentinelFindings();
  const check::SentinelMode previous_mode = check::GetSentinelMode();
  check::SetSentinelMode(check::SentinelMode::kRecord);
  check::InstallLockRankHandler();
  SetLockRankCheck(true);
  Mutex high(Rank::kStats, "test.sentinel_high");
  Mutex low(Rank::kRegistry, "test.sentinel_low");
  {
    MutexLock hold(high);
    MutexLock inversion(low);
  }
  SetLockRankCheck(false);
  check::SetSentinelMode(previous_mode);
  bool found = false;
  for (const check::SentinelFinding& finding :
       check::DrainSentinelFindings()) {
    if (finding.op == "lockrank") {
      found = true;
      EXPECT_NE(finding.where.find("test.sentinel_low"), std::string::npos);
      EXPECT_NE(finding.where.find("test.sentinel_high"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SyncMutexTest, CondVarWaitKeepsHeldStackCoherent) {
  ScopedSyncModes restore;
  SetLockRankCheck(true);
  Mutex mu(Rank::kBatcher, "test.cv");
  CondVar cv;
  bool ready = false;  // guarded by mu
  std::thread signaler([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    // The wait released and re-took mu without disturbing the tracker.
    EXPECT_EQ(HeldLockCount(), 1u);
  }
  signaler.join();
  EXPECT_EQ(HeldLockCount(), 0u);
}

TEST(SyncMutexTest, CondVarWaitForUsTimesOut) {
  Mutex mu(Rank::kBatcher, "test.cv_timeout");
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitForUs(mu, 1000));  // nobody signals: timeout
}

TEST(SyncContentionTest, BucketLayoutMatchesObsDurationBuckets) {
  EXPECT_EQ(ContentionBucketBoundsUs(), obs::DurationBucketsUs());
}

/// Cumulative contended-acquisition count recorded for a mutex name, 0 if
/// the name has never collided.
uint64_t ContentionTotalFor(const std::string& name) {
  for (const MutexContentionStats& stats : ContentionSnapshot()) {
    if (stats.name == name) return stats.contention_total;
  }
  return 0;
}

/// Deterministically records at least one contention event on `mu`
/// (tracking must already be on): hold the lock while a second thread
/// attempts it, and retry until the snapshot shows the collision. A fixed
/// sleep is not enough on an oversubscribed host — the blocked thread may
/// not get scheduled inside any particular window — so loop on the
/// observable effect instead of on time.
void ForceOneContentionEvent(Mutex& mu) {
  const uint64_t before = ContentionTotalFor(mu.name());
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::atomic<bool> about_to_lock{false};
    std::thread blocked_thread;
    {
      MutexLock lock(mu);
      blocked_thread = std::thread([&] {
        about_to_lock.store(true, std::memory_order_release);
        MutexLock blocked(mu);
      });
      while (!about_to_lock.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      // The thread is between its flag store and the try_lock; give it a
      // beat to fail the try_lock and fall into the blocking (counted) path.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    blocked_thread.join();
    if (ContentionTotalFor(mu.name()) > before) return;
  }
}

TEST(SyncContentionTest, HammerRecordsContention) {
  ScopedSyncModes restore;
  SetContentionTracking(true);
  Mutex mu(Rank::kStats, "test.hammer");
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  constexpr int kHeldWork = 512;
  std::atomic<int64_t> shared{0};
  int rounds = 0;
  // On an oversubscribed host a whole hammer round can run serialized —
  // each thread burns its quota inside one timeslice and nothing ever
  // collides — so retry the round until the snapshot shows contention.
  for (int attempt = 0; attempt < 3 && ContentionTotalFor("test.hammer") == 0;
       ++attempt) {
    ++rounds;
    // Start barrier: without it the staggered thread spawns can let early
    // threads finish their whole quota before late ones begin, and the
    // "hammer" never actually collides.
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int i = 0; i < kIterations; ++i) {
          MutexLock lock(mu);
          // Enough held time that try_lock collisions are certain across
          // 8 simultaneous threads.
          for (int spin = 0; spin < kHeldWork; ++spin) {
            shared.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    while (ready.load() < kThreads) std::this_thread::yield();
    go.store(true, std::memory_order_release);
    for (std::thread& thread : threads) thread.join();
  }
  // Last-resort determinism: a held-lock/blocked-thread pair that loops on
  // the observable count, so the invariant checks below always have at
  // least one event to look at.
  if (ContentionTotalFor("test.hammer") == 0) ForceOneContentionEvent(mu);
  SetContentionTracking(false);
  EXPECT_EQ(shared.load(),
            int64_t{rounds} * kThreads * kIterations * kHeldWork);

  bool found = false;
  for (const MutexContentionStats& stats : ContentionSnapshot()) {
    if (stats.name != "test.hammer") continue;
    found = true;
    // Fatal, not EXPECT: the mean below divides by this count.
    ASSERT_GT(stats.contention_total, 0u);
    ASSERT_EQ(stats.bucket_counts.size(),
              ContentionBucketBoundsUs().size() + 1);
    uint64_t bucket_sum = 0;
    for (uint64_t c : stats.bucket_counts) bucket_sum += c;
    // Every contended wait lands in exactly one bucket.
    EXPECT_EQ(bucket_sum, stats.contention_total);
    EXPECT_GE(stats.wait_us_max, stats.wait_us_sum / stats.contention_total);
  }
  EXPECT_TRUE(found);
}

TEST(SyncContentionTest, PublishDeltasAreIdempotent) {
  // Force at least one counted contention event so the published series
  // exist with a known-positive value.
  {
    ScopedSyncModes restore;
    SetContentionTracking(true);
    Mutex mu(Rank::kStats, "test.publish");
    ForceOneContentionEvent(mu);
    ASSERT_GE(ContentionTotalFor("test.publish"), 1u);
  }

  obs::MetricsRegistry registry;
  obs::PublishSyncContentionMetrics(registry);
  obs::Counter& total = registry.GetCounter(
      obs::LabeledName("sync.contention_total", {{"mutex", "test.publish"}}));
  const int64_t first = total.value();
  EXPECT_GE(first, 1);

  // No contention happened in between: a second publish must be a no-op
  // (delta-based claim-once), not a re-count of the cumulative total.
  obs::PublishSyncContentionMetrics(registry);
  EXPECT_EQ(total.value(), first);

  obs::Histogram& wait = registry.GetHistogram(
      obs::LabeledName("sync.wait_us", {{"mutex", "test.publish"}}),
      ContentionBucketBoundsUs());
  EXPECT_EQ(wait.count(), first);

  // The exposition carries both series under the mutex label.
  const std::string text = registry.ExportPrometheus();
  EXPECT_NE(text.find("sync_contention_total{mutex=\"test.publish\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sync_wait_us_count{mutex=\"test.publish\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace sync
}  // namespace dar
