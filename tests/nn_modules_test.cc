// Tests for nn: Module registry, Linear, Embedding, Dropout, LayerNorm,
// pooling, and Gumbel mask sampling.
#include <cmath>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/gumbel.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace nn {
namespace {

TEST(ModuleTest, ParameterRegistryAndNaming) {
  Pcg32 rng(1);
  Linear linear(3, 2, rng);
  std::vector<NamedParameter> params = linear.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "w");
  EXPECT_EQ(params[1].name, "b");
  EXPECT_EQ(linear.NumParameters(), 3 * 2 + 2);
}

TEST(ModuleTest, CopyParametersFrom) {
  Pcg32 rng(2);
  Linear a(3, 2, rng), b(3, 2, rng);
  EXPECT_FALSE(a.weight().value().AllClose(b.weight().value()));
  b.CopyParametersFrom(a);
  EXPECT_TRUE(a.weight().value().AllClose(b.weight().value()));
}

TEST(ModuleTest, SetRequiresGradFreezes) {
  Pcg32 rng(3);
  Linear linear(2, 2, rng);
  linear.SetRequiresGrad(false);
  for (const NamedParameter& p : linear.Parameters()) {
    EXPECT_FALSE(p.variable.requires_grad());
  }
}

TEST(ModuleTest, TrainingModePropagates) {
  Pcg32 rng(4);
  Dropout dropout(0.5f, rng);
  EXPECT_TRUE(dropout.training());
  dropout.SetTraining(false);
  EXPECT_FALSE(dropout.training());
}

TEST(LinearTest, ForwardMatchesManual) {
  Pcg32 rng(5);
  Linear linear(2, 2, rng);
  ag::Variable x = ag::Variable::Constant(Tensor(Shape{1, 2}, {1.0f, 2.0f}));
  Tensor out = linear.Forward(x).value();
  const Tensor& w = linear.weight().value();
  EXPECT_NEAR(out.at(0, 0), 1.0f * w.at(0, 0) + 2.0f * w.at(1, 0), 1e-5f);
}

TEST(LinearTest, GradientsFlowToWeights) {
  Pcg32 rng(6);
  Linear linear(3, 2, rng);
  ag::Variable x = ag::Variable::Constant(Tensor::Ones({4, 3}).Reshape({4, 3}));
  ag::Variable loss = ag::Sum(linear.Forward(x));
  loss.Backward();
  EXPECT_TRUE(linear.weight().has_grad());
  EXPECT_TRUE(linear.bias().has_grad());
  // d(sum(xW+b))/db = batch size per output.
  EXPECT_NEAR(linear.bias().grad().at(0), 4.0f, 1e-5f);
}

TEST(EmbeddingTest, LookupReturnsRows) {
  Tensor table(Shape{3, 2}, {0, 0, 10, 11, 20, 21});
  Embedding embedding(table, /*trainable=*/false);
  Tensor out = embedding.Forward({{2, 1}}).value();
  EXPECT_EQ(out.at(0, 0, 0), 20.0f);
  EXPECT_EQ(out.at(0, 1, 1), 11.0f);
}

TEST(EmbeddingTest, FrozenTableGetsNoGrad) {
  Tensor table(Shape{3, 2}, 1.0f);
  Embedding embedding(table, /*trainable=*/false);
  ag::Variable out = embedding.Forward({{0, 1}});
  EXPECT_FALSE(out.requires_grad());
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Pcg32 rng(7);
  Dropout dropout(0.5f, rng);
  dropout.SetTraining(false);
  Tensor x = Tensor::Ones({100});
  Tensor out = dropout.Forward(ag::Variable::Constant(x)).value();
  EXPECT_TRUE(out.AllClose(x));
}

TEST(DropoutTest, TrainModeZeroesAndRescales) {
  Pcg32 rng(8);
  Dropout dropout(0.5f, rng);
  Tensor x = Tensor::Ones({4000});
  Tensor out = dropout.Forward(ag::Variable::Constant(x)).value();
  int64_t zeros = 0;
  double sum = 0.0;
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (out.at(i) == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(out.at(i), 2.0f, 1e-5f);  // 1/(1-p)
    }
    sum += out.at(i);
  }
  EXPECT_NEAR(static_cast<double>(zeros) / out.numel(), 0.5, 0.05);
  EXPECT_NEAR(sum / out.numel(), 1.0, 0.1);  // expectation preserved
}

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm norm(4);
  Tensor x(Shape{2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor out = norm.Forward(ag::Variable::Constant(x)).value();
  for (int64_t i = 0; i < 2; ++i) {
    float mean = 0.0f, var = 0.0f;
    for (int64_t j = 0; j < 4; ++j) mean += out.at(i, j);
    mean /= 4.0f;
    for (int64_t j = 0; j < 4; ++j) {
      var += (out.at(i, j) - mean) * (out.at(i, j) - mean);
    }
    var /= 4.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(LayerNormTest, GradCheck) {
  LayerNorm norm(3);
  Pcg32 rng(9);
  ag::GradCheckResult r = ag::CheckGradients(
      [&norm](const std::vector<ag::Variable>& v) {
        ag::Variable y = norm.Forward(v[0]);
        return ag::Sum(ag::Mul(y, y));
      },
      {Tensor::Randn({2, 3}, rng)});
  EXPECT_TRUE(r.ok) << "max error " << r.max_abs_error << " at "
                    << r.worst_location;
}

TEST(PoolingTest, MaskedMaxPoolIgnoresPadding) {
  Tensor h(Shape{1, 3, 2}, {1, 1, 5, 5, 99, 99});
  Tensor valid(Shape{1, 3}, {1, 1, 0});  // last step padded
  ag::Variable out = MaskedMaxPool(ag::Variable::Constant(h), valid);
  EXPECT_EQ(out.value().at(0, 0), 5.0f);
}

TEST(PoolingTest, MaskedMaxPoolGradientRoutesToArgmax) {
  Tensor h(Shape{1, 2, 1}, {1.0f, 3.0f});
  Tensor valid(Shape{1, 2}, 1.0f);
  ag::Variable hv = ag::Variable::Param(h);
  ag::Sum(MaskedMaxPool(hv, valid)).Backward();
  EXPECT_EQ(hv.grad().at(0, 0, 0), 0.0f);
  EXPECT_EQ(hv.grad().at(0, 1, 0), 1.0f);
}

TEST(PoolingTest, MaskedMeanPoolAveragesValidOnly) {
  Tensor h(Shape{1, 3, 1}, {2.0f, 4.0f, 100.0f});
  Tensor valid(Shape{1, 3}, {1, 1, 0});
  ag::Variable out = MaskedMeanPool(ag::Variable::Constant(h), valid);
  EXPECT_NEAR(out.value().at(0, 0), 3.0f, 1e-5f);
}

TEST(PoolingTest, NoValidPositionsAborts) {
  Tensor h(Shape{1, 2, 1});
  Tensor valid(Shape{1, 2});  // all zero
  EXPECT_DEATH(MaskedMaxPool(ag::Variable::Constant(h), valid), "valid");
}

TEST(GumbelTest, EvalModeIsDeterministicThreshold) {
  Pcg32 rng(10);
  Tensor logits(Shape{1, 4}, {-2.0f, -0.1f, 0.1f, 3.0f});
  Tensor valid(Shape{1, 4}, 1.0f);
  GumbelMask mask = SampleBinaryMask(ag::Variable::Constant(logits), valid,
                                     1.0f, /*training=*/false, rng);
  EXPECT_EQ(mask.hard.value().at(0, 0), 0.0f);
  EXPECT_EQ(mask.hard.value().at(0, 1), 0.0f);
  EXPECT_EQ(mask.hard.value().at(0, 2), 1.0f);
  EXPECT_EQ(mask.hard.value().at(0, 3), 1.0f);
}

TEST(GumbelTest, PaddedPositionsNeverSelected) {
  Pcg32 rng(11);
  Tensor logits(Shape{2, 3}, 10.0f);  // strongly "select everything"
  Tensor valid(Shape{2, 3}, {1, 1, 0, 1, 0, 0});
  for (int trial = 0; trial < 20; ++trial) {
    GumbelMask mask = SampleBinaryMask(ag::Variable::Constant(logits), valid,
                                       1.0f, /*training=*/true, rng);
    EXPECT_EQ(mask.hard.value().at(0, 2), 0.0f);
    EXPECT_EQ(mask.hard.value().at(1, 1), 0.0f);
    EXPECT_EQ(mask.hard.value().at(1, 2), 0.0f);
  }
}

TEST(GumbelTest, TrainingSamplesAreStochastic) {
  Pcg32 rng(12);
  Tensor logits(Shape{1, 1}, 0.0f);  // 50/50
  Tensor valid(Shape{1, 1}, 1.0f);
  int selected = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    GumbelMask mask = SampleBinaryMask(ag::Variable::Constant(logits), valid,
                                       1.0f, /*training=*/true, rng);
    if (mask.hard.value().at(0, 0) > 0.5f) ++selected;
  }
  EXPECT_NEAR(static_cast<double>(selected) / kTrials, 0.5, 0.1);
}

TEST(GumbelTest, HigherLogitSelectsMoreOften) {
  Pcg32 rng(13);
  Tensor logits(Shape{1, 2}, {2.0f, -2.0f});
  Tensor valid(Shape{1, 2}, 1.0f);
  int first = 0, second = 0;
  for (int trial = 0; trial < 300; ++trial) {
    GumbelMask mask = SampleBinaryMask(ag::Variable::Constant(logits), valid,
                                       1.0f, /*training=*/true, rng);
    if (mask.hard.value().at(0, 0) > 0.5f) ++first;
    if (mask.hard.value().at(0, 1) > 0.5f) ++second;
  }
  EXPECT_GT(first, second + 100);
}

TEST(GumbelTest, GradientFlowsThroughHardMask) {
  Pcg32 rng(14);
  Tensor logits(Shape{1, 2}, {1.0f, -1.0f});
  Tensor valid(Shape{1, 2}, 1.0f);
  ag::Variable lv = ag::Variable::Param(logits);
  GumbelMask mask = SampleBinaryMask(lv, valid, 1.0f, /*training=*/false, rng);
  ag::Sum(mask.hard).Backward();
  EXPECT_TRUE(lv.has_grad());
  EXPECT_GT(lv.grad().at(0, 0), 0.0f);  // sigmoid' > 0
}

}  // namespace
}  // namespace nn
}  // namespace dar
