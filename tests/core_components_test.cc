// Tests for the core building blocks: Generator, Predictor, regularizer,
// encoders.
#include <cmath>

#include <gtest/gtest.h>

#include "core/encoder.h"
#include "core/generator.h"
#include "core/predictor.h"
#include "core/regularizer.h"
#include "data/batch.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace core {
namespace {

TrainConfig SmallConfig() {
  TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  config.dropout = 0.0f;
  return config;
}

Tensor SmallEmbeddings(int64_t vocab, int64_t dim) {
  Pcg32 rng(1);
  return Tensor::Randn({vocab, dim}, rng, 0.3f);
}

data::Batch SmallBatch() {
  std::vector<data::Example> examples = {
      {{2, 3, 4, 5}, 1, {0, 1, 1, 0}},
      {{6, 7, 8}, 0, {1, 0, 0}},
  };
  return data::Batch::FromExamples(examples, 0, 2, /*pad_id=*/0);
}

TEST(GeneratorTest, SelectionLogitsShape) {
  TrainConfig config = SmallConfig();
  Pcg32 rng(2);
  Generator generator(SmallEmbeddings(10, 8), config, rng);
  data::Batch batch = SmallBatch();
  ag::Variable logits = generator.SelectionLogits(batch);
  EXPECT_EQ(logits.value().shape(), (Shape{2, 4}));
}

TEST(GeneratorTest, DeterministicMaskThresholdsAtZero) {
  TrainConfig config = SmallConfig();
  Pcg32 rng(3);
  Generator generator(SmallEmbeddings(10, 8), config, rng);
  generator.SetTraining(false);
  data::Batch batch = SmallBatch();
  Tensor mask = generator.DeterministicMask(batch);
  Tensor logits = generator.SelectionLogits(batch).value();
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      bool expected = logits.at(i, j) > 0.0f && batch.valid.at(i, j) > 0.0f;
      EXPECT_EQ(mask.at(i, j), expected ? 1.0f : 0.0f);
    }
  }
  // Padded tail of example 1 never selected.
  EXPECT_EQ(mask.at(1, 3), 0.0f);
}

TEST(GeneratorTest, SampleMaskGradsReachEncoder) {
  TrainConfig config = SmallConfig();
  Pcg32 rng(4);
  Generator generator(SmallEmbeddings(10, 8), config, rng);
  data::Batch batch = SmallBatch();
  Pcg32 sample_rng(5);
  nn::GumbelMask mask = generator.SampleMask(batch, sample_rng);
  ag::Sum(mask.hard).Backward();
  int64_t with_grad = 0;
  for (const nn::NamedParameter& p : generator.Parameters()) {
    if (p.variable.has_grad() && Norm2(p.variable.grad()) > 0.0f) ++with_grad;
  }
  EXPECT_GT(with_grad, 0);
}

TEST(PredictorTest, ForwardShapes) {
  TrainConfig config = SmallConfig();
  Pcg32 rng(6);
  Predictor predictor(SmallEmbeddings(10, 8), config, rng);
  data::Batch batch = SmallBatch();
  ag::Variable logits = predictor.ForwardFullText(batch);
  EXPECT_EQ(logits.value().shape(), (Shape{2, 2}));
}

TEST(PredictorTest, ZeroMaskErasesInputDifferences) {
  TrainConfig config = SmallConfig();
  Pcg32 rng(7);
  Predictor predictor(SmallEmbeddings(10, 8), config, rng);
  predictor.SetTraining(false);
  // Two batches with different tokens but all-zero masks must agree:
  // certification of exclusion at the input level.
  std::vector<data::Example> e1 = {{{2, 3, 4}, 0, {}}};
  std::vector<data::Example> e2 = {{{7, 8, 9}, 0, {}}};
  data::Batch b1 = data::Batch::FromExamples(e1, 0, 1, 0);
  data::Batch b2 = data::Batch::FromExamples(e2, 0, 1, 0);
  Tensor zero_mask(Shape{1, 3});
  Tensor out1 = predictor.ForwardWithConstMask(b1, zero_mask).value();
  Tensor out2 = predictor.ForwardWithConstMask(b2, zero_mask).value();
  EXPECT_TRUE(out1.AllClose(out2, 1e-5f));
}

TEST(PredictorTest, MaskGatesTokenInfluence) {
  TrainConfig config = SmallConfig();
  Pcg32 rng(8);
  Predictor predictor(SmallEmbeddings(10, 8), config, rng);
  predictor.SetTraining(false);
  std::vector<data::Example> e1 = {{{2, 3, 4}, 0, {}}};
  std::vector<data::Example> e2 = {{{2, 9, 4}, 0, {}}};  // differs at pos 1
  data::Batch b1 = data::Batch::FromExamples(e1, 0, 1, 0);
  data::Batch b2 = data::Batch::FromExamples(e2, 0, 1, 0);
  Tensor mask_excluding(Shape{1, 3}, {1, 0, 1});
  EXPECT_TRUE(predictor.ForwardWithConstMask(b1, mask_excluding)
                  .value()
                  .AllClose(
                      predictor.ForwardWithConstMask(b2, mask_excluding).value(),
                      1e-5f));
  Tensor mask_including(Shape{1, 3}, {1, 1, 1});
  EXPECT_FALSE(
      predictor.ForwardWithConstMask(b1, mask_including)
          .value()
          .AllClose(predictor.ForwardWithConstMask(b2, mask_including).value(),
                    1e-6f));
}

TEST(PredictorTest, ForwardMixedSwapsContext) {
  TrainConfig config = SmallConfig();
  Pcg32 rng(9);
  Predictor predictor(SmallEmbeddings(10, 8), config, rng);
  predictor.SetTraining(false);
  data::Batch batch = SmallBatch();
  // Full mask: mixing has no effect (context fully owned).
  ag::Variable full = ag::Variable::Constant(batch.valid);
  Tensor mixed_full =
      predictor.ForwardMixed(batch, batch.tokens, full).value();
  Tensor plain = predictor.ForwardFullText(batch).value();
  EXPECT_TRUE(mixed_full.AllClose(plain, 1e-5f));
}

TEST(RegularizerTest, ZeroAtExactTargetConstantMask) {
  TrainConfig config = SmallConfig();
  config.sparsity_target = 0.5f;
  config.sparsity_lambda = 1.0f;
  config.coherence_lambda = 0.0f;
  Tensor valid(Shape{1, 4}, 1.0f);
  // Exactly half selected.
  Tensor hard(Shape{1, 4}, {1, 1, 0, 0});
  nn::GumbelMask mask{ag::Variable::Constant(hard),
                      ag::Variable::Constant(hard)};
  EXPECT_NEAR(SparsityCoherencePenalty(mask, valid, config).value().item(),
              0.0f, 1e-6f);
}

TEST(RegularizerTest, SparsityPenaltyIsAbsoluteDeviation) {
  TrainConfig config = SmallConfig();
  config.sparsity_target = 0.25f;
  config.sparsity_lambda = 2.0f;
  config.coherence_lambda = 0.0f;
  Tensor valid(Shape{1, 4}, 1.0f);
  Tensor hard(Shape{1, 4}, {1, 1, 1, 1});  // rate 1.0, deviation 0.75
  nn::GumbelMask mask{ag::Variable::Constant(hard),
                      ag::Variable::Constant(hard)};
  EXPECT_NEAR(SparsityCoherencePenalty(mask, valid, config).value().item(),
              2.0f * 0.75f, 1e-5f);
}

TEST(RegularizerTest, CoherenceCountsTransitions) {
  TrainConfig config = SmallConfig();
  config.sparsity_target = 0.5f;
  config.sparsity_lambda = 0.0f;
  config.coherence_lambda = 3.0f;
  Tensor valid(Shape{1, 4}, 1.0f);
  Tensor alternating(Shape{1, 4}, {1, 0, 1, 0});  // 3 transitions / 3 pairs
  nn::GumbelMask mask{ag::Variable::Constant(alternating),
                      ag::Variable::Constant(alternating)};
  EXPECT_NEAR(SparsityCoherencePenalty(mask, valid, config).value().item(),
              3.0f * 1.0f, 1e-5f);

  Tensor block(Shape{1, 4}, {1, 1, 0, 0});  // 1 transition / 3 pairs
  nn::GumbelMask mask2{ag::Variable::Constant(block),
                       ag::Variable::Constant(block)};
  EXPECT_NEAR(SparsityCoherencePenalty(mask2, valid, config).value().item(),
              3.0f / 3.0f, 1e-5f);
}

TEST(RegularizerTest, PerExampleNormalizationIgnoresPadding) {
  TrainConfig config = SmallConfig();
  config.sparsity_target = 0.5f;
  config.sparsity_lambda = 1.0f;
  config.coherence_lambda = 0.0f;
  // Example with length 2 (2 padded): selecting 1 of 2 valid = on target.
  Tensor valid(Shape{1, 4}, {1, 1, 0, 0});
  Tensor hard(Shape{1, 4}, {1, 0, 0, 0});
  nn::GumbelMask mask{ag::Variable::Constant(hard),
                      ag::Variable::Constant(hard)};
  EXPECT_NEAR(SparsityCoherencePenalty(mask, valid, config).value().item(),
              0.0f, 1e-6f);
}

TEST(PredictorTest, SupportsMoreThanTwoClasses) {
  TrainConfig config = SmallConfig();
  config.num_classes = 4;
  Pcg32 rng(12);
  Predictor predictor(SmallEmbeddings(10, 8), config, rng);
  std::vector<data::Example> examples = {{{2, 3, 4}, 3, {}},
                                         {{5, 6, 7}, 0, {}}};
  data::Batch batch = data::Batch::FromExamples(examples, 0, 2, 0);
  ag::Variable logits = predictor.ForwardFullText(batch);
  EXPECT_EQ(logits.value().shape(), (Shape{2, 4}));
  // Cross-entropy against 4-way labels is finite and differentiable.
  ag::Variable logp = ag::LogSoftmaxRowsOp(logits);
  ag::Variable loss = ag::Neg(ag::Mean(ag::PickColumns(logp, batch.labels)));
  EXPECT_TRUE(std::isfinite(loss.value().item()));
  loss.Backward();
}

TEST(EncoderTest, FactorySelectsKind) {
  TrainConfig config = SmallConfig();
  Pcg32 rng(10);
  auto gru = MakeEncoder(config, rng);
  EXPECT_EQ(gru->output_dim(), 2 * config.hidden_dim);
  config.encoder = EncoderKind::kTransformer;
  config.transformer.dim = 8;
  config.transformer.num_heads = 2;
  auto transformer = MakeEncoder(config, rng);
  EXPECT_EQ(transformer->output_dim(), 8);
}

TEST(EncoderTest, TransformerEncoderPluggableIntoPredictor) {
  TrainConfig config = SmallConfig();
  config.encoder = EncoderKind::kTransformer;
  config.transformer.dim = 8;
  config.transformer.num_heads = 2;
  config.transformer.ffn_dim = 16;
  config.transformer.num_layers = 1;
  Pcg32 rng(11);
  Predictor predictor(SmallEmbeddings(10, 8), config, rng);
  data::Batch batch = SmallBatch();
  Tensor logits = predictor.ForwardFullText(batch).value();
  EXPECT_EQ(logits.shape(), (Shape{2, 2}));
  for (int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(logits.flat(i)));
  }
}

}  // namespace
}  // namespace core
}  // namespace dar
