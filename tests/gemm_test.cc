// Certification of the blocked GEMM kernel layer (tensor/gemm.h).
//
// The contract under test is BIT-exactness, not closeness: every path
// through Gemm() — small-shape loops, packed single-threaded, packed
// multi-threaded at any worker count, AVX2 and scalar builds — must equal
// the scalar std::fma witness GemmReference() float-for-float. The serving
// cache differential harness and the parallel-trainer equivalence test both
// lean on this, so the comparisons here use exact equality throughout.
#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "nn/gru.h"
#include "tensor/random.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace gemm {
namespace {

struct Dims {
  int64_t m, n, k;
};

/// Fills a buffer with a deterministic, sign-mixed, non-uniform pattern
/// (exercises rounding in every fma step; bit-compares would pass trivially
/// on zeros or powers of two).
std::vector<float> Fill(int64_t count, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> v(static_cast<size_t>(count));
  for (float& x : v) x = (rng.NextFloat() * 3.0f - 1.5f) * 1.1f + 1e-3f;
  return v;
}

/// Runs one (trans, m, n, k) case through Gemm and GemmReference and
/// bit-compares. A/B buffer sizes depend on the variant: op(A) is m x k and
/// op(B) is k x n, but storage is the pre-transpose shape.
void ExpectBitExact(Trans trans, int64_t m, int64_t n, int64_t k) {
  std::vector<float> a = Fill(m * k, 1000 + m * 7 + k);
  std::vector<float> b = Fill(k * n, 2000 + k * 7 + n);
  std::vector<float> c_fast(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> c_ref(static_cast<size_t>(m * n), 0.0f);
  Gemm(trans, m, n, k, a.data(), b.data(), c_fast.data());
  GemmReference(trans, m, n, k, a.data(), b.data(), c_ref.data());
  ASSERT_EQ(std::memcmp(c_fast.data(), c_ref.data(),
                        static_cast<size_t>(m * n) * sizeof(float)),
            0)
      << "trans=" << static_cast<int>(trans) << " m=" << m << " n=" << n
      << " k=" << k;
}

const Trans kAllTrans[] = {Trans::kNN, Trans::kTA, Trans::kTB};

// ---- Shape sweep -----------------------------------------------------------

TEST(GemmTest, SmallOddEdgeSweep) {
  // Odd primes and near-tile sizes around the MR=6 / NR=16 register tile so
  // every edge-tail combination (mr < MR, nr < NR, both) gets hit.
  const int64_t dims[] = {1, 2, 3, 5, 6, 7, 8, 13, 15, 16, 17};
  for (Trans t : kAllTrans) {
    for (int64_t m : dims) {
      for (int64_t n : dims) {
        for (int64_t k : dims) {
          ExpectBitExact(t, m, n, k);
        }
      }
    }
  }
}

TEST(GemmTest, PackedShapesAllVariants) {
  // All past the packed threshold; chosen to cover clean tiles, edge tails
  // in every dimension, k crossing the KC=256 panel boundary, and multiple
  // row chunks (m > 96).
  const Dims shapes[] = {
      {48, 48, 48},     // single chunk, edge tails in m (48 = 8 * MR) and n
      {96, 64, 32},     // exactly one row chunk, clean n tiles
      {97, 65, 33},     // +1 on everything: full edge-tail path
      {128, 128, 128},  // two row chunks
      {200, 112, 300},  // k > KC: partial C stored and resumed across panels
      {61, 77, 259},    // odd everything with a k panel tail
  };
  for (Trans t : kAllTrans) {
    for (const Dims& d : shapes) ExpectBitExact(t, d.m, d.n, d.k);
  }
}

TEST(GemmTest, TallSkinnyAndWideShapes) {
  // The encoder's real shapes: tall activations against skinny weights
  // (forward), and their transposed counterparts (backward).
  const Dims shapes[] = {
      {640, 9, 32},   // B*T x E projection, tiny n
      {9, 640, 32},   // its TA mirror
      {512, 72, 24},  // flat GRU input projection shape class
      {3, 500, 400},  // wide-n with almost no m
  };
  for (Trans t : kAllTrans) {
    for (const Dims& d : shapes) ExpectBitExact(t, d.m, d.n, d.k);
  }
}

TEST(GemmTest, PackedThresholdBoundary) {
  // Certify both sides of the small/packed dispatch boundary with the same
  // harness, so a future threshold retune cannot silently change results.
  int64_t m = 64, n = 64;
  int64_t k_below = 20, k_above = 32;  // 64*64*24 = 98304 is the boundary
  ASSERT_FALSE(UsesPackedPath(m, n, k_below));
  ASSERT_TRUE(UsesPackedPath(m, n, k_above));
  for (Trans t : kAllTrans) {
    ExpectBitExact(t, m, n, k_below);
    ExpectBitExact(t, m, n, k_above);
  }
}

TEST(GemmTest, DegenerateDimsLeaveCZero) {
  std::vector<float> a(8, 1.0f), b(8, 1.0f), c(4, 0.0f);
  Gemm(Trans::kNN, 2, 2, 0, a.data(), b.data(), c.data());
  Gemm(Trans::kNN, 0, 2, 2, a.data(), b.data(), c.data());
  for (float x : c) EXPECT_EQ(x, 0.0f);
}

// ---- Worker-count invariance ----------------------------------------------

/// RAII guard: restores the inline kernel path however the test exits.
struct KernelThreadsGuard {
  ~KernelThreadsGuard() { SetKernelThreads(1); }
};

TEST(GemmTest, WorkerCountInvariance) {
  KernelThreadsGuard guard;
  // Big enough that the threaded path actually engages: multiple row chunks
  // (m / 96 = 4) and 2*m*n*k well past the 1 MFLOP fan-out floor.
  const int64_t m = 384, n = 96, k = 80;
  std::vector<float> a = Fill(m * k, 42);
  std::vector<float> b = Fill(k * n, 43);

  SetKernelThreads(1);
  ASSERT_EQ(KernelThreads(), 1);
  std::vector<float> c1(static_cast<size_t>(m * n), 0.0f);
  Gemm(Trans::kNN, m, n, k, a.data(), b.data(), c1.data());

  // Also pin the single-threaded result to the scalar witness, so the
  // invariance below is anchored to the reference, not just to itself.
  std::vector<float> c_ref(static_cast<size_t>(m * n), 0.0f);
  GemmReference(Trans::kNN, m, n, k, a.data(), b.data(), c_ref.data());
  ASSERT_EQ(std::memcmp(c1.data(), c_ref.data(), c1.size() * sizeof(float)), 0);

  for (int workers : {2, 4, 8}) {
    SetKernelThreads(workers);
    ASSERT_EQ(KernelThreads(), workers);
    for (Trans t : kAllTrans) {
      std::vector<float> cn(static_cast<size_t>(m * n), 0.0f);
      std::vector<float> cs(static_cast<size_t>(m * n), 0.0f);
      Gemm(t, m, n, k, a.data(), b.data(), cn.data());
      SetKernelThreads(1);
      Gemm(t, m, n, k, a.data(), b.data(), cs.data());
      SetKernelThreads(workers);
      ASSERT_EQ(std::memcmp(cn.data(), cs.data(), cn.size() * sizeof(float)),
                0)
          << "threads=" << workers << " trans=" << static_cast<int>(t);
    }
  }
}

TEST(GemmTest, RepeatedThreadedCallsAreStable) {
  KernelThreadsGuard guard;
  SetKernelThreads(4);
  const int64_t m = 200, n = 64, k = 64;
  std::vector<float> a = Fill(m * k, 7), b = Fill(k * n, 8);
  std::vector<float> first(static_cast<size_t>(m * n), 0.0f);
  Gemm(Trans::kNN, m, n, k, a.data(), b.data(), first.data());
  // Re-running must reproduce the same bits every time: no dependence on
  // scheduling, pool state, or thread-local buffer history.
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
    Gemm(Trans::kNN, m, n, k, a.data(), b.data(), c.data());
    ASSERT_EQ(std::memcmp(first.data(), c.data(), c.size() * sizeof(float)),
              0)
        << "rep=" << rep;
  }
}

TEST(GemmTest, SetKernelThreadsClampsAndReports) {
  KernelThreadsGuard guard;
  SetKernelThreads(0);
  EXPECT_EQ(KernelThreads(), 1);
  SetKernelThreads(-3);
  EXPECT_EQ(KernelThreads(), 1);
  SetKernelThreads(3);
  EXPECT_EQ(KernelThreads(), 3);
}

// ---- Tensor-level wrappers -------------------------------------------------

TEST(GemmTest, TensorMatMulVariantsMatchReference) {
  // The tensor_ops wrappers must route through the same kernel: compare
  // MatMul / MatMulTA / MatMulTB against GemmReference on a packed-size
  // shape (this also certifies the autograd backward inputs, which are
  // nothing but TA/TB products of forward-sized operands).
  Pcg32 rng(77);
  const int64_t m = 112, n = 48, k = 64;
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor at = Tensor::Randn({k, m}, rng);
  Tensor bt = Tensor::Randn({n, k}, rng);

  Tensor c_nn = MatMul(a, b);
  Tensor c_ta = MatMulTA(at, b);
  Tensor c_tb = MatMulTB(a, bt);

  Tensor r_nn(Shape{m, n}), r_ta(Shape{m, n}), r_tb(Shape{m, n});
  GemmReference(Trans::kNN, m, n, k, a.data(), b.data(), r_nn.data());
  GemmReference(Trans::kTA, m, n, k, at.data(), b.data(), r_ta.data());
  GemmReference(Trans::kTB, m, n, k, a.data(), bt.data(), r_tb.data());

  const size_t bytes = static_cast<size_t>(m * n) * sizeof(float);
  EXPECT_EQ(std::memcmp(c_nn.data(), r_nn.data(), bytes), 0);
  EXPECT_EQ(std::memcmp(c_ta.data(), r_ta.data(), bytes), 0);
  EXPECT_EQ(std::memcmp(c_tb.data(), r_tb.data(), bytes), 0);
}

// ---- Gradchecks through the kernel -----------------------------------------

TEST(GemmTest, MatMulGradCheckSmallPath) {
  Pcg32 rng(5);
  ag::GradCheckResult r = ag::CheckGradients(
      [](const std::vector<ag::Variable>& v) {
        return ag::Sum(ag::MatMul(v[0], v[1]));
      },
      {Tensor::Randn({3, 5}, rng, 0.5f), Tensor::Randn({5, 4}, rng, 0.5f)});
  EXPECT_TRUE(r.ok) << "max error " << r.max_abs_error << " at "
                    << r.worst_location;
}

TEST(GemmTest, MatMulGradCheckPackedPath) {
  // 48^3 routes to the packed kernel (48*48*48 > 96*1024): the backward's
  // TA/TB products then exercise the packed path too.
  ASSERT_TRUE(UsesPackedPath(48, 48, 48));
  Pcg32 rng(6);
  ag::GradCheckResult r = ag::CheckGradients(
      [](const std::vector<ag::Variable>& v) {
        return ag::Sum(ag::MatMul(v[0], v[1]));
      },
      {Tensor::Randn({48, 48}, rng, 0.1f), Tensor::Randn({48, 48}, rng, 0.1f)});
  EXPECT_TRUE(r.ok) << "max error " << r.max_abs_error << " at "
                    << r.worst_location;
}

TEST(GemmTest, GruForwardGradCheckThroughKernel) {
  // End-to-end: the restructured GRU (flat projection + fused cell, both
  // feeding the kernel layer) must stay gradcheck-clean, masked included.
  Pcg32 rng(9);
  nn::Gru gru(3, 4, rng);
  Pcg32 data_rng(10);
  Tensor valid(Shape{2, 3}, {1, 1, 0, 1, 1, 1});
  ag::GradCheckResult r = ag::CheckGradients(
      [&gru, &valid](const std::vector<ag::Variable>& v) {
        ag::Variable y = gru.Forward(v[0], &valid);
        return ag::Sum(ag::Mul(y, y));
      },
      {Tensor::Randn({2, 3, 3}, data_rng, 0.5f)});
  EXPECT_TRUE(r.ok) << "max error " << r.max_abs_error << " at "
                    << r.worst_location;
}

TEST(GemmTest, GruForwardGradCheckThreaded) {
  // Same graph with the kernel pool active: gradients must not change by a
  // single bit relative to gradcheck's tolerance (the forward values are
  // worker-count-invariant, so this certifies backward wiring under
  // threading rather than numerics).
  KernelThreadsGuard guard;
  SetKernelThreads(4);
  Pcg32 rng(11);
  nn::Gru gru(2, 3, rng);
  Pcg32 data_rng(12);
  ag::GradCheckResult r = ag::CheckGradients(
      [&gru](const std::vector<ag::Variable>& v) {
        ag::Variable y = gru.Forward(v[0]);
        return ag::Sum(ag::Mul(y, y));
      },
      {Tensor::Randn({1, 4, 2}, data_rng, 0.5f)});
  EXPECT_TRUE(r.ok) << "max error " << r.max_abs_error << " at "
                    << r.worst_location;
}

}  // namespace
}  // namespace gemm
}  // namespace dar
