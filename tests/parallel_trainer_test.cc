// Gradient-equivalence harness for data-parallel training
// (core/parallel_trainer.h): the sharded reduce must compute the sequential
// loop's gradient — bit-exactly for one shard, and up to float summation
// order for many — and training must be a pure function of the shard
// schedule, never of the worker count.
#include "core/parallel_trainer.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/rnp.h"
#include "core/trainer.h"
#include "data/dataloader.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "nn/gumbel.h"

namespace dar {
namespace core {
namespace {

const datasets::SyntheticDataset& ParallelDataset() {
  static const datasets::SyntheticDataset& ds = *new datasets::SyntheticDataset(
      datasets::MakeBeerDataset(datasets::BeerAspect::kAroma,
                                {.train = 96, .dev = 32, .test = 32},
                                /*seed=*/81));
  return ds;
}

TrainConfig TinyConfig() {
  TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  config.batch_size = 16;
  config.epochs = 3;
  config.dropout = 0.0f;
  config.lr = 3e-3f;
  return config;
}

/// Exact (bitwise) equality of every trainable parameter of two models.
void ExpectParamsBitEqual(RationalizerBase& a, RationalizerBase& b) {
  std::vector<ag::Variable> pa = a.TrainableParameters();
  std::vector<ag::Variable> pb = b.TrainableParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].value().shape(), pb[i].value().shape());
    EXPECT_TRUE(pa[i].value().vec() == pb[i].value().vec())
        << "parameter " << i << " diverged";
  }
}

void ExpectRunsBitEqual(const TrainRun& a, const TrainRun& b) {
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].train_loss, b.epochs[e].train_loss) << "epoch " << e;
    EXPECT_EQ(a.epochs[e].dev_acc, b.epochs[e].dev_acc) << "epoch " << e;
  }
  EXPECT_EQ(a.best_epoch, b.best_epoch);
  EXPECT_EQ(a.best_dev_acc, b.best_dev_acc);
}

TEST(ShardRowSetsTest, ContiguousPartitionsEveryRowOnce) {
  const auto sets = ShardRowSets(10, 3, ShardPolicy::kContiguous);
  ASSERT_EQ(sets.size(), 3u);
  // Sizes differ by at most one, remainder goes to the leading shards.
  EXPECT_EQ(sets[0].size(), 4u);
  EXPECT_EQ(sets[1].size(), 3u);
  EXPECT_EQ(sets[2].size(), 3u);
  std::vector<int64_t> seen;
  for (const auto& s : sets) {
    for (int64_t r : s) seen.push_back(r);
  }
  ASSERT_EQ(seen.size(), 10u);
  for (int64_t r = 0; r < 10; ++r) EXPECT_EQ(seen[r], r);  // in order
}

TEST(ShardRowSetsTest, StridedInterleavesRows) {
  const auto sets = ShardRowSets(7, 3, ShardPolicy::kStrided);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0], (std::vector<int64_t>{0, 3, 6}));
  EXPECT_EQ(sets[1], (std::vector<int64_t>{1, 4}));
  EXPECT_EQ(sets[2], (std::vector<int64_t>{2, 5}));
}

TEST(ShardRowSetsTest, ShardCountClampedToBatchSize) {
  const auto sets = ShardRowSets(3, 8, ShardPolicy::kContiguous);
  ASSERT_EQ(sets.size(), 3u);  // no empty shards
  for (const auto& s : sets) EXPECT_EQ(s.size(), 1u);
}

// The num_shards == 1 parallel path consumes exactly the sequential RNG
// sequence and runs the same float program, so it must reproduce the
// sequential Fit() bit for bit: every epoch stat and every parameter.
TEST(ParallelFitTest, SingleShardMatchesSequentialBitExactRnp) {
  auto sequential = eval::MakeMethod("RNP", ParallelDataset(), TinyConfig());
  auto parallel = eval::MakeMethod("RNP", ParallelDataset(), TinyConfig());
  TrainRun run_seq = Fit(*sequential, ParallelDataset());
  TrainRun run_par = Fit(*parallel, ParallelDataset(),
                         ParallelTrainConfig{.num_workers = 1, .num_shards = 1});
  ExpectRunsBitEqual(run_seq, run_par);
  ExpectParamsBitEqual(*sequential, *parallel);
}

// Same certificate for DAR: its Prepare() pretrains and freezes the
// discriminator, so this also covers frozen-module mirroring into replicas.
TEST(ParallelFitTest, SingleShardMatchesSequentialBitExactDar) {
  auto sequential = eval::MakeMethod("DAR", ParallelDataset(), TinyConfig());
  auto parallel = eval::MakeMethod("DAR", ParallelDataset(), TinyConfig());
  TrainRun run_seq = Fit(*sequential, ParallelDataset());
  TrainRun run_par = Fit(*parallel, ParallelDataset(),
                         ParallelTrainConfig{.num_workers = 2, .num_shards = 1});
  ExpectRunsBitEqual(run_seq, run_par);
  ExpectParamsBitEqual(*sequential, *parallel);
}

// One reduce cycle over four shards must reproduce the full-batch gradient
// of the per-example-mean loss (tight tolerance; only the summation order
// differs).
TEST(ParallelFitTest, ShardedReduceMatchesFullBatchGradients) {
  auto reference = eval::MakeMethod("RNP", ParallelDataset(), TinyConfig());
  auto sharded = eval::MakeMethod("RNP", ParallelDataset(), TinyConfig());
  reference->SetTraining(true);
  sharded->SetTraining(true);

  data::DataLoader loader(ParallelDataset().train, 32, /*shuffle=*/false);
  const data::Batch batch = loader.Sequential().front();

  // Both models were constructed identically, so their RNGs are in the same
  // state: the noise drawn here for the reference equals the noise the
  // trainer draws from the sharded master.
  Tensor noise = nn::DrawBinaryMaskNoise(
      Shape{batch.batch_size(), batch.max_len()}, reference->rng());
  std::vector<ag::Variable> ref_params = reference->TrainableParameters();
  for (ag::Variable& p : ref_params) p.ZeroGrad();
  reference->set_injected_mask_noise(&noise);
  ag::Variable loss = reference->TrainLoss(batch);
  reference->set_injected_mask_noise(nullptr);
  loss.Backward();

  DataParallelTrainer trainer(
      *sharded, ParallelTrainConfig{.num_workers = 2, .num_shards = 4});
  const float reduced_loss = trainer.ReduceGradientsForBatch(batch);

  EXPECT_NEAR(reduced_loss, loss.value().item(), 1e-5f);
  std::vector<ag::Variable> sharded_params = sharded->TrainableParameters();
  ASSERT_EQ(ref_params.size(), sharded_params.size());
  for (size_t i = 0; i < ref_params.size(); ++i) {
    ASSERT_TRUE(ref_params[i].has_grad());
    ASSERT_TRUE(sharded_params[i].has_grad());
    EXPECT_TRUE(
        sharded_params[i].grad().AllClose(ref_params[i].grad(), 1e-4f))
        << "gradient " << i << " diverged";
  }
}

// With deterministic_reduce, the shard count — not the worker count —
// defines the summation tree: 1 worker and 4 workers over the same 4-shard
// schedule must train to bit-identical models.
TEST(ParallelFitTest, WorkerCountDoesNotChangeResults) {
  auto one_worker = eval::MakeMethod("RNP", ParallelDataset(), TinyConfig());
  auto four_workers = eval::MakeMethod("RNP", ParallelDataset(), TinyConfig());
  TrainRun run_one =
      Fit(*one_worker, ParallelDataset(),
          ParallelTrainConfig{.num_workers = 1, .num_shards = 4,
                              .deterministic_reduce = true});
  TrainRun run_four =
      Fit(*four_workers, ParallelDataset(),
          ParallelTrainConfig{.num_workers = 4, .num_shards = 4,
                              .deterministic_reduce = true});
  ExpectRunsBitEqual(run_one, run_four);
  ExpectParamsBitEqual(*one_worker, *four_workers);
}

TEST(ParallelFitTest, StridedPolicyTrainsComparably) {
  auto model = eval::MakeMethod("RNP", ParallelDataset(), TinyConfig());
  TrainRun run =
      Fit(*model, ParallelDataset(),
          ParallelTrainConfig{.num_workers = 2, .num_shards = 4,
                              .shard_policy = ShardPolicy::kStrided});
  ASSERT_EQ(run.epochs.size(), 3u);
  EXPECT_GT(run.best_dev_acc, 0.5f);
}

// Stress: 8 workers, shards of one or two examples, many optimizer steps.
// After every reduce + step + broadcast, every replica must hold exactly
// the master's parameters (FNV-1a checksum over every module).
TEST(ParallelFitStressTest, ReplicasStayInSyncUnderManySmallShards) {
  TrainConfig config = TinyConfig();
  config.batch_size = 12;
  config.epochs = 5;
  auto model = eval::MakeMethod("RNP", ParallelDataset(), config);
  DataParallelTrainer trainer(
      *model, ParallelTrainConfig{.num_workers = 8, .num_shards = 8});
  int64_t checks = 0;
  trainer.set_post_step_hook([&](int64_t /*step*/) {
    const uint64_t master = trainer.MasterChecksum();
    for (int64_t r = 0; r < trainer.num_replicas(); ++r) {
      ASSERT_EQ(master, trainer.ReplicaChecksum(r)) << "replica " << r;
    }
    ++checks;
  });
  TrainRun run = trainer.Fit(ParallelDataset());
  // 96 train examples / batch 12 = 8 batches per epoch, 5 epochs.
  EXPECT_EQ(checks, 40);
  ASSERT_EQ(run.epochs.size(), 5u);
}

// The nondeterministic (completion-order) reduce must still compute the
// same gradient up to summation order: train both ways and expect close —
// not necessarily identical — trajectories on the first epoch's loss.
TEST(ParallelFitTest, NondeterministicReduceStaysClose) {
  auto det = eval::MakeMethod("RNP", ParallelDataset(), TinyConfig());
  auto nondet = eval::MakeMethod("RNP", ParallelDataset(), TinyConfig());
  TrainRun run_det =
      Fit(*det, ParallelDataset(),
          ParallelTrainConfig{.num_workers = 4, .num_shards = 4,
                              .deterministic_reduce = true});
  TrainRun run_nondet =
      Fit(*nondet, ParallelDataset(),
          ParallelTrainConfig{.num_workers = 4, .num_shards = 4,
                              .deterministic_reduce = false});
  ASSERT_EQ(run_det.epochs.size(), run_nondet.epochs.size());
  EXPECT_NEAR(run_det.epochs.front().train_loss,
              run_nondet.epochs.front().train_loss, 1e-3f);
}

TEST(ParallelPredictorTest, SingleShardFullTextMatchesSequential) {
  const datasets::SyntheticDataset& ds = ParallelDataset();
  TrainConfig config = TinyConfig();
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  Pcg32 init_a(7), init_b(7);
  Predictor sequential(embeddings, config, init_a);
  Predictor parallel(embeddings, config, init_b);

  Pcg32 train_a(9), train_b(9);
  const float acc_seq = FitFullTextPredictor(sequential, ds, /*epochs=*/3,
                                             /*batch_size=*/16, /*lr=*/3e-3f,
                                             train_a);
  const float acc_par = FitFullTextPredictorParallel(
      parallel, embeddings, config, ds, /*epochs=*/3, /*batch_size=*/16,
      /*lr=*/3e-3f, train_b,
      ParallelTrainConfig{.num_workers = 1, .num_shards = 1});
  EXPECT_EQ(acc_seq, acc_par);
  const auto pa = sequential.Parameters();
  const auto pb = parallel.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].variable.value().vec() == pb[i].variable.value().vec())
        << "parameter " << pa[i].name << " diverged";
  }
}

TEST(ParallelPredictorTest, ShardedFullTextPretrainingStillLearns) {
  const datasets::SyntheticDataset& ds = ParallelDataset();
  TrainConfig config = TinyConfig();
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  Pcg32 init(7);
  Predictor predictor(embeddings, config, init);
  Pcg32 train_rng(9);
  const float acc = FitFullTextPredictorParallel(
      predictor, embeddings, config, ds, /*epochs=*/10, /*batch_size=*/16,
      /*lr=*/3e-3f, train_rng,
      ParallelTrainConfig{.num_workers = 4, .num_shards = 4});
  EXPECT_GT(acc, 0.7f);
}

}  // namespace
}  // namespace core
}  // namespace dar
