// Seeded thread-safety-analysis violation — this file is DELIBERATELY
// wrong and is excluded from every build target and from the clean `lint`
// run (see the LINT_SOURCES filter in the top-level CMakeLists.txt).
//
// CI's thread-safety lane compiles it with
//   clang++ -std=c++20 -Isrc -fsyntax-only -Wthread-safety
//           -Werror=thread-safety tests/lint_corpus/guarded_by_violation.cc
// and FAILS unless the compile fails: a negative self-test that the
// DAR_GUARDED_BY annotations in src/sync/annotations.h really expand to
// Clang TSA attributes and that the analysis is armed. If a refactor ever
// turned the macros into no-ops under Clang, this file would start
// compiling cleanly and the lane would catch it.
//
// Never "fix" this defect; it is the test fixture.
#include <cstdint>

#include "sync/mutex.h"

namespace lint_corpus {

class Counter {
 public:
  // Seeded defect: reads and writes `value_` without holding `mu_`.
  // Clang TSA: error: reading/writing variable 'value_' requires holding
  // mutex 'mu_' [-Werror,-Wthread-safety-analysis].
  void UnguardedIncrement() { ++value_; }
  int64_t UnguardedRead() const { return value_; }

 private:
  mutable dar::sync::Mutex mu_{dar::sync::Rank::kLeaf, "lint_corpus.counter"};
  int64_t value_ DAR_GUARDED_BY(mu_) = 0;
};

inline int64_t Touch() {
  Counter counter;
  counter.UnguardedIncrement();
  return counter.UnguardedRead();
}

}  // namespace lint_corpus
