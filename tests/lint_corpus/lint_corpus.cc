// Seeded-defect corpus for the clang-tidy lint wall — this file is
// DELIBERATELY buggy and is excluded from the clean `lint` target (see the
// LINT_SOURCES filter in the top-level CMakeLists.txt).
//
// CI's lint lane runs clang-tidy over this file directly and FAILS unless
// it exits non-zero: a self-test that the .clang-tidy configuration still
// has its teeth. Each block below seeds one defect from a check family the
// wall claims to enforce; if a future .clang-tidy edit silently disables
// one of those families, the corpus run goes green-on-buggy-code and the
// CI step catches it.
//
// Never "fix" these defects; they are the test fixture.
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace lint_corpus {

// bugprone-use-after-move: `moved` is read after std::move handed its
// guts to `sink`.
std::size_t UseAfterMove() {
  std::string moved = "the pour is a hazy golden";
  std::string sink = std::move(moved);
  return moved.size() + sink.size();  // seeded defect
}

// concurrency-mt-unsafe: std::rand() shares hidden state across threads.
int MtUnsafeRand() {
  return std::rand();  // seeded defect
}

// performance-unnecessary-copy-initialization: `copy` could bind by
// const reference; the wall flags the gratuitous deep copy.
std::size_t GratuitousCopy(const std::vector<std::string>& rows) {
  std::size_t total = 0;
  for (const auto row : rows) {  // seeded defect: copies every row
    total += row.size();
  }
  return total;
}

}  // namespace lint_corpus
