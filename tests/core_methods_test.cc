// Tests for the rationalization methods: RNP, DAR, and all baselines.
// Verifies loss construction, gradient routing (especially DAR's frozen
// discriminator), parameter accounting (Table IV), and method-specific
// selection behaviour.
#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/baselines/vib.h"
#include "core/dar.h"
#include "core/rnp.h"
#include "data/dataloader.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace core {
namespace {

const datasets::SyntheticDataset& TinyDataset() {
  static const datasets::SyntheticDataset& ds = *new datasets::SyntheticDataset(
      datasets::MakeBeerDataset(datasets::BeerAspect::kAroma,
                                {.train = 64, .dev = 16, .test = 16},
                                /*seed=*/5));
  return ds;
}

TrainConfig TinyConfig() {
  TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  config.batch_size = 8;
  config.epochs = 1;
  config.pretrain_epochs = 1;
  config.dropout = 0.0f;
  return config;
}

data::Batch FirstBatch() {
  data::DataLoader loader(TinyDataset().train, 8, /*shuffle=*/false);
  return loader.Sequential()[0];
}

class MethodCase : public ::testing::TestWithParam<std::string> {};

TEST_P(MethodCase, TrainLossIsFiniteScalar) {
  auto model = eval::MakeMethod(GetParam(), TinyDataset(), TinyConfig());
  model->Prepare(TinyDataset());
  model->SetTraining(true);
  ag::Variable loss = model->TrainLoss(FirstBatch());
  EXPECT_EQ(loss.value().numel(), 1);
  EXPECT_TRUE(std::isfinite(loss.value().item()));
  EXPECT_GT(loss.value().item(), 0.0f);
}

TEST_P(MethodCase, BackwardReachesGeneratorAndPredictor) {
  auto model = eval::MakeMethod(GetParam(), TinyDataset(), TinyConfig());
  model->Prepare(TinyDataset());
  model->SetTraining(true);
  ag::Variable loss = model->TrainLoss(FirstBatch());
  loss.Backward();
  int64_t gen_grads = 0;
  for (const nn::NamedParameter& p : model->generator().Parameters()) {
    if (p.variable.has_grad() && Norm2(p.variable.grad()) > 0.0f) ++gen_grads;
  }
  EXPECT_GT(gen_grads, 0) << GetParam() << ": generator got no gradient";
  int64_t pred_grads = 0;
  for (const nn::NamedParameter& p : model->predictor().Parameters()) {
    if (p.variable.has_grad() && Norm2(p.variable.grad()) > 0.0f) ++pred_grads;
  }
  EXPECT_GT(pred_grads, 0) << GetParam() << ": predictor got no gradient";
}

TEST_P(MethodCase, EvalMaskIsBinaryAndRespectsValidity) {
  auto model = eval::MakeMethod(GetParam(), TinyDataset(), TinyConfig());
  data::Batch batch = FirstBatch();
  Tensor mask = model->EvalMask(batch);
  EXPECT_EQ(mask.shape(), batch.valid.shape());
  for (int64_t i = 0; i < mask.numel(); ++i) {
    EXPECT_TRUE(mask.flat(i) == 0.0f || mask.flat(i) == 1.0f);
    EXPECT_LE(mask.flat(i), batch.valid.flat(i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodCase,
                         ::testing::Values("RNP", "DAR", "DAR-cotrained",
                                           "DMR", "A2R", "Inter_RAT", "CAR",
                                           "3PLAYER", "VIB", "SPECTRA"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-' || c == '_') c = '0';
                           }
                           return name;
                         });

TEST(TableIvTest, ModuleCounts) {
  // Table IV: RNP 1gen+1pred; DAR/A2R/DMR-like methods add predictors.
  auto rnp = eval::MakeMethod("RNP", TinyDataset(), TinyConfig());
  auto dar = eval::MakeMethod("DAR", TinyDataset(), TinyConfig());
  auto dmr = eval::MakeMethod("DMR", TinyDataset(), TinyConfig());
  auto a2r = eval::MakeMethod("A2R", TinyDataset(), TinyConfig());
  auto car = eval::MakeMethod("CAR", TinyDataset(), TinyConfig());
  EXPECT_EQ(rnp->NumModules(), 2);
  EXPECT_EQ(dar->NumModules(), 3);
  EXPECT_EQ(dmr->NumModules(), 3);
  EXPECT_EQ(a2r->NumModules(), 3);
  EXPECT_EQ(car->NumModules(), 3);
}

TEST(TableIvTest, ParameterMultiples) {
  auto rnp = eval::MakeMethod("RNP", TinyDataset(), TinyConfig());
  auto dar = eval::MakeMethod("DAR", TinyDataset(), TinyConfig());
  // DAR adds exactly one predictor's worth of parameters (3x vs 2x in the
  // paper's generator==predictor-size accounting; here: 1.5x total).
  double ratio = static_cast<double>(dar->TotalParameters()) /
                 static_cast<double>(rnp->TotalParameters());
  EXPECT_NEAR(ratio, 1.5, 0.1);
}

TEST(DarTest, PrepareTrainsAndFreezesDiscriminator) {
  TrainConfig config = TinyConfig();
  config.pretrain_epochs = 6;
  config.lr = 5e-3f;
  Tensor embeddings = eval::BuildEmbeddings(TinyDataset(), config);
  DarModel dar(embeddings, config);
  dar.Prepare(TinyDataset());
  EXPECT_GT(dar.discriminator_dev_accuracy(), 0.55f);
  for (const nn::NamedParameter& p : dar.discriminator().Parameters()) {
    EXPECT_FALSE(p.variable.requires_grad()) << p.name;
  }
}

TEST(DarTest, FrozenDiscriminatorGetsNoGradient) {
  Tensor embeddings = eval::BuildEmbeddings(TinyDataset(), TinyConfig());
  DarModel dar(embeddings, TinyConfig());
  dar.Prepare(TinyDataset());
  dar.SetTraining(true);
  ag::Variable loss = dar.TrainLoss(FirstBatch());
  loss.Backward();
  for (const nn::NamedParameter& p : dar.discriminator().Parameters()) {
    // Stale pretraining gradients were cleared at freeze time; the game's
    // backward pass must not add any.
    if (p.variable.has_grad()) {
      EXPECT_EQ(Norm2(p.variable.grad()), 0.0f) << p.name;
    }
  }
}

TEST(DarTest, DiscriminatorValuesUnchangedByFit) {
  Tensor embeddings = eval::BuildEmbeddings(TinyDataset(), TinyConfig());
  DarModel dar(embeddings, TinyConfig());
  TrainRun run = Fit(dar, TinyDataset());
  EXPECT_EQ(static_cast<int64_t>(run.epochs.size()), TinyConfig().epochs);
  // Re-train the same discriminator architecture from the same seed: the
  // frozen module must still equal its post-Prepare state. Verified by
  // checking no optimizer state touched it: TrainableParameters excludes it.
  for (const ag::Variable& p : dar.TrainableParameters()) {
    for (const nn::NamedParameter& d : dar.discriminator().Parameters()) {
      EXPECT_NE(p.node().get(), d.variable.node().get());
    }
  }
}

TEST(DarTest, DiscriminatorLossTermAddsToRnpCore) {
  // With aux_weight 0 the DAR loss reduces to the RNP core on the same
  // sample stream.
  TrainConfig config = TinyConfig();
  Tensor embeddings = eval::BuildEmbeddings(TinyDataset(), config);
  config.aux_weight = 0.0f;
  DarModel dar_zero(embeddings, config);
  dar_zero.Prepare(TinyDataset());
  config.aux_weight = 1.0f;
  DarModel dar_one(embeddings, config);
  dar_one.Prepare(TinyDataset());
  data::Batch batch = FirstBatch();
  dar_zero.SetTraining(false);  // deterministic masks for comparability
  dar_one.SetTraining(false);
  float loss_zero = dar_zero.TrainLoss(batch).value().item();
  float loss_one = dar_one.TrainLoss(batch).value().item();
  EXPECT_GT(loss_one, loss_zero);
}

TEST(VibSpectraTest, EvalMaskMatchesBudget) {
  TrainConfig config = TinyConfig();
  config.sparsity_target = 0.2f;
  for (const char* name : {"VIB", "SPECTRA"}) {
    auto model = eval::MakeMethod(name, TinyDataset(), config);
    data::Batch batch = FirstBatch();
    Tensor mask = model->EvalMask(batch);
    for (int64_t i = 0; i < batch.batch_size(); ++i) {
      float len = 0.0f, selected = 0.0f;
      for (int64_t j = 0; j < batch.max_len(); ++j) {
        len += batch.valid.at(i, j);
        selected += mask.at(i, j);
      }
      int64_t expected = std::max<int64_t>(
          1, static_cast<int64_t>(0.2f * len + 0.5f));
      EXPECT_EQ(static_cast<int64_t>(selected), expected) << name;
    }
  }
}

TEST(BudgetTopKTest, SelectsHighestScores) {
  Tensor scores(Shape{1, 5}, {0.1f, 0.9f, 0.5f, 0.8f, 0.2f});
  Tensor valid(Shape{1, 5}, 1.0f);
  Tensor mask = BudgetTopKMask(scores, valid, 0.4f);  // k = 2
  EXPECT_EQ(mask.at(0, 1), 1.0f);
  EXPECT_EQ(mask.at(0, 3), 1.0f);
  EXPECT_EQ(SumAll(mask), 2.0f);
}

TEST(BudgetTopKTest, NeverSelectsPadding) {
  Tensor scores(Shape{1, 4}, {0.1f, 0.2f, 9.0f, 9.0f});
  Tensor valid(Shape{1, 4}, {1, 1, 0, 0});
  Tensor mask = BudgetTopKMask(scores, valid, 0.5f);
  EXPECT_EQ(mask.at(0, 2), 0.0f);
  EXPECT_EQ(mask.at(0, 3), 0.0f);
  EXPECT_EQ(SumAll(mask), 1.0f);
}

TEST(MakeMethodTest, UnknownNameAborts) {
  EXPECT_DEATH(eval::MakeMethod("NOPE", TinyDataset(), TinyConfig()),
               "unknown method");
}

}  // namespace
}  // namespace core
}  // namespace dar
