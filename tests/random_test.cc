// Tests for tensor/random.h (Pcg32).
#include "tensor/random.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace dar {
namespace {

TEST(Pcg32Test, DeterministicFromSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Pcg32Test, DifferentStreamsDiffer) {
  Pcg32 a(1, 1), b(1, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Pcg32Test, FloatInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Pcg32Test, UniformRange) {
  Pcg32 rng(8);
  for (int i = 0; i < 1000; ++i) {
    float f = rng.Uniform(-2.0f, 3.0f);
    EXPECT_GE(f, -2.0f);
    EXPECT_LT(f, 3.0f);
  }
}

TEST(Pcg32Test, NormalMoments) {
  Pcg32 rng(9);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    float x = rng.Normal();
    sum += x;
    sumsq += static_cast<double>(x) * x;
  }
  double mean = sum / kN;
  double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Pcg32Test, NormalWithParams) {
  Pcg32 rng(10);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.Normal(5.0f, 0.5f);
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
}

TEST(Pcg32Test, BelowIsInRangeAndCoversAll) {
  Pcg32 rng(11);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint32_t v = rng.Below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Pcg32Test, BelowOneAlwaysZero) {
  Pcg32 rng(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Pcg32Test, BernoulliFrequency) {
  Pcg32 rng(13);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(0.3f)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Pcg32Test, GumbelMoments) {
  // Gumbel(0,1) mean is the Euler–Mascheroni constant (~0.5772).
  Pcg32 rng(14);
  double sum = 0.0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) sum += rng.Gumbel();
  EXPECT_NEAR(sum / kN, 0.5772, 0.05);
}

TEST(Pcg32Test, SplitProducesIndependentStream) {
  Pcg32 rng(15);
  Pcg32 child = rng.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (rng.NextU32() == child.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace dar
