// Tests for core/trainer.h: the Fit loop, pretraining helpers, snapshots.
#include "core/trainer.h"

#include <gtest/gtest.h>

#include "core/rnp.h"
#include "data/dataloader.h"
#include "nn/loss.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace core {
namespace {

const datasets::SyntheticDataset& TrainerDataset() {
  static const datasets::SyntheticDataset& ds = *new datasets::SyntheticDataset(
      datasets::MakeBeerDataset(datasets::BeerAspect::kAroma,
                                {.train = 96, .dev = 32, .test = 32},
                                /*seed=*/81));
  return ds;
}

TrainConfig TinyConfig() {
  TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  config.batch_size = 16;
  config.epochs = 3;
  config.dropout = 0.0f;
  config.lr = 3e-3f;
  return config;
}

TEST(FitTest, RunsRequestedEpochs) {
  auto model = eval::MakeMethod("RNP", TrainerDataset(), TinyConfig());
  TrainRun run = Fit(*model, TrainerDataset());
  EXPECT_EQ(run.epochs.size(), 3u);
  EXPECT_GE(run.best_epoch, 0);
  EXPECT_LT(run.best_epoch, 3);
}

TEST(FitTest, BestDevAccIsMaximum) {
  auto model = eval::MakeMethod("RNP", TrainerDataset(), TinyConfig());
  TrainRun run = Fit(*model, TrainerDataset());
  for (const EpochStats& stats : run.epochs) {
    EXPECT_LE(stats.dev_acc, run.best_dev_acc + 1e-6f);
  }
}

TEST(FitTest, LossDecreasesOverTraining) {
  TrainConfig config = TinyConfig();
  config.epochs = 6;
  auto model = eval::MakeMethod("RNP", TrainerDataset(), config);
  TrainRun run = Fit(*model, TrainerDataset());
  EXPECT_LT(run.epochs.back().train_loss, run.epochs.front().train_loss);
}

TEST(FitTest, LeavesModelInEvalMode) {
  auto model = eval::MakeMethod("RNP", TrainerDataset(), TinyConfig());
  Fit(*model, TrainerDataset());
  EXPECT_FALSE(model->generator().training());
  EXPECT_FALSE(model->predictor().training());
}

TEST(FitTest, ParametersActuallyChange) {
  auto model = eval::MakeMethod("RNP", TrainerDataset(), TinyConfig());
  std::vector<Tensor> before;
  for (const ag::Variable& p : model->TrainableParameters()) {
    before.push_back(p.value());
  }
  Fit(*model, TrainerDataset());
  bool any_changed = false;
  std::vector<ag::Variable> params = model->TrainableParameters();
  for (size_t i = 0; i < params.size(); ++i) {
    if (!params[i].value().AllClose(before[i], 1e-7f)) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

TEST(FitPredictorTest, FullTextPretrainingImprovesAccuracy) {
  const datasets::SyntheticDataset& ds = TrainerDataset();
  TrainConfig config = TinyConfig();
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  Pcg32 rng(1);
  Predictor predictor(embeddings, config, rng);

  // Baseline: untrained accuracy (should be ~chance on a balanced set).
  data::DataLoader loader(ds.dev, 16, /*shuffle=*/false);
  predictor.SetTraining(false);
  int64_t correct = 0, total = 0;
  for (const data::Batch& batch : loader.Sequential()) {
    Tensor logits = predictor.ForwardFullText(batch).value();
    std::vector<int64_t> preds = ArgMaxRows(logits);
    for (size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
    total += batch.batch_size();
  }
  float untrained = static_cast<float>(correct) / static_cast<float>(total);

  Pcg32 train_rng(2);
  float trained = FitFullTextPredictor(predictor, ds, /*epochs=*/6,
                                       /*batch_size=*/16, /*lr=*/3e-3f,
                                       train_rng);
  EXPECT_GT(trained, untrained);
  EXPECT_GT(trained, 0.7f);
}

TEST(EvaluateRationaleAccuracyTest, BoundedAndDeterministic) {
  auto model = eval::MakeMethod("RNP", TrainerDataset(), TinyConfig());
  float a1 = EvaluateRationaleAccuracy(*model, TrainerDataset().dev, 16);
  float a2 = EvaluateRationaleAccuracy(*model, TrainerDataset().dev, 16);
  EXPECT_GE(a1, 0.0f);
  EXPECT_LE(a1, 1.0f);
  EXPECT_EQ(a1, a2);  // eval path is deterministic
}

/// A deliberately defective model: its training loss classifies the full
/// text and never consults the generator, so every generator parameter is
/// orphaned from the loss graph — exactly the class of silent wiring bug
/// audit_first_step exists to catch on step 0.
class PredictorOnlyModel : public RnpModel {
 public:
  using RnpModel::RnpModel;

  ag::Variable TrainLoss(const data::Batch& batch) override {
    return nn::CrossEntropy(predictor().ForwardFullText(batch), batch.labels);
  }
};

TEST(AuditFirstStepTest, CleanModelTrainsNormally) {
  TrainConfig config = TinyConfig();
  config.epochs = 1;
  config.pretrain_epochs = 0;
  config.audit_first_step = true;
  auto model = eval::MakeMethod("RNP", TrainerDataset(), config);
  TrainRun run = Fit(*model, TrainerDataset());
  EXPECT_EQ(run.epochs.size(), 1u);
}

TEST(AuditFirstStepDeathTest, SeededDetachedParametersAbortOnStepZero) {
  TrainConfig config = TinyConfig();
  config.epochs = 1;
  config.pretrain_epochs = 0;
  config.audit_first_step = true;
  PredictorOnlyModel model(
      eval::BuildEmbeddings(TrainerDataset(), config), config);
  EXPECT_DEATH(Fit(model, TrainerDataset()), "audit_first_step");
}

TEST(AuditFirstStepDeathTest, DefectSurvivesSilentlyWithAuditOff) {
  // The control: without the audit the defective model trains "fine" —
  // which is why the first-step audit is worth its one-batch cost.
  TrainConfig config = TinyConfig();
  config.epochs = 1;
  config.pretrain_epochs = 0;
  config.audit_first_step = false;
  PredictorOnlyModel model(
      eval::BuildEmbeddings(TrainerDataset(), config), config);
  TrainRun run = Fit(model, TrainerDataset());
  EXPECT_EQ(run.epochs.size(), 1u);
}

TEST(NamedTrainableParametersTest, CoversEveryTrainableParameter) {
  auto model = eval::MakeMethod("RNP", TrainerDataset(), TinyConfig());
  std::vector<nn::NamedParameter> named = model->NamedTrainableParameters();
  std::vector<ag::Variable> params = model->TrainableParameters();
  ASSERT_EQ(named.size(), params.size());
  for (size_t i = 0; i < named.size(); ++i) {
    EXPECT_FALSE(named[i].name.empty());
    // Positional correspondence with the optimizer's parameter list.
    EXPECT_EQ(named[i].variable.node().get(), params[i].node().get());
  }
}

}  // namespace
}  // namespace core
}  // namespace dar
