// Tests for request tracing (src/obs/ trace_context + recorder, and its
// integration through net::Router and serve::MicroBatcher): traceparent
// parser conformance against a malformed corpus, span-tree collection and
// batch adoption, histogram exemplars and their OpenMetrics exposition,
// flight-recorder wraparound + concurrent writers (the TSan lane runs this
// binary), the tail sampler, the /debug routes end-to-end, bit-identical
// response bodies with tracing on vs off, and the sentinel-trap ring dump
// (death test).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/sentinel.h"
#include "core/rnp.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "net/client.h"
#include "net/http.h"
#include "net/routes.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "serve/registry.h"
#include "serve/session.h"

namespace dar {
namespace {

// ---------------------------------------------------------------------------
// TraceContext / traceparent
// ---------------------------------------------------------------------------

TEST(TraceContextTest, MintedContextsAreValidAndDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    obs::TraceContext ctx = obs::MakeTraceContext();
    EXPECT_TRUE(ctx.valid());
    EXPECT_NE(ctx.span_id, 0u);
    EXPECT_EQ(ctx.flags, 0x01);
    seen.insert(obs::TraceIdHex(ctx));
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(TraceContextTest, FormatParseRoundTrip) {
  obs::TraceContext ctx = obs::MakeTraceContext();
  std::string header = obs::FormatTraceparent(ctx);
  EXPECT_EQ(header.size(), 55u);
  obs::TraceContext parsed;
  ASSERT_TRUE(obs::ParseTraceparent(header, &parsed));
  EXPECT_EQ(parsed.trace_id_hi, ctx.trace_id_hi);
  EXPECT_EQ(parsed.trace_id_lo, ctx.trace_id_lo);
  EXPECT_EQ(parsed.span_id, ctx.span_id);
  EXPECT_EQ(parsed.flags, ctx.flags);
}

TEST(TraceContextTest, ParsesW3cExample) {
  obs::TraceContext ctx;
  ASSERT_TRUE(obs::ParseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", &ctx));
  EXPECT_EQ(ctx.trace_id_hi, 0x0af7651916cd43ddULL);
  EXPECT_EQ(ctx.trace_id_lo, 0x8448eb211c80319cULL);
  EXPECT_EQ(ctx.span_id, 0xb7ad6b7169203331ULL);
  EXPECT_EQ(ctx.flags, 0x01);
  EXPECT_EQ(obs::TraceIdHex(ctx), "0af7651916cd43dd8448eb211c80319c");
}

TEST(TraceContextTest, UnknownVersionForwardCompat) {
  // A future version may append "-extra" fields; the 00-layout prefix must
  // still parse (per the spec's forward-compatibility rule).
  const std::string prefix =
      "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  obs::TraceContext ctx;
  EXPECT_TRUE(obs::ParseTraceparent(prefix, &ctx));
  EXPECT_TRUE(obs::ParseTraceparent(prefix + "-anything", &ctx));
  // Trailing bytes without a dash separator are malformed for any version.
  EXPECT_FALSE(obs::ParseTraceparent(prefix + "junk", &ctx));
  // Version 00 is exact-length: nothing may follow, not even a dash.
  EXPECT_FALSE(obs::ParseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x", &ctx));
}

TEST(TraceContextTest, MalformedCorpusNeverParses) {
  const char* corpus[] = {
      "",
      "00",
      "00-",
      "garbage",
      // 54 chars (span id one short)
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01",
      // version ff is forbidden
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      // uppercase hex violates the traceparent grammar
      "00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01",
      // all-zero trace id / span id are the invalid values
      "00-00000000000000000000000000000000-b7ad6b7169203331-01",
      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
      // wrong separators
      "00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      "00-0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331-01",
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331_01",
      // non-hex bytes in each field
      "0g-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      "00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      "00-0af7651916cd43dd8448eb211c80319c-zzad6b7169203331-01",
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",
  };
  for (const char* bad : corpus) {
    obs::TraceContext ctx;
    EXPECT_FALSE(obs::ParseTraceparent(bad, &ctx)) << "parsed: " << bad;
  }
}

TEST(TraceContextTest, TraceIdHexParsing) {
  uint64_t hi = 0;
  uint64_t lo = 0;
  ASSERT_TRUE(
      obs::ParseTraceIdHex("0af7651916cd43dd8448eb211c80319c", &hi, &lo));
  EXPECT_EQ(hi, 0x0af7651916cd43ddULL);
  EXPECT_EQ(lo, 0x8448eb211c80319cULL);
  // Uppercase is accepted here (humans paste ids), unlike traceparent.
  ASSERT_TRUE(
      obs::ParseTraceIdHex("0AF7651916CD43DD8448EB211C80319C", &hi, &lo));
  EXPECT_EQ(hi, 0x0af7651916cd43ddULL);
  EXPECT_FALSE(obs::ParseTraceIdHex("0af7", &hi, &lo));
  EXPECT_FALSE(
      obs::ParseTraceIdHex("0af7651916cd43dd8448eb211c80319cff", &hi, &lo));
  EXPECT_FALSE(
      obs::ParseTraceIdHex("0af7651916cd43dd8448eb211c80319z", &hi, &lo));
}

// ---------------------------------------------------------------------------
// TraceCollector
// ---------------------------------------------------------------------------

const obs::SpanRecord* FindSpan(const obs::CompletedTrace& trace,
                                const std::string& name) {
  for (const obs::SpanRecord& span : trace.spans) {
    if (name == span.name) return &span;
  }
  return nullptr;
}

TEST(TraceCollectorTest, SpansBuildATreeUnderTheRoot) {
  obs::TraceCollector collector(obs::MakeTraceContext());
  {
    obs::ScopedActiveCollector guard(&collector);
    obs::Span outer("outer");
    { obs::Span inner("inner"); }
    // kDetailed kernel spans never enter request trees.
    { obs::Span kernel("matmul", obs::TraceLevel::kDetailed); }
  }
  obs::CompletedTrace trace = collector.Finish("predict", "beer", 200);

  EXPECT_EQ(trace.summary.total_spans, 3u);  // root + outer + inner
  ASSERT_EQ(trace.spans.size(), 3u);
  const obs::SpanRecord* root = FindSpan(trace, "http.request");
  const obs::SpanRecord* outer = FindSpan(trace, "outer");
  const obs::SpanRecord* inner = FindSpan(trace, "inner");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(FindSpan(trace, "matmul"), nullptr);
  EXPECT_EQ(root->span_id, obs::TraceCollector::kRootSpanId);
  EXPECT_EQ(outer->parent_span_id, root->span_id);
  EXPECT_EQ(inner->parent_span_id, outer->span_id);
  EXPECT_STREQ(trace.summary.route, "predict");
  EXPECT_STREQ(trace.summary.model, "beer");
  EXPECT_EQ(trace.summary.status, 200);
  EXPECT_GE(trace.summary.latency_us, 0);
}

TEST(TraceCollectorTest, SpanCapStopsStoringButKeepsCounting) {
  obs::TraceCollector collector(obs::MakeTraceContext());
  {
    obs::ScopedActiveCollector guard(&collector);
    for (int i = 0; i < 100; ++i) {
      obs::Span span("looped");
    }
  }
  obs::CompletedTrace trace = collector.Finish("predict", "beer", 200);
  EXPECT_EQ(trace.summary.total_spans, 101u);  // 100 + root
  EXPECT_LE(trace.spans.size(), obs::TraceCollector::kMaxSpans + 1);
}

TEST(TraceCollectorTest, AdoptBatchRemapsSpansAndLinksPeers) {
  obs::TraceContext mine = obs::MakeTraceContext();
  obs::TraceContext peer = obs::MakeTraceContext();
  obs::TraceCollector collector(mine);
  {
    obs::ScopedActiveCollector guard(&collector);
    obs::Span enqueue("serve.enqueue");
  }

  obs::TraceCollector batch(obs::MakeTraceContext());
  batch.AddLink(mine);
  batch.AddLink(peer);
  {
    obs::ScopedActiveCollector guard(&batch);
    obs::Span batch_span("serve.batch");
    { obs::Span forward("serve.forward"); }
  }
  collector.AdoptBatch(batch, 2);

  obs::CompletedTrace trace = collector.Finish("predict", "beer", 200);
  const obs::SpanRecord* batch_span = FindSpan(trace, "serve.batch");
  const obs::SpanRecord* forward = FindSpan(trace, "serve.forward");
  const obs::SpanRecord* enqueue = FindSpan(trace, "serve.enqueue");
  ASSERT_NE(batch_span, nullptr);
  ASSERT_NE(forward, nullptr);
  ASSERT_NE(enqueue, nullptr);
  // The adopted subtree hangs off this request's root, ids remapped to
  // stay unique, and the top-level batch span carries the batch size.
  EXPECT_EQ(batch_span->parent_span_id, obs::TraceCollector::kRootSpanId);
  EXPECT_EQ(forward->parent_span_id, batch_span->span_id);
  EXPECT_NE(batch_span->span_id, enqueue->span_id);
  EXPECT_EQ(batch_span->batch_size, 2);
  // Links name the co-batched peers — never this trace itself.
  ASSERT_EQ(trace.batch_links.size(), 1u);
  EXPECT_EQ(trace.batch_links[0], obs::TraceIdHex(peer));
  EXPECT_EQ(trace.total_links, 1u);
}

// ---------------------------------------------------------------------------
// Histogram exemplars
// ---------------------------------------------------------------------------

TEST(ExemplarTest, LastWriteWinsPerBucket) {
  obs::Histogram hist({10.0, 100.0});
  hist.ObserveWithExemplar(5.0, 0xaaa, 0xbbb);
  hist.ObserveWithExemplar(7.0, 0xccc, 0xddd);  // same bucket, overwrites
  hist.ObserveWithExemplar(50.0, 0x111, 0x222);
  std::vector<obs::Histogram::Exemplar> exemplars = hist.Exemplars();
  ASSERT_EQ(exemplars.size(), hist.num_buckets());
  ASSERT_TRUE(exemplars[0].valid);
  EXPECT_EQ(exemplars[0].value, 7.0);
  EXPECT_EQ(exemplars[0].trace_hi, 0xcccu);
  ASSERT_TRUE(exemplars[1].valid);
  EXPECT_EQ(exemplars[1].value, 50.0);
  EXPECT_FALSE(exemplars[2].valid);
}

TEST(ExemplarTest, PlainHistogramsAllocateNoExemplars) {
  obs::Histogram hist({10.0});
  hist.Observe(1.0);
  EXPECT_TRUE(hist.Exemplars().empty());
}

TEST(ExemplarTest, BoundaryValueSharesTheObserveBucket) {
  // Edges are inclusive uppers; the exemplar must land with the count.
  obs::Histogram hist({10.0, 100.0});
  hist.ObserveWithExemplar(10.0, 0x1, 0x2);
  std::vector<int64_t> counts = hist.BucketCounts();
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 0);
  std::vector<obs::Histogram::Exemplar> exemplars = hist.Exemplars();
  EXPECT_TRUE(exemplars[0].valid);
  EXPECT_FALSE(exemplars[1].valid);
}

TEST(ExemplarTest, PrometheusExpositionCarriesExemplars) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.GetHistogram(
      obs::LabeledName("lat_us", {{"route", "predict"}}), {1.0, 2.0});
  hist.ObserveWithExemplar(1.5, 0x0af7651916cd43ddULL, 0x8448eb211c80319cULL);
  registry.GetHistogram("plain_us", {1.0, 2.0}).Observe(1.5);
  std::string text = registry.ExportPrometheus();
  EXPECT_NE(
      text.find("lat_us_bucket{route=\"predict\",le=\"2\"} 1 "
                "# {trace_id=\"0af7651916cd43dd8448eb211c80319c\"} 1.5"),
      std::string::npos)
      << text;
  // Histograms without traced observations keep the exemplar-free format.
  EXPECT_NE(text.find("plain_us_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_EQ(text.find("plain_us_bucket{le=\"2\"} 1 #"), std::string::npos);
}

TEST(ExemplarTest, StaleExemplarsDropOutOfTheExposition) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.GetHistogram("stale_us", {1.0, 2.0});
  hist.ObserveWithExemplar(1.5, 0xabc, 0xdef);

  // Window 0 (the default): exemplars are kept forever.
  EXPECT_NE(registry.ExportPrometheus().find("# {trace_id="),
            std::string::npos);

  // A generous window also keeps the fresh exemplar.
  registry.SetExemplarMaxAgeUs(int64_t{3600} * 1000 * 1000);
  EXPECT_NE(registry.ExportPrometheus().find("# {trace_id="),
            std::string::npos);

  // A 1us window: by the time the exposition runs, the capture timestamp
  // is stale and the bucket line must fall back to the plain format. The
  // count itself is unaffected — staleness only suppresses the exemplar.
  registry.SetExemplarMaxAgeUs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::string text = registry.ExportPrometheus();
  EXPECT_EQ(text.find("# {trace_id="), std::string::npos) << text;
  EXPECT_NE(text.find("stale_us_bucket{le=\"2\"} 1\n"), std::string::npos);

  // Back to "forever": the stored exemplar was never discarded, only
  // filtered at exposition time.
  registry.SetExemplarMaxAgeUs(0);
  EXPECT_NE(registry.ExportPrometheus().find("# {trace_id="),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

obs::CompletedTrace MakeTestTrace(uint64_t hi, uint64_t lo,
                                  const std::string& route = "predict",
                                  int status = 200) {
  obs::TraceContext ctx;
  ctx.trace_id_hi = hi;
  ctx.trace_id_lo = lo;
  ctx.span_id = 1;
  obs::TraceCollector collector(ctx);
  {
    obs::ScopedActiveCollector guard(&collector);
    obs::Span span("serve.forward");
  }
  return collector.Finish(route, "beer", status);
}

TEST(FlightRecorderTest, RecordAndFindByTraceId) {
  obs::FlightRecorder ring(obs::FlightRecorder::Config{64 * 1024});
  ring.Record(MakeTestTrace(0x1, 0x100));
  ring.Record(MakeTestTrace(0x2, 0x200));

  obs::CompletedTrace out;
  ASSERT_TRUE(ring.Find(obs::TraceIdHex(0x2, 0x200), &out));
  EXPECT_STREQ(out.summary.route, "predict");
  EXPECT_NE(FindSpan(out, "serve.forward"), nullptr);
  EXPECT_NE(FindSpan(out, "http.request"), nullptr);
  EXPECT_FALSE(ring.Find(obs::TraceIdHex(0x3, 0x300), &out));
  EXPECT_FALSE(ring.Find("not-a-hex-id", &out));

  // Snapshot is newest first.
  std::vector<obs::CompletedTrace> all = ring.Snapshot();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(std::string(all[0].summary.trace_id), obs::TraceIdHex(0x2, 0x200));
  EXPECT_EQ(std::string(all[1].summary.trace_id), obs::TraceIdHex(0x1, 0x100));
}

TEST(FlightRecorderTest, WraparoundKeepsNewestWithinByteBudget) {
  obs::FlightRecorder ring(obs::FlightRecorder::Config{16 * 1024});
  EXPECT_LE(ring.footprint_bytes(), 16u * 1024u);
  const size_t slots = ring.num_slots();
  ASSERT_GE(slots, 8u);
  const int total = static_cast<int>(slots) * 4;
  for (int i = 1; i <= total; ++i) {
    ring.Record(MakeTestTrace(0xabc, static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(ring.recorded(), total);
  std::vector<obs::CompletedTrace> all = ring.Snapshot();
  EXPECT_LE(all.size(), slots);
  // The newest record always survives a wrap; the earliest is long gone.
  obs::CompletedTrace out;
  EXPECT_TRUE(
      ring.Find(obs::TraceIdHex(0xabc, static_cast<uint64_t>(total)), &out));
  EXPECT_FALSE(ring.Find(obs::TraceIdHex(0xabc, 0x1), &out));
}

TEST(FlightRecorderTest, ConcurrentWritersAndReadersStayConsistent) {
  obs::FlightRecorder ring(obs::FlightRecorder::Config{16 * 1024});
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 200;
  std::atomic<bool> stop{false};

  // A reader hammers Snapshot/Find while writers wrap the ring; every
  // payload it sees must be internally consistent (this is the TSan lane's
  // main course).
  std::thread reader([&] {
    obs::CompletedTrace out;
    while (!stop.load(std::memory_order_relaxed)) {
      for (const obs::CompletedTrace& trace : ring.Snapshot()) {
        ASSERT_EQ(std::strlen(trace.summary.trace_id), 32u);
        ASSERT_LE(trace.spans.size(), obs::FlightRecorder::kSlotSpans);
      }
      ring.Find(obs::TraceIdHex(0x7, 0x1), &out);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        ring.Record(MakeTestTrace(static_cast<uint64_t>(w + 1),
                                  static_cast<uint64_t>(i + 1)));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Fixed memory no matter the load, and every record was either stored or
  // explicitly counted as dropped.
  EXPECT_LE(ring.footprint_bytes(), 16u * 1024u);
  EXPECT_EQ(ring.recorded(), kWriters * kPerWriter);
  EXPECT_GE(ring.dropped(), 0);
  EXPECT_LE(ring.Snapshot().size(), ring.num_slots());
}

TEST(FlightRecorderTest, DumpToStderrEmitsMarkersAndJsonl) {
  obs::FlightRecorder ring(obs::FlightRecorder::Config{16 * 1024});
  ring.Record(MakeTestTrace(0xd, 0xe));
  testing::internal::CaptureStderr();
  ring.DumpToStderr();
  std::string dump = testing::internal::GetCapturedStderr();
  EXPECT_NE(dump.find("=== DAR flight recorder begin"), std::string::npos);
  EXPECT_NE(dump.find("=== DAR flight recorder end ==="), std::string::npos);
  EXPECT_NE(dump.find("\"trace_id\":\"" + obs::TraceIdHex(0xd, 0xe) + "\""),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("\"spans\":["), std::string::npos);
}

// ---------------------------------------------------------------------------
// TailSampler
// ---------------------------------------------------------------------------

std::shared_ptr<obs::CompletedTrace> TraceWithLatency(uint64_t lo,
                                                      int64_t latency_us,
                                                      int status = 200) {
  auto trace = std::make_shared<obs::CompletedTrace>(
      MakeTestTrace(0xf00d, lo, "predict", status));
  trace->summary.latency_us = latency_us;
  return trace;
}

TEST(TailSamplerTest, RetainsSlowAndErroredRequests) {
  obs::TailSampler::Config config;
  config.latency_threshold_us = 1000;
  obs::TailSampler sampler(config);

  auto fast = TraceWithLatency(0x1, 10);
  auto slow = TraceWithLatency(0x2, 5000);
  auto error = TraceWithLatency(0x3, 10, 503);
  EXPECT_EQ(sampler.Consider(fast, false), obs::TailReason::kNone);
  EXPECT_EQ(sampler.Consider(slow, false), obs::TailReason::kSlow);
  EXPECT_EQ(sampler.Consider(error, false), obs::TailReason::kError);
  EXPECT_EQ(sampler.size(), 2u);

  EXPECT_EQ(sampler.Find(std::string(fast->summary.trace_id)), nullptr);
  auto found = sampler.Find(std::string(slow->summary.trace_id));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->summary.tail_reason,
            static_cast<uint8_t>(obs::TailReason::kSlow));

  std::vector<obs::RequestSummary> fresh = sampler.DrainNew();
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_TRUE(sampler.DrainNew().empty());
}

TEST(TailSamplerTest, PerRouteThresholdOverrides) {
  obs::TailSampler::Config config;
  config.latency_threshold_us = 1000;
  // /metrics scrapes are slow by nature: a high override keeps them from
  // crowding the store. A negative value disables slow-sampling entirely.
  config.threshold_us_by_route = {{"metrics", 100000}, {"debug", -1}};
  obs::TailSampler sampler(config);

  auto with_route = [](uint64_t lo, const std::string& route,
                       int64_t latency_us, int status = 200) {
    auto trace = std::make_shared<obs::CompletedTrace>(
        MakeTestTrace(0xf00d, lo, route, status));
    trace->summary.latency_us = latency_us;
    return trace;
  };

  // Unlisted routes use the default threshold.
  EXPECT_EQ(sampler.Consider(with_route(0x1, "predict", 5000), false),
            obs::TailReason::kSlow);
  // Below the per-route override: not sampled, though over the default.
  EXPECT_EQ(sampler.Consider(with_route(0x2, "metrics", 5000), false),
            obs::TailReason::kNone);
  EXPECT_EQ(sampler.Consider(with_route(0x3, "metrics", 200000), false),
            obs::TailReason::kSlow);
  // Disabled route: never slow-sampled no matter the latency...
  EXPECT_EQ(sampler.Consider(with_route(0x4, "debug", 60000000), false),
            obs::TailReason::kNone);
  // ...but errors on it are still retained.
  EXPECT_EQ(sampler.Consider(with_route(0x5, "debug", 10, 503), false),
            obs::TailReason::kError);
  EXPECT_EQ(sampler.size(), 3u);
}

TEST(TailSamplerTest, SlowMsByRouteMergesIntoTailConfig) {
  obs::TracerConfig config;
  config.tail.latency_threshold_us = 1000;
  // An explicit microsecond entry wins over the router-facing ms knob.
  config.tail.threshold_us_by_route = {{"metrics", 42}};
  config.slow_ms_by_route = {{"metrics", 500}, {"predict", 30},
                             {"debug", -1}};
  obs::RequestTracer tracer(config);
  const auto& merged = tracer.tail().config().threshold_us_by_route;
  auto find = [&](const std::string& route) -> const int64_t* {
    for (const auto& [name, threshold] : merged) {
      if (name == route) return &threshold;
    }
    return nullptr;
  };
  ASSERT_NE(find("metrics"), nullptr);
  EXPECT_EQ(*find("metrics"), 42);  // us entry untouched by the 500ms knob
  ASSERT_NE(find("predict"), nullptr);
  EXPECT_EQ(*find("predict"), 30000);  // ms converted to us
  ASSERT_NE(find("debug"), nullptr);
  EXPECT_EQ(*find("debug"), -1);  // negative normalizes to the sentinel
}

TEST(TailSamplerTest, EvictsOldestPastCapacity) {
  obs::TailSampler::Config config;
  config.latency_threshold_us = 1;
  config.max_traces = 4;
  obs::TailSampler sampler(config);
  for (uint64_t i = 1; i <= 6; ++i) {
    sampler.Consider(TraceWithLatency(i, 1000), false);
  }
  EXPECT_EQ(sampler.size(), 4u);
  EXPECT_EQ(sampler.Find(obs::TraceIdHex(0xf00d, 1)), nullptr);
  EXPECT_NE(sampler.Find(obs::TraceIdHex(0xf00d, 6)), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end over loopback HTTP
// ---------------------------------------------------------------------------

core::TrainConfig TinyConfig() {
  core::TrainConfig config;
  config.embedding_dim = 16;
  config.hidden_dim = 8;
  return config;
}

/// Untrained tiny RNP session (deterministic for a fixed seed): tracing
/// correctness does not require a trained model.
std::shared_ptr<serve::InferenceSession> MakeSession(uint64_t seed = 7) {
  datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAppearance, {.train = 40, .dev = 10, .test = 10},
      seed);
  core::TrainConfig config = TinyConfig();
  config.seed = seed;
  auto model = std::make_unique<core::RnpModel>(
      eval::BuildEmbeddings(dataset, config), config);
  return std::make_shared<serve::InferenceSession>(std::move(model),
                                                   dataset.vocab);
}

struct Loopback {
  serve::ModelRegistry registry;
  std::unique_ptr<net::Router> router;
  std::unique_ptr<net::HttpServer> server;
  std::shared_ptr<serve::InferenceSession> session;

  explicit Loopback(net::RouterConfig router_config = {},
                    net::ServerConfig server_config = {}) {
    session = MakeSession();
    router = std::make_unique<net::Router>(registry, router_config);
    router->ServeModel("beer", session);
    server_config.port = 0;
    if (server_config.metrics == nullptr) {
      server_config.metrics = &router->metrics();
    }
    server =
        std::make_unique<net::HttpServer>(router->AsHandler(), server_config);
    std::string error;
    bool started = server->Start(&error);
    EXPECT_TRUE(started) << error;
  }

  ~Loopback() { server->Stop(); }

  net::HttpClient Client() {
    return net::HttpClient("127.0.0.1", server->port());
  }
};

std::string PredictBody(const std::string& text) {
  return net::JsonValue::Object()
      .Set("text", net::JsonValue::Str(text))
      .Dump();
}

bool TraceHasSpan(const net::JsonValue& trace, const std::string& name,
                  const net::JsonValue** out = nullptr) {
  const net::JsonValue* spans = trace.Find("spans");
  if (spans == nullptr) return false;
  for (const net::JsonValue& span : spans->items) {
    const net::JsonValue* span_name = span.Find("name");
    if (span_name != nullptr && span_name->string_value == name) {
      if (out != nullptr) *out = &span;
      return true;
    }
  }
  return false;
}

TEST(TraceEndToEndTest, TraceIdHeaderResolvesToFullSpanTree) {
  Loopback loop;
  net::HttpClient client = loop.Client();
  auto response =
      client.Post("/v1/models/beer/predict", PredictBody("the beer was"));
  ASSERT_TRUE(response.has_value()) << client.error();
  ASSERT_EQ(response->status, 200) << response->body;
  std::string trace_id = response->trace_id();
  ASSERT_EQ(trace_id.size(), 32u) << "missing/short X-DAR-Trace-Id";

  auto debug = client.Get("/debug/trace/" + trace_id);
  ASSERT_TRUE(debug.has_value()) << client.error();
  ASSERT_EQ(debug->status, 200) << debug->body;
  std::string error;
  auto trace = net::JsonValue::Parse(debug->body, &error);
  ASSERT_TRUE(trace.has_value()) << error;

  // The acceptance tree: router -> enqueue -> batch -> session forward.
  const net::JsonValue* router_span = nullptr;
  const net::JsonValue* batch_span = nullptr;
  const net::JsonValue* forward_span = nullptr;
  EXPECT_TRUE(TraceHasSpan(*trace, "http.request"));
  ASSERT_TRUE(TraceHasSpan(*trace, "http.router", &router_span));
  EXPECT_TRUE(TraceHasSpan(*trace, "serve.enqueue"));
  ASSERT_TRUE(TraceHasSpan(*trace, "serve.batch", &batch_span));
  ASSERT_TRUE(TraceHasSpan(*trace, "serve.forward", &forward_span));
  EXPECT_GE(batch_span->Find("batch_size")->number_value, 1);
  // The forward nests under the batch span it ran in.
  EXPECT_EQ(forward_span->Find("parent")->string_value,
            batch_span->Find("span_id")->string_value);

  const net::JsonValue* summary = trace->Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Find("trace_id")->string_value, trace_id);
  EXPECT_EQ(summary->Find("route")->string_value, "predict");
  EXPECT_EQ(summary->Find("model")->string_value, "beer");
  EXPECT_EQ(summary->Find("status")->number_value, 200);
}

TEST(TraceEndToEndTest, CacheLookupSpanAppearsWhenCacheEnabled) {
  net::RouterConfig config;
  config.serve.cache.enabled = true;
  config.serve.cache.capacity_bytes = 1 << 20;
  Loopback loop(config);
  net::HttpClient client = loop.Client();

  for (int i = 0; i < 2; ++i) {
    auto response =
        client.Post("/v1/models/beer/predict", PredictBody("same text"));
    ASSERT_TRUE(response.has_value()) << client.error();
    ASSERT_EQ(response->status, 200);
    if (i == 0) continue;
    auto debug = client.Get("/debug/trace/" + response->trace_id());
    ASSERT_TRUE(debug.has_value());
    ASSERT_EQ(debug->status, 200);
    auto trace = net::JsonValue::Parse(debug->body, nullptr);
    ASSERT_TRUE(trace.has_value());
    EXPECT_TRUE(TraceHasSpan(*trace, "serve.cache_lookup")) << debug->body;
  }
}

TEST(TraceEndToEndTest, ResponseBodyBitIdenticalTracingOnVsOff) {
  net::RouterConfig traced;
  net::RouterConfig untraced;
  untraced.tracing.enabled = false;
  Loopback loop_on(traced);
  Loopback loop_off(untraced);
  net::HttpClient client_on = loop_on.Client();
  net::HttpClient client_off = loop_off.Client();

  const char* texts[] = {"one beer", "a different review text", "x"};
  for (const char* text : texts) {
    auto on = client_on.Post("/v1/models/beer/predict", PredictBody(text));
    auto off = client_off.Post("/v1/models/beer/predict", PredictBody(text));
    ASSERT_TRUE(on.has_value() && off.has_value());
    ASSERT_EQ(on->status, 200);
    ASSERT_EQ(off->status, 200);
    // Byte-equal bodies: tracing must be observationally free.
    EXPECT_EQ(on->body, off->body) << text;
    EXPECT_EQ(on->trace_id().size(), 32u);
    EXPECT_EQ(off->trace_id(), "");  // header absent with tracing off
  }
}

TEST(TraceEndToEndTest, DebugRoutesAre404WhenTracingDisabled) {
  net::RouterConfig config;
  config.tracing.enabled = false;
  Loopback loop(config);
  net::HttpClient client = loop.Client();
  for (const char* path :
       {"/debug/requests", "/debug/flight_recorder",
        "/debug/trace/0af7651916cd43dd8448eb211c80319c"}) {
    auto response = client.Get(path);
    ASSERT_TRUE(response.has_value()) << client.error();
    EXPECT_EQ(response->status, 404) << path;
  }
}

TEST(TraceEndToEndTest, DebugRequestsAndFlightRecorderListRecent) {
  Loopback loop;
  net::HttpClient client = loop.Client();
  auto response =
      client.Post("/v1/models/beer/predict", PredictBody("list me"));
  ASSERT_TRUE(response.has_value());
  std::string trace_id = response->trace_id();
  ASSERT_EQ(trace_id.size(), 32u);

  auto requests = client.Get("/debug/requests");
  ASSERT_TRUE(requests.has_value());
  ASSERT_EQ(requests->status, 200);
  // The ring is process-global, so other tests' requests may be listed
  // too; ours must be among them.
  EXPECT_NE(requests->body.find(trace_id), std::string::npos);

  auto recorder = client.Get("/debug/flight_recorder");
  ASSERT_TRUE(recorder.has_value());
  ASSERT_EQ(recorder->status, 200);
  std::string error;
  auto info = net::JsonValue::Parse(recorder->body, &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_GT(info->Find("slots")->number_value, 0);
  EXPECT_LE(info->Find("footprint_bytes")->number_value,
            info->Find("budget_bytes")->number_value);
  EXPECT_GT(info->Find("recorded")->number_value, 0);
}

TEST(TraceEndToEndTest, IncomingTraceparentIsAdopted) {
  Loopback loop;
  net::HttpClient client = loop.Client();
  obs::TraceContext upstream = obs::MakeTraceContext();
  client.set_traceparent(obs::FormatTraceparent(upstream));
  auto response =
      client.Post("/v1/models/beer/predict", PredictBody("joined trace"));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, 200);
  // The server joined our trace instead of minting a new id.
  EXPECT_EQ(response->trace_id(), obs::TraceIdHex(upstream));
  auto debug = client.Get("/debug/trace/" + obs::TraceIdHex(upstream));
  ASSERT_TRUE(debug.has_value());
  EXPECT_EQ(debug->status, 200);
}

TEST(TraceEndToEndTest, MalformedTraceparentFallsBackToFreshId) {
  Loopback loop;
  net::HttpClient client = loop.Client();
  const char* corpus[] = {
      "garbage",
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      "00-00000000000000000000000000000000-b7ad6b7169203331-01",
      "00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01",
  };
  for (const char* bad : corpus) {
    auto response = client.Request(
        "POST", "/v1/models/beer/predict", PredictBody("bad header"),
        {{"Content-Type", "application/json"}, {"traceparent", bad}});
    ASSERT_TRUE(response.has_value()) << client.error();
    // Never an error, never a crash: the request runs under a fresh id.
    EXPECT_EQ(response->status, 200) << bad;
    EXPECT_EQ(response->trace_id().size(), 32u) << bad;
    EXPECT_EQ(response->trace_id().find("0af7651916cd"), std::string::npos);
  }
}

TEST(TraceEndToEndTest, ErroredRequestsAreTailSampled) {
  Loopback loop;
  net::HttpClient client = loop.Client();
  auto response = client.Post("/v1/models/beer/predict", "{not json");
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, 400);
  std::string trace_id = response->trace_id();
  ASSERT_EQ(trace_id.size(), 32u);

  auto debug = client.Get("/debug/trace/" + trace_id);
  ASSERT_TRUE(debug.has_value());
  ASSERT_EQ(debug->status, 200) << debug->body;
  auto trace = net::JsonValue::Parse(debug->body, nullptr);
  ASSERT_TRUE(trace.has_value());
  const net::JsonValue* summary = trace->Find("summary");
  EXPECT_EQ(summary->Find("status")->number_value, 400);
  EXPECT_EQ(summary->Find("tail_reason")->string_value, "error");
  // And the tracer's tail store counts it.
  ASSERT_NE(loop.router->tracer(), nullptr);
  EXPECT_GE(loop.router->tracer()->tail().size(), 1u);
}

TEST(TraceEndToEndTest, ExemplarReachesMetricsEndpoint) {
  Loopback loop;
  net::HttpClient client = loop.Client();
  auto response =
      client.Post("/v1/models/beer/predict", PredictBody("exemplar"));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, 200);
  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.has_value());
  ASSERT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("# {trace_id=\""), std::string::npos);
  // The exemplar hangs off the predict-route latency histogram.
  EXPECT_NE(metrics->body.find("http_request_latency_us_bucket{route="
                               "\"predict\""),
            std::string::npos);
}

TEST(TraceEndToEndTest, EightClientHammerStaysConsistent) {
  Loopback loop;
  constexpr int kClients = 8;
  constexpr int kRequests = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&loop, &failures, c] {
      net::HttpClient client = loop.Client();
      for (int i = 0; i < kRequests; ++i) {
        auto response = client.Post(
            "/v1/models/beer/predict",
            PredictBody("client " + std::to_string(c) + " says beer"));
        if (!response.has_value() || response->status != 200 ||
            response->trace_id().size() != 32) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The global ring absorbed the hammer within its fixed footprint.
  obs::FlightRecorder& ring = obs::FlightRecorder::Global();
  EXPECT_LE(ring.footprint_bytes(), ring.config().budget_bytes);
  EXPECT_GE(ring.recorded(), kClients * kRequests);
  net::HttpClient client = loop.Client();
  auto requests = client.Get("/debug/requests");
  ASSERT_TRUE(requests.has_value());
  EXPECT_EQ(requests->status, 200);
}

// ---------------------------------------------------------------------------
// Sentinel trap path
// ---------------------------------------------------------------------------

TEST(FlightRecorderDeathTest, SentinelTrapDumpsTheRing) {
  const float bad[] = {1.0f, std::numeric_limits<float>::quiet_NaN()};
  EXPECT_DEATH(
      {
        // Give the ring something to say, as a live server would have.
        obs::FlightRecorder::Global().Record(MakeTestTrace(0xdead, 0xbeef));
        check::SetSentinelMode(check::SentinelMode::kTrap);
        check::ScanForNonFinite("serve.forward", "probs", bad, 2);
      },
      "DAR flight recorder begin");
}

}  // namespace
}  // namespace dar
