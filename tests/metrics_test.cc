// Tests for eval: rationale metrics, label PRF, table rendering.
#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "eval/table.h"

namespace dar {
namespace eval {
namespace {

data::Batch AnnotatedBatch() {
  std::vector<data::Example> examples = {
      {{2, 3, 4, 5}, 1, {0, 1, 1, 0}},
      {{6, 7, 8}, 0, {1, 0, 0}},
  };
  return data::Batch::FromExamples(examples, 0, 2, 0);
}

TEST(RationaleMetricsTest, PerfectSelection) {
  data::Batch batch = AnnotatedBatch();
  Tensor mask(Shape{2, 4}, {0, 1, 1, 0, 1, 0, 0, 0});
  RationaleMetricsAccumulator acc;
  acc.Add(mask, batch);
  RationaleMetrics m = acc.Finalize();
  EXPECT_NEAR(m.precision, 1.0f, 1e-6f);
  EXPECT_NEAR(m.recall, 1.0f, 1e-6f);
  EXPECT_NEAR(m.f1, 1.0f, 1e-6f);
  EXPECT_NEAR(m.sparsity, 3.0f / 7.0f, 1e-5f);  // 3 selected / 7 valid
}

TEST(RationaleMetricsTest, PartialOverlap) {
  data::Batch batch = AnnotatedBatch();
  // Selects tokens {1} of ex0 (gold {1,2}) and {1} of ex1 (gold {0}).
  Tensor mask(Shape{2, 4}, {0, 1, 0, 0, 0, 1, 0, 0});
  RationaleMetricsAccumulator acc;
  acc.Add(mask, batch);
  RationaleMetrics m = acc.Finalize();
  EXPECT_NEAR(m.precision, 0.5f, 1e-6f);       // 1 of 2 selected are gold
  EXPECT_NEAR(m.recall, 1.0f / 3.0f, 1e-6f);   // 1 of 3 gold selected
  EXPECT_NEAR(m.f1, 2 * 0.5f * (1.0f / 3) / (0.5f + 1.0f / 3), 1e-5f);
}

TEST(RationaleMetricsTest, EmptySelectionIsZeroNotNan) {
  data::Batch batch = AnnotatedBatch();
  Tensor mask(Shape{2, 4});
  RationaleMetricsAccumulator acc;
  acc.Add(mask, batch);
  RationaleMetrics m = acc.Finalize();
  EXPECT_EQ(m.precision, 0.0f);
  EXPECT_EQ(m.recall, 0.0f);
  EXPECT_EQ(m.f1, 0.0f);
  EXPECT_EQ(m.sparsity, 0.0f);
}

TEST(RationaleMetricsTest, PaddingExcluded) {
  data::Batch batch = AnnotatedBatch();
  // "Select" padded positions of example 2 — they must not count.
  Tensor mask(Shape{2, 4}, {0, 0, 0, 0, 0, 0, 0, 1});
  RationaleMetricsAccumulator acc;
  acc.Add(mask, batch);
  EXPECT_EQ(acc.Finalize().sparsity, 0.0f);
}

TEST(RationaleMetricsTest, MicroAverageAcrossBatches) {
  data::Batch batch = AnnotatedBatch();
  Tensor mask1(Shape{2, 4}, {0, 1, 1, 0, 1, 0, 0, 0});  // all gold
  Tensor mask2(Shape{2, 4}, {1, 0, 0, 1, 0, 1, 0, 0});  // none gold
  RationaleMetricsAccumulator acc;
  acc.Add(mask1, batch);
  acc.Add(mask2, batch);
  RationaleMetrics m = acc.Finalize();
  EXPECT_NEAR(m.precision, 0.5f, 1e-6f);  // 3 of 6 selected are gold
  EXPECT_NEAR(m.recall, 0.5f, 1e-6f);     // 3 of 6 gold selected
}

TEST(PositiveClassPrfTest, MixedPredictions) {
  // preds: 1 1 0 0 ; labels: 1 0 1 0 -> tp=1 fp=1 fn=1.
  BinaryPrf prf = PositiveClassPrf({1, 1, 0, 0}, {1, 0, 1, 0});
  EXPECT_TRUE(prf.defined);
  EXPECT_NEAR(prf.precision, 0.5f, 1e-6f);
  EXPECT_NEAR(prf.recall, 0.5f, 1e-6f);
  EXPECT_NEAR(prf.f1, 0.5f, 1e-6f);
}

TEST(PositiveClassPrfTest, CollapsedPredictorIsUndefined) {
  // The paper's Table I "nan" case: predictor always outputs negative.
  BinaryPrf prf = PositiveClassPrf({0, 0, 0, 0}, {1, 0, 1, 0});
  EXPECT_FALSE(prf.defined);
  EXPECT_EQ(prf.recall, 0.0f);
}

TEST(PositiveClassPrfTest, AlwaysPositivePredictor) {
  // Table I Service-like case: P=100, R small.
  BinaryPrf prf = PositiveClassPrf({1, 0, 0, 0}, {1, 1, 1, 1});
  EXPECT_TRUE(prf.defined);
  EXPECT_NEAR(prf.precision, 1.0f, 1e-6f);
  EXPECT_NEAR(prf.recall, 0.25f, 1e-6f);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Method", "F1"});
  table.AddRow({"RNP", "72.8"});
  table.AddRow({"DAR(ours)", "79.8"});
  std::string out = table.Render();
  EXPECT_NE(out.find("| Method    |"), std::string::npos);
  EXPECT_NE(out.find("| DAR(ours) | 79.8 |"), std::string::npos);
}

TEST(TablePrinterTest, RuleSeparatesSections) {
  TablePrinter table({"A"});
  table.AddRow({"x"});
  table.AddRule();
  table.AddRow({"y"});
  std::string out = table.Render();
  // Header rule + top + bottom + mid-rule = 4 horizontal rules.
  size_t rules = 0, pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(FormatPercent(0.798f), "79.8");
  EXPECT_EQ(FormatPercent(1.0f), "100.0");
  EXPECT_EQ(FormatFloat(3.14159f, 2), "3.14");
}

}  // namespace
}  // namespace eval
}  // namespace dar
