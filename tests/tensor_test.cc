// Tests for tensor/tensor.h.
#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/random.h"

namespace dar {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({3}), 3);
  EXPECT_EQ(NumElements({2, 3}), 6);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({2, 0, 4}), 0);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(ShapeToString({}), "[]");
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
}

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ZerosInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.flat(i), 0.0f);
}

TEST(TensorTest, FullValue) {
  Tensor t = Tensor::Full({2, 2}, 3.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.flat(i), 3.5f);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.dim(), 1);
  EXPECT_EQ(t.at(1), 2.0f);
}

TEST(TensorTest, ScalarItem) {
  Tensor t = Tensor::Scalar(7.0f);
  EXPECT_EQ(t.dim(), 0);
  EXPECT_EQ(t.item(), 7.0f);
}

TEST(TensorTest, RowMajorLayout2D) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t.flat(1 * 3 + 2), 5.0f);
}

TEST(TensorTest, RowMajorLayout3D) {
  Tensor t(Shape{2, 3, 4});
  t.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(t.flat((1 * 3 + 2) * 4 + 3), 9.0f);
}

TEST(TensorTest, SizeNegativeAxis) {
  Tensor t(Shape{2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
}

TEST(TensorTest, Reshape) {
  Tensor t = Tensor::Arange(6);
  Tensor r = t.Reshape({2, 3});
  EXPECT_EQ(r.at(1, 0), 3.0f);
  // Reshape copies: mutation does not alias.
  r.at(0, 0) = 99.0f;
  EXPECT_EQ(t.at(0), 0.0f);
}

TEST(TensorTest, FillAndZero) {
  Tensor t(Shape{4});
  t.Fill(2.0f);
  EXPECT_EQ(t.at(3), 2.0f);
  t.Zero();
  EXPECT_EQ(t.at(3), 0.0f);
}

TEST(TensorTest, AllClose) {
  Tensor a = Tensor::FromVector({1.0f, 2.0f});
  Tensor b = Tensor::FromVector({1.0f, 2.0f + 1e-7f});
  Tensor c = Tensor::FromVector({1.0f, 2.1f});
  EXPECT_TRUE(a.AllClose(b));
  EXPECT_FALSE(a.AllClose(c));
  EXPECT_FALSE(a.AllClose(Tensor(Shape{3})));
}

TEST(TensorTest, Eye) {
  Tensor e = Tensor::Eye(3);
  EXPECT_EQ(e.at(0, 0), 1.0f);
  EXPECT_EQ(e.at(0, 1), 0.0f);
  EXPECT_EQ(e.at(2, 2), 1.0f);
}

TEST(TensorTest, Arange) {
  Tensor t = Tensor::Arange(4, 1.0f, 0.5f);
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_EQ(t.at(3), 2.5f);
}

TEST(TensorTest, RandnShapeAndSpread) {
  Pcg32 rng(1);
  Tensor t = Tensor::Randn({1000}, rng, 2.0f);
  double mean = 0.0, var = 0.0;
  for (int64_t i = 0; i < 1000; ++i) mean += t.at(i);
  mean /= 1000.0;
  for (int64_t i = 0; i < 1000; ++i) var += (t.at(i) - mean) * (t.at(i) - mean);
  var /= 1000.0;
  EXPECT_NEAR(mean, 0.0, 0.25);
  EXPECT_NEAR(var, 4.0, 1.0);
}

TEST(TensorTest, RandRange) {
  Pcg32 rng(2);
  Tensor t = Tensor::Rand({500}, rng, -1.0f, 1.0f);
  for (int64_t i = 0; i < 500; ++i) {
    EXPECT_GE(t.at(i), -1.0f);
    EXPECT_LT(t.at(i), 1.0f);
  }
}

TEST(TensorTest, ToStringPreview) {
  Tensor t = Tensor::FromVector({1.0f, 2.0f});
  std::string s = t.ToString();
  EXPECT_NE(s.find("[2]"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(TensorDeath, OutOfRangeAborts) {
  Tensor t(Shape{2, 2});
  EXPECT_DEATH(t.at(2, 0), "DAR_CHECK");
  EXPECT_DEATH(t.at(5), "DAR_CHECK");
}

TEST(TensorDeath, ShapeMismatchValues) {
  EXPECT_DEATH(Tensor(Shape{3}, std::vector<float>{1.0f}), "DAR_CHECK");
}

TEST(TensorDeath, ReshapeWrongCount) {
  Tensor t(Shape{4});
  EXPECT_DEATH(t.Reshape({3}), "DAR_CHECK");
}

}  // namespace
}  // namespace dar
