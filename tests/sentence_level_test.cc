// Tests for core/sentence_level.h: segmentation, the straight-through
// one-sentence sampler, and the RNP*/A2R* models.
#include "core/sentence_level.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/dataloader.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace core {
namespace {

constexpr int64_t kPeriod = 9;

data::Batch SentenceBatch() {
  // Example 0: "a b . c d e ." -> sentences [0,3) [3,7)
  // Example 1: "x y z"         -> one unterminated sentence [0,3)
  std::vector<data::Example> examples = {
      {{2, 3, kPeriod, 4, 5, 6, kPeriod}, 1, {}},
      {{7, 8, 7}, 0, {}},
  };
  return data::Batch::FromExamples(examples, 0, 2, /*pad_id=*/0);
}

TEST(SegmentSentencesTest, SplitsOnPeriods) {
  std::vector<std::vector<SentenceSpan>> spans =
      SegmentSentences(SentenceBatch(), kPeriod);
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_EQ(spans[0].size(), 2u);
  EXPECT_EQ(spans[0][0].begin, 0);
  EXPECT_EQ(spans[0][0].end, 3);
  EXPECT_EQ(spans[0][1].begin, 3);
  EXPECT_EQ(spans[0][1].end, 7);
  // Unterminated final sentence still forms a span; padding excluded.
  ASSERT_EQ(spans[1].size(), 1u);
  EXPECT_EQ(spans[1][0].begin, 0);
  EXPECT_EQ(spans[1][0].end, 3);
}

TEST(SegmentSentencesTest, SpansPartitionValidTokens) {
  datasets::SyntheticDataset ds = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAroma, {.train = 32, .dev = 8, .test = 8}, 91);
  data::DataLoader loader(ds.train, 16, /*shuffle=*/false);
  data::Batch batch = loader.Sequential()[0];
  auto spans = SegmentSentences(batch, ds.vocab.IdOrUnk("."));
  for (int64_t i = 0; i < batch.batch_size(); ++i) {
    int64_t covered = 0, expected = 0;
    int64_t prev_end = 0;
    for (const SentenceSpan& s : spans[static_cast<size_t>(i)]) {
      EXPECT_EQ(s.begin, prev_end);  // contiguous, non-overlapping
      EXPECT_LT(s.begin, s.end);
      covered += s.end - s.begin;
      prev_end = s.end;
    }
    for (int64_t t = 0; t < batch.max_len(); ++t) {
      expected += static_cast<int64_t>(batch.valid.at(i, t));
    }
    EXPECT_EQ(covered, expected);
  }
}

TEST(OneSentenceMaskTest, SelectsExactlyOneSentenceEval) {
  data::Batch batch = SentenceBatch();
  auto spans = SegmentSentences(batch, kPeriod);
  Tensor logits(Shape{2, 7}, {1, 1, 1, 3, 3, 3, 3,   // sentence 2 wins
                              0.5f, 0.5f, 0.5f, 0, 0, 0, 0});
  Pcg32 rng(1);
  nn::GumbelMask mask = SampleOneSentenceMask(
      ag::Variable::Constant(logits), spans, batch.valid, 1.0f,
      /*training=*/false, rng);
  // Example 0: second sentence selected, first not.
  EXPECT_EQ(mask.hard.value().at(0, 0), 0.0f);
  EXPECT_EQ(mask.hard.value().at(0, 3), 1.0f);
  EXPECT_EQ(mask.hard.value().at(0, 6), 1.0f);
  // Example 1: its single sentence selected, padding not.
  EXPECT_EQ(mask.hard.value().at(1, 0), 1.0f);
  EXPECT_EQ(mask.hard.value().at(1, 2), 1.0f);
  EXPECT_EQ(mask.hard.value().at(1, 3), 0.0f);
}

TEST(OneSentenceMaskTest, SoftProbsSumToOneAcrossSentences) {
  data::Batch batch = SentenceBatch();
  auto spans = SegmentSentences(batch, kPeriod);
  Pcg32 data_rng(2);
  Tensor logits = Tensor::Randn({2, 7}, data_rng);
  Pcg32 rng(3);
  nn::GumbelMask mask = SampleOneSentenceMask(
      ag::Variable::Constant(logits), spans, batch.valid, 1.0f,
      /*training=*/false, rng);
  // One representative token per sentence carries that sentence's prob.
  float p0 = mask.soft.value().at(0, 0);
  float p1 = mask.soft.value().at(0, 3);
  EXPECT_NEAR(p0 + p1, 1.0f, 1e-5f);
  EXPECT_NEAR(mask.soft.value().at(1, 0), 1.0f, 1e-5f);  // single sentence
}

TEST(OneSentenceMaskTest, GradientFlowsToLogits) {
  data::Batch batch = SentenceBatch();
  auto spans = SegmentSentences(batch, kPeriod);
  Pcg32 data_rng(4);
  ag::Variable logits = ag::Variable::Param(Tensor::Randn({2, 7}, data_rng));
  Pcg32 rng(5);
  nn::GumbelMask mask = SampleOneSentenceMask(logits, spans, batch.valid, 1.0f,
                                              /*training=*/false, rng);
  // Weighted sum exposes the softmax Jacobian (plain Sum cancels it:
  // sentence probabilities always sum to 1).
  Tensor weights(Shape{2, 7});
  for (int64_t t = 0; t < 7; ++t) weights.at(0, t) = static_cast<float>(t);
  ag::Sum(ag::Mul(mask.hard, ag::Variable::Constant(weights))).Backward();
  EXPECT_TRUE(logits.has_grad());
  EXPECT_GT(Norm2(logits.grad()), 0.0f);
}

TEST(OneSentenceMaskTest, TrainingModeIsStochastic) {
  data::Batch batch = SentenceBatch();
  auto spans = SegmentSentences(batch, kPeriod);
  Tensor logits(Shape{2, 7});  // uniform scores
  Pcg32 rng(6);
  int first_selected = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    nn::GumbelMask mask = SampleOneSentenceMask(
        ag::Variable::Constant(logits), spans, batch.valid, 1.0f,
        /*training=*/true, rng);
    if (mask.hard.value().at(0, 0) > 0.5f) ++first_selected;
  }
  // Two equal-scoring sentences: roughly 50/50 under Gumbel noise. The
  // second sentence is longer (4 vs 3 tokens) but scores are means, so
  // length does not bias selection.
  EXPECT_GT(first_selected, kTrials / 4);
  EXPECT_LT(first_selected, 3 * kTrials / 4);
}

TEST(SentenceModelsTest, TrainLossFiniteAndEvalMaskOneSentence) {
  datasets::SyntheticDataset ds = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAroma, {.train = 64, .dev = 16, .test = 16}, 95);
  TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  config.batch_size = 16;
  config.dropout = 0.0f;
  for (const char* name : {"RNP*", "A2R*"}) {
    auto model = eval::MakeMethod(name, ds, config);
    data::DataLoader loader(ds.train, 16, /*shuffle=*/false);
    data::Batch batch = loader.Sequential()[0];
    model->SetTraining(true);
    ag::Variable loss = model->TrainLoss(batch);
    EXPECT_TRUE(std::isfinite(loss.value().item())) << name;
    loss.Backward();

    Tensor mask = model->EvalMask(batch);
    auto spans = SegmentSentences(batch, ds.vocab.IdOrUnk("."));
    for (int64_t i = 0; i < batch.batch_size(); ++i) {
      // Exactly one contiguous sentence selected.
      int64_t selected_sentences = 0;
      for (const SentenceSpan& s : spans[static_cast<size_t>(i)]) {
        bool all = true, any = false;
        for (int64_t t = s.begin; t < s.end; ++t) {
          if (mask.at(i, t) > 0.5f) {
            any = true;
          } else {
            all = false;
          }
        }
        EXPECT_EQ(all, any) << name << ": partial sentence selection";
        if (any) ++selected_sentences;
      }
      EXPECT_EQ(selected_sentences, 1) << name;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace dar
