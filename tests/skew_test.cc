// Tests for the skewed-initialization settings (Tables VII & VIII).
#include "core/skew.h"

#include <gtest/gtest.h>

#include "core/rnp.h"
#include "core/trainer.h"
#include "data/dataloader.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "nn/loss.h"

namespace dar {
namespace core {
namespace {

const datasets::SyntheticDataset& SkewDataset() {
  static const datasets::SyntheticDataset& ds = *new datasets::SyntheticDataset(
      datasets::MakeBeerDataset(datasets::BeerAspect::kAroma,
                                {.train = 128, .dev = 32, .test = 32},
                                /*seed=*/17));
  return ds;
}

TrainConfig SkewConfig() {
  TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  config.batch_size = 16;
  config.dropout = 0.0f;
  return config;
}

TEST(FirstSentenceMaskTest, CoversUpToFirstPeriod) {
  const datasets::SyntheticDataset& ds = SkewDataset();
  int64_t period = ds.vocab.IdOrUnk(".");
  data::DataLoader loader(ds.train, 8, /*shuffle=*/false);
  data::Batch batch = loader.Sequential()[0];
  Tensor mask = FirstSentenceMask(batch, period);
  for (int64_t i = 0; i < batch.batch_size(); ++i) {
    bool seen_period = false;
    for (int64_t j = 0; j < batch.max_len(); ++j) {
      if (batch.valid.at(i, j) == 0.0f) {
        EXPECT_EQ(mask.at(i, j), 0.0f);
        continue;
      }
      if (seen_period) {
        EXPECT_EQ(mask.at(i, j), 0.0f);
      } else {
        EXPECT_EQ(mask.at(i, j), 1.0f);
      }
      if (batch.tokens[static_cast<size_t>(i)][static_cast<size_t>(j)] ==
          period) {
        seen_period = true;
      }
    }
    EXPECT_TRUE(seen_period);  // every synthetic review has sentences
  }
}

TEST(SkewPredictorTest, LearnsFirstSentenceOnly) {
  const datasets::SyntheticDataset& ds = SkewDataset();
  TrainConfig config = SkewConfig();
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  Pcg32 rng(3);
  Predictor predictor(embeddings, config, rng);
  // Aroma labels vs appearance-only input: the first sentence is only
  // *correlated* with the aroma label, so accuracy should be above chance
  // (correlation) but well below the full-text ceiling.
  float acc = SkewPredictorPretrain(predictor, ds, /*epochs=*/4, rng,
                                    /*batch_size=*/32, /*lr=*/2e-3f);
  EXPECT_GT(acc, 0.4f);
  EXPECT_LT(acc, 0.95f);
}

TEST(SkewGeneratorTest, ReachesRequestedThreshold) {
  const datasets::SyntheticDataset& ds = SkewDataset();
  TrainConfig config = SkewConfig();
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  Pcg32 rng(4);
  Generator generator(embeddings, config, rng);
  float pre_acc = SkewGeneratorPretrain(generator, ds,
                                        /*accuracy_threshold=*/0.75f, rng,
                                        /*max_epochs=*/40, /*batch_size=*/32,
                                        /*lr=*/2e-3f);
  EXPECT_GE(pre_acc, 0.75f);
}

TEST(SkewGeneratorTest, FirstTokenSelectionLeaksLabel) {
  const datasets::SyntheticDataset& ds = SkewDataset();
  TrainConfig config = SkewConfig();
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  Pcg32 rng(5);
  Generator generator(embeddings, config, rng);
  SkewGeneratorPretrain(generator, ds, 0.8f, rng, 40, 32, 2e-3f);
  generator.SetTraining(false);
  // Check the leak on held-out data: token-0 selection == label.
  data::DataLoader loader(ds.dev, 16, /*shuffle=*/false);
  int64_t correct = 0, total = 0;
  for (const data::Batch& batch : loader.Sequential()) {
    Tensor mask = generator.DeterministicMask(batch);
    for (int64_t i = 0; i < batch.batch_size(); ++i) {
      bool selected = mask.at(i, 0) > 0.5f;
      if (selected == (batch.labels[static_cast<size_t>(i)] == 1)) ++correct;
      ++total;
    }
  }
  EXPECT_GT(static_cast<float>(correct) / static_cast<float>(total), 0.65f);
}

TEST(SkewPredictorTest, PretrainedPredictorPluggableIntoGame) {
  // The Table VII protocol: pretrain the predictor skewed, then run the
  // cooperative game from that initialization.
  const datasets::SyntheticDataset& ds = SkewDataset();
  TrainConfig config = SkewConfig();
  config.epochs = 1;
  config.pretrain_epochs = 1;
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  RnpModel rnp(embeddings, config);
  Pcg32 rng(6);
  SkewPredictorPretrain(rnp.predictor(), ds, /*epochs=*/2, rng, 32, 2e-3f);
  TrainRun run = Fit(rnp, ds);
  EXPECT_EQ(run.epochs.size(), 1u);  // game runs to completion from skew init
}

}  // namespace
}  // namespace core
}  // namespace dar
