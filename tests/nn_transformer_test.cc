// Tests for multi-head attention and the Transformer encoder.
#include "nn/transformer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace nn {
namespace {

TransformerConfig SmallConfig() {
  TransformerConfig config;
  config.dim = 8;
  config.num_heads = 2;
  config.ffn_dim = 16;
  config.num_layers = 2;
  config.max_len = 12;
  config.dropout = 0.0f;
  return config;
}

TEST(AttentionTest, OutputShape) {
  Pcg32 rng(1);
  MultiHeadAttention mha(8, 2, rng);
  Pcg32 data_rng(2);
  Tensor x = Tensor::Randn({2, 5, 8}, data_rng);
  Tensor valid(Shape{2, 5}, 1.0f);
  ag::Variable out = mha.Forward(ag::Variable::Constant(x), valid);
  EXPECT_EQ(out.value().shape(), (Shape{2, 5, 8}));
}

TEST(AttentionTest, HeadCountMustDivideDim) {
  Pcg32 rng(3);
  EXPECT_DEATH(MultiHeadAttention(8, 3, rng), "divisible");
}

TEST(AttentionTest, PaddedKeysAreIgnored) {
  Pcg32 rng(4);
  MultiHeadAttention mha(4, 1, rng);
  Pcg32 data_rng(5);
  Tensor x1 = Tensor::Randn({1, 4, 4}, data_rng);
  Tensor x2 = x1;
  // Corrupt only the padded position's content.
  for (int64_t j = 0; j < 4; ++j) x2.at(0, 3, j) += 50.0f;
  Tensor valid(Shape{1, 4}, {1, 1, 1, 0});
  Tensor out1 = mha.Forward(ag::Variable::Constant(x1), valid).value();
  Tensor out2 = mha.Forward(ag::Variable::Constant(x2), valid).value();
  // Valid queries must be unaffected by padded keys.
  for (int64_t t = 0; t < 3; ++t) {
    EXPECT_TRUE(SliceTime(out1, t).AllClose(SliceTime(out2, t), 1e-4f));
  }
}

TEST(AttentionTest, MixesInformationAcrossPositions) {
  Pcg32 rng(6);
  MultiHeadAttention mha(4, 2, rng);
  Tensor x1(Shape{1, 3, 4}, 0.1f);
  Tensor x2 = x1;
  x2.at(0, 2, 0) = 5.0f;  // perturb the last position
  Tensor valid(Shape{1, 3}, 1.0f);
  Tensor out1 = mha.Forward(ag::Variable::Constant(x1), valid).value();
  Tensor out2 = mha.Forward(ag::Variable::Constant(x2), valid).value();
  // Position 0's output must change: attention is non-local.
  EXPECT_FALSE(SliceTime(out1, 0).AllClose(SliceTime(out2, 0), 1e-6f));
}

TEST(TransformerTest, OutputShapeAndFiniteness) {
  Pcg32 rng(7);
  TransformerEncoder encoder(SmallConfig(), rng);
  Pcg32 data_rng(8);
  Tensor x = Tensor::Randn({2, 6, 8}, data_rng);
  Tensor valid(Shape{2, 6}, 1.0f);
  Tensor out = encoder.Forward(ag::Variable::Constant(x), valid).value();
  EXPECT_EQ(out.shape(), (Shape{2, 6, 8}));
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out.flat(i)));
  }
}

TEST(TransformerTest, RejectsSequencesBeyondMaxLen) {
  Pcg32 rng(9);
  TransformerEncoder encoder(SmallConfig(), rng);
  Tensor x(Shape{1, 13, 8});  // max_len is 12
  Tensor valid(Shape{1, 13}, 1.0f);
  EXPECT_DEATH(encoder.Forward(ag::Variable::Constant(x), valid), "DAR_CHECK");
}

TEST(TransformerTest, PositionalEmbeddingsBreakPermutationSymmetry) {
  Pcg32 rng(10);
  TransformerEncoder encoder(SmallConfig(), rng);
  encoder.SetTraining(false);
  Tensor x(Shape{1, 2, 8});
  for (int64_t j = 0; j < 8; ++j) {
    x.at(0, 0, j) = 1.0f;
    x.at(0, 1, j) = -1.0f;
  }
  // Swap the two tokens.
  Tensor x_swapped(Shape{1, 2, 8});
  SetTime(x_swapped, 0, SliceTime(x, 1));
  SetTime(x_swapped, 1, SliceTime(x, 0));
  Tensor valid(Shape{1, 2}, 1.0f);
  Tensor out = encoder.Forward(ag::Variable::Constant(x), valid).value();
  Tensor out_swapped =
      encoder.Forward(ag::Variable::Constant(x_swapped), valid).value();
  // Without positions, out_swapped would be out with rows swapped; the
  // positional table must break that symmetry.
  EXPECT_FALSE(SliceTime(out, 0).AllClose(SliceTime(out_swapped, 1), 1e-5f));
}

TEST(TransformerTest, GradientsReachAllParameters) {
  Pcg32 rng(11);
  TransformerConfig config = SmallConfig();
  config.num_layers = 1;
  TransformerEncoder encoder(config, rng);
  Pcg32 data_rng(12);
  Tensor x = Tensor::Randn({1, 3, 8}, data_rng);
  Tensor valid(Shape{1, 3}, 1.0f);
  ag::Variable xv = ag::Variable::Param(x);
  ag::Variable out = encoder.Forward(xv, valid);
  ag::Sum(ag::Mul(out, out)).Backward();
  EXPECT_TRUE(xv.has_grad());
  int64_t with_grad = 0, total = 0;
  for (const NamedParameter& p : encoder.Parameters()) {
    ++total;
    if (p.variable.has_grad() && Norm2(p.variable.grad()) > 0.0f) ++with_grad;
  }
  // All parameters participate (dropout disabled).
  EXPECT_EQ(with_grad, total);
}

TEST(TransformerTest, DropoutOnlyInTraining) {
  Pcg32 rng(13);
  TransformerConfig config = SmallConfig();
  config.dropout = 0.5f;
  TransformerEncoder encoder(config, rng);
  encoder.SetTraining(false);
  Pcg32 data_rng(14);
  Tensor x = Tensor::Randn({1, 4, 8}, data_rng);
  Tensor valid(Shape{1, 4}, 1.0f);
  Tensor out1 = encoder.Forward(ag::Variable::Constant(x), valid).value();
  Tensor out2 = encoder.Forward(ag::Variable::Constant(x), valid).value();
  EXPECT_TRUE(out1.AllClose(out2));  // eval mode is deterministic
}

}  // namespace
}  // namespace nn
}  // namespace dar
