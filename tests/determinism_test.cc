// Eval-mode determinism guard: serving correctness depends on (a) Dropout
// being the identity outside training and (b) EvalMask being deterministic
// across repeated calls — a checkpoint-restored model must answer the same
// request identically every time, from any thread.
#include <gtest/gtest.h>

#include "core/rnp.h"
#include "core/sentence_level.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "nn/dropout.h"

namespace dar {
namespace {

datasets::SyntheticDataset TinyDataset() {
  return datasets::MakeBeerDataset(datasets::BeerAspect::kAroma,
                                   {.train = 30, .dev = 10, .test = 12}, 11);
}

core::TrainConfig TinyConfig() {
  core::TrainConfig config;
  config.embedding_dim = 16;
  config.hidden_dim = 8;
  return config;
}

TEST(DeterminismTest, DropoutEvalModeIsIdentity) {
  Pcg32 rng(5);
  nn::Dropout dropout(0.5f, rng);
  Tensor x = Tensor::Randn({4, 7}, rng);

  dropout.SetTraining(false);
  for (int repeat = 0; repeat < 3; ++repeat) {
    Tensor y = dropout.Forward(ag::Variable::Constant(x)).value();
    ASSERT_EQ(y.numel(), x.numel());
    for (int64_t i = 0; i < x.numel(); ++i) {
      // Bit-exact identity, not merely approximate.
      EXPECT_EQ(y.flat(i), x.flat(i)) << "element " << i;
    }
  }

  // Sanity: the same module in training mode is *not* the identity (some
  // element is zeroed or rescaled), so the guard above is meaningful.
  dropout.SetTraining(true);
  Tensor t = dropout.Forward(ag::Variable::Constant(x)).value();
  bool changed = false;
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (t.flat(i) != x.flat(i)) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(DeterminismTest, EvalMaskDeterministicAcrossRepeatedCalls) {
  datasets::SyntheticDataset dataset = TinyDataset();
  core::TrainConfig config = TinyConfig();
  for (const char* method : {"RNP", "DAR", "VIB", "SPECTRA", "RNP*"}) {
    auto model = eval::MakeMethod(method, dataset, config);
    data::Batch batch =
        data::Batch::FromExamples(dataset.test, 0, 8, data::Vocabulary::kPadId);

    Tensor first = model->EvalMask(batch);
    for (int repeat = 0; repeat < 3; ++repeat) {
      Tensor again = model->EvalMask(batch);
      ASSERT_EQ(again.numel(), first.numel()) << method;
      for (int64_t i = 0; i < first.numel(); ++i) {
        ASSERT_EQ(again.flat(i), first.flat(i))
            << method << " element " << i << " repeat " << repeat;
      }
    }
  }
}

TEST(DeterminismTest, EvalMaskConstMatchesEvalMask) {
  datasets::SyntheticDataset dataset = TinyDataset();
  core::TrainConfig config = TinyConfig();
  for (const char* method : {"RNP", "DAR", "VIB", "SPECTRA", "RNP*"}) {
    auto model = eval::MakeMethod(method, dataset, config);
    data::Batch batch =
        data::Batch::FromExamples(dataset.test, 0, 8, data::Vocabulary::kPadId);

    Tensor toggled = model->EvalMask(batch);
    model->SetTraining(false);
    const core::RationalizerBase& const_model = *model;
    Tensor direct = const_model.EvalMaskConst(batch);
    for (int64_t i = 0; i < toggled.numel(); ++i) {
      ASSERT_EQ(direct.flat(i), toggled.flat(i)) << method << " element " << i;
    }

    // The const predictor path agrees with the toggling one as well.
    Tensor logits_toggled = model->PredictLogits(batch, toggled);
    Tensor logits_direct = const_model.PredictLogitsConst(batch, direct);
    for (int64_t i = 0; i < logits_toggled.numel(); ++i) {
      ASSERT_EQ(logits_direct.flat(i), logits_toggled.flat(i))
          << method << " logit " << i;
    }
  }
}

TEST(DeterminismTest, EvalMaskRestoresTrainingMode) {
  datasets::SyntheticDataset dataset = TinyDataset();
  auto model = eval::MakeMethod("RNP", dataset, TinyConfig());
  data::Batch batch =
      data::Batch::FromExamples(dataset.test, 0, 4, data::Vocabulary::kPadId);

  model->SetTraining(true);
  model->EvalMask(batch);
  EXPECT_TRUE(model->generator().training());
  model->SetTraining(false);
  model->EvalMask(batch);
  EXPECT_FALSE(model->generator().training());
}

}  // namespace
}  // namespace dar
