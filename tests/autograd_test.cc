// Tests for the autograd engine (variable.h + ops.h): graph mechanics,
// known analytic gradients, gradient-flow control.
#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace ag {
namespace {

TEST(VariableTest, LeafBasics) {
  Variable v = Variable::Param(Tensor::FromVector({1.0f, 2.0f}));
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  EXPECT_EQ(v.numel(), 2);
}

TEST(VariableTest, ConstantDoesNotRequireGrad) {
  Variable c = Variable::Constant(Tensor::FromVector({1.0f}));
  EXPECT_FALSE(c.requires_grad());
}

TEST(VariableTest, BackwardThroughAdd) {
  Variable a = Variable::Param(Tensor::FromVector({1.0f, 2.0f}));
  Variable b = Variable::Param(Tensor::FromVector({3.0f, 4.0f}));
  Variable loss = Sum(Add(a, b));
  loss.Backward();
  EXPECT_TRUE(a.grad().AllClose(Tensor::FromVector({1.0f, 1.0f})));
  EXPECT_TRUE(b.grad().AllClose(Tensor::FromVector({1.0f, 1.0f})));
}

TEST(VariableTest, BackwardThroughMulUsesOtherOperand) {
  Variable a = Variable::Param(Tensor::FromVector({2.0f}));
  Variable b = Variable::Param(Tensor::FromVector({5.0f}));
  Sum(Mul(a, b)).Backward();
  EXPECT_EQ(a.grad().at(0), 5.0f);
  EXPECT_EQ(b.grad().at(0), 2.0f);
}

TEST(VariableTest, GradientsAccumulateAcrossBackwards) {
  Variable a = Variable::Param(Tensor::FromVector({1.0f}));
  Sum(MulScalar(a, 3.0f)).Backward();
  EXPECT_EQ(a.grad().at(0), 3.0f);
  Sum(MulScalar(a, 3.0f)).Backward();
  EXPECT_EQ(a.grad().at(0), 6.0f);
  a.ZeroGrad();
  EXPECT_EQ(a.grad().at(0), 0.0f);
}

TEST(VariableTest, DiamondGraphAccumulates) {
  // loss = sum(a*a) -> d/da = 2a.
  Variable a = Variable::Param(Tensor::FromVector({3.0f}));
  Sum(Mul(a, a)).Backward();
  EXPECT_EQ(a.grad().at(0), 6.0f);
}

TEST(VariableTest, ReusedSubexpression) {
  // b = 2a; loss = sum(b + b) = 4a -> grad 4.
  Variable a = Variable::Param(Tensor::FromVector({1.0f}));
  Variable b = MulScalar(a, 2.0f);
  Sum(Add(b, b)).Backward();
  EXPECT_EQ(a.grad().at(0), 4.0f);
}

TEST(VariableTest, DetachBlocksGradient) {
  Variable a = Variable::Param(Tensor::FromVector({2.0f}));
  Variable d = MulScalar(a, 3.0f).Detach();
  EXPECT_FALSE(d.requires_grad());
  Variable b = Variable::Param(Tensor::FromVector({1.0f}));
  Sum(Mul(d, b)).Backward();
  EXPECT_FALSE(a.has_grad());
  EXPECT_EQ(b.grad().at(0), 6.0f);
}

TEST(VariableTest, ConstantInputsDropGraph) {
  Variable c1 = Variable::Constant(Tensor::FromVector({1.0f}));
  Variable c2 = Variable::Constant(Tensor::FromVector({2.0f}));
  Variable out = Add(c1, c2);
  EXPECT_FALSE(out.requires_grad());
  EXPECT_TRUE(out.node()->parents.empty());  // graph not retained
}

TEST(VariableTest, BackwardNonScalarNeedsSeed) {
  Variable a = Variable::Param(Tensor::FromVector({1.0f, 2.0f}));
  Variable y = MulScalar(a, 2.0f);
  EXPECT_DEATH(y.Backward(), "scalar");
  y.Backward(Tensor::FromVector({1.0f, 10.0f}));
  EXPECT_TRUE(a.grad().AllClose(Tensor::FromVector({2.0f, 20.0f})));
}

TEST(VariableTest, DeepChainDoesNotOverflowStack) {
  Variable a = Variable::Param(Tensor::FromVector({1.0f}));
  Variable x = a;
  for (int i = 0; i < 20000; ++i) x = AddScalar(x, 0.0f);
  Sum(x).Backward();
  EXPECT_EQ(a.grad().at(0), 1.0f);
}

TEST(OpsTest, DivGradient) {
  Variable a = Variable::Param(Tensor::FromVector({6.0f}));
  Variable b = Variable::Param(Tensor::FromVector({2.0f}));
  Sum(Div(a, b)).Backward();
  EXPECT_NEAR(a.grad().at(0), 0.5f, 1e-6f);          // 1/b
  EXPECT_NEAR(b.grad().at(0), -6.0f / 4.0f, 1e-6f);  // -a/b^2
}

TEST(OpsTest, SigmoidGradientAtZero) {
  Variable a = Variable::Param(Tensor::FromVector({0.0f}));
  Sum(Sigmoid(a)).Backward();
  EXPECT_NEAR(a.grad().at(0), 0.25f, 1e-6f);
}

TEST(OpsTest, TanhGradientAtZero) {
  Variable a = Variable::Param(Tensor::FromVector({0.0f}));
  Sum(Tanh(a)).Backward();
  EXPECT_NEAR(a.grad().at(0), 1.0f, 1e-6f);
}

TEST(OpsTest, ReluGradientGates) {
  Variable a = Variable::Param(Tensor::FromVector({-1.0f, 2.0f}));
  Sum(Relu(a)).Backward();
  EXPECT_EQ(a.grad().at(0), 0.0f);
  EXPECT_EQ(a.grad().at(1), 1.0f);
}

TEST(OpsTest, MatMulForwardAndGrad) {
  Variable a = Variable::Param(Tensor(Shape{1, 2}, {1.0f, 2.0f}));
  Variable b = Variable::Param(Tensor(Shape{2, 1}, {3.0f, 4.0f}));
  Variable out = MatMul(a, b);
  EXPECT_EQ(out.value().at(0, 0), 11.0f);
  Sum(out).Backward();
  EXPECT_TRUE(a.grad().AllClose(Tensor(Shape{1, 2}, {3.0f, 4.0f})));
  EXPECT_TRUE(b.grad().AllClose(Tensor(Shape{2, 1}, {1.0f, 2.0f})));
}

TEST(OpsTest, MatMulNTMatchesExplicitTranspose) {
  Pcg32 rng(20);
  Tensor ta = Tensor::Randn({3, 4}, rng);
  Tensor tb = Tensor::Randn({5, 4}, rng);
  Variable a = Variable::Param(ta);
  Variable b = Variable::Param(tb);
  Tensor expected = MatMul(ta, Transpose(tb));
  EXPECT_TRUE(MatMulNT(a, b).value().AllClose(expected, 1e-4f));
}

TEST(OpsTest, MeanGradient) {
  Variable a = Variable::Param(Tensor::FromVector({1.0f, 2.0f, 3.0f, 4.0f}));
  Mean(a).Backward();
  EXPECT_TRUE(a.grad().AllClose(Tensor::FromVector({0.25f, 0.25f, 0.25f, 0.25f})));
}

TEST(OpsTest, StraightThroughRoundForwardHardBackwardIdentity) {
  Variable a = Variable::Param(Tensor::FromVector({0.3f, 0.7f}));
  Variable h = StraightThroughRound(a);
  EXPECT_EQ(h.value().at(0), 0.0f);
  EXPECT_EQ(h.value().at(1), 1.0f);
  Sum(MulScalar(h, 2.0f)).Backward();
  EXPECT_TRUE(a.grad().AllClose(Tensor::FromVector({2.0f, 2.0f})));
}

TEST(OpsTest, GradientReversalNegatesAndScales) {
  Variable a = Variable::Param(Tensor::FromVector({1.0f}));
  Variable r = GradientReversal(a, 2.0f);
  EXPECT_EQ(r.value().at(0), 1.0f);  // forward identity
  Sum(MulScalar(r, 3.0f)).Backward();
  EXPECT_EQ(a.grad().at(0), -6.0f);
}

TEST(OpsTest, SoftmaxThenPickIsCrossEntropyShape) {
  Variable logits = Variable::Param(Tensor(Shape{2, 3}, {1, 2, 3, 3, 2, 1}));
  Variable logp = LogSoftmaxRowsOp(logits);
  Variable picked = PickColumns(logp, {2, 0});
  EXPECT_EQ(picked.value().size(0), 2);
  Variable loss = Neg(Mean(picked));
  loss.Backward();
  // Gradient rows sum to zero for log-softmax + pick.
  float row0 = logits.grad().at(0, 0) + logits.grad().at(0, 1) +
               logits.grad().at(0, 2);
  EXPECT_NEAR(row0, 0.0f, 1e-5f);
}

TEST(OpsTest, EmbeddingLookupScattersGradients) {
  Variable table = Variable::Param(Tensor(Shape{3, 2}, {0, 0, 1, 1, 2, 2}));
  Variable out = EmbeddingLookup(table, {{1, 1}, {2, 0}});
  EXPECT_EQ(out.value().at(0, 0, 0), 1.0f);
  EXPECT_EQ(out.value().at(1, 0, 1), 2.0f);
  Sum(out).Backward();
  // Token 1 used twice -> grad 2 per component; tokens 0 and 2 once.
  EXPECT_EQ(table.grad().at(1, 0), 2.0f);
  EXPECT_EQ(table.grad().at(0, 0), 1.0f);
  EXPECT_EQ(table.grad().at(2, 1), 1.0f);
}

TEST(OpsTest, ScaleLastDimForward) {
  Variable x = Variable::Param(Tensor(Shape{1, 2, 2}, {1, 2, 3, 4}));
  Variable s = Variable::Param(Tensor(Shape{1, 2}, {2.0f, 0.0f}));
  Variable out = ScaleLastDim(x, s);
  EXPECT_EQ(out.value().at(0, 0, 1), 4.0f);
  EXPECT_EQ(out.value().at(0, 1, 0), 0.0f);
  Sum(out).Backward();
  EXPECT_EQ(s.grad().at(0, 0), 3.0f);  // sum of fiber (1+2)
  EXPECT_EQ(x.grad().at(0, 1, 0), 0.0f);
}

TEST(OpsTest, SliceStackTimeRoundTrip) {
  Variable x = Variable::Param(Tensor(Shape{2, 3, 1}, {1, 2, 3, 4, 5, 6}));
  std::vector<Variable> steps;
  for (int64_t t = 0; t < 3; ++t) steps.push_back(SliceTimeOp(x, t));
  Variable y = StackTimeOp(steps);
  EXPECT_TRUE(y.value().AllClose(x.value()));
  Sum(y).Backward();
  EXPECT_TRUE(x.grad().AllClose(Tensor(Shape{2, 3, 1}, 1.0f)));
}

TEST(OpsTest, TimeDiffForwardAndGrad) {
  Variable x = Variable::Param(Tensor(Shape{1, 3}, {1.0f, 4.0f, 2.0f}));
  Variable d = TimeDiff(x);
  EXPECT_EQ(d.value().at(0, 0), 3.0f);
  EXPECT_EQ(d.value().at(0, 1), -2.0f);
  Sum(d).Backward();
  // Telescoping: grad = [-1, 0, 1].
  EXPECT_TRUE(x.grad().AllClose(Tensor(Shape{1, 3}, {-1.0f, 0.0f, 1.0f})));
}

TEST(OpsTest, SliceConcatRowsColsRoundTrip) {
  Variable x = Variable::Param(Tensor(Shape{2, 4}, {1, 2, 3, 4, 5, 6, 7, 8}));
  Variable left = SliceCols(x, 0, 2);
  Variable right = SliceCols(x, 2, 2);
  EXPECT_TRUE(ConcatCols(left, right).value().AllClose(x.value()));
  Variable top = SliceRows(x, 0, 1);
  Variable bottom = SliceRows(x, 1, 1);
  EXPECT_TRUE(ConcatRows({top, bottom}).value().AllClose(x.value()));
  Sum(ConcatRows({top, bottom})).Backward();
  EXPECT_TRUE(x.grad().AllClose(Tensor(Shape{2, 4}, 1.0f)));
}

TEST(OpsTest, SumTimeAndRowSum) {
  Variable x = Variable::Param(Tensor(Shape{1, 2, 2}, {1, 2, 3, 4}));
  Variable st = SumTime(x);
  EXPECT_EQ(st.value().at(0, 0), 4.0f);
  EXPECT_EQ(st.value().at(0, 1), 6.0f);
  Variable rs = RowSum(Variable::Param(Tensor(Shape{2, 2}, {1, 2, 3, 4})));
  EXPECT_EQ(rs.value().at(0), 3.0f);
  EXPECT_EQ(rs.value().at(1), 7.0f);
}

}  // namespace
}  // namespace ag
}  // namespace dar
