// Tests for core/mlm.h: masked-token pretraining of the Transformer
// encoder (the Table VI BERT stand-in).
#include "core/mlm.h"

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace core {
namespace {

TrainConfig TransformerConfig() {
  TrainConfig config;
  config.embedding_dim = 16;
  config.encoder = EncoderKind::kTransformer;
  config.transformer.dim = 16;
  config.transformer.num_heads = 2;
  config.transformer.ffn_dim = 32;
  config.transformer.num_layers = 1;
  config.transformer.max_len = 96;
  config.transformer.dropout = 0.0f;
  config.dropout = 0.0f;
  return config;
}

const datasets::SyntheticDataset& MlmDataset() {
  static const datasets::SyntheticDataset& ds = *new datasets::SyntheticDataset(
      datasets::MakeBeerDataset(datasets::BeerAspect::kAroma,
                                {.train = 96, .dev = 16, .test = 16},
                                /*seed=*/61));
  return ds;
}

TEST(MlmTest, TrainingImprovesMaskedAccuracyOverChance) {
  const datasets::SyntheticDataset& ds = MlmDataset();
  TrainConfig config = TransformerConfig();
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  Pcg32 rng(1);
  MlmPretrainer pretrainer(embeddings, config,
                           ds.vocab.IdOrUnk("<mask>"), rng);
  MlmConfig mlm;
  mlm.epochs = 4;
  mlm.batch_size = 16;
  mlm.lr = 2e-3f;
  Pcg32 train_rng(2);
  float accuracy = pretrainer.Train(ds, mlm, train_rng);
  // Chance is ~1/vocab (<1%); fillers and aspect words are predictable
  // from context, so a trained model lands far above that.
  EXPECT_GT(accuracy, 0.05f);
}

TEST(MlmTest, InitializeEncoderCopiesWeights) {
  const datasets::SyntheticDataset& ds = MlmDataset();
  TrainConfig config = TransformerConfig();
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  Pcg32 rng(3);
  MlmPretrainer pretrainer(embeddings, config,
                           ds.vocab.IdOrUnk("<mask>"), rng);
  MlmConfig mlm;
  mlm.epochs = 1;
  mlm.batch_size = 16;
  Pcg32 train_rng(4);
  pretrainer.Train(ds, mlm, train_rng);

  Pcg32 p_rng(5);
  Predictor predictor(embeddings, config, p_rng);
  Pcg32 p_rng2(6);
  Predictor control(embeddings, config, p_rng2);
  pretrainer.InitializeEncoder(predictor.encoder());

  // The warm-started predictor's encoder now differs from a fresh one with
  // the same construction seed.
  std::vector<nn::NamedParameter> warm = predictor.encoder().Parameters();
  std::vector<nn::NamedParameter> cold = control.encoder().Parameters();
  ASSERT_EQ(warm.size(), cold.size());
  bool any_diff = false;
  for (size_t i = 0; i < warm.size(); ++i) {
    if (!warm[i].variable.value().AllClose(cold[i].variable.value(), 1e-6f)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(MlmTest, RequiresTransformerEncoder) {
  const datasets::SyntheticDataset& ds = MlmDataset();
  TrainConfig config = TransformerConfig();
  config.encoder = EncoderKind::kBiGru;
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  Pcg32 rng(7);
  EXPECT_DEATH(MlmPretrainer(embeddings, config, 2, rng), "Transformer");
}

}  // namespace
}  // namespace core
}  // namespace dar
