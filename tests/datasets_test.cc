// Tests for the synthetic review generator and the Beer/Hotel dataset
// configurations — the substitution for the paper's corpora.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "datasets/beer.h"
#include "datasets/hotel.h"
#include "datasets/synthetic_review.h"

namespace dar {
namespace datasets {
namespace {

ReviewConfig TinyBeerConfig() {
  ReviewConfig config = BeerReviewConfig(BeerAspect::kAroma,
                                         /*shortcut_strength=*/0.0f);
  // Most structural tests want the noise-free causal skeleton; noise has
  // its own dedicated test below.
  config.polarity_noise = 0.0f;
  return config;
}

TEST(LexiconTest, AspectsAreWellFormed) {
  for (const auto& aspects : {BeerAspects(), HotelAspects()}) {
    EXPECT_EQ(aspects.size(), 5u);
    for (const AspectLexicon& a : aspects) {
      EXPECT_FALSE(a.name.empty());
      EXPECT_GE(a.positive.size(), 6u);
      EXPECT_GE(a.negative.size(), 6u);
      EXPECT_GE(a.neutral.size(), 3u);
    }
  }
}

TEST(LexiconTest, PolaritySetsAreDisjoint) {
  for (const AspectLexicon& a : BeerAspects()) {
    std::set<std::string> pos(a.positive.begin(), a.positive.end());
    for (const std::string& n : a.negative) {
      EXPECT_EQ(pos.count(n), 0u) << a.name << ": " << n;
    }
  }
}

TEST(LexiconTest, FirstBeerAspectIsAppearance) {
  // Table VII's skewed-predictor setting depends on this ordering.
  EXPECT_EQ(BeerAspects()[0].name, "appearance");
}

TEST(GeneratorTest, VocabularyCoversAllLexicons) {
  SyntheticReviewGenerator generator(TinyBeerConfig(), 1);
  data::Vocabulary vocab;
  std::vector<int32_t> family;
  generator.BuildVocabulary(vocab, family);
  for (const AspectLexicon& a : BeerAspects()) {
    for (const std::string& t : a.positive) EXPECT_TRUE(vocab.Contains(t));
    for (const std::string& t : a.negative) EXPECT_TRUE(vocab.Contains(t));
    for (const std::string& t : a.neutral) EXPECT_TRUE(vocab.Contains(t));
  }
  EXPECT_TRUE(vocab.Contains("<mask>"));
  EXPECT_EQ(static_cast<int64_t>(family.size()), vocab.size());
}

TEST(GeneratorTest, FamiliesGroupAspectPolarities) {
  SyntheticReviewGenerator generator(TinyBeerConfig(), 1);
  data::Vocabulary vocab;
  std::vector<int32_t> family;
  generator.BuildVocabulary(vocab, family);
  const AspectLexicon& aroma = BeerAspects()[1];
  int32_t f0 = family[static_cast<size_t>(vocab.IdOrUnk(aroma.positive[0]))];
  for (const std::string& t : aroma.positive) {
    EXPECT_EQ(family[static_cast<size_t>(vocab.IdOrUnk(t))], f0);
  }
  int32_t fneg = family[static_cast<size_t>(vocab.IdOrUnk(aroma.negative[0]))];
  EXPECT_NE(f0, fneg);
  // Fillers have no family.
  EXPECT_EQ(family[static_cast<size_t>(vocab.IdOrUnk("the"))], -1);
}

TEST(GeneratorTest, ExampleContainsTargetPolarityTokens) {
  ReviewConfig config = TinyBeerConfig();
  SyntheticReviewGenerator generator(config, 2);
  data::Vocabulary vocab;
  std::vector<int32_t> family;
  generator.BuildVocabulary(vocab, family);
  const AspectLexicon& aroma = config.aspects[1];
  std::set<int64_t> pos_ids, neg_ids;
  for (const std::string& t : aroma.positive) pos_ids.insert(vocab.IdOrUnk(t));
  for (const std::string& t : aroma.negative) neg_ids.insert(vocab.IdOrUnk(t));

  Pcg32 rng(3);
  for (int64_t label = 0; label <= 1; ++label) {
    for (int trial = 0; trial < 20; ++trial) {
      data::Example ex = generator.MakeExample(vocab, label, true, rng);
      int pos = 0, neg = 0;
      for (int64_t id : ex.tokens) {
        if (pos_ids.count(id)) ++pos;
        if (neg_ids.count(id)) ++neg;
      }
      // The target aspect's sentence carries the label's polarity only.
      if (label == 1) {
        EXPECT_GE(pos, config.min_sentiment_tokens);
        EXPECT_EQ(neg, 0);
      } else {
        EXPECT_GE(neg, config.min_sentiment_tokens);
        EXPECT_EQ(pos, 0);
      }
    }
  }
}

TEST(GeneratorTest, AnnotationMarksTargetAspectTokens) {
  ReviewConfig config = TinyBeerConfig();
  config.annotate_neutral = false;  // rationale = polarity tokens only
  SyntheticReviewGenerator generator(config, 4);
  data::Vocabulary vocab;
  std::vector<int32_t> family;
  generator.BuildVocabulary(vocab, family);
  const AspectLexicon& aroma = config.aspects[1];
  std::set<int64_t> polarity_ids;
  for (const std::string& t : aroma.positive) polarity_ids.insert(vocab.IdOrUnk(t));
  for (const std::string& t : aroma.negative) polarity_ids.insert(vocab.IdOrUnk(t));
  // Generic sentiment words inside the target sentence are gold rationale
  // tokens too.
  for (const std::string& t : GenericPositiveTokens()) {
    polarity_ids.insert(vocab.IdOrUnk(t));
  }
  for (const std::string& t : GenericNegativeTokens()) {
    polarity_ids.insert(vocab.IdOrUnk(t));
  }

  Pcg32 rng(5);
  data::Example ex = generator.MakeExample(vocab, 1, true, rng);
  ASSERT_EQ(ex.rationale.size(), ex.tokens.size());
  for (size_t i = 0; i < ex.tokens.size(); ++i) {
    if (ex.rationale[i]) {
      EXPECT_TRUE(polarity_ids.count(ex.tokens[i]))
          << "annotated token is not an aroma polarity word: "
          << vocab.Token(ex.tokens[i]);
    }
  }
}

TEST(GeneratorTest, UnannotatedExamplesHaveNoRationale) {
  SyntheticReviewGenerator generator(TinyBeerConfig(), 6);
  data::Vocabulary vocab;
  std::vector<int32_t> family;
  generator.BuildVocabulary(vocab, family);
  Pcg32 rng(7);
  data::Example ex = generator.MakeExample(vocab, 0, false, rng);
  EXPECT_TRUE(ex.rationale.empty());
}

TEST(GeneratorTest, SplitsAreBalancedAndAnnotatedCorrectly) {
  SyntheticReviewGenerator generator(TinyBeerConfig(), 8);
  SyntheticDataset ds = generator.Generate(100, 40, 40);
  EXPECT_EQ(ds.train.size(), 100u);
  EXPECT_EQ(ds.dev.size(), 40u);
  EXPECT_EQ(ds.test.size(), 40u);
  auto count_pos = [](const std::vector<data::Example>& split) {
    return std::count_if(split.begin(), split.end(),
                         [](const data::Example& e) { return e.label == 1; });
  };
  EXPECT_EQ(count_pos(ds.train), 50);
  EXPECT_EQ(count_pos(ds.test), 20);
  for (const data::Example& e : ds.train) EXPECT_TRUE(e.rationale.empty());
  for (const data::Example& e : ds.test) EXPECT_FALSE(e.rationale.empty());
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  SyntheticReviewGenerator g1(TinyBeerConfig(), 99);
  SyntheticReviewGenerator g2(TinyBeerConfig(), 99);
  SyntheticDataset d1 = g1.Generate(20, 5, 5);
  SyntheticDataset d2 = g2.Generate(20, 5, 5);
  for (size_t i = 0; i < d1.train.size(); ++i) {
    EXPECT_EQ(d1.train[i].tokens, d2.train[i].tokens);
    EXPECT_EQ(d1.train[i].label, d2.train[i].label);
  }
}

TEST(GeneratorTest, ShortcutFrequencyTracksStrength) {
  ReviewConfig config = TinyBeerConfig();
  config.shortcut_strength = 0.8f;
  SyntheticReviewGenerator generator(config, 10);
  data::Vocabulary vocab;
  std::vector<int32_t> family;
  generator.BuildVocabulary(vocab, family);
  int64_t shortcut_id = vocab.IdOrUnk(config.shortcut_token);
  Pcg32 rng(11);
  int neg_with = 0, pos_with = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    data::Example ex_neg = generator.MakeExample(vocab, 0, false, rng);
    data::Example ex_pos = generator.MakeExample(vocab, 1, false, rng);
    if (std::count(ex_neg.tokens.begin(), ex_neg.tokens.end(), shortcut_id)) {
      ++neg_with;
    }
    if (std::count(ex_pos.tokens.begin(), ex_pos.tokens.end(), shortcut_id)) {
      ++pos_with;
    }
  }
  EXPECT_NEAR(static_cast<double>(neg_with) / kTrials, 0.9, 0.06);
  EXPECT_NEAR(static_cast<double>(pos_with) / kTrials, 0.1, 0.06);
}

TEST(GeneratorTest, PolarityNoiseFlipsTokensButNotAnnotations) {
  ReviewConfig config = TinyBeerConfig();
  config.polarity_noise = 0.3f;
  SyntheticReviewGenerator generator(config, 15);
  data::Vocabulary vocab;
  std::vector<int32_t> family;
  generator.BuildVocabulary(vocab, family);
  const AspectLexicon& aroma = config.aspects[1];
  std::set<int64_t> wrong_pool;  // negative words in a positive review
  for (const std::string& t : aroma.negative) wrong_pool.insert(vocab.IdOrUnk(t));

  Pcg32 rng(16);
  int wrong_tokens = 0, wrong_annotated = 0;
  for (int trial = 0; trial < 100; ++trial) {
    data::Example ex = generator.MakeExample(vocab, /*label=*/1, true, rng);
    for (size_t i = 0; i < ex.tokens.size(); ++i) {
      if (wrong_pool.count(ex.tokens[i])) {
        ++wrong_tokens;
        if (ex.rationale[i]) ++wrong_annotated;
      }
    }
  }
  EXPECT_GT(wrong_tokens, 10);      // noise does inject hedges
  EXPECT_EQ(wrong_annotated, 0);    // hedges are never gold rationale
}

TEST(GeneratorTest, ShortcutIsNeverAnnotated) {
  ReviewConfig config = TinyBeerConfig();
  config.shortcut_strength = 0.9f;
  SyntheticReviewGenerator generator(config, 12);
  data::Vocabulary vocab;
  std::vector<int32_t> family;
  generator.BuildVocabulary(vocab, family);
  int64_t shortcut_id = vocab.IdOrUnk(config.shortcut_token);
  Pcg32 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    data::Example ex = generator.MakeExample(vocab, 0, true, rng);
    for (size_t i = 0; i < ex.tokens.size(); ++i) {
      if (ex.tokens[i] == shortcut_id) EXPECT_EQ(ex.rationale[i], 0);
    }
  }
}

class SparsityCase
    : public ::testing::TestWithParam<std::tuple<int, float, float>> {};

TEST_P(SparsityCase, BeerAnnotationSparsityNearTarget) {
  auto [aspect, low, high] = GetParam();
  SplitSizes sizes{200, 20, 200};
  SyntheticDataset ds = MakeBeerDataset(static_cast<BeerAspect>(aspect), sizes,
                                        /*seed=*/21);
  float sparsity = ds.AnnotationSparsity();
  EXPECT_GE(sparsity, low);
  EXPECT_LE(sparsity, high);
}

// Targets scaled from Table IX (appearance 18.5 > aroma 15.6 > palate 12.4,
// compressed by the shorter synthetic sentences).
INSTANTIATE_TEST_SUITE_P(Aspects, SparsityCase,
                         ::testing::Values(std::tuple{0, 0.10f, 0.22f},
                                           std::tuple{1, 0.08f, 0.20f},
                                           std::tuple{2, 0.07f, 0.18f}));

TEST(BeerDatasetTest, AspectOrderingOfSparsity) {
  SplitSizes sizes{100, 20, 300};
  float appearance =
      MakeBeerDataset(BeerAspect::kAppearance, sizes, 31).AnnotationSparsity();
  float palate =
      MakeBeerDataset(BeerAspect::kPalate, sizes, 31).AnnotationSparsity();
  EXPECT_GT(appearance, palate);  // Table IX ordering
}

TEST(HotelDatasetTest, BuildsAllAspects) {
  SplitSizes sizes{50, 10, 50};
  for (int a = 0; a < 3; ++a) {
    SyntheticDataset ds =
        MakeHotelDataset(static_cast<HotelAspect>(a), sizes, 41);
    EXPECT_EQ(ds.train.size(), 50u);
    EXPECT_GT(ds.AnnotationSparsity(), 0.05f);
    EXPECT_LT(ds.AnnotationSparsity(), 0.25f);
  }
}

TEST(AspectNameTest, Names) {
  EXPECT_EQ(BeerAspectName(BeerAspect::kPalate), "Palate");
  EXPECT_EQ(HotelAspectName(HotelAspect::kService), "Service");
}

}  // namespace
}  // namespace datasets
}  // namespace dar
