// Tests for the HTTP front-end (src/net/): parser conformance against a
// malformed-request corpus, the JSON reader/writer's bit-exact number
// round-trip, and end-to-end loopback serving — bit-identical predict
// responses, 503 load shedding at queue saturation, graceful shutdown
// under in-flight load, and concurrent clients (the TSan lane runs this
// binary to vet the server's threading).
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/rnp.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "net/client.h"
#include "net/http.h"
#include "net/routes.h"
#include "net/server.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "tensor/random.h"

namespace dar {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// HttpParser
// ---------------------------------------------------------------------------

/// Feeds the whole wire image at once; the parser must consume exactly one
/// request's worth of bytes.
size_t FeedAll(HttpParser& parser, const std::string& wire) {
  return parser.Feed(wire.data(), wire.size());
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  std::string wire = "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(FeedAll(parser, wire), wire.size());
  ASSERT_TRUE(parser.done());
  const HttpRequest& r = parser.request();
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/healthz");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_TRUE(r.keep_alive);
  ASSERT_NE(r.FindHeader("host"), nullptr);
  EXPECT_EQ(*r.FindHeader("host"), "localhost");
  EXPECT_TRUE(r.body.empty());
}

TEST(HttpParserTest, ParsesPostBody) {
  HttpParser parser;
  std::string wire =
      "POST /v1/models/beer/predict HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 16\r\n\r\n"
      "{\"text\": \"beer\"}";
  EXPECT_EQ(FeedAll(parser, wire), wire.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "{\"text\": \"beer\"}");
}

TEST(HttpParserTest, ByteAtATimeFeeding) {
  std::string wire =
      "POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
  HttpParser parser;
  for (char c : wire) {
    ASSERT_FALSE(parser.failed());
    EXPECT_EQ(parser.Feed(&c, 1), 1u);
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "abc");
}

TEST(HttpParserTest, PipelinedBytesStayUnconsumed) {
  std::string first = "GET /a HTTP/1.1\r\n\r\n";
  std::string second = "GET /b HTTP/1.1\r\n\r\n";
  std::string wire = first + second;
  HttpParser parser;
  size_t used = FeedAll(parser, wire);
  EXPECT_EQ(used, first.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/a");

  parser.Reset();
  EXPECT_EQ(parser.Feed(wire.data() + used, wire.size() - used),
            second.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/b");
}

TEST(HttpParserTest, KeepAliveSemantics) {
  struct Case {
    const char* wire;
    bool keep_alive;
  };
  const Case cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
      // Connection is a case-insensitive token list.
      {"GET / HTTP/1.0\r\nConnection: Keep-Alive, Upgrade\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: foo, CLOSE\r\n\r\n", false},
  };
  for (const Case& c : cases) {
    HttpParser parser;
    FeedAll(parser, c.wire);
    ASSERT_TRUE(parser.done()) << c.wire;
    EXPECT_EQ(parser.request().keep_alive, c.keep_alive) << c.wire;
  }
}

TEST(HttpParserTest, BareLfAndHeaderNormalization) {
  HttpParser parser;
  std::string wire = "GET /q?x=1 HTTP/1.1\nX-CusTom:  padded value \n\n";
  EXPECT_EQ(FeedAll(parser, wire), wire.size());
  ASSERT_TRUE(parser.done());
  ASSERT_NE(parser.request().FindHeader("x-custom"), nullptr);
  EXPECT_EQ(*parser.request().FindHeader("x-custom"), "padded value");
  EXPECT_EQ(parser.request().Path(), "/q");  // query stripped for routing
  EXPECT_EQ(parser.request().target, "/q?x=1");
}

TEST(HttpParserTest, ZeroContentLengthCompletesImmediately) {
  HttpParser parser;
  FeedAll(parser, "POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParserTest, MalformedCorpusClassified) {
  struct Case {
    std::string wire;
    int status;
  };
  const std::vector<Case> corpus = {
      {"GET /\r\n\r\n", 400},                         // missing version
      {"GET / HTTP/1.1 junk\r\n\r\n", 400},           // extra field
      {"G(T / HTTP/1.1\r\n\r\n", 400},                // method not a token
      {"GET example.com/x HTTP/1.1\r\n\r\n", 400},    // not origin-form
      {std::string("GET /a\x01") + "b HTTP/1.1\r\n\r\n", 400},  // ctl byte
      {"GET / HTTP/2.0\r\n\r\n", 505},
      {"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n", 400},  // obs-fold
      {"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400},
      {"GET / HTTP/1.1\r\nBad Name: x\r\n\r\n", 400},  // space before ':'
      {std::string("GET / HTTP/1.1\r\nX: a\x01") + "b\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
      {"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n",
       400},
      {"POST / HTTP/1.1\r\nContent-Length: 5, 6\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length:\r\n\r\n", 400},
  };
  for (const Case& c : corpus) {
    HttpParser parser;
    FeedAll(parser, c.wire);
    ASSERT_TRUE(parser.failed()) << c.wire;
    EXPECT_EQ(parser.error_status(), c.status) << c.wire;
    EXPECT_FALSE(parser.error_detail().empty());
  }
}

TEST(HttpParserTest, LimitsEnforcedDuringParsing) {
  HttpLimits tight;
  tight.max_request_line = 24;
  {
    HttpParser parser(tight);
    FeedAll(parser,
            "GET /a/very/long/target/that/keeps/going HTTP/1.1\r\n\r\n");
    ASSERT_TRUE(parser.failed());
    EXPECT_EQ(parser.error_status(), 414);
  }
  {
    HttpLimits limits;
    limits.max_header_bytes = 32;
    HttpParser parser(limits);
    FeedAll(parser,
            "GET / HTTP/1.1\r\nX-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
            "aaaaaaaaaaaaaaaa\r\n\r\n");
    ASSERT_TRUE(parser.failed());
    EXPECT_EQ(parser.error_status(), 431);
  }
  {
    HttpLimits limits;
    limits.max_headers = 2;
    HttpParser parser(limits);
    FeedAll(parser, "GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n");
    ASSERT_TRUE(parser.failed());
    EXPECT_EQ(parser.error_status(), 431);
  }
  {
    HttpLimits limits;
    limits.max_body_bytes = 8;
    HttpParser parser(limits);
    FeedAll(parser, "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n");
    ASSERT_TRUE(parser.failed());
    EXPECT_EQ(parser.error_status(), 413);
  }
}

TEST(HttpParserTest, TruncatedPrefixesStayIncomplete) {
  std::string wire =
      "POST /v1/models/beer/predict HTTP/1.1\r\n"
      "Content-Length: 5\r\n\r\nhello";
  // Every strict prefix of a valid request must leave the parser waiting
  // for more bytes — neither complete nor failed.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    HttpParser parser;
    parser.Feed(wire.data(), cut);
    EXPECT_FALSE(parser.done()) << "cut at " << cut;
    EXPECT_FALSE(parser.failed()) << "cut at " << cut;
  }
  HttpParser parser;
  FeedAll(parser, wire);
  EXPECT_TRUE(parser.done());
}

TEST(HttpParserTest, IdleDistinguishesMidRequest) {
  HttpParser parser;
  EXPECT_TRUE(parser.idle());
  parser.Feed("G", 1);
  EXPECT_FALSE(parser.idle());
  parser.Reset();
  EXPECT_TRUE(parser.idle());
}

TEST(HttpParserTest, FuzzedGarbageNeverCrashes) {
  Pcg32 rng(2024);
  for (int round = 0; round < 300; ++round) {
    size_t len = rng.Below(200);
    std::string garbage;
    for (size_t i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.Below(256));
    }
    HttpParser parser;
    // Feed in random-sized chunks; the parser must settle in a sane state
    // without crashing or over-consuming.
    size_t pos = 0;
    while (pos < garbage.size() && !parser.done() && !parser.failed()) {
      size_t chunk = 1 + rng.Below(16);
      chunk = std::min(chunk, garbage.size() - pos);
      size_t used = parser.Feed(garbage.data() + pos, chunk);
      ASSERT_LE(used, chunk);
      if (used == 0) break;  // parser stopped consuming (done/failed)
      pos += used;
    }
    if (parser.failed()) {
      EXPECT_GE(parser.error_status(), 400);
      EXPECT_LT(parser.error_status(), 600);
    }
  }
}

TEST(SerializeResponseTest, WireFormat) {
  HttpResponse response;
  response.status = 404;
  response.body = "{\"error\":\"Not Found\"}";
  response.keep_alive = false;
  response.extra_headers.push_back({"Retry-After", "1"});
  std::string wire = SerializeResponse(response);
  EXPECT_EQ(wire.find("HTTP/1.1 404 Not Found\r\n"), 0u);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 21\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"error\":\"Not Found\"}"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(JsonTest, DumpAndParseRoundTrip) {
  JsonValue value =
      JsonValue::Object()
          .Set("label", JsonValue::Int(1))
          .Set("ok", JsonValue::Bool(true))
          .Set("none", JsonValue::Null())
          .Set("text", JsonValue::Str("a \"quoted\" \\ line\nnext"))
          .Set("probs", JsonValue::Array()
                            .Push(JsonValue::Number(0.25))
                            .Push(JsonValue::Number(0.75)));
  std::string dumped = value.Dump();
  // Member order is preserved — responses are byte-stable.
  EXPECT_EQ(dumped.find("{\"label\":1,\"ok\":true,\"none\":null"), 0u);

  std::string error;
  auto parsed = JsonValue::Parse(dumped, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Find("label")->number_value, 1.0);
  EXPECT_TRUE(parsed->Find("ok")->bool_value);
  EXPECT_EQ(parsed->Find("text")->string_value, "a \"quoted\" \\ line\nnext");
  ASSERT_EQ(parsed->Find("probs")->items.size(), 2u);
  EXPECT_EQ(parsed->Find("probs")->items[1].number_value, 0.75);
  EXPECT_EQ(parsed->Dump(), dumped);
}

TEST(JsonTest, Float32RoundTripsBitExact) {
  // The predict endpoint's bit-identical contract: any float32, widened to
  // double, must survive Dump -> Parse -> narrow back unchanged.
  const float cases[] = {0.1f,
                         1.0f / 3.0f,
                         3.14159274f,
                         0.333333343f,
                         -2.5f,
                         1.17549435e-38f,   // FLT_MIN
                         1.40129846e-45f,   // smallest denormal
                         3.40282347e+38f,   // FLT_MAX
                         6.02214076e23f,
                         -7.77777778e-12f};
  for (float f : cases) {
    std::string dumped = JsonValue::Number(static_cast<double>(f)).Dump();
    auto parsed = JsonValue::Parse(dumped);
    ASSERT_TRUE(parsed.has_value()) << dumped;
    float back = static_cast<float>(parsed->number_value);
    EXPECT_EQ(std::memcmp(&back, &f, sizeof(float)), 0)
        << f << " -> " << dumped << " -> " << back;
  }
}

TEST(JsonTest, IntegralNumbersPrintAsIntegers) {
  EXPECT_EQ(JsonValue::Int(42).Dump(), "42");
  EXPECT_EQ(JsonValue::Int(-3).Dump(), "-3");
  EXPECT_EQ(JsonValue::Number(2.0).Dump(), "2");
}

TEST(JsonTest, UnicodeEscapes) {
  auto parsed = JsonValue::Parse("\"\\u0041\\u00e9\\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.has_value());
  // A, é (C3 A9), 😀 (F0 9F 98 80).
  EXPECT_EQ(parsed->string_value, "A\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  const char* cases[] = {
      "",
      "{",
      "[1, 2",
      "007",
      "1 2",
      "\"unterminated",
      "\"bad \\q escape\"",
      "\"\\ud800 unpaired\"",
      "{\"a\" 1}",
      "{a: 1}",
      "[1,]",
      "nul",
      "1.",
      "1e",
      "--1",
  };
  for (const char* text : cases) {
    std::string error;
    EXPECT_FALSE(JsonValue::Parse(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonTest, DepthCapStopsRunawayNesting) {
  std::string shallow(10, '[');
  shallow += std::string(10, ']');
  EXPECT_TRUE(JsonValue::Parse(shallow).has_value());

  std::string deep(80, '[');
  deep += std::string(80, ']');
  std::string error;
  EXPECT_FALSE(JsonValue::Parse(deep, &error).has_value());
  EXPECT_NE(error.find("nesting"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end loopback serving
// ---------------------------------------------------------------------------

core::TrainConfig TinyConfig() {
  core::TrainConfig config;
  config.embedding_dim = 16;
  config.hidden_dim = 8;
  return config;
}

/// Untrained tiny RNP session: serving correctness (routing, wire format,
/// bit-identical responses) does not require a trained model.
std::shared_ptr<serve::InferenceSession> MakeSession(uint64_t seed = 7) {
  datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAppearance, {.train = 40, .dev = 10, .test = 10},
      seed);
  core::TrainConfig config = TinyConfig();
  config.seed = seed;
  auto model = std::make_unique<core::RnpModel>(
      eval::BuildEmbeddings(dataset, config), config);
  return std::make_shared<serve::InferenceSession>(std::move(model),
                                                   dataset.vocab);
}

/// Everything an e2e test needs, wired together on a kernel-chosen port.
struct Loopback {
  serve::ModelRegistry registry;
  std::unique_ptr<Router> router;
  std::unique_ptr<HttpServer> server;
  std::shared_ptr<serve::InferenceSession> session;

  explicit Loopback(RouterConfig router_config = {},
                    ServerConfig server_config = {}) {
    session = MakeSession();
    router = std::make_unique<Router>(registry, router_config);
    router->ServeModel("beer", session);
    server_config.port = 0;
    if (server_config.metrics == nullptr) {
      server_config.metrics = &router->metrics();
    }
    server = std::make_unique<HttpServer>(router->AsHandler(), server_config);
    std::string error;
    bool started = server->Start(&error);
    EXPECT_TRUE(started) << error;
  }

  ~Loopback() {
    // The server must stop before the router destroys the batchers its
    // in-flight handlers use.
    server->Stop();
  }

  HttpClient Client() { return HttpClient("127.0.0.1", server->port()); }
};

std::string PredictBody(const std::string& text) {
  return JsonValue::Object().Set("text", JsonValue::Str(text)).Dump();
}

/// Asserts an HTTP predict response carries exactly the fields of the
/// directly computed result — the bit-identical serving contract.
void ExpectResponseMatches(const std::string& body,
                           const serve::InferenceResult& direct) {
  std::string error;
  auto json = JsonValue::Parse(body, &error);
  ASSERT_TRUE(json.has_value()) << error << " in " << body;
  EXPECT_EQ(static_cast<int64_t>(json->Find("label")->number_value),
            direct.label);
  EXPECT_EQ(static_cast<float>(json->Find("confidence")->number_value),
            direct.confidence);
  const JsonValue* probs = json->Find("probs");
  ASSERT_NE(probs, nullptr);
  ASSERT_EQ(probs->items.size(), direct.probs.size());
  for (size_t i = 0; i < direct.probs.size(); ++i) {
    EXPECT_EQ(static_cast<float>(probs->items[i].number_value),
              direct.probs[i]);
  }
  const JsonValue* tokens = json->Find("tokens");
  ASSERT_EQ(tokens->items.size(), direct.tokens.size());
  for (size_t i = 0; i < direct.tokens.size(); ++i) {
    EXPECT_EQ(tokens->items[i].string_value, direct.tokens[i]);
  }
  const JsonValue* rationale = json->Find("rationale");
  ASSERT_NE(rationale, nullptr);
  const JsonValue* mask = rationale->Find("mask");
  ASSERT_EQ(mask->items.size(), direct.mask.size());
  for (size_t i = 0; i < direct.mask.size(); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(mask->items[i].number_value),
              direct.mask[i]);
  }
  const JsonValue* spans = rationale->Find("spans");
  ASSERT_EQ(spans->items.size(), direct.spans.size());
  for (size_t i = 0; i < direct.spans.size(); ++i) {
    EXPECT_EQ(static_cast<int64_t>(
                  spans->items[i].Find("begin")->number_value),
              direct.spans[i].begin);
    EXPECT_EQ(static_cast<int64_t>(spans->items[i].Find("end")->number_value),
              direct.spans[i].end);
  }
  EXPECT_EQ(rationale->Find("text")->string_value, direct.rationale_text);
}

TEST(HttpEndToEndTest, HealthzAndModels) {
  Loopback loop;
  HttpClient client = loop.Client();

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.has_value()) << client.error();
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"ok\""), std::string::npos);
  EXPECT_NE(health->body.find("\"models\":1"), std::string::npos);

  auto models = client.Get("/v1/models");
  ASSERT_TRUE(models.has_value()) << client.error();
  EXPECT_EQ(models->status, 200);
  EXPECT_NE(models->body.find("\"name\":\"beer\""), std::string::npos);
  EXPECT_NE(models->body.find("/v1/models/beer/predict"), std::string::npos);
}

TEST(HttpEndToEndTest, PredictBitIdenticalToDirectSession) {
  Loopback loop;
  HttpClient client = loop.Client();
  const std::string texts[] = {
      "the beer looks wonderful and golden",
      "flat and murky pour with no head",
      "",  // empty text must stay servable
      "one",
  };
  for (const std::string& text : texts) {
    serve::InferenceResult direct = loop.session->Predict(text);
    auto response =
        client.Post("/v1/models/beer/predict", PredictBody(text));
    ASSERT_TRUE(response.has_value()) << client.error();
    ASSERT_EQ(response->status, 200) << response->body;
    ExpectResponseMatches(response->body, direct);
  }
  // Keep-alive carried all four requests on one connection.
  EXPECT_TRUE(client.connected());
}

TEST(HttpEndToEndTest, RoutingErrors) {
  Loopback loop;
  HttpClient client = loop.Client();

  auto missing = client.Get("/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  auto wrong_method = client.Get("/v1/models/beer/predict");
  ASSERT_TRUE(wrong_method.has_value());
  EXPECT_EQ(wrong_method->status, 405);
  ASSERT_NE(wrong_method->FindHeader("allow"), nullptr);
  EXPECT_EQ(*wrong_method->FindHeader("allow"), "POST");

  auto unknown_model =
      client.Post("/v1/models/ghost/predict", PredictBody("x"));
  ASSERT_TRUE(unknown_model.has_value());
  EXPECT_EQ(unknown_model->status, 404);

  auto bad_json = client.Post("/v1/models/beer/predict", "{not json");
  ASSERT_TRUE(bad_json.has_value());
  EXPECT_EQ(bad_json->status, 400);

  auto no_text = client.Post("/v1/models/beer/predict", "{\"txt\": \"x\"}");
  ASSERT_TRUE(no_text.has_value());
  EXPECT_EQ(no_text->status, 400);

  auto not_object = client.Post("/v1/models/beer/predict", "[1,2]");
  ASSERT_TRUE(not_object.has_value());
  EXPECT_EQ(not_object->status, 400);

  auto post_models = client.Request("POST", "/v1/models", "{}");
  ASSERT_TRUE(post_models.has_value());
  EXPECT_EQ(post_models->status, 405);
}

TEST(HttpEndToEndTest, MetricsExposePerModelAndPerRouteSeries) {
  Loopback loop;
  HttpClient client = loop.Client();
  ASSERT_TRUE(
      client.Post("/v1/models/beer/predict", PredictBody("a fine beer"))
          .has_value());
  ASSERT_TRUE(client.Get("/healthz").has_value());

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.has_value()) << client.error();
  EXPECT_EQ(metrics->status, 200);
  ASSERT_NE(metrics->FindHeader("content-type"), nullptr);
  EXPECT_NE(metrics->FindHeader("content-type")->find("text/plain"),
            std::string::npos);
  // Per-model serving series (satellite: model-labeled ServingStats).
  EXPECT_NE(metrics->body.find("serve_requests_total{model=\"beer\"} 1"),
            std::string::npos)
      << metrics->body;
  // Per-route HTTP series.
  EXPECT_NE(metrics->body.find("http_requests_total{route=\"predict\","
                               "model=\"beer\",code=\"200\"} 1"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("http_requests_total{route=\"healthz\","
                               "code=\"200\"} 1"),
            std::string::npos)
      << metrics->body;
  // Connection accounting flows into the same registry.
  EXPECT_NE(metrics->body.find("http_connections_total"), std::string::npos);
}

TEST(HttpEndToEndTest, MalformedRequestAnswers400OverTheWire) {
  Loopback loop;
  HttpClient client = loop.Client();
  // "/a b" serializes to a request line with four fields.
  auto response = client.Request("GET", "/a b");
  ASSERT_TRUE(response.has_value()) << client.error();
  EXPECT_EQ(response->status, 400);
  // The server closes after a parse error; the client notices.
  EXPECT_FALSE(response->keep_alive);
}

TEST(HttpEndToEndTest, OversizedBodyAnswers413) {
  ServerConfig server_config;
  server_config.limits.max_body_bytes = 64;
  Loopback loop({}, server_config);
  HttpClient client = loop.Client();
  auto response = client.Post("/v1/models/beer/predict",
                              PredictBody(std::string(200, 'x')));
  ASSERT_TRUE(response.has_value()) << client.error();
  EXPECT_EQ(response->status, 413);
}

TEST(HttpEndToEndTest, QueueSaturationSheds503WithoutHanging) {
  // One lingering worker holds the first request in the queue for the
  // whole max_wait window (it lingers *without* dequeuing until the batch
  // fills), so with max_queue == 1 the second concurrent predict
  // deterministically finds the queue full.
  RouterConfig router_config;
  router_config.batcher = {.max_batch = 8,
                           .max_wait_us = 1'500'000,
                           .num_workers = 1,
                           .max_queue = 1};
  Loopback loop(router_config);

  std::thread first([&] {
    HttpClient client = loop.Client();
    auto response =
        client.Post("/v1/models/beer/predict", PredictBody("slow one"));
    ASSERT_TRUE(response.has_value()) << client.error();
    EXPECT_EQ(response->status, 200);  // served once the linger expires
  });
  // Let the first request reach the batcher queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  HttpClient client = loop.Client();
  auto start = std::chrono::steady_clock::now();
  auto shed = client.Post("/v1/models/beer/predict", PredictBody("shed me"));
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(shed.has_value()) << client.error();
  EXPECT_EQ(shed->status, 503) << shed->body;
  ASSERT_NE(shed->FindHeader("retry-after"), nullptr);
  // The 503 must shed immediately, not wait behind the lingering batch.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
  first.join();
}

TEST(HttpEndToEndTest, ConcurrentClientsGetBitIdenticalResponses) {
  Loopback loop;
  const std::vector<std::string> texts = {
      "a golden pour with creamy head",
      "smells of hops and citrus",
      "watery and flat",
      "rich malt backbone",
  };
  std::vector<serve::InferenceResult> direct;
  for (const std::string& text : texts) {
    direct.push_back(loop.session->Predict(text));
  }

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client = loop.Client();
      for (int i = 0; i < kRequestsPerThread; ++i) {
        size_t pick = static_cast<size_t>((t + i) % texts.size());
        auto response = client.Post("/v1/models/beer/predict",
                                    PredictBody(texts[pick]));
        if (!response.has_value() || response->status != 200) {
          failures.fetch_add(1);
          continue;
        }
        ExpectResponseMatches(response->body, direct[pick]);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(HttpEndToEndTest, GracefulShutdownUnderInFlightLoad) {
  Loopback loop;
  std::atomic<bool> done{false};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      HttpClient client = loop.Client();
      while (!done.load()) {
        auto response = client.Post("/v1/models/beer/predict",
                                    PredictBody("drain me gracefully"));
        if (!response.has_value()) {
          // Connection refused/closed: the server is stopping. Every
          // *answered* request must still be a complete, valid response.
          break;
        }
        EXPECT_TRUE(response->status == 200 || response->status == 503)
            << response->status;
        if (response->status == 200) served.fetch_add(1);
      }
    });
  }
  // Let load build, then stop mid-flight: Stop() must drain in-flight
  // requests (no hang, no crash, no torn responses) and return.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  loop.server->Stop();
  done.store(true);
  for (std::thread& thread : clients) thread.join();
  EXPECT_FALSE(loop.server->running());
  EXPECT_GT(served.load(), 0);

  // The port no longer answers.
  HttpClient after("127.0.0.1", loop.server->port(), /*timeout_ms=*/500);
  EXPECT_FALSE(after.Get("/healthz").has_value());
}

TEST(HttpEndToEndTest, RequestTimeoutAnswers408) {
  ServerConfig server_config;
  server_config.read_timeout_ms = 200;
  Loopback loop({}, server_config);

  // Raw socket: send half a request and stall.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(loop.server->port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char partial[] = "GET /healthz HT";
  ASSERT_EQ(::send(fd, partial, sizeof(partial) - 1, 0),
            static_cast<ssize_t>(sizeof(partial) - 1));

  std::string received;
  char buf[1024];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 2000) <= 0) break;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    received.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(received.find("408"), std::string::npos) << received;
}

}  // namespace
}  // namespace net
}  // namespace dar
