// End-to-end integration tests: the full train-and-evaluate pipeline on a
// small synthetic dataset. These verify *learning dynamics*, not just
// plumbing: predictors learn, generators find informative tokens, DAR's
// alignment improves rationale quality over vanilla RNP under shortcuts.
#include <gtest/gtest.h>

#include "core/dar.h"
#include "core/rnp.h"
#include "core/trainer.h"
#include "datasets/beer.h"
#include "datasets/hotel.h"
#include "eval/experiment.h"

namespace dar {
namespace {

datasets::SyntheticDataset SmallBeer(float shortcut, uint64_t seed) {
  return datasets::MakeBeerDataset(datasets::BeerAspect::kAppearance,
                                   {.train = 400, .dev = 100, .test = 100},
                                   seed, shortcut);
}

core::TrainConfig SmallConfig(const datasets::SyntheticDataset& ds) {
  core::TrainConfig config;
  config.embedding_dim = 16;
  config.hidden_dim = 12;
  config.batch_size = 40;
  config.epochs = 8;
  config.pretrain_epochs = 5;
  // The test datasets are 4x smaller than the bench ones; a higher learning
  // rate compensates for the reduced step count per epoch.
  config.lr = 3e-3f;
  config.seed = 11;
  return config.WithSparsityTarget(ds.AnnotationSparsity());
}

TEST(IntegrationTest, FullTextPredictorLearnsTask) {
  datasets::SyntheticDataset ds = SmallBeer(0.5f, 23);
  core::TrainConfig config = SmallConfig(ds);
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  Pcg32 rng(1);
  core::Predictor predictor(embeddings, config, rng);
  float acc = core::FitFullTextPredictor(predictor, ds, /*epochs=*/6,
                                         config.batch_size, config.lr, rng);
  // The synthetic task is fully determined by the target aspect's tokens.
  EXPECT_GT(acc, 0.9f);
}

TEST(IntegrationTest, RnpGameLearnsToClassifyFromRationale) {
  datasets::SyntheticDataset ds = SmallBeer(0.3f, 29);
  core::TrainConfig config = SmallConfig(ds);
  config.epochs = 12;  // the vanilla game converges slowly (and noisily)
  auto model = eval::MakeMethod("RNP", ds, config);
  eval::MethodResult result = eval::TrainAndEvaluate(*model, ds);
  EXPECT_GT(result.rationale_acc, 0.7f);
  // The selected rationale overlaps the gold one far above chance (~12%
  // precision for random selection at matched sparsity).
  EXPECT_GT(result.rationale.precision, 0.3f);
}

TEST(IntegrationTest, DarBeatsRnpUnderShortcuts) {
  // The headline claim (Tables II/III shape): with a label-correlated
  // shortcut available, DAR's frozen full-text discriminator steers the
  // generator back to the true rationale; vanilla RNP is free to collude.
  datasets::SyntheticDataset ds = SmallBeer(0.7f, 37);
  core::TrainConfig config = SmallConfig(ds);
  auto rnp = eval::MakeMethod("RNP", ds, config);
  eval::MethodResult rnp_result = eval::TrainAndEvaluate(*rnp, ds);
  auto dar_model = eval::MakeMethod("DAR", ds, config);
  eval::MethodResult dar_result = eval::TrainAndEvaluate(*dar_model, ds);
  EXPECT_GT(dar_result.rationale.f1, rnp_result.rationale.f1 - 0.02f);
  // Quality floor at this reduced scale (400 train examples, 8 epochs);
  // bench-scale runs land much higher (see EXPERIMENTS.md).
  EXPECT_GT(dar_result.rationale.f1, 0.35f);
}

TEST(IntegrationTest, DarDiscriminatorReachesHighFullTextAccuracy) {
  datasets::SyntheticDataset ds = SmallBeer(0.5f, 41);
  core::TrainConfig config = SmallConfig(ds);
  Tensor embeddings = eval::BuildEmbeddings(ds, config);
  core::DarModel dar_model(embeddings, config);
  dar_model.Prepare(ds);
  EXPECT_GT(dar_model.discriminator_dev_accuracy(), 0.9f);
}

TEST(IntegrationTest, SparsityLandsNearTarget) {
  datasets::SyntheticDataset ds = SmallBeer(0.3f, 43);
  core::TrainConfig config = SmallConfig(ds);
  auto model = eval::MakeMethod("DAR", ds, config);
  eval::MethodResult result = eval::TrainAndEvaluate(*model, ds);
  EXPECT_GT(result.rationale.sparsity, 0.3f * config.sparsity_target);
  EXPECT_LT(result.rationale.sparsity, 3.5f * config.sparsity_target);
}

TEST(IntegrationTest, TrainRunTracksBestEpoch) {
  datasets::SyntheticDataset ds = SmallBeer(0.3f, 47);
  core::TrainConfig config = SmallConfig(ds);
  config.epochs = 3;
  auto model = eval::MakeMethod("RNP", ds, config);
  eval::MethodResult result = eval::TrainAndEvaluate(*model, ds);
  EXPECT_EQ(result.train_run.epochs.size(), 3u);
  EXPECT_GE(result.train_run.best_epoch, 0);
  EXPECT_LT(result.train_run.best_epoch, 3);
  EXPECT_GE(result.train_run.best_dev_acc,
            result.train_run.epochs[0].dev_acc - 1e-6f);
}

TEST(IntegrationTest, DeterministicGivenSeeds) {
  datasets::SyntheticDataset ds1 = SmallBeer(0.3f, 53);
  datasets::SyntheticDataset ds2 = SmallBeer(0.3f, 53);
  core::TrainConfig config = SmallConfig(ds1);
  config.epochs = 2;
  auto m1 = eval::MakeMethod("RNP", ds1, config);
  auto m2 = eval::MakeMethod("RNP", ds2, config);
  eval::MethodResult r1 = eval::TrainAndEvaluate(*m1, ds1);
  eval::MethodResult r2 = eval::TrainAndEvaluate(*m2, ds2);
  EXPECT_EQ(r1.rationale.f1, r2.rationale.f1);
  EXPECT_EQ(r1.rationale_acc, r2.rationale_acc);
}

}  // namespace
}  // namespace dar
