// Tests for nn/checkpoint.h: parameter save/restore.
#include "nn/checkpoint.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "nn/gru.h"
#include "nn/linear.h"

namespace dar {
namespace nn {
namespace {

TEST(CheckpointTest, RoundTripLinear) {
  Pcg32 rng(1);
  Linear a(4, 3, rng), b(4, 3, rng);
  ASSERT_FALSE(a.weight().value().AllClose(b.weight().value()));
  std::string text = SerializeCheckpoint(a);
  CheckpointResult result = DeserializeCheckpoint(b, text);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(a.weight().value().AllClose(b.weight().value(), 1e-6f));
  EXPECT_TRUE(a.bias().value().AllClose(b.bias().value(), 1e-6f));
}

TEST(CheckpointTest, RoundTripNestedModule) {
  Pcg32 rng(2);
  BiGru a(3, 4, rng), b(3, 4, rng);
  CheckpointResult result = DeserializeCheckpoint(b, SerializeCheckpoint(a));
  ASSERT_TRUE(result.ok) << result.error;
  std::vector<NamedParameter> pa = a.Parameters(), pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].variable.value().AllClose(pb[i].variable.value(), 1e-6f))
        << pa[i].name;
  }
}

TEST(CheckpointTest, RejectsBadMagic) {
  Pcg32 rng(3);
  Linear linear(2, 2, rng);
  CheckpointResult result = DeserializeCheckpoint(linear, "NOTCKPT 1\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("magic"), std::string::npos);
}

TEST(CheckpointTest, RejectsWrongArchitecture) {
  Pcg32 rng(4);
  Linear small(2, 2, rng);
  Linear big(3, 3, rng);
  CheckpointResult result =
      DeserializeCheckpoint(big, SerializeCheckpoint(small));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("shape mismatch"), std::string::npos);
}

TEST(CheckpointTest, RejectsWrongParameterCount) {
  Pcg32 rng(5);
  Linear linear(2, 2, rng);
  BiGru gru(2, 2, rng);
  CheckpointResult result =
      DeserializeCheckpoint(gru, SerializeCheckpoint(linear));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("count mismatch"), std::string::npos);
}

TEST(CheckpointTest, RejectsTruncatedValues) {
  Pcg32 rng(6);
  Linear linear(2, 2, rng);
  std::string text = SerializeCheckpoint(linear);
  text.resize(text.size() / 2);
  Linear other(2, 2, rng);
  EXPECT_FALSE(DeserializeCheckpoint(other, text).ok);
}

TEST(CheckpointTest, FileRoundTrip) {
  Pcg32 rng(7);
  Linear a(3, 2, rng), b(3, 2, rng);
  std::string path = ::testing::TempDir() + "/dar_checkpoint_test.ckpt";
  ASSERT_TRUE(SaveCheckpoint(a, path));
  CheckpointResult result = LoadCheckpoint(b, path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(a.weight().value().AllClose(b.weight().value(), 1e-6f));
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileReportsError) {
  Pcg32 rng(8);
  Linear linear(2, 2, rng);
  CheckpointResult result = LoadCheckpoint(linear, "/nonexistent/x.ckpt");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

TEST(CheckpointTest, PreservesValuesAcrossWholePredictor) {
  // End-to-end: a core::Predictor's full state survives a round trip and
  // produces identical logits.
  core::TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  config.dropout = 0.0f;
  Pcg32 rng(9);
  Tensor embeddings = Tensor::Randn({12, 8}, rng, 0.3f);
  Pcg32 r1(10), r2(11);
  core::Predictor a(embeddings, config, r1);
  core::Predictor b(embeddings, config, r2);
  a.SetTraining(false);
  b.SetTraining(false);

  std::vector<data::Example> examples = {{{2, 3, 4, 5}, 1, {}}};
  data::Batch batch = data::Batch::FromExamples(examples, 0, 1, 0);
  Tensor before_a = a.ForwardFullText(batch).value();
  Tensor before_b = b.ForwardFullText(batch).value();
  ASSERT_FALSE(before_a.AllClose(before_b, 1e-6f));

  CheckpointResult result = DeserializeCheckpoint(b, SerializeCheckpoint(a));
  ASSERT_TRUE(result.ok) << result.error;
  Tensor after_b = b.ForwardFullText(batch).value();
  EXPECT_TRUE(before_a.AllClose(after_b, 1e-5f));
}

}  // namespace
}  // namespace nn
}  // namespace dar
