// Tests for nn/checkpoint.h: parameter save/restore.
#include "nn/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "core/dar.h"
#include "core/predictor.h"
#include "core/rnp.h"
#include "nn/gru.h"
#include "nn/linear.h"

namespace dar {
namespace nn {
namespace {

TEST(CheckpointTest, RoundTripLinear) {
  Pcg32 rng(1);
  Linear a(4, 3, rng), b(4, 3, rng);
  ASSERT_FALSE(a.weight().value().AllClose(b.weight().value()));
  std::string text = SerializeCheckpoint(a);
  CheckpointResult result = DeserializeCheckpoint(b, text);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(a.weight().value().AllClose(b.weight().value(), 1e-6f));
  EXPECT_TRUE(a.bias().value().AllClose(b.bias().value(), 1e-6f));
}

TEST(CheckpointTest, RoundTripNestedModule) {
  Pcg32 rng(2);
  BiGru a(3, 4, rng), b(3, 4, rng);
  CheckpointResult result = DeserializeCheckpoint(b, SerializeCheckpoint(a));
  ASSERT_TRUE(result.ok) << result.error;
  std::vector<NamedParameter> pa = a.Parameters(), pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].variable.value().AllClose(pb[i].variable.value(), 1e-6f))
        << pa[i].name;
  }
}

TEST(CheckpointTest, RejectsBadMagic) {
  Pcg32 rng(3);
  Linear linear(2, 2, rng);
  CheckpointResult result = DeserializeCheckpoint(linear, "NOTCKPT 1\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("magic"), std::string::npos);
}

TEST(CheckpointTest, RejectsWrongArchitecture) {
  Pcg32 rng(4);
  Linear small(2, 2, rng);
  Linear big(3, 3, rng);
  CheckpointResult result =
      DeserializeCheckpoint(big, SerializeCheckpoint(small));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("shape mismatch"), std::string::npos);
}

TEST(CheckpointTest, RejectsWrongParameterCount) {
  Pcg32 rng(5);
  Linear linear(2, 2, rng);
  BiGru gru(2, 2, rng);
  CheckpointResult result =
      DeserializeCheckpoint(gru, SerializeCheckpoint(linear));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("count mismatch"), std::string::npos);
}

TEST(CheckpointTest, RejectsTruncatedValues) {
  Pcg32 rng(6);
  Linear linear(2, 2, rng);
  std::string text = SerializeCheckpoint(linear);
  text.resize(text.size() / 2);
  Linear other(2, 2, rng);
  EXPECT_FALSE(DeserializeCheckpoint(other, text).ok);
}

TEST(CheckpointTest, FileRoundTrip) {
  Pcg32 rng(7);
  Linear a(3, 2, rng), b(3, 2, rng);
  std::string path = ::testing::TempDir() + "/dar_checkpoint_test.ckpt";
  ASSERT_TRUE(SaveCheckpoint(a, path));
  CheckpointResult result = LoadCheckpoint(b, path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(a.weight().value().AllClose(b.weight().value(), 1e-6f));
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileReportsError) {
  Pcg32 rng(8);
  Linear linear(2, 2, rng);
  CheckpointResult result = LoadCheckpoint(linear, "/nonexistent/x.ckpt");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

TEST(CheckpointTest, RoundTripIsBitExact) {
  // A served model must match the trained one exactly: every float must
  // survive the text round trip bit-for-bit, including values that are not
  // representable in few decimal digits and extreme magnitudes.
  Pcg32 rng(42);
  Linear a(8, 8, rng), b(8, 8, rng);
  ag::Variable weight = a.weight();  // shared handle to the parameter node
  Tensor& w = weight.mutable_value();
  w.flat(0) = 1.0f / 3.0f;
  w.flat(1) = 0.1f;
  w.flat(2) = std::numeric_limits<float>::min();       // smallest normal
  w.flat(3) = std::numeric_limits<float>::denorm_min();  // subnormal
  w.flat(4) = std::numeric_limits<float>::max();
  w.flat(5) = -1.0f / 3.0f;
  w.flat(6) = 3.14159274f;
  w.flat(7) = 1e-20f;

  CheckpointResult result = DeserializeCheckpoint(b, SerializeCheckpoint(a));
  ASSERT_TRUE(result.ok) << result.error;
  std::vector<NamedParameter> pa = a.Parameters(), pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    const Tensor& va = pa[i].variable.value();
    const Tensor& vb = pb[i].variable.value();
    ASSERT_EQ(va.numel(), vb.numel());
    EXPECT_EQ(std::memcmp(va.data(), vb.data(),
                          sizeof(float) * static_cast<size_t>(va.numel())),
              0)
        << pa[i].name << " not bit-exact";
  }
}

TEST(CheckpointTest, BundleRoundTripAcrossRationalizer) {
  // Save/LoadRationalizer moves a whole trained model (all player modules)
  // through the multi-module bundle format.
  core::TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  Pcg32 rng(21);
  Tensor embeddings = Tensor::Randn({14, 8}, rng, 0.3f);

  core::DarModel a(embeddings, config);
  config.seed = 777;
  core::DarModel b(embeddings, config);

  std::string path = ::testing::TempDir() + "/dar_bundle_test.ckpt";
  ASSERT_TRUE(core::SaveRationalizer(a, path));
  CheckpointResult result = core::LoadRationalizer(b, path);
  ASSERT_TRUE(result.ok) << result.error;

  // Every module restored bit-exactly, discriminator included.
  std::vector<nn::NamedModule> ma = a.CheckpointModules();
  std::vector<nn::NamedModule> mb = b.CheckpointModules();
  ASSERT_EQ(ma.size(), 3u);
  for (size_t m = 0; m < ma.size(); ++m) {
    std::vector<NamedParameter> pa = ma[m].module->Parameters();
    std::vector<NamedParameter> pb = mb[m].module->Parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
      const Tensor& va = pa[i].variable.value();
      const Tensor& vb = pb[i].variable.value();
      EXPECT_EQ(std::memcmp(va.data(), vb.data(),
                            sizeof(float) * static_cast<size_t>(va.numel())),
                0)
          << ma[m].name << "/" << pa[i].name;
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, BundleRejectsModuleMismatch) {
  core::TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  Pcg32 rng(22);
  Tensor embeddings = Tensor::Randn({14, 8}, rng, 0.3f);

  // DAR has three modules, RNP two: the bundle must refuse to cross-load.
  core::DarModel dar_model(embeddings, config);
  core::RnpModel rnp_model(embeddings, config);
  std::string text = SerializeCheckpoint(dar_model.CheckpointModules());
  CheckpointResult result =
      DeserializeCheckpoint(rnp_model.CheckpointModules(), text);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("module count mismatch"), std::string::npos);

  // A single-module checkpoint is not a bundle and vice versa.
  Linear linear(2, 2, rng);
  result = DeserializeCheckpoint(rnp_model.CheckpointModules(),
                                 SerializeCheckpoint(linear));
  EXPECT_FALSE(result.ok);
  result = DeserializeCheckpoint(linear, text);
  EXPECT_FALSE(result.ok);
}

TEST(CheckpointTest, PreservesValuesAcrossWholePredictor) {
  // End-to-end: a core::Predictor's full state survives a round trip and
  // produces identical logits.
  core::TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  config.dropout = 0.0f;
  Pcg32 rng(9);
  Tensor embeddings = Tensor::Randn({12, 8}, rng, 0.3f);
  Pcg32 r1(10), r2(11);
  core::Predictor a(embeddings, config, r1);
  core::Predictor b(embeddings, config, r2);
  a.SetTraining(false);
  b.SetTraining(false);

  std::vector<data::Example> examples = {{{2, 3, 4, 5}, 1, {}}};
  data::Batch batch = data::Batch::FromExamples(examples, 0, 1, 0);
  Tensor before_a = a.ForwardFullText(batch).value();
  Tensor before_b = b.ForwardFullText(batch).value();
  ASSERT_FALSE(before_a.AllClose(before_b, 1e-6f));

  CheckpointResult result = DeserializeCheckpoint(b, SerializeCheckpoint(a));
  ASSERT_TRUE(result.ok) << result.error;
  Tensor after_b = b.ForwardFullText(batch).value();
  EXPECT_TRUE(before_a.AllClose(after_b, 1e-5f));
}

}  // namespace
}  // namespace nn
}  // namespace dar
