// Rationale-shift demo: a minimal, self-contained reproduction of the
// paper's core diagnosis (Figs. 2 & 3).
//
// We crank the shortcut token's label correlation up, train vanilla RNP
// and DAR, and report (a) how often each model's rationale contains the
// shortcut token, (b) accuracy on rationale vs full text, (c) rationale
// F1. RNP is free to collude through the shortcut; DAR's frozen full-text
// discriminator rejects rationales that deviate from the input semantics.
#include <cstdio>

#include "core/train_config.h"
#include "datasets/hotel.h"
#include "eval/analysis.h"
#include "eval/experiment.h"
#include "eval/table.h"

int main() {
  using namespace dar;

  // Severe shortcut: "-" appears in ~95% of negatives, ~5% of positives.
  datasets::SyntheticDataset dataset = datasets::MakeHotelDataset(
      datasets::HotelAspect::kCleanliness,
      {.train = 800, .dev = 160, .test = 200}, /*seed=*/13,
      /*shortcut_strength=*/0.9f);
  std::printf(
      "Hotel-Cleanliness with a strong '-' shortcut (Fig. 2's pattern):\n"
      "the token alone classifies ~95%% of reviews.\n\n");

  core::TrainConfig config;
  config.epochs = 8;
  config.seed = 13;
  config = config.WithSparsityTarget(dataset.AnnotationSparsity());

  eval::TablePrinter table({"Method", "ShortcutSel%", "Acc(rat.)",
                            "Acc(full)", "F1"});
  for (const char* method : {"RNP", "DAR"}) {
    auto model = eval::MakeMethod(method, dataset, config);
    eval::MethodResult result = eval::TrainAndEvaluate(*model, dataset);
    float shortcut_rate = eval::TokenSelectionRate(
        *model, dataset.test,
        dataset.vocab.IdOrUnk(dataset.config.shortcut_token));
    table.AddRow({result.method, eval::FormatPercent(shortcut_rate),
                  eval::FormatPercent(result.rationale_acc),
                  eval::FormatPercent(result.full_text_acc),
                  eval::FormatPercent(result.rationale.f1)});
  }
  table.Print();
  std::printf(
      "\nReading the table: a model that selects the shortcut often while\n"
      "keeping rationale accuracy high has *shifted* — its predictor reads\n"
      "the deviation, not the semantics (watch the full-text accuracy and\n"
      "F1 drop). DAR should select the shortcut rarely and keep F1 high.\n");
  return 0;
}
