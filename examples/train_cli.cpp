// Command-line driver: train any method on any built-in dataset — or on
// your own corpus files — entirely from flags.
//
//   ./build/examples/train_cli --method DAR --dataset beer-aroma
//   ./build/examples/train_cli --method RNP --dataset hotel-service \
//       --epochs 12 --seed 7 --shortcut 0.9
//   ./build/examples/train_cli --method DAR \
//       --train train.txt --dev dev.txt --test test.txt
//
// Corpus file format (see data/corpus_io.h):
//   <label> <TAB> <tokens> [<TAB> <rationale bits, test split only>]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/train_config.h"
#include "data/corpus_io.h"
#include "datasets/beer.h"
#include "datasets/hotel.h"
#include "eval/analysis.h"
#include "eval/experiment.h"
#include "eval/table.h"

namespace {

struct CliOptions {
  std::string method = "DAR";
  std::string dataset = "beer-appearance";
  std::string train_file, dev_file, test_file;
  int64_t epochs = 10;
  uint64_t seed = 42;
  float shortcut = -1.0f;  // <0: dataset default
  float alpha = -1.0f;     // <0: match gold sparsity
  bool verbose = false;
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [--method M] [--dataset D | --train F --dev F --test F]\n"
      "          [--epochs N] [--seed N] [--shortcut S] [--alpha A] [-v]\n"
      "methods:  RNP DAR DAR-cotrained DMR A2R Inter_RAT CAR 3PLAYER VIB "
      "SPECTRA\n"
      "datasets: beer-appearance beer-aroma beer-palate\n"
      "          hotel-location hotel-service hotel-cleanliness\n",
      argv0);
}

bool Parse(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--method") == 0) {
      const char* v = next("--method");
      if (!v) return false;
      options.method = v;
    } else if (std::strcmp(argv[i], "--dataset") == 0) {
      const char* v = next("--dataset");
      if (!v) return false;
      options.dataset = v;
    } else if (std::strcmp(argv[i], "--train") == 0) {
      const char* v = next("--train");
      if (!v) return false;
      options.train_file = v;
    } else if (std::strcmp(argv[i], "--dev") == 0) {
      const char* v = next("--dev");
      if (!v) return false;
      options.dev_file = v;
    } else if (std::strcmp(argv[i], "--test") == 0) {
      const char* v = next("--test");
      if (!v) return false;
      options.test_file = v;
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      const char* v = next("--epochs");
      if (!v) return false;
      options.epochs = std::atoll(v);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = next("--seed");
      if (!v) return false;
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--shortcut") == 0) {
      const char* v = next("--shortcut");
      if (!v) return false;
      options.shortcut = std::strtof(v, nullptr);
    } else if (std::strcmp(argv[i], "--alpha") == 0) {
      const char* v = next("--alpha");
      if (!v) return false;
      options.alpha = std::strtof(v, nullptr);
    } else if (std::strcmp(argv[i], "-v") == 0 ||
               std::strcmp(argv[i], "--verbose") == 0) {
      options.verbose = true;
    } else {
      PrintUsage(argv[0]);
      return false;
    }
  }
  return true;
}

/// Builds a dataset from --dataset, or from corpus files when given.
bool BuildDataset(const CliOptions& options,
                  dar::datasets::SyntheticDataset& dataset) {
  using namespace dar;
  if (!options.train_file.empty()) {
    if (options.dev_file.empty() || options.test_file.empty()) {
      std::fprintf(stderr, "--train requires --dev and --test too\n");
      return false;
    }
    // User corpus: grow the vocabulary from the train split, freeze for
    // dev/test (unseen tokens -> <unk>), no synthetic families.
    auto load = [&](const std::string& path, bool grow,
                    std::vector<data::Example>& out) {
      data::CorpusLoadResult result =
          data::LoadCorpusFile(path, dataset.vocab, grow);
      if (!result.ok) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), result.error.c_str());
        return false;
      }
      out = std::move(result.examples);
      return true;
    };
    if (!load(options.train_file, true, dataset.train) ||
        !load(options.dev_file, false, dataset.dev) ||
        !load(options.test_file, false, dataset.test)) {
      return false;
    }
    dataset.family.assign(static_cast<size_t>(dataset.vocab.size()), -1);
    return true;
  }

  datasets::SplitSizes sizes{1000, 200, 300};
  const std::string& name = options.dataset;
  auto beer = [&](datasets::BeerAspect aspect) {
    dataset = options.shortcut >= 0.0f
                  ? datasets::MakeBeerDataset(aspect, sizes, options.seed,
                                              options.shortcut)
                  : datasets::MakeBeerDataset(aspect, sizes, options.seed);
  };
  auto hotel = [&](datasets::HotelAspect aspect) {
    dataset = options.shortcut >= 0.0f
                  ? datasets::MakeHotelDataset(aspect, sizes, options.seed,
                                               options.shortcut)
                  : datasets::MakeHotelDataset(aspect, sizes, options.seed);
  };
  if (name == "beer-appearance") {
    beer(datasets::BeerAspect::kAppearance);
  } else if (name == "beer-aroma") {
    beer(datasets::BeerAspect::kAroma);
  } else if (name == "beer-palate") {
    beer(datasets::BeerAspect::kPalate);
  } else if (name == "hotel-location") {
    hotel(datasets::HotelAspect::kLocation);
  } else if (name == "hotel-service") {
    hotel(datasets::HotelAspect::kService);
  } else if (name == "hotel-cleanliness") {
    hotel(datasets::HotelAspect::kCleanliness);
  } else {
    std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;
  CliOptions options;
  if (!Parse(argc, argv, options)) return 1;

  datasets::SyntheticDataset dataset;
  if (!BuildDataset(options, dataset)) return 1;

  core::TrainConfig config;
  config.epochs = options.epochs;
  config.seed = options.seed;
  float gold = dataset.AnnotationSparsity();
  config = config.WithSparsityTarget(
      options.alpha > 0.0f ? options.alpha : (gold > 0.0f ? gold : 0.15f));

  std::printf("method=%s dataset=%s train=%zu dev=%zu test=%zu vocab=%lld "
              "alpha=%.3f seed=%llu\n\n",
              options.method.c_str(), options.dataset.c_str(),
              dataset.train.size(), dataset.dev.size(), dataset.test.size(),
              static_cast<long long>(dataset.vocab.size()),
              config.sparsity_target,
              static_cast<unsigned long long>(options.seed));

  auto model = eval::MakeMethod(options.method, dataset, config);
  eval::MethodResult result =
      eval::TrainAndEvaluate(*model, dataset, options.verbose);

  eval::TablePrinter table(
      {"Method", "S", "Acc", "P", "R", "F1", "FullAcc"});
  table.AddRow({result.method, eval::FormatPercent(result.rationale.sparsity),
                eval::FormatPercent(result.rationale_acc),
                eval::FormatPercent(result.rationale.precision),
                eval::FormatPercent(result.rationale.recall),
                eval::FormatPercent(result.rationale.f1),
                eval::FormatPercent(result.full_text_acc)});
  table.Print();

  // Which tokens does the trained generator like?
  eval::TokenSelectionStats stats = eval::ComputeTokenSelectionStats(
      *model, dataset.test, dataset.vocab.size());
  std::printf("\nmost-selected tokens:");
  for (const std::string& entry :
       eval::MostSelectedTokens(stats, dataset.vocab, 8)) {
    std::printf("  %s", entry.c_str());
  }
  std::printf("\n");
  return 0;
}
