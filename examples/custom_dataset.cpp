// Custom dataset: build a rationalization task for your own domain by
// defining aspect lexicons, then train and evaluate any method on it.
//
// This is the template downstream users follow to apply the library beyond
// the built-in Beer/Hotel analogues (e.g. product or restaurant reviews).
#include <cstdio>

#include "core/train_config.h"
#include "datasets/synthetic_review.h"
#include "eval/experiment.h"
#include "eval/table.h"

int main() {
  using namespace dar;

  // 1. Describe the domain: a movie-review-like task with four aspects.
  //    The first aspect ("acting") is the one we want rationales for.
  datasets::ReviewConfig config;
  config.aspects = {
      {"acting",
       {"brilliant", "nuanced", "captivating", "magnetic", "oscar-worthy",
        "convincing"},
       {"wooden", "overacted", "flat-performance", "miscast", "stilted",
        "cringeworthy"},
       {"acting", "performance", "cast", "lead", "chemistry"}},
      {"plot",
       {"gripping", "clever", "original", "tight", "unpredictable"},
       {"predictable", "convoluted", "hollow", "rushed", "nonsensical"},
       {"plot", "story", "script", "pacing"}},
      {"visuals",
       {"stunning", "gorgeous-shots", "immersive", "breathtaking"},
       {"cheap-looking", "murky-visuals", "choppy", "garish"},
       {"cinematography", "effects", "visuals", "score"}},
      {"theater",
       {"comfy", "clean-seats", "great-sound"},
       {"sticky-floor", "cramped", "noisy-crowd"},
       {"theater", "screening", "seats", "popcorn"}},
  };
  config.target_aspect = 0;
  config.aspect_correlation = 0.3f;
  config.shortcut_strength = 0.5f;  // a spurious "-" marker, as in reviews

  // 2. Generate splits (test split carries gold rationales).
  datasets::SyntheticReviewGenerator generator(config, /*seed=*/77);
  datasets::SyntheticDataset dataset = generator.Generate(800, 160, 200);
  std::printf("movie-review dataset: vocab %lld, gold sparsity %.1f%%\n\n",
              static_cast<long long>(dataset.vocab.size()),
              100.0f * dataset.AnnotationSparsity());

  // 3. Train and compare methods with the standard harness.
  core::TrainConfig train_config;
  train_config.epochs = 8;
  train_config.seed = 77;
  train_config =
      train_config.WithSparsityTarget(dataset.AnnotationSparsity());

  eval::TablePrinter table({"Method", "S", "Acc", "P", "R", "F1"});
  for (const char* method : {"RNP", "A2R", "DAR"}) {
    auto model = eval::MakeMethod(method, dataset, train_config);
    eval::MethodResult r = eval::TrainAndEvaluate(*model, dataset);
    table.AddRow({r.method, eval::FormatPercent(r.rationale.sparsity),
                  eval::FormatPercent(r.rationale_acc),
                  eval::FormatPercent(r.rationale.precision),
                  eval::FormatPercent(r.rationale.recall),
                  eval::FormatPercent(r.rationale.f1)});
  }
  table.Print();
  return 0;
}
