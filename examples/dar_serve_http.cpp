// The serving deployment entry point: train (or restore) a rationalizer,
// publish it through the model registry, and serve it over HTTP.
//
//   ./build/examples/dar_serve_http [--port N] [--epochs N] [--train N]
//                                   [--cache-mb N] [--slow-ms N]
//                                   [--no-tracing]
//
// then, from another terminal:
//
//   curl -s localhost:8080/healthz
//   curl -s localhost:8080/v1/models
//   curl -s -X POST localhost:8080/v1/models/beer-appearance/predict
//        -d '{"text": "the pour is a hazy golden with a thick head"}'
//   curl -s localhost:8080/metrics | grep serve_requests_total
//   curl -s localhost:8080/debug/requests
//   curl -s localhost:8080/debug/trace/<id from X-DAR-Trace-Id>
//
// The model goes through the full deployment path — train, save a
// checkpoint bundle, restore it into a fresh InferenceSession — so what
// serves is what a production restore would serve. SIGINT/SIGTERM drain
// gracefully: in-flight requests finish, then the process exits.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/dar.h"
#include "core/trainer.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "net/routes.h"
#include "net/server.h"
#include "serve/registry.h"
#include "serve/session.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;

  int port = 8080;
  int epochs = 6;
  int train_examples = 400;
  // Serving-cache budget in MiB; 0 disables. On by default here — the
  // deployment entry point should demonstrate the deployed configuration
  // (responses are bit-identical either way; see src/serve/cache.h).
  int cache_mb = 64;
  // Tail-sampling threshold: requests slower than this are retained with
  // their full span tree and reported on stdout with the trace id to paste
  // into /debug/trace/<id>.
  int slow_ms = 250;
  bool tracing = true;
  for (int i = 1; i < argc; ++i) {
    auto int_flag = [&](const char* flag, int* out) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        *out = std::atoi(argv[++i]);
        return true;
      }
      return false;
    };
    if (int_flag("--port", &port) || int_flag("--epochs", &epochs) ||
        int_flag("--train", &train_examples) ||
        int_flag("--cache-mb", &cache_mb) ||
        int_flag("--slow-ms", &slow_ms)) {
      continue;
    }
    if (std::strcmp(argv[i], "--no-tracing") == 0) {
      tracing = false;
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s [--port N] [--epochs N] [--train N] "
                 "[--cache-mb N] [--slow-ms N] [--no-tracing]\n",
                 argv[0]);
    return 2;
  }

  // 1. Train a small DAR model on the synthetic beer-appearance aspect.
  datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAppearance,
      {.train = train_examples, .dev = 80, .test = 100}, /*seed=*/42);
  core::TrainConfig config;
  config.epochs = epochs;
  config.pretrain_epochs = epochs > 2 ? 2 : 0;
  config = config.WithSparsityTarget(dataset.AnnotationSparsity());
  auto trained = std::make_unique<core::DarModel>(
      eval::BuildEmbeddings(dataset, config), config);
  std::printf("training DAR (%lld examples, %lld epochs)...\n",
              static_cast<long long>(dataset.train.size()),
              static_cast<long long>(config.epochs));
  std::fflush(stdout);
  core::Fit(*trained, dataset);

  // 2. Deployment path: save the checkpoint bundle, restore it fresh.
  const char* path = "/tmp/dar_serve_http.ckpt";
  if (!core::SaveRationalizer(*trained, path)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  auto fresh = std::make_unique<core::DarModel>(
      eval::BuildEmbeddings(dataset, config), config);
  std::string error;
  std::shared_ptr<serve::InferenceSession> session =
      serve::InferenceSession::FromCheckpoint(std::move(fresh), dataset.vocab,
                                              path, &error);
  std::remove(path);
  if (session == nullptr) {
    std::fprintf(stderr, "restore failed: %s\n", error.c_str());
    return 1;
  }

  // 3. Registry + router + server. The router owns the metrics registry;
  //    the server shares it so /metrics also carries connection counters.
  serve::ModelRegistry registry;
  net::RouterConfig router_config;
  router_config.tracing.enabled = tracing;
  router_config.tracing.tail.latency_threshold_us =
      static_cast<int64_t>(slow_ms) * 1000;
  if (cache_mb > 0) {
    router_config.serve.cache.enabled = true;
    router_config.serve.cache.capacity_bytes =
        static_cast<size_t>(cache_mb) << 20;
  }
  net::Router router(registry, router_config);
  router.ServeModel("beer-appearance", session);

  net::ServerConfig server_config;
  server_config.port = port;
  server_config.metrics = &router.metrics();
  net::HttpServer server(router.AsHandler(), server_config);
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("listening on port %d\n", server.port());
  std::printf("  curl -s -X POST localhost:%d/v1/models/beer-appearance/predict"
              " -d '{\"text\": \"...\"}'\n", server.port());
  if (tracing) {
    std::printf("tracing on: slow (>%d ms) and errored requests are "
                "reported below; inspect any of them with\n"
                "  curl -s localhost:%d/debug/trace/<trace_id>\n",
                slow_ms, server.port());
  }
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (router.tracer() == nullptr) continue;
    // Surface what the tail sampler caught since the last tick: the trace
    // id printed here is live — /debug/trace/<id> returns the span tree.
    for (const obs::RequestSummary& summary :
         router.tracer()->DrainTailSampled()) {
      std::printf("[%s] trace %s: %s /%s status=%d latency=%lld us "
                  "spans=%u\n",
                  summary.tail_reason ==
                          static_cast<uint8_t>(obs::TailReason::kError)
                      ? "error"
                      : "slow",
                  summary.trace_id, summary.route, summary.model,
                  summary.status,
                  static_cast<long long>(summary.latency_us),
                  summary.total_spans);
      std::fflush(stdout);
    }
  }
  std::printf("draining...\n");
  std::fflush(stdout);
  server.Stop();  // graceful: in-flight requests finish before this returns
  std::printf("stopped\n");
  return 0;
}
