// Rationale inspection: train DAR, then print test reviews with the
// model-selected rationale and the human(-analogue) annotation side by
// side — the qualitative view behind the paper's Fig. 1 / Fig. 2.
//
//   ./build/examples/rationale_inspection [num_examples]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/train_config.h"
#include "data/dataloader.h"
#include "datasets/hotel.h"
#include "eval/experiment.h"
#include "tensor/tensor_ops.h"

int main(int argc, char** argv) {
  using namespace dar;
  int64_t num_examples = argc > 1 ? std::atoll(argv[1]) : 4;

  datasets::SyntheticDataset dataset = datasets::MakeHotelDataset(
      datasets::HotelAspect::kService,
      {.train = 800, .dev = 160, .test = 160}, /*seed=*/3);

  core::TrainConfig config;
  config.epochs = 8;
  config.seed = 3;
  config = config.WithSparsityTarget(dataset.AnnotationSparsity());

  auto model = eval::MakeMethod("DAR", dataset, config);
  eval::MethodResult result = eval::TrainAndEvaluate(*model, dataset);
  std::printf("DAR on Hotel-Service: F1 %.1f, Acc %.1f\n\n",
              100.0f * result.rationale.f1, 100.0f * result.rationale_acc);

  // Render: [token] = model-selected, *token* = gold rationale,
  // [*token*] = both.
  data::DataLoader loader(dataset.test, 16, /*shuffle=*/false);
  int64_t printed = 0;
  for (const data::Batch& batch : loader.Sequential()) {
    Tensor mask = model->EvalMask(batch);
    Tensor logits = model->PredictLogits(batch, mask);
    std::vector<int64_t> preds = ArgMaxRows(logits);
    for (int64_t i = 0; i < batch.batch_size() && printed < num_examples;
         ++i, ++printed) {
      std::printf("--- example %lld: label=%s predicted=%s ---\n",
                  static_cast<long long>(printed),
                  batch.labels[static_cast<size_t>(i)] ? "positive" : "negative",
                  preds[static_cast<size_t>(i)] ? "positive" : "negative");
      std::string line;
      for (int64_t t = 0; t < batch.max_len(); ++t) {
        if (batch.valid.at(i, t) == 0.0f) break;
        bool selected = mask.at(i, t) > 0.5f;
        bool gold = batch.rationales[static_cast<size_t>(i)][static_cast<size_t>(t)] != 0;
        const std::string& token = dataset.vocab.Token(
            batch.tokens[static_cast<size_t>(i)][static_cast<size_t>(t)]);
        std::string rendered = token;
        if (gold) rendered = "*" + rendered + "*";
        if (selected) rendered = "[" + rendered + "]";
        if (!line.empty()) line += ' ';
        line += rendered;
        if (line.size() > 72) {
          std::printf("  %s\n", line.c_str());
          line.clear();
        }
      }
      if (!line.empty()) std::printf("  %s\n", line.c_str());
      std::printf("\n");
    }
    if (printed >= num_examples) break;
  }
  std::printf("legend: [token] = model-selected, *token* = gold rationale\n");
  return 0;
}
