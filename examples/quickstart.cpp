// Quickstart: train DAR on the synthetic Beer-Appearance dataset and print
// rationale quality, next to vanilla RNP for contrast.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/train_config.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "eval/table.h"

int main() {
  using namespace dar;

  // 1. Build a dataset. The synthetic generator mirrors BeerAdvocate's
  //    structure: multi-aspect reviews, token-level gold rationales on the
  //    test split, and a label-correlated shortcut token.
  datasets::SplitSizes sizes;
  sizes.train = 800;
  sizes.dev = 200;
  sizes.test = 200;
  datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAppearance, sizes, /*seed=*/7);
  std::printf("Dataset: %lld train / %lld dev / %lld test, vocab %lld, "
              "gold sparsity %.1f%%\n",
              static_cast<long long>(dataset.train.size()),
              static_cast<long long>(dataset.dev.size()),
              static_cast<long long>(dataset.test.size()),
              static_cast<long long>(dataset.vocab.size()),
              100.0f * dataset.AnnotationSparsity());

  // 2. Configure training. The sparsity target follows the gold sparsity,
  //    as in the paper ("the sparsity of selected rationales is set to be
  //    similar to the percentage of human-annotated rationales").
  core::TrainConfig config;
  config.epochs = 10;
  config.seed = 7;
  config = config.WithSparsityTarget(dataset.AnnotationSparsity());

  // 3. Train RNP and DAR and compare.
  eval::TablePrinter table({"Method", "S", "Acc", "P", "R", "F1", "FullAcc"});
  for (const char* method : {"RNP", "DAR"}) {
    auto model = eval::MakeMethod(method, dataset, config);
    eval::MethodResult r = eval::TrainAndEvaluate(*model, dataset,
                                                  /*verbose=*/true);
    table.AddRow({r.method, eval::FormatPercent(r.rationale.sparsity),
                  eval::FormatPercent(r.rationale_acc),
                  eval::FormatPercent(r.rationale.precision),
                  eval::FormatPercent(r.rationale.recall),
                  eval::FormatPercent(r.rationale.f1),
                  eval::FormatPercent(r.full_text_acc)});
  }
  table.Print();
  return 0;
}
