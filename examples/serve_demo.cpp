// End-to-end serving walkthrough: train DAR -> save checkpoint -> restore
// into an InferenceSession -> register it -> serve concurrent requests
// through the micro-batcher and print rationales + serving stats.
//
//   ./build/examples/serve_demo
#include <cstdio>
#include <future>
#include <memory>

#include "core/dar.h"
#include "core/trainer.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "serve/batcher.h"
#include "serve/registry.h"
#include "serve/session.h"

int main() {
  using namespace dar;

  // 1. Train a small DAR model on the synthetic beer-appearance aspect.
  datasets::SyntheticDataset dataset = datasets::MakeBeerDataset(
      datasets::BeerAspect::kAppearance, {.train = 600, .dev = 120, .test = 150},
      /*seed=*/42);
  core::TrainConfig config;
  config.epochs = 9;
  config.pretrain_epochs = 5;
  config = config.WithSparsityTarget(dataset.AnnotationSparsity());
  auto trained = std::make_unique<core::DarModel>(
      eval::BuildEmbeddings(dataset, config), config);
  std::printf("training DAR (%lld examples, %lld epochs)...\n",
              static_cast<long long>(dataset.train.size()),
              static_cast<long long>(config.epochs));
  core::Fit(*trained, dataset);

  // 2. Save the trained model, then restore it into a serving session —
  //    the exact deployment path (checkpoints restore bit-exactly).
  const char* path = "/tmp/dar_serve_demo.ckpt";
  if (!core::SaveRationalizer(*trained, path)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  auto fresh = std::make_unique<core::DarModel>(
      eval::BuildEmbeddings(dataset, config), config);
  std::string error;
  std::shared_ptr<serve::InferenceSession> session =
      serve::InferenceSession::FromCheckpoint(std::move(fresh), dataset.vocab,
                                              path, &error);
  if (session == nullptr) {
    std::fprintf(stderr, "restore failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("checkpoint restored from %s\n\n", path);

  // 3. Register the session under its aspect name (a production deployment
  //    registers one model per aspect and routes by name).
  serve::ModelRegistry registry;
  registry.Register("beer-appearance", session);

  // 4. Serve requests through the micro-batcher.
  serve::BatcherConfig batcher_config;
  batcher_config.max_batch = 8;
  batcher_config.max_wait_us = 500;
  batcher_config.num_workers = 2;
  serve::MicroBatcher batcher(*registry.Get("beer-appearance"), batcher_config);

  std::vector<std::string> requests;
  {
    // Build requests from real test examples so the rationales are
    // meaningful (served text = the example's tokens).
    for (size_t i = 0; i < 6 && i < dataset.test.size(); ++i) {
      std::string text;
      for (int64_t id : dataset.test[i].tokens) {
        if (!text.empty()) text += ' ';
        text += dataset.vocab.Token(id);
      }
      requests.push_back(text);
    }
  }

  std::vector<std::future<serve::InferenceResult>> futures;
  for (const std::string& text : requests) {
    futures.push_back(batcher.Submit(text));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::InferenceResult result = futures[i].get();
    std::printf("request %zu: label=%lld confidence=%.3f\n", i,
                static_cast<long long>(result.label), result.confidence);
    std::printf("  text:      %.80s...\n", requests[i].c_str());
    std::printf("  rationale: %s\n", result.rationale_text.c_str());
    std::printf("  spans:    ");
    for (const serve::RationaleSpan& span : result.spans) {
      std::printf(" [%lld, %lld)", static_cast<long long>(span.begin),
                  static_cast<long long>(span.end));
    }
    std::printf("\n");
  }

  // 5. Serving stats: the one-line snapshot plus the Prometheus text
  //    exposition a scrape endpoint would return (CI greps a line of it).
  std::printf("\nserving stats: %s\n",
              session->stats().Snapshot().ToString().c_str());
  std::printf("\nprometheus exposition:\n%s",
              session->stats().ExportPrometheus().c_str());
  std::remove(path);
  return 0;
}
