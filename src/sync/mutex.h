// Annotated synchronization layer: the only home of std::mutex outside
// this directory (CI grep-enforces that no `std::mutex` /
// `std::condition_variable` is declared anywhere else under src/).
//
// Three things live here, layered on one wrapper:
//
//   1. Static annotations. sync::Mutex is a Clang TSA capability and
//      sync::MutexLock a scoped one, so `DAR_GUARDED_BY(mu_)` fields and
//      `DAR_REQUIRES(mu_)` helpers are proved locked at compile time
//      under -Wthread-safety (see annotations.h; no-op on GCC).
//
//   2. Lock-rank deadlock detection (mode-gated, default off). Every
//      mutex carries a static Rank; with SetLockRankCheck(true) each
//      thread keeps a held-locks stack and a blocking acquisition whose
//      rank is not strictly greater than every held rank routes a
//      RankViolation through the installed handler (default: print +
//      abort; check/sentinel.h installs one that records a finding in
//      kRecord mode and dumps the flight recorder before aborting
//      otherwise). Equal ranks abort too — that is what catches
//      self-deadlock and shard↔shard cycles. The documented global order:
//
//        rank  10 kRegistry     serve.registry, net.router
//              20 kCacheTable   serve.cache_models (ServeCache model map)
//              25 kCacheShard   serve.cache_shard (per-shard LRU stripes)
//              30 kBatcher      serve.batcher, serve.thread_pool
//              40 kStats        serve.stats, train.reduce
//              50 kObsRegistry  obs.metrics_registry
//              60 kObsDetail    obs.exemplars, obs.trace_collector,
//                               obs.tail_sampler, obs.sync_publish
//              90 kLeaf         check.findings (never holds another lock)
//
//      i.e. registry < cache < batcher < stats < obs < leaf. New code
//      picks the band of the subsystem it lives in; a lock that must nest
//      inside an existing band gets a fresh intermediate rank and a row
//      in this table (DESIGN.md §12 is the canonical copy).
//
//   3. Contention observability (mode-gated, default off). With
//      SetContentionTracking(true) a blocking Lock() that fails the
//      initial try_lock times its wait and charges a per-*name* cumulative
//      counter set (contended acquisitions + wait-time histogram in the
//      shared 1-2-5 microsecond bucket layout). obs/sync_metrics.h
//      publishes the deltas to a MetricsRegistry as
//      `sync_contention_total{mutex=...}` / `sync_wait_us{mutex=...}`,
//      which /metrics exposes. Same-named mutexes (e.g. all cache shards)
//      share one counter set by design.
//
// Cost model, mirroring check/sentinel.h: with both gates off, Lock() and
// Unlock() are two relaxed atomic loads and predictable branches around
// the plain std::mutex ops — bench/serve_throughput gates the off-mode
// overhead at <= 2% like the sentinel and tracing gates.
//
// This header is dependency-free (C++ standard library only): sync sits
// below obs/ in the link order, and obs's own mutexes are sync::Mutex too.
#ifndef DAR_SYNC_MUTEX_H_
#define DAR_SYNC_MUTEX_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sync/annotations.h"

namespace dar {
namespace sync {

/// Static acquisition ranks. A thread may only block on a mutex whose rank
/// is STRICTLY greater than every rank it already holds; see the table in
/// the file comment. Values leave gaps for future intermediate bands.
enum class Rank : int {
  kRegistry = 10,     // serve::ModelRegistry, net::Router endpoint map
  kCacheTable = 20,   // serve::ServeCache model table
  kCacheShard = 25,   // serve::ServeCache per-shard stripes
  kBatcher = 30,      // serve::MicroBatcher, serve::ThreadPool
  kStats = 40,        // serve::ServingStats, trainer gradient reduction
  kObsRegistry = 50,  // obs::MetricsRegistry instrument map
  kObsDetail = 60,    // obs exemplars / trace collectors / tail sampler
  kLeaf = 90,         // check:: findings list — never holds another lock
};

/// One detected acquisition-order inversion: the thread held
/// `held_name` (the highest-ranked lock it holds) and blocked on
/// `acquiring_name` whose rank is not strictly greater.
struct RankViolation {
  const char* held_name;
  int held_rank;
  const char* acquiring_name;
  int acquiring_rank;
};

/// Handler invoked on a rank violation, on the acquiring thread, before
/// the lock is taken. Returning (instead of aborting) lets the
/// acquisition proceed — the kRecord self-test path. Rank checks are
/// suppressed on this thread while the handler runs, so the handler may
/// itself take (leaf) locks.
using RankViolationHandler = void (*)(const RankViolation&);

/// Installs `handler` and returns the previous one. nullptr restores the
/// default handler (render to stderr + abort).
RankViolationHandler SetRankViolationHandler(RankViolationHandler handler);

/// Gates. Both default to off; both are one relaxed atomic load on the
/// Lock() fast path. Toggle at quiesced points — enabling rank checks
/// while locks are already held leaves those holds untracked until
/// released.
void SetLockRankCheck(bool enabled);
void SetContentionTracking(bool enabled);

namespace internal {
extern std::atomic<bool> g_rank_check;
extern std::atomic<bool> g_contention;
struct ContentionCounters;  // per-name cumulative stats (mutex.cc)
ContentionCounters* CountersForName(const char* name);
}  // namespace internal

inline bool LockRankCheckEnabled() {
  return internal::g_rank_check.load(std::memory_order_relaxed);
}
inline bool ContentionTrackingEnabled() {
  return internal::g_contention.load(std::memory_order_relaxed);
}

/// Number of sync::Mutexes the calling thread currently holds, as seen by
/// the rank tracker (0 when rank checking is off). Test hook.
size_t HeldLockCount();

/// Cumulative contention stats for one mutex name (all counters since
/// process start; the obs bridge publishes deltas).
struct MutexContentionStats {
  std::string name;
  uint64_t contention_total = 0;  // blocking acquisitions that waited
  uint64_t wait_us_sum = 0;
  uint64_t wait_us_max = 0;
  /// ContentionBucketBoundsUs().size() + 1 entries (last = overflow),
  /// same layout as obs::DurationBucketsUs().
  std::vector<uint64_t> bucket_counts;
};

/// Snapshot of every name ever registered, in name order.
std::vector<MutexContentionStats> ContentionSnapshot();

/// The wait-histogram bucket edges: the 1-2-5 series from 1us to 1e7us,
/// value-identical to obs::DurationBucketsUs() (sync cannot include obs;
/// tests assert the two stay equal).
const std::vector<double>& ContentionBucketBoundsUs();

/// Annotated, ranked, named mutex. Non-recursive. Name must be a string
/// literal (stored by pointer, keys the contention counter set).
class DAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex(Rank rank, const char* name)
      : rank_(static_cast<int>(rank)),
        name_(name),
        counters_(internal::CountersForName(name)) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DAR_ACQUIRE() {
    if (LockRankCheckEnabled() || ContentionTrackingEnabled()) {
      SlowLock();
      return;
    }
    mu_.lock();
  }

  void Unlock() DAR_RELEASE() {
    if (LockRankCheckEnabled()) SlowUnlockTracking();
    mu_.unlock();
  }

  /// Non-blocking, so it cannot deadlock: no rank check, but a successful
  /// try is pushed on the held stack so later blocking acquisitions are
  /// checked against it.
  bool TryLock() DAR_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (LockRankCheckEnabled()) PushAfterTryLock();
    return true;
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

  /// The underlying handle, for sync::CondVar only.
  std::mutex& native() { return mu_; }

 private:
  void SlowLock();             // rank check + contention timing path
  void SlowUnlockTracking();   // pops the held-stack entry
  void PushAfterTryLock();

  std::mutex mu_;
  const int rank_;
  const char* const name_;
  internal::ContentionCounters* const counters_;
};

/// RAII scoped lock, the only idiom the migrated call sites use:
///
///   sync::MutexLock lock(mu_);
class DAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DAR_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DAR_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to sync::Mutex. No predicate overloads on
/// purpose: Clang TSA cannot annotate lambdas, so callers write the
/// explicit `while (!pred) cv.Wait(mu);` loop and the analysis sees the
/// guarded reads inside it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; reacquires before returning.
  /// The held-lock stack is untouched — the thread still logically holds
  /// `mu` across the wait, and the reacquisition is exempt from rank
  /// checks (waiting re-takes a lock the thread already ordered
  /// correctly).
  void Wait(Mutex& mu) DAR_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Wait() with a timeout; returns false when the timeout elapsed first.
  /// Spurious wakeups return true — callers loop on predicate + deadline.
  bool WaitForUs(Mutex& mu, int64_t timeout_us) DAR_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sync
}  // namespace dar

#endif  // DAR_SYNC_MUTEX_H_
