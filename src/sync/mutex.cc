#include "sync/mutex.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace dar {
namespace sync {

namespace internal {

std::atomic<bool> g_rank_check{false};
std::atomic<bool> g_contention{false};

namespace {
/// Wait-histogram edges: the 1-2-5 series from 1us to 1e7us. Must stay
/// value-identical to obs::DurationBucketsUs() (sync sits below obs and
/// cannot include it); tests/sync_test.cc asserts the equality.
constexpr double kBucketEdgesUs[] = {1,    2,    5,    10,   20,   50,
                                     100,  200,  500,  1000, 2000, 5000,
                                     1e4,  2e4,  5e4,  1e5,  2e5,  5e5,
                                     1e6,  2e6,  5e6,  1e7};
constexpr size_t kNumEdges = sizeof(kBucketEdgesUs) / sizeof(double);
constexpr size_t kNumBuckets = kNumEdges + 1;  // + overflow
}  // namespace

/// Cumulative contention counters shared by every mutex with one name.
/// Write path is relaxed atomics only; entries are leaked (mutexes may be
/// locked during static destruction).
struct ContentionCounters {
  std::atomic<uint64_t> contention_total{0};
  std::atomic<uint64_t> wait_us_sum{0};
  std::atomic<uint64_t> wait_us_max{0};
  std::atomic<uint64_t> buckets[kNumBuckets] = {};

  void Record(uint64_t waited_us) {
    contention_total.fetch_add(1, std::memory_order_relaxed);
    wait_us_sum.fetch_add(waited_us, std::memory_order_relaxed);
    uint64_t seen = wait_us_max.load(std::memory_order_relaxed);
    while (waited_us > seen &&
           !wait_us_max.compare_exchange_weak(seen, waited_us,
                                              std::memory_order_relaxed)) {
    }
    size_t idx = kNumEdges;  // overflow unless an edge covers it
    for (size_t i = 0; i < kNumEdges; ++i) {
      if (static_cast<double>(waited_us) <= kBucketEdgesUs[i]) {
        idx = i;
        break;
      }
    }
    buckets[idx].fetch_add(1, std::memory_order_relaxed);
  }
};

namespace {

/// Name → counters. The map itself is guarded by a plain std::mutex —
/// permitted here (src/sync is the one place the CI grep exempts) and
/// deliberately not a sync::Mutex: it is touched only at Mutex
/// construction, never on a Lock() path, and keeping it primitive means
/// the rank machinery has no lock of its own to order.
std::mutex& NameRegistryMutex() {
  static std::mutex& mu = *new std::mutex;
  return mu;
}

std::map<std::string, ContentionCounters*>& NameRegistry() {
  static auto& m = *new std::map<std::string, ContentionCounters*>;
  return m;
}

// ---- Per-thread held-lock stack --------------------------------------------

constexpr int kMaxHeldLocks = 16;

struct HeldLock {
  const void* mu = nullptr;
  int rank = 0;
  const char* name = nullptr;
};

struct HeldStack {
  HeldLock entries[kMaxHeldLocks];
  int depth = 0;
  /// True while the violation handler runs on this thread: suppresses
  /// recursive rank checks so the handler may take leaf locks (the
  /// sentinel findings list) without re-triggering itself.
  bool in_violation = false;
};

thread_local HeldStack t_held;

[[noreturn]] void DefaultRankViolationHandler(const RankViolation& v) {
  std::fprintf(stderr,
               "DAR lock-rank violation: acquiring '%s' (rank %d) while "
               "holding '%s' (rank %d) — acquisition order must strictly "
               "increase in rank (see src/sync/mutex.h)\n",
               v.acquiring_name, v.acquiring_rank, v.held_name, v.held_rank);
  std::fflush(stderr);
  std::abort();
}

std::atomic<RankViolationHandler> g_violation_handler{
    &DefaultRankViolationHandler};

void CheckRankBeforeBlocking(int rank, const char* name) {
  HeldStack& held = t_held;
  if (held.in_violation || held.depth == 0) return;
  int max_rank = held.entries[0].rank;
  int max_idx = 0;
  for (int i = 1; i < held.depth; ++i) {
    if (held.entries[i].rank >= max_rank) {
      max_rank = held.entries[i].rank;
      max_idx = i;
    }
  }
  if (rank > max_rank) return;
  const RankViolation violation{held.entries[max_idx].name, max_rank, name,
                                rank};
  held.in_violation = true;
  RankViolationHandler handler =
      g_violation_handler.load(std::memory_order_acquire);
  handler(violation);
  held.in_violation = false;
}

void PushHeld(const void* mu, int rank, const char* name) {
  HeldStack& held = t_held;
  if (held.depth >= kMaxHeldLocks) return;  // beyond tracking depth: drop
  held.entries[held.depth++] = HeldLock{mu, rank, name};
}

void PopHeld(const void* mu) {
  HeldStack& held = t_held;
  // Scan from the top: releases are usually LIFO but need not be. A miss
  // (lock acquired before the gate was enabled) is a no-op.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.entries[i].mu != mu) continue;
    for (int j = i; j + 1 < held.depth; ++j) {
      held.entries[j] = held.entries[j + 1];
    }
    --held.depth;
    return;
  }
}

}  // namespace

ContentionCounters* CountersForName(const char* name) {
  std::lock_guard<std::mutex> lock(NameRegistryMutex());
  ContentionCounters*& slot = NameRegistry()[name];
  if (slot == nullptr) slot = new ContentionCounters;
  return slot;
}

}  // namespace internal

RankViolationHandler SetRankViolationHandler(RankViolationHandler handler) {
  if (handler == nullptr) handler = &internal::DefaultRankViolationHandler;
  return internal::g_violation_handler.exchange(handler,
                                                std::memory_order_acq_rel);
}

void SetLockRankCheck(bool enabled) {
  internal::g_rank_check.store(enabled, std::memory_order_relaxed);
}

void SetContentionTracking(bool enabled) {
  internal::g_contention.store(enabled, std::memory_order_relaxed);
}

size_t HeldLockCount() {
  return static_cast<size_t>(internal::t_held.depth);
}

std::vector<MutexContentionStats> ContentionSnapshot() {
  std::vector<MutexContentionStats> out;
  std::lock_guard<std::mutex> lock(internal::NameRegistryMutex());
  for (const auto& [name, counters] : internal::NameRegistry()) {
    MutexContentionStats stats;
    stats.name = name;
    stats.contention_total =
        counters->contention_total.load(std::memory_order_relaxed);
    stats.wait_us_sum = counters->wait_us_sum.load(std::memory_order_relaxed);
    stats.wait_us_max = counters->wait_us_max.load(std::memory_order_relaxed);
    stats.bucket_counts.resize(internal::kNumBuckets);
    for (size_t i = 0; i < internal::kNumBuckets; ++i) {
      stats.bucket_counts[i] =
          counters->buckets[i].load(std::memory_order_relaxed);
    }
    out.push_back(std::move(stats));
  }
  return out;
}

const std::vector<double>& ContentionBucketBoundsUs() {
  static const std::vector<double>& bounds = *new std::vector<double>(
      internal::kBucketEdgesUs,
      internal::kBucketEdgesUs + internal::kNumEdges);
  return bounds;
}

void Mutex::SlowLock() {
  const bool rank_on = LockRankCheckEnabled();
  if (rank_on) internal::CheckRankBeforeBlocking(rank_, name_);
  if (ContentionTrackingEnabled()) {
    if (!mu_.try_lock()) {
      const auto wait_start = std::chrono::steady_clock::now();
      mu_.lock();
      const auto waited =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - wait_start)
              .count();
      counters_->Record(static_cast<uint64_t>(waited < 0 ? 0 : waited));
    }
  } else {
    mu_.lock();
  }
  if (rank_on) internal::PushHeld(this, rank_, name_);
}

void Mutex::SlowUnlockTracking() { internal::PopHeld(this); }

void Mutex::PushAfterTryLock() { internal::PushHeld(this, rank_, name_); }

bool CondVar::WaitForUs(Mutex& mu, int64_t timeout_us) {
  std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
  const std::cv_status status =
      cv_.wait_for(native, std::chrono::microseconds(timeout_us));
  native.release();
  return status == std::cv_status::no_timeout;
}

}  // namespace sync
}  // namespace dar
