// Clang Thread Safety Analysis macros — the compile-time half of the
// thread-safety wall.
//
// Every DAR_* macro wraps one Clang TSA attribute and expands to nothing
// under any other compiler, so the annotations are free documentation for
// GCC builds and become machine-checked invariants under the CI lane that
// compiles src/ with `clang++ -Wthread-safety -Werror=thread-safety`
// (option DAR_THREAD_SAFETY in the top-level CMakeLists).
//
// Usage, in one glance:
//
//   sync::Mutex mu_{sync::Rank::kStats, "serve.stats"};
//   int64_t count_ DAR_GUARDED_BY(mu_);             // field needs mu_ held
//   Entry* table_ DAR_PT_GUARDED_BY(mu_);           // *table_ needs mu_
//   void FlushLocked() DAR_REQUIRES(mu_);           // caller holds mu_
//   void Flush() DAR_EXCLUDES(mu_);                 // caller must NOT hold
//
// The analysis is flow-sensitive but intraprocedural: a helper that
// touches guarded state must carry DAR_REQUIRES so its callers are checked
// at their call sites. Lambdas cannot be annotated — code that waits on a
// condition writes an explicit `while (!pred) cv.Wait(mu)` loop instead of
// a predicate overload (see sync::CondVar). DAR_NO_THREAD_SAFETY_ANALYSIS
// is the escape hatch for the few functions whose safety argument lives
// outside the lock set (e.g. TraceCollector::AdoptBatch reads a collector
// owned exclusively by the calling thread); each use must say why.
#ifndef DAR_SYNC_ANNOTATIONS_H_
#define DAR_SYNC_ANNOTATIONS_H_

#if defined(__clang__)
#define DAR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DAR_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex" names the kind in
/// diagnostics). sync::Mutex is the only holder in this repository.
#define DAR_CAPABILITY(x) DAR_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (sync::MutexLock).
#define DAR_SCOPED_CAPABILITY DAR_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written with the named mutex held.
#define DAR_GUARDED_BY(x) DAR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed with the mutex held
/// (the pointer itself is unguarded).
#define DAR_PT_GUARDED_BY(x) DAR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the caller already holds the named mutex(es).
#define DAR_REQUIRES(...) \
  DAR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and returns with them held.
#define DAR_ACQUIRE(...) DAR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es) the caller held.
#define DAR_RELEASE(...) DAR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the mutex(es) iff it returns the given value.
#define DAR_TRY_ACQUIRE(...) \
  DAR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function precondition: the caller does NOT hold the mutex(es) — the
/// deadlock guard for public entry points of self-locking classes.
#define DAR_EXCLUDES(...) DAR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Accessor that returns a reference to the named capability.
#define DAR_RETURN_CAPABILITY(x) DAR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's safety argument is documented at the use
/// site and cannot be expressed in the lock set.
#define DAR_NO_THREAD_SAFETY_ANALYSIS \
  DAR_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // DAR_SYNC_ANNOTATIONS_H_
