// Raw compute kernels over Tensor.
//
// These are the non-differentiable building blocks; the autograd layer
// composes them into differentiable ops. All functions are shape-checked
// and allocate their outputs (value semantics); the few in-place variants
// are suffixed InPlace and exist for the optimizer hot path.
#ifndef DAR_TENSOR_TENSOR_OPS_H_
#define DAR_TENSOR_TENSOR_OPS_H_

#include <functional>

#include "tensor/tensor.h"

namespace dar {

// ---- Elementwise binary (equal shapes) -------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

/// a += b (equal shapes). Used by gradient accumulation and optimizers.
void AddInPlace(Tensor& a, const Tensor& b);

/// a += scale * b (equal shapes).
void AxpyInPlace(Tensor& a, const Tensor& b, float scale);

/// a *= s.
void ScaleInPlace(Tensor& a, float s);

// ---- Elementwise with scalar ------------------------------------------------

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// ---- Elementwise unary -------------------------------------------------------

/// Applies `fn` elementwise.
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);

Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log of max(a, eps): keeps log finite for near-zero probabilities.
Tensor Log(const Tensor& a, float eps = 1e-12f);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);

// ---- Matrix multiplication ---------------------------------------------------
//
// All three variants are thin wrappers over the blocked, packed,
// deterministically-threaded kernel layer in tensor/gemm.h: large shapes
// take the cache-tiled FMA micro-kernel (optionally fanned out over the
// kernel thread pool, bit-identical for any worker count), tiny shapes a
// low-overhead loop — every path computes the identical per-element fma
// chain. Ops >= 1 MFLOP emit the kDetailed "matmul" span; every op adds
// its 2*m*n*k to the matmul_flops_total counter.

/// C = A * B for 2-D A [m, k] and B [k, n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A^T * B for A [k, m], B [k, n] -> [m, n]. (Backward helper.)
Tensor MatMulTA(const Tensor& a, const Tensor& b);

/// C = A * B^T for A [m, k], B [n, k] -> [m, n]. (Backward helper.)
Tensor MatMulTB(const Tensor& a, const Tensor& b);

// ---- Broadcast helpers ----------------------------------------------------

/// Adds a length-n row vector to every row of an [m, n] matrix.
Tensor AddRowBroadcast(const Tensor& matrix, const Tensor& row);

/// Sums an [m, n] matrix over rows into a length-n vector.
Tensor SumRows(const Tensor& matrix);

// ---- Reductions ----------------------------------------------------------

float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
float MinAll(const Tensor& a);

/// Index of the maximum element in each row of an [m, n] matrix.
std::vector<int64_t> ArgMaxRows(const Tensor& matrix);

// ---- Row-wise softmax ------------------------------------------------------

/// Numerically stable softmax of each row of an [m, n] matrix.
Tensor SoftmaxRows(const Tensor& logits);

/// Numerically stable log-softmax of each row of an [m, n] matrix.
Tensor LogSoftmaxRows(const Tensor& logits);

// ---- Shape utilities --------------------------------------------------------

/// Transposes a 2-D matrix.
Tensor Transpose(const Tensor& a);

/// Concatenates 2-D matrices with equal row counts along columns.
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Extracts time-step t of a [batch, time, dim] tensor as [batch, dim].
Tensor SliceTime(const Tensor& x, int64_t t);

/// Writes [batch, dim] into time-step t of [batch, time, dim].
void SetTime(Tensor& x, int64_t t, const Tensor& step);

/// Frobenius norm.
float Norm2(const Tensor& a);

}  // namespace dar

#endif  // DAR_TENSOR_TENSOR_OPS_H_
