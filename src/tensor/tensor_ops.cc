#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/fastmath.h"
#include "tensor/gemm.h"

namespace dar {

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b) {
  DAR_CHECK_MSG(a.shape() == b.shape(), "elementwise op requires equal shapes");
}

template <typename Fn>
Tensor Binary(const Tensor& a, const Tensor& b, Fn fn) {
  CheckSameShape(a, b);
  // Every element is written below; Scratch poisons under the sentinel.
  Tensor out = Tensor::Scratch(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
  return out;
}

template <typename Fn>
Tensor Unary(const Tensor& a, Fn fn) {
  Tensor out = Tensor::Scratch(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i]);
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x * y; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x / y; });
}

void AddInPlace(Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  float* pa = a.data();
  const float* pb = b.data();
  int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void AxpyInPlace(Tensor& a, const Tensor& b, float scale) {
  CheckSameShape(a, b);
  float* pa = a.data();
  const float* pb = b.data();
  int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] += scale * pb[i];
}

void ScaleInPlace(Tensor& a, float s) {
  float* pa = a.data();
  int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] *= s;
}

Tensor AddScalar(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return x + s; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return x * s; });
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  return Unary(a, fn);
}

Tensor Neg(const Tensor& a) {
  return Unary(a, [](float x) { return -x; });
}

Tensor Exp(const Tensor& a) {
  return Unary(a, [](float x) { return std::exp(x); });
}

Tensor Log(const Tensor& a, float eps) {
  return Unary(a, [eps](float x) { return std::log(std::max(x, eps)); });
}

Tensor Tanh(const Tensor& a) {
  Tensor out = Tensor::Scratch(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    po[i] = fastmath::FastTanh(pa[i]);
  }
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out = Tensor::Scratch(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    po[i] = fastmath::FastSigmoid(pa[i]);
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  return Unary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor Sqrt(const Tensor& a) {
  return Unary(a, [](float x) { return std::sqrt(x); });
}

Tensor Abs(const Tensor& a) {
  return Unary(a, [](float x) { return std::fabs(x); });
}

namespace {

// All three transpose variants funnel here: shared packed kernel
// (tensor/gemm.h), one FLOP accounting point, one span-gating rule.
//
// Span gating: a DAR forward issues 400k+ sub-microsecond matmuls per
// bench run; minting a kDetailed span for each one both distorts
// span.matmul.us (the tiny ops drown the real encoder GEMMs) and costs
// two clock reads per op under kDetailed. Only ops of >= 1 MFLOP emit the
// detailed span; the matmul_flops_total counter keeps every op visible on
// /metrics regardless of size.
Tensor MatMulDispatch(gemm::Trans trans, int64_t m, int64_t n, int64_t k,
                      const float* a, const float* b) {
  static obs::Counter* flops_total =
      &obs::MetricsRegistry::Global().GetCounter("matmul_flops_total");
  const int64_t flops = 2 * m * n * k;
  flops_total->Increment(flops);
  Tensor c(Shape{m, n});  // zero-initialized: Gemm accumulates into it
  if (flops >= gemm::kSpanFlopThreshold) {
    obs::Span span("matmul", obs::TraceLevel::kDetailed);
    gemm::Gemm(trans, m, n, k, a, b, c.data());
  } else {
    gemm::Gemm(trans, m, n, k, a, b, c.data());
  }
  return c;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DAR_CHECK_EQ(a.dim(), 2);
  DAR_CHECK_EQ(b.dim(), 2);
  int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  DAR_CHECK_EQ(b.size(0), k);
  return MatMulDispatch(gemm::Trans::kNN, m, n, k, a.data(), b.data());
}

Tensor MatMulTA(const Tensor& a, const Tensor& b) {
  DAR_CHECK_EQ(a.dim(), 2);
  DAR_CHECK_EQ(b.dim(), 2);
  int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  DAR_CHECK_EQ(b.size(0), k);
  return MatMulDispatch(gemm::Trans::kTA, m, n, k, a.data(), b.data());
}

Tensor MatMulTB(const Tensor& a, const Tensor& b) {
  DAR_CHECK_EQ(a.dim(), 2);
  DAR_CHECK_EQ(b.dim(), 2);
  int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  DAR_CHECK_EQ(b.size(1), k);
  return MatMulDispatch(gemm::Trans::kTB, m, n, k, a.data(), b.data());
}

Tensor AddRowBroadcast(const Tensor& matrix, const Tensor& row) {
  DAR_CHECK_EQ(matrix.dim(), 2);
  DAR_CHECK_EQ(row.dim(), 1);
  int64_t m = matrix.size(0), n = matrix.size(1);
  DAR_CHECK_EQ(row.size(0), n);
  Tensor out = matrix;
  float* po = out.data();
  const float* pr = row.data();
  for (int64_t i = 0; i < m; ++i) {
    float* orow = po + i * n;
    for (int64_t j = 0; j < n; ++j) orow[j] += pr[j];
  }
  return out;
}

Tensor SumRows(const Tensor& matrix) {
  DAR_CHECK_EQ(matrix.dim(), 2);
  int64_t m = matrix.size(0), n = matrix.size(1);
  Tensor out(Shape{n});
  const float* pm = matrix.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pm + i * n;
    for (int64_t j = 0; j < n; ++j) po[j] += row[j];
  }
  return out;
}

float SumAll(const Tensor& a) {
  double acc = 0.0;
  const float* pa = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += pa[i];
  return static_cast<float>(acc);
}

float MeanAll(const Tensor& a) {
  DAR_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<float>(a.numel());
}

float MaxAll(const Tensor& a) {
  DAR_CHECK_GT(a.numel(), 0);
  const float* pa = a.data();
  float best = pa[0];
  for (int64_t i = 1; i < a.numel(); ++i) best = std::max(best, pa[i]);
  return best;
}

float MinAll(const Tensor& a) {
  DAR_CHECK_GT(a.numel(), 0);
  const float* pa = a.data();
  float best = pa[0];
  for (int64_t i = 1; i < a.numel(); ++i) best = std::min(best, pa[i]);
  return best;
}

std::vector<int64_t> ArgMaxRows(const Tensor& matrix) {
  DAR_CHECK_EQ(matrix.dim(), 2);
  int64_t m = matrix.size(0), n = matrix.size(1);
  DAR_CHECK_GT(n, 0);
  std::vector<int64_t> out(static_cast<size_t>(m));
  const float* pm = matrix.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pm + i * n;
    int64_t best = 0;
    for (int64_t j = 1; j < n; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& logits) {
  DAR_CHECK_EQ(logits.dim(), 2);
  int64_t m = logits.size(0), n = logits.size(1);
  Tensor out(logits.shape());
  const float* pl = logits.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pl + i * n;
    float* orow = po + i * n;
    float mx = row[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    for (int64_t j = 0; j < n; ++j) orow[j] /= denom;
  }
  return out;
}

Tensor LogSoftmaxRows(const Tensor& logits) {
  DAR_CHECK_EQ(logits.dim(), 2);
  int64_t m = logits.size(0), n = logits.size(1);
  Tensor out(logits.shape());
  const float* pl = logits.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pl + i * n;
    float* orow = po + i * n;
    float mx = row[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < n; ++j) denom += std::exp(row[j] - mx);
    float log_denom = std::log(denom) + mx;
    for (int64_t j = 0; j < n; ++j) orow[j] = row[j] - log_denom;
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  DAR_CHECK_EQ(a.dim(), 2);
  int64_t m = a.size(0), n = a.size(1);
  Tensor out = Tensor::Scratch(Shape{n, m});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  }
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  DAR_CHECK_EQ(a.dim(), 2);
  DAR_CHECK_EQ(b.dim(), 2);
  DAR_CHECK_EQ(a.size(0), b.size(0));
  int64_t m = a.size(0), na = a.size(1), nb = b.size(1);
  Tensor out = Tensor::Scratch(Shape{m, na + nb});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    std::copy(pa + i * na, pa + (i + 1) * na, po + i * (na + nb));
    std::copy(pb + i * nb, pb + (i + 1) * nb, po + i * (na + nb) + na);
  }
  return out;
}

Tensor SliceTime(const Tensor& x, int64_t t) {
  DAR_CHECK_EQ(x.dim(), 3);
  int64_t b = x.size(0), time = x.size(1), d = x.size(2);
  DAR_CHECK(t >= 0 && t < time);
  Tensor out(Shape{b, d});
  const float* px = x.data();
  float* po = out.data();
  for (int64_t i = 0; i < b; ++i) {
    const float* src = px + (i * time + t) * d;
    std::copy(src, src + d, po + i * d);
  }
  return out;
}

void SetTime(Tensor& x, int64_t t, const Tensor& step) {
  DAR_CHECK_EQ(x.dim(), 3);
  DAR_CHECK_EQ(step.dim(), 2);
  int64_t b = x.size(0), time = x.size(1), d = x.size(2);
  DAR_CHECK(t >= 0 && t < time);
  DAR_CHECK_EQ(step.size(0), b);
  DAR_CHECK_EQ(step.size(1), d);
  float* px = x.data();
  const float* ps = step.data();
  for (int64_t i = 0; i < b; ++i) {
    std::copy(ps + i * d, ps + (i + 1) * d, px + (i * time + t) * d);
  }
}

float Norm2(const Tensor& a) {
  double acc = 0.0;
  const float* pa = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += static_cast<double>(pa[i]) * pa[i];
  return static_cast<float>(std::sqrt(acc));
}

}  // namespace dar
