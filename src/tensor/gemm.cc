#include "tensor/gemm.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/thread_pool.h"
#include "sync/mutex.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define DAR_GEMM_AVX2 1
#endif

namespace dar {
namespace gemm {

namespace {

// Register micro-tile. MR x NR = 6 x 16 keeps 12 AVX2 accumulators plus two
// B vectors and one A broadcast inside the 16 ymm registers.
constexpr int64_t kMr = 6;
constexpr int64_t kNr = 16;
// K panel: one packed A micro-panel (kMr * kKc floats) plus the B panels it
// touches stay L1/L2-resident across the j sweep.
constexpr int64_t kKc = 256;
// Fixed M partition for both the ic loop and the threaded path. A multiple
// of kMr so chunk boundaries never split a micro-panel; independent of the
// worker count by construction (the determinism argument, gemm.h).
constexpr int64_t kRowChunk = 96;
// Below this m*n*k the packing latency beats the multiply savings and the
// small-shape loops win (measured in bench/gemm.cc; the GRU recurrent step
// at the default test sizes sits below, the flat input projection above).
constexpr int64_t kPackedMnkThreshold = 96 * 1024;
// Fan out to the kernel pool only when there is enough arithmetic to
// amortize the submit/latch round trip and at least two row chunks exist.
constexpr int64_t kThreadFlopThreshold = kSpanFlopThreshold;

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// ---- Operand views ---------------------------------------------------------
// op(A) is m x k and op(B) is k x n regardless of Trans; the packing loops
// read through these so the transpose never materializes.

struct OpView {
  const float* p;
  int64_t row_stride;
  int64_t col_stride;
  inline float at(int64_t r, int64_t c) const {
    return p[r * row_stride + c * col_stride];
  }
};

inline OpView ViewOpA(Trans t, const float* a, int64_t m, int64_t k) {
  if (t == Trans::kTA) return {a, 1, m};  // A is [k, m]
  return {a, k, 1};                       // A is [m, k]
}

inline OpView ViewOpB(Trans t, const float* b, int64_t n, int64_t k) {
  if (t == Trans::kTB) return {b, 1, k};  // B is [n, k]
  return {b, n, 1};                       // B is [k, n]
}

// ---- Packing ---------------------------------------------------------------

/// Packs ALL of op(B) into kc-major panels: for each kc panel (ascending),
/// for each NR column panel, a [kc x kNr] block, row padded with zeros past
/// n. Offset of (pc, jp) = pc * num_jp * kNr + jp * kc * kNr.
void PackB(const OpView& opb, int64_t k, int64_t n, std::vector<float>& out) {
  int64_t num_jp = CeilDiv(n, kNr);
  out.resize(static_cast<size_t>(k * num_jp * kNr));
  float* dst = out.data();
  // col_stride == 1 (the NN / TA orientations): each packed row is a
  // contiguous 16-float segment, which the compiler turns into two vector
  // copies — packing cost matters at the small end of the packed range.
  const bool contiguous = opb.col_stride == 1;
  for (int64_t pc = 0; pc < k; pc += kKc) {
    int64_t kc = std::min(kKc, k - pc);
    for (int64_t jp = 0; jp < num_jp; ++jp) {
      int64_t j0 = jp * kNr;
      int64_t nr = std::min(kNr, n - j0);
      for (int64_t kk = 0; kk < kc; ++kk) {
        const int64_t kg = pc + kk;
        if (contiguous) {
          const float* src = opb.p + kg * opb.row_stride + j0;
          for (int64_t jj = 0; jj < nr; ++jj) dst[jj] = src[jj];
        } else {
          for (int64_t jj = 0; jj < nr; ++jj) dst[jj] = opb.at(kg, j0 + jj);
        }
        for (int64_t jj = nr; jj < kNr; ++jj) dst[jj] = 0.0f;
        dst += kNr;
      }
    }
  }
}

/// Packs rows [i0, i0+mc) of op(A), k panel [pc, pc+kc), into MR row
/// panels: panel ir holds kc columns of MR values (zero padded past m).
void PackA(const OpView& opa, int64_t i0, int64_t mc, int64_t pc, int64_t kc,
           std::vector<float>& out) {
  int64_t num_ip = CeilDiv(mc, kMr);
  out.resize(static_cast<size_t>(num_ip * kc * kMr));
  float* dst = out.data();
  // row_stride == 1 (the TA orientation): the mr values of one k column
  // are contiguous; otherwise they sit one A-row apart (strided gather).
  const bool contiguous = opa.row_stride == 1;
  for (int64_t ip = 0; ip < num_ip; ++ip) {
    int64_t r0 = i0 + ip * kMr;
    int64_t mr = std::min(kMr, i0 + mc - r0);
    for (int64_t kk = 0; kk < kc; ++kk) {
      const int64_t kg = pc + kk;
      if (contiguous) {
        const float* src = opa.p + r0 + kg * opa.col_stride;
        for (int64_t rr = 0; rr < mr; ++rr) dst[rr] = src[rr];
      } else {
        for (int64_t rr = 0; rr < mr; ++rr) dst[rr] = opa.at(r0 + rr, kg);
      }
      for (int64_t rr = mr; rr < kMr; ++rr) dst[rr] = 0.0f;
      dst += kMr;
    }
  }
}

// ---- Micro-kernels ---------------------------------------------------------
// Each accumulates kc fma steps (ascending k) into the current C values —
// resuming the per-element fma chain across kc panels losslessly.

/// Edge tile (mr < kMr or nr < kNr): scalar fma over the packed panels.
void MicroKernelEdge(const float* pa, const float* pb, float* c, int64_t ldc,
                     int64_t kc, int64_t mr, int64_t nr) {
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) {
      float acc = c[r * ldc + j];
      for (int64_t kk = 0; kk < kc; ++kk) {
        acc = std::fma(pa[kk * kMr + r], pb[kk * kNr + j], acc);
      }
      c[r * ldc + j] = acc;
    }
  }
}

#ifdef DAR_GEMM_AVX2

/// Full-width tile of MR rows x 16 columns (MR = 6 for interior tiles,
/// 1..5 for the last row panel of a chunk): 2*MR ymm accumulators,
/// lanewise fma — bit-identical to the scalar chain (IEEE fma per lane,
/// lanes independent).
///
/// The accumulators are NAMED variables guarded by `if constexpr`, not an
/// array: an addressable `acc[6][2]` makes GCC maintain a stack copy and
/// emit 12 redundant vmovaps per k step, halving throughput (one store
/// port vs two FMA ports). Named ymm values stay register-resident: at
/// MR = 6 that is 12 accumulators + two B vectors + one A broadcast = 15
/// of the 16 ymm registers.
template <int MR>
void MicroKernelTile(const float* pa, const float* pb, float* c, int64_t ldc,
                     int64_t kc) {
  static_assert(MR >= 1 && MR <= kMr);
  __m256 c00, c01, c10, c11, c20, c21, c30, c31, c40, c41, c50, c51;
  c00 = _mm256_loadu_ps(c + 0 * ldc);
  c01 = _mm256_loadu_ps(c + 0 * ldc + 8);
  if constexpr (MR > 1) {
    c10 = _mm256_loadu_ps(c + 1 * ldc);
    c11 = _mm256_loadu_ps(c + 1 * ldc + 8);
  }
  if constexpr (MR > 2) {
    c20 = _mm256_loadu_ps(c + 2 * ldc);
    c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  }
  if constexpr (MR > 3) {
    c30 = _mm256_loadu_ps(c + 3 * ldc);
    c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  }
  if constexpr (MR > 4) {
    c40 = _mm256_loadu_ps(c + 4 * ldc);
    c41 = _mm256_loadu_ps(c + 4 * ldc + 8);
  }
  if constexpr (MR > 5) {
    c50 = _mm256_loadu_ps(c + 5 * ldc);
    c51 = _mm256_loadu_ps(c + 5 * ldc + 8);
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(pb);
    const __m256 b1 = _mm256_loadu_ps(pb + 8);
    pb += kNr;
    __m256 av;
    av = _mm256_broadcast_ss(pa + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    if constexpr (MR > 1) {
      av = _mm256_broadcast_ss(pa + 1);
      c10 = _mm256_fmadd_ps(av, b0, c10);
      c11 = _mm256_fmadd_ps(av, b1, c11);
    }
    if constexpr (MR > 2) {
      av = _mm256_broadcast_ss(pa + 2);
      c20 = _mm256_fmadd_ps(av, b0, c20);
      c21 = _mm256_fmadd_ps(av, b1, c21);
    }
    if constexpr (MR > 3) {
      av = _mm256_broadcast_ss(pa + 3);
      c30 = _mm256_fmadd_ps(av, b0, c30);
      c31 = _mm256_fmadd_ps(av, b1, c31);
    }
    if constexpr (MR > 4) {
      av = _mm256_broadcast_ss(pa + 4);
      c40 = _mm256_fmadd_ps(av, b0, c40);
      c41 = _mm256_fmadd_ps(av, b1, c41);
    }
    if constexpr (MR > 5) {
      av = _mm256_broadcast_ss(pa + 5);
      c50 = _mm256_fmadd_ps(av, b0, c50);
      c51 = _mm256_fmadd_ps(av, b1, c51);
    }
    pa += kMr;  // A panels are always padded to kMr rows
  }
  _mm256_storeu_ps(c + 0 * ldc, c00);
  _mm256_storeu_ps(c + 0 * ldc + 8, c01);
  if constexpr (MR > 1) {
    _mm256_storeu_ps(c + 1 * ldc, c10);
    _mm256_storeu_ps(c + 1 * ldc + 8, c11);
  }
  if constexpr (MR > 2) {
    _mm256_storeu_ps(c + 2 * ldc, c20);
    _mm256_storeu_ps(c + 2 * ldc + 8, c21);
  }
  if constexpr (MR > 3) {
    _mm256_storeu_ps(c + 3 * ldc, c30);
    _mm256_storeu_ps(c + 3 * ldc + 8, c31);
  }
  if constexpr (MR > 4) {
    _mm256_storeu_ps(c + 4 * ldc, c40);
    _mm256_storeu_ps(c + 4 * ldc + 8, c41);
  }
  if constexpr (MR > 5) {
    _mm256_storeu_ps(c + 5 * ldc, c50);
    _mm256_storeu_ps(c + 5 * ldc + 8, c51);
  }
}

#else  // scalar fallback (sanitizer lanes build without -mavx2 -mfma)

template <int MR>
void MicroKernelTile(const float* pa, const float* pb, float* c, int64_t ldc,
                     int64_t kc) {
  static_assert(MR >= 1 && MR <= kMr);
  // j-inner layout so the accumulator block stays in registers; std::fma
  // keeps the chain exactly rounded, matching the AVX2 build bit-for-bit.
  float acc[MR][kNr];
  for (int64_t r = 0; r < MR; ++r) {
    for (int64_t j = 0; j < kNr; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* arow = pa + kk * kMr;
    const float* brow = pb + kk * kNr;
    for (int64_t r = 0; r < MR; ++r) {
      const float av = arow[r];
      for (int64_t j = 0; j < kNr; ++j) {
        acc[r][j] = std::fma(av, brow[j], acc[r][j]);
      }
    }
  }
  for (int64_t r = 0; r < MR; ++r) {
    for (int64_t j = 0; j < kNr; ++j) c[r * ldc + j] = acc[r][j];
  }
}

#endif  // DAR_GEMM_AVX2

/// Full-width (nr == kNr) tile with a runtime row count: dispatches to the
/// register-blocked kernel so chunk row tails (mr < 6) stay vectorized
/// instead of dropping to the scalar edge kernel.
void MicroKernelFullWidth(const float* pa, const float* pb, float* c,
                          int64_t ldc, int64_t kc, int64_t mr) {
  switch (mr) {
    case 6: MicroKernelTile<6>(pa, pb, c, ldc, kc); break;
    case 5: MicroKernelTile<5>(pa, pb, c, ldc, kc); break;
    case 4: MicroKernelTile<4>(pa, pb, c, ldc, kc); break;
    case 3: MicroKernelTile<3>(pa, pb, c, ldc, kc); break;
    case 2: MicroKernelTile<2>(pa, pb, c, ldc, kc); break;
    default: MicroKernelTile<1>(pa, pb, c, ldc, kc); break;
  }
}

// ---- Blocked kernel --------------------------------------------------------

/// Per-thread packing buffer for A blocks (and, on the calling thread, the
/// shared B packing). Reused across calls; workers are pool threads, so
/// the buffers amortize to one allocation per thread per high-water mark.
thread_local std::vector<float> t_pack_a;

/// Computes C rows [i0, i0+mc) from packed B. Runs identically on the
/// calling thread and on pool workers; all writes land in the caller-owned
/// C rows of this chunk only.
void ComputeRowChunk(const OpView& opa, const float* packed_b, float* c,
                     int64_t i0, int64_t mc, int64_t n, int64_t k) {
  int64_t num_jp = CeilDiv(n, kNr);
  for (int64_t pc = 0; pc < k; pc += kKc) {
    const int64_t kc = std::min(kKc, k - pc);
    PackA(opa, i0, mc, pc, kc, t_pack_a);
    const float* pb_panel = packed_b + pc * num_jp * kNr;
    const int64_t num_ip = CeilDiv(mc, kMr);
    for (int64_t jp = 0; jp < num_jp; ++jp) {
      const int64_t j0 = jp * kNr;
      const int64_t nr = std::min(kNr, n - j0);
      const float* pb = pb_panel + jp * kc * kNr;
      for (int64_t ip = 0; ip < num_ip; ++ip) {
        const int64_t r0 = i0 + ip * kMr;
        const int64_t mr = std::min(kMr, i0 + mc - r0);
        const float* pa = t_pack_a.data() + ip * kc * kMr;
        float* ctile = c + r0 * n + j0;
        if (nr == kNr) {
          MicroKernelFullWidth(pa, pb, ctile, n, kc, mr);
        } else {
          MicroKernelEdge(pa, pb, ctile, n, kc, mr, nr);
        }
      }
    }
  }
}

// ---- Kernel thread pool ----------------------------------------------------

struct PoolState {
  std::atomic<int> threads{1};
  std::unique_ptr<serve::ThreadPool> pool;
  std::atomic<serve::ThreadPool*> pool_ptr{nullptr};
};

PoolState& State() {
  static PoolState* state = new PoolState();  // never destroyed: workers
  return *state;  // may outlive main()'s statics (exit-time safety)
}

/// Completion latch for one threaded Gemm call. kLeaf rank: holders never
/// acquire another lock, and pool workers hold nothing when they signal.
struct Latch {
  explicit Latch(int n) : remaining(n) {}
  sync::Mutex mu{sync::Rank::kLeaf, "tensor.gemm_latch"};
  sync::CondVar cv;
  int remaining DAR_GUARDED_BY(mu);

  void Done() {
    sync::MutexLock lock(mu);
    if (--remaining == 0) cv.NotifyAll();
  }
  void Wait() {
    sync::MutexLock lock(mu);
    while (remaining > 0) cv.Wait(mu);
  }
};

void GemmPacked(Trans trans, int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c) {
  const OpView opa = ViewOpA(trans, a, m, k);
  const OpView opb = ViewOpB(trans, b, n, k);

  // B is packed once on the calling thread and shared read-only; packing
  // order is shape-only, so the bytes are independent of threading.
  thread_local std::vector<float> t_pack_b;
  PackB(opb, k, n, t_pack_b);
  const float* packed_b = t_pack_b.data();

  const int64_t num_chunks = CeilDiv(m, kRowChunk);
  serve::ThreadPool* pool = State().pool_ptr.load(std::memory_order_acquire);
  const bool threaded = pool != nullptr && num_chunks > 1 &&
                        2 * m * n * k >= kThreadFlopThreshold;

  if (!threaded) {
    for (int64_t i0 = 0; i0 < m; i0 += kRowChunk) {
      ComputeRowChunk(opa, packed_b, c, i0, std::min(kRowChunk, m - i0), n, k);
    }
    return;
  }

  // Work-claiming over the FIXED chunk grid: which thread computes a chunk
  // is scheduling-dependent, but every chunk runs the identical code over
  // disjoint C rows, so the output bits are worker-count-invariant.
  auto next = std::make_shared<std::atomic<int64_t>>(0);
  auto drain = [opa, packed_b, c, m, n, k, next]() {
    for (;;) {
      int64_t chunk = next->fetch_add(1, std::memory_order_relaxed);
      int64_t i0 = chunk * kRowChunk;
      if (i0 >= m) return;
      ComputeRowChunk(opa, packed_b, c, i0, std::min(kRowChunk, m - i0), n, k);
    }
  };

  const int helpers = static_cast<int>(
      std::min<int64_t>(pool->num_threads(), num_chunks - 1));
  Latch latch(helpers);
  Latch* latch_ptr = &latch;
  for (int h = 0; h < helpers; ++h) {
    pool->Submit([drain, latch_ptr]() {
      drain();
      latch_ptr->Done();
    });
  }
  drain();        // the calling thread takes its share
  latch.Wait();   // helpers read packed_b and write C; block until done
}

// ---- Small-shape kernels ---------------------------------------------------
// Same fma chain as the packed path, minus packing. No zero-skip branch:
// dense activations make the branch a pure pessimization (it was the seed
// kernel's main flaw), and skipping would also break the fma-chain
// equivalence for signed zeros.

void GemmSmallNN(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  // i-k-j: the j loop streams B's row and C's row (independent elements,
  // vectorizes without re-association).
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] = std::fma(av, brow[j], crow[j]);
    }
  }
}

void GemmSmallTA(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  // kk outermost (ascending): A and B rows stream contiguously.
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] = std::fma(av, brow[j], crow[j]);
    }
  }
}

void GemmSmallTB(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  // Row-dot-row; the k loop is a serial fma dependence the compiler cannot
  // re-associate, preserving the chain.
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = crow[j];
      for (int64_t kk = 0; kk < k; ++kk) {
        acc = std::fma(arow[kk], brow[kk], acc);
      }
      crow[j] = acc;
    }
  }
}

}  // namespace

bool UsesPackedPath(int64_t m, int64_t n, int64_t k) {
  return m * n * k >= kPackedMnkThreshold;
}

void SetKernelThreads(int n) {
  if (n < 1) n = 1;
  PoolState& state = State();
  if (n == state.threads.load(std::memory_order_relaxed)) return;
  // Quiesced-point contract (gemm.h): no Gemm is in flight, so dropping
  // the old pool (joins its workers) and publishing the new one is safe.
  state.pool_ptr.store(nullptr, std::memory_order_release);
  state.pool.reset();
  if (n > 1) {
    state.pool = std::make_unique<serve::ThreadPool>(n - 1);
    state.pool_ptr.store(state.pool.get(), std::memory_order_release);
  }
  state.threads.store(n, std::memory_order_relaxed);
}

int KernelThreads() { return State().threads.load(std::memory_order_relaxed); }

void Gemm(Trans trans, int64_t m, int64_t n, int64_t k, const float* a,
          const float* b, float* c) {
  if (m <= 0 || n <= 0 || k <= 0) return;  // C stays zero (empty sum)
  if (UsesPackedPath(m, n, k)) {
    GemmPacked(trans, m, n, k, a, b, c);
    return;
  }
  switch (trans) {
    case Trans::kNN: GemmSmallNN(m, n, k, a, b, c); break;
    case Trans::kTA: GemmSmallTA(m, n, k, a, b, c); break;
    case Trans::kTB: GemmSmallTB(m, n, k, a, b, c); break;
  }
}

void GemmReference(Trans trans, int64_t m, int64_t n, int64_t k,
                   const float* a, const float* b, float* c) {
  const OpView opa = ViewOpA(trans, a, m, k);
  const OpView opb = ViewOpB(trans, b, n, k);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = c[i * n + j];
      for (int64_t kk = 0; kk < k; ++kk) {
        acc = std::fma(opa.at(i, kk), opb.at(kk, j), acc);
      }
      c[i * n + j] = acc;
    }
  }
}

}  // namespace gemm
}  // namespace dar
