#include "tensor/tensor.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "check/sentinel.h"
#include "tensor/check.h"

namespace dar {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    DAR_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor() : shape_{0} {}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  DAR_CHECK_LE(shape_.size(), 4u);
  data_.assign(static_cast<size_t>(NumElements(shape_)), 0.0f);
}

Tensor::Tensor(Shape shape, float value) : shape_(std::move(shape)) {
  DAR_CHECK_LE(shape_.size(), 4u);
  data_.assign(static_cast<size_t>(NumElements(shape_)), value);
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  DAR_CHECK_LE(shape_.size(), 4u);
  DAR_CHECK_EQ(NumElements(shape_), static_cast<int64_t>(data_.size()));
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Scratch(Shape shape) {
  if (check::PoisonEnabled()) {
    return Tensor(std::move(shape), std::numeric_limits<float>::quiet_NaN());
  }
  return Tensor(std::move(shape));
}

Tensor Tensor::Ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  return Tensor(std::move(shape), value);
}

Tensor Tensor::Scalar(float value) { return Tensor(Shape{}, {value}); }

Tensor Tensor::FromVector(std::vector<float> values) {
  Shape shape{static_cast<int64_t>(values.size())};
  return Tensor(std::move(shape), std::move(values));
}

Tensor Tensor::Randn(Shape shape, Pcg32& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.Normal(0.0f, stddev);
  return t;
}

Tensor Tensor::Rand(Shape shape, Pcg32& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) t.at(i, i) = 1.0f;
  return t;
}

Tensor Tensor::Arange(int64_t count, float start, float step) {
  Tensor t(Shape{count});
  for (int64_t i = 0; i < count; ++i) t.flat(i) = start + step * static_cast<float>(i);
  return t;
}

int64_t Tensor::size(int64_t axis) const {
  if (axis < 0) axis += dim();
  DAR_CHECK_GE(axis, 0);
  DAR_CHECK_LT(axis, dim());
  return shape_[static_cast<size_t>(axis)];
}

float Tensor::item() const {
  DAR_CHECK_EQ(numel(), 1);
  return data_[0];
}

float& Tensor::at(int64_t i) {
  DAR_CHECK_EQ(dim(), 1);
  DAR_CHECK_GE(i, 0);
  DAR_CHECK_LT(i, shape_[0]);
  return data_[static_cast<size_t>(i)];
}

float Tensor::at(int64_t i) const { return const_cast<Tensor*>(this)->at(i); }

float& Tensor::at(int64_t i, int64_t j) {
  DAR_CHECK_EQ(dim(), 2);
  DAR_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
  return data_[static_cast<size_t>(i * shape_[1] + j)];
}

float Tensor::at(int64_t i, int64_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(int64_t i, int64_t j, int64_t k) {
  DAR_CHECK_EQ(dim(), 3);
  DAR_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
            k < shape_[2]);
  return data_[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

float Tensor::at(int64_t i, int64_t j, int64_t k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

float& Tensor::flat(int64_t i) {
  DAR_CHECK(i >= 0 && i < numel());
  return data_[static_cast<size_t>(i)];
}

float Tensor::flat(int64_t i) const { return const_cast<Tensor*>(this)->flat(i); }

Tensor Tensor::Reshape(Shape new_shape) const {
  DAR_CHECK_EQ(NumElements(new_shape), numel());
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

void Tensor::Fill(float value) {
  for (float& v : data_) v = value;
}

bool Tensor::AllClose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Tensor::ToString(int64_t max_per_dim) const {
  std::ostringstream os;
  os << "Tensor(" << ShapeToString(shape_) << ")";
  if (dim() <= 2) {
    os << " [";
    int64_t rows = dim() == 2 ? shape_[0] : 1;
    int64_t cols = dim() == 2 ? shape_[1] : numel();
    for (int64_t i = 0; i < std::min(rows, max_per_dim); ++i) {
      if (dim() == 2) os << (i ? ", [" : "[");
      for (int64_t j = 0; j < std::min(cols, max_per_dim); ++j) {
        if (j) os << ", ";
        os << data_[static_cast<size_t>(i * cols + j)];
      }
      if (cols > max_per_dim) os << ", ...";
      if (dim() == 2) os << "]";
    }
    if (rows > max_per_dim) os << ", ...";
    os << "]";
  }
  return os.str();
}

}  // namespace dar
