// Invariant-checking macros used throughout the library.
//
// The project follows the Google C++ style guide and does not use
// exceptions. Programming errors (shape mismatches, out-of-range indices,
// broken invariants) abort the process with a diagnostic; recoverable
// conditions are expressed through return values instead.
#ifndef DAR_TENSOR_CHECK_H_
#define DAR_TENSOR_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dar {
namespace internal {

/// Prints a fatal diagnostic and aborts. Never returns.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "DAR_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace dar

/// Aborts with a diagnostic if `cond` is false. Enabled in all build types:
/// a training run that silently continues past a shape mismatch produces
/// numbers that look plausible and are wrong, which is worse than a crash.
#define DAR_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dar::internal::CheckFailed(__FILE__, __LINE__, #cond, "");     \
    }                                                                  \
  } while (0)

/// DAR_CHECK with an additional literal message.
#define DAR_CHECK_MSG(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dar::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);    \
    }                                                                  \
  } while (0)

#define DAR_CHECK_EQ(a, b) DAR_CHECK((a) == (b))
#define DAR_CHECK_NE(a, b) DAR_CHECK((a) != (b))
#define DAR_CHECK_LT(a, b) DAR_CHECK((a) < (b))
#define DAR_CHECK_LE(a, b) DAR_CHECK((a) <= (b))
#define DAR_CHECK_GT(a, b) DAR_CHECK((a) > (b))
#define DAR_CHECK_GE(a, b) DAR_CHECK((a) >= (b))

#endif  // DAR_TENSOR_CHECK_H_
