// Invariant-checking macros used throughout the library.
//
// The project follows the Google C++ style guide and does not use
// exceptions. Programming errors (shape mismatches, out-of-range indices,
// broken invariants) abort the process with a diagnostic; recoverable
// conditions are expressed through return values instead.
//
// Contract (identical in every build type):
//
//   * DAR_CHECK* evaluate their operands exactly once, in all build types.
//     They are enabled in Debug and Release alike — the only difference a
//     build type may observe is the check itself firing.
//   * DAR_DCHECK* are compiled out in NDEBUG builds. In that case the
//     condition is parsed and type-checked but NEVER evaluated, so a
//     disabled check cannot change program behavior. Consequently the
//     condition expressions passed to any DAR_*CHECK macro must be free of
//     side effects (no `++`, no mutating calls): a side-effecting
//     DAR_DCHECK would behave differently between Debug and Release, which
//     this header's whole purpose is to rule out.
//   * Failure diagnostics go to stderr and the process aborts; there is no
//     recovery path and no exception.
#ifndef DAR_TENSOR_CHECK_H_
#define DAR_TENSOR_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dar {
namespace internal {

/// Prints a fatal diagnostic and aborts. Never returns.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "DAR_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace dar

/// Aborts with a diagnostic if `cond` is false. Enabled in all build types:
/// a training run that silently continues past a shape mismatch produces
/// numbers that look plausible and are wrong, which is worse than a crash.
#define DAR_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dar::internal::CheckFailed(__FILE__, __LINE__, #cond, "");     \
    }                                                                  \
  } while (0)

/// DAR_CHECK with an additional literal message.
#define DAR_CHECK_MSG(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dar::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);    \
    }                                                                  \
  } while (0)

#define DAR_CHECK_EQ(a, b) DAR_CHECK((a) == (b))
#define DAR_CHECK_NE(a, b) DAR_CHECK((a) != (b))
#define DAR_CHECK_LT(a, b) DAR_CHECK((a) < (b))
#define DAR_CHECK_LE(a, b) DAR_CHECK((a) <= (b))
#define DAR_CHECK_GT(a, b) DAR_CHECK((a) > (b))
#define DAR_CHECK_GE(a, b) DAR_CHECK((a) >= (b))

/// Debug-only checks for invariants too hot to verify in Release (per-node
/// autograd bookkeeping, inner-loop indices). Disabled form: the condition
/// is placed in an unevaluated sizeof context — zero code is generated and
/// the operands are guaranteed not to run, but the expression still has to
/// compile, so a DAR_DCHECK cannot silently rot behind the NDEBUG fence.
#ifdef NDEBUG
#define DAR_DCHECK(cond) \
  do {                   \
    (void)sizeof(!(cond)); \
  } while (0)
#define DAR_DCHECK_MSG(cond, msg) \
  do {                            \
    (void)sizeof(!(cond));        \
    (void)sizeof(msg);            \
  } while (0)
#else
#define DAR_DCHECK(cond) DAR_CHECK(cond)
#define DAR_DCHECK_MSG(cond, msg) DAR_CHECK_MSG(cond, msg)
#endif

#define DAR_DCHECK_EQ(a, b) DAR_DCHECK((a) == (b))
#define DAR_DCHECK_NE(a, b) DAR_DCHECK((a) != (b))
#define DAR_DCHECK_LT(a, b) DAR_DCHECK((a) < (b))
#define DAR_DCHECK_LE(a, b) DAR_DCHECK((a) <= (b))
#define DAR_DCHECK_GT(a, b) DAR_DCHECK((a) > (b))
#define DAR_DCHECK_GE(a, b) DAR_DCHECK((a) >= (b))

#endif  // DAR_TENSOR_CHECK_H_
