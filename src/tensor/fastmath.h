// Branch-free scalar math shared by the elementwise kernels.
//
// FastExp lived as a private helper inside tensor_ops.cc; it moved here so
// the fused GRU cell (nn/gru.cc) computes its sigmoid/tanh gates with the
// EXACT same polynomial the tensor-level Sigmoid/Tanh kernels use — the
// fused forward stays bit-identical to the op-composed forward it
// replaced.
#ifndef DAR_TENSOR_FASTMATH_H_
#define DAR_TENSOR_FASTMATH_H_

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace dar {
namespace fastmath {

// Branch-free single-precision e^x (Cephes-style range reduction plus a
// degree-5 polynomial), |relative error| < 2e-7 across the clamped range.
// Plain arithmetic end to end, so elementwise sigmoid/tanh loops
// auto-vectorize instead of calling scalar libm — those kernels run
// hundreds of thousands of libm calls per batched forward otherwise.
inline float FastExp(float x) {
  x = std::min(88.0f, std::max(-87.0f, x));
  float z = std::floor(x * 1.44269504089f + 0.5f);  // round(x / ln 2)
  x -= z * 0.693359375f;                            // ln 2, high part
  x -= z * -2.12194440e-4f;                         // ln 2, low part
  float y = 1.9875691500e-4f;
  y = y * x + 1.3981999507e-3f;
  y = y * x + 8.3334519073e-3f;
  y = y * x + 4.1665795894e-2f;
  y = y * x + 1.6666665459e-1f;
  y = y * x + 5.0000001201e-1f;
  y = y * x * x + x + 1.0f;
  // 2^z via exponent bits; z is integral and within [-126, 127] after the
  // clamp, so the bit pattern is a valid normal float.
  uint32_t bits = static_cast<uint32_t>(static_cast<int32_t>(z) + 127) << 23;
  float pow2;
  std::memcpy(&pow2, &bits, sizeof(pow2));
  return y * pow2;
}

/// The library's sigmoid: 1 / (1 + FastExp(-x)). One home for the formula
/// so the tensor kernel and the fused GRU gates cannot drift apart.
inline float FastSigmoid(float x) { return 1.0f / (1.0f + FastExp(-x)); }

/// The library's tanh: 2 / (1 + FastExp(-2x)) - 1.
inline float FastTanh(float x) {
  return 2.0f / (1.0f + FastExp(-2.0f * x)) - 1.0f;
}

}  // namespace fastmath
}  // namespace dar

#endif  // DAR_TENSOR_FASTMATH_H_
