// Deterministic pseudo-random number generation for the whole library.
//
// Everything stochastic in this repository (parameter init, Gumbel noise,
// dataset synthesis, batch shuffling) draws from Pcg32 so that every
// experiment is exactly reproducible from a printed seed.
#ifndef DAR_TENSOR_RANDOM_H_
#define DAR_TENSOR_RANDOM_H_

#include <cstdint>

namespace dar {

/// PCG-XSH-RR 64/32 generator (O'Neill, 2014). Small state, good statistical
/// quality, and — unlike std::mt19937 — identical streams across standard
/// library implementations, which keeps experiment outputs portable.
class Pcg32 {
 public:
  /// Seeds the generator. Two generators with different `stream` values
  /// produce independent sequences even with equal seeds.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Next uniformly distributed 32-bit value.
  uint32_t NextU32();

  /// Uniform in [0, 1).
  float NextFloat();

  /// Uniform in [lo, hi).
  float Uniform(float lo, float hi);

  /// Standard normal via Box–Muller (cached spare value).
  float Normal();

  /// Normal with the given mean and standard deviation.
  float Normal(float mean, float stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  uint32_t Below(uint32_t n);

  /// Bernoulli draw: true with probability p.
  bool Bernoulli(float p);

  /// Sample from Gumbel(0, 1): -log(-log(U)).
  float Gumbel();

  /// Splits off an independent generator (distinct stream) for a subsystem.
  Pcg32 Split();

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_spare_ = false;
  float spare_ = 0.0f;
};

}  // namespace dar

#endif  // DAR_TENSOR_RANDOM_H_
