// Blocked, packed, deterministically-threaded single-precision GEMM.
//
// This is the kernel layer underneath MatMul / MatMulTA / MatMulTB
// (tensor_ops.h): one shared cache-tiled implementation backs all three
// transpose variants, so the encoder forward *and* the autograd backward
// (which is nothing but TA/TB products) take the same fast path.
//
// ## Bit-exactness contract
//
// Every path through Gemm() — the small-shape loops, the packed
// single-threaded path, the packed multi-threaded path, the AVX2+FMA
// micro-kernel and its scalar fallback — computes each output element as
// the SAME fused-multiply-add chain:
//
//   c = 0;  for k ascending:  c = fma(opA[i,k], opB[k,j], c)
//
// IEEE-754 fma is exactly rounded, so the result is a pure function of the
// inputs, independent of the path taken:
//
//   * Tiling/packing only reorders which (i, j) is computed when; the
//     per-element k chain is untouched (kc panels are visited ascending
//     and the partial C value stored between panels is exactly the
//     float32 accumulator, so resuming the chain is lossless).
//   * The multi-threaded path partitions M into FIXED blocks of kRowChunk
//     rows (independent of the worker count) and every output row is
//     computed by exactly one task running the identical single-threaded
//     block code — bit-identical for any worker count, which is what the
//     parallel-trainer equivalence and serve-cache differential harnesses
//     rely on (tests/gemm_test.cc enforces it directly).
//   * The AVX2 micro-kernel applies the same fma lanewise; lanes never
//     interact, and GemmReference below is the scalar std::fma witness the
//     tests compare every path against at float-bit granularity.
//
// The vectorized loops therefore auto-parallelize across j (independent
// elements) but never re-associate across k.
//
// ## Threading
//
// Threading is opt-in via SetKernelThreads(n): an internal
// serve::ThreadPool is (re)built with n-1 workers and large GEMMs fan
// their row blocks out to it (the calling thread takes a share too).
// SetKernelThreads must be called at a quiesced point (no concurrent
// Gemm in flight); TrainConfig::kernel_threads and
// ServeConfig::kernel_threads thread the knob through Fit() and the
// serving router. n <= 1 restores the inline path.
#ifndef DAR_TENSOR_GEMM_H_
#define DAR_TENSOR_GEMM_H_

#include <cstdint>

namespace dar {
namespace gemm {

/// Which operands are transposed. The storage is always row-major;
/// transposition is folded into the packing reads, never materialized.
enum class Trans {
  kNN,  ///< C[m,n] = A[m,k] * B[k,n]
  kTA,  ///< C[m,n] = A[k,m]^T * B[k,n]
  kTB,  ///< C[m,n] = A[m,k] * B[n,k]^T
};

/// C = op(A) * op(B). `c` must point at m*n floats, ZERO-INITIALIZED by the
/// caller (Tensor's constructor does); the kernel accumulates into it.
/// Dispatches between a low-overhead loop for small shapes and the packed
/// blocked kernel (optionally threaded) past UsesPackedPath — every path
/// is bit-identical per the contract above.
void Gemm(Trans trans, int64_t m, int64_t n, int64_t k, const float* a,
          const float* b, float* c);

/// The retained naive witness: scalar std::fma triple loop, ascending k.
/// Slow on purpose; tests certify Gemm against it bit-for-bit, and the
/// bench reports blocked-vs-naive speedups against the seed kernel shape.
void GemmReference(Trans trans, int64_t m, int64_t n, int64_t k,
                   const float* a, const float* b, float* c);

/// True when (m, n, k) routes to the packed blocked kernel; below this the
/// packing latency exceeds the multiply cost and the small-shape loops
/// win. Exposed so tests can sweep both sides of the boundary.
bool UsesPackedPath(int64_t m, int64_t n, int64_t k);

/// Sets the kernel-thread budget (the pool serves every subsequent large
/// Gemm). `n` is the TOTAL number of threads computing a GEMM, including
/// the caller: n <= 1 means fully inline. Not safe to call with a Gemm in
/// flight — call at configuration time, as Fit() and the router do.
void SetKernelThreads(int n);

/// Current kernel-thread budget (>= 1).
int KernelThreads();

/// Minimum per-element FLOP count (2*m*n*k) at which the threaded path is
/// considered; also the span-emission threshold used by tensor_ops.cc so
/// sub-microsecond matmuls stop flooding `span.matmul.us`.
inline constexpr int64_t kSpanFlopThreshold = 1'000'000;  // 1 MFLOP

}  // namespace gemm
}  // namespace dar

#endif  // DAR_TENSOR_GEMM_H_
