#include "tensor/random.h"

#include <cmath>

#include "tensor/check.h"

namespace dar {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Pcg32::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

float Pcg32::NextFloat() {
  // 24 high bits -> [0, 1) with full float precision.
  return static_cast<float>(NextU32() >> 8) * (1.0f / 16777216.0f);
}

float Pcg32::Uniform(float lo, float hi) { return lo + (hi - lo) * NextFloat(); }

float Pcg32::Normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box–Muller; u1 is kept away from zero so log() is finite.
  float u1 = 0.0f;
  do {
    u1 = NextFloat();
  } while (u1 <= 1e-12f);
  float u2 = NextFloat();
  float mag = std::sqrt(-2.0f * std::log(u1));
  float two_pi_u2 = 6.28318530717958647692f * u2;
  spare_ = mag * std::sin(two_pi_u2);
  has_spare_ = true;
  return mag * std::cos(two_pi_u2);
}

float Pcg32::Normal(float mean, float stddev) { return mean + stddev * Normal(); }

uint32_t Pcg32::Below(uint32_t n) {
  DAR_CHECK_GT(n, 0u);
  // Debiased modulo (Lemire-style rejection).
  uint32_t threshold = (0u - n) % n;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) return r % n;
  }
}

bool Pcg32::Bernoulli(float p) { return NextFloat() < p; }

float Pcg32::Gumbel() {
  float u = 0.0f;
  do {
    u = NextFloat();
  } while (u <= 1e-12f);
  return -std::log(-std::log(u));
}

Pcg32 Pcg32::Split() {
  uint64_t seed = (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  uint64_t stream = (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  return Pcg32(seed, stream | 1u);
}

}  // namespace dar
