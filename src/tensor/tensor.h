// Dense row-major float32 tensor.
//
// This is the storage substrate underneath the autograd engine and all
// neural-network modules. It deliberately supports only what the
// rationalization pipeline needs: contiguous row-major float data with up to
// four dimensions, value semantics, and a small set of factory functions.
// Compute kernels live in tensor_ops.h.
#ifndef DAR_TENSOR_TENSOR_H_
#define DAR_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "tensor/random.h"

namespace dar {

/// Shape of a tensor: a list of dimension sizes, outermost first.
using Shape = std::vector<int64_t>;

/// Returns the number of elements implied by `shape` (1 for a scalar shape).
int64_t NumElements(const Shape& shape);

/// Human-readable "[2, 3, 4]" rendering of a shape.
std::string ShapeToString(const Shape& shape);

/// A dense, contiguous, row-major float32 tensor with value semantics.
///
/// Copying copies the buffer; moving steals it. Rank 0 (scalar) through
/// rank 4 are supported. Indexing helpers are provided for ranks 1–3, which
/// covers every access pattern in the library ([batch], [batch, dim],
/// [batch, time, dim]).
class Tensor {
 public:
  /// Creates an empty tensor (rank 1, zero elements).
  Tensor();

  /// Creates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Creates a tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Creates a tensor wrapping a copy of `values`; sizes must agree.
  Tensor(Shape shape, std::vector<float> values);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;

  // ---- Factories ----------------------------------------------------------

  /// All zeros.
  static Tensor Zeros(Shape shape);

  /// Scratch buffer the caller promises to FULLY overwrite before any
  /// element is read. Normally zero-initialized (identical to
  /// Tensor(shape)); when the sentinel poison mode is on
  /// (check::SetPoisonScratch) every element is NaN instead, so a kernel
  /// that breaks the promise and reads an unwritten element produces a NaN
  /// the op-level sentinels attribute instead of a silent zero.
  static Tensor Scratch(Shape shape);

  /// All ones.
  static Tensor Ones(Shape shape);

  /// All elements equal to `value`.
  static Tensor Full(Shape shape, float value);

  /// A scalar (rank-0) tensor.
  static Tensor Scalar(float value);

  /// 1-D tensor from explicit values.
  static Tensor FromVector(std::vector<float> values);

  /// I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(Shape shape, Pcg32& rng, float stddev = 1.0f);

  /// I.i.d. Uniform[lo, hi) entries.
  static Tensor Rand(Shape shape, Pcg32& rng, float lo = 0.0f, float hi = 1.0f);

  /// Identity matrix of size n x n.
  static Tensor Eye(int64_t n);

  /// [start, start+step, ...], `count` entries.
  static Tensor Arange(int64_t count, float start = 0.0f, float step = 1.0f);

  // ---- Introspection ------------------------------------------------------

  const Shape& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t axis) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  // ---- Element access (bounds-checked) ------------------------------------

  /// Scalar value of a rank-0 or single-element tensor.
  float item() const;

  float& at(int64_t i);
  float at(int64_t i) const;
  float& at(int64_t i, int64_t j);
  float at(int64_t i, int64_t j) const;
  float& at(int64_t i, int64_t j, int64_t k);
  float at(int64_t i, int64_t j, int64_t k) const;

  /// Flat (linear) access without shape interpretation.
  float& flat(int64_t i);
  float flat(int64_t i) const;

  // ---- Whole-tensor utilities ---------------------------------------------

  /// Returns a tensor with the same data and a new shape; element counts
  /// must match. This is a copy (buffers are value-semantic).
  Tensor Reshape(Shape new_shape) const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// True if shapes are equal and all elements differ by at most `tol`.
  bool AllClose(const Tensor& other, float tol = 1e-5f) const;

  /// "Tensor([2, 3]) [[...], [...]]" preview (truncated for large tensors).
  std::string ToString(int64_t max_per_dim = 8) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace dar

#endif  // DAR_TENSOR_TENSOR_H_
