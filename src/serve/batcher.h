// Dynamic micro-batching for single-request traffic.
//
// Callers submit one text at a time and get a future; a pool of worker
// threads drains the shared queue, coalescing up to `max_batch` waiting
// requests (lingering up to `max_wait_us` for stragglers) into one padded
// batch, runs a single forward through the session, and fulfills each
// request's future. Deterministic eval masks guarantee batched results are
// identical to the single-request path — padding cannot leak across rows
// because every op is gated on the validity mask.
//
// When the queue holds more requests than fit in one batch, workers pick a
// *length-homogeneous* subset from the front region of the queue instead
// of a strict FIFO slice: a padded batch costs O(max_batch x longest
// sequence), so batching a short request with a long one wastes compute on
// padding. The oldest request is always included, so selection never
// starves anyone.
#ifndef DAR_SERVE_BATCHER_H_
#define DAR_SERVE_BATCHER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/recorder.h"
#include "serve/session.h"
#include "sync/mutex.h"

namespace dar {
namespace serve {

/// Tuning knobs for the micro-batcher.
struct BatcherConfig {
  /// Largest number of requests coalesced into one forward.
  int64_t max_batch = 16;
  /// How long a worker lingers for the batch to fill once it has at least
  /// one request (0 = greedy: take whatever is queued).
  int64_t max_wait_us = 200;
  /// Worker threads draining the queue.
  int num_workers = 2;
  /// Admission bound: Submit blocks while this many requests are already
  /// queued (0 = unbounded). Backpressure keeps queueing delay and the
  /// queue's memory footprint bounded when producers outrun the model.
  int64_t max_queue = 0;
};

/// Multi-threaded micro-batching front of an InferenceSession.
class MicroBatcher {
 public:
  /// `session` must outlive the batcher.
  MicroBatcher(const InferenceSession& session, BatcherConfig config);

  /// Drains outstanding requests, then joins the workers.
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one text; the future resolves once a worker has served it.
  /// Blocks while the queue is at `max_queue` (when bounded). Thread-safe;
  /// every Submit must have returned before Shutdown begins.
  std::future<InferenceResult> Submit(const std::string& text)
      DAR_EXCLUDES(mu_);

  /// Non-blocking Submit: nullopt when the queue is at `max_queue` instead
  /// of waiting for space ("queue full / would block" made observable —
  /// the HTTP front-end maps it to 503 so saturation sheds load rather
  /// than tying up connection threads). Unbounded queues never reject.
  /// Same thread-safety and shutdown contract as Submit.
  std::optional<std::future<InferenceResult>> TrySubmit(
      const std::string& text) DAR_EXCLUDES(mu_);

  /// Stops accepting requests, serves everything still queued, and joins
  /// the workers. Idempotent; also run by the destructor.
  void Shutdown() DAR_EXCLUDES(mu_);

  const BatcherConfig& config() const { return config_; }

 private:
  struct Pending {
    std::vector<int64_t> tokens;
    std::promise<InferenceResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// The submitting request's trace (null for untraced callers), picked
    /// up ambiently from obs::CurrentRequestTrace() at Submit time. The
    /// worker that serves the batch merges its batch/forward spans into
    /// every traced member before fulfilling the promise; the promise →
    /// future edge then hands ownership back to the submitting thread.
    std::shared_ptr<obs::TraceCollector> trace;
  };

  /// How far past one batch the length-aware selection looks into the
  /// queue; bounds selection cost to O(scan log scan) under the lock.
  static constexpr size_t kLengthScanFactor = 8;

  /// Removes and returns `take` requests from the queue: the whole queue
  /// when it fits, otherwise a length-homogeneous subset that always
  /// includes the oldest request. Requires `take <= queue_.size()`.
  std::vector<Pending> TakeBatchLocked(size_t take) DAR_REQUIRES(mu_);

  void WorkerLoop() DAR_EXCLUDES(mu_);

  const InferenceSession* session_;
  BatcherConfig config_;

  /// kBatcher sits above the registry/cache band and below stats/obs:
  /// workers release mu_ before the forward, so the only locks taken
  /// while holding it are none — the rank just pins the batcher's place
  /// in the global order.
  sync::Mutex mu_{sync::Rank::kBatcher, "serve.batcher"};
  sync::CondVar cv_;
  sync::CondVar space_cv_;  // signaled when queued count drops
  std::deque<Pending> queue_ DAR_GUARDED_BY(mu_);
  bool stop_ DAR_GUARDED_BY(mu_) = false;
  /// Written by the constructor, joined/cleared by Shutdown (which checks
  /// emptiness under mu_ only to make Shutdown idempotent).
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace dar

#endif  // DAR_SERVE_BATCHER_H_
