// Serving-path cache: embedding rows and post-encoder hidden states.
//
// Serving workloads repeat themselves — health probes, retried requests,
// paginated UIs re-submitting the same review, A/B traffic mirrored to two
// aspect models — and the expensive part of every repeat is the two
// players' recurrent encoders. This cache memoizes the serving forward at
// the two natural cut points the core layer exposes
// (core::RationalizerBase's serving-cache decomposition):
//
//   embedding tier — one entry per (model, table, token id): the [E] row
//       the frozen embedding table maps that token to. Hits assemble the
//       embedded input without touching the table; a request whose
//       sequence misses the encoder tier but reuses rows is a "partial".
//   encoder tier   — one entry per (model, token-id sequence): the
//       generator's and predictor's post-encoder states [1, T, H] for
//       that exact sequence. A hit skips both encoders entirely and
//       re-runs only the selection/classification heads.
//
// Bit-exactness contract. EvalMaskConst / PredictLogitsConst are defined
// as compositions of the cached stages, per-sequence forwards equal
// padded-batch forwards at valid positions (the batch-composition
// invariance the micro-batcher already certifies), and cached values are
// byte copies of what the cold path computes — so a cached session's
// responses are bit-identical to an uncached session's on the same
// checkpoint. tests/serve_cache_test.cc certifies this differentially
// over randomized request streams, forced evictions, forced hash
// collisions, and concurrent checkpoint reloads.
//
// Keying and collisions. Encoder entries are addressed by a 64-bit FNV-1a
// digest of (model id, token ids) but store the full id sequence; a
// lookup whose digest matches but whose ids differ counts a collision
// and misses — a hash collision can cost a recompute, never a wrong
// answer. CacheConfig::sequence_hash_override lets tests force this path.
//
// Invalidation. Every InferenceSession that attaches to the cache gets a
// fresh monotonically increasing model id, which prefixes every key that
// session writes. A checkpoint reload builds a new session, so it can
// never observe the old session's entries; invalidation (swept when the
// registry replaces or removes a model) only reclaims the dead bytes
// early and blocks in-flight stragglers from inserting.
//
// Concurrency. Entries are sharded by key digest; each shard holds its
// own mutex, LRU list, and byte budget, so concurrent requests contend
// only when they touch the same shard. Encoder payloads are handed out
// as shared_ptr-to-const so eviction never invalidates a reader.
#ifndef DAR_SERVE_CACHE_H_
#define DAR_SERVE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "sync/mutex.h"
#include "tensor/tensor.h"

namespace dar {
namespace serve {

/// Cache behavior knobs. The cache ships disabled: serving is bit-exact
/// with or without it, so turning it on is purely a latency/memory trade.
struct CacheConfig {
  /// Master switch. When false, sessions never consult the cache and
  /// responses report CacheOutcome::kUncached.
  bool enabled = false;
  /// Per-tier switches (both on by default when enabled).
  bool embedding_tier = true;
  bool encoder_tier = true;
  /// Total byte budget across both tiers (split evenly between enabled
  /// tiers, then evenly across shards). The accounting covers payloads
  /// plus a fixed per-entry overhead estimate.
  size_t capacity_bytes = size_t{64} << 20;
  /// Lock striping width. More shards = less contention, coarser budget
  /// granularity.
  int num_shards = 8;
  /// Test hook: replaces the encoder tier's sequence digest (the model-id
  /// prefix is still mixed in). Forcing a constant digest forces the
  /// collision-verification path.
  std::function<uint64_t(const std::vector<int64_t>&)> sequence_hash_override;
};

/// Serving-stack configuration block (grows alongside the stack).
struct ServeConfig {
  CacheConfig cache;
  /// GEMM kernel threads for the encoder forwards (tensor/gemm.h). The
  /// router applies the knob process-wide at construction — a quiesced
  /// point, before any traffic. Responses are bit-identical for any value
  /// (fixed M partition, see gemm.h), so this is a latency knob only:
  /// n > 1 builds the kernel pool, 1 forces the inline path, 0 (default)
  /// leaves the current process setting untouched.
  int kernel_threads = 0;
};

/// What the cache contributed to one request, carried on InferenceResult
/// and surfaced as the X-DAR-Cache response header.
enum class CacheOutcome : uint8_t {
  /// No cache attached (or disabled): the pre-cache serving path.
  kUncached = 0,
  /// Cache consulted, nothing reused.
  kMiss = 1,
  /// Encoder tier missed but at least one embedding row was reused.
  kPartial = 2,
  /// Encoder tier hit: both encoders skipped.
  kHit = 3,
};

/// "uncached" | "miss" | "partial" | "hit".
const char* CacheOutcomeName(CacheOutcome outcome);

/// An encoder-tier payload: everything needed to re-run only the head
/// stages for one token sequence. Immutable once published.
struct EncoderStatesEntry {
  /// The exact sequence this entry was computed from (collision check).
  std::vector<int64_t> ids;
  /// Generator post-encoder states [1, T, H_g].
  Tensor gen_states;
  /// Predictor post-encoder states [1, T, H_p] (under the sequence's
  /// deterministic eval mask, which is itself a function of gen_states).
  Tensor pred_states;
};

/// Point-in-time counters for one (model, tier).
struct CacheTierStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  /// Digest matches rejected by the full-sequence comparison (encoder
  /// tier only; always 0 for the embedding tier).
  int64_t collisions = 0;
  int64_t bytes = 0;
  int64_t entries = 0;
};

/// The two-tier sharded LRU cache. One instance serves any number of
/// sessions (the Router owns one per serving stack); all methods are
/// thread-safe.
class ServeCache {
 public:
  /// Identifies one attached session. 0 is never issued ("no model").
  using ModelId = uint64_t;

  static constexpr const char* kEmbeddingTierName = "embedding";
  static constexpr const char* kEncoderTierName = "encoder";

  explicit ServeCache(CacheConfig config);

  /// Attaches the metrics registry (not owned, must outlive the cache)
  /// that per-model instruments publish into:
  ///   serve.cache_hits_total{model=...,tier=...}
  ///   serve.cache_misses_total{model=...,tier=...}
  ///   serve.cache_evictions_total{model=...,tier=...}
  ///   serve.cache_collisions_total{model=...,tier="encoder"}
  ///   serve.cache_bytes{model=...,tier=...}          (gauge)
  ///   serve.cache_hit_rate{model=...,tier=...}       (gauge, hits/lookups)
  /// Models registered before or after the call both get instruments.
  void PublishMetrics(obs::MetricsRegistry* metrics);

  /// Issues a fresh model id for one session under a metrics label.
  /// Fresh ids are never reused, so a reloaded checkpoint (a new session)
  /// starts cold by construction and can never read a stale entry.
  ModelId RegisterModel(const std::string& label);

  /// Marks `model` dead and sweeps its entries from both tiers: later
  /// lookups miss, later inserts (in-flight requests against a replaced
  /// session) are dropped. Idempotent.
  void InvalidateModel(ModelId model);

  // ---- Embedding tier ------------------------------------------------------

  /// Copies the cached [dim] row for (model, table_tag, token) into `out`
  /// and returns true; returns false (counting a miss) when absent. The
  /// table_tag distinguishes the players' tables (see
  /// InferenceSession::EnableCache for the shared-table optimization).
  bool LookupEmbeddingRow(ModelId model, uint32_t table_tag, int64_t token,
                          float* out, int64_t dim);

  /// Publishes a row copy. Dropped when the tier is off or the model is
  /// dead. Re-inserting an existing key refreshes recency only.
  void InsertEmbeddingRow(ModelId model, uint32_t table_tag, int64_t token,
                          const float* row, int64_t dim);

  // ---- Encoder tier --------------------------------------------------------

  /// The entry for (model, ids), or nullptr (counting a miss). A digest
  /// match with different ids counts a collision *and* a miss. The
  /// returned payload stays valid after eviction.
  std::shared_ptr<const EncoderStatesEntry> LookupEncoderStates(
      ModelId model, const std::vector<int64_t>& ids);

  /// Publishes the two state tensors for (model, ids). Dropped when the
  /// tier is off or the model is dead; a digest collision with a live
  /// entry replaces it (the newer sequence wins).
  void InsertEncoderStates(ModelId model, const std::vector<int64_t>& ids,
                           Tensor gen_states, Tensor pred_states);

  // ---- Introspection -------------------------------------------------------

  /// Counters for one (model, tier); tier names above. Zeroes for an
  /// unknown model.
  CacheTierStats Stats(ModelId model, const std::string& tier) const;

  const CacheConfig& config() const { return config_; }

  /// Test hook: overwrites element [0, 0, 0] of the cached generator
  /// states for (model, ids) with NaN, simulating in-memory corruption of
  /// a cached payload. Returns false when the entry is absent. The
  /// serving path's restore sentinels (check::ScanForNonFinite) exist to
  /// catch exactly this.
  bool CorruptEncoderEntryForTesting(ModelId model,
                                     const std::vector<int64_t>& ids);

 private:
  struct EmbeddingEntry {
    ModelId model = 0;
    uint32_t table_tag = 0;
    int64_t token = 0;
    std::vector<float> row;
    size_t bytes = 0;
  };
  struct EncoderSlot {
    ModelId model = 0;
    uint64_t digest = 0;
    std::shared_ptr<EncoderStatesEntry> payload;
    size_t bytes = 0;
  };

  /// One lock stripe of one tier: LRU list (front = most recent) plus a
  /// key -> list-position index and byte accounting. All shard mutexes
  /// share one rank (and one contention-counter name): a thread holds at
  /// most one stripe at a time, and the rank checker's equal-rank rule
  /// turns any accidental shard-in-shard nesting into an abort.
  template <typename Entry>
  struct Shard {
    sync::Mutex mu{sync::Rank::kCacheShard, "serve.cache_shard"};
    std::list<Entry> lru DAR_GUARDED_BY(mu);
    std::unordered_map<uint64_t, typename std::list<Entry>::iterator> index
        DAR_GUARDED_BY(mu);
    size_t bytes DAR_GUARDED_BY(mu) = 0;
  };

  /// Per-(model, tier) counters plus cached instrument pointers (null
  /// until a metrics registry is attached).
  struct TierCounters {
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};
    std::atomic<int64_t> evictions{0};
    std::atomic<int64_t> collisions{0};
    std::atomic<int64_t> bytes{0};
    std::atomic<int64_t> entries{0};
    obs::Counter* hits_counter = nullptr;
    obs::Counter* misses_counter = nullptr;
    obs::Counter* evictions_counter = nullptr;
    obs::Counter* collisions_counter = nullptr;
    obs::Gauge* bytes_gauge = nullptr;
    obs::Gauge* hit_rate_gauge = nullptr;
  };
  struct ModelState {
    std::string label;
    std::atomic<bool> alive{true};
    TierCounters embedding;
    TierCounters encoder;
  };

  uint64_t EmbeddingKey(ModelId model, uint32_t table_tag,
                        int64_t token) const;
  uint64_t SequenceDigest(ModelId model,
                          const std::vector<int64_t>& ids) const;
  Shard<EmbeddingEntry>& EmbeddingShardFor(uint64_t key);
  Shard<EncoderSlot>& EncoderShardFor(uint64_t key);
  size_t TierShardBudget() const;
  ModelState* FindModel(ModelId model) const DAR_EXCLUDES(models_mu_);
  void BindInstrumentsLocked(ModelState& state) DAR_REQUIRES(models_mu_);
  static void RecordLookup(TierCounters& tc, bool hit);
  static void RecordBytesDelta(TierCounters& tc, int64_t delta,
                               int64_t entries_delta);

  CacheConfig config_;
  std::vector<std::unique_ptr<Shard<EmbeddingEntry>>> embedding_shards_;
  std::vector<std::unique_ptr<Shard<EncoderSlot>>> encoder_shards_;

  /// Model-table rank sits below the shard rank: FindModel releases
  /// models_mu_ before any stripe is touched (ModelState pointers are
  /// stable), so the two are never actually nested — distinct ranks keep
  /// it that way mechanically.
  mutable sync::Mutex models_mu_{sync::Rank::kCacheTable,
                                 "serve.cache_models"};
  std::unordered_map<ModelId, std::unique_ptr<ModelState>> models_
      DAR_GUARDED_BY(models_mu_);
  ModelId next_model_id_ DAR_GUARDED_BY(models_mu_) = 1;
  obs::MetricsRegistry* metrics_ DAR_GUARDED_BY(models_mu_) = nullptr;
};

}  // namespace serve
}  // namespace dar

#endif  // DAR_SERVE_CACHE_H_
