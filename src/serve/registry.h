// Named multi-model serving: one InferenceSession per checkpoint (e.g. one
// per dataset aspect), with request routing by model name.
#ifndef DAR_SERVE_REGISTRY_H_
#define DAR_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/session.h"
#include "sync/mutex.h"

namespace dar {
namespace serve {

/// Thread-safe name -> session map. Sessions are shared_ptr so a request
/// in flight keeps its model alive even if it is concurrently replaced.
class ModelRegistry {
 public:
  ModelRegistry() = default;

  /// Restores every still-registered session's ServingStats to a private
  /// registry. Register rebinds session stats into the shared metrics
  /// registry (PublishMetrics), which the registry does not own and which
  /// routinely dies with the router that injected it — without this
  /// restore, a session outliving the registry is left holding instrument
  /// pointers into freed memory, and its next stats call is a
  /// use-after-free. Recorded counts are dropped (the BindStats contract);
  /// must not run while registered sessions are serving traffic.
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Sets the metrics registry new registrations publish into (not owned;
  /// must outlive the registry; pass nullptr to stop). Every subsequent
  /// Register(name, session) rebinds the session's ServingStats onto this
  /// registry with a `{model="name"}` label, so one /metrics exposition
  /// carries per-model request/latency series for every routed model. Call
  /// before registering sessions — already-registered ones keep their
  /// previous stats binding.
  void PublishMetrics(obs::MetricsRegistry* metrics);

  /// Attaches the serving cache (not owned, must outlive the registry;
  /// pass nullptr to stop). Subsequent Register(name, session) calls
  /// enable the cache on the session under the `name` label, and
  /// replacing or unregistering a session sweeps its cache entries — a
  /// checkpoint reload through Register can never serve stale states.
  /// Like PublishMetrics, call before registering sessions.
  void AttachCache(ServeCache* cache);

  /// Registers (or hot-swaps) a session under `name`. When a metrics
  /// registry is attached (PublishMetrics), the session's stats are
  /// rebound to it under the `{model=name}` label — so register sessions
  /// before they serve traffic. When a cache is attached (AttachCache)
  /// the session joins it cold and the replaced session's entries are
  /// invalidated.
  void Register(const std::string& name,
                std::shared_ptr<InferenceSession> session);

  /// Removes `name`; returns false if it was not registered. In-flight
  /// requests holding the session keep it alive until they finish (its
  /// cache entries are invalidated immediately).
  bool Unregister(const std::string& name);

  /// The session for `name`, or nullptr.
  std::shared_ptr<InferenceSession> Get(const std::string& name) const;

  bool Contains(const std::string& name) const { return Get(name) != nullptr; }

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Routes one request to the named model. nullopt when `name` is not
  /// registered.
  std::optional<InferenceResult> Predict(const std::string& name,
                                         const std::string& text) const;

 private:
  /// kRegistry is the lowest rank band: Register holds mu_ while binding
  /// stats (obs registry, rank 50) and enabling the cache (cache table,
  /// rank 20), so everything it calls into must outrank it.
  mutable sync::Mutex mu_{sync::Rank::kRegistry, "serve.registry"};
  std::map<std::string, std::shared_ptr<InferenceSession>> sessions_
      DAR_GUARDED_BY(mu_);
  /// Names whose session stats were rebound onto metrics_ at Register
  /// time — exactly the bindings the destructor must undo (PublishMetrics
  /// can toggle mid-stream, so "metrics_ is set now" is not the answer).
  std::map<std::string, bool> stats_bound_ DAR_GUARDED_BY(mu_);
  obs::MetricsRegistry* metrics_ DAR_GUARDED_BY(mu_) = nullptr;
  ServeCache* cache_ DAR_GUARDED_BY(mu_) = nullptr;
};

}  // namespace serve
}  // namespace dar

#endif  // DAR_SERVE_REGISTRY_H_
