#include "serve/session.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "check/sentinel.h"
#include "data/tokenizer.h"
#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace serve {

std::vector<RationaleSpan> MaskToSpans(const std::vector<uint8_t>& mask) {
  std::vector<RationaleSpan> spans;
  int64_t begin = -1;
  for (size_t t = 0; t <= mask.size(); ++t) {
    bool selected = t < mask.size() && mask[t] != 0;
    if (selected && begin < 0) {
      begin = static_cast<int64_t>(t);
    } else if (!selected && begin >= 0) {
      spans.push_back({begin, static_cast<int64_t>(t)});
      begin = -1;
    }
  }
  return spans;
}

InferenceSession::InferenceSession(
    std::unique_ptr<core::RationalizerBase> model, data::Vocabulary vocab)
    : model_(std::move(model)),
      vocab_(std::move(vocab)),
      stats_(std::make_unique<ServingStats>()) {
  DAR_CHECK(model_ != nullptr);
  // Pin eval mode once: dropout becomes the identity and EvalMaskConst is
  // deterministic, so concurrent const forwards are safe.
  model_->SetTraining(false);
}

std::unique_ptr<InferenceSession> InferenceSession::FromCheckpoint(
    std::unique_ptr<core::RationalizerBase> model, data::Vocabulary vocab,
    const std::string& path, std::string* error) {
  DAR_CHECK(model != nullptr);
  nn::CheckpointResult result = core::LoadRationalizer(*model, path);
  if (!result.ok) {
    if (error != nullptr) *error = result.error;
    return nullptr;
  }
  return std::make_unique<InferenceSession>(std::move(model),
                                            std::move(vocab));
}

void InferenceSession::BindStats(obs::MetricsRegistry* registry,
                                 const std::string& model_label) {
  stats_ = std::make_unique<ServingStats>(
      registry, "serve", ServingStats::kDefaultExactLatencyCap, model_label);
}

std::vector<int64_t> InferenceSession::Encode(const std::string& text) const {
  std::vector<int64_t> ids = data::Encode(text, vocab_);
  if (ids.empty()) ids.push_back(data::Vocabulary::kUnkId);
  return ids;
}

InferenceResult InferenceSession::Predict(const std::string& text) const {
  auto start = std::chrono::steady_clock::now();
  std::vector<InferenceResult> results = PredictTokenBatch({Encode(text)});
  auto elapsed = std::chrono::steady_clock::now() - start;
  stats_->RecordLatencyUs(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
  return std::move(results[0]);
}

void InferenceSession::EnableCache(ServeCache* cache,
                                   const std::string& label) {
  DAR_CHECK(cache != nullptr);
  cache_ = cache;
  cache_model_ = cache->RegisterModel(label);
  // Both players embed from their own frozen copy of the same pretrained
  // table; when the copies are still bit-identical one key space serves
  // both. A method that ever diverged them (fine-tuned tables) degrades
  // to separate tags, never to wrong rows.
  const Tensor& gen_table = model_->generator().embedding().table().value();
  const Tensor& pred_table = model_->predictor().embedding().table().value();
  bool identical =
      gen_table.shape() == pred_table.shape() &&
      std::memcmp(gen_table.data(), pred_table.data(),
                  static_cast<size_t>(gen_table.numel()) * sizeof(float)) == 0;
  gen_table_tag_ = 0;
  pred_table_tag_ = identical ? 0 : 1;
}

void InferenceSession::InvalidateCacheEntries() const {
  if (cache_ != nullptr) cache_->InvalidateModel(cache_model_);
}

InferenceResult InferenceSession::AssembleResult(
    const std::vector<int64_t>& ids, int64_t i, const Tensor& mask,
    const Tensor& probs) const {
  int64_t num_classes = probs.size(1);
  int64_t len = static_cast<int64_t>(ids.size());
  InferenceResult r;
  r.probs.resize(static_cast<size_t>(num_classes));
  for (int64_t c = 0; c < num_classes; ++c) {
    r.probs[static_cast<size_t>(c)] = probs.at(i, c);
    if (probs.at(i, c) > r.probs[static_cast<size_t>(r.label)]) r.label = c;
  }
  r.confidence = r.probs[static_cast<size_t>(r.label)];
  r.tokens.reserve(static_cast<size_t>(len));
  r.mask.reserve(static_cast<size_t>(len));
  for (int64_t t = 0; t < len; ++t) {
    r.tokens.push_back(vocab_.Token(ids[static_cast<size_t>(t)]));
    r.mask.push_back(mask.at(i, t) > 0.5f ? 1 : 0);
  }
  r.spans = MaskToSpans(r.mask);
  for (const RationaleSpan& span : r.spans) {
    for (int64_t t = span.begin; t < span.end; ++t) {
      if (!r.rationale_text.empty()) r.rationale_text += ' ';
      r.rationale_text += r.tokens[static_cast<size_t>(t)];
    }
  }
  return r;
}

Tensor InferenceSession::AssembleEmbedded(const nn::Embedding& table,
                                          uint32_t table_tag,
                                          const std::vector<int64_t>& ids,
                                          bool* any_row_hit) const {
  int64_t t_len = static_cast<int64_t>(ids.size());
  int64_t dim = table.dim();
  Tensor out(Shape{1, t_len, dim});
  for (int64_t t = 0; t < t_len; ++t) {
    int64_t token = ids[static_cast<size_t>(t)];
    float* dst = out.data() + t * dim;
    if (cache_->LookupEmbeddingRow(cache_model_, table_tag, token, dst, dim)) {
      *any_row_hit = true;
    } else {
      const float* src = table.RowConst(token);
      std::memcpy(dst, src, static_cast<size_t>(dim) * sizeof(float));
      cache_->InsertEmbeddingRow(cache_model_, table_tag, token, src, dim);
    }
  }
  return out;
}

InferenceResult InferenceSession::PredictOneCached(
    const std::vector<int64_t>& ids) const {
  data::Batch batch =
      data::Batch::FromTokenSequences({ids}, data::Vocabulary::kPadId);
  CacheOutcome outcome = CacheOutcome::kMiss;
  Tensor mask;
  Tensor logits;
  std::shared_ptr<const EncoderStatesEntry> entry;
  {
    obs::Span lookup_span("serve.cache_lookup");
    entry = cache_->LookupEncoderStates(cache_model_, ids);
  }
  if (entry != nullptr) {
    outcome = CacheOutcome::kHit;
    // Restored payloads skipped every autograd-level sentinel when they
    // were computed in some earlier request, so re-scan them here: a
    // corrupted cache entry must be caught at restore time, not shipped
    // as a confident wrong answer.
    if (check::SentinelEnabled()) {
      check::ScanForNonFinite("serve.cache_restore", "gen_states",
                              entry->gen_states.data(),
                              entry->gen_states.numel());
      check::ScanForNonFinite("serve.cache_restore", "pred_states",
                              entry->pred_states.data(),
                              entry->pred_states.numel());
    }
    mask = model_->EvalMaskFromStatesConst(batch, entry->gen_states);
    logits = model_->PredictLogitsFromStatesConst(batch, entry->pred_states);
  } else {
    bool any_row_hit = false;
    Tensor gen_states;
    Tensor pred_states;
    if (cache_->config().embedding_tier) {
      bool gen_hit = false;
      bool pred_hit = false;
      Tensor gen_emb = AssembleEmbedded(model_->generator().embedding(),
                                        gen_table_tag_, ids, &gen_hit);
      gen_states = model_->GenEncoderStatesConst(batch, &gen_emb);
      mask = model_->EvalMaskFromStatesConst(batch, gen_states);
      Tensor pred_emb = AssembleEmbedded(model_->predictor().embedding(),
                                         pred_table_tag_, ids, &pred_hit);
      pred_states = model_->PredEncoderStatesConst(batch, mask, &pred_emb);
      // With a shared key space the predictor pass trivially hits every
      // row the generator pass just inserted; only cross-request reuse
      // should count toward the "partial" outcome.
      any_row_hit =
          gen_hit || (pred_table_tag_ != gen_table_tag_ && pred_hit);
    } else {
      gen_states = model_->GenEncoderStatesConst(batch);
      mask = model_->EvalMaskFromStatesConst(batch, gen_states);
      pred_states = model_->PredEncoderStatesConst(batch, mask);
    }
    logits = model_->PredictLogitsFromStatesConst(batch, pred_states);
    cache_->InsertEncoderStates(cache_model_, ids, std::move(gen_states),
                                std::move(pred_states));
    if (any_row_hit) outcome = CacheOutcome::kPartial;
  }
  Tensor probs = SoftmaxRows(logits);
  // The serving path runs no autograd tape in eval composition stages, so
  // the op-level sentinels never saw these buffers; scan the response
  // surface directly.
  if (check::SentinelEnabled()) {
    check::ScanForNonFinite("serve.forward", "probs", probs.data(),
                            probs.numel());
  }
  InferenceResult r = AssembleResult(ids, 0, mask, probs);
  r.cache = outcome;
  return r;
}

std::vector<InferenceResult> InferenceSession::PredictTokenBatch(
    const std::vector<std::vector<int64_t>>& sequences) const {
  obs::Span span("serve.forward");
  if (cache_ != nullptr && cache_->config().enabled) {
    // Cached mode serves per sequence (B=1): each sequence's states are
    // cacheable independently, and per-sequence forwards are bit-identical
    // to the padded-batch forward (the micro-batcher's batch-composition
    // invariance), so responses match the uncached path exactly.
    std::vector<InferenceResult> results;
    results.reserve(sequences.size());
    for (const std::vector<int64_t>& ids : sequences) {
      results.push_back(PredictOneCached(ids));
      stats_->RecordBatch(1);
      stats_->RecordCacheOutcome(results.back().cache);
    }
    return results;
  }
  data::Batch batch =
      data::Batch::FromTokenSequences(sequences, data::Vocabulary::kPadId);
  Tensor mask = model_->EvalMaskConst(batch);
  Tensor logits = model_->PredictLogitsConst(batch, mask);
  Tensor probs = SoftmaxRows(logits);
  if (check::SentinelEnabled()) {
    check::ScanForNonFinite("serve.forward", "probs", probs.data(),
                            probs.numel());
  }
  stats_->RecordBatch(batch.batch_size());

  std::vector<InferenceResult> results;
  results.reserve(sequences.size());
  for (int64_t i = 0; i < batch.batch_size(); ++i) {
    results.push_back(
        AssembleResult(sequences[static_cast<size_t>(i)], i, mask, probs));
  }
  return results;
}

std::vector<InferenceResult> InferenceSession::PredictBatch(
    const std::vector<std::string>& texts) const {
  std::vector<std::vector<int64_t>> sequences;
  sequences.reserve(texts.size());
  for (const std::string& text : texts) sequences.push_back(Encode(text));
  return PredictTokenBatch(sequences);
}

}  // namespace serve
}  // namespace dar
