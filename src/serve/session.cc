#include "serve/session.h"

#include <chrono>
#include <utility>

#include "data/tokenizer.h"
#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace serve {

std::vector<RationaleSpan> MaskToSpans(const std::vector<uint8_t>& mask) {
  std::vector<RationaleSpan> spans;
  int64_t begin = -1;
  for (size_t t = 0; t <= mask.size(); ++t) {
    bool selected = t < mask.size() && mask[t] != 0;
    if (selected && begin < 0) {
      begin = static_cast<int64_t>(t);
    } else if (!selected && begin >= 0) {
      spans.push_back({begin, static_cast<int64_t>(t)});
      begin = -1;
    }
  }
  return spans;
}

InferenceSession::InferenceSession(
    std::unique_ptr<core::RationalizerBase> model, data::Vocabulary vocab)
    : model_(std::move(model)),
      vocab_(std::move(vocab)),
      stats_(std::make_unique<ServingStats>()) {
  DAR_CHECK(model_ != nullptr);
  // Pin eval mode once: dropout becomes the identity and EvalMaskConst is
  // deterministic, so concurrent const forwards are safe.
  model_->SetTraining(false);
}

std::unique_ptr<InferenceSession> InferenceSession::FromCheckpoint(
    std::unique_ptr<core::RationalizerBase> model, data::Vocabulary vocab,
    const std::string& path, std::string* error) {
  DAR_CHECK(model != nullptr);
  nn::CheckpointResult result = core::LoadRationalizer(*model, path);
  if (!result.ok) {
    if (error != nullptr) *error = result.error;
    return nullptr;
  }
  return std::make_unique<InferenceSession>(std::move(model),
                                            std::move(vocab));
}

void InferenceSession::BindStats(obs::MetricsRegistry* registry,
                                 const std::string& model_label) {
  stats_ = std::make_unique<ServingStats>(
      registry, "serve", ServingStats::kDefaultExactLatencyCap, model_label);
}

std::vector<int64_t> InferenceSession::Encode(const std::string& text) const {
  std::vector<int64_t> ids = data::Encode(text, vocab_);
  if (ids.empty()) ids.push_back(data::Vocabulary::kUnkId);
  return ids;
}

InferenceResult InferenceSession::Predict(const std::string& text) const {
  auto start = std::chrono::steady_clock::now();
  std::vector<InferenceResult> results = PredictTokenBatch({Encode(text)});
  auto elapsed = std::chrono::steady_clock::now() - start;
  stats_->RecordLatencyUs(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
  return std::move(results[0]);
}

std::vector<InferenceResult> InferenceSession::PredictTokenBatch(
    const std::vector<std::vector<int64_t>>& sequences) const {
  obs::Span span("serve.forward");
  data::Batch batch =
      data::Batch::FromTokenSequences(sequences, data::Vocabulary::kPadId);
  Tensor mask = model_->EvalMaskConst(batch);
  Tensor logits = model_->PredictLogitsConst(batch, mask);
  Tensor probs = SoftmaxRows(logits);
  stats_->RecordBatch(batch.batch_size());

  int64_t num_classes = logits.size(1);
  std::vector<InferenceResult> results;
  results.reserve(sequences.size());
  for (int64_t i = 0; i < batch.batch_size(); ++i) {
    const std::vector<int64_t>& ids = sequences[static_cast<size_t>(i)];
    int64_t len = static_cast<int64_t>(ids.size());
    InferenceResult r;
    r.probs.resize(static_cast<size_t>(num_classes));
    for (int64_t c = 0; c < num_classes; ++c) {
      r.probs[static_cast<size_t>(c)] = probs.at(i, c);
      if (probs.at(i, c) > r.probs[static_cast<size_t>(r.label)]) r.label = c;
    }
    r.confidence = r.probs[static_cast<size_t>(r.label)];
    r.tokens.reserve(static_cast<size_t>(len));
    r.mask.reserve(static_cast<size_t>(len));
    for (int64_t t = 0; t < len; ++t) {
      r.tokens.push_back(vocab_.Token(ids[static_cast<size_t>(t)]));
      r.mask.push_back(mask.at(i, t) > 0.5f ? 1 : 0);
    }
    r.spans = MaskToSpans(r.mask);
    for (const RationaleSpan& span : r.spans) {
      for (int64_t t = span.begin; t < span.end; ++t) {
        if (!r.rationale_text.empty()) r.rationale_text += ' ';
        r.rationale_text += r.tokens[static_cast<size_t>(t)];
      }
    }
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<InferenceResult> InferenceSession::PredictBatch(
    const std::vector<std::string>& texts) const {
  std::vector<std::vector<int64_t>> sequences;
  sequences.reserve(texts.size());
  for (const std::string& text : texts) sequences.push_back(Encode(text));
  return PredictTokenBatch(sequences);
}

}  // namespace serve
}  // namespace dar
