// Inference over a trained rationalizer: raw text in, label + confidence +
// extracted rationale out.
//
// An InferenceSession owns a trained RationalizerBase, pins it in eval
// mode, and exposes only the const, thread-compatible forward path
// (EvalMaskConst / PredictLogitsConst): any number of threads may call
// Predict / PredictTokenBatch on the same session concurrently. This is the
// building block the micro-batcher (serve/batcher.h) and the model
// registry (serve/registry.h) compose into a serving stack.
#ifndef DAR_SERVE_SESSION_H_
#define DAR_SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rationalizer.h"
#include "data/vocabulary.h"
#include "serve/cache.h"
#include "serve/stats.h"

namespace dar {
namespace serve {

/// Half-open token-index interval [begin, end) of one contiguous rationale
/// chunk. A response carries one span per maximal run of selected tokens.
struct RationaleSpan {
  int64_t begin = 0;
  int64_t end = 0;

  bool operator==(const RationaleSpan& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// Everything the serving API returns for one text.
struct InferenceResult {
  /// Predicted class in [0, num_classes).
  int64_t label = 0;
  /// Softmax probability of `label` over the rationale logits.
  float confidence = 0.0f;
  /// Full class distribution, length num_classes.
  std::vector<float> probs;
  /// The request's tokens as the model saw them (<unk> for OOV words).
  std::vector<std::string> tokens;
  /// Per-token rationale selection, aligned with `tokens` (1 = selected).
  std::vector<uint8_t> mask;
  /// Maximal runs of selected tokens, in order.
  std::vector<RationaleSpan> spans;
  /// The selected tokens joined with spaces (the human-readable rationale).
  std::string rationale_text;
  /// What the serving cache contributed (kUncached when no cache is
  /// attached). Carried through the micro-batcher so the HTTP layer can
  /// surface it as the X-DAR-Cache header. Not part of the response body:
  /// cached and uncached responses are bit-identical.
  CacheOutcome cache = CacheOutcome::kUncached;
};

/// Collapses a per-token 0/1 mask into its maximal selected runs.
std::vector<RationaleSpan> MaskToSpans(const std::vector<uint8_t>& mask);

/// A loaded model ready to answer requests.
class InferenceSession {
 public:
  /// Takes ownership of `model` (already trained, or about to be restored
  /// from a checkpoint) and a copy of the vocabulary it was trained with.
  /// The model is switched to eval mode once and must not be mutated for
  /// the session's lifetime.
  InferenceSession(std::unique_ptr<core::RationalizerBase> model,
                   data::Vocabulary vocab);

  /// Builds a session by restoring `model`'s parameters from a checkpoint
  /// written by core::SaveRationalizer. Returns nullptr (and fills `error`
  /// if given) when the checkpoint does not match the model.
  static std::unique_ptr<InferenceSession> FromCheckpoint(
      std::unique_ptr<core::RationalizerBase> model, data::Vocabulary vocab,
      const std::string& path, std::string* error = nullptr);

  /// Tokenizes and encodes one text. Empty or all-whitespace texts encode
  /// to a single <unk> token so every request stays servable.
  std::vector<int64_t> Encode(const std::string& text) const;

  /// Serves one text synchronously (no batching). Thread-safe.
  InferenceResult Predict(const std::string& text) const;

  /// Serves a batch of already-encoded requests with a single forward:
  /// the micro-batcher's execution path. Thread-safe.
  std::vector<InferenceResult> PredictTokenBatch(
      const std::vector<std::vector<int64_t>>& sequences) const;

  /// Serves several texts with one forward. Thread-safe.
  std::vector<InferenceResult> PredictBatch(
      const std::vector<std::string>& texts) const;

  const core::RationalizerBase& model() const { return *model_; }
  const data::Vocabulary& vocab() const { return vocab_; }

  /// Serving statistics for this session (both the naive Predict path and
  /// the micro-batched path record here).
  ServingStats& stats() const { return *stats_; }

  /// Replaces the private stats accumulator with one publishing into
  /// `registry` (not owned, must outlive the session) under a
  /// `{model="model_label"}` label block — per-model serving series on a
  /// shared /metrics registry. ModelRegistry::Register calls this with the
  /// registered name when the registry has a publish target. Must be called
  /// before the session serves traffic (it swaps the accumulator, and the
  /// batcher caches nothing but reads stats() concurrently once running);
  /// previously recorded counts are dropped.
  void BindStats(obs::MetricsRegistry* registry,
                 const std::string& model_label);

  /// Attaches the serving cache (not owned, must outlive the session; the
  /// ModelRegistry calls this from Register when one is attached there).
  /// Registers this session as a fresh cache model under `label` — a
  /// session always starts cold, so a checkpoint reload (a new session)
  /// can never serve the old session's entries. Like BindStats this must
  /// run before the session serves traffic. When the generator's and
  /// predictor's frozen embedding tables are bit-identical (they are for
  /// every stock method — both copy the same pretrained vectors) the two
  /// players share one embedding-tier key space, halving row storage.
  void EnableCache(ServeCache* cache, const std::string& label);

  /// Sweeps this session's entries from the attached cache (no-op without
  /// one). The registry calls this on the replaced session during a
  /// hot-swap and on Unregister: in-flight requests against the old
  /// session keep working — they just miss, and their late inserts are
  /// dropped.
  void InvalidateCacheEntries() const;

  /// The cache model id this session writes under (0 = no cache).
  ServeCache::ModelId cache_model_id() const { return cache_model_; }

 private:
  /// Serves one sequence through the cache (B=1 forward). Bit-identical
  /// to the batched uncached path by the batch-composition invariance the
  /// micro-batcher certifies.
  InferenceResult PredictOneCached(const std::vector<int64_t>& ids) const;

  /// Builds the [1, T, E] embedded input for `ids` from cached rows
  /// (missing rows are read from `table` and published). Sets
  /// *any_row_hit when at least one row came from the cache.
  Tensor AssembleEmbedded(const nn::Embedding& table, uint32_t table_tag,
                          const std::vector<int64_t>& ids,
                          bool* any_row_hit) const;

  /// Shared result assembly for the batched and cached paths: row `i` of
  /// `mask` / `probs` rendered against `ids`.
  InferenceResult AssembleResult(const std::vector<int64_t>& ids, int64_t i,
                                 const Tensor& mask, const Tensor& probs) const;

  std::unique_ptr<core::RationalizerBase> model_;
  data::Vocabulary vocab_;
  /// unique_ptr so BindStats can rebind (ServingStats owns a mutex and is
  /// neither movable nor assignable).
  mutable std::unique_ptr<ServingStats> stats_;
  ServeCache* cache_ = nullptr;
  ServeCache::ModelId cache_model_ = 0;
  /// Embedding-tier key spaces for the two players' tables (equal when
  /// the tables are bit-identical — see EnableCache).
  uint32_t gen_table_tag_ = 0;
  uint32_t pred_table_tag_ = 1;
};

}  // namespace serve
}  // namespace dar

#endif  // DAR_SERVE_SESSION_H_
