#include "serve/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace dar {
namespace serve {

namespace {

/// Batch sizes are small integers; unit-width buckets up to 64 then a few
/// coarse ones keep the Prometheus series short.
std::vector<double> BatchSizeBuckets() {
  std::vector<double> bounds;
  for (int64_t b = 1; b <= 64; ++b) bounds.push_back(static_cast<double>(b));
  for (double b : {96.0, 128.0, 256.0, 512.0}) bounds.push_back(b);
  return bounds;
}

}  // namespace

std::string StatsSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "requests=%lld batches=%lld mean_batch=%.2f "
                "p50=%lldus p95=%lldus p99=%lldus max=%lldus",
                static_cast<long long>(requests),
                static_cast<long long>(batches), mean_batch_size,
                static_cast<long long>(latency_p50_us),
                static_cast<long long>(latency_p95_us),
                static_cast<long long>(latency_p99_us),
                static_cast<long long>(latency_max_us));
  return std::string(buf);
}

ServingStats::ServingStats(obs::MetricsRegistry* registry, std::string prefix,
                           size_t exact_latency_cap,
                           const std::string& model_label)
    : exact_latency_cap_(exact_latency_cap) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  std::vector<std::pair<std::string, std::string>> labels;
  if (!model_label.empty()) labels.push_back({"model", model_label});
  auto name = [&](const char* suffix) {
    return obs::LabeledName(prefix + suffix, labels);
  };
  requests_ = &registry_->GetCounter(name(".requests_total"));
  batches_ = &registry_->GetCounter(name(".batches_total"));
  cache_hit_requests_ =
      &registry_->GetCounter(name(".cache_hit_requests_total"));
  cache_partial_requests_ =
      &registry_->GetCounter(name(".cache_partial_requests_total"));
  cache_miss_requests_ =
      &registry_->GetCounter(name(".cache_miss_requests_total"));
  latency_hist_ =
      &registry_->GetHistogram(name(".latency_us"), obs::DurationBucketsUs());
  batch_size_hist_ =
      &registry_->GetHistogram(name(".batch_size"), BatchSizeBuckets());
}

void ServingStats::RecordBatch(int64_t batch_size) {
  sync::MutexLock lock(mu_);
  batches_->Increment();
  requests_->Increment(batch_size);
  ++batch_size_histogram_[batch_size];
  batch_size_hist_->Observe(static_cast<double>(batch_size));
}

void ServingStats::ObserveLatencyLocked(int64_t us) {
  ++latency_count_;
  latency_max_us_ = std::max(latency_max_us_, us);
  if (latencies_us_.size() < exact_latency_cap_) latencies_us_.push_back(us);
  latency_hist_->Observe(static_cast<double>(us));
}

void ServingStats::RecordCacheOutcome(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kUncached:
      break;
    case CacheOutcome::kHit:
      cache_hit_requests_->Increment();
      break;
    case CacheOutcome::kPartial:
      cache_partial_requests_->Increment();
      break;
    case CacheOutcome::kMiss:
      cache_miss_requests_->Increment();
      break;
  }
}

void ServingStats::RecordLatencyUs(int64_t us) {
  sync::MutexLock lock(mu_);
  ObserveLatencyLocked(us);
}

void ServingStats::RecordLatenciesUs(const std::vector<int64_t>& us) {
  sync::MutexLock lock(mu_);
  for (int64_t v : us) ObserveLatencyLocked(v);
}

StatsSnapshot ServingStats::Snapshot() const {
  sync::MutexLock lock(mu_);
  StatsSnapshot snapshot;
  snapshot.requests = requests_->value();
  snapshot.batches = batches_->value();
  snapshot.batch_size_histogram = batch_size_histogram_;
  if (snapshot.batches > 0) {
    snapshot.mean_batch_size = static_cast<double>(snapshot.requests) /
                               static_cast<double>(snapshot.batches);
  }
  if (latency_count_ <= static_cast<int64_t>(exact_latency_cap_)) {
    // Below the cap the exact sample is complete: nearest-rank percentiles,
    // identical to the pre-migration unbounded accumulator.
    std::vector<int64_t> sorted = latencies_us_;
    std::sort(sorted.begin(), sorted.end());
    snapshot.latency_p50_us = obs::PercentileSorted(sorted, 50.0);
    snapshot.latency_p95_us = obs::PercentileSorted(sorted, 95.0);
    snapshot.latency_p99_us = obs::PercentileSorted(sorted, 99.0);
  } else {
    // Past the cap: bucket-interpolated estimates from the histogram (which
    // has seen every observation), clamped to the exact max.
    for (auto [p, out] :
         {std::pair<double, int64_t*>{50.0, &snapshot.latency_p50_us},
          {95.0, &snapshot.latency_p95_us},
          {99.0, &snapshot.latency_p99_us}}) {
      int64_t est = static_cast<int64_t>(std::llround(latency_hist_->Percentile(p)));
      *out = std::min(est, latency_max_us_);
    }
  }
  snapshot.latency_max_us = latency_max_us_;
  snapshot.cache_hits = cache_hit_requests_->value();
  snapshot.cache_partial = cache_partial_requests_->value();
  snapshot.cache_misses = cache_miss_requests_->value();
  int64_t cached_total =
      snapshot.cache_hits + snapshot.cache_partial + snapshot.cache_misses;
  if (cached_total > 0) {
    snapshot.cache_hit_rate = static_cast<double>(snapshot.cache_hits) /
                              static_cast<double>(cached_total);
  }
  return snapshot;
}

void ServingStats::Reset() {
  sync::MutexLock lock(mu_);
  requests_->Reset();
  batches_->Reset();
  cache_hit_requests_->Reset();
  cache_partial_requests_->Reset();
  cache_miss_requests_->Reset();
  latency_hist_->Reset();
  batch_size_hist_->Reset();
  batch_size_histogram_.clear();
  latencies_us_.clear();
  latency_count_ = 0;
  latency_max_us_ = 0;
}

}  // namespace serve
}  // namespace dar
