#include "serve/stats.h"

#include <algorithm>
#include <cstdio>

namespace dar {
namespace serve {

namespace {

/// Nearest-rank percentile of a sorted sample (0 for an empty one).
int64_t PercentileSorted(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  double rank = p / 100.0 * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(rank);
  if (static_cast<double>(index) < rank) ++index;  // ceil
  if (index == 0) index = 1;
  if (index > sorted.size()) index = sorted.size();
  return sorted[index - 1];
}

}  // namespace

std::string StatsSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "requests=%lld batches=%lld mean_batch=%.2f "
                "p50=%lldus p95=%lldus p99=%lldus max=%lldus",
                static_cast<long long>(requests),
                static_cast<long long>(batches), mean_batch_size,
                static_cast<long long>(latency_p50_us),
                static_cast<long long>(latency_p95_us),
                static_cast<long long>(latency_p99_us),
                static_cast<long long>(latency_max_us));
  return std::string(buf);
}

void ServingStats::RecordBatch(int64_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  requests_ += batch_size;
  ++batch_size_histogram_[batch_size];
}

void ServingStats::RecordLatencyUs(int64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  latencies_us_.push_back(us);
}

void ServingStats::RecordLatenciesUs(const std::vector<int64_t>& us) {
  std::lock_guard<std::mutex> lock(mu_);
  latencies_us_.insert(latencies_us_.end(), us.begin(), us.end());
}

StatsSnapshot ServingStats::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot snapshot;
  snapshot.requests = requests_;
  snapshot.batches = batches_;
  snapshot.batch_size_histogram = batch_size_histogram_;
  if (batches_ > 0) {
    snapshot.mean_batch_size =
        static_cast<double>(requests_) / static_cast<double>(batches_);
  }
  std::vector<int64_t> sorted = latencies_us_;
  std::sort(sorted.begin(), sorted.end());
  snapshot.latency_p50_us = PercentileSorted(sorted, 50.0);
  snapshot.latency_p95_us = PercentileSorted(sorted, 95.0);
  snapshot.latency_p99_us = PercentileSorted(sorted, 99.0);
  snapshot.latency_max_us = sorted.empty() ? 0 : sorted.back();
  return snapshot;
}

void ServingStats::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  requests_ = 0;
  batches_ = 0;
  batch_size_histogram_.clear();
  latencies_us_.clear();
}

}  // namespace serve
}  // namespace dar
