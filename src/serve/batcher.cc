#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "tensor/check.h"

namespace dar {
namespace serve {

MicroBatcher::MicroBatcher(const InferenceSession& session,
                           BatcherConfig config)
    : session_(&session), config_(config) {
  DAR_CHECK_GT(config_.max_batch, 0);
  DAR_CHECK_GE(config_.max_wait_us, 0);
  DAR_CHECK_GT(config_.num_workers, 0);
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

std::future<InferenceResult> MicroBatcher::Submit(const std::string& text) {
  obs::Span span("serve.enqueue");
  Pending pending;
  pending.tokens = session_->Encode(text);
  pending.enqueued = std::chrono::steady_clock::now();
  pending.trace = obs::CurrentRequestTrace();
  std::future<InferenceResult> future = pending.promise.get_future();
  bool notify;
  {
    sync::MutexLock lock(mu_);
    DAR_CHECK(!stop_);
    if (config_.max_queue > 0) {
      while (static_cast<int64_t>(queue_.size()) >= config_.max_queue) {
        space_cv_.Wait(mu_);
      }
      DAR_CHECK(!stop_);
    }
    queue_.push_back(std::move(pending));
    // Workers only wait while the queue is below one full batch; past that
    // they are busy computing, so the wake would be wasted work.
    notify = static_cast<int64_t>(queue_.size()) <= config_.max_batch;
  }
  if (notify) cv_.NotifyOne();
  return future;
}

std::optional<std::future<InferenceResult>> MicroBatcher::TrySubmit(
    const std::string& text) {
  obs::Span span("serve.enqueue");
  Pending pending;
  // Encoding before taking the lock mirrors Submit and keeps the queue
  // bound strict; a rejected request wastes one tokenization, which is
  // cheap next to the forward it is shedding.
  pending.tokens = session_->Encode(text);
  pending.enqueued = std::chrono::steady_clock::now();
  pending.trace = obs::CurrentRequestTrace();
  std::future<InferenceResult> future = pending.promise.get_future();
  bool notify;
  {
    sync::MutexLock lock(mu_);
    DAR_CHECK(!stop_);
    if (config_.max_queue > 0 &&
        static_cast<int64_t>(queue_.size()) >= config_.max_queue) {
      return std::nullopt;
    }
    queue_.push_back(std::move(pending));
    notify = static_cast<int64_t>(queue_.size()) <= config_.max_batch;
  }
  if (notify) cv_.NotifyOne();
  return future;
}

void MicroBatcher::Shutdown() {
  {
    sync::MutexLock lock(mu_);
    if (stop_ && workers_.empty()) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  space_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

std::vector<MicroBatcher::Pending> MicroBatcher::TakeBatchLocked(size_t take) {
  std::vector<Pending> taken;
  taken.reserve(take);
  if (queue_.size() == take) {
    for (size_t i = 0; i < take; ++i) {
      taken.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return taken;
  }

  // Oversubscribed: the batch's forward costs O(take x longest sequence),
  // so mixing a short request with a long one pays for padding. Scan a
  // bounded front region of the queue, order it by length, and take the
  // `take`-wide window with the smallest maximum length among windows that
  // contain the oldest request — homogeneous lengths without starvation.
  const size_t scan = std::min(queue_.size(), take * kLengthScanFactor);
  std::vector<size_t> order(scan);  // queue indices, to be length-sorted
  for (size_t i = 0; i < scan; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return queue_[a].tokens.size() < queue_[b].tokens.size();
  });
  size_t oldest_pos = 0;  // position of queue front in sorted order
  for (size_t i = 0; i < scan; ++i) {
    if (order[i] == 0) {
      oldest_pos = i;
      break;
    }
  }
  const size_t lo = oldest_pos >= take - 1 ? oldest_pos - (take - 1) : 0;
  const size_t hi = std::min(oldest_pos, scan - take);
  size_t best = lo;
  for (size_t s = lo; s <= hi; ++s) {
    if (queue_[order[s + take - 1]].tokens.size() <
        queue_[order[best + take - 1]].tokens.size()) {
      best = s;
    }
  }

  std::vector<size_t> chosen(order.begin() + best, order.begin() + best + take);
  std::sort(chosen.begin(), chosen.end());
  for (size_t idx : chosen) taken.push_back(std::move(queue_[idx]));
  // Compact the scanned region: keep the unchosen entries, in order.
  std::vector<Pending> kept;
  kept.reserve(scan - take);
  size_t next_chosen = 0;
  for (size_t i = 0; i < scan; ++i) {
    if (next_chosen < chosen.size() && chosen[next_chosen] == i) {
      ++next_chosen;
    } else {
      kept.push_back(std::move(queue_[i]));
    }
  }
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<ptrdiff_t>(scan));
  for (auto it = kept.rbegin(); it != kept.rend(); ++it) {
    queue_.push_front(std::move(*it));
  }
  return taken;
}

void MicroBatcher::WorkerLoop() {
  for (;;) {
    std::vector<Pending> taken;
    {
      obs::Span collect_span("serve.batch_collect");
      sync::MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping and fully drained
      if (!stop_ && config_.max_wait_us > 0 &&
          static_cast<int64_t>(queue_.size()) < config_.max_batch) {
        // Linger briefly so concurrent submitters can fill the batch; wake
        // early once it is full or shutdown begins. Explicit deadline loop
        // (predicate waits cannot carry thread-safety annotations).
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::microseconds(config_.max_wait_us);
        while (!stop_ &&
               static_cast<int64_t>(queue_.size()) < config_.max_batch) {
          const int64_t remaining_us =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  deadline - std::chrono::steady_clock::now())
                  .count();
          if (remaining_us <= 0) break;
          cv_.WaitForUs(mu_, remaining_us);
        }
      }
      size_t take = std::min(queue_.size(),
                             static_cast<size_t>(config_.max_batch));
      if (take == 0) continue;
      taken = TakeBatchLocked(take);
    }
    // Another worker may still be needed for what remains in the queue,
    // and blocked submitters now have space.
    cv_.NotifyOne();
    if (config_.max_queue > 0) space_cv_.NotifyAll();

    std::vector<std::vector<int64_t>> sequences;
    sequences.reserve(taken.size());
    for (const Pending& p : taken) sequences.push_back(p.tokens);

    // One scratch collector times the shared forward when any member of
    // the batch is traced; afterwards its subtree is copied into every
    // traced request, with the co-batched trace ids recorded as links.
    bool any_traced = false;
    for (const Pending& p : taken) any_traced |= (p.trace != nullptr);
    std::vector<InferenceResult> results;
    std::unique_ptr<obs::TraceCollector> batch_trace;
    if (any_traced) {
      batch_trace = std::make_unique<obs::TraceCollector>(
          obs::MakeTraceContext());
      for (const Pending& p : taken) {
        if (p.trace != nullptr) batch_trace->AddLink(p.trace->context());
      }
      obs::ScopedActiveCollector guard(batch_trace.get());
      obs::Span batch_span("serve.batch");
      results = session_->PredictTokenBatch(sequences);
    } else {
      results = session_->PredictTokenBatch(sequences);
    }
    if (batch_trace != nullptr) {
      for (Pending& p : taken) {
        if (p.trace != nullptr) {
          p.trace->AdoptBatch(*batch_trace,
                              static_cast<int32_t>(taken.size()));
        }
      }
    }

    auto now = std::chrono::steady_clock::now();
    std::vector<int64_t> latencies;
    latencies.reserve(taken.size());
    for (const Pending& p : taken) {
      latencies.push_back(std::chrono::duration_cast<std::chrono::microseconds>(
                              now - p.enqueued)
                              .count());
    }
    session_->stats().RecordLatenciesUs(latencies);
    for (size_t i = 0; i < taken.size(); ++i) {
      taken[i].promise.set_value(std::move(results[i]));
    }
  }
}

}  // namespace serve
}  // namespace dar
