// Serving-side observability: request counters, batch-size histogram, and
// latency percentiles, shared by the naive and micro-batched paths.
#ifndef DAR_SERVE_STATS_H_
#define DAR_SERVE_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dar {
namespace serve {

/// Point-in-time copy of a session's serving statistics.
struct StatsSnapshot {
  /// Requests whose result has been produced.
  int64_t requests = 0;
  /// Model forwards executed (== requests for the unbatched path).
  int64_t batches = 0;
  /// batch size -> number of batches of that size.
  std::map<int64_t, int64_t> batch_size_histogram;
  /// Mean requests per forward (0 when nothing has been served).
  double mean_batch_size = 0.0;
  /// End-to-end request latency percentiles in microseconds (enqueue to
  /// fulfillment for the batched path, call duration for the naive path).
  int64_t latency_p50_us = 0;
  int64_t latency_p95_us = 0;
  int64_t latency_p99_us = 0;
  int64_t latency_max_us = 0;

  /// One-line human-readable rendering.
  std::string ToString() const;
};

/// Thread-safe statistics accumulator owned by an InferenceSession.
///
/// Latencies are kept exactly (one int64 per request); at the traffic
/// volumes the benches generate this is a few MB at most, and exact
/// percentiles keep the serving numbers reproducible.
class ServingStats {
 public:
  /// Records one executed forward covering `batch_size` requests.
  void RecordBatch(int64_t batch_size);

  /// Records one fulfilled request's end-to-end latency.
  void RecordLatencyUs(int64_t us);

  /// Records a whole batch worth of latencies under one lock acquisition.
  void RecordLatenciesUs(const std::vector<int64_t>& us);

  StatsSnapshot Snapshot() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  int64_t requests_ = 0;
  int64_t batches_ = 0;
  std::map<int64_t, int64_t> batch_size_histogram_;
  std::vector<int64_t> latencies_us_;
};

}  // namespace serve
}  // namespace dar

#endif  // DAR_SERVE_STATS_H_
