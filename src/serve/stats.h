// Serving-side observability: request counters, batch-size histogram, and
// latency percentiles, shared by the naive and micro-batched paths.
//
// Since the src/obs/ migration the accumulator is a thin facade over an
// obs::MetricsRegistry: counts live in registry Counters, every latency is
// observed into a registry Histogram (`<prefix>.latency_us`, the shared
// DurationBucketsUs layout), and ExportPrometheus() exposes the whole
// registry in text exposition format. StatsSnapshot and its values are
// unchanged — the registry is an additional surface, not a replacement.
#ifndef DAR_SERVE_STATS_H_
#define DAR_SERVE_STATS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/cache.h"
#include "sync/mutex.h"

namespace dar {
namespace serve {

/// Point-in-time copy of a session's serving statistics.
struct StatsSnapshot {
  /// Requests whose result has been produced.
  int64_t requests = 0;
  /// Model forwards executed (== requests for the unbatched path).
  int64_t batches = 0;
  /// batch size -> number of batches of that size.
  std::map<int64_t, int64_t> batch_size_histogram;
  /// Mean requests per forward (0 when nothing has been served).
  double mean_batch_size = 0.0;
  /// End-to-end request latency percentiles in microseconds (enqueue to
  /// fulfillment for the batched path, call duration for the naive path).
  /// Degenerate samples follow the obs::Histogram convention: all zeros
  /// when nothing has been recorded, the exact single value when exactly
  /// one latency has.
  int64_t latency_p50_us = 0;
  int64_t latency_p95_us = 0;
  int64_t latency_p99_us = 0;
  int64_t latency_max_us = 0;
  /// Per-request cache outcomes (all zero on the uncached path; the
  /// ServeCache's own per-tier counters track lookups, these track
  /// requests).
  int64_t cache_hits = 0;
  int64_t cache_partial = 0;
  int64_t cache_misses = 0;
  /// cache_hits / (hits + partial + misses); 0 with no cached requests.
  double cache_hit_rate = 0.0;

  /// One-line human-readable rendering.
  std::string ToString() const;
};

/// Thread-safe statistics accumulator owned by an InferenceSession.
///
/// Latency memory is bounded. The first `exact_latency_cap` latencies
/// (default 1 << 16, = 512 KiB of int64) are kept exactly and percentiles
/// are exact nearest-rank values — bit-for-bit what the unbounded
/// pre-migration accumulator reported, which keeps the serving benches
/// reproducible. Past the cap the exact sample stops growing and Snapshot()
/// crosses over to the obs::Histogram estimator (bucket interpolation over
/// the 1-2-5 duration buckets, which has seen *every* observation): O(1)
/// memory from then on, percentiles within one bucket's resolution, and the
/// reported max stays exact forever because it is tracked separately.
class ServingStats {
 public:
  /// Exact-latency default cap; see the class comment for the crossover.
  static constexpr size_t kDefaultExactLatencyCap = size_t{1} << 16;

  /// Self-contained accumulator backed by a private registry.
  ServingStats() : ServingStats(nullptr) {}

  /// Accumulator publishing into `registry` (not owned; pass nullptr for a
  /// private one) under `<prefix>.`-named instruments. All instruments are
  /// created up front; the registry pointer must outlive the stats object.
  ///
  /// A non-empty `model_label` adds a `{model="..."}` Prometheus label
  /// block to every instrument name (serve.requests_total{model="beer"},
  /// ...), so one shared registry can carry per-model serving series for
  /// every session the ModelRegistry routes to — the /metrics endpoint's
  /// per-aspect dimension. Unlabeled and labeled stats of the same prefix
  /// coexist in one registry without colliding.
  explicit ServingStats(obs::MetricsRegistry* registry,
                        std::string prefix = "serve",
                        size_t exact_latency_cap = kDefaultExactLatencyCap,
                        const std::string& model_label = "");

  /// Records one executed forward covering `batch_size` requests.
  void RecordBatch(int64_t batch_size);

  /// Records one fulfilled request's end-to-end latency.
  void RecordLatencyUs(int64_t us);

  /// Records a whole batch worth of latencies under one lock acquisition.
  void RecordLatenciesUs(const std::vector<int64_t>& us);

  /// Records one request's cache outcome (`<prefix>.cache_hit_requests_total`
  /// / partial / miss counters). kUncached records nothing — the uncached
  /// path stays zero-cost and its exposition unchanged.
  void RecordCacheOutcome(CacheOutcome outcome);

  StatsSnapshot Snapshot() const;

  void Reset();

  /// The registry the stats publish into (the private one by default).
  obs::MetricsRegistry& registry() { return *registry_; }

  /// Prometheus text exposition of the backing registry — what serve_demo
  /// prints and the CI smoke job greps.
  std::string ExportPrometheus() const { return registry_->ExportPrometheus(); }

 private:
  void ObserveLatencyLocked(int64_t us) DAR_REQUIRES(mu_);

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;
  size_t exact_latency_cap_;

  // Cached instrument pointers (stable for the registry's lifetime).
  obs::Counter* requests_;
  obs::Counter* batches_;
  obs::Counter* cache_hit_requests_;
  obs::Counter* cache_partial_requests_;
  obs::Counter* cache_miss_requests_;
  obs::Histogram* latency_hist_;
  obs::Histogram* batch_size_hist_;

  /// kStats: held only around the local accumulators below — the cached
  /// instrument pointers above are lock-free and never touched under mu_
  /// with another lock in hand.
  mutable sync::Mutex mu_{sync::Rank::kStats, "serve.stats"};
  std::map<int64_t, int64_t> batch_size_histogram_ DAR_GUARDED_BY(mu_);
  /// Exact sample: grows until exact_latency_cap_, then freezes (the
  /// histogram keeps absorbing everything).
  std::vector<int64_t> latencies_us_ DAR_GUARDED_BY(mu_);
  int64_t latency_count_ DAR_GUARDED_BY(mu_) = 0;
  int64_t latency_max_us_ DAR_GUARDED_BY(mu_) = 0;
};

}  // namespace serve
}  // namespace dar

#endif  // DAR_SERVE_STATS_H_
