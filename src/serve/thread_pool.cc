#include "serve/thread_pool.h"

#include <utility>

#include "tensor/check.h"

namespace dar {
namespace serve {

ThreadPool::ThreadPool(int num_threads) {
  DAR_CHECK_GT(num_threads, 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    sync::MutexLock lock(mu_);
    DAR_CHECK(!stop_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  sync::MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      sync::MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      sync::MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace serve
}  // namespace dar
