#include "serve/cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "tensor/check.h"

namespace dar {
namespace serve {

namespace {

/// Fixed per-entry bookkeeping estimate (list node, index slot, struct
/// fields). Deliberately coarse — the budget is a guard rail, not an
/// allocator audit.
constexpr size_t kEntryOverheadBytes = 96;

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffull;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kUncached:
      return "uncached";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kPartial:
      return "partial";
    case CacheOutcome::kHit:
      return "hit";
  }
  return "uncached";
}

ServeCache::ServeCache(CacheConfig config) : config_(std::move(config)) {
  DAR_CHECK_GT(config_.num_shards, 0);
  DAR_CHECK_GT(config_.capacity_bytes, size_t{0});
  embedding_shards_.reserve(static_cast<size_t>(config_.num_shards));
  encoder_shards_.reserve(static_cast<size_t>(config_.num_shards));
  for (int i = 0; i < config_.num_shards; ++i) {
    embedding_shards_.push_back(std::make_unique<Shard<EmbeddingEntry>>());
    encoder_shards_.push_back(std::make_unique<Shard<EncoderSlot>>());
  }
}

void ServeCache::PublishMetrics(obs::MetricsRegistry* metrics) {
  sync::MutexLock lock(models_mu_);
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  for (auto& [id, state] : models_) BindInstrumentsLocked(*state);
}

ServeCache::ModelId ServeCache::RegisterModel(const std::string& label) {
  sync::MutexLock lock(models_mu_);
  ModelId id = next_model_id_++;
  auto state = std::make_unique<ModelState>();
  state->label = label;
  if (metrics_ != nullptr) BindInstrumentsLocked(*state);
  models_[id] = std::move(state);
  return id;
}

void ServeCache::BindInstrumentsLocked(ModelState& state) {
  auto bind = [&](TierCounters& tc, const char* tier) {
    std::vector<std::pair<std::string, std::string>> labels = {
        {"model", state.label}, {"tier", tier}};
    tc.hits_counter =
        &metrics_->GetCounter(obs::LabeledName("serve.cache_hits_total", labels));
    tc.misses_counter = &metrics_->GetCounter(
        obs::LabeledName("serve.cache_misses_total", labels));
    tc.evictions_counter = &metrics_->GetCounter(
        obs::LabeledName("serve.cache_evictions_total", labels));
    tc.collisions_counter = &metrics_->GetCounter(
        obs::LabeledName("serve.cache_collisions_total", labels));
    tc.bytes_gauge =
        &metrics_->GetGauge(obs::LabeledName("serve.cache_bytes", labels));
    tc.hit_rate_gauge =
        &metrics_->GetGauge(obs::LabeledName("serve.cache_hit_rate", labels));
  };
  bind(state.embedding, kEmbeddingTierName);
  bind(state.encoder, kEncoderTierName);
}

ServeCache::ModelState* ServeCache::FindModel(ModelId model) const {
  sync::MutexLock lock(models_mu_);
  auto it = models_.find(model);
  // ModelState addresses are stable (unique_ptr values, never erased), so
  // handing the pointer out of the lock is safe.
  return it == models_.end() ? nullptr : it->second.get();
}

void ServeCache::RecordLookup(TierCounters& tc, bool hit) {
  int64_t hits, misses;
  if (hit) {
    hits = tc.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    misses = tc.misses.load(std::memory_order_relaxed);
    if (tc.hits_counter != nullptr) tc.hits_counter->Increment();
  } else {
    misses = tc.misses.fetch_add(1, std::memory_order_relaxed) + 1;
    hits = tc.hits.load(std::memory_order_relaxed);
    if (tc.misses_counter != nullptr) tc.misses_counter->Increment();
  }
  if (tc.hit_rate_gauge != nullptr) {
    int64_t total = hits + misses;
    tc.hit_rate_gauge->Set(total > 0 ? static_cast<double>(hits) /
                                           static_cast<double>(total)
                                     : 0.0);
  }
}

void ServeCache::RecordBytesDelta(TierCounters& tc, int64_t delta,
                                  int64_t entries_delta) {
  int64_t bytes = tc.bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  tc.entries.fetch_add(entries_delta, std::memory_order_relaxed);
  if (tc.bytes_gauge != nullptr) {
    tc.bytes_gauge->Set(static_cast<double>(bytes));
  }
}

uint64_t ServeCache::EmbeddingKey(ModelId model, uint32_t table_tag,
                                  int64_t token) const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, model);
  h = FnvMix(h, table_tag);
  h = FnvMix(h, static_cast<uint64_t>(token));
  return h;
}

uint64_t ServeCache::SequenceDigest(ModelId model,
                                    const std::vector<int64_t>& ids) const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, model);
  if (config_.sequence_hash_override) {
    h = FnvMix(h, config_.sequence_hash_override(ids));
    return h;
  }
  h = FnvMix(h, static_cast<uint64_t>(ids.size()));
  for (int64_t id : ids) h = FnvMix(h, static_cast<uint64_t>(id));
  return h;
}

ServeCache::Shard<ServeCache::EmbeddingEntry>& ServeCache::EmbeddingShardFor(
    uint64_t key) {
  return *embedding_shards_[key % embedding_shards_.size()];
}

ServeCache::Shard<ServeCache::EncoderSlot>& ServeCache::EncoderShardFor(
    uint64_t key) {
  return *encoder_shards_[key % encoder_shards_.size()];
}

size_t ServeCache::TierShardBudget() const {
  int enabled_tiers = (config_.embedding_tier ? 1 : 0) +
                      (config_.encoder_tier ? 1 : 0);
  if (enabled_tiers == 0) return 0;
  size_t per_tier = config_.capacity_bytes / static_cast<size_t>(enabled_tiers);
  return std::max<size_t>(1, per_tier /
                                 static_cast<size_t>(config_.num_shards));
}

bool ServeCache::LookupEmbeddingRow(ModelId model, uint32_t table_tag,
                                    int64_t token, float* out, int64_t dim) {
  if (!config_.enabled || !config_.embedding_tier) return false;
  ModelState* state = FindModel(model);
  if (state == nullptr || !state->alive) return false;
  uint64_t key = EmbeddingKey(model, table_tag, token);
  Shard<EmbeddingEntry>& shard = EmbeddingShardFor(key);
  bool hit = false;
  {
    sync::MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      EmbeddingEntry& e = *it->second;
      // The packed key is a digest too; verify identity before serving.
      if (e.model == model && e.table_tag == table_tag && e.token == token &&
          static_cast<int64_t>(e.row.size()) == dim) {
        std::memcpy(out, e.row.data(), static_cast<size_t>(dim) * sizeof(float));
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        hit = true;
      }
    }
  }
  RecordLookup(state->embedding, hit);
  return hit;
}

void ServeCache::InsertEmbeddingRow(ModelId model, uint32_t table_tag,
                                    int64_t token, const float* row,
                                    int64_t dim) {
  if (!config_.enabled || !config_.embedding_tier) return;
  ModelState* state = FindModel(model);
  if (state == nullptr || !state->alive) return;
  uint64_t key = EmbeddingKey(model, table_tag, token);
  Shard<EmbeddingEntry>& shard = EmbeddingShardFor(key);
  size_t budget = TierShardBudget();

  EmbeddingEntry entry;
  entry.model = model;
  entry.table_tag = table_tag;
  entry.token = token;
  entry.row.assign(row, row + dim);
  entry.bytes =
      static_cast<size_t>(dim) * sizeof(float) + kEntryOverheadBytes;

  std::vector<EmbeddingEntry> evicted;
  {
    sync::MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Already present (same key): refresh recency, keep the stored row.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.bytes += entry.bytes;
    shard.lru.push_front(std::move(entry));
    shard.index[key] = shard.lru.begin();
    // Evict LRU tails past the budget; the just-inserted entry always
    // survives even when it alone exceeds the shard budget.
    while (shard.bytes > budget && shard.lru.size() > 1) {
      EmbeddingEntry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      shard.index.erase(
          EmbeddingKey(victim.model, victim.table_tag, victim.token));
      evicted.push_back(std::move(victim));
      shard.lru.pop_back();
    }
  }
  RecordBytesDelta(state->embedding, static_cast<int64_t>(entry.bytes), 1);
  for (const EmbeddingEntry& victim : evicted) {
    ModelState* vs = FindModel(victim.model);
    if (vs == nullptr) continue;
    vs->embedding.evictions.fetch_add(1, std::memory_order_relaxed);
    if (vs->embedding.evictions_counter != nullptr) {
      vs->embedding.evictions_counter->Increment();
    }
    RecordBytesDelta(vs->embedding, -static_cast<int64_t>(victim.bytes), -1);
  }
}

std::shared_ptr<const EncoderStatesEntry> ServeCache::LookupEncoderStates(
    ModelId model, const std::vector<int64_t>& ids) {
  if (!config_.enabled || !config_.encoder_tier) return nullptr;
  ModelState* state = FindModel(model);
  if (state == nullptr || !state->alive) return nullptr;
  uint64_t digest = SequenceDigest(model, ids);
  Shard<EncoderSlot>& shard = EncoderShardFor(digest);
  std::shared_ptr<const EncoderStatesEntry> result;
  bool collision = false;
  {
    sync::MutexLock lock(shard.mu);
    auto it = shard.index.find(digest);
    if (it != shard.index.end()) {
      EncoderSlot& slot = *it->second;
      if (slot.model == model && slot.payload->ids == ids) {
        result = slot.payload;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      } else {
        // Same digest, different sequence (or another model's entry):
        // never serve it — recompute instead.
        collision = true;
      }
    }
  }
  if (collision) {
    state->encoder.collisions.fetch_add(1, std::memory_order_relaxed);
    if (state->encoder.collisions_counter != nullptr) {
      state->encoder.collisions_counter->Increment();
    }
  }
  RecordLookup(state->encoder, result != nullptr);
  return result;
}

void ServeCache::InsertEncoderStates(ModelId model,
                                     const std::vector<int64_t>& ids,
                                     Tensor gen_states, Tensor pred_states) {
  if (!config_.enabled || !config_.encoder_tier) return;
  ModelState* state = FindModel(model);
  if (state == nullptr || !state->alive) return;
  uint64_t digest = SequenceDigest(model, ids);
  Shard<EncoderSlot>& shard = EncoderShardFor(digest);
  size_t budget = TierShardBudget();

  auto payload = std::make_shared<EncoderStatesEntry>();
  payload->ids = ids;
  payload->gen_states = std::move(gen_states);
  payload->pred_states = std::move(pred_states);

  EncoderSlot slot;
  slot.model = model;
  slot.digest = digest;
  slot.bytes = static_cast<size_t>(payload->gen_states.numel() +
                                   payload->pred_states.numel()) *
                   sizeof(float) +
               ids.size() * sizeof(int64_t) + kEntryOverheadBytes;
  slot.payload = std::move(payload);

  std::vector<EncoderSlot> evicted;
  {
    sync::MutexLock lock(shard.mu);
    auto it = shard.index.find(digest);
    if (it != shard.index.end()) {
      // Digest already occupied: same sequence -> refresh recency; a
      // colliding different sequence -> the newer one replaces it.
      if (it->second->model == model && it->second->payload->ids == ids) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
      }
      shard.bytes -= it->second->bytes;
      evicted.push_back(std::move(*it->second));
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.bytes += slot.bytes;
    shard.lru.push_front(std::move(slot));
    shard.index[digest] = shard.lru.begin();
    while (shard.bytes > budget && shard.lru.size() > 1) {
      EncoderSlot& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      shard.index.erase(victim.digest);
      evicted.push_back(std::move(victim));
      shard.lru.pop_back();
    }
  }
  RecordBytesDelta(state->encoder, static_cast<int64_t>(slot.bytes), 1);
  for (const EncoderSlot& victim : evicted) {
    ModelState* vs = FindModel(victim.model);
    if (vs == nullptr) continue;
    vs->encoder.evictions.fetch_add(1, std::memory_order_relaxed);
    if (vs->encoder.evictions_counter != nullptr) {
      vs->encoder.evictions_counter->Increment();
    }
    RecordBytesDelta(vs->encoder, -static_cast<int64_t>(victim.bytes), -1);
  }
}

void ServeCache::InvalidateModel(ModelId model) {
  ModelState* state = FindModel(model);
  if (state == nullptr) return;
  state->alive.store(false, std::memory_order_relaxed);
  for (auto& shard_ptr : embedding_shards_) {
    Shard<EmbeddingEntry>& shard = *shard_ptr;
    int64_t bytes_removed = 0, entries_removed = 0;
    {
      sync::MutexLock lock(shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (it->model != model) {
          ++it;
          continue;
        }
        shard.bytes -= it->bytes;
        bytes_removed += static_cast<int64_t>(it->bytes);
        ++entries_removed;
        shard.index.erase(EmbeddingKey(it->model, it->table_tag, it->token));
        it = shard.lru.erase(it);
      }
    }
    if (entries_removed > 0) {
      RecordBytesDelta(state->embedding, -bytes_removed, -entries_removed);
    }
  }
  for (auto& shard_ptr : encoder_shards_) {
    Shard<EncoderSlot>& shard = *shard_ptr;
    int64_t bytes_removed = 0, entries_removed = 0;
    {
      sync::MutexLock lock(shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (it->model != model) {
          ++it;
          continue;
        }
        shard.bytes -= it->bytes;
        bytes_removed += static_cast<int64_t>(it->bytes);
        ++entries_removed;
        shard.index.erase(it->digest);
        it = shard.lru.erase(it);
      }
    }
    if (entries_removed > 0) {
      RecordBytesDelta(state->encoder, -bytes_removed, -entries_removed);
    }
  }
}

CacheTierStats ServeCache::Stats(ModelId model, const std::string& tier) const {
  CacheTierStats out;
  ModelState* state = FindModel(model);
  if (state == nullptr) return out;
  const TierCounters& tc =
      tier == kEmbeddingTierName ? state->embedding : state->encoder;
  out.hits = tc.hits.load(std::memory_order_relaxed);
  out.misses = tc.misses.load(std::memory_order_relaxed);
  out.evictions = tc.evictions.load(std::memory_order_relaxed);
  out.collisions = tc.collisions.load(std::memory_order_relaxed);
  out.bytes = tc.bytes.load(std::memory_order_relaxed);
  out.entries = tc.entries.load(std::memory_order_relaxed);
  return out;
}

bool ServeCache::CorruptEncoderEntryForTesting(
    ModelId model, const std::vector<int64_t>& ids) {
  uint64_t digest = SequenceDigest(model, ids);
  Shard<EncoderSlot>& shard = EncoderShardFor(digest);
  sync::MutexLock lock(shard.mu);
  auto it = shard.index.find(digest);
  if (it == shard.index.end()) return false;
  EncoderSlot& slot = *it->second;
  if (slot.model != model || slot.payload->ids != ids) return false;
  if (slot.payload->gen_states.numel() == 0) return false;
  slot.payload->gen_states.flat(0) = std::numeric_limits<float>::quiet_NaN();
  return true;
}

}  // namespace serve
}  // namespace dar
