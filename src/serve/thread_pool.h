// A small fixed-size thread pool.
//
// The micro-batcher owns dedicated worker threads (its scheduling is
// latency-sensitive and coupled to the queue), so this pool serves the
// *client* side of the serving stack: fanning out request producers in the
// throughput bench, the demo, and tests, and as the substrate for future
// front-ends (e.g. an HTTP accept loop).
#ifndef DAR_SERVE_THREAD_POOL_H_
#define DAR_SERVE_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "sync/mutex.h"

namespace dar {
namespace serve {

/// Fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(int num_threads);

  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Shutdown.
  void Submit(std::function<void()> task) DAR_EXCLUDES(mu_);

  /// Blocks until every task submitted so far has finished.
  void Wait() DAR_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() DAR_EXCLUDES(mu_);

  /// Same rank band as the batcher: tasks run with mu_ released, so pool
  /// and batcher locks are never nested in either direction.
  sync::Mutex mu_{sync::Rank::kBatcher, "serve.thread_pool"};
  sync::CondVar work_cv_;  // signals workers: task or stop
  sync::CondVar idle_cv_;  // signals Wait(): all drained
  std::deque<std::function<void()>> queue_ DAR_GUARDED_BY(mu_);
  int active_ DAR_GUARDED_BY(mu_) = 0;
  bool stop_ DAR_GUARDED_BY(mu_) = false;
  /// Thread-confined: written by the constructor, joined by the
  /// destructor; workers never touch the vector itself.
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace dar

#endif  // DAR_SERVE_THREAD_POOL_H_
