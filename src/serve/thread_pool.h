// A small fixed-size thread pool.
//
// The micro-batcher owns dedicated worker threads (its scheduling is
// latency-sensitive and coupled to the queue), so this pool serves the
// *client* side of the serving stack: fanning out request producers in the
// throughput bench, the demo, and tests, and as the substrate for future
// front-ends (e.g. an HTTP accept loop).
#ifndef DAR_SERVE_THREAD_POOL_H_
#define DAR_SERVE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dar {
namespace serve {

/// Fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(int num_threads);

  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Shutdown.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or stop
  std::condition_variable idle_cv_;   // signals Wait(): all drained
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace dar

#endif  // DAR_SERVE_THREAD_POOL_H_
