#include "serve/registry.h"

#include <utility>

#include "tensor/check.h"

namespace dar {
namespace serve {

ModelRegistry::~ModelRegistry() {
  sync::MutexLock lock(mu_);
  for (auto& [name, session] : sessions_) {
    auto it = stats_bound_.find(name);
    if (it != stats_bound_.end() && it->second) {
      session->BindStats(nullptr, std::string());
    }
  }
}

void ModelRegistry::PublishMetrics(obs::MetricsRegistry* metrics) {
  sync::MutexLock lock(mu_);
  metrics_ = metrics;
}

void ModelRegistry::AttachCache(ServeCache* cache) {
  sync::MutexLock lock(mu_);
  cache_ = cache;
}

void ModelRegistry::Register(const std::string& name,
                             std::shared_ptr<InferenceSession> session) {
  DAR_CHECK(session != nullptr);
  sync::MutexLock lock(mu_);
  if (metrics_ != nullptr) session->BindStats(metrics_, name);
  if (cache_ != nullptr) session->EnableCache(cache_, name);
  auto it = sessions_.find(name);
  if (it != sessions_.end()) {
    // Hot swap: the outgoing session's entries become unreachable dead
    // bytes (the new session has a fresh cache model id) — reclaim them
    // now, and block the old session's in-flight inserts.
    it->second->InvalidateCacheEntries();
  }
  stats_bound_[name] = metrics_ != nullptr;
  sessions_[name] = std::move(session);
}

bool ModelRegistry::Unregister(const std::string& name) {
  sync::MutexLock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return false;
  it->second->InvalidateCacheEntries();
  stats_bound_.erase(name);
  sessions_.erase(it);
  return true;
}

std::shared_ptr<InferenceSession> ModelRegistry::Get(
    const std::string& name) const {
  sync::MutexLock lock(mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

std::vector<std::string> ModelRegistry::Names() const {
  sync::MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) names.push_back(name);
  return names;
}

std::optional<InferenceResult> ModelRegistry::Predict(
    const std::string& name, const std::string& text) const {
  std::shared_ptr<InferenceSession> session = Get(name);
  if (session == nullptr) return std::nullopt;
  return session->Predict(text);
}

}  // namespace serve
}  // namespace dar
