// Layer normalization (Ba et al., 2016), fused forward/backward.
#ifndef DAR_NN_LAYER_NORM_H_
#define DAR_NN_LAYER_NORM_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace dar {
namespace nn {

/// Normalizes each row of an [m, n] input to zero mean / unit variance and
/// applies a learned affine (gain, bias). Used by the Transformer encoder
/// (the paper's BERT-encoder experiments, Table VI).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  /// x: [m, dim] -> [m, dim].
  ag::Variable Forward(const ag::Variable& x) const;

  int64_t dim() const { return dim_; }

 private:
  int64_t dim_;
  float eps_;
  ag::Variable gain_;  // [dim]
  ag::Variable bias_;  // [dim]
};

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_LAYER_NORM_H_
