#include "nn/gumbel.h"

#include "obs/trace.h"
#include "tensor/check.h"

namespace dar {
namespace nn {

Tensor DrawBinaryMaskNoise(const Shape& shape, Pcg32& rng) {
  // For two classes, softmax((l + g1, g0)/tau) reduces to
  // sigmoid((l + g1 - g0)/tau): one noise tensor suffices.
  Tensor noise(shape);
  for (int64_t i = 0; i < noise.numel(); ++i) {
    noise.flat(i) = rng.Gumbel() - rng.Gumbel();
  }
  return noise;
}

GumbelMask SampleBinaryMask(const ag::Variable& logits, const Tensor& valid,
                            float tau, bool training, Pcg32& rng) {
  if (training) {
    return SampleBinaryMaskWithNoise(
        logits, valid, tau, training,
        DrawBinaryMaskNoise(logits.value().shape(), rng));
  }
  return SampleBinaryMaskWithNoise(logits, valid, tau, training, Tensor());
}

GumbelMask SampleBinaryMaskWithNoise(const ag::Variable& logits,
                                     const Tensor& valid, float tau,
                                     bool training, const Tensor& noise) {
  obs::Span span("gumbel.sample", obs::TraceLevel::kDetailed);
  const Tensor& lv = logits.value();
  DAR_CHECK_EQ(lv.dim(), 2);
  DAR_CHECK(valid.shape() == lv.shape());
  DAR_CHECK_GT(tau, 0.0f);

  ag::Variable perturbed = logits;
  if (training) {
    DAR_CHECK(noise.shape() == lv.shape());
    perturbed = ag::Add(logits, ag::Variable::Constant(noise));
  }
  ag::Variable soft = ag::Sigmoid(ag::MulScalar(perturbed, 1.0f / tau));
  // Zero out padded positions so they can never be "selected".
  soft = ag::Mul(soft, ag::Variable::Constant(valid));
  ag::Variable hard = ag::StraightThroughRound(soft);
  return {soft, hard};
}

}  // namespace nn
}  // namespace dar
