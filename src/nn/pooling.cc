#include "nn/pooling.h"

#include <limits>
#include <memory>

#include "tensor/check.h"

namespace dar {
namespace nn {

ag::Variable MaskedMaxPool(const ag::Variable& h, const Tensor& valid) {
  const Tensor& hv = h.value();
  DAR_CHECK_EQ(hv.dim(), 3);
  int64_t b = hv.size(0), t = hv.size(1), d = hv.size(2);
  DAR_CHECK_EQ(valid.dim(), 2);
  DAR_CHECK_EQ(valid.size(0), b);
  DAR_CHECK_EQ(valid.size(1), t);

  Tensor out(Shape{b, d});
  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(b * d), int64_t{-1});
  {
    const float* ph = hv.data();
    float* po = out.data();
    for (int64_t i = 0; i < b; ++i) {
      bool any = false;
      for (int64_t j = 0; j < d; ++j) po[i * d + j] = -std::numeric_limits<float>::infinity();
      for (int64_t tt = 0; tt < t; ++tt) {
        if (valid.at(i, tt) == 0.0f) continue;
        any = true;
        const float* row = ph + (i * t + tt) * d;
        for (int64_t j = 0; j < d; ++j) {
          if (row[j] > po[i * d + j]) {
            po[i * d + j] = row[j];
            (*argmax)[static_cast<size_t>(i * d + j)] = tt;
          }
        }
      }
      DAR_CHECK_MSG(any, "MaskedMaxPool: example with no valid positions");
    }
  }
  auto pn = h.node();
  return ag::MakeOpResult("masked_max_pool", std::move(out), {pn},
                          [pn, argmax, b, t, d](ag::Node& n) {
    Tensor g(pn->value.shape());
    const float* pg = n.grad.data();
    float* pgo = g.data();
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        int64_t tt = (*argmax)[static_cast<size_t>(i * d + j)];
        if (tt >= 0) pgo[(i * t + tt) * d + j] += pg[i * d + j];
      }
    }
    pn->AccumulateGrad(g);
  });
}

ag::Variable MaskedMeanPool(const ag::Variable& h, const Tensor& valid) {
  const Tensor& hv = h.value();
  DAR_CHECK_EQ(hv.dim(), 3);
  int64_t b = hv.size(0), t = hv.size(1);
  DAR_CHECK_EQ(valid.size(0), b);
  DAR_CHECK_EQ(valid.size(1), t);
  // Scale each valid position by 1/len(b), then sum over time.
  Tensor weights(Shape{b, t});
  for (int64_t i = 0; i < b; ++i) {
    float len = 0.0f;
    for (int64_t tt = 0; tt < t; ++tt) len += valid.at(i, tt);
    DAR_CHECK_MSG(len > 0.0f, "MaskedMeanPool: example with no valid positions");
    for (int64_t tt = 0; tt < t; ++tt) weights.at(i, tt) = valid.at(i, tt) / len;
  }
  return ag::SumTime(ag::ScaleLastDim(h, ag::Variable::Constant(weights)));
}

}  // namespace nn
}  // namespace dar
