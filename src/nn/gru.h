// Gated recurrent units (Cho et al., 2014), unidirectional and
// bidirectional, with length masking for padded batches.
//
// The paper's main experiments use 200-d bidirectional GRUs for both the
// generator and the predictor; this implementation is dimension-agnostic.
#ifndef DAR_NN_GRU_H_
#define DAR_NN_GRU_H_

#include "autograd/ops.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace dar {
namespace nn {

/// Single-direction GRU over a padded batch.
///
/// Gate layout inside the fused [*, 3H] projections: [update z | reset r |
/// candidate n]. State update: h' = (1 - z) ⊙ n + z ⊙ h, gated by the
/// validity mask so hidden states freeze past each sequence's end.
class Gru : public Module {
 public:
  /// If `reverse` is true the recurrence runs from t = T-1 down to 0
  /// (the backward half of a BiGRU).
  Gru(int64_t input_dim, int64_t hidden_dim, Pcg32& rng, bool reverse = false);

  /// x: [B, T, input_dim]; valid: 0/1 mask [B, T] (nullptr = all valid).
  /// Returns hidden states [B, T, hidden_dim], indexed in original time
  /// order regardless of direction.
  ag::Variable Forward(const ag::Variable& x, const Tensor* valid = nullptr) const;

  int64_t input_dim() const { return input_dim_; }
  int64_t hidden_dim() const { return hidden_dim_; }
  bool reverse() const { return reverse_; }

 private:
  /// One recurrence step from precomputed input projection [B, 3H].
  ag::Variable Step(const ag::Variable& x_proj, const ag::Variable& h) const;

  int64_t input_dim_;
  int64_t hidden_dim_;
  bool reverse_;
  ag::Variable w_x_;  // [input_dim, 3H]
  ag::Variable w_h_;  // [hidden_dim, 3H]
  ag::Variable b_;    // [3H]
};

/// Bidirectional GRU: concatenation of a forward and a reverse Gru.
class BiGru : public Module {
 public:
  BiGru(int64_t input_dim, int64_t hidden_dim, Pcg32& rng);

  /// x: [B, T, input_dim] -> [B, T, 2 * hidden_dim].
  ag::Variable Forward(const ag::Variable& x, const Tensor* valid = nullptr) const;

  int64_t output_dim() const { return 2 * forward_.hidden_dim(); }

 private:
  Gru forward_;
  Gru backward_;
};

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_GRU_H_
