// Classification losses and divergences.
#ifndef DAR_NN_LOSS_H_
#define DAR_NN_LOSS_H_

#include <vector>

#include "autograd/ops.h"

namespace dar {
namespace nn {

/// Mean cross-entropy H_c(Y, Ŷ) of logits [B, C] against integer labels.
/// This is the informativeness term of the rationalization objective
/// (eq. 2) and the discriminative-alignment term of DAR (eq. 5).
ag::Variable CrossEntropy(const ag::Variable& logits,
                          const std::vector<int64_t>& labels);

/// Fraction of rows of `logits` whose argmax equals the label.
float Accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

/// Mean KL(P || Q) where `p_probs` are (detached) target probabilities and
/// `q_logits` are learned logits, both [B, C].
ag::Variable KlDivergence(const ag::Variable& p_probs,
                          const ag::Variable& q_logits);

/// Mean Jensen–Shannon divergence between two categorical distributions
/// given by logits [B, C]. Used by the A2R baseline to tie its two
/// predictors together.
ag::Variable JsDivergence(const ag::Variable& logits_a,
                          const ag::Variable& logits_b);

/// Mean elementwise KL(Bernoulli(p) || Bernoulli(prior)) over a [B, T]
/// probability tensor. Information-bottleneck prior of the VIB baseline.
ag::Variable BernoulliKl(const ag::Variable& p, float prior);

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_LOSS_H_
