// Binary Gumbel-softmax sampling with a straight-through estimator
// (Jang et al. 2017; Maddison et al. 2017).
//
// This is the reparameterization trick the paper (and RNP, DMR, A2R,
// Inter_RAT) uses to draw differentiable binary rationale masks from the
// generator's per-token selection logits.
#ifndef DAR_NN_GUMBEL_H_
#define DAR_NN_GUMBEL_H_

#include "autograd/ops.h"
#include "tensor/random.h"

namespace dar {
namespace nn {

/// Result of sampling a binary mask.
struct GumbelMask {
  /// Relaxed selection probabilities in (0, 1), shape [B, T]. Gradients
  /// flow through these.
  ag::Variable soft;
  /// Hard 0/1 mask, shape [B, T]; forward-binarized, backward passes
  /// straight through to `soft`.
  ag::Variable hard;
};

/// Samples a binary mask from per-token selection logits [B, T].
///
/// In training mode, logits are perturbed with the difference of two Gumbel
/// noises (equivalent to 2-class Gumbel-softmax) and squashed at temperature
/// `tau`; in eval mode the sample is the deterministic sigmoid(logits/tau).
/// Positions with valid == 0 are forced to 0 in both soft and hard outputs.
GumbelMask SampleBinaryMask(const ag::Variable& logits, const Tensor& valid,
                            float tau, bool training, Pcg32& rng);

/// The noise tensor SampleBinaryMask draws in training mode: one
/// Gumbel(0,1) difference per element, in flat (row-major) order. The
/// data-parallel trainer draws a whole batch's noise from the master RNG
/// with this function and hands each shard its row slice, so the sharded
/// run perturbs every example with exactly the values the sequential run
/// would have used.
Tensor DrawBinaryMaskNoise(const Shape& shape, Pcg32& rng);

/// SampleBinaryMask with the training-mode noise supplied by the caller
/// (`noise` must have the logits' shape). In eval mode the noise is unused
/// and the result is the deterministic sigmoid, as above.
GumbelMask SampleBinaryMaskWithNoise(const ag::Variable& logits,
                                     const Tensor& valid, float tau,
                                     bool training, const Tensor& noise);

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_GUMBEL_H_
