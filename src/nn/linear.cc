#include "nn/linear.h"

#include <cmath>

#include "tensor/check.h"

namespace dar {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Pcg32& rng)
    : in_features_(in_features), out_features_(out_features) {
  DAR_CHECK_GT(in_features, 0);
  DAR_CHECK_GT(out_features, 0);
  float bound = std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = RegisterParameter(
      "w", Tensor::Rand(Shape{in_features, out_features}, rng, -bound, bound));
  bias_ = RegisterParameter("b", Tensor::Zeros(Shape{out_features}));
}

ag::Variable Linear::Forward(const ag::Variable& x) const {
  DAR_CHECK_EQ(x.value().dim(), 2);
  DAR_CHECK_EQ(x.value().size(1), in_features_);
  return ag::AddBias(ag::MatMul(x, weight_), bias_);
}

}  // namespace nn
}  // namespace dar
