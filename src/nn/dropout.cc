#include "nn/dropout.h"

#include "tensor/check.h"

namespace dar {
namespace nn {

Dropout::Dropout(float p, Pcg32& rng) : p_(p), rng_(&rng) {
  DAR_CHECK(p >= 0.0f && p < 1.0f);
}

ag::Variable Dropout::Forward(const ag::Variable& x) const {
  if (!training() || p_ == 0.0f) return x;
  Tensor mask(x.value().shape());
  float scale = 1.0f / (1.0f - p_);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.flat(i) = rng_->Bernoulli(p_) ? 0.0f : scale;
  }
  return ag::Mul(x, ag::Variable::Constant(mask));
}

}  // namespace nn
}  // namespace dar
