// Module checkpointing: save/restore all named parameters of a Module.
//
// The format is a self-describing text file (versioned header, one record
// per parameter with its slash-qualified name, shape, and values), so
// checkpoints survive recompilation and are diffable. Loading verifies
// that names and shapes match the target module exactly — a checkpoint is
// only valid for the architecture that wrote it.
#ifndef DAR_NN_CHECKPOINT_H_
#define DAR_NN_CHECKPOINT_H_

#include <string>

#include "nn/module.h"

namespace dar {
namespace nn {

/// Outcome of a checkpoint load.
struct CheckpointResult {
  bool ok = false;
  std::string error;
};

/// Serializes every parameter of `module` to the checkpoint text format.
std::string SerializeCheckpoint(const Module& module);

/// Restores parameters from text produced by SerializeCheckpoint. The
/// module's parameter names and shapes must match exactly.
CheckpointResult DeserializeCheckpoint(Module& module, const std::string& text);

/// SerializeCheckpoint to a file. Returns false on I/O failure.
bool SaveCheckpoint(const Module& module, const std::string& path);

/// DeserializeCheckpoint from a file.
CheckpointResult LoadCheckpoint(Module& module, const std::string& path);

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_CHECKPOINT_H_
