// Module checkpointing: save/restore all named parameters of a Module.
//
// The format is a self-describing text file (versioned header, one record
// per parameter with its slash-qualified name, shape, and values), so
// checkpoints survive recompilation and are diffable. Values are printed
// with max_digits10 significant digits, which makes the round trip
// bit-exact for IEEE-754 floats — a served model matches the trained one
// exactly. Loading verifies that names and shapes match the target module
// exactly — a checkpoint is only valid for the architecture that wrote it.
//
// Two layouts share the same record format:
//   * version 1 — a single module (SerializeCheckpoint / SaveCheckpoint);
//   * version 2 — a named bundle of modules (the *Checkpoint overloads
//     taking std::vector<NamedModule>), used to persist whole
//     rationalizers (generator + predictor [+ discriminator]).
#ifndef DAR_NN_CHECKPOINT_H_
#define DAR_NN_CHECKPOINT_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace dar {
namespace nn {

/// Outcome of a checkpoint load.
struct CheckpointResult {
  bool ok = false;
  std::string error;
};

/// One entry of a multi-module checkpoint bundle. The module is referenced,
/// not owned; it must outlive any call using the NamedModule.
struct NamedModule {
  std::string name;
  Module* module = nullptr;
};

/// Serializes every parameter of `module` to the checkpoint text format.
std::string SerializeCheckpoint(const Module& module);

/// Serializes a bundle of named modules (version-2 layout). Module names
/// must be unique and free of whitespace.
std::string SerializeCheckpoint(const std::vector<NamedModule>& modules);

/// Restores parameters from text produced by SerializeCheckpoint. The
/// module's parameter names and shapes must match exactly.
CheckpointResult DeserializeCheckpoint(Module& module, const std::string& text);

/// Restores a bundle saved with the multi-module SerializeCheckpoint. The
/// bundle's module names, order, and parameter structure must match.
CheckpointResult DeserializeCheckpoint(const std::vector<NamedModule>& modules,
                                       const std::string& text);

/// SerializeCheckpoint to a file. Returns false on I/O failure.
bool SaveCheckpoint(const Module& module, const std::string& path);
bool SaveCheckpoint(const std::vector<NamedModule>& modules,
                    const std::string& path);

/// DeserializeCheckpoint from a file.
CheckpointResult LoadCheckpoint(Module& module, const std::string& path);
CheckpointResult LoadCheckpoint(const std::vector<NamedModule>& modules,
                                const std::string& path);

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_CHECKPOINT_H_
