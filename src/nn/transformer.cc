#include "nn/transformer.h"

#include <string>

#include "tensor/check.h"

namespace dar {
namespace nn {

TransformerBlock::TransformerBlock(const TransformerConfig& config, Pcg32& rng)
    : dim_(config.dim),
      ln1_(config.dim),
      attention_(config.dim, config.num_heads, rng),
      ln2_(config.dim),
      ffn1_(config.dim, config.ffn_dim, rng),
      ffn2_(config.ffn_dim, config.dim, rng),
      dropout_(config.dropout, rng) {
  RegisterChild("ln1", &ln1_);
  RegisterChild("mha", &attention_);
  RegisterChild("ln2", &ln2_);
  RegisterChild("ffn1", &ffn1_);
  RegisterChild("ffn2", &ffn2_);
  RegisterChild("dropout", &dropout_);
}

ag::Variable TransformerBlock::Forward(const ag::Variable& x,
                                       const Tensor& valid) const {
  const Tensor& xv = x.value();
  int64_t b = xv.size(0), t = xv.size(1);

  // Attention sub-layer (pre-LN residual).
  ag::Variable flat = ag::Reshape(x, Shape{b * t, dim_});
  ag::Variable normed = ag::Reshape(ln1_.Forward(flat), Shape{b, t, dim_});
  ag::Variable attn = attention_.Forward(normed, valid);
  ag::Variable h = ag::Add(x, dropout_.Forward(attn));

  // Feed-forward sub-layer.
  ag::Variable h_flat = ag::Reshape(h, Shape{b * t, dim_});
  ag::Variable ff = ffn2_.Forward(ag::Relu(ffn1_.Forward(ln2_.Forward(h_flat))));
  ag::Variable out_flat = ag::Add(h_flat, dropout_.Forward(ff));
  return ag::Reshape(out_flat, Shape{b, t, dim_});
}

TransformerEncoder::TransformerEncoder(const TransformerConfig& config,
                                       Pcg32& rng)
    : config_(config) {
  positional_ = RegisterParameter(
      "pos", Tensor::Randn(Shape{config.max_len, config.dim}, rng, 0.02f));
  blocks_.reserve(static_cast<size_t>(config.num_layers));
  for (int64_t i = 0; i < config.num_layers; ++i) {
    blocks_.push_back(std::make_unique<TransformerBlock>(config, rng));
    RegisterChild("block" + std::to_string(i), blocks_.back().get());
  }
}

ag::Variable TransformerEncoder::Forward(const ag::Variable& x,
                                         const Tensor& valid) const {
  const Tensor& xv = x.value();
  DAR_CHECK_EQ(xv.dim(), 3);
  int64_t b = xv.size(0), t = xv.size(1);
  DAR_CHECK_EQ(xv.size(2), config_.dim);
  DAR_CHECK_LE(t, config_.max_len);

  // Add trainable positional embeddings, broadcast over the batch by
  // looking up position ids (gradients scatter back into the table).
  std::vector<std::vector<int64_t>> pos_ids(
      static_cast<size_t>(b), std::vector<int64_t>(static_cast<size_t>(t)));
  for (auto& row : pos_ids) {
    for (int64_t tt = 0; tt < t; ++tt) row[static_cast<size_t>(tt)] = tt;
  }
  ag::Variable pos_var = ag::EmbeddingLookup(positional_, pos_ids);
  ag::Variable h = ag::Add(x, pos_var);

  for (const auto& block : blocks_) h = block->Forward(h, valid);
  return h;
}

}  // namespace nn
}  // namespace dar
