// Fully connected layer: y = x W + b.
#ifndef DAR_NN_LINEAR_H_
#define DAR_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace dar {
namespace nn {

/// Affine map from `in_features` to `out_features`.
///
/// Weights use Xavier-uniform initialization; biases start at zero.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Pcg32& rng);

  /// x: [m, in_features] -> [m, out_features].
  ag::Variable Forward(const ag::Variable& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  const ag::Variable& weight() const { return weight_; }
  const ag::Variable& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  ag::Variable weight_;  // [in, out]
  ag::Variable bias_;    // [out]
};

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_LINEAR_H_
