#include "nn/attention.h"

#include <cmath>
#include <vector>

#include "tensor/check.h"

namespace dar {
namespace nn {

MultiHeadAttention::MultiHeadAttention(int64_t dim, int64_t num_heads,
                                       Pcg32& rng)
    : dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      q_proj_(dim, dim, rng),
      k_proj_(dim, dim, rng),
      v_proj_(dim, dim, rng),
      out_proj_(dim, dim, rng) {
  DAR_CHECK_MSG(dim % num_heads == 0, "dim must be divisible by num_heads");
  RegisterChild("q", &q_proj_);
  RegisterChild("k", &k_proj_);
  RegisterChild("v", &v_proj_);
  RegisterChild("out", &out_proj_);
}

ag::Variable MultiHeadAttention::Forward(const ag::Variable& x,
                                         const Tensor& valid) const {
  const Tensor& xv = x.value();
  DAR_CHECK_EQ(xv.dim(), 3);
  int64_t b = xv.size(0), t = xv.size(1);
  DAR_CHECK_EQ(xv.size(2), dim_);
  DAR_CHECK_EQ(valid.size(0), b);
  DAR_CHECK_EQ(valid.size(1), t);

  ag::Variable flat = ag::Reshape(x, Shape{b * t, dim_});
  ag::Variable q = q_proj_.Forward(flat);
  ag::Variable k = k_proj_.Forward(flat);
  ag::Variable v = v_proj_.Forward(flat);

  float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<ag::Variable> per_example;
  per_example.reserve(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) {
    // Key-side padding mask for example i: [T, T] additive bias.
    Tensor bias(Shape{t, t});
    for (int64_t tk = 0; tk < t; ++tk) {
      if (valid.at(i, tk) == 0.0f) {
        for (int64_t tq = 0; tq < t; ++tq) bias.at(tq, tk) = -1e9f;
      }
    }
    ag::Variable bias_v = ag::Variable::Constant(bias);

    ag::Variable qi = ag::SliceRows(q, i * t, t);
    ag::Variable ki = ag::SliceRows(k, i * t, t);
    ag::Variable vi = ag::SliceRows(v, i * t, t);

    ag::Variable heads;
    for (int64_t h = 0; h < num_heads_; ++h) {
      ag::Variable qh = ag::SliceCols(qi, h * head_dim_, head_dim_);
      ag::Variable kh = ag::SliceCols(ki, h * head_dim_, head_dim_);
      ag::Variable vh = ag::SliceCols(vi, h * head_dim_, head_dim_);
      ag::Variable scores =
          ag::Add(ag::MulScalar(ag::MatMulNT(qh, kh), scale), bias_v);
      ag::Variable attn = ag::SoftmaxRowsOp(scores);
      ag::Variable ctx = ag::MatMul(attn, vh);  // [T, head_dim]
      heads = (h == 0) ? ctx : ag::ConcatCols(heads, ctx);
    }
    per_example.push_back(heads);  // [T, dim]
  }
  ag::Variable stacked = ag::ConcatRows(per_example);  // [B*T, dim]
  ag::Variable out = out_proj_.Forward(stacked);
  return ag::Reshape(out, Shape{b, t, dim_});
}

}  // namespace nn
}  // namespace dar
