// Pre-LayerNorm Transformer encoder.
//
// Stands in for BERT in the paper's Table VI experiment: an
// over-parameterized, *pretrainable* sequence encoder whose extra capacity
// makes rationale shift more severe for RNP-style methods (Chen et al.
// 2022). `PretrainMaskedToken` provides the BERT-style masked-token
// pretraining objective over the synthetic corpus.
#ifndef DAR_NN_TRANSFORMER_H_
#define DAR_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/dropout.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace dar {
namespace nn {

/// Transformer encoder hyper-parameters.
struct TransformerConfig {
  int64_t dim = 32;
  int64_t num_heads = 2;
  int64_t ffn_dim = 64;
  int64_t num_layers = 2;
  int64_t max_len = 96;
  float dropout = 0.1f;
};

/// One pre-LN block: x += MHA(LN(x)); x += FFN(LN(x)).
class TransformerBlock : public Module {
 public:
  TransformerBlock(const TransformerConfig& config, Pcg32& rng);

  ag::Variable Forward(const ag::Variable& x, const Tensor& valid) const;

 private:
  int64_t dim_;
  LayerNorm ln1_;
  MultiHeadAttention attention_;
  LayerNorm ln2_;
  Linear ffn1_;
  Linear ffn2_;
  Dropout dropout_;
};

/// Stack of TransformerBlocks with learned positional embeddings.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(const TransformerConfig& config, Pcg32& rng);

  /// x: already-embedded tokens [B, T, dim] -> contextual states
  /// [B, T, dim]. T must not exceed config.max_len.
  ag::Variable Forward(const ag::Variable& x, const Tensor& valid) const;

  const TransformerConfig& config() const { return config_; }
  int64_t output_dim() const { return config_.dim; }

 private:
  TransformerConfig config_;
  ag::Variable positional_;  // [max_len, dim]
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
};

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_TRANSFORMER_H_
