#include "nn/loss.h"

#include <cmath>

#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace nn {

ag::Variable CrossEntropy(const ag::Variable& logits,
                          const std::vector<int64_t>& labels) {
  DAR_CHECK_EQ(logits.value().dim(), 2);
  DAR_CHECK_EQ(logits.value().size(0), static_cast<int64_t>(labels.size()));
  ag::Variable logp = ag::LogSoftmaxRowsOp(logits);
  return ag::Neg(ag::Mean(ag::PickColumns(logp, labels)));
}

float Accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  DAR_CHECK_EQ(logits.dim(), 2);
  DAR_CHECK_EQ(logits.size(0), static_cast<int64_t>(labels.size()));
  std::vector<int64_t> pred = ArgMaxRows(logits);
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return labels.empty() ? 0.0f
                        : static_cast<float>(correct) /
                              static_cast<float>(labels.size());
}

ag::Variable KlDivergence(const ag::Variable& p_probs,
                          const ag::Variable& q_logits) {
  DAR_CHECK(p_probs.value().shape() == q_logits.value().shape());
  int64_t batch = p_probs.value().size(0);
  ag::Variable log_q = ag::LogSoftmaxRowsOp(q_logits);
  ag::Variable log_p = ag::Log(p_probs);
  // sum p * (log p - log q) over classes, mean over batch.
  ag::Variable per_elem = ag::Mul(p_probs, ag::Sub(log_p, log_q));
  return ag::MulScalar(ag::Sum(per_elem), 1.0f / static_cast<float>(batch));
}

ag::Variable JsDivergence(const ag::Variable& logits_a,
                          const ag::Variable& logits_b) {
  DAR_CHECK(logits_a.value().shape() == logits_b.value().shape());
  int64_t batch = logits_a.value().size(0);
  ag::Variable pa = ag::SoftmaxRowsOp(logits_a);
  ag::Variable pb = ag::SoftmaxRowsOp(logits_b);
  ag::Variable m = ag::MulScalar(ag::Add(pa, pb), 0.5f);
  ag::Variable log_m = ag::Log(m);
  ag::Variable kl_am = ag::Mul(pa, ag::Sub(ag::Log(pa), log_m));
  ag::Variable kl_bm = ag::Mul(pb, ag::Sub(ag::Log(pb), log_m));
  ag::Variable total = ag::MulScalar(ag::Add(ag::Sum(kl_am), ag::Sum(kl_bm)), 0.5f);
  return ag::MulScalar(total, 1.0f / static_cast<float>(batch));
}

ag::Variable BernoulliKl(const ag::Variable& p, float prior) {
  DAR_CHECK(prior > 0.0f && prior < 1.0f);
  // KL = p log(p/prior) + (1-p) log((1-p)/(1-prior)).
  ag::Variable q = ag::AddScalar(ag::Neg(p), 1.0f);  // 1 - p
  ag::Variable term1 =
      ag::Mul(p, ag::AddScalar(ag::Log(p), -std::log(prior)));
  ag::Variable term2 =
      ag::Mul(q, ag::AddScalar(ag::Log(q), -std::log(1.0f - prior)));
  return ag::Mean(ag::Add(term1, term2));
}

}  // namespace nn
}  // namespace dar
