// Base class for neural-network modules: a named parameter registry with
// train/eval mode, parameter counting, and state save/load.
#ifndef DAR_NN_MODULE_H_
#define DAR_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace dar {
namespace nn {

/// A named trainable parameter.
struct NamedParameter {
  std::string name;
  ag::Variable variable;
};

/// Base class for layers and models.
///
/// Subclasses register their parameters (RegisterParameter) and child
/// modules (RegisterChild) in their constructors; Parameters() then walks
/// the tree. Modules are neither copyable nor movable — they are owned by
/// value inside their parents and referenced by the optimizer.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children, depth-first.
  /// Names are slash-qualified ("gru/fw/w_x").
  std::vector<NamedParameter> Parameters() const;

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

  /// Sets train/eval mode recursively (affects dropout and sampling).
  void SetTraining(bool training);

  bool training() const { return training_; }

  /// Zeroes gradients of all parameters.
  void ZeroGrad();

  /// Copies parameter values from `other`; structures must match exactly.
  void CopyParametersFrom(const Module& other);

  /// Replica cloning: copies parameter values AND per-parameter
  /// requires_grad flags from `other` (CopyParametersFrom copies values
  /// only). The data-parallel trainer uses this to mirror the master's
  /// post-Prepare() state — including frozen modules such as DAR's
  /// discriminator — into per-thread replicas.
  void CopyStateFrom(const Module& other);

  /// Accumulates `other`'s parameter gradients into this module's, scaled
  /// by `scale`. Parameters of `other` without an accumulated gradient are
  /// skipped. Structures must match exactly. This is the gradient-reduce
  /// primitive of data-parallel training.
  void AccumulateGradientsFrom(const Module& other, float scale = 1.0f);

  /// Freezes (or unfreezes) every parameter: frozen parameters keep their
  /// values but no longer receive gradients. DAR freezes its pretrained
  /// discriminator this way.
  void SetRequiresGrad(bool requires_grad);

 protected:
  /// Registers a parameter; returns the stored Variable handle.
  ag::Variable RegisterParameter(std::string name, Tensor init,
                                 bool requires_grad = true);

  /// Registers a child module (not owned).
  void RegisterChild(std::string name, Module* child);

 private:
  std::vector<NamedParameter> own_params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_MODULE_H_
