#include "nn/layer_norm.h"

#include <cmath>
#include <memory>

#include "tensor/check.h"

namespace dar {
namespace nn {

LayerNorm::LayerNorm(int64_t dim, float eps) : dim_(dim), eps_(eps) {
  DAR_CHECK_GT(dim, 0);
  gain_ = RegisterParameter("gain", Tensor::Ones(Shape{dim}));
  bias_ = RegisterParameter("bias", Tensor::Zeros(Shape{dim}));
}

ag::Variable LayerNorm::Forward(const ag::Variable& x) const {
  const Tensor& xv = x.value();
  DAR_CHECK_EQ(xv.dim(), 2);
  DAR_CHECK_EQ(xv.size(1), dim_);
  int64_t m = xv.size(0), n = dim_;
  float eps = eps_;

  // Fused op: saving xhat and 1/sigma makes the backward exact and cheap.
  Tensor out(xv.shape());
  auto xhat = std::make_shared<Tensor>(xv.shape());
  auto inv_sigma = std::make_shared<Tensor>(Shape{m});
  {
    const float* px = xv.data();
    const float* pg = gain_.value().data();
    const float* pb = bias_.value().data();
    float* po = out.data();
    float* ph = xhat->data();
    for (int64_t i = 0; i < m; ++i) {
      const float* row = px + i * n;
      double mu = 0.0;
      for (int64_t j = 0; j < n; ++j) mu += row[j];
      mu /= static_cast<double>(n);
      double var = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        double d = row[j] - mu;
        var += d * d;
      }
      var /= static_cast<double>(n);
      float is = 1.0f / std::sqrt(static_cast<float>(var) + eps);
      inv_sigma->at(i) = is;
      for (int64_t j = 0; j < n; ++j) {
        float h = (row[j] - static_cast<float>(mu)) * is;
        ph[i * n + j] = h;
        po[i * n + j] = h * pg[j] + pb[j];
      }
    }
  }

  auto px_node = x.node();
  auto pg_node = gain_.node();
  auto pb_node = bias_.node();
  return ag::MakeOpResult(
      "layer_norm", std::move(out), {px_node, pg_node, pb_node},
      [px_node, pg_node, pb_node, xhat, inv_sigma, m, n](ag::Node& node) {
        const float* pdy = node.grad.data();
        const float* ph = xhat->data();
        const float* pg = pg_node->value.data();
        if (pg_node->requires_grad) {
          Tensor ggain(Shape{n});
          float* p = ggain.data();
          for (int64_t i = 0; i < m; ++i) {
            for (int64_t j = 0; j < n; ++j) p[j] += pdy[i * n + j] * ph[i * n + j];
          }
          pg_node->AccumulateGrad(ggain);
        }
        if (pb_node->requires_grad) {
          Tensor gbias(Shape{n});
          float* p = gbias.data();
          for (int64_t i = 0; i < m; ++i) {
            for (int64_t j = 0; j < n; ++j) p[j] += pdy[i * n + j];
          }
          pb_node->AccumulateGrad(gbias);
        }
        if (px_node->requires_grad) {
          // dx = inv_sigma * (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat)),
          // with dxhat = dy * gain.
          Tensor gx(px_node->value.shape());
          float* p = gx.data();
          for (int64_t i = 0; i < m; ++i) {
            float mean_d = 0.0f, mean_dh = 0.0f;
            for (int64_t j = 0; j < n; ++j) {
              float d = pdy[i * n + j] * pg[j];
              mean_d += d;
              mean_dh += d * ph[i * n + j];
            }
            mean_d /= static_cast<float>(n);
            mean_dh /= static_cast<float>(n);
            float is = inv_sigma->at(i);
            for (int64_t j = 0; j < n; ++j) {
              float d = pdy[i * n + j] * pg[j];
              p[i * n + j] = is * (d - mean_d - ph[i * n + j] * mean_dh);
            }
          }
          px_node->AccumulateGrad(gx);
        }
      });
}

}  // namespace nn
}  // namespace dar
