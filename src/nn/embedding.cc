#include "nn/embedding.h"

#include <utility>

#include "tensor/check.h"

namespace dar {
namespace nn {

Embedding::Embedding(int64_t vocab_size, int64_t dim, Pcg32& rng) {
  DAR_CHECK_GT(vocab_size, 0);
  DAR_CHECK_GT(dim, 0);
  table_ = RegisterParameter(
      "table", Tensor::Randn(Shape{vocab_size, dim}, rng, 0.1f));
}

Embedding::Embedding(Tensor pretrained, bool trainable) {
  DAR_CHECK_EQ(pretrained.dim(), 2);
  table_ = RegisterParameter("table", std::move(pretrained), trainable);
}

ag::Variable Embedding::Forward(
    const std::vector<std::vector<int64_t>>& ids) const {
  return ag::EmbeddingLookup(table_, ids);
}

const float* Embedding::RowConst(int64_t id) const {
  DAR_CHECK_GE(id, 0);
  DAR_CHECK_LT(id, vocab_size());
  return table_.value().data() + id * dim();
}

}  // namespace nn
}  // namespace dar
