#include "nn/gru.h"

#include <cmath>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/fastmath.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace nn {

namespace {

/// Extracts column t of a [B, T] mask tensor as a length-B constant vector.
Tensor MaskColumn(const Tensor& valid, int64_t t) {
  int64_t b = valid.size(0);
  Tensor out(Shape{b});
  for (int64_t i = 0; i < b; ++i) out.at(i) = valid.at(i, t);
  return out;
}

/// Fused GRU cell: one op node in place of the ~12 slice/activation/
/// arithmetic nodes the recurrence used to record per timestep. The two
/// projections stay ordinary MatMuls (they ride the packed GEMM kernel);
/// this op fuses everything after them — gates, candidate, state blend,
/// and the optional padding freeze — into a single pass over [B, H].
///
/// Forward, for gate layout [z | r | n] in the 3H projections:
///   z = sigmoid(p[:, 0H:1H] + q[:, 0H:1H])
///   r = sigmoid(p[:, 1H:2H] + q[:, 1H:2H])
///   n = tanh  (p[:, 2H:3H] + r  * q[:, 2H:3H])
///   h' = (1 - z) * n + z * h
///   out = mask * h' + (1 - mask) * h        (mask == nullptr: out = h')
///
/// The formulas — including FastSigmoid/FastTanh (tensor/fastmath.h) —
/// are expression-for-expression the composition this replaced; the only
/// permitted divergence is FP contraction within the fused expressions.
/// There is exactly one implementation, so every consumer (training,
/// serving, cached and uncached paths, all replica counts) sees identical
/// bits — which is what the differential harnesses certify.
///
/// Backward (g = d out): with gm = g * mask (or g when unmasked),
///   dh  = gm * z + g * (1 - mask)
///   dn  = gm * (1 - z);        dt   = dn * (1 - n^2)
///   dp2 = dt;                  dq2  = dt * r;   dr = dt * q2
///   dp1 = dq1 = dr * r * (1 - r)
///   dz  = gm * (h - n);        dp0  = dq0 = dz * z * (1 - z)
/// Certified by gradcheck in tests/nn_gru_test.cc and tests/gemm_test.cc.
ag::Variable GruCell(const ag::Variable& p, const ag::Variable& q,
                     const ag::Variable& h, const Tensor* mask) {
  const Tensor& pv = p.value();
  const Tensor& qv = q.value();
  const Tensor& hv = h.value();
  const int64_t b = hv.size(0), hd = hv.size(1);
  DAR_CHECK_EQ(pv.size(0), b);
  DAR_CHECK_EQ(pv.size(1), 3 * hd);
  DAR_CHECK_EQ(qv.size(0), b);
  DAR_CHECK_EQ(qv.size(1), 3 * hd);
  if (mask != nullptr) DAR_CHECK_EQ(mask->size(0), b);

  // Gate activations are retained for the backward closure (and drop with
  // the node when no input requires grad — inference stays light).
  Tensor z(Shape{b, hd}), r(Shape{b, hd}), n(Shape{b, hd});
  Tensor out = Tensor::Scratch(Shape{b, hd});
  const float* pp = pv.data();
  const float* pq = qv.data();
  const float* ph = hv.data();
  const float* pm = mask != nullptr ? mask->data() : nullptr;
  float* pz = z.data();
  float* pr = r.data();
  float* pn = n.data();
  float* po = out.data();
  for (int64_t i = 0; i < b; ++i) {
    const float* prow = pp + i * 3 * hd;
    const float* qrow = pq + i * 3 * hd;
    const float* hrow = ph + i * hd;
    const float mi = pm != nullptr ? pm[i] : 1.0f;
    const float inv_mi = 1.0f - mi;
    float* zrow = pz + i * hd;
    float* rrow = pr + i * hd;
    float* nrow = pn + i * hd;
    float* orow = po + i * hd;
    for (int64_t j = 0; j < hd; ++j) {
      const float zv = fastmath::FastSigmoid(prow[j] + qrow[j]);
      const float rv = fastmath::FastSigmoid(prow[hd + j] + qrow[hd + j]);
      const float nv =
          fastmath::FastTanh(prow[2 * hd + j] + rv * qrow[2 * hd + j]);
      const float hprime = (1.0f - zv) * nv + zv * hrow[j];
      zrow[j] = zv;
      rrow[j] = rv;
      nrow[j] = nv;
      orow[j] = pm != nullptr ? mi * hprime + inv_mi * hrow[j] : hprime;
    }
  }

  auto np = p.node();
  auto nq = q.node();
  auto nh = h.node();
  Tensor mask_copy = mask != nullptr ? *mask : Tensor();
  const bool masked = mask != nullptr;
  auto backward = [np, nq, nh, z = std::move(z), r = std::move(r),
                   n = std::move(n), mask_copy = std::move(mask_copy), masked,
                   b, hd](ag::Node& node) {
    Tensor dp(Shape{b, 3 * hd}), dq(Shape{b, 3 * hd}), dh(Shape{b, hd});
    const float* pg = node.grad.data();
    const float* pz = z.data();
    const float* pr = r.data();
    const float* pn = n.data();
    const float* pq2 = nq->value.data();
    const float* ph = nh->value.data();
    const float* pm = masked ? mask_copy.data() : nullptr;
    float* pdp = dp.data();
    float* pdq = dq.data();
    float* pdh = dh.data();
    for (int64_t i = 0; i < b; ++i) {
      const float* grow = pg + i * hd;
      const float* zrow = pz + i * hd;
      const float* rrow = pr + i * hd;
      const float* nrow = pn + i * hd;
      const float* q2row = pq2 + i * 3 * hd + 2 * hd;
      const float* hrow = ph + i * hd;
      const float mi = pm != nullptr ? pm[i] : 1.0f;
      float* dprow = pdp + i * 3 * hd;
      float* dqrow = pdq + i * 3 * hd;
      float* dhrow = pdh + i * hd;
      for (int64_t j = 0; j < hd; ++j) {
        const float g = grow[j];
        const float gm = g * mi;
        const float zv = zrow[j], rv = rrow[j], nv = nrow[j];
        const float dt = gm * (1.0f - zv) * (1.0f - nv * nv);
        const float ds_r = dt * q2row[j] * rv * (1.0f - rv);
        const float ds_z = gm * (hrow[j] - nv) * zv * (1.0f - zv);
        dprow[j] = ds_z;
        dprow[hd + j] = ds_r;
        dprow[2 * hd + j] = dt;
        dqrow[j] = ds_z;
        dqrow[hd + j] = ds_r;
        dqrow[2 * hd + j] = dt * rv;
        dhrow[j] = gm * zv + g * (1.0f - mi);
      }
    }
    if (np->requires_grad) np->AccumulateGrad(dp);
    if (nq->requires_grad) nq->AccumulateGrad(dq);
    if (nh->requires_grad) nh->AccumulateGrad(dh);
  };
  return ag::MakeOpResult("gru_cell", std::move(out), {np, nq, nh},
                          std::move(backward));
}

}  // namespace

Gru::Gru(int64_t input_dim, int64_t hidden_dim, Pcg32& rng, bool reverse)
    : input_dim_(input_dim), hidden_dim_(hidden_dim), reverse_(reverse) {
  DAR_CHECK_GT(input_dim, 0);
  DAR_CHECK_GT(hidden_dim, 0);
  float bx = std::sqrt(6.0f / static_cast<float>(input_dim + hidden_dim));
  float bh = std::sqrt(6.0f / static_cast<float>(2 * hidden_dim));
  w_x_ = RegisterParameter(
      "w_x", Tensor::Rand(Shape{input_dim, 3 * hidden_dim}, rng, -bx, bx));
  w_h_ = RegisterParameter(
      "w_h", Tensor::Rand(Shape{hidden_dim, 3 * hidden_dim}, rng, -bh, bh));
  b_ = RegisterParameter("b", Tensor::Zeros(Shape{3 * hidden_dim}));
}

ag::Variable Gru::Step(const ag::Variable& x_proj, const ag::Variable& h) const {
  // Hidden projection through the packed GEMM kernel, gates through the
  // fused cell — the whole recurrent step is two op nodes.
  ag::Variable h_proj = ag::MatMul(h, w_h_);
  return GruCell(x_proj, h_proj, h, /*mask=*/nullptr);
}

ag::Variable Gru::Forward(const ag::Variable& x, const Tensor* valid) const {
  obs::Span span("gru.forward", obs::TraceLevel::kDetailed);
  const Tensor& xv = x.value();
  DAR_CHECK_EQ(xv.dim(), 3);
  int64_t b = xv.size(0), t_len = xv.size(1);
  DAR_CHECK_EQ(xv.size(2), input_dim_);
  if (valid != nullptr) {
    DAR_CHECK_EQ(valid->dim(), 2);
    DAR_CHECK_EQ(valid->size(0), b);
    DAR_CHECK_EQ(valid->size(1), t_len);
  }

  // Project all timesteps at once: [B*T, E] x [E, 3H] — one large GEMM
  // instead of T small ones; the packed kernel's best case.
  ag::Variable x_flat = ag::Reshape(x, Shape{b * t_len, input_dim_});
  ag::Variable proj_flat = ag::AddBias(ag::MatMul(x_flat, w_x_), b_);
  ag::Variable proj = ag::Reshape(proj_flat, Shape{b, t_len, 3 * hidden_dim_});

  ag::Variable h = ag::Variable::Constant(Tensor::Zeros(Shape{b, hidden_dim_}));
  std::vector<ag::Variable> outputs(static_cast<size_t>(t_len));
  for (int64_t step = 0; step < t_len; ++step) {
    int64_t t = reverse_ ? t_len - 1 - step : step;
    // The padding freeze (h = m * h' + (1 - m) * h) is folded into the
    // fused cell rather than composed from ScaleRows/Add ops.
    ag::Variable h_proj = ag::MatMul(h, w_h_);
    if (valid != nullptr) {
      Tensor m = MaskColumn(*valid, t);
      h = GruCell(ag::SliceTimeOp(proj, t), h_proj, h, &m);
    } else {
      h = GruCell(ag::SliceTimeOp(proj, t), h_proj, h, nullptr);
    }
    outputs[static_cast<size_t>(t)] = h;
  }
  return ag::StackTimeOp(outputs);
}

BiGru::BiGru(int64_t input_dim, int64_t hidden_dim, Pcg32& rng)
    : forward_(input_dim, hidden_dim, rng, /*reverse=*/false),
      backward_(input_dim, hidden_dim, rng, /*reverse=*/true) {
  RegisterChild("fw", &forward_);
  RegisterChild("bw", &backward_);
}

ag::Variable BiGru::Forward(const ag::Variable& x, const Tensor* valid) const {
  ag::Variable fw = forward_.Forward(x, valid);
  ag::Variable bw = backward_.Forward(x, valid);
  const Tensor& xv = x.value();
  int64_t b = xv.size(0), t_len = xv.size(1);
  int64_t hd = forward_.hidden_dim();
  // Concatenate along the feature dim: reshape both to [B*T, H] and concat.
  ag::Variable fw2 = ag::Reshape(fw, Shape{b * t_len, hd});
  ag::Variable bw2 = ag::Reshape(bw, Shape{b * t_len, hd});
  return ag::Reshape(ag::ConcatCols(fw2, bw2), Shape{b, t_len, 2 * hd});
}

}  // namespace nn
}  // namespace dar
