#include "nn/gru.h"

#include <cmath>
#include <vector>

#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace nn {

namespace {

/// Extracts column t of a [B, T] mask tensor as a length-B constant vector.
Tensor MaskColumn(const Tensor& valid, int64_t t) {
  int64_t b = valid.size(0);
  Tensor out(Shape{b});
  for (int64_t i = 0; i < b; ++i) out.at(i) = valid.at(i, t);
  return out;
}

}  // namespace

Gru::Gru(int64_t input_dim, int64_t hidden_dim, Pcg32& rng, bool reverse)
    : input_dim_(input_dim), hidden_dim_(hidden_dim), reverse_(reverse) {
  DAR_CHECK_GT(input_dim, 0);
  DAR_CHECK_GT(hidden_dim, 0);
  float bx = std::sqrt(6.0f / static_cast<float>(input_dim + hidden_dim));
  float bh = std::sqrt(6.0f / static_cast<float>(2 * hidden_dim));
  w_x_ = RegisterParameter(
      "w_x", Tensor::Rand(Shape{input_dim, 3 * hidden_dim}, rng, -bx, bx));
  w_h_ = RegisterParameter(
      "w_h", Tensor::Rand(Shape{hidden_dim, 3 * hidden_dim}, rng, -bh, bh));
  b_ = RegisterParameter("b", Tensor::Zeros(Shape{3 * hidden_dim}));
}

ag::Variable Gru::Step(const ag::Variable& x_proj, const ag::Variable& h) const {
  int64_t hd = hidden_dim_;
  ag::Variable h_proj = ag::MatMul(h, w_h_);
  ag::Variable z = ag::Sigmoid(
      ag::Add(ag::SliceCols(x_proj, 0, hd), ag::SliceCols(h_proj, 0, hd)));
  ag::Variable r = ag::Sigmoid(
      ag::Add(ag::SliceCols(x_proj, hd, hd), ag::SliceCols(h_proj, hd, hd)));
  ag::Variable n = ag::Tanh(
      ag::Add(ag::SliceCols(x_proj, 2 * hd, hd),
              ag::Mul(r, ag::SliceCols(h_proj, 2 * hd, hd))));
  // h' = (1 - z) * n + z * h
  ag::Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
  return ag::Add(ag::Mul(one_minus_z, n), ag::Mul(z, h));
}

ag::Variable Gru::Forward(const ag::Variable& x, const Tensor* valid) const {
  obs::Span span("gru.forward", obs::TraceLevel::kDetailed);
  const Tensor& xv = x.value();
  DAR_CHECK_EQ(xv.dim(), 3);
  int64_t b = xv.size(0), t_len = xv.size(1);
  DAR_CHECK_EQ(xv.size(2), input_dim_);
  if (valid != nullptr) {
    DAR_CHECK_EQ(valid->dim(), 2);
    DAR_CHECK_EQ(valid->size(0), b);
    DAR_CHECK_EQ(valid->size(1), t_len);
  }

  // Project all timesteps at once: [B*T, E] x [E, 3H].
  ag::Variable x_flat = ag::Reshape(x, Shape{b * t_len, input_dim_});
  ag::Variable proj_flat = ag::AddBias(ag::MatMul(x_flat, w_x_), b_);
  ag::Variable proj = ag::Reshape(proj_flat, Shape{b, t_len, 3 * hidden_dim_});

  ag::Variable h = ag::Variable::Constant(Tensor::Zeros(Shape{b, hidden_dim_}));
  std::vector<ag::Variable> outputs(static_cast<size_t>(t_len));
  for (int64_t step = 0; step < t_len; ++step) {
    int64_t t = reverse_ ? t_len - 1 - step : step;
    ag::Variable h_new = Step(ag::SliceTimeOp(proj, t), h);
    if (valid != nullptr) {
      // h = m * h_new + (1 - m) * h : frozen past sequence end.
      Tensor m = MaskColumn(*valid, t);
      ag::Variable mv = ag::Variable::Constant(m);
      ag::Variable inv = ag::Variable::Constant(
          Map(m, [](float v) { return 1.0f - v; }));
      h = ag::Add(ag::ScaleRows(h_new, mv), ag::ScaleRows(h, inv));
    } else {
      h = h_new;
    }
    outputs[static_cast<size_t>(t)] = h;
  }
  return ag::StackTimeOp(outputs);
}

BiGru::BiGru(int64_t input_dim, int64_t hidden_dim, Pcg32& rng)
    : forward_(input_dim, hidden_dim, rng, /*reverse=*/false),
      backward_(input_dim, hidden_dim, rng, /*reverse=*/true) {
  RegisterChild("fw", &forward_);
  RegisterChild("bw", &backward_);
}

ag::Variable BiGru::Forward(const ag::Variable& x, const Tensor* valid) const {
  ag::Variable fw = forward_.Forward(x, valid);
  ag::Variable bw = backward_.Forward(x, valid);
  const Tensor& xv = x.value();
  int64_t b = xv.size(0), t_len = xv.size(1);
  int64_t hd = forward_.hidden_dim();
  // Concatenate along the feature dim: reshape both to [B*T, H] and concat.
  ag::Variable fw2 = ag::Reshape(fw, Shape{b * t_len, hd});
  ag::Variable bw2 = ag::Reshape(bw, Shape{b * t_len, hd});
  return ag::Reshape(ag::ConcatCols(fw2, bw2), Shape{b, t_len, 2 * hd});
}

}  // namespace nn
}  // namespace dar
