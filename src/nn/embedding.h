// Token embedding layer.
#ifndef DAR_NN_EMBEDDING_H_
#define DAR_NN_EMBEDDING_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace dar {
namespace nn {

/// Maps token-id sequences to dense vectors via a [vocab, dim] table.
///
/// The table can be loaded from pretrained vectors (SyntheticGlove in this
/// repository) and optionally frozen, matching the paper's use of fixed
/// GloVe embeddings.
class Embedding : public Module {
 public:
  /// Randomly initialized table (N(0, 0.1)).
  Embedding(int64_t vocab_size, int64_t dim, Pcg32& rng);

  /// Table initialized from pretrained vectors [vocab, dim].
  Embedding(Tensor pretrained, bool trainable);

  /// ids: [B][T] -> [B, T, dim].
  ag::Variable Forward(const std::vector<std::vector<int64_t>>& ids) const;

  int64_t vocab_size() const { return table_.value().size(0); }
  int64_t dim() const { return table_.value().size(1); }
  const ag::Variable& table() const { return table_; }

  /// Borrowed pointer to row `id` of the table ([dim] floats, valid for
  /// the module's lifetime). The serving cache's embedding tier reads and
  /// restores rows through this without building an autograd graph;
  /// Forward() copies the same bytes, so cache-assembled inputs are
  /// bit-identical to a table lookup.
  const float* RowConst(int64_t id) const;

 private:
  ag::Variable table_;  // [vocab, dim]
};

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_EMBEDDING_H_
