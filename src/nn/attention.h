// Multi-head scaled dot-product self-attention.
#ifndef DAR_NN_ATTENTION_H_
#define DAR_NN_ATTENTION_H_

#include "autograd/ops.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace dar {
namespace nn {

/// Self-attention over a padded batch [B, T, dim].
///
/// Padded key positions are masked with a large negative score before the
/// softmax; padded query rows produce values that downstream pooling
/// ignores via the same validity mask.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t dim, int64_t num_heads, Pcg32& rng);

  /// x: [B, T, dim], valid: [B, T] -> [B, T, dim].
  ag::Variable Forward(const ag::Variable& x, const Tensor& valid) const;

  int64_t dim() const { return dim_; }
  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear q_proj_;
  Linear k_proj_;
  Linear v_proj_;
  Linear out_proj_;
};

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_ATTENTION_H_
