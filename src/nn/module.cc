#include "nn/module.h"

#include <utility>

#include "tensor/check.h"

namespace dar {
namespace nn {

std::vector<NamedParameter> Module::Parameters() const {
  std::vector<NamedParameter> all;
  for (const NamedParameter& p : own_params_) all.push_back(p);
  for (const auto& [name, child] : children_) {
    for (NamedParameter p : child->Parameters()) {
      p.name = name + "/" + p.name;
      all.push_back(std::move(p));
    }
  }
  return all;
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const NamedParameter& p : Parameters()) n += p.variable.numel();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::ZeroGrad() {
  for (NamedParameter& p : Parameters()) p.variable.ZeroGrad();
}

void Module::CopyParametersFrom(const Module& other) {
  std::vector<NamedParameter> mine = Parameters();
  std::vector<NamedParameter> theirs = other.Parameters();
  DAR_CHECK_MSG(mine.size() == theirs.size(),
                "CopyParametersFrom: parameter count mismatch");
  for (size_t i = 0; i < mine.size(); ++i) {
    DAR_CHECK_MSG(mine[i].variable.shape() == theirs[i].variable.shape(),
                  "CopyParametersFrom: parameter shape mismatch");
    mine[i].variable.mutable_value() = theirs[i].variable.value();
  }
}

void Module::CopyStateFrom(const Module& other) {
  std::vector<NamedParameter> mine = Parameters();
  std::vector<NamedParameter> theirs = other.Parameters();
  DAR_CHECK_MSG(mine.size() == theirs.size(),
                "CopyStateFrom: parameter count mismatch");
  for (size_t i = 0; i < mine.size(); ++i) {
    DAR_CHECK_MSG(mine[i].variable.shape() == theirs[i].variable.shape(),
                  "CopyStateFrom: parameter shape mismatch");
    mine[i].variable.mutable_value() = theirs[i].variable.value();
    mine[i].variable.set_requires_grad(theirs[i].variable.requires_grad());
  }
}

void Module::AccumulateGradientsFrom(const Module& other, float scale) {
  std::vector<NamedParameter> mine = Parameters();
  std::vector<NamedParameter> theirs = other.Parameters();
  DAR_CHECK_MSG(mine.size() == theirs.size(),
                "AccumulateGradientsFrom: parameter count mismatch");
  for (size_t i = 0; i < mine.size(); ++i) {
    const ag::Variable& src = theirs[i].variable;
    if (!src.has_grad()) continue;
    DAR_CHECK_MSG(mine[i].variable.shape() == src.shape(),
                  "AccumulateGradientsFrom: parameter shape mismatch");
    if (scale == 1.0f) {
      mine[i].variable.AccumulateGrad(src.grad());
    } else {
      Tensor scaled = src.grad();
      for (int64_t j = 0; j < scaled.numel(); ++j) scaled.flat(j) *= scale;
      mine[i].variable.AccumulateGrad(scaled);
    }
  }
}

void Module::SetRequiresGrad(bool requires_grad) {
  for (NamedParameter& p : Parameters()) {
    p.variable.set_requires_grad(requires_grad);
    // Freezing also clears stale gradients (e.g. from pretraining) so a
    // frozen module can never leak an update through a shared optimizer.
    if (!requires_grad && p.variable.has_grad()) p.variable.ZeroGrad();
  }
}

ag::Variable Module::RegisterParameter(std::string name, Tensor init,
                                       bool requires_grad) {
  ag::Variable v(std::move(init), requires_grad);
  own_params_.push_back({std::move(name), v});
  return v;
}

void Module::RegisterChild(std::string name, Module* child) {
  DAR_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

}  // namespace nn
}  // namespace dar
