// Sequence pooling for padded batches.
#ifndef DAR_NN_POOLING_H_
#define DAR_NN_POOLING_H_

#include "autograd/ops.h"

namespace dar {
namespace nn {

/// Max-pools h [B, T, H] over valid time-steps -> [B, H]. Padded positions
/// (valid == 0) never win. Each example must have at least one valid step.
ag::Variable MaskedMaxPool(const ag::Variable& h, const Tensor& valid);

/// Mean of h [B, T, H] over valid time-steps -> [B, H].
ag::Variable MaskedMeanPool(const ag::Variable& h, const Tensor& valid);

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_POOLING_H_
