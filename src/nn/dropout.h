// Inverted dropout.
#ifndef DAR_NN_DROPOUT_H_
#define DAR_NN_DROPOUT_H_

#include "autograd/ops.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace dar {
namespace nn {

/// Inverted dropout: during training each element is zeroed with probability
/// p and survivors are scaled by 1/(1-p); at evaluation it is the identity.
class Dropout : public Module {
 public:
  /// `rng` must outlive the module; each Forward in training mode draws a
  /// fresh mask from it.
  Dropout(float p, Pcg32& rng);

  ag::Variable Forward(const ag::Variable& x) const;

  float p() const { return p_; }

 private:
  float p_;
  Pcg32* rng_;
};

}  // namespace nn
}  // namespace dar

#endif  // DAR_NN_DROPOUT_H_
