#include "nn/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dar {
namespace nn {

namespace {

constexpr char kMagic[] = "DARCKPT";
constexpr int kVersion = 1;

}  // namespace

std::string SerializeCheckpoint(const Module& module) {
  std::vector<NamedParameter> params = module.Parameters();
  std::ostringstream os;
  os << kMagic << ' ' << kVersion << '\n';
  os << "params " << params.size() << '\n';
  for (const NamedParameter& p : params) {
    const Tensor& value = p.variable.value();
    os << "name " << p.name << '\n';
    os << "shape";
    for (int64_t d : value.shape()) os << ' ' << d;
    os << '\n';
    for (int64_t i = 0; i < value.numel(); ++i) {
      if (i) os << ' ';
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.9g", value.flat(i));
      os << buf;
    }
    os << '\n';
  }
  return os.str();
}

CheckpointResult DeserializeCheckpoint(Module& module,
                                       const std::string& text) {
  CheckpointResult result;
  std::istringstream is(text);
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic) {
    result.error = "not a DAR checkpoint (bad magic)";
    return result;
  }
  if (version != kVersion) {
    result.error = "unsupported checkpoint version";
    return result;
  }
  std::string keyword;
  size_t count = 0;
  if (!(is >> keyword >> count) || keyword != "params") {
    result.error = "missing params header";
    return result;
  }
  std::vector<NamedParameter> params = module.Parameters();
  if (count != params.size()) {
    std::ostringstream os;
    os << "parameter count mismatch: checkpoint has " << count
       << ", module has " << params.size();
    result.error = os.str();
    return result;
  }
  for (NamedParameter& p : params) {
    std::string name;
    if (!(is >> keyword >> name) || keyword != "name") {
      result.error = "malformed record (expected 'name')";
      return result;
    }
    if (name != p.name) {
      result.error = "parameter name mismatch: checkpoint '" + name +
                     "' vs module '" + p.name + "'";
      return result;
    }
    if (!(is >> keyword) || keyword != "shape") {
      result.error = "malformed record (expected 'shape') for " + name;
      return result;
    }
    Shape expected = p.variable.value().shape();
    Shape got;
    for (size_t d = 0; d < expected.size(); ++d) {
      int64_t dim = 0;
      if (!(is >> dim)) {
        result.error = "truncated shape for " + name;
        return result;
      }
      got.push_back(dim);
    }
    if (got != expected) {
      result.error = "shape mismatch for " + name + ": checkpoint " +
                     ShapeToString(got) + " vs module " +
                     ShapeToString(expected);
      return result;
    }
    Tensor value(expected);
    for (int64_t i = 0; i < value.numel(); ++i) {
      float v = 0.0f;
      if (!(is >> v)) {
        result.error = "truncated values for " + name;
        return result;
      }
      value.flat(i) = v;
    }
    p.variable.mutable_value() = std::move(value);
  }
  result.ok = true;
  return result;
}

bool SaveCheckpoint(const Module& module, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << SerializeCheckpoint(module);
  return static_cast<bool>(file);
}

CheckpointResult LoadCheckpoint(Module& module, const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    CheckpointResult result;
    result.error = "cannot open file: " + path;
    return result;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return DeserializeCheckpoint(module, buffer.str());
}

}  // namespace nn
}  // namespace dar
