#include "nn/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "tensor/check.h"

namespace dar {
namespace nn {

namespace {

constexpr char kMagic[] = "DARCKPT";
constexpr int kSingleModuleVersion = 1;
constexpr int kBundleVersion = 2;

// max_digits10 significant decimal digits round-trip any finite IEEE-754
// single-precision value bit-exactly through text.
constexpr int kFloatDigits = std::numeric_limits<float>::max_digits10;

void WriteParams(std::ostringstream& os, const Module& module) {
  std::vector<NamedParameter> params = module.Parameters();
  os << "params " << params.size() << '\n';
  for (const NamedParameter& p : params) {
    const Tensor& value = p.variable.value();
    os << "name " << p.name << '\n';
    os << "shape";
    for (int64_t d : value.shape()) os << ' ' << d;
    os << '\n';
    for (int64_t i = 0; i < value.numel(); ++i) {
      if (i) os << ' ';
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.*g", kFloatDigits, value.flat(i));
      os << buf;
    }
    os << '\n';
  }
}

bool ReadParams(std::istringstream& is, Module& module, std::string& error) {
  std::string keyword;
  size_t count = 0;
  if (!(is >> keyword >> count) || keyword != "params") {
    error = "missing params header";
    return false;
  }
  std::vector<NamedParameter> params = module.Parameters();
  if (count != params.size()) {
    std::ostringstream os;
    os << "parameter count mismatch: checkpoint has " << count
       << ", module has " << params.size();
    error = os.str();
    return false;
  }
  for (NamedParameter& p : params) {
    std::string name;
    if (!(is >> keyword >> name) || keyword != "name") {
      error = "malformed record (expected 'name')";
      return false;
    }
    if (name != p.name) {
      error = "parameter name mismatch: checkpoint '" + name +
              "' vs module '" + p.name + "'";
      return false;
    }
    if (!(is >> keyword) || keyword != "shape") {
      error = "malformed record (expected 'shape') for " + name;
      return false;
    }
    Shape expected = p.variable.value().shape();
    Shape got;
    for (size_t d = 0; d < expected.size(); ++d) {
      int64_t dim = 0;
      if (!(is >> dim)) {
        error = "truncated shape for " + name;
        return false;
      }
      got.push_back(dim);
    }
    if (got != expected) {
      error = "shape mismatch for " + name + ": checkpoint " +
              ShapeToString(got) + " vs module " + ShapeToString(expected);
      return false;
    }
    Tensor value(expected);
    for (int64_t i = 0; i < value.numel(); ++i) {
      float v = 0.0f;
      if (!(is >> v)) {
        error = "truncated values for " + name;
        return false;
      }
      value.flat(i) = v;
    }
    p.variable.mutable_value() = std::move(value);
  }
  return true;
}

bool ReadHeader(std::istringstream& is, int expected_version,
                std::string& error) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic) {
    error = "not a DAR checkpoint (bad magic)";
    return false;
  }
  if (version != expected_version) {
    std::ostringstream os;
    os << "unsupported checkpoint version " << version << " (expected "
       << expected_version << ")";
    error = os.str();
    return false;
  }
  return true;
}

std::string ReadFileOrEmpty(const std::string& path, bool& ok) {
  std::ifstream file(path);
  ok = static_cast<bool>(file);
  if (!ok) return std::string();
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

std::string SerializeCheckpoint(const Module& module) {
  std::ostringstream os;
  os << kMagic << ' ' << kSingleModuleVersion << '\n';
  WriteParams(os, module);
  return os.str();
}

std::string SerializeCheckpoint(const std::vector<NamedModule>& modules) {
  std::ostringstream os;
  os << kMagic << ' ' << kBundleVersion << '\n';
  os << "modules " << modules.size() << '\n';
  for (const NamedModule& m : modules) {
    DAR_CHECK(m.module != nullptr);
    os << "module " << m.name << '\n';
    WriteParams(os, *m.module);
  }
  return os.str();
}

CheckpointResult DeserializeCheckpoint(Module& module,
                                       const std::string& text) {
  CheckpointResult result;
  std::istringstream is(text);
  if (!ReadHeader(is, kSingleModuleVersion, result.error)) return result;
  if (!ReadParams(is, module, result.error)) return result;
  result.ok = true;
  return result;
}

CheckpointResult DeserializeCheckpoint(const std::vector<NamedModule>& modules,
                                       const std::string& text) {
  CheckpointResult result;
  std::istringstream is(text);
  if (!ReadHeader(is, kBundleVersion, result.error)) return result;
  std::string keyword;
  size_t count = 0;
  if (!(is >> keyword >> count) || keyword != "modules") {
    result.error = "missing modules header";
    return result;
  }
  if (count != modules.size()) {
    std::ostringstream os;
    os << "module count mismatch: checkpoint has " << count << ", target has "
       << modules.size();
    result.error = os.str();
    return result;
  }
  for (const NamedModule& m : modules) {
    DAR_CHECK(m.module != nullptr);
    std::string name;
    if (!(is >> keyword >> name) || keyword != "module") {
      result.error = "malformed bundle (expected 'module')";
      return result;
    }
    if (name != m.name) {
      result.error = "module name mismatch: checkpoint '" + name +
                     "' vs target '" + m.name + "'";
      return result;
    }
    if (!ReadParams(is, *m.module, result.error)) {
      result.error = "module '" + m.name + "': " + result.error;
      return result;
    }
  }
  result.ok = true;
  return result;
}

bool SaveCheckpoint(const Module& module, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << SerializeCheckpoint(module);
  return static_cast<bool>(file);
}

bool SaveCheckpoint(const std::vector<NamedModule>& modules,
                    const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << SerializeCheckpoint(modules);
  return static_cast<bool>(file);
}

CheckpointResult LoadCheckpoint(Module& module, const std::string& path) {
  bool ok = false;
  std::string text = ReadFileOrEmpty(path, ok);
  if (!ok) {
    CheckpointResult result;
    result.error = "cannot open file: " + path;
    return result;
  }
  return DeserializeCheckpoint(module, text);
}

CheckpointResult LoadCheckpoint(const std::vector<NamedModule>& modules,
                                const std::string& path) {
  bool ok = false;
  std::string text = ReadFileOrEmpty(path, ok);
  if (!ok) {
    CheckpointResult result;
    result.error = "cannot open file: " + path;
    return result;
  }
  return DeserializeCheckpoint(modules, text);
}

}  // namespace nn
}  // namespace dar
