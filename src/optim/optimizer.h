// Optimizer interface.
#ifndef DAR_OPTIM_OPTIMIZER_H_
#define DAR_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace dar {
namespace optim {

/// Base class for first-order optimizers over a fixed parameter list.
///
/// Parameters are Variable handles shared with the owning modules; Step()
/// updates their values in place from the accumulated gradients.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the current gradients. Frozen parameters
  /// (requires_grad false) are skipped; a requires-grad parameter without
  /// an accumulated gradient is an error unless the concrete optimizer's
  /// config opts into skipping (see {Adam,Sgd}Config::allow_missing_grad).
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad() {
    for (ag::Variable& p : params_) p.ZeroGrad();
  }

  const std::vector<ag::Variable>& params() const { return params_; }

 protected:
  std::vector<ag::Variable> params_;
};

}  // namespace optim
}  // namespace dar

#endif  // DAR_OPTIM_OPTIMIZER_H_
