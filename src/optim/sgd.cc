#include "optim/sgd.h"

#include "tensor/check.h"

namespace dar {
namespace optim {

Sgd::Sgd(std::vector<ag::Variable> params, SgdConfig config)
    : Optimizer(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const ag::Variable& p : params_) velocity_.emplace_back(p.value().shape());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    if (!p.requires_grad()) continue;
    if (!p.has_grad()) {
      DAR_CHECK_MSG(config_.allow_missing_grad,
                    "Sgd::Step: a requires-grad parameter has no accumulated "
                    "gradient (broken graph or dropped data-parallel shard); "
                    "set SgdConfig::allow_missing_grad to opt out");
      continue;
    }
    const float* g = p.grad().data();
    float* w = p.mutable_value().data();
    float* vel = velocity_[i].data();
    int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      vel[j] = config_.momentum * vel[j] + g[j];
      w[j] -= config_.lr * vel[j];
    }
  }
}

}  // namespace optim
}  // namespace dar
