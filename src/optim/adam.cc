#include "optim/adam.h"

#include <cmath>

#include "tensor/check.h"

namespace dar {
namespace optim {

Adam::Adam(std::vector<ag::Variable> params, AdamConfig config)
    : Optimizer(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ag::Variable& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::Step() {
  ++t_;
  float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    if (!p.requires_grad()) continue;
    if (!p.has_grad()) {
      DAR_CHECK_MSG(config_.allow_missing_grad,
                    "Adam::Step: a requires-grad parameter has no accumulated "
                    "gradient (broken graph or dropped data-parallel shard); "
                    "set AdamConfig::allow_missing_grad to opt out");
      continue;
    }
    const float* g = p.grad().data();
    float* w = p.mutable_value().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      float gj = g[j] + config_.weight_decay * w[j];
      m[j] = config_.beta1 * m[j] + (1.0f - config_.beta1) * gj;
      v[j] = config_.beta2 * v[j] + (1.0f - config_.beta2) * gj * gj;
      float mhat = m[j] / bc1;
      float vhat = v[j] / bc2;
      w[j] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

}  // namespace optim
}  // namespace dar
