// Learning-rate schedules.
//
// Header-only: schedules are tiny value types that map a step index to a
// multiplier on the base learning rate; apply with `Apply(optimizer, step)`.
#ifndef DAR_OPTIM_SCHEDULE_H_
#define DAR_OPTIM_SCHEDULE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/check.h"

namespace dar {
namespace optim {

/// Constant multiplier (the default the paper uses: fixed Adam lr).
struct ConstantSchedule {
  float Multiplier(int64_t step) const {
    (void)step;
    return 1.0f;
  }
};

/// Linear warmup to 1.0 over `warmup_steps`, constant afterwards.
struct WarmupSchedule {
  int64_t warmup_steps = 100;

  float Multiplier(int64_t step) const {
    DAR_CHECK_GT(warmup_steps, 0);
    if (step >= warmup_steps) return 1.0f;
    return static_cast<float>(step + 1) / static_cast<float>(warmup_steps);
  }
};

/// Multiplies by `gamma` every `period` steps (classic step decay).
struct StepDecaySchedule {
  int64_t period = 1000;
  float gamma = 0.5f;

  float Multiplier(int64_t step) const {
    DAR_CHECK_GT(period, 0);
    return std::pow(gamma, static_cast<float>(step / period));
  }
};

/// Cosine decay from 1.0 to `floor` over `total_steps` (then stays at
/// `floor`).
struct CosineSchedule {
  int64_t total_steps = 1000;
  float floor = 0.0f;

  float Multiplier(int64_t step) const {
    DAR_CHECK_GT(total_steps, 0);
    if (step >= total_steps) return floor;
    float progress = static_cast<float>(step) / static_cast<float>(total_steps);
    float cosine = 0.5f * (1.0f + std::cos(3.14159265358979323846f * progress));
    return floor + (1.0f - floor) * cosine;
  }
};

/// Sets `optimizer`'s learning rate to base_lr * schedule(step).
/// Optimizer must expose set_lr (Adam and Sgd both do).
template <typename Optimizer, typename Schedule>
void ApplySchedule(Optimizer& optimizer, const Schedule& schedule,
                   float base_lr, int64_t step) {
  optimizer.set_lr(base_lr * schedule.Multiplier(step));
}

}  // namespace optim
}  // namespace dar

#endif  // DAR_OPTIM_SCHEDULE_H_
