#include "optim/clip.h"

#include <cmath>

#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace optim {

float ClipGradNorm(const std::vector<ag::Variable>& params, float max_norm) {
  DAR_CHECK_GT(max_norm, 0.0f);
  double total = 0.0;
  for (const ag::Variable& p : params) {
    if (!p.has_grad()) continue;
    float n = Norm2(p.grad());
    total += static_cast<double>(n) * n;
  }
  float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    float scale = max_norm / (norm + 1e-8f);
    for (const ag::Variable& p : params) {
      if (!p.has_grad()) continue;
      // grad() is const; scale through the node's mutable tensor.
      ScaleInPlace(const_cast<Tensor&>(p.grad()), scale);
    }
  }
  return norm;
}

}  // namespace optim
}  // namespace dar
