// Plain SGD with optional momentum (used by tests and the ablations).
#ifndef DAR_OPTIM_SGD_H_
#define DAR_OPTIM_SGD_H_

#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace dar {
namespace optim {

/// SGD configuration.
struct SgdConfig {
  float lr = 1e-2f;
  float momentum = 0.0f;
  /// Same contract as AdamConfig::allow_missing_grad: by default Step()
  /// aborts on a requires-grad parameter with no accumulated gradient
  /// rather than silently skipping it.
  bool allow_missing_grad = false;
};

/// Stochastic gradient descent: w -= lr * (momentum-buffered) grad.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Variable> params, SgdConfig config = {});

  void Step() override;

  float lr() const { return config_.lr; }
  void set_lr(float lr) { config_.lr = lr; }

 private:
  SgdConfig config_;
  std::vector<Tensor> velocity_;
};

}  // namespace optim
}  // namespace dar

#endif  // DAR_OPTIM_SGD_H_
