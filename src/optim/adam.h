// Adam optimizer (Kingma & Ba, 2015) — the paper's optimizer.
#ifndef DAR_OPTIM_ADAM_H_
#define DAR_OPTIM_ADAM_H_

#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace dar {
namespace optim {

/// Adam hyper-parameters. Defaults match the common (and the paper's)
/// settings apart from the learning rate, which experiments override.
struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  /// When false (default), Step() aborts if any requires-grad parameter has
  /// no accumulated gradient: in this codebase every trainable parameter
  /// participates in every training loss, so a missing gradient means a
  /// broken graph or a dropped data-parallel shard — silently no-opping
  /// would train on a fraction of the data and converge to wrong answers.
  /// Set true only for optimizers over a parameter set that is legitimately
  /// partially active per step.
  bool allow_missing_grad = false;
};

/// Adam with optional decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Variable> params, AdamConfig config = {});

  void Step() override;

  /// Current learning rate (mutable for schedules).
  float lr() const { return config_.lr; }
  void set_lr(float lr) { config_.lr = lr; }

 private:
  AdamConfig config_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace optim
}  // namespace dar

#endif  // DAR_OPTIM_ADAM_H_
