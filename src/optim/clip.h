// Gradient clipping.
#ifndef DAR_OPTIM_CLIP_H_
#define DAR_OPTIM_CLIP_H_

#include <vector>

#include "autograd/variable.h"

namespace dar {
namespace optim {

/// Scales all gradients so that their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. Parameters without gradients are skipped.
float ClipGradNorm(const std::vector<ag::Variable>& params, float max_norm);

}  // namespace optim
}  // namespace dar

#endif  // DAR_OPTIM_CLIP_H_
