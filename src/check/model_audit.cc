#include "check/model_audit.h"

#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "autograd/ops.h"
#include "core/rationalizer.h"
#include "data/dataloader.h"
#include "datasets/beer.h"
#include "eval/experiment.h"
#include "sync/mutex.h"
#include "tensor/check.h"

namespace dar {
namespace check {

namespace {

/// Restores the previous sentinel mode on scope exit and isolates the
/// finding stream (drains before and after).
class ScopedRecordingSentinel {
 public:
  ScopedRecordingSentinel() : previous_(GetSentinelMode()) {
    DrainSentinelFindings();
    SetSentinelMode(SentinelMode::kRecord);
  }
  ~ScopedRecordingSentinel() { SetSentinelMode(previous_); }
  ScopedRecordingSentinel(const ScopedRecordingSentinel&) = delete;
  ScopedRecordingSentinel& operator=(const ScopedRecordingSentinel&) = delete;

 private:
  SentinelMode previous_;
};

const datasets::SyntheticDataset& TinyDataset() {
  static const datasets::SyntheticDataset& ds = *new datasets::SyntheticDataset(
      datasets::MakeBeerDataset(datasets::BeerAspect::kAroma,
                                {.train = 64, .dev = 16, .test = 16},
                                /*seed=*/11));
  return ds;
}

core::TrainConfig TinyConfig() {
  core::TrainConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 6;
  config.batch_size = 8;
  config.epochs = 1;
  config.pretrain_epochs = 1;
  config.dropout = 0.0f;
  return config;
}

data::Batch FirstBatch() {
  data::DataLoader loader(TinyDataset().train, 8, /*shuffle=*/false);
  return loader.Sequential()[0];
}

/// The optimizer's parameter list with names resolved against the
/// checkpoint modules — now a RationalizerBase method (Fit()'s
/// audit_first_step pass shares it); kept as a local alias for the call
/// sites below.
std::vector<nn::NamedParameter> NamedTrainableParameters(
    core::RationalizerBase& model) {
  return model.NamedTrainableParameters();
}

/// Clears gradients and visit counters on every checkpoint-module
/// parameter (Prepare()'s pretraining leaves both behind).
void ZeroAllGradients(core::RationalizerBase& model) {
  for (const nn::NamedModule& m : model.CheckpointModules()) {
    if (m.module != nullptr) m.module->ZeroGrad();
  }
  for (ag::Variable v : model.TrainableParameters()) {
    v.ZeroGrad();
  }
}

}  // namespace

std::vector<std::string> AuditableMethods() {
  return {"RNP", "DAR", "DAR-cotrained", "DMR",     "A2R",  "Inter_RAT",
          "CAR", "3PLAYER", "VIB",       "SPECTRA", "RNP*", "A2R*"};
}

MethodAuditResult AuditMethodByName(const std::string& method, uint64_t seed) {
  MethodAuditResult result;
  result.method = method;

  core::TrainConfig config = TinyConfig();
  config.seed = seed;
  auto model = eval::MakeMethod(method, TinyDataset(), config);
  model->Prepare(TinyDataset());
  model->SetTraining(true);
  ZeroAllGradients(*model);

  // The audit list is exactly what Fit() hands the optimizer.
  const std::vector<nn::NamedParameter> params =
      NamedTrainableParameters(*model);

  ScopedRecordingSentinel sentinel;
  ag::Variable loss = model->TrainLoss(FirstBatch());
  loss.Backward();
  result.sentinel_findings = DrainSentinelFindings();

  result.report = AuditGraph(loss, params);
  result.ok = result.report.clean() && result.sentinel_findings.empty();
  return result;
}

std::vector<SelfTestResult> RunMutationSelfTest() {
  std::vector<SelfTestResult> results;

  // Defect 1: a parameter detached from the loss (Detach() upstream). The
  // audit must flag w2 as an orphan while w1 stays clean.
  {
    SelfTestResult r{"detached_param", false, ""};
    Pcg32 rng(41);
    ag::Variable w1 = ag::Variable::Param(Tensor::Randn({3}, rng));
    ag::Variable w2 = ag::Variable::Param(Tensor::Randn({3}, rng));
    ag::Variable loss =
        ag::Sum(ag::Add(ag::Mul(w1, w1), ag::Mul(w2.Detach(), w2.Detach())));
    loss.Backward();
    AuditReport report = AuditGraph(loss, {{"w1", w1}, {"w2", w2}});
    r.detected = report.count(IssueKind::kOrphanParam) == 1 &&
                 report.count(IssueKind::kMissingGrad) == 0;
    r.detail = report.clean() ? "audit came back clean" : report.ToString();
    results.push_back(std::move(r));
  }

  // Defect 2: the generator frozen while the optimizer still holds its
  // parameters — the frozen-predictor-leaks bug class from the paper's
  // training-collapse failure mode, seeded on a real RNP model.
  {
    SelfTestResult r{"frozen_generator_params", false, ""};
    auto model = eval::MakeMethod("RNP", TinyDataset(), TinyConfig());
    model->Prepare(TinyDataset());
    model->SetTraining(true);
    ZeroAllGradients(*model);
    const std::vector<nn::NamedParameter> optimizer_list =
        NamedTrainableParameters(*model);
    model->generator().SetRequiresGrad(false);  // the seeded defect
    ag::Variable loss = model->TrainLoss(FirstBatch());
    loss.Backward();
    AuditReport report = AuditGraph(loss, optimizer_list);
    // Count the generator parameters the optimizer actually holds (the
    // embedding table is frozen by design and never enters the list).
    std::unordered_set<const ag::Node*> generator_nodes;
    for (const nn::NamedParameter& p : model->generator().Parameters()) {
      generator_nodes.insert(p.variable.node().get());
    }
    int64_t frozen_in_list = 0;
    for (const nn::NamedParameter& p : optimizer_list) {
      if (generator_nodes.count(p.variable.node().get())) ++frozen_in_list;
    }
    r.detected = frozen_in_list > 0 &&
                 report.count(IssueKind::kOrphanParam) >= frozen_in_list;
    r.detail = report.clean() ? "audit came back clean" : report.ToString();
    results.push_back(std::move(r));
  }

  // Defect 3: a NaN injected into a generator weight — the sentinels must
  // attribute non-finite values to a named op during the forward pass.
  {
    SelfTestResult r{"nan_injected_logit", false, ""};
    auto model = eval::MakeMethod("RNP", TinyDataset(), TinyConfig());
    model->Prepare(TinyDataset());
    model->SetTraining(true);
    ZeroAllGradients(*model);
    std::vector<nn::NamedParameter> generator_params =
        model->generator().Parameters();
    DAR_CHECK(!generator_params.empty());
    generator_params[0].variable.mutable_value().flat(0) =
        std::numeric_limits<float>::quiet_NaN();  // the seeded defect
    ScopedRecordingSentinel sentinel;
    ag::Variable loss = model->TrainLoss(FirstBatch());
    const std::vector<SentinelFinding> findings = DrainSentinelFindings();
    r.detected = !findings.empty();
    if (!findings.empty()) {
      r.detail = findings.front().ToString();
    } else {
      r.detail = "sentinel recorded nothing";
    }
    results.push_back(std::move(r));
  }

  // Defect 4: a corrupted gradient buffer (shape disagrees with the
  // value) planted directly on the tape.
  {
    SelfTestResult r{"corrupt_grad_shape", false, ""};
    Pcg32 rng(43);
    ag::Variable w = ag::Variable::Param(Tensor::Randn({4}, rng));
    ag::Variable loss = ag::Sum(ag::Mul(w, w));
    loss.Backward();
    w.node()->grad = Tensor(Shape{2, 2});  // the seeded defect
    AuditReport report = AuditGraph(loss, {{"w", w}});
    r.detected = report.count(IssueKind::kShapeMismatch) >= 1;
    r.detail = report.clean() ? "audit came back clean" : report.ToString();
    results.push_back(std::move(r));
  }

  // Defect 5: Backward() twice without ZeroGrad — gradients silently
  // doubled; the visit counter must exceed the graph's fan-in.
  {
    SelfTestResult r{"double_backward_no_zerograd", false, ""};
    Pcg32 rng(44);
    ag::Variable w = ag::Variable::Param(Tensor::Randn({4}, rng));
    ag::Variable loss = ag::Sum(ag::Mul(w, w));
    loss.Backward();
    loss.Backward();  // the seeded defect
    AuditReport report = AuditGraph(loss, {{"w", w}});
    r.detected = report.count(IssueKind::kDoubleAccumulation) >= 1;
    r.detail = report.clean() ? "audit came back clean" : report.ToString();
    results.push_back(std::move(r));
  }

  // Defect 6: a kernel reading a scratch buffer it never wrote. Poison
  // mode turns the silent zero into a NaN the op sentinel attributes.
  {
    SelfTestResult r{"unwritten_scratch_read", false, ""};
    ScopedRecordingSentinel sentinel;
    SetPoisonScratch(true);
    Tensor leaked = Tensor::Scratch(Shape{2, 2});  // never written — defect
    SetPoisonScratch(false);
    ag::Variable x = ag::Variable::Param(std::move(leaked));
    ag::Variable y = ag::MulScalar(x, 2.0f);
    (void)y;
    const std::vector<SentinelFinding> findings = DrainSentinelFindings();
    r.detected = !findings.empty();
    r.detail = findings.empty() ? "sentinel recorded nothing"
                                : findings.front().ToString();
    results.push_back(std::move(r));
  }

  // Defect 7: lock acquisition against the documented rank order. A
  // kStats mutex is held while a kRegistry mutex is acquired — the
  // inversion the runtime checker exists to catch. Record mode lets the
  // acquisition proceed and files a finding instead of aborting.
  {
    SelfTestResult r{"lock_rank_inversion", false, ""};
    ScopedRecordingSentinel sentinel;
    InstallLockRankHandler();
    const bool was_checking = sync::LockRankCheckEnabled();
    sync::SetLockRankCheck(true);
    {
      sync::Mutex high(sync::Rank::kStats, "selftest.high");
      sync::Mutex low(sync::Rank::kRegistry, "selftest.low");
      sync::MutexLock hold_high(high);
      sync::MutexLock hold_low(low);  // the seeded defect: rank decreases
    }
    sync::SetLockRankCheck(was_checking);
    sync::SetRankViolationHandler(nullptr);  // back to the abort default
    bool found = false;
    std::string detail;
    for (const SentinelFinding& finding : DrainSentinelFindings()) {
      if (finding.op == "lockrank") {
        found = true;
        detail = finding.ToString();
      }
    }
    r.detected = found;
    r.detail = found ? detail : "no lockrank finding recorded";
    results.push_back(std::move(r));
  }

  return results;
}

}  // namespace check
}  // namespace dar
