// Autograd graph auditor.
//
// AuditGraph walks the recorded tape reachable from a loss Variable and
// cross-checks it against the parameters the caller is about to optimize,
// turning the classic silent gradient-flow pathologies of rationalization
// training into structured, machine-readable findings:
//
//   kOrphanParam         — a parameter passed as trainable that can never
//                          receive a gradient from this loss: either it is
//                          not reachable through differentiable edges (the
//                          frozen-predictor-leaks-into-generator bug class,
//                          e.g. a Detach() upstream), or its requires_grad
//                          flag was turned off while the optimizer still
//                          holds it.
//   kMissingGrad         — a reachable trainable parameter with no
//                          accumulated gradient although the audit expects
//                          Backward() to have run.
//   kStaleGrad           — a parameter carrying a gradient the current
//                          graph cannot have produced (unreachable but
//                          has_grad): a forgotten ZeroGrad between steps.
//   kDoubleAccumulation  — a parameter whose AccumulateGrad count exceeds
//                          the graph's fan-in: Backward() ran twice without
//                          an intervening ZeroGrad, silently doubling the
//                          gradient.
//   kShapeMismatch       — a node whose gradient buffer disagrees with its
//                          value's shape (corrupted tape).
//   kNonFinite           — NaN/Inf in a node's value or gradient, reported
//                          with the producing op's name and tensor stats.
//
// The audit also attributes gradient mass per op kind (per-op L2 norms of
// the gradients flowing through the tape) so a vanishing or exploding path
// — e.g. the Gumbel-softmax chain of the alignment loss — is visible as
// data rather than folklore. Findings are a report, not asserts: callers
// decide whether to log, export to obs metrics, or fail CI (dar_check).
#ifndef DAR_CHECK_GRAPH_AUDIT_H_
#define DAR_CHECK_GRAPH_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "nn/module.h"
#include "obs/metrics.h"

namespace dar {
namespace check {

enum class IssueKind {
  kOrphanParam,
  kMissingGrad,
  kStaleGrad,
  kDoubleAccumulation,
  kShapeMismatch,
  kNonFinite,
};

const char* IssueKindName(IssueKind kind);

struct AuditIssue {
  IssueKind kind;
  /// Parameter name or op name the issue anchors to.
  std::string where;
  /// Human-readable specifics (shapes, counts, stats).
  std::string detail;

  std::string ToString() const;
};

/// Gradient-mass attribution for one op kind across the audited tape.
struct OpGradStat {
  std::string op;
  /// Nodes of this op kind reachable from the root.
  int64_t nodes = 0;
  /// Nodes of this kind that carry a gradient.
  int64_t grad_nodes = 0;
  /// L2 norm over all gradient elements of those nodes.
  double grad_norm = 0.0;
};

struct AuditOptions {
  /// When true (the default), the audit assumes Backward() has run on the
  /// root and reports kMissingGrad for reachable trainable parameters
  /// without gradients. Set false to audit a forward-only graph.
  bool expect_gradients = true;
  /// Issues stored per kind before further ones are only counted.
  int64_t max_issues_per_kind = 16;
};

struct AuditReport {
  std::vector<AuditIssue> issues;
  /// Issues observed per kind, including ones past max_issues_per_kind.
  int64_t issue_counts[6] = {0, 0, 0, 0, 0, 0};
  std::vector<OpGradStat> per_op;

  /// Tape summary. params_frozen counts audited parameters whose
  /// requires_grad flag is off — each of those is also a kOrphanParam
  /// finding, because the audit list is by contract the set the optimizer
  /// steps (see AuditGraph below).
  int64_t nodes_visited = 0;
  int64_t params_audited = 0;
  int64_t params_reachable = 0;
  int64_t params_frozen = 0;

  bool clean() const { return issues.empty(); }
  int64_t count(IssueKind kind) const {
    return issue_counts[static_cast<int>(kind)];
  }

  /// Multi-line human-readable rendering (findings first, then the per-op
  /// gradient attribution table).
  std::string ToString() const;

  /// Publishes finding counts (`<prefix>.findings.<kind>` counters) and
  /// per-op gradient norms (`<prefix>.grad_norm.<op>` gauges) into `reg`.
  void PublishMetrics(obs::MetricsRegistry& reg,
                      const std::string& prefix = "check") const;
};

/// Audits the tape reachable from `root` against `params` — by contract
/// the parameters the optimizer is about to step (what Fit() hands to
/// Adam). Do NOT include intentionally frozen modules (DAR's pretrained
/// discriminator): a listed parameter that cannot receive gradients —
/// detached upstream, or requires_grad turned off while the optimizer
/// still holds it — is exactly the kOrphanParam defect. Call after
/// Backward() for the full report (see AuditOptions).
AuditReport AuditGraph(const ag::Variable& root,
                       const std::vector<nn::NamedParameter>& params,
                       const AuditOptions& options = {});

}  // namespace check
}  // namespace dar

#endif  // DAR_CHECK_GRAPH_AUDIT_H_
