// Numerical-safety sentinels: mode-gated NaN/Inf traps at op granularity.
//
// The sentinel layer is the runtime half of src/check/: a process-wide
// debug mode that (a) scans every autograd op's forward output and every
// gradient flowing through Backward() for non-finite values, reporting the
// op name and summary statistics of the offending tensor, (b) optionally
// poisons scratch buffers (Tensor::Scratch) with NaN so kernels that fail
// to overwrite every element trip the trap downstream instead of silently
// reading zeros, and (c) mechanically enforces the tape-ownership half of
// the autograd thread-safety contract (autograd/variable.h): two threads
// running Backward() over graphs that share nodes, or racing
// Variable::AccumulateGrad into the same leaf, are detected instead of
// silently corrupting gradients.
//
// Cost model (the serve_throughput bench guards this at <= 2%):
//
//   kOff    — the shipping default. Every hook is a single relaxed atomic
//             load and a predictable branch; no scan, no allocation.
//   kRecord — findings are appended to a process-wide list (and counted in
//             obs metrics) and execution continues. dar_check and the test
//             suite run in this mode so one pass reports every defect.
//   kTrap   — first finding aborts with a DAR_CHECK-style diagnostic.
//             For debugging sessions where a stack trace at the first bad
//             op is worth more than a complete report.
//
// This header sits below tensor/ in the dependency order (it sees raw
// float spans, never Tensor), so the tensor library itself can consult
// PoisonEnabled() without a cycle.
#ifndef DAR_CHECK_SENTINEL_H_
#define DAR_CHECK_SENTINEL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dar {
namespace check {

enum class SentinelMode : int { kOff = 0, kRecord = 1, kTrap = 2 };

void SetSentinelMode(SentinelMode mode);
SentinelMode GetSentinelMode();

/// Enables NaN-poisoning of Tensor::Scratch buffers. Independent of the
/// sentinel mode so poisoning can be combined with either report style;
/// poison without a sentinel mode still crashes loudly in kernels that
/// DAR_CHECK their outputs, it just loses the op-name attribution.
void SetPoisonScratch(bool enabled);

namespace internal {
extern std::atomic<int> g_sentinel_mode;
extern std::atomic<bool> g_poison_scratch;
}  // namespace internal

/// True when any sentinel mode is active. The fast path everything hot
/// gates on: one relaxed load, no fence.
inline bool SentinelEnabled() {
  return internal::g_sentinel_mode.load(std::memory_order_relaxed) !=
         static_cast<int>(SentinelMode::kOff);
}

/// True when Tensor::Scratch should poison its buffer.
inline bool PoisonEnabled() {
  return internal::g_poison_scratch.load(std::memory_order_relaxed);
}

/// Summary statistics of a scanned buffer, reported with every finding.
struct TensorStats {
  int64_t numel = 0;
  int64_t nan_count = 0;
  int64_t inf_count = 0;
  /// Min/max/mean over the finite elements only (0 when none are finite).
  float finite_min = 0.0f;
  float finite_max = 0.0f;
  float finite_mean = 0.0f;

  bool all_finite() const { return nan_count == 0 && inf_count == 0; }
  std::string ToString() const;
};

/// Single pass over `data`; O(n), no allocation.
TensorStats ComputeStats(const float* data, int64_t n);

/// One sentinel detection: which op, which tensor of that op ("value",
/// "grad", ...), and what the buffer looked like.
struct SentinelFinding {
  std::string op;
  std::string where;
  TensorStats stats;
  std::string ToString() const;
};

/// Scans `data` and, if any element is NaN/Inf, reports a finding
/// attributed to `op`/`where`: kRecord appends it (and increments the
/// `check.sentinel.nonfinite` counter on the global obs registry), kTrap
/// aborts with the rendered finding. Returns true when the buffer is
/// clean. Callers gate on SentinelEnabled() so the scan never runs in
/// kOff.
bool ScanForNonFinite(const char* op, const char* where, const float* data,
                      int64_t n);

/// Takes (and clears) the findings recorded since the last drain.
/// Thread-safe.
std::vector<SentinelFinding> DrainSentinelFindings();

/// Number of findings currently recorded (not yet drained).
size_t SentinelFindingCount();

// ---- Tape-ownership assertions ---------------------------------------------
//
// The autograd contract: concurrent Backward() calls must not share graph
// nodes, and concurrent AccumulateGrad calls must not target the same
// leaf. When the sentinel is on, Backward() claims every node it is about
// to visit with ClaimTapeNode and releases it afterwards; a claim that
// finds a foreign owner is a contract violation. Tokens are per-thread,
// nonzero, and stable for the thread's lifetime.

/// This thread's nonzero ownership token.
uint32_t TapeOwnerToken();

/// Reports a tape-ownership violation on `what` (kRecord: recorded as a
/// finding with op = "tape", kTrap: aborts).
void ReportTapeViolation(const char* what);

// ---- Lock-rank violations --------------------------------------------------
//
// The sync layer's lock-rank checker (sync/mutex.h) detects
// acquisition-order inversions; this hook routes them through the same
// machinery as every other sentinel: an obs counter, a recorded finding
// with op = "lockrank" in kRecord mode (how dar_check --self-test proves
// the detector works), and otherwise the trap path that dumps the flight
// recorder before aborting — a deadlock-in-waiting names the requests in
// flight when the order went wrong.

/// Installs the sentinel-backed sync::RankViolationHandler (idempotent).
/// Does NOT enable checking — call sync::SetLockRankCheck(true) too.
void InstallLockRankHandler();

}  // namespace check
}  // namespace dar

#endif  // DAR_CHECK_SENTINEL_H_
