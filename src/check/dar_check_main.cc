// dar_check: static correctness gate over the model zoo.
//
// Default mode audits every architecture MakeMethod can build (RNP, DAR,
// the baselines, sentence-level protocols) on a tiny synthetic config: one
// TrainLoss forward/backward per method under the recording sentinel,
// followed by a GraphAudit of the tape against the optimizer's parameter
// list. Any finding — an orphaned parameter, a NaN at op granularity, a
// corrupted gradient buffer — fails the run with exit code 1, which makes
// this binary a CI gate: gradient-flow defects become build failures
// instead of silently-wrong Table 2 numbers.
//
//   dar_check                 audit the whole zoo
//   dar_check --method=DAR    audit one architecture (repeatable)
//   dar_check --self-test     mutation self-test: seed one defect of every
//                             class the auditor claims to catch and verify
//                             each is detected (exit 2 when one slips by)
//   dar_check --list          print the auditable architectures
//   dar_check --verbose       print full per-method reports even when clean
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/model_audit.h"

namespace {

int RunSelfTest() {
  const std::vector<dar::check::SelfTestResult> results =
      dar::check::RunMutationSelfTest();
  int missed = 0;
  std::printf("dar_check mutation self-test (%zu seeded defects):\n",
              results.size());
  for (const dar::check::SelfTestResult& r : results) {
    std::printf("  %-28s %s\n", r.defect.c_str(),
                r.detected ? "DETECTED" : "MISSED");
    if (!r.detected) {
      ++missed;
      std::printf("    %s\n", r.detail.c_str());
    }
  }
  if (missed > 0) {
    std::printf("self-test FAILED: %d defect class(es) not detected\n",
                missed);
    return 2;
  }
  std::printf("self-test OK: every seeded defect class was detected\n");
  return 0;
}

int RunAudits(const std::vector<std::string>& methods, bool verbose) {
  int dirty = 0;
  for (const std::string& method : methods) {
    const dar::check::MethodAuditResult result =
        dar::check::AuditMethodByName(method);
    std::printf("%-14s %s  (%lld nodes, %lld params)\n", method.c_str(),
                result.ok ? "CLEAN" : "FINDINGS",
                static_cast<long long>(result.report.nodes_visited),
                static_cast<long long>(result.report.params_audited));
    if (!result.ok || verbose) {
      std::printf("%s", result.report.ToString().c_str());
      for (const dar::check::SentinelFinding& f : result.sentinel_findings) {
        std::printf("  [sentinel] %s\n", f.ToString().c_str());
      }
    }
    if (!result.ok) ++dirty;
  }
  if (dirty > 0) {
    std::printf("dar_check FAILED: %d architecture(s) with findings\n", dirty);
    return 1;
  }
  std::printf("dar_check OK: %zu architecture(s) clean\n", methods.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  bool verbose = false;
  std::vector<std::string> methods;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list") {
      for (const std::string& m : dar::check::AuditableMethods()) {
        std::printf("%s\n", m.c_str());
      }
      return 0;
    } else if (arg.rfind("--method=", 0) == 0) {
      methods.push_back(arg.substr(std::strlen("--method=")));
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\nusage: dar_check [--self-test] "
                   "[--method=NAME]... [--list] [--verbose]\n",
                   arg.c_str());
      return 64;
    }
  }
  if (self_test) return RunSelfTest();
  if (methods.empty()) methods = dar::check::AuditableMethods();
  return RunAudits(methods, verbose);
}
