#include "check/graph_audit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/sentinel.h"
#include "tensor/check.h"

namespace dar {
namespace check {

namespace {

/// Full-graph traversal from the root (through every parent edge,
/// regardless of requires_grad): the set of nodes that exist on the tape.
std::vector<ag::Node*> CollectAllNodes(const std::shared_ptr<ag::Node>& root) {
  std::vector<ag::Node*> nodes;
  std::unordered_set<ag::Node*> visited;
  std::vector<ag::Node*> stack{root.get()};
  visited.insert(root.get());
  while (!stack.empty()) {
    ag::Node* n = stack.back();
    stack.pop_back();
    nodes.push_back(n);
    for (const auto& p : n->parents) {
      if (p && !visited.count(p.get())) {
        visited.insert(p.get());
        stack.push_back(p.get());
      }
    }
  }
  return nodes;
}

/// Differentiable-subgraph traversal mirroring Backward()'s TopoSort: the
/// nodes gradients actually flow through. For each node, counts the parent
/// edges a single backward pass pushes a gradient across (`fan_in`), which
/// is the expected AccumulateGrad count — plus one on the root for the
/// seed.
void CollectGradReachable(const std::shared_ptr<ag::Node>& root,
                          std::unordered_set<ag::Node*>& reachable,
                          std::unordered_map<ag::Node*, int64_t>& fan_in) {
  if (!root->requires_grad) return;
  std::vector<ag::Node*> stack{root.get()};
  reachable.insert(root.get());
  fan_in[root.get()] += 1;  // Backward()'s seed accumulation.
  while (!stack.empty()) {
    ag::Node* n = stack.back();
    stack.pop_back();
    if (!n->backward) continue;
    for (const auto& p : n->parents) {
      if (!p || !p->requires_grad) continue;
      // Closures push one gradient per differentiable parent slot
      // (Mul(x, x) pushes twice into x).
      fan_in[p.get()] += 1;
      if (!reachable.count(p.get())) {
        reachable.insert(p.get());
        stack.push_back(p.get());
      }
    }
  }
}

double SumSquares(const Tensor& t) {
  double acc = 0.0;
  const float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    acc += static_cast<double>(p[i]) * static_cast<double>(p[i]);
  }
  return acc;
}

}  // namespace

const char* IssueKindName(IssueKind kind) {
  switch (kind) {
    case IssueKind::kOrphanParam:
      return "orphan_param";
    case IssueKind::kMissingGrad:
      return "missing_grad";
    case IssueKind::kStaleGrad:
      return "stale_grad";
    case IssueKind::kDoubleAccumulation:
      return "double_accumulation";
    case IssueKind::kShapeMismatch:
      return "shape_mismatch";
    case IssueKind::kNonFinite:
      return "non_finite";
  }
  return "unknown";
}

std::string AuditIssue::ToString() const {
  std::string out = "[";
  out += IssueKindName(kind);
  out += "] ";
  out += where;
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

std::string AuditReport::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "GraphAudit: %lld nodes, %lld params (%lld reachable, %lld "
                "frozen), %s\n",
                static_cast<long long>(nodes_visited),
                static_cast<long long>(params_audited),
                static_cast<long long>(params_reachable),
                static_cast<long long>(params_frozen),
                clean() ? "CLEAN" : "FINDINGS:");
  out += buf;
  for (const AuditIssue& issue : issues) {
    out += "  " + issue.ToString() + "\n";
  }
  int64_t total = 0;
  for (int64_t c : issue_counts) total += c;
  if (total > static_cast<int64_t>(issues.size())) {
    std::snprintf(buf, sizeof(buf), "  ... and %lld more finding(s)\n",
                  static_cast<long long>(total -
                                         static_cast<int64_t>(issues.size())));
    out += buf;
  }
  if (!per_op.empty()) {
    out += "  per-op gradient attribution (L2 of grads through each op):\n";
    for (const OpGradStat& s : per_op) {
      std::snprintf(buf, sizeof(buf),
                    "    %-22s nodes=%-5lld grad_nodes=%-5lld |g|=%.4g\n",
                    s.op.c_str(), static_cast<long long>(s.nodes),
                    static_cast<long long>(s.grad_nodes), s.grad_norm);
      out += buf;
    }
  }
  return out;
}

void AuditReport::PublishMetrics(obs::MetricsRegistry& reg,
                                 const std::string& prefix) const {
  for (int k = 0; k < 6; ++k) {
    if (issue_counts[k] > 0) {
      reg.GetCounter(prefix + ".findings." +
                     IssueKindName(static_cast<IssueKind>(k)))
          .Increment(issue_counts[k]);
    }
  }
  reg.GetGauge(prefix + ".nodes").Set(static_cast<double>(nodes_visited));
  reg.GetGauge(prefix + ".params").Set(static_cast<double>(params_audited));
  for (const OpGradStat& s : per_op) {
    reg.GetGauge(prefix + ".grad_norm." + s.op).Set(s.grad_norm);
  }
}

AuditReport AuditGraph(const ag::Variable& root,
                       const std::vector<nn::NamedParameter>& params,
                       const AuditOptions& options) {
  DAR_CHECK_MSG(root.defined(), "AuditGraph on a null Variable");
  AuditReport report;

  auto add_issue = [&](IssueKind kind, std::string where, std::string detail) {
    int64_t& count = report.issue_counts[static_cast<int>(kind)];
    ++count;
    if (count <= options.max_issues_per_kind) {
      report.issues.push_back(
          {kind, std::move(where), std::move(detail)});
    }
  };

  const std::vector<ag::Node*> all_nodes = CollectAllNodes(root.node());
  report.nodes_visited = static_cast<int64_t>(all_nodes.size());

  std::unordered_set<ag::Node*> grad_reachable;
  std::unordered_map<ag::Node*, int64_t> fan_in;
  CollectGradReachable(root.node(), grad_reachable, fan_in);

  // ---- Per-node tape checks and per-op attribution -------------------------
  std::map<std::string, OpGradStat> per_op;
  for (ag::Node* n : all_nodes) {
    OpGradStat& stat = per_op[n->op];
    stat.op = n->op;
    ++stat.nodes;

    const TensorStats value_stats =
        ComputeStats(n->value.data(), n->value.numel());
    if (!value_stats.all_finite()) {
      add_issue(IssueKind::kNonFinite, n->op,
                "value: " + value_stats.ToString());
    }
    if (n->grad.numel() > 0) {
      if (n->grad.shape() != n->value.shape()) {
        add_issue(IssueKind::kShapeMismatch, n->op,
                  "grad shape " + ShapeToString(n->grad.shape()) +
                      " vs value shape " + ShapeToString(n->value.shape()));
      } else {
        const TensorStats grad_stats =
            ComputeStats(n->grad.data(), n->grad.numel());
        if (!grad_stats.all_finite()) {
          add_issue(IssueKind::kNonFinite, n->op,
                    "grad: " + grad_stats.ToString());
        }
        ++stat.grad_nodes;
        stat.grad_norm += SumSquares(n->grad);
      }
    }
  }
  for (auto& [op, stat] : per_op) {
    stat.grad_norm = std::sqrt(stat.grad_norm);
    report.per_op.push_back(stat);
  }

  // Did any gradient land anywhere? Distinguishes "backward never ran"
  // from per-parameter findings when expect_gradients is set.
  bool any_grad = false;
  for (ag::Node* n : all_nodes) {
    if (n->grad.numel() > 0) {
      any_grad = true;
      break;
    }
  }

  // ---- Per-parameter checks ------------------------------------------------
  std::unordered_set<ag::Node*> seen_params;
  report.params_audited = static_cast<int64_t>(params.size());
  for (const nn::NamedParameter& p : params) {
    if (!p.variable.defined()) {
      add_issue(IssueKind::kOrphanParam, p.name, "null Variable handle");
      continue;
    }
    ag::Node* node = p.variable.node().get();
    if (!seen_params.insert(node).second) continue;  // aliased handle
    const bool reachable = grad_reachable.count(node) > 0;
    const bool frozen = !node->requires_grad;
    if (reachable) ++report.params_reachable;
    if (frozen) ++report.params_frozen;

    if (frozen) {
      add_issue(IssueKind::kOrphanParam, p.name,
                "requires_grad is off but the parameter is in the optimizer "
                "list — it will silently never train");
      continue;
    }
    if (!reachable) {
      add_issue(IssueKind::kOrphanParam, p.name,
                "not reachable from the loss through differentiable edges "
                "(detached upstream?)");
      if (p.variable.has_grad()) {
        add_issue(IssueKind::kStaleGrad, p.name,
                  "carries a gradient this graph cannot have produced "
                  "(missing ZeroGrad?)");
      }
      continue;
    }
    if (options.expect_gradients && any_grad && !p.variable.has_grad()) {
      add_issue(IssueKind::kMissingGrad, p.name,
                "reachable from the loss but no gradient accumulated");
      continue;
    }
    // Fan-in bound: a single backward accumulates exactly `fan_in` times
    // into this leaf. More visits than that means a second Backward()
    // without ZeroGrad (gradients silently doubled).
    const int64_t expected = fan_in[node];
    if (any_grad && node->grad_visits > expected) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%lld AccumulateGrad visit(s), graph fan-in is %lld — "
                    "Backward() without intervening ZeroGrad?",
                    static_cast<long long>(node->grad_visits),
                    static_cast<long long>(expected));
      add_issue(IssueKind::kDoubleAccumulation, p.name, buf);
    }
  }

  return report;
}

}  // namespace check
}  // namespace dar
