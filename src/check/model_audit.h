// Model-zoo auditing: runs GraphAudit + the numerical sentinels over every
// architecture in the repository on a tiny synthetic config, and a mutation
// self-test that proves the auditor catches seeded defects. This is the
// engine behind the `dar_check` CLI (a static correctness gate for CI) and
// tests/check_test.cc.
#ifndef DAR_CHECK_MODEL_AUDIT_H_
#define DAR_CHECK_MODEL_AUDIT_H_

#include <string>
#include <vector>

#include "check/graph_audit.h"
#include "check/sentinel.h"

namespace dar {
namespace check {

/// Every architecture MakeMethod can build, in audit order: RNP, DAR and
/// its co-trained ablation, the baselines, and the sentence-level
/// protocols.
std::vector<std::string> AuditableMethods();

struct MethodAuditResult {
  std::string method;
  /// Tape audit of one TrainLoss forward/backward on a tiny batch.
  AuditReport report;
  /// Sentinel findings recorded during that forward/backward (NaN/Inf at
  /// op granularity); empty for a healthy model.
  std::vector<SentinelFinding> sentinel_findings;
  /// True when both the audit and the sentinels came back clean.
  bool ok = false;
};

/// Builds `method` on a tiny synthetic beer-review config, runs Prepare()
/// and one TrainLoss forward/backward under the recording sentinel, and
/// audits the tape against the parameters Fit() would hand the optimizer.
MethodAuditResult AuditMethodByName(const std::string& method,
                                    uint64_t seed = 7);

/// One seeded defect and whether the auditor caught it.
struct SelfTestResult {
  std::string defect;
  bool detected = false;
  std::string detail;
};

/// Mutation self-test: seeds one defect of every class the auditor claims
/// to catch — a detached parameter, a generator frozen while the optimizer
/// still holds its parameters, an injected NaN logit, a corrupted gradient
/// shape, a double Backward() without ZeroGrad, and a poisoned scratch
/// read — and verifies each is detected. The gate for "the auditor itself
/// works": dar_check --self-test fails CI if any defect goes unnoticed.
std::vector<SelfTestResult> RunMutationSelfTest();

}  // namespace check
}  // namespace dar

#endif  // DAR_CHECK_MODEL_AUDIT_H_
