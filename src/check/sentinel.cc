#include "check/sentinel.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sync/mutex.h"

namespace dar {
namespace check {

namespace internal {
std::atomic<int> g_sentinel_mode{static_cast<int>(SentinelMode::kOff)};
std::atomic<bool> g_poison_scratch{false};
}  // namespace internal

namespace {

/// kLeaf: the findings list never holds another lock, and the lock-rank
/// violation handler itself appends here (rank checks are suppressed on
/// the handling thread, but the rank documents the intent).
sync::Mutex& FindingsMutex() {
  static sync::Mutex& mu =
      *new sync::Mutex(sync::Rank::kLeaf, "check.findings");
  return mu;
}

std::vector<SentinelFinding>& Findings() {
  static std::vector<SentinelFinding>& findings =
      *new std::vector<SentinelFinding>;
  return findings;
}

/// Findings past this cap are counted (obs counter) but not stored, so a
/// NaN that contaminates a whole training step cannot balloon memory.
constexpr size_t kMaxStoredFindings = 256;

[[noreturn]] void TrapAbort(const std::string& rendered) {
  std::fprintf(stderr, "DAR sentinel trap: %s\n", rendered.c_str());
  std::fflush(stderr);
  // Last words: the recent-request ring, so a serving-path trap names the
  // requests (and trace ids) that were in flight when the math went bad.
  obs::FlightRecorder::Global().DumpToStderr();
  std::abort();
}

void Report(SentinelFinding finding) {
  obs::MetricsRegistry::Global()
      .GetCounter("check.sentinel.nonfinite")
      .Increment();
  if (GetSentinelMode() == SentinelMode::kTrap) {
    TrapAbort(finding.ToString());
  }
  sync::MutexLock lock(FindingsMutex());
  if (Findings().size() < kMaxStoredFindings) {
    Findings().push_back(std::move(finding));
  }
}

}  // namespace

void SetSentinelMode(SentinelMode mode) {
  internal::g_sentinel_mode.store(static_cast<int>(mode),
                                  std::memory_order_relaxed);
}

SentinelMode GetSentinelMode() {
  return static_cast<SentinelMode>(
      internal::g_sentinel_mode.load(std::memory_order_relaxed));
}

void SetPoisonScratch(bool enabled) {
  internal::g_poison_scratch.store(enabled, std::memory_order_relaxed);
}

std::string TensorStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "numel=%lld nan=%lld inf=%lld finite=[%g, %g] mean=%g",
                static_cast<long long>(numel),
                static_cast<long long>(nan_count),
                static_cast<long long>(inf_count),
                static_cast<double>(finite_min),
                static_cast<double>(finite_max),
                static_cast<double>(finite_mean));
  return buf;
}

TensorStats ComputeStats(const float* data, int64_t n) {
  TensorStats stats;
  stats.numel = n;
  double sum = 0.0;
  int64_t finite = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float v = data[i];
    if (std::isnan(v)) {
      ++stats.nan_count;
    } else if (std::isinf(v)) {
      ++stats.inf_count;
    } else {
      if (finite == 0 || v < stats.finite_min) stats.finite_min = v;
      if (finite == 0 || v > stats.finite_max) stats.finite_max = v;
      sum += v;
      ++finite;
    }
  }
  if (finite > 0) stats.finite_mean = static_cast<float>(sum / finite);
  return stats;
}

std::string SentinelFinding::ToString() const {
  return "non-finite values in op '" + op + "' (" + where + "): " +
         stats.ToString();
}

bool ScanForNonFinite(const char* op, const char* where, const float* data,
                      int64_t n) {
  // Cheap all-finite pre-scan: summing is branch-free and vectorizes; the
  // full statistics pass only runs on dirty buffers.
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += data[i] * 0.0f;
  if (acc == 0.0f) return true;
  SentinelFinding finding;
  finding.op = op;
  finding.where = where;
  finding.stats = ComputeStats(data, n);
  Report(std::move(finding));
  return false;
}

std::vector<SentinelFinding> DrainSentinelFindings() {
  sync::MutexLock lock(FindingsMutex());
  std::vector<SentinelFinding> out;
  out.swap(Findings());
  return out;
}

size_t SentinelFindingCount() {
  sync::MutexLock lock(FindingsMutex());
  return Findings().size();
}

uint32_t TapeOwnerToken() {
  static std::atomic<uint32_t> next_token{1};
  thread_local uint32_t token = next_token.fetch_add(1);
  // fetch_add wraps after 2^32 threads; skip the reserved 0.
  if (token == 0) token = next_token.fetch_add(1);
  return token;
}

namespace {

/// The sentinel-backed rank-violation handler. Runs on the acquiring
/// thread with rank checks suppressed (sync sets in_violation), so the
/// obs counter and the findings append below cannot re-trigger it.
void LockRankSentinel(const sync::RankViolation& violation) {
  obs::MetricsRegistry::Global()
      .GetCounter("check.sentinel.lockrank")
      .Increment();
  char detail[256];
  std::snprintf(detail, sizeof(detail),
                "acquiring '%s' (rank %d) while holding '%s' (rank %d)",
                violation.acquiring_name, violation.acquiring_rank,
                violation.held_name, violation.held_rank);
  if (GetSentinelMode() == SentinelMode::kRecord) {
    SentinelFinding finding;
    finding.op = "lockrank";
    finding.where = detail;
    sync::MutexLock lock(FindingsMutex());
    if (Findings().size() < kMaxStoredFindings) {
      Findings().push_back(std::move(finding));
    }
    return;  // acquisition proceeds — the self-test path
  }
  TrapAbort("lock-rank violation: " + std::string(detail) +
            " — acquisition order must strictly increase in rank "
            "(see the table in src/sync/mutex.h)");
}

}  // namespace

void InstallLockRankHandler() {
  sync::SetRankViolationHandler(&LockRankSentinel);
}

void ReportTapeViolation(const char* what) {
  obs::MetricsRegistry::Global()
      .GetCounter("check.sentinel.tape_violation")
      .Increment();
  SentinelFinding finding;
  finding.op = "tape";
  finding.where = what;
  if (GetSentinelMode() == SentinelMode::kTrap) {
    TrapAbort("tape-ownership violation: " + std::string(what) +
              " — concurrent Backward()/AccumulateGrad over shared nodes "
              "(see the thread-safety contract in autograd/variable.h)");
  }
  sync::MutexLock lock(FindingsMutex());
  if (Findings().size() < kMaxStoredFindings) {
    Findings().push_back(std::move(finding));
  }
}

}  // namespace check
}  // namespace dar
