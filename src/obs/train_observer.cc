#include "obs/train_observer.h"

#include <cstdio>
#include <utility>

namespace dar {
namespace obs {

namespace {

/// Gradient norms are small positives; a 1-2-5 ladder from 1e-3 to 100
/// brackets everything the clipping threshold (5.0) leaves possible, with
/// overflow catching exploding-gradient pathologies.
const std::vector<double>& GradNormBuckets() {
  static const std::vector<double>& buckets = *new std::vector<double>{
      1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5,
      1.0,  2.0,  5.0,  10.0, 20.0, 50.0, 100.0};
  return buckets;
}

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

MetricsTrainObserver::MetricsTrainObserver(MetricsRegistry* registry,
                                           std::string prefix)
    : registry_(registry), prefix_(std::move(prefix)) {
  steps_ = &registry_->GetCounter(prefix_ + ".steps_total");
  epochs_ = &registry_->GetCounter(prefix_ + ".epochs_total");
  loss_ = &registry_->GetGauge(prefix_ + ".loss");
  task_ce_ = &registry_->GetGauge(prefix_ + ".task_ce");
  align_ce_ = &registry_->GetGauge(prefix_ + ".align_ce");
  omega_ = &registry_->GetGauge(prefix_ + ".omega");
  sparsity_ = &registry_->GetGauge(prefix_ + ".rationale_sparsity");
  shift_ = &registry_->GetGauge(prefix_ + ".rationale_shift");
  dev_acc_ = &registry_->GetGauge(prefix_ + ".dev_acc");
  grad_norm_ =
      &registry_->GetHistogram(prefix_ + ".grad_norm", GradNormBuckets());
}

void MetricsTrainObserver::OnBatch(const BatchTelemetry& telemetry) {
  steps_->Increment();
  loss_->Set(telemetry.loss);
  grad_norm_->Observe(telemetry.grad_norm);
  if (telemetry.has_breakdown) {
    task_ce_->Set(telemetry.task_ce);
    omega_->Set(telemetry.omega);
    sparsity_->Set(telemetry.sparsity);
  }
  if (telemetry.has_align) align_ce_->Set(telemetry.align_ce);
  if (telemetry.has_shift) shift_->Set(telemetry.rationale_shift);
}

void MetricsTrainObserver::OnEpoch(const EpochTelemetry& telemetry) {
  epochs_->Increment();
  dev_acc_->Set(telemetry.dev_acc);
}

JsonlTrainObserver::JsonlTrainObserver(std::ostream& out, bool per_batch)
    : out_(&out), per_batch_(per_batch) {}

void JsonlTrainObserver::OnBatch(const BatchTelemetry& t) {
  if (!per_batch_) return;
  std::ostream& out = *out_;
  out << "{\"event\":\"batch\",\"epoch\":" << t.epoch
      << ",\"batch\":" << t.batch << ",\"loss\":" << Num(t.loss)
      << ",\"grad_norm\":" << Num(t.grad_norm);
  if (t.has_breakdown) {
    out << ",\"task_ce\":" << Num(t.task_ce) << ",\"omega\":" << Num(t.omega)
        << ",\"rationale_sparsity\":" << Num(t.sparsity);
  }
  if (t.has_align) out << ",\"align_ce\":" << Num(t.align_ce);
  if (t.has_shift) out << ",\"rationale_shift\":" << Num(t.rationale_shift);
  out << "}\n";
}

void JsonlTrainObserver::OnEpoch(const EpochTelemetry& t) {
  std::ostream& out = *out_;
  out << "{\"event\":\"epoch\",\"model\":\"" << t.model
      << "\",\"epoch\":" << t.epoch << ",\"batches\":" << t.batches
      << ",\"train_loss\":" << Num(t.train_loss)
      << ",\"dev_acc\":" << Num(t.dev_acc)
      << ",\"grad_norm\":" << Num(t.grad_norm);
  if (t.has_breakdown) {
    out << ",\"task_ce\":" << Num(t.task_ce) << ",\"omega\":" << Num(t.omega)
        << ",\"rationale_sparsity\":" << Num(t.sparsity);
  }
  if (t.has_align) out << ",\"align_ce\":" << Num(t.align_ce);
  if (t.has_shift) out << ",\"rationale_shift\":" << Num(t.rationale_shift);
  out << "}\n";
  out.flush();
}

ConsoleTrainLogger::ConsoleTrainLogger(LogLevel level) : level_(level) {}

void ConsoleTrainLogger::OnEpoch(const EpochTelemetry& t) {
  if (level_ < LogLevel::kInfo) return;
  // The historical Fit(verbose=true) line, byte for byte.
  std::printf("  [%s] epoch %2lld  loss %.4f  dev_acc %.3f",
              t.model.c_str(), static_cast<long long>(t.epoch), t.train_loss,
              t.dev_acc);
  if (level_ >= LogLevel::kDebug) {
    std::printf("  |grad| %.3f", t.grad_norm);
    if (t.has_breakdown) {
      std::printf("  ce %.4f  omega %.4f  sparsity %.3f", t.task_ce, t.omega,
                  t.sparsity);
    }
    if (t.has_align) std::printf("  align_ce %.4f", t.align_ce);
    if (t.has_shift) std::printf("  shift %.4f", t.rationale_shift);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace obs
}  // namespace dar
