#include "obs/recorder.h"

#include <csignal>
#include <cstdio>
#include <unistd.h>

#include <algorithm>

namespace dar {
namespace obs {

namespace {

int64_t NowUnixUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void CopyString(char* dst, size_t cap, const char* src) {
  size_t i = 0;
  for (; src[i] != '\0' && i + 1 < cap; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

}  // namespace

// ---- TraceCollector --------------------------------------------------------

TraceCollector::TraceCollector(const TraceContext& context)
    : context_(context),
      start_(std::chrono::steady_clock::now()),
      start_unix_us_(NowUnixUs()) {
  spans_.reserve(8);
}

uint64_t TraceCollector::Open() {
  sync::MutexLock lock(mu_);
  uint64_t id = next_span_id_++;
  open_.push_back(id);
  return id;
}

void TraceCollector::Close(uint64_t span_id, const char* name,
                           std::chrono::steady_clock::time_point start,
                           std::chrono::steady_clock::time_point end) {
  sync::MutexLock lock(mu_);
  uint64_t parent = kRootSpanId;
  for (size_t i = open_.size(); i-- > 0;) {
    if (open_[i] == span_id) {
      parent = i > 0 ? open_[i - 1] : kRootSpanId;
      open_.erase(open_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  ++total_spans_;
  if (spans_.size() >= kMaxSpans) return;
  SpanRecord rec;
  CopyString(rec.name, sizeof(rec.name), name);
  rec.span_id = span_id;
  rec.parent_span_id = parent;
  rec.start_us =
      std::chrono::duration_cast<std::chrono::microseconds>(start - start_)
          .count();
  rec.duration_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count();
  spans_.push_back(rec);
}

void TraceCollector::AddLink(const TraceContext& other) {
  sync::MutexLock lock(mu_);
  ++total_links_;
  if (links_.size() < kMaxLinks) links_.push_back(other);
}

void TraceCollector::AdoptBatch(const TraceCollector& batch,
                                int32_t batch_size) {
  // `batch` is the calling worker's own scratch collector — no other
  // thread touches it — so only this (destination) side locks.
  sync::MutexLock lock(mu_);
  // Remap the batch subtree's span ids past our own so both id spaces stay
  // disjoint under the shared root.
  const uint64_t base = next_span_id_;
  for (const SpanRecord& span : batch.spans_) {
    ++total_spans_;
    if (spans_.size() >= kMaxSpans) continue;
    SpanRecord rec = span;
    rec.span_id = span.span_id + base;
    rec.parent_span_id = span.parent_span_id == kRootSpanId
                             ? kRootSpanId
                             : span.parent_span_id + base;
    if (span.parent_span_id == kRootSpanId && rec.batch_size == 0) {
      rec.batch_size = batch_size;
    }
    // Re-base the batch-relative clock onto this request's timeline.
    int64_t skew = std::chrono::duration_cast<std::chrono::microseconds>(
                       batch.start_ - start_)
                       .count();
    rec.start_us += skew;
    spans_.push_back(rec);
  }
  next_span_id_ += batch.next_span_id_;
  // The batch links every co-batched request, ourselves included — keep
  // only the others.
  for (const TraceContext& link : batch.links_) {
    if (link.SameTrace(context_)) continue;
    if (links_.size() < kMaxLinks) links_.push_back(link);
  }
  total_links_ +=
      batch.total_links_ > 0 ? batch.total_links_ - 1 : 0;
}

CompletedTrace TraceCollector::Finish(const std::string& route,
                                      const std::string& model, int status) {
  sync::MutexLock lock(mu_);
  CompletedTrace out;
  int64_t latency_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  SpanRecord root;
  CopyString(root.name, sizeof(root.name), "http.request");
  root.span_id = kRootSpanId;
  root.parent_span_id = 0;
  root.start_us = 0;
  root.duration_us = latency_us;
  out.spans.reserve(spans_.size() + 1);
  out.spans.push_back(root);
  out.spans.insert(out.spans.end(), spans_.begin(), spans_.end());

  RequestSummary& s = out.summary;
  CopyString(s.trace_id, sizeof(s.trace_id), TraceIdHex(context_).c_str());
  CopyString(s.route, sizeof(s.route), route.c_str());
  CopyString(s.model, sizeof(s.model), model.c_str());
  s.status = status;
  s.latency_us = latency_us;
  s.start_unix_us = start_unix_us_;
  s.total_spans = total_spans_ + 1;  // + the root

  out.batch_links.reserve(links_.size());
  for (const TraceContext& link : links_) {
    out.batch_links.push_back(TraceIdHex(link));
  }
  out.total_links = total_links_;
  return out;
}

// ---- FlightRecorder --------------------------------------------------------

FlightRecorder::FlightRecorder() : FlightRecorder(Config()) {}

FlightRecorder::FlightRecorder(Config config) : config_(config) {
  size_t slots = config_.budget_bytes / sizeof(Slot);
  slots_ = std::vector<Slot>(std::max<size_t>(slots, 8));
}

size_t FlightRecorder::footprint_bytes() const {
  return slots_.size() * sizeof(Slot);
}

void FlightRecorder::Record(const CompletedTrace& trace) {
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % slots_.size()];
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if (seq & 1) {  // another writer wrapped onto this slot mid-write
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  SlotPayload payload{};  // value-init zeroes every field and array
  payload.ticket = ticket + 1;  // 1-based so 0 never looks like a record
  payload.summary = trace.summary;
  payload.stored_spans = static_cast<uint32_t>(
      std::min(trace.spans.size(), static_cast<size_t>(kSlotSpans)));
  for (uint32_t i = 0; i < payload.stored_spans; ++i) {
    payload.spans[i] = trace.spans[i];
  }
  payload.total_links = trace.total_links;
  uint32_t links = 0;
  for (const std::string& link : trace.batch_links) {
    if (links >= kSlotLinks) break;
    uint64_t hi = 0, lo = 0;
    if (!ParseTraceIdHex(link, &hi, &lo)) continue;
    payload.link_ids[links][0] = hi;
    payload.link_ids[links][1] = lo;
    ++links;
  }
  payload.stored_links = links;

  uint64_t words[kPayloadWords];
  std::memset(words, 0, sizeof(words));
  std::memcpy(words, &payload, sizeof(payload));
  for (size_t i = 0; i < kPayloadWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
}

bool FlightRecorder::ReadSlot(const Slot& slot, SlotPayload* out) const {
  for (int attempt = 0; attempt < 4; ++attempt) {
    uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq == 0) return false;  // never written
    if (seq & 1) continue;       // write in progress — retry
    uint64_t words[kPayloadWords];
    for (size_t i = 0; i < kPayloadWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq) continue;  // torn
    std::memcpy(out, words, sizeof(*out));
    return true;
  }
  return false;
}

CompletedTrace FlightRecorder::PayloadToTrace(const SlotPayload& payload) {
  CompletedTrace trace;
  trace.summary = payload.summary;
  // Defensive NUL-termination: the payload crossed a lock-free copy.
  trace.summary.trace_id[sizeof(trace.summary.trace_id) - 1] = '\0';
  trace.summary.route[sizeof(trace.summary.route) - 1] = '\0';
  trace.summary.model[sizeof(trace.summary.model) - 1] = '\0';
  uint32_t spans = std::min<uint32_t>(payload.stored_spans, kSlotSpans);
  trace.spans.reserve(spans);
  for (uint32_t i = 0; i < spans; ++i) {
    trace.spans.push_back(payload.spans[i]);
    trace.spans.back().name[SpanRecord::kNameBytes - 1] = '\0';
  }
  uint32_t links = std::min<uint32_t>(payload.stored_links, kSlotLinks);
  for (uint32_t i = 0; i < links; ++i) {
    trace.batch_links.push_back(
        TraceIdHex(payload.link_ids[i][0], payload.link_ids[i][1]));
  }
  trace.total_links = payload.total_links;
  return trace;
}

std::vector<CompletedTrace> FlightRecorder::Snapshot() const {
  std::vector<std::pair<uint64_t, CompletedTrace>> found;
  found.reserve(slots_.size());
  SlotPayload payload;
  for (const Slot& slot : slots_) {
    if (!ReadSlot(slot, &payload)) continue;
    found.emplace_back(payload.ticket, PayloadToTrace(payload));
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<CompletedTrace> out;
  out.reserve(found.size());
  for (auto& entry : found) out.push_back(std::move(entry.second));
  return out;
}

bool FlightRecorder::Find(const std::string& trace_id_hex,
                          CompletedTrace* out) const {
  uint64_t hi = 0, lo = 0;
  if (!ParseTraceIdHex(trace_id_hex, &hi, &lo)) return false;
  const std::string canonical = TraceIdHex(hi, lo);
  uint64_t best_ticket = 0;
  bool hit = false;
  SlotPayload payload;
  for (const Slot& slot : slots_) {
    if (!ReadSlot(slot, &payload)) continue;
    payload.summary.trace_id[sizeof(payload.summary.trace_id) - 1] = '\0';
    if (canonical != payload.summary.trace_id) continue;
    if (!hit || payload.ticket > best_ticket) {
      best_ticket = payload.ticket;
      *out = PayloadToTrace(payload);
      hit = true;
    }
  }
  return hit;
}

namespace {

// Crash-path formatting: bounded buffers, no heap, write(2) only.
// snprintf with only %s/integer conversions does not allocate on glibc;
// floats are deliberately avoided.

void WriteRaw(const char* data, size_t len) {
  // Best-effort: a crash dump cannot do anything about a failed write.
  ssize_t rc = write(STDERR_FILENO, data, len);
  (void)rc;
}

size_t AppendHexChars(char* dst, size_t cap, uint64_t value, int digits) {
  if (static_cast<size_t>(digits) >= cap) return 0;
  for (int i = digits - 1; i >= 0; --i) {
    dst[i] = "0123456789abcdef"[value & 0xf];
    value >>= 4;
  }
  dst[digits] = '\0';
  return static_cast<size_t>(digits);
}

}  // namespace

void FlightRecorder::DumpToStderr() const {
  char buf[4096];
  int n = std::snprintf(
      buf, sizeof(buf),
      "=== DAR flight recorder begin (slots=%zu recorded=%lld dropped=%lld "
      "bytes=%zu) ===\n",
      slots_.size(), static_cast<long long>(recorded()),
      static_cast<long long>(dropped()), footprint_bytes());
  if (n > 0) WriteRaw(buf, static_cast<size_t>(n));

  SlotPayload payload;
  for (const Slot& slot : slots_) {
    if (!ReadSlot(slot, &payload)) continue;
    payload.summary.trace_id[sizeof(payload.summary.trace_id) - 1] = '\0';
    payload.summary.route[sizeof(payload.summary.route) - 1] = '\0';
    payload.summary.model[sizeof(payload.summary.model) - 1] = '\0';
    size_t pos = 0;
    pos += static_cast<size_t>(std::snprintf(
        buf + pos, sizeof(buf) - pos,
        "{\"ticket\":%llu,\"trace_id\":\"%s\",\"route\":\"%s\","
        "\"model\":\"%s\",\"status\":%d,\"latency_us\":%lld,"
        "\"start_unix_us\":%lld,\"total_spans\":%u,\"tail_reason\":%d,"
        "\"spans\":[",
        static_cast<unsigned long long>(payload.ticket),
        payload.summary.trace_id, payload.summary.route,
        payload.summary.model, payload.summary.status,
        static_cast<long long>(payload.summary.latency_us),
        static_cast<long long>(payload.summary.start_unix_us),
        payload.summary.total_spans,
        static_cast<int>(payload.summary.tail_reason)));
    uint32_t spans = std::min<uint32_t>(payload.stored_spans, kSlotSpans);
    for (uint32_t i = 0; i < spans && pos + 256 < sizeof(buf); ++i) {
      SpanRecord& span = payload.spans[i];
      span.name[SpanRecord::kNameBytes - 1] = '\0';
      char span_hex[17], parent_hex[17];
      AppendHexChars(span_hex, sizeof(span_hex), span.span_id, 16);
      AppendHexChars(parent_hex, sizeof(parent_hex), span.parent_span_id, 16);
      pos += static_cast<size_t>(std::snprintf(
          buf + pos, sizeof(buf) - pos,
          "%s{\"name\":\"%s\",\"span_id\":\"%s\",\"parent\":\"%s\","
          "\"start_us\":%lld,\"dur_us\":%lld,\"batch\":%d}",
          i == 0 ? "" : ",", span.name, span_hex, parent_hex,
          static_cast<long long>(span.start_us),
          static_cast<long long>(span.duration_us), span.batch_size));
    }
    pos += static_cast<size_t>(
        std::snprintf(buf + pos, sizeof(buf) - pos, "],\"links\":["));
    uint32_t links = std::min<uint32_t>(payload.stored_links, kSlotLinks);
    for (uint32_t i = 0; i < links && pos + 64 < sizeof(buf); ++i) {
      char hex[33];
      AppendHexChars(hex, 17, payload.link_ids[i][0], 16);
      AppendHexChars(hex + 16, 17, payload.link_ids[i][1], 16);
      pos += static_cast<size_t>(std::snprintf(buf + pos, sizeof(buf) - pos,
                                               "%s\"%s\"", i == 0 ? "" : ",",
                                               hex));
    }
    pos += static_cast<size_t>(
        std::snprintf(buf + pos, sizeof(buf) - pos, "]}\n"));
    pos = std::min(pos, sizeof(buf) - 1);
    WriteRaw(buf, pos);
  }

  n = std::snprintf(buf, sizeof(buf), "=== DAR flight recorder end ===\n");
  if (n > 0) WriteRaw(buf, static_cast<size_t>(n));
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked: worker threads may record during static destruction.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

// ---- TailSampler -----------------------------------------------------------

TailSampler::TailSampler() : TailSampler(Config()) {}

TailSampler::TailSampler(Config config) : config_(std::move(config)) {}

int64_t TailSampler::ThresholdForRoute(const char* route) const {
  // config_ is immutable after construction; no lock needed. Linear scan:
  // route lists are a handful of entries, and this runs once per request.
  for (const auto& [prefix, threshold_us] : config_.threshold_us_by_route) {
    if (prefix == route) return threshold_us;
  }
  return config_.latency_threshold_us;
}

TailReason TailSampler::Consider(const std::shared_ptr<CompletedTrace>& trace,
                                 bool error) {
  TailReason reason = TailReason::kNone;
  const int64_t threshold_us = ThresholdForRoute(trace->summary.route);
  if (error || trace->summary.status >= 400) {
    reason = TailReason::kError;
  } else if (threshold_us >= 0 && trace->summary.latency_us >= threshold_us) {
    reason = TailReason::kSlow;
  }
  trace->summary.tail_reason = static_cast<uint8_t>(reason);
  if (reason == TailReason::kNone) return reason;

  std::string key = trace->summary.trace_id;
  sync::MutexLock lock(mu_);
  fresh_.push_back(trace->summary);
  if (fresh_.size() > config_.max_traces) fresh_.pop_front();
  auto inserted = traces_.emplace(key, trace);
  if (!inserted.second) {
    inserted.first->second = trace;  // same id resampled: keep the newest
    return reason;
  }
  order_.push_back(std::move(key));
  while (order_.size() > config_.max_traces) {
    traces_.erase(order_.front());
    order_.pop_front();
  }
  return reason;
}

std::shared_ptr<const CompletedTrace> TailSampler::Find(
    const std::string& trace_id_hex) const {
  sync::MutexLock lock(mu_);
  auto it = traces_.find(trace_id_hex);
  return it != traces_.end() ? it->second : nullptr;
}

std::vector<RequestSummary> TailSampler::DrainNew() {
  sync::MutexLock lock(mu_);
  std::vector<RequestSummary> out(fresh_.begin(), fresh_.end());
  fresh_.clear();
  return out;
}

size_t TailSampler::size() const {
  sync::MutexLock lock(mu_);
  return traces_.size();
}

// ---- RequestTracer ---------------------------------------------------------

RequestTracer::RequestTracer() : RequestTracer(TracerConfig()) {}

namespace {

/// Folds the router-facing millisecond spellings into the sampler's
/// microsecond override list (explicit microsecond entries win).
TailSampler::Config MergedTailConfig(const TracerConfig& config) {
  TailSampler::Config tail = config.tail;
  for (const auto& [route, slow_ms] : config.slow_ms_by_route) {
    bool already = false;
    for (const auto& [existing, unused] : tail.threshold_us_by_route) {
      if (existing == route) {
        already = true;
        break;
      }
    }
    if (already) continue;
    tail.threshold_us_by_route.emplace_back(
        route, slow_ms < 0 ? int64_t{-1} : slow_ms * 1000);
  }
  return tail;
}

}  // namespace

RequestTracer::RequestTracer(TracerConfig config)
    : config_(std::move(config)), tail_(MergedTailConfig(config_)) {
  if (config_.crash_dump) InstallFlightRecorderCrashDump();
}

TailReason RequestTracer::Complete(CompletedTrace trace) {
  auto shared = std::make_shared<CompletedTrace>(std::move(trace));
  // Consider() stamps tail_reason before the ring copy is taken, so the
  // flight recorder and the tail store agree on why a request was kept.
  TailReason reason = tail_.Consider(shared, /*error=*/false);
  FlightRecorder::Global().Record(*shared);
  return reason;
}

bool RequestTracer::FindTrace(const std::string& trace_id_hex,
                              CompletedTrace* out) const {
  if (auto tail_hit = tail_.Find(trace_id_hex)) {
    *out = *tail_hit;
    return true;
  }
  return FlightRecorder::Global().Find(trace_id_hex, out);
}

// ---- Crash dump ------------------------------------------------------------

namespace {

void CrashDumpHandler(int sig) {
  FlightRecorder::Global().DumpToStderr();
  // SA_RESETHAND restored the default disposition; re-raise so the process
  // still dies with the original signal (core dump, wait status).
  raise(sig);
}

void MaybeInstall(int sig, const struct sigaction& sa) {
  struct sigaction old;
  std::memset(&old, 0, sizeof(old));
  if (sigaction(sig, nullptr, &old) != 0) return;
  // Leave non-default handlers alone — sanitizers install their own
  // SIGSEGV reporting and must keep it.
  if (old.sa_handler != SIG_DFL || (old.sa_flags & SA_SIGINFO) != 0) return;
  sigaction(sig, &sa, nullptr);
}

}  // namespace

void InstallFlightRecorderCrashDump() {
  static std::atomic<bool> installed{false};
  bool expected = false;
  if (!installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = CrashDumpHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  MaybeInstall(SIGSEGV, sa);
  MaybeInstall(SIGBUS, sa);
}

// ---- Active-collector plumbing ---------------------------------------------

namespace internal {
thread_local TraceCollector* g_active_collector = nullptr;

uint64_t BeginCollectedSpan(TraceCollector* collector) {
  return collector->Open();
}

void EndCollectedSpan(TraceCollector* collector, uint64_t span_id,
                      const char* name,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end) {
  collector->Close(span_id, name, start, end);
}
}  // namespace internal

namespace {
thread_local std::shared_ptr<TraceCollector> g_request_trace;
}

ScopedActiveCollector::ScopedActiveCollector(TraceCollector* collector)
    : prev_(internal::g_active_collector) {
  internal::g_active_collector = collector;
}

ScopedActiveCollector::~ScopedActiveCollector() {
  internal::g_active_collector = prev_;
}

ScopedRequestTrace::ScopedRequestTrace(
    std::shared_ptr<TraceCollector> collector)
    : raw_(collector.get()) {
  prev_shared_ = std::move(g_request_trace);
  g_request_trace = std::move(collector);
}

ScopedRequestTrace::~ScopedRequestTrace() {
  g_request_trace = std::move(prev_shared_);
}

std::shared_ptr<TraceCollector> CurrentRequestTrace() {
  return g_request_trace;
}

}  // namespace obs
}  // namespace dar
