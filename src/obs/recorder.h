// Request-tracing consumers: per-request span collection, the always-on
// flight recorder ring, and the tail sampler.
//
// The pipeline, per HTTP request:
//
//   1. The router mints/adopts a TraceContext and stacks a TraceCollector
//      as the thread's active span sink (ScopedRequestTrace). Every
//      obs::Span at kCoarse or coarser that runs while a collector is
//      active appends a SpanRecord to it — the existing span call sites
//      (serve.enqueue, serve.forward, ...) need no changes.
//   2. The micro-batcher carries the collector across threads
//      (CurrentRequestTrace() → Pending). Its worker times the coalesced
//      forward under a scratch collector and AdoptBatch()es the resulting
//      subtree into every parent request, with the co-batched trace ids
//      recorded as links.
//   3. On completion the router Finish()es the collector into a
//      CompletedTrace and hands it to the RequestTracer, which always
//      pushes it into the FlightRecorder ring (fixed memory, lock-free)
//      and additionally retains it in the TailSampler when the request was
//      slow or errored.
//
// The FlightRecorder is built for the crash path: fixed-size POD slots
// written through per-slot seqlocks (word-wise atomic stores, so readers
// and the TSan lane see no data race), a Record() that never blocks and
// never allocates past construction, and a DumpToStderr() that walks the
// ring with stack buffers and write(2) only — callable from the check::
// sentinel trap and from a SIGSEGV handler.
#ifndef DAR_OBS_RECORDER_H_
#define DAR_OBS_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_context.h"
#include "sync/mutex.h"

namespace dar {
namespace obs {

/// One timed span in a request's trace tree. POD with an inline name so
/// span records fit in the flight recorder's fixed-size slots.
struct SpanRecord {
  static constexpr size_t kNameBytes = 32;
  char name[kNameBytes] = {};  // NUL-terminated, truncated copy
  uint64_t span_id = 0;
  /// Parent within the tree; kRootSpanId parents to the request root.
  uint64_t parent_span_id = 0;
  int64_t start_us = 0;  // offset from the request's start
  int64_t duration_us = 0;
  /// On batch spans: how many requests the forward coalesced (0 = not a
  /// batch span).
  int32_t batch_size = 0;
};

/// Why the tail sampler retained a request (also stamped on the ring copy).
enum class TailReason : uint8_t { kNone = 0, kSlow = 1, kError = 2 };

/// Fixed-size request summary: the per-request line /debug/requests lists
/// and the flight recorder stores.
struct RequestSummary {
  char trace_id[33] = {};  // 32 lowercase hex + NUL
  char route[24] = {};
  char model[24] = {};
  int32_t status = 0;
  int64_t latency_us = 0;
  int64_t start_unix_us = 0;  // wall clock at request start
  /// Spans recorded (collector cap applies; the stored vector may be
  /// shorter still after ring truncation).
  uint32_t total_spans = 0;
  uint8_t tail_reason = 0;  // TailReason
};

/// A completed request trace in heap form — what Finish() produces and
/// the /debug routes serialize.
struct CompletedTrace {
  RequestSummary summary;
  std::vector<SpanRecord> spans;
  /// Trace ids (32-hex) of requests coalesced into the same batch, capped
  /// at TraceCollector::kMaxLinks; total_links keeps the true count.
  std::vector<std::string> batch_links;
  uint32_t total_links = 0;
};

/// Per-request span accumulator. Single-threaded by contract within each
/// ownership phase: the connection thread owns it before Submit and after
/// future.get(); the batcher worker owns it in between (the batcher's
/// queue mutex and the promise/future edge order those phases).
class TraceCollector {
 public:
  /// The implicit request-root span id; spans opened with no parent attach
  /// here.
  static constexpr uint64_t kRootSpanId = 1;
  /// Span cap per request: a kCoarse request tree is a handful of spans;
  /// the cap only guards against a pathological caller. Overflow keeps
  /// counting (summary.total_spans) but stops storing.
  static constexpr size_t kMaxSpans = 48;
  static constexpr size_t kMaxLinks = 6;

  explicit TraceCollector(const TraceContext& context);

  const TraceContext& context() const { return context_; }

  /// Opens a span parented to the innermost open span (or the root) and
  /// returns its id. Paired with Close() — obs::Span drives both.
  uint64_t Open();
  void Close(uint64_t span_id, const char* name,
             std::chrono::steady_clock::time_point start,
             std::chrono::steady_clock::time_point end);

  /// Records the co-batched request `other` as a link (self is skipped).
  void AddLink(const TraceContext& other);

  /// Copies `batch`'s closed spans in as a subtree under this request's
  /// root, remapping span ids to stay unique; top-level batch spans get
  /// `batch_size` stamped, and the batch's links become this trace's
  /// batch_links. Called by the batcher worker before fulfilling the
  /// request's promise.
  ///
  /// Exempt from thread-safety analysis: it reads `batch`'s guarded
  /// fields without `batch.mu_` because the source collector is the
  /// calling worker's private scratch (no other thread can touch it), and
  /// locking both would be a same-rank acquisition the lock-rank checker
  /// rightly rejects. Only the destination side locks.
  void AdoptBatch(const TraceCollector& batch,
                  int32_t batch_size) DAR_NO_THREAD_SAFETY_ANALYSIS;

  /// Seals the trace: emits the root span covering [request start, now]
  /// and returns the heap-form trace. The collector is spent afterwards.
  CompletedTrace Finish(const std::string& route, const std::string& model,
                        int status);

 private:
  /// The request thread closes its serve.enqueue span while the batch
  /// worker may already be grafting via AdoptBatch — the only window
  /// with concurrent access (between queue push and promise
  /// fulfillment), so every mutator takes this uncontended-in-practice
  /// lock. AdoptBatch's *source* collector is the worker's own scratch
  /// and needs no locking.
  mutable sync::Mutex mu_{sync::Rank::kObsDetail, "obs.trace_collector"};
  TraceContext context_;
  std::chrono::steady_clock::time_point start_;
  int64_t start_unix_us_ = 0;
  uint64_t next_span_id_ DAR_GUARDED_BY(mu_) = kRootSpanId + 1;
  std::vector<uint64_t> open_ DAR_GUARDED_BY(mu_);  // stack of open span ids
  std::vector<SpanRecord> spans_ DAR_GUARDED_BY(mu_);
  std::vector<TraceContext> links_ DAR_GUARDED_BY(mu_);
  uint32_t total_spans_ DAR_GUARDED_BY(mu_) = 0;
  uint32_t total_links_ DAR_GUARDED_BY(mu_) = 0;
};

/// Lock-free ring of the last N completed request traces, fixed memory.
class FlightRecorder {
 public:
  struct Config {
    /// Hard byte budget for the slot array; the slot count is derived
    /// (floor(budget / slot size), minimum 8 slots).
    size_t budget_bytes = 256 * 1024;
  };

  /// Spans stored per slot; deeper trees are truncated (the summary's
  /// total_spans keeps the true count).
  static constexpr size_t kSlotSpans = 16;
  static constexpr size_t kSlotLinks = TraceCollector::kMaxLinks;

  FlightRecorder();  // default Config
  explicit FlightRecorder(Config config);

  /// Records one completed trace. Never blocks: each call claims a unique
  /// ticket; in the (ring-wrap) race where the claimed slot is still being
  /// written by another thread, the record is dropped and counted.
  void Record(const CompletedTrace& trace);

  /// Consistent copies of every live slot, newest first.
  std::vector<CompletedTrace> Snapshot() const;

  /// Finds a recorded trace by its 32-hex id (newest match wins).
  bool Find(const std::string& trace_id_hex, CompletedTrace* out) const;

  /// Dumps the ring to stderr as JSONL between marker lines. Stack
  /// buffers and write(2) only — safe from the sentinel trap path and
  /// usable from a fatal-signal handler.
  void DumpToStderr() const;

  size_t num_slots() const { return slots_.size(); }
  /// Actual bytes held by the slot array (<= config budget).
  size_t footprint_bytes() const;
  int64_t recorded() const { return head_.load(std::memory_order_relaxed); }
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  const Config& config() const { return config_; }

  /// Process-wide ring: always on, the instance the sentinel trap and the
  /// crash handler dump. Leaked so worker threads can record during static
  /// destruction.
  static FlightRecorder& Global();

 private:
  /// POD image of one recorded trace, copied through word-size atomics.
  struct SlotPayload {
    uint64_t ticket = 0;
    RequestSummary summary;
    uint32_t stored_spans = 0;
    uint32_t stored_links = 0;
    uint32_t total_links = 0;
    SpanRecord spans[kSlotSpans];
    uint64_t link_ids[kSlotLinks][2];  // trace id hi/lo pairs
  };
  static constexpr size_t kPayloadWords =
      (sizeof(SlotPayload) + sizeof(uint64_t) - 1) / sizeof(uint64_t);

  struct Slot {
    /// Seqlock: even = stable (0 = never written), odd = write in
    /// progress. Payload words are relaxed atomics so concurrent
    /// reader/writer word accesses are race-free; the seq check discards
    /// torn snapshots.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[kPayloadWords];
  };

  /// False when the slot was empty or a writer interleaved (torn read).
  bool ReadSlot(const Slot& slot, SlotPayload* out) const;
  static CompletedTrace PayloadToTrace(const SlotPayload& payload);

  Config config_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<int64_t> dropped_{0};
};

/// Bounded retention of full span trees for slow / errored requests.
/// Mutex-guarded — it runs once per *sampled* request, never on the
/// fast path.
class TailSampler {
 public:
  struct Config {
    /// Requests at or above this end-to-end latency are retained.
    int64_t latency_threshold_us = 250000;
    /// Per-route overrides of the slow threshold (exact route match, e.g.
    /// "/metrics" → a high threshold so scrapes never crowd out real
    /// predict traces). Routes not listed use latency_threshold_us; a
    /// value < 0 disables slow-sampling for that route entirely (errors
    /// are still retained).
    std::vector<std::pair<std::string, int64_t>> threshold_us_by_route;
    /// FIFO capacity; the oldest retained trace is evicted past it.
    size_t max_traces = 64;
  };

  TailSampler();  // default Config
  explicit TailSampler(Config config);

  /// Retains `trace` when it qualifies and stamps summary.tail_reason;
  /// returns the reason (kNone = not sampled). `error` marks failures the
  /// status alone doesn't show (the caller passes status >= 400 itself).
  TailReason Consider(const std::shared_ptr<CompletedTrace>& trace,
                      bool error);

  std::shared_ptr<const CompletedTrace> Find(
      const std::string& trace_id_hex) const;

  /// Summaries sampled since the last drain (the serving example's
  /// slow-request log reads these).
  std::vector<RequestSummary> DrainNew();

  size_t size() const;
  const Config& config() const { return config_; }

 private:
  /// The slow threshold for `route`: the per-route override when one
  /// matches, else the default.
  int64_t ThresholdForRoute(const char* route) const;

  Config config_;
  mutable sync::Mutex mu_{sync::Rank::kObsDetail, "obs.tail_sampler"};
  std::map<std::string, std::shared_ptr<const CompletedTrace>> traces_
      DAR_GUARDED_BY(mu_);
  /// Insertion order, for eviction.
  std::deque<std::string> order_ DAR_GUARDED_BY(mu_);
  std::deque<RequestSummary> fresh_ DAR_GUARDED_BY(mu_);
};

/// Tracer facade the router owns: completion fan-out to the global flight
/// recorder + a private tail sampler, and the lookup the /debug routes
/// serve from.
struct TracerConfig {
  bool enabled = true;
  TailSampler::Config tail;
  /// Per-route slow thresholds in milliseconds, merged into
  /// tail.threshold_us_by_route by the RequestTracer constructor (the
  /// router-facing spelling of the same knob: `/metrics` scrapes should
  /// not pollute the slow-request sampler). < 0 disables slow-sampling
  /// for the route.
  std::vector<std::pair<std::string, int64_t>> slow_ms_by_route;
  /// Exemplar staleness window the router applies to its metrics
  /// registry (see MetricsRegistry::SetExemplarMaxAgeUs); 0 keeps
  /// exemplars forever.
  int64_t exemplar_max_age_us = 0;
  /// Install the SIGSEGV/SIGBUS handler that dumps the global ring before
  /// the process dies (idempotent, process-wide).
  bool crash_dump = true;
};

class RequestTracer {
 public:
  RequestTracer();  // default TracerConfig
  explicit RequestTracer(TracerConfig config);

  /// Completes one request: stamps the tail reason, records into the
  /// global ring, and tail-samples. Returns the tail reason.
  TailReason Complete(CompletedTrace trace);

  /// Tail store first (full tree survives ring wrap), then the ring.
  bool FindTrace(const std::string& trace_id_hex, CompletedTrace* out) const;

  std::vector<RequestSummary> DrainTailSampled() {
    return tail_.DrainNew();
  }

  FlightRecorder& ring() const { return FlightRecorder::Global(); }
  const TailSampler& tail() const { return tail_; }
  const TracerConfig& config() const { return config_; }

 private:
  TracerConfig config_;
  TailSampler tail_;
};

/// Installs SIGSEGV/SIGBUS handlers that DumpToStderr() the global ring
/// and re-raise with default disposition. Idempotent.
void InstallFlightRecorderCrashDump();

// ---- Active-collector plumbing ---------------------------------------------
//
// obs::Span reads the thread-local active collector (see trace.h); these
// RAII guards set it. ScopedRequestTrace additionally publishes the shared
// handle the micro-batcher picks up to carry the trace across threads.

class ScopedActiveCollector {
 public:
  explicit ScopedActiveCollector(TraceCollector* collector);
  ~ScopedActiveCollector();
  ScopedActiveCollector(const ScopedActiveCollector&) = delete;
  ScopedActiveCollector& operator=(const ScopedActiveCollector&) = delete;

 private:
  TraceCollector* prev_;
};

class ScopedRequestTrace {
 public:
  explicit ScopedRequestTrace(std::shared_ptr<TraceCollector> collector);
  ~ScopedRequestTrace();
  ScopedRequestTrace(const ScopedRequestTrace&) = delete;
  ScopedRequestTrace& operator=(const ScopedRequestTrace&) = delete;

 private:
  ScopedActiveCollector raw_;
  std::shared_ptr<TraceCollector> prev_shared_;
};

/// The shared handle of the request trace active on this thread (null
/// outside a ScopedRequestTrace). The micro-batcher stores this in the
/// queued request so the worker can attach batch spans.
std::shared_ptr<TraceCollector> CurrentRequestTrace();

}  // namespace obs
}  // namespace dar

#endif  // DAR_OBS_RECORDER_H_
