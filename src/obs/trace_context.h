// Request-scoped trace identity, W3C Trace Context flavored.
//
// A TraceContext is the 128-bit trace id + 64-bit span id pair that names
// one request across every layer it touches: the HTTP front-end mints one
// per request (or adopts the one an upstream proxy sent in a `traceparent`
// header), the router/batcher/session spans attach to it, and the response
// carries it back as `X-DAR-Trace-Id` so a caller can pull the request's
// span tree from `GET /debug/trace/<id>`.
//
// The wire format is the W3C `traceparent` header:
//
//   00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01
//   ^^ ^32 lowercase hex: trace id      ^16 hex: span id  ^^ flags
//
// ParseTraceparent is strict about the parts it consumes (lowercase hex,
// exact field widths, nonzero ids, version != ff) and deliberately lenient
// about the future: an unknown version parses as long as the 00-layout
// prefix is intact and is followed by end-of-string or another dash, per
// the spec's forward-compatibility rule. Anything malformed returns false
// and the caller mints a fresh context — a bad header must never crash or
// taint the trace store.
#ifndef DAR_OBS_TRACE_CONTEXT_H_
#define DAR_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <string>

namespace dar {
namespace obs {

struct TraceContext {
  uint64_t trace_id_hi = 0;
  uint64_t trace_id_lo = 0;
  /// The current span within the trace: the request root for a freshly
  /// minted context, the remote caller's span when parsed from a
  /// traceparent header.
  uint64_t span_id = 0;
  /// W3C trace-flags byte; bit 0 = sampled.
  uint8_t flags = 0x01;

  /// A zero trace id is the W3C "invalid" value and never refers to a
  /// real request.
  bool valid() const { return (trace_id_hi | trace_id_lo) != 0; }

  bool SameTrace(const TraceContext& other) const {
    return trace_id_hi == other.trace_id_hi &&
           trace_id_lo == other.trace_id_lo;
  }
};

/// Mints a context with fresh random ids (thread-local splitmix64, seeded
/// once per thread from the clock — no locks, no global RNG contention).
TraceContext MakeTraceContext();

/// Fresh random span id within an existing trace.
uint64_t MakeSpanId();

/// Parses a `traceparent` header value. False (out untouched) on anything
/// malformed; see the header comment for the accepted grammar.
bool ParseTraceparent(const std::string& header, TraceContext* out);

/// `00-<trace id>-<span id>-<flags>`, lowercase hex throughout.
std::string FormatTraceparent(const TraceContext& ctx);

/// The 32-lowercase-hex trace id (what X-DAR-Trace-Id carries).
std::string TraceIdHex(const TraceContext& ctx);
std::string TraceIdHex(uint64_t hi, uint64_t lo);

/// 16-lowercase-hex span id.
std::string SpanIdHex(uint64_t id);

/// Parses a 32-hex trace id (the /debug/trace/<id> path segment). False on
/// wrong length or non-hex bytes; uppercase is accepted here (humans paste
/// these) even though the traceparent grammar requires lowercase.
bool ParseTraceIdHex(const std::string& hex, uint64_t* hi, uint64_t* lo);

}  // namespace obs
}  // namespace dar

#endif  // DAR_OBS_TRACE_CONTEXT_H_
