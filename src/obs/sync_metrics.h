// Bridge from the sync layer's per-name contention counters to the
// metrics registry: the /metrics exposition of lock contention.
//
// sync/ sits below obs/ and therefore cannot publish into a
// MetricsRegistry itself; it only accumulates cumulative per-name atomics
// (sync::ContentionSnapshot). This bridge converts those cumulatives into
// registry instruments:
//
//   sync_contention_total{mutex="serve.batcher"}   counter
//   sync_wait_us{mutex="serve.batcher"}            histogram (1-2-5 us
//                                                  buckets, same layout as
//                                                  every duration histogram)
//
// Publication is delta-based and claim-once: each call computes what
// accumulated since the previous call (process-wide publisher state) and
// merges exactly that, so concurrent or repeated /metrics scrapes never
// double-count. Router::HandleMetrics calls this before exporting.
#ifndef DAR_OBS_SYNC_METRICS_H_
#define DAR_OBS_SYNC_METRICS_H_

#include "obs/metrics.h"

namespace dar {
namespace obs {

/// Merges the contention accumulated since the last call into `registry`.
/// Mutex names that never saw contention still get their counter and
/// histogram registered (zero-valued) so dashboards see a stable series
/// set. Thread-safe; cheap when contention tracking is off (the snapshot
/// is a handful of relaxed loads per registered name).
void PublishSyncContentionMetrics(MetricsRegistry& registry);

}  // namespace obs
}  // namespace dar

#endif  // DAR_OBS_SYNC_METRICS_H_
