// Scoped span timers with per-thread aggregation buffers.
//
// A Span is an RAII timer: construction stamps the clock, destruction
// records the elapsed microseconds into a thread-local buffer keyed by the
// span's (static) name. Buffers hold pre-bucketed aggregates in the shared
// DurationBucketsUs() layout and merge into `span.<name>.us` histograms of
// the trace registry (MetricsRegistry::Global() unless overridden) when
// they grow past a flush threshold, on FlushThreadSpans(), and at thread
// exit — so worker-pool threads never contend on a lock per span.
//
// Spans nest naturally (they are just scoped objects) and are gated by a
// process-wide TraceLevel:
//
//   kOff      — every Span is a single relaxed atomic load (the default;
//               bench/serve_throughput records this overhead at <= 2%).
//   kCoarse   — phase-level spans: train batch/shard/reduce/step, serving
//               batch collect/forward, evaluation.
//   kDetailed — adds the hot kernels: matmul, GRU forward, Gumbel
//               sampling. Costs two clock reads per op; for profiling runs.
//
// Span names must be string literals (or otherwise outlive the process):
// buffers key by pointer identity to keep the record path allocation-free.
#ifndef DAR_OBS_TRACE_H_
#define DAR_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace dar {
namespace obs {

enum class TraceLevel : int { kOff = 0, kCoarse = 1, kDetailed = 2 };

void SetTraceLevel(TraceLevel level);
TraceLevel GetTraceLevel();

namespace internal {
extern std::atomic<int> g_trace_level;
}

/// True when spans at `level` are currently recorded.
inline bool TraceEnabled(TraceLevel level) {
  return internal::g_trace_level.load(std::memory_order_relaxed) >=
         static_cast<int>(level);
}

/// Redirects span flushes to `registry` (nullptr restores the global
/// registry). Flushes buffered spans first so no sample lands in the wrong
/// registry. Tests use this to isolate their span streams.
void SetTraceRegistry(MetricsRegistry* registry);

/// Merges the calling thread's buffered span aggregates into the trace
/// registry. Readers (exporters, benches) call this before snapshotting;
/// it also runs automatically at thread exit and on buffer overflow.
void FlushThreadSpans();

class TraceCollector;  // recorder.h — per-request span accumulator

namespace internal {
void RecordSpan(const char* name, int64_t duration_us);

/// The request collector active on this thread (set by the RAII guards in
/// recorder.h, null otherwise). Spans at kCoarse or coarser also append
/// to it, giving completed requests a span tree without any call-site
/// changes. Reading it costs one thread-local load on the span fast path.
extern thread_local TraceCollector* g_active_collector;

// Defined in recorder.cc; trace.h stays free of the recorder types.
uint64_t BeginCollectedSpan(TraceCollector* collector);
void EndCollectedSpan(TraceCollector* collector, uint64_t span_id,
                      const char* name,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end);
}  // namespace internal

/// Scoped timer. `name` must be a string literal.
///
/// Records into two independent sinks: the per-thread aggregate buffers
/// (when the process TraceLevel admits `level`) and the active request's
/// TraceCollector (when one is stacked and `level` is kCoarse or coarser
/// — request trees never include kDetailed kernel spans). With tracing
/// off and no request active, construction is one relaxed atomic load
/// plus one thread-local load.
class Span {
 public:
  explicit Span(const char* name, TraceLevel level = TraceLevel::kCoarse)
      : active_(TraceEnabled(level)),
        collector_(level <= TraceLevel::kCoarse ? internal::g_active_collector
                                                : nullptr) {
    if (active_ || collector_ != nullptr) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
      if (collector_ != nullptr) {
        span_id_ = internal::BeginCollectedSpan(collector_);
      }
    }
  }

  ~Span() {
    if (active_ || collector_ != nullptr) {
      auto end = std::chrono::steady_clock::now();
      if (active_) {
        internal::RecordSpan(
            name_, std::chrono::duration_cast<std::chrono::microseconds>(
                       end - start_)
                       .count());
      }
      if (collector_ != nullptr) {
        internal::EndCollectedSpan(collector_, span_id_, name_, start_, end);
      }
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
  TraceCollector* collector_;
  const char* name_ = nullptr;
  uint64_t span_id_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace dar

#endif  // DAR_OBS_TRACE_H_
