#include "obs/trace_context.h"

#include <chrono>
#include <cstdio>

namespace dar {
namespace obs {

namespace {

/// splitmix64: tiny, fast, and statistically fine for ids that only need
/// to be unique, not unpredictable.
uint64_t NextRandom() {
  thread_local uint64_t state = [] {
    uint64_t seed = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    // Mix in a per-thread address so threads seeded in the same clock tick
    // still diverge.
    return seed ^ (reinterpret_cast<uint64_t>(&state) << 16);
  }();
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;  // uppercase is malformed in traceparent per the W3C grammar
}

/// Parses exactly `digits` lowercase hex characters at `s`. False on any
/// non-hex byte (including NUL — the caller guarantees length).
bool ParseHexField(const char* s, int digits, uint64_t* out) {
  uint64_t value = 0;
  for (int i = 0; i < digits; ++i) {
    int nibble = HexNibble(s[i]);
    if (nibble < 0) return false;
    value = (value << 4) | static_cast<uint64_t>(nibble);
  }
  *out = value;
  return true;
}

void AppendHex(std::string& out, uint64_t value, int digits) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%0*llx", digits,
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

TraceContext MakeTraceContext() {
  TraceContext ctx;
  do {
    ctx.trace_id_hi = NextRandom();
    ctx.trace_id_lo = NextRandom();
  } while (!ctx.valid());  // the all-zero id is reserved for "invalid"
  ctx.span_id = MakeSpanId();
  ctx.flags = 0x01;
  return ctx;
}

uint64_t MakeSpanId() {
  uint64_t id;
  do {
    id = NextRandom();
  } while (id == 0);
  return id;
}

bool ParseTraceparent(const std::string& header, TraceContext* out) {
  // version(2) '-' trace-id(32) '-' parent-id(16) '-' flags(2) = 55 bytes.
  constexpr size_t kLen = 55;
  if (header.size() < kLen) return false;
  const char* s = header.c_str();
  uint64_t version;
  if (!ParseHexField(s, 2, &version)) return false;
  if (version == 0xff) return false;  // ff is forbidden by the spec
  if (version == 0x00 && header.size() != kLen) return false;
  // Unknown future versions may append "-extra" fields; anything else
  // trailing the 00-layout prefix is malformed.
  if (header.size() > kLen && header[kLen] != '-') return false;
  if (s[2] != '-' || s[35] != '-' || s[52] != '-') return false;

  TraceContext ctx;
  uint64_t flags;
  if (!ParseHexField(s + 3, 16, &ctx.trace_id_hi)) return false;
  if (!ParseHexField(s + 19, 16, &ctx.trace_id_lo)) return false;
  if (!ParseHexField(s + 36, 16, &ctx.span_id)) return false;
  if (!ParseHexField(s + 53, 2, &flags)) return false;
  if (!ctx.valid() || ctx.span_id == 0) return false;
  ctx.flags = static_cast<uint8_t>(flags);
  *out = ctx;
  return true;
}

std::string FormatTraceparent(const TraceContext& ctx) {
  std::string out = "00-";
  AppendHex(out, ctx.trace_id_hi, 16);
  AppendHex(out, ctx.trace_id_lo, 16);
  out += '-';
  AppendHex(out, ctx.span_id, 16);
  out += '-';
  AppendHex(out, ctx.flags, 2);
  return out;
}

std::string TraceIdHex(const TraceContext& ctx) {
  return TraceIdHex(ctx.trace_id_hi, ctx.trace_id_lo);
}

std::string TraceIdHex(uint64_t hi, uint64_t lo) {
  std::string out;
  out.reserve(32);
  AppendHex(out, hi, 16);
  AppendHex(out, lo, 16);
  return out;
}

std::string SpanIdHex(uint64_t id) {
  std::string out;
  out.reserve(16);
  AppendHex(out, id, 16);
  return out;
}

bool ParseTraceIdHex(const std::string& hex, uint64_t* hi, uint64_t* lo) {
  if (hex.size() != 32) return false;
  uint64_t h = 0, l = 0;
  for (size_t i = 0; i < 32; ++i) {
    char c = hex[i];
    int nibble;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = c - 'A' + 10;
    } else {
      return false;
    }
    uint64_t& word = i < 16 ? h : l;
    word = (word << 4) | static_cast<uint64_t>(nibble);
  }
  *hi = h;
  *lo = l;
  return true;
}

}  // namespace obs
}  // namespace dar
