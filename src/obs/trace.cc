#include "obs/trace.h"

#include <algorithm>
#include <string>
#include <vector>

namespace dar {
namespace obs {

namespace internal {
std::atomic<int> g_trace_level{static_cast<int>(TraceLevel::kOff)};
}

namespace {

std::atomic<MetricsRegistry*> g_trace_registry{nullptr};

MetricsRegistry& TraceRegistry() {
  MetricsRegistry* r = g_trace_registry.load(std::memory_order_acquire);
  return r != nullptr ? *r : MetricsRegistry::Global();
}

/// Per-name local aggregate in the shared duration-bucket layout.
struct LocalAgg {
  const char* name = nullptr;
  std::vector<int64_t> buckets;
  int64_t count = 0;
  double sum_us = 0.0;
  double max_us = 0.0;
};

/// Thread-local span buffer. Flushes on overflow and from its destructor
/// (thread exit), so pool workers contribute their samples even when the
/// main thread never sees them.
struct ThreadSpanBuffer {
  // A training/serving process has a handful of distinct span names;
  // linear scan over a small vector beats hashing at this size.
  std::vector<LocalAgg> aggs;
  int64_t pending = 0;

  static constexpr int64_t kFlushEvery = 8192;

  ~ThreadSpanBuffer() { Flush(); }

  void Record(const char* name, int64_t duration_us) {
    LocalAgg* agg = nullptr;
    for (LocalAgg& a : aggs) {
      if (a.name == name) {
        agg = &a;
        break;
      }
    }
    if (agg == nullptr) {
      aggs.push_back({});
      agg = &aggs.back();
      agg->name = name;
      agg->buckets.assign(DurationBucketsUs().size() + 1, 0);
    }
    const std::vector<double>& bounds = DurationBucketsUs();
    size_t idx = static_cast<size_t>(
        std::lower_bound(bounds.begin(), bounds.end(),
                         static_cast<double>(duration_us)) -
        bounds.begin());
    ++agg->buckets[idx];
    ++agg->count;
    agg->sum_us += static_cast<double>(duration_us);
    agg->max_us = std::max(agg->max_us, static_cast<double>(duration_us));
    if (++pending >= kFlushEvery) Flush();
  }

  void Flush() {
    if (pending == 0 && aggs.empty()) return;
    MetricsRegistry& registry = TraceRegistry();
    for (LocalAgg& agg : aggs) {
      if (agg.count == 0) continue;
      Histogram& hist = registry.GetHistogram(
          std::string("span.") + agg.name + ".us", DurationBucketsUs());
      hist.MergeCounts(agg.buckets.data(), agg.count, agg.sum_us, agg.max_us);
      std::fill(agg.buckets.begin(), agg.buckets.end(), 0);
      agg.count = 0;
      agg.sum_us = 0.0;
      agg.max_us = 0.0;
    }
    pending = 0;
  }
};

ThreadSpanBuffer& Buffer() {
  thread_local ThreadSpanBuffer buffer;
  return buffer;
}

}  // namespace

void SetTraceLevel(TraceLevel level) {
  internal::g_trace_level.store(static_cast<int>(level),
                                std::memory_order_relaxed);
}

TraceLevel GetTraceLevel() {
  return static_cast<TraceLevel>(
      internal::g_trace_level.load(std::memory_order_relaxed));
}

void SetTraceRegistry(MetricsRegistry* registry) {
  FlushThreadSpans();
  g_trace_registry.store(registry, std::memory_order_release);
}

void FlushThreadSpans() { Buffer().Flush(); }

namespace internal {
void RecordSpan(const char* name, int64_t duration_us) {
  Buffer().Record(name, duration_us);
}
}  // namespace internal

}  // namespace obs
}  // namespace dar
