// Training telemetry: the observer interface core::Fit() and the
// data-parallel trainer report into, plus stock observers (metrics
// registry, JSONL stream, level-gated console logger).
//
// The trainer fills a BatchTelemetry per optimizer step and an
// EpochTelemetry per epoch. All fields are plain numbers so this header
// stays dependency-free; the model-side glue (loss breakdowns, the frozen
// full-text probe behind the rationale-shift gauge) lives in core/.
//
// The rationale-shift gauge is the paper's Fig. 3 phenomenon made watchable
// during training: how much label cross-entropy a *frozen, full-text
// pretrained* probe predictor loses when it reads the current rationale
// instead of the full input. When the generator/predictor pair collude on
// deviated rationales (vanilla RNP), the frozen probe cannot read them and
// the gap grows toward chance; DAR's alignment term keeps the rationale
// legible to exactly such a frozen full-text reader, so the gauge shrinks.
// Computing it costs extra forwards, so observers that do not need it
// override WantsRationaleShift().
#ifndef DAR_OBS_TRAIN_OBSERVER_H_
#define DAR_OBS_TRAIN_OBSERVER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dar {
namespace obs {

/// Telemetry of one optimizer step.
struct BatchTelemetry {
  int64_t epoch = 0;
  int64_t batch = 0;
  /// Total training loss (per-example mean over the batch).
  double loss = 0.0;
  /// Loss components (valid when has_breakdown): task cross-entropy
  /// H_c(Y, P(Z)), DAR's alignment cross-entropy H_c(Y, P^t(Z)) (valid when
  /// has_align), and the sparsity/coherence regularizer Omega(M).
  double task_ce = 0.0;
  double align_ce = 0.0;
  double omega = 0.0;
  /// Global L2 gradient norm before clipping.
  double grad_norm = 0.0;
  /// Fraction of valid tokens the sampled rationale selected.
  double sparsity = 0.0;
  /// Rationale-shift gauge (valid when has_shift): mean label
  /// cross-entropy the frozen full-text probe loses reading the batch's
  /// deterministic rationale instead of the full input.
  double rationale_shift = 0.0;
  bool has_breakdown = false;
  bool has_align = false;
  bool has_shift = false;
};

/// Telemetry of one epoch: batch means plus the dev evaluation.
struct EpochTelemetry {
  int64_t epoch = 0;
  int64_t batches = 0;
  double train_loss = 0.0;
  double dev_acc = 0.0;
  double task_ce = 0.0;
  double align_ce = 0.0;
  double omega = 0.0;
  double grad_norm = 0.0;
  double sparsity = 0.0;
  double rationale_shift = 0.0;
  bool has_breakdown = false;
  bool has_align = false;
  bool has_shift = false;
  /// Display tag, e.g. "DAR" or "RNP x4" for a 4-shard parallel run.
  std::string model;
};

/// Interface the trainers call. Default implementations ignore everything,
/// so observers override only the hooks they need.
class TrainObserver {
 public:
  virtual ~TrainObserver() = default;
  virtual void OnBatch(const BatchTelemetry& telemetry) { (void)telemetry; }
  virtual void OnEpoch(const EpochTelemetry& telemetry) { (void)telemetry; }
  /// Whether the trainer should build the frozen probe and compute the
  /// rationale-shift gauge (two extra eval forwards per batch).
  virtual bool WantsRationaleShift() const { return true; }
};

/// Fans out to several observers.
class MultiTrainObserver : public TrainObserver {
 public:
  void Add(TrainObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }
  bool empty() const { return observers_.empty(); }
  void OnBatch(const BatchTelemetry& telemetry) override {
    for (TrainObserver* o : observers_) o->OnBatch(telemetry);
  }
  void OnEpoch(const EpochTelemetry& telemetry) override {
    for (TrainObserver* o : observers_) o->OnEpoch(telemetry);
  }
  bool WantsRationaleShift() const override {
    for (TrainObserver* o : observers_) {
      if (o->WantsRationaleShift()) return true;
    }
    return false;
  }

 private:
  std::vector<TrainObserver*> observers_;
};

/// Records training telemetry into a MetricsRegistry: per-step gauges
/// (live values, including `<prefix>.rationale_shift`), step counters, and
/// a gradient-norm histogram — the training half of the shared export
/// surface (the serving half is serve::ServingStats).
class MetricsTrainObserver : public TrainObserver {
 public:
  explicit MetricsTrainObserver(MetricsRegistry* registry,
                                std::string prefix = "train");

  void OnBatch(const BatchTelemetry& telemetry) override;
  void OnEpoch(const EpochTelemetry& telemetry) override;

 private:
  MetricsRegistry* registry_;
  std::string prefix_;
  Counter* steps_;
  Counter* epochs_;
  Gauge* loss_;
  Gauge* task_ce_;
  Gauge* align_ce_;
  Gauge* omega_;
  Gauge* sparsity_;
  Gauge* shift_;
  Gauge* dev_acc_;
  Histogram* grad_norm_;
};

/// Writes one JSON object per epoch (and optionally per batch) to a
/// stream; the machine-readable training log.
class JsonlTrainObserver : public TrainObserver {
 public:
  /// `out` must outlive the observer. With `per_batch`, every optimizer
  /// step also emits a line ({"event":"batch",...}).
  explicit JsonlTrainObserver(std::ostream& out, bool per_batch = false);

  void OnBatch(const BatchTelemetry& telemetry) override;
  void OnEpoch(const EpochTelemetry& telemetry) override;

 private:
  std::ostream* out_;
  bool per_batch_;
};

/// Log verbosity of the console logger.
enum class LogLevel : int {
  kSilent = 0,
  /// One line per epoch — byte-identical to the historical
  /// `  [NAME] epoch  N  loss L  dev_acc A` printf.
  kInfo = 1,
  /// Adds loss components, gradient norm, sparsity, and the shift gauge.
  kDebug = 2,
};

/// The human-readable epoch log, level-gated. Fit(verbose=true) attaches
/// one at kInfo, reproducing the historical stdout format.
class ConsoleTrainLogger : public TrainObserver {
 public:
  explicit ConsoleTrainLogger(LogLevel level = LogLevel::kInfo);

  void OnEpoch(const EpochTelemetry& telemetry) override;
  /// The shift gauge costs extra forwards; the plain epoch line does not
  /// show it, so only kDebug asks for it.
  bool WantsRationaleShift() const override {
    return level_ >= LogLevel::kDebug;
  }

 private:
  LogLevel level_;
};

}  // namespace obs
}  // namespace dar

#endif  // DAR_OBS_TRAIN_OBSERVER_H_
