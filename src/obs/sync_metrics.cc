#include "obs/sync_metrics.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sync/mutex.h"

namespace dar {
namespace obs {

namespace {

/// Cumulative totals already published, per mutex name. Claimed under the
/// publisher mutex so each delta is merged by exactly one caller; the
/// merges themselves happen after release (registry instruments are
/// atomic), keeping this lock leaf-like in practice.
struct Published {
  uint64_t contention_total = 0;
  uint64_t wait_us_sum = 0;
  std::vector<uint64_t> bucket_counts;
};

struct PublisherState {
  sync::Mutex mu{sync::Rank::kObsDetail, "obs.sync_publish"};
  std::map<std::string, Published> published DAR_GUARDED_BY(mu);
};

/// Leaked: /metrics scrapes may race static destruction at shutdown.
PublisherState& State() {
  static PublisherState& state = *new PublisherState;
  return state;
}

/// One claimed delta, ready to merge.
struct Delta {
  std::string name;
  int64_t contention = 0;
  double wait_us = 0.0;
  double wait_us_max = 0.0;  // cumulative max: histogram max merges by max
  std::vector<int64_t> bucket_counts;
};

}  // namespace

void PublishSyncContentionMetrics(MetricsRegistry& registry) {
  const std::vector<sync::MutexContentionStats> snapshot =
      sync::ContentionSnapshot();
  std::vector<Delta> deltas;
  deltas.reserve(snapshot.size());
  PublisherState& state = State();
  {
    sync::MutexLock lock(state.mu);
    for (const sync::MutexContentionStats& stats : snapshot) {
      Published& prior = state.published[stats.name];
      if (prior.bucket_counts.empty()) {
        prior.bucket_counts.resize(stats.bucket_counts.size(), 0);
      }
      Delta delta;
      delta.name = stats.name;
      delta.contention =
          static_cast<int64_t>(stats.contention_total - prior.contention_total);
      delta.wait_us =
          static_cast<double>(stats.wait_us_sum - prior.wait_us_sum);
      delta.wait_us_max = static_cast<double>(stats.wait_us_max);
      delta.bucket_counts.resize(stats.bucket_counts.size(), 0);
      for (size_t i = 0; i < stats.bucket_counts.size(); ++i) {
        delta.bucket_counts[i] = static_cast<int64_t>(
            stats.bucket_counts[i] - prior.bucket_counts[i]);
      }
      prior.contention_total = stats.contention_total;
      prior.wait_us_sum = stats.wait_us_sum;
      prior.bucket_counts = stats.bucket_counts;
      deltas.push_back(std::move(delta));
    }
  }
  for (const Delta& delta : deltas) {
    const std::vector<std::pair<std::string, std::string>> labels = {
        {"mutex", delta.name}};
    Counter& total =
        registry.GetCounter(LabeledName("sync.contention_total", labels));
    if (delta.contention > 0) total.Increment(delta.contention);
    Histogram& wait = registry.GetHistogram(
        LabeledName("sync.wait_us", labels), sync::ContentionBucketBoundsUs());
    if (delta.contention > 0) {
      wait.MergeCounts(delta.bucket_counts.data(), delta.contention,
                       delta.wait_us, delta.wait_us_max);
    }
  }
}

}  // namespace obs
}  // namespace dar
