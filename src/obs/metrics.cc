#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace dar {
namespace obs {

namespace {

/// fetch_add for atomic<double> via CAS (portable across toolchains that
/// predate C++20 floating-point fetch_add).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < v &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// %g-style compact number rendering that is always valid JSON (never
/// "inf"/"nan" bare — those become null).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

/// Splits a "base{labels}" instrument name (see LabeledName) into the
/// sanitized base and the verbatim label block ("" when unlabeled). A '{'
/// without a closing '}' at the end is not a label block — the whole name
/// is sanitized, which keeps arbitrary caller strings exportable.
struct SeriesName {
  std::string base;
  std::string labels;  // "{k=\"v\",...}" or ""
};

SeriesName SplitSeries(const std::string& name) {
  SeriesName series;
  size_t brace = name.find('{');
  if (brace != std::string::npos && name.back() == '}' &&
      name.size() - brace > 2) {
    series.base = PrometheusName(name.substr(0, brace));
    series.labels = name.substr(brace);
  } else {
    series.base = PrometheusName(name);
  }
  return series;
}

/// Appends `extra` (e.g. le="0.5") into a label block: "{a=\"b\"}" ->
/// "{a=\"b\",le=\"0.5\"}"; an empty block becomes "{le=\"0.5\"}".
std::string WithExtraLabel(const std::string& labels,
                           const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

}  // namespace

std::string LabeledName(
    const std::string& base,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return base;
  std::string out = base + "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += PrometheusName(key) + "=\"";
    for (char c : value) {
      if (c == '\\' || c == '"') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += "\"";
  }
  out += "}";
  return out;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    // Ascending edges are a constructor contract, not a runtime input.
    if (bounds_[i] <= bounds_[i - 1]) {
      bounds_.clear();
      buckets_ = std::vector<std::atomic<int64_t>>(1);
      break;
    }
  }
}

size_t Histogram::BucketIndexFor(double v) const {
  size_t idx = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  // upper_bound gives the first edge > v, i.e. edges are inclusive uppers.
  if (idx > 0 && v == bounds_[idx - 1]) --idx;
  return idx;
}

double Histogram::BucketLowerEdge(size_t index) const {
  return index > 0 ? bounds_[index - 1] : 0.0;
}

double Histogram::BucketUpperEdge(size_t index) const {
  return index < bounds_.size() ? bounds_[index]
                                : max_.load(std::memory_order_relaxed);
}

void Histogram::Observe(double v) {
  size_t idx = BucketIndexFor(v);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMax(max_, v);
}

void Histogram::ObserveWithExemplar(double v, uint64_t trace_hi,
                                    uint64_t trace_lo) {
  size_t idx = BucketIndexFor(v);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMax(max_, v);
  const int64_t now_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  sync::MutexLock lock(exemplar_mu_);
  if (exemplars_.empty()) exemplars_.resize(buckets_.size());
  exemplars_[idx] = Exemplar{true, v, trace_hi, trace_lo, now_us};
}

std::vector<Histogram::Exemplar> Histogram::Exemplars() const {
  sync::MutexLock lock(exemplar_mu_);
  return exemplars_;
}

void Histogram::MergeCounts(const int64_t* bucket_counts, int64_t count,
                            double sum, double max) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (bucket_counts[i] != 0) {
      buckets_[i].fetch_add(bucket_counts[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  AtomicAdd(sum_, sum);
  AtomicMax(max_, max);
}

double Histogram::mean() const {
  int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Percentile(double p) const {
  const std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // A single observation has no distribution to interpolate over: report
  // it exactly (the tracked max) instead of a bucket-edge estimate.
  if (total == 1) return max_.load(std::memory_order_relaxed);
  // Nearest-rank target, matching PercentileSorted on exact samples.
  double rank = p / 100.0 * static_cast<double>(total);
  int64_t target = static_cast<int64_t>(std::ceil(rank));
  target = std::max<int64_t>(1, std::min(target, total));

  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (seen + counts[i] < target) {
      seen += counts[i];
      continue;
    }
    // The target falls in bucket i: interpolate between its edges. The
    // overflow bucket has no upper edge — its estimate is the exact max.
    double hi = BucketUpperEdge(i);
    double lo = BucketLowerEdge(i);
    double frac = counts[i] > 0 ? static_cast<double>(target - seen) /
                                      static_cast<double>(counts[i])
                                : 1.0;
    double estimate = lo + (hi - lo) * frac;
    // Never report past the exact observed max.
    return std::min(estimate, max_.load(std::memory_order_relaxed));
  }
  return max_.load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (std::atomic<int64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  sync::MutexLock lock(exemplar_mu_);
  exemplars_.clear();
}

const std::vector<double>& DurationBucketsUs() {
  static const std::vector<double>& buckets = *new std::vector<double>{
      1,     2,     5,     10,    20,    50,    100,   200,   500,
      1e3,   2e3,   5e3,   1e4,   2e4,   5e4,   1e5,   2e5,   5e5,
      1e6,   2e6,   5e6,   1e7};
  return buckets;
}

int64_t PercentileSorted(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  double rank = p / 100.0 * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(rank);
  if (static_cast<double>(index) < rank) ++index;  // ceil
  if (index == 0) index = 1;
  if (index > sorted.size()) index = sorted.size();
  return sorted[index - 1];
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  sync::MutexLock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  sync::MutexLock lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  sync::MutexLock lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

std::string MetricsRegistry::ExportJsonl() const {
  sync::MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "{\"type\":\"counter\",\"name\":\"" + JsonEscape(name) +
           "\",\"value\":" + std::to_string(counter->value()) + "}\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "{\"type\":\"gauge\",\"name\":\"" + JsonEscape(name) +
           "\",\"value\":" + JsonNumber(gauge->value()) + "}\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out += "{\"type\":\"histogram\",\"name\":\"" + JsonEscape(name) +
           "\",\"count\":" + std::to_string(hist->count()) +
           ",\"sum\":" + JsonNumber(hist->sum()) +
           ",\"mean\":" + JsonNumber(hist->mean()) +
           ",\"max\":" + JsonNumber(hist->max()) +
           ",\"p50\":" + JsonNumber(hist->Percentile(50.0)) +
           ",\"p95\":" + JsonNumber(hist->Percentile(95.0)) +
           ",\"p99\":" + JsonNumber(hist->Percentile(99.0)) + "}\n";
  }
  return out;
}

std::string MetricsRegistry::ExportPrometheus() const {
  sync::MutexLock lock(mu_);
  std::string out;
  char buf[160];
  // Label dimensions of one metric share a base name; the map's name order
  // groups them ("m" sorts right before "m{..."), so one # TYPE line per
  // base name needs only the previous base as dedup state (repeating the
  // TYPE comment for every series would be invalid exposition).
  std::string last_type;
  auto type_line = [&](const std::string& base, const char* kind) {
    if (base == last_type) return;
    last_type = base;
    out += "# TYPE " + base + " " + kind + "\n";
  };
  for (const auto& [name, counter] : counters_) {
    SeriesName series = SplitSeries(name);
    type_line(series.base, "counter");
    std::snprintf(buf, sizeof(buf), "%s%s %lld\n", series.base.c_str(),
                  series.labels.c_str(),
                  static_cast<long long>(counter->value()));
    out += buf;
  }
  last_type.clear();
  for (const auto& [name, gauge] : gauges_) {
    SeriesName series = SplitSeries(name);
    type_line(series.base, "gauge");
    std::snprintf(buf, sizeof(buf), "%s%s %.9g\n", series.base.c_str(),
                  series.labels.c_str(), gauge->value());
    out += buf;
  }
  last_type.clear();
  // Exemplar staleness window: a trace-id link only helps while the tail
  // sampler (or the ring) still holds the trace, so exemplars older than
  // the configured window are dropped from the exposition. The bucket
  // counts they annotate are untouched.
  const int64_t max_age_us =
      exemplar_max_age_us_.load(std::memory_order_relaxed);
  const int64_t now_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  auto exemplar_fresh = [&](const Histogram::Exemplar& exemplar) {
    return max_age_us <= 0 || now_us - exemplar.unix_us <= max_age_us;
  };
  for (const auto& [name, hist] : histograms_) {
    SeriesName series = SplitSeries(name);
    type_line(series.base, "histogram");
    const std::vector<int64_t> counts = hist->BucketCounts();
    const std::vector<Histogram::Exemplar> exemplars = hist->Exemplars();
    int64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      char le[48];
      if (i < hist->bounds().size()) {
        std::snprintf(le, sizeof(le), "le=\"%.9g\"", hist->bounds()[i]);
      } else {
        std::snprintf(le, sizeof(le), "le=\"+Inf\"");
      }
      std::snprintf(buf, sizeof(buf), "%s_bucket%s %lld",
                    series.base.c_str(),
                    WithExtraLabel(series.labels, le).c_str(),
                    static_cast<long long>(cumulative));
      out += buf;
      if (i < exemplars.size() && exemplars[i].valid &&
          exemplar_fresh(exemplars[i])) {
        // OpenMetrics exemplar syntax: `... N # {trace_id="..."} value`.
        std::snprintf(buf, sizeof(buf),
                      " # {trace_id=\"%016llx%016llx\"} %.9g",
                      static_cast<unsigned long long>(exemplars[i].trace_hi),
                      static_cast<unsigned long long>(exemplars[i].trace_lo),
                      exemplars[i].value);
        out += buf;
      }
      out += "\n";
    }
    std::snprintf(buf, sizeof(buf), "%s_sum%s %.9g\n", series.base.c_str(),
                  series.labels.c_str(), hist->sum());
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_count%s %lld\n", series.base.c_str(),
                  series.labels.c_str(), static_cast<long long>(hist->count()));
    out += buf;
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  sync::MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, hist] : histograms_) hist->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: worker threads may flush span buffers during static
  // destruction, so the registry must outlive every thread.
  static MetricsRegistry& registry = *new MetricsRegistry();
  return registry;
}

}  // namespace obs
}  // namespace dar
