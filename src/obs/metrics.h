// Unified metrics for training, serving, and benches.
//
// A MetricsRegistry is a named collection of three instrument kinds:
//
//   Counter   — monotone int64 (requests served, batches trained, ...)
//   Gauge     — last-written double (current loss, rationale-shift, ...)
//   Histogram — fixed-bucket distribution with exact count/sum/max and a
//               bucket-interpolated percentile estimator (latencies, span
//               durations, gradient norms, ...)
//
// All instruments are lock-free on the write path (atomics only) so they
// can sit in hot loops; the registry map itself is mutex-guarded but only
// touched at instrument-lookup time — callers cache the returned pointer,
// which stays valid for the registry's lifetime.
//
// Two export surfaces cover every consumer in this repository:
//   ExportJsonl()      — one JSON object per metric per line, the format
//                        BENCH_*.json records and the JSONL train logs use.
//   ExportPrometheus() — Prometheus text exposition format, the format the
//                        serving stack exposes (serve_demo prints it, CI
//                        greps it).
//
// This header depends only on the C++ standard library and src/sync/ (the
// annotated mutex layer at the bottom of the stack), so every other
// library (tensor, nn, core, serve) can link it without cycles.
#ifndef DAR_OBS_METRICS_H_
#define DAR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sync/mutex.h"

namespace dar {
namespace obs {

/// Monotone counter. Thread-safe; increments are relaxed atomics.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value gauge. Thread-safe.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram.
///
/// `bounds` are inclusive upper bucket edges in ascending order; one
/// overflow bucket past the last edge is implicit. Observations update a
/// bucket counter plus exact count/sum/max, all with atomics — no lock, no
/// allocation, O(log buckets) per Observe.
class Histogram {
 public:
  /// A recent (value, trace id) pair attached to one bucket — the
  /// OpenMetrics exemplar the /metrics exposition appends to that bucket's
  /// line, so a latency spike in a histogram links to a concrete request
  /// in /debug/trace/<id>.
  struct Exemplar {
    bool valid = false;
    double value = 0.0;
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    /// Wall clock at capture; lets the exposition drop exemplars older
    /// than the registry's staleness window (the tail sampler has usually
    /// evicted the trace such a link points at).
    int64_t unix_us = 0;
  };

  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  /// Observe() plus exemplar capture: remembers (v, trace id) for the
  /// bucket v lands in. Retention is last-write-wins per bucket — each
  /// bucket keeps exactly its most recent exemplar, older ones are
  /// overwritten, and there is no sampling or rate limit; recency is the
  /// policy. Exemplar storage is allocated on first use and guarded by a
  /// mutex, so histograms that never see a traced observation pay nothing
  /// and the plain Observe() path stays lock-free.
  void ObserveWithExemplar(double v, uint64_t trace_hi, uint64_t trace_lo);

  /// Per-bucket exemplars (num_buckets() entries, each possibly invalid).
  /// Empty when ObserveWithExemplar was never called.
  std::vector<Exemplar> Exemplars() const;

  /// Merges pre-aggregated data (the per-thread span buffers flush through
  /// this): `bucket_counts` must have num_buckets() entries.
  void MergeCounts(const int64_t* bucket_counts, int64_t count, double sum,
                   double max);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double max() const { return max_.load(std::memory_order_relaxed); }

  /// Number of buckets including the overflow bucket (bounds().size() + 1).
  size_t num_buckets() const { return buckets_.size(); }
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> BucketCounts() const;

  /// Percentile estimate by linear interpolation inside the bucket holding
  /// the nearest-rank sample; clamped to the exact observed max (so the
  /// estimate never exceeds reality). Degenerate inputs have defined
  /// values, by convention: an empty histogram returns 0 for every p (not
  /// NaN, not an error), and a single-sample histogram returns that sample
  /// exactly (the tracked max) rather than a bucket-edge estimate.
  double Percentile(double p) const;

  void Reset();

 private:
  /// The single home of the bucket-selection rule (inclusive upper edges):
  /// Observe and the exemplar path both go through it, so the exemplar can
  /// never sit in a different bucket than the count it annotates.
  size_t BucketIndexFor(double v) const;
  /// Bucket edge helpers shared by Percentile and the exporters; the
  /// overflow bucket's upper edge is the exact observed max.
  double BucketLowerEdge(size_t index) const;
  double BucketUpperEdge(size_t index) const;

  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
  /// kObsDetail outranks the registry map's kObsRegistry mutex because
  /// ExportPrometheus reads exemplars while holding the map lock.
  mutable sync::Mutex exemplar_mu_{sync::Rank::kObsDetail, "obs.exemplars"};
  /// Empty until the first traced observation.
  std::vector<Exemplar> exemplars_ DAR_GUARDED_BY(exemplar_mu_);
};

/// The 1-2-5 series from 1us to 1e7us (10 s): the shared bucket layout for
/// every duration histogram (latencies, span timings). One layout for all
/// of them keeps per-thread span buffers mergeable into any registry.
const std::vector<double>& DurationBucketsUs();

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
/// Exact — the estimator ServingStats uses below its memory cap, and the
/// reference the histogram estimator is tested against.
int64_t PercentileSorted(const std::vector<int64_t>& sorted, double p);

/// Builds an instrument name carrying a Prometheus label block:
///
///   LabeledName("serve.requests_total", {{"model", "beer"}})
///     == "serve.requests_total{model=\"beer\"}"
///
/// Label keys are sanitized like metric names; label values are escaped
/// (backslash, quote, newline). ExportPrometheus() recognizes the trailing
/// `{...}` block and emits it verbatim after the sanitized base name (for
/// histograms the `le` bucket label is merged into the block), so one
/// registry can hold any number of label dimensions of the same metric —
/// the per-model serving counters and the per-route HTTP metrics use this.
/// ExportJsonl() treats the whole string as the metric name.
std::string LabeledName(
    const std::string& base,
    const std::vector<std::pair<std::string, std::string>>& labels);

/// Named instrument collection with JSONL and Prometheus exporters.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument. The returned reference stays
  /// valid for the registry's lifetime; callers should look up once and
  /// cache. For histograms, `bounds` only applies on creation.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  /// One JSON object per metric per line, in name order. Histograms carry
  /// count/sum/mean/max and estimated p50/p95/p99.
  std::string ExportJsonl() const;

  /// Prometheus text exposition format. Metric names are sanitized
  /// ([^a-zA-Z0-9_:] -> '_'); histograms emit cumulative _bucket{le=...}
  /// series plus _sum and _count.
  std::string ExportPrometheus() const;

  /// Zeroes every instrument (instruments stay registered).
  void ResetAll();

  /// Exemplar staleness window for ExportPrometheus: exemplars captured
  /// more than `max_age_us` before the export are dropped from the
  /// exposition (the counts they annotate are untouched). 0 (the default)
  /// keeps every exemplar forever. Routers wire
  /// TracerConfig::exemplar_max_age_us here.
  void SetExemplarMaxAgeUs(int64_t max_age_us) {
    exemplar_max_age_us_.store(max_age_us, std::memory_order_relaxed);
  }
  int64_t exemplar_max_age_us() const {
    return exemplar_max_age_us_.load(std::memory_order_relaxed);
  }

  /// Process-wide registry: span timers flush here by default, and it is
  /// the natural home for anything that wants one export surface.
  static MetricsRegistry& Global();

 private:
  mutable sync::Mutex mu_{sync::Rank::kObsRegistry, "obs.metrics_registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      DAR_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ DAR_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DAR_GUARDED_BY(mu_);
  std::atomic<int64_t> exemplar_max_age_us_{0};
};

}  // namespace obs
}  // namespace dar

#endif  // DAR_OBS_METRICS_H_
