#include "datasets/beer.h"

#include "tensor/check.h"

namespace dar {
namespace datasets {

ReviewConfig BeerReviewConfig(BeerAspect aspect, float shortcut_strength) {
  ReviewConfig config;
  config.aspects = BeerAspects();
  config.target_aspect = static_cast<int>(aspect);
  // Lei et al.'s "decorrelated" subsets still retain residual correlation
  // between aspect sentiments; 0.5 reproduces that regime.
  config.aspect_correlation = 0.5f;
  config.shortcut_strength = shortcut_strength;
  // Annotation sparsity targets (Table IX): appearance 18.5%, aroma 15.6%,
  // palate 12.4%. Sentences average ~10 tokens over 5 aspects; annotating
  // sentiment+neutral tokens of the target sentence lands near these
  // levels, with per-aspect sentiment-token counts fine-tuning the rate.
  switch (aspect) {
    case BeerAspect::kAppearance:
      config.min_sentiment_tokens = 3;
      config.max_sentiment_tokens = 4;
      config.annotate_neutral = true;
      break;
    case BeerAspect::kAroma:
      config.min_sentiment_tokens = 2;
      config.max_sentiment_tokens = 4;
      config.annotate_neutral = true;
      break;
    case BeerAspect::kPalate:
      config.min_sentiment_tokens = 2;
      config.max_sentiment_tokens = 3;
      config.annotate_neutral = true;
      break;
  }
  return config;
}

SyntheticDataset MakeBeerDataset(BeerAspect aspect, const SplitSizes& sizes,
                                 uint64_t seed, float shortcut_strength) {
  SyntheticReviewGenerator generator(BeerReviewConfig(aspect, shortcut_strength),
                                     seed);
  return generator.Generate(sizes.train, sizes.dev, sizes.test);
}

std::string BeerAspectName(BeerAspect aspect) {
  switch (aspect) {
    case BeerAspect::kAppearance:
      return "Appearance";
    case BeerAspect::kAroma:
      return "Aroma";
    case BeerAspect::kPalate:
      return "Palate";
  }
  DAR_CHECK_MSG(false, "unknown beer aspect");
  return "";
}

}  // namespace datasets
}  // namespace dar
