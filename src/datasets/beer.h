// BeerAdvocate-analogue dataset construction.
#ifndef DAR_DATASETS_BEER_H_
#define DAR_DATASETS_BEER_H_

#include <cstdint>
#include <string>

#include "datasets/synthetic_review.h"

namespace dar {
namespace datasets {

/// The three evaluated beer aspects (paper Tables II, V, VII).
enum class BeerAspect : int { kAppearance = 0, kAroma = 1, kPalate = 2 };

/// Split sizes. Defaults are scaled-down but proportionate stand-ins for
/// the paper's Table IX counts; benches shrink them further in quick mode.
struct SplitSizes {
  int64_t train = 2000;
  int64_t dev = 400;
  int64_t test = 400;
};

/// Returns the generator config for a beer aspect.
///
/// `shortcut_strength` injects the label-correlated "-" token (0 disables);
/// the standard benchmark uses 0.7 so that collusion is
/// available but not dominant — mirroring how the real BeerAdvocate text
/// offers RNP trivial-but-distinguishable patterns to latch onto.
ReviewConfig BeerReviewConfig(BeerAspect aspect,
                              float shortcut_strength = 0.7f);

/// Builds the synthetic BeerAdvocate-analogue for one aspect.
SyntheticDataset MakeBeerDataset(BeerAspect aspect, const SplitSizes& sizes,
                                 uint64_t seed, float shortcut_strength = 0.7f);

/// Human-readable aspect name ("Appearance").
std::string BeerAspectName(BeerAspect aspect);

}  // namespace datasets
}  // namespace dar

#endif  // DAR_DATASETS_BEER_H_
