// Aspect lexicons for the synthetic review generator.
//
// Each aspect owns three token groups: polarity-bearing positive/negative
// words (the causal signal for that aspect's label, and the core of the
// gold rationale) and neutral aspect words (topic markers like "head" or
// "reception" that locate the aspect's sentence). A shared pool of filler
// and punctuation tokens provides non-informative context.
#ifndef DAR_DATASETS_LEXICON_H_
#define DAR_DATASETS_LEXICON_H_

#include <string>
#include <vector>

namespace dar {
namespace datasets {

/// Token groups for one review aspect.
struct AspectLexicon {
  std::string name;
  std::vector<std::string> positive;
  std::vector<std::string> negative;
  std::vector<std::string> neutral;
};

/// The five beer aspects, in the sentence order reviews use. Indices 0-2
/// (appearance, aroma, palate) are the aspects the paper evaluates;
/// 3-4 (taste, overall) are distractor aspects present in the text.
/// Appearance is first — the skewed-predictor experiment (Table VII)
/// relies on "the first sentence is usually about appearance".
const std::vector<AspectLexicon>& BeerAspects();

/// The five hotel aspects: location, service, cleanliness (evaluated)
/// plus breakfast and amenities (distractors).
const std::vector<AspectLexicon>& HotelAspects();

/// Generic non-informative filler words.
const std::vector<std::string>& FillerTokens();

/// Generic sentiment words ("good", "poor", ...) shared by *every* aspect.
/// Each sentence carries a few of its own aspect-label's polarity; selecting
/// them from a non-target sentence is the tempting-but-wrong move that
/// separates aligned methods from colluding ones (they predict the target
/// label only through the inter-aspect correlation).
const std::vector<std::string>& GenericPositiveTokens();
const std::vector<std::string>& GenericNegativeTokens();

/// Punctuation tokens. "-" doubles as the label-correlated shortcut token
/// in the rationale-shift experiments (the paper's Fig. 2 example).
const std::vector<std::string>& PunctuationTokens();

}  // namespace datasets
}  // namespace dar

#endif  // DAR_DATASETS_LEXICON_H_
