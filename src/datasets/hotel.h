// HotelReview-analogue dataset construction.
#ifndef DAR_DATASETS_HOTEL_H_
#define DAR_DATASETS_HOTEL_H_

#include <cstdint>
#include <string>

#include "datasets/beer.h"
#include "datasets/synthetic_review.h"

namespace dar {
namespace datasets {

/// The three evaluated hotel aspects (paper Table III, Figs. 3/6/7/8).
enum class HotelAspect : int { kLocation = 0, kService = 1, kCleanliness = 2 };

/// Returns the generator config for a hotel aspect.
///
/// Hotel aspects use a stronger default shortcut (0.7): in the paper,
/// Service and Cleanliness are where RNP's predictor degenerates outright
/// (Fig. 3b, Table I), so the spurious pattern must be strong enough for
/// collusion to be the path of least resistance.
ReviewConfig HotelReviewConfig(HotelAspect aspect,
                               float shortcut_strength = 0.7f);

/// Builds the synthetic HotelReview-analogue for one aspect.
SyntheticDataset MakeHotelDataset(HotelAspect aspect, const SplitSizes& sizes,
                                  uint64_t seed,
                                  float shortcut_strength = 0.7f);

/// Human-readable aspect name ("Service").
std::string HotelAspectName(HotelAspect aspect);

}  // namespace datasets
}  // namespace dar

#endif  // DAR_DATASETS_HOTEL_H_
