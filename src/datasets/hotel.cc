#include "datasets/hotel.h"

#include "tensor/check.h"

namespace dar {
namespace datasets {

ReviewConfig HotelReviewConfig(HotelAspect aspect, float shortcut_strength) {
  ReviewConfig config;
  config.aspects = HotelAspects();
  config.target_aspect = static_cast<int>(aspect);
  config.aspect_correlation = 0.45f;
  config.shortcut_strength = shortcut_strength;
  // Annotation sparsity targets (Table IX): location 8.5%, service 11.5%,
  // cleanliness 8.9%. Hotel annotations mark polarity words only.
  config.annotate_neutral = false;
  switch (aspect) {
    case HotelAspect::kLocation:
      config.min_sentiment_tokens = 2;
      config.max_sentiment_tokens = 3;
      break;
    case HotelAspect::kService:
      config.min_sentiment_tokens = 3;
      config.max_sentiment_tokens = 4;
      break;
    case HotelAspect::kCleanliness:
      config.min_sentiment_tokens = 2;
      config.max_sentiment_tokens = 3;
      break;
  }
  return config;
}

SyntheticDataset MakeHotelDataset(HotelAspect aspect, const SplitSizes& sizes,
                                  uint64_t seed, float shortcut_strength) {
  SyntheticReviewGenerator generator(
      HotelReviewConfig(aspect, shortcut_strength), seed);
  return generator.Generate(sizes.train, sizes.dev, sizes.test);
}

std::string HotelAspectName(HotelAspect aspect) {
  switch (aspect) {
    case HotelAspect::kLocation:
      return "Location";
    case HotelAspect::kService:
      return "Service";
    case HotelAspect::kCleanliness:
      return "Cleanliness";
  }
  DAR_CHECK_MSG(false, "unknown hotel aspect");
  return "";
}

}  // namespace datasets
}  // namespace dar
