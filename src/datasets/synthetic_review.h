// Synthetic multi-aspect review generator.
//
// Substitutes for the paper's BeerAdvocate / HotelReview corpora (which are
// not redistributable) while preserving the causal structure that the
// rationalization game exploits:
//
//   * each review contains one sentence per aspect, in a fixed order;
//   * the target aspect's polarity words fully determine the label
//     (P(Y | target sentiment tokens) = 1);
//   * other aspects' labels are only *correlated* with the target label
//     (the decorrelation knob of Lei et al.'s BeerAdvocate subsets);
//   * an optional shortcut token ("-") is injected with label-dependent
//     probability — the spurious pattern behind the paper's rationale-shift
//     examples (Fig. 2);
//   * gold rationales mark the target aspect's informative tokens, with a
//     knob for matching each dataset's annotation sparsity (Table IX).
#ifndef DAR_DATASETS_SYNTHETIC_REVIEW_H_
#define DAR_DATASETS_SYNTHETIC_REVIEW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/batch.h"
#include "data/vocabulary.h"
#include "datasets/lexicon.h"
#include "tensor/random.h"

namespace dar {
namespace datasets {

/// Generation parameters for one aspect-specific dataset.
struct ReviewConfig {
  /// All aspects appearing in a review, in sentence order.
  std::vector<AspectLexicon> aspects;
  /// Which aspect the label (and gold rationale) refers to.
  int target_aspect = 0;
  /// Probability that a non-target aspect copies the target label instead
  /// of drawing an independent fair coin. 0 = fully decorrelated.
  float aspect_correlation = 0.3f;
  /// Sentence length range (tokens), inclusive.
  int min_sentence_len = 5;
  int max_sentence_len = 8;
  /// Number of aspect-specific polarity tokens per sentence, inclusive.
  int min_sentiment_tokens = 2;
  int max_sentiment_tokens = 3;
  /// Number of *generic* sentiment tokens ("good"/"poor") per sentence,
  /// drawn from the shared pools with the sentence's aspect polarity.
  /// These are the tempting-but-wrong selections: from a non-target
  /// sentence they predict the label only through the aspect correlation.
  /// In the target sentence they belong to the gold rationale.
  int generic_sentiment_tokens = 1;
  /// Probability that a polarity token is drawn from the *opposite* pool
  /// (real reviews hedge: "looks great but honestly a bit dull"). Off by
  /// default: it lowers every method's F1 ceiling roughly uniformly; use
  /// it to stress-test robustness rather than to separate methods.
  float polarity_noise = 0.0f;
  /// Include the target sentence's neutral topic tokens in the gold
  /// rationale (raises annotation sparsity toward the Beer levels).
  bool annotate_neutral = true;
  /// Shortcut injection strength in [0, 1): the shortcut token appears with
  /// probability 0.5 + strength/2 in negative reviews and 0.5 - strength/2
  /// in positive ones. 0 keeps the marginal flat (no shortcut signal).
  float shortcut_strength = 0.0f;
  std::string shortcut_token = "-";
};

/// A fully materialized dataset: vocabulary, embedding families, splits.
struct SyntheticDataset {
  data::Vocabulary vocab;
  /// Per-vocab-id semantic family for SyntheticGlove (-1 = none).
  std::vector<int32_t> family;
  std::vector<data::Example> train;
  std::vector<data::Example> dev;
  /// Test split carries gold rationale annotations (as in the paper, only
  /// the test set is annotated).
  std::vector<data::Example> test;
  ReviewConfig config;

  /// Mean fraction of annotated tokens over the test split.
  float AnnotationSparsity() const;
};

/// Deterministic generator for SyntheticDatasets.
class SyntheticReviewGenerator {
 public:
  SyntheticReviewGenerator(ReviewConfig config, uint64_t seed);

  /// Generates class-balanced splits. Train/dev examples are unannotated;
  /// test examples carry gold rationales.
  SyntheticDataset Generate(int64_t num_train, int64_t num_dev,
                            int64_t num_test);

  /// Generates a single example with the given label (annotation optional).
  /// Exposed for tests and examples.
  data::Example MakeExample(const data::Vocabulary& vocab, int64_t label,
                            bool annotate, Pcg32& rng) const;

  /// Builds the vocabulary and family map for this config. The first call
  /// inside Generate() uses the same function; exposed for tests.
  void BuildVocabulary(data::Vocabulary& vocab,
                       std::vector<int32_t>& family) const;

 private:
  ReviewConfig config_;
  Pcg32 rng_;
};

}  // namespace datasets
}  // namespace dar

#endif  // DAR_DATASETS_SYNTHETIC_REVIEW_H_
