#include "datasets/synthetic_review.h"

#include <algorithm>

#include "tensor/check.h"

namespace dar {
namespace datasets {

namespace {

/// Draws a random element of `pool`.
const std::string& Pick(const std::vector<std::string>& pool, Pcg32& rng) {
  DAR_CHECK(!pool.empty());
  return pool[rng.Below(static_cast<uint32_t>(pool.size()))];
}

}  // namespace

float SyntheticDataset::AnnotationSparsity() const {
  double marked = 0.0, total = 0.0;
  for (const data::Example& ex : test) {
    total += static_cast<double>(ex.tokens.size());
    for (uint8_t r : ex.rationale) marked += r;
  }
  return total > 0.0 ? static_cast<float>(marked / total) : 0.0f;
}

SyntheticReviewGenerator::SyntheticReviewGenerator(ReviewConfig config,
                                                   uint64_t seed)
    : config_(std::move(config)), rng_(seed, /*stream=*/0x5eed) {
  DAR_CHECK(!config_.aspects.empty());
  DAR_CHECK(config_.target_aspect >= 0 &&
            config_.target_aspect < static_cast<int>(config_.aspects.size()));
  DAR_CHECK_GE(config_.min_sentence_len, 3);
  DAR_CHECK_LE(config_.min_sentence_len, config_.max_sentence_len);
  DAR_CHECK_GE(config_.min_sentiment_tokens, 1);
  DAR_CHECK_LE(config_.min_sentiment_tokens, config_.max_sentiment_tokens);
  DAR_CHECK(config_.shortcut_strength >= 0.0f && config_.shortcut_strength < 1.0f);
}

void SyntheticReviewGenerator::BuildVocabulary(
    data::Vocabulary& vocab, std::vector<int32_t>& family) const {
  // Reserve a mask token for transformer pretraining right after <unk>.
  auto add = [&](const std::string& tok, int32_t fam) {
    int64_t id = vocab.AddToken(tok);
    if (id >= static_cast<int64_t>(family.size())) {
      family.resize(static_cast<size_t>(id) + 1, -1);
    }
    family[static_cast<size_t>(id)] = fam;
  };
  family.assign(static_cast<size_t>(vocab.size()), -1);
  add("<mask>", -1);
  int32_t next_family = 0;
  for (const AspectLexicon& aspect : config_.aspects) {
    int32_t pos_fam = next_family++;
    int32_t neg_fam = next_family++;
    int32_t neu_fam = next_family++;
    for (const std::string& t : aspect.positive) add(t, pos_fam);
    for (const std::string& t : aspect.negative) add(t, neg_fam);
    for (const std::string& t : aspect.neutral) add(t, neu_fam);
  }
  int32_t generic_pos_fam = next_family++;
  int32_t generic_neg_fam = next_family++;
  for (const std::string& t : GenericPositiveTokens()) add(t, generic_pos_fam);
  for (const std::string& t : GenericNegativeTokens()) add(t, generic_neg_fam);
  for (const std::string& t : FillerTokens()) add(t, -1);
  for (const std::string& t : PunctuationTokens()) add(t, -1);
  add(config_.shortcut_token, -1);
}

data::Example SyntheticReviewGenerator::MakeExample(
    const data::Vocabulary& vocab, int64_t label, bool annotate,
    Pcg32& rng) const {
  DAR_CHECK(label == 0 || label == 1);
  data::Example ex;
  ex.label = label;

  const std::vector<std::string>& fillers = FillerTokens();
  int64_t period_id = vocab.IdOrUnk(".");

  for (size_t ai = 0; ai < config_.aspects.size(); ++ai) {
    const AspectLexicon& aspect = config_.aspects[ai];
    bool is_target = static_cast<int>(ai) == config_.target_aspect;
    // Non-target aspect labels are correlated with, not determined by, the
    // review label — the structure that lures RNP toward wrong aspects.
    int64_t aspect_label =
        is_target ? label
                  : (rng.Bernoulli(config_.aspect_correlation)
                         ? label
                         : static_cast<int64_t>(rng.Bernoulli(0.5f)));

    int len = config_.min_sentence_len +
              static_cast<int>(rng.Below(static_cast<uint32_t>(
                  config_.max_sentence_len - config_.min_sentence_len + 1)));
    int num_sent = config_.min_sentiment_tokens +
                   static_cast<int>(rng.Below(static_cast<uint32_t>(
                       config_.max_sentiment_tokens -
                       config_.min_sentiment_tokens + 1)));
    int num_neutral = 1 + static_cast<int>(rng.Below(2));  // 1-2 topic words
    num_sent = std::min(num_sent, len - num_neutral - 1);
    num_sent = std::max(num_sent, 1);

    // Compose the sentence: topic words, polarity words, fillers; polarity
    // words land at random interior positions.
    struct Slot {
      int64_t id;
      bool is_rationale;
    };
    std::vector<Slot> sentence;
    sentence.reserve(static_cast<size_t>(len) + 1);
    for (int i = 0; i < num_neutral; ++i) {
      sentence.push_back({vocab.IdOrUnk(Pick(aspect.neutral, rng)),
                          is_target && config_.annotate_neutral});
    }
    for (int i = 0; i < num_sent; ++i) {
      bool flip = rng.Bernoulli(config_.polarity_noise);
      bool positive = (aspect_label == 1) != flip;
      const std::vector<std::string>& pool =
          positive ? aspect.positive : aspect.negative;
      // Flipped tokens are *not* part of the gold rationale: annotators
      // mark the evidence for the label, not the hedges against it.
      sentence.push_back({vocab.IdOrUnk(Pick(pool, rng)), is_target && !flip});
    }
    for (int i = 0; i < config_.generic_sentiment_tokens &&
                    static_cast<int>(sentence.size()) < len;
         ++i) {
      bool flip = rng.Bernoulli(config_.polarity_noise);
      bool positive = (aspect_label == 1) != flip;
      const std::vector<std::string>& pool =
          positive ? GenericPositiveTokens() : GenericNegativeTokens();
      sentence.push_back({vocab.IdOrUnk(Pick(pool, rng)), is_target && !flip});
    }
    while (static_cast<int>(sentence.size()) < len) {
      sentence.push_back({vocab.IdOrUnk(Pick(fillers, rng)), false});
    }
    // Shuffle the sentence body so informative tokens sit anywhere.
    for (size_t i = sentence.size() - 1; i > 0; --i) {
      size_t j = rng.Below(static_cast<uint32_t>(i + 1));
      std::swap(sentence[i], sentence[j]);
    }
    sentence.push_back({period_id, false});

    for (const Slot& s : sentence) {
      ex.tokens.push_back(s.id);
      if (annotate) ex.rationale.push_back(s.is_rationale ? 1 : 0);
    }
  }

  // Shortcut injection: a trivial but distinguishable pattern correlated
  // with the label (the paper's "-" example). Inserted at a random
  // position so it is not trivially locatable.
  if (config_.shortcut_strength > 0.0f) {
    float p = label == 0 ? 0.5f + config_.shortcut_strength / 2.0f
                         : 0.5f - config_.shortcut_strength / 2.0f;
    if (rng.Bernoulli(p)) {
      size_t pos = rng.Below(static_cast<uint32_t>(ex.tokens.size() + 1));
      ex.tokens.insert(ex.tokens.begin() + static_cast<int64_t>(pos),
                       vocab.IdOrUnk(config_.shortcut_token));
      if (annotate) {
        ex.rationale.insert(ex.rationale.begin() + static_cast<int64_t>(pos), 0);
      }
    }
  }
  return ex;
}

SyntheticDataset SyntheticReviewGenerator::Generate(int64_t num_train,
                                                    int64_t num_dev,
                                                    int64_t num_test) {
  SyntheticDataset ds;
  ds.config = config_;
  BuildVocabulary(ds.vocab, ds.family);

  auto fill = [&](std::vector<data::Example>& out, int64_t n, bool annotate) {
    out.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      int64_t label = i % 2;  // class-balanced, as in the paper's Table IX
      out.push_back(MakeExample(ds.vocab, label, annotate, rng_));
    }
    // Shuffle so batches are not label-alternating.
    for (size_t i = out.size() - 1; i > 0; --i) {
      size_t j = rng_.Below(static_cast<uint32_t>(i + 1));
      std::swap(out[i], out[j]);
    }
  };
  fill(ds.train, num_train, /*annotate=*/false);
  fill(ds.dev, num_dev, /*annotate=*/false);
  fill(ds.test, num_test, /*annotate=*/true);
  return ds;
}

}  // namespace datasets
}  // namespace dar
