#include "datasets/lexicon.h"

namespace dar {
namespace datasets {

namespace {

// Function-local static references (never destroyed) keep these collections
// safe under the no-nontrivial-global-destructor rule.

const std::vector<AspectLexicon>& BuildBeerAspects() {
  static const auto& aspects = *new std::vector<AspectLexicon>{
      {"appearance",
       {"golden", "clear", "sparkling", "creamy", "radiant", "bright",
        "inviting", "gorgeous", "glossy", "luminous", "amber", "brilliant"},
       {"murky", "cloudy", "dull", "pale", "lifeless", "muddy", "drab",
        "hazy", "ugly", "greyish", "flat", "abysmal"},
       {"head", "color", "pour", "glass", "lacing", "hue", "foam",
        "appearance", "retention"}},
      {"aroma",
       {"fragrant", "citrusy", "floral", "fresh", "aromatic", "honeyed",
        "spicy", "perfumed", "zesty", "piney", "fruity", "toasty"},
       {"stale", "musty", "skunky", "rancid", "metallic", "faint",
        "cardboard", "moldy", "acrid", "sulfuric", "soapy", "grainy"},
       {"aroma", "smell", "nose", "scent", "whiff", "bouquet", "notes"}},
      {"palate",
       {"smooth", "velvety", "crisp", "balanced", "rich", "rounded", "silky",
        "lively", "refreshing", "luscious", "plush", "satisfying"},
       {"watery", "harsh", "thin", "astringent", "chalky", "cloying",
        "rough", "bland", "fizzy", "syrupy", "coarse", "sharp"},
       {"palate", "mouthfeel", "body", "carbonation", "texture", "finish"}},
      {"taste",
       {"delicious", "tasty", "flavorful", "malty", "hoppy", "caramelly"},
       {"sour", "burnt", "gross", "vinegary", "bitter", "medicinal"},
       {"taste", "flavor", "aftertaste", "sweetness"}},
      {"overall",
       {"excellent", "great", "awesome", "superb", "recommend", "wonderful"},
       {"terrible", "awful", "disappointing", "bad", "avoid", "mediocre"},
       {"overall", "verdict", "impression", "value"}}};
  return aspects;
}

const std::vector<AspectLexicon>& BuildHotelAspects() {
  static const auto& aspects = *new std::vector<AspectLexicon>{
      {"location",
       {"central", "convenient", "walkable", "scenic", "accessible", "prime",
        "quiet", "charming", "ideal", "perfect-spot"},
       {"remote", "sketchy", "isolated", "inconvenient", "far", "dodgy",
        "loud", "industrial", "desolate", "awkward"},
       {"location", "area", "neighborhood", "distance", "station",
        "downtown", "street", "subway"}},
      {"service",
       {"friendly", "attentive", "helpful", "courteous", "prompt",
        "welcoming", "gracious", "efficient", "accommodating", "warm"},
       {"rude", "slow", "dismissive", "unhelpful", "surly", "neglectful",
        "indifferent", "hostile", "incompetent", "curt"},
       {"service", "staff", "reception", "concierge", "checkin", "front-desk",
        "manager", "porter"}},
      {"cleanliness",
       {"spotless", "immaculate", "tidy", "pristine", "sanitized",
        "gleaming", "scrubbed", "polished", "hygienic", "laundered"},
       {"dirty", "stained", "dusty", "grimy", "smelly", "moldy", "sticky",
        "filthy", "soiled", "dingy"},
       {"room", "bathroom", "sheets", "carpet", "towels", "housekeeping",
        "linens", "shower"}},
      {"breakfast",
       {"generous", "fresh-baked", "varied", "plentiful", "hot", "hearty"},
       {"meager", "cold", "repetitive", "overpriced", "soggy", "scarce"},
       {"breakfast", "buffet", "coffee", "pastries"}},
      {"amenities",
       {"modern", "spacious", "comfortable", "luxurious", "well-equipped",
        "cozy"},
       {"outdated", "cramped", "broken", "noisy", "tiny", "shabby"},
       {"amenities", "pool", "gym", "wifi", "elevator", "parking"}}};
  return aspects;
}

}  // namespace

const std::vector<AspectLexicon>& BeerAspects() {
  static const auto& aspects = BuildBeerAspects();
  return aspects;
}

const std::vector<AspectLexicon>& HotelAspects() {
  static const auto& aspects = BuildHotelAspects();
  return aspects;
}

const std::vector<std::string>& FillerTokens() {
  static const auto& fillers = *new std::vector<std::string>{
      "the",   "a",     "is",    "was",    "very",  "quite",  "with",
      "and",   "but",   "really", "i",     "we",    "it",     "had",
      "this",  "that",  "there", "some",   "of",    "to",     "in",
      "for",   "on",    "my",    "our",    "again", "also",   "just",
      "bit",   "one",   "two",   "night",  "day",   "time",   "place",
      "thing", "got",   "went",  "came",   "looked", "seemed", "felt",
      "stayed", "tried", "little", "much",  "more",  "while",  "when",
      "here"};
  return fillers;
}

const std::vector<std::string>& GenericPositiveTokens() {
  static const auto& tokens = *new std::vector<std::string>{
      "good", "great", "nice", "pleasant", "fine", "solid", "lovely",
      "impressive"};
  return tokens;
}

const std::vector<std::string>& GenericNegativeTokens() {
  static const auto& tokens = *new std::vector<std::string>{
      "bad", "poor", "awful", "unpleasant", "weak", "lousy", "horrible",
      "subpar"};
  return tokens;
}

const std::vector<std::string>& PunctuationTokens() {
  static const auto& punct = *new std::vector<std::string>{".", ",", "!", "-", ";"};
  return punct;
}

}  // namespace datasets
}  // namespace dar
