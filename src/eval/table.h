// ASCII table rendering for the benchmark binaries.
#ifndef DAR_EVAL_TABLE_H_
#define DAR_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace dar {
namespace eval {

/// Accumulates rows of strings and prints them with aligned columns —
/// the output format of every bench/table*_ binary.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal rule before the next row.
  void AddRule();

  /// Renders the table (header, rule, rows) to a string.
  std::string Render() const;

  /// Prints Render() to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row = rule
};

/// "79.8" from 0.798 (the paper reports percentages with one decimal).
std::string FormatPercent(float fraction);

/// Formats a float with `decimals` digits.
std::string FormatFloat(float value, int decimals = 1);

}  // namespace eval
}  // namespace dar

#endif  // DAR_EVAL_TABLE_H_
