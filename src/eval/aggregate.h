// Multi-seed aggregation of experiment results.
//
// Single-seed F1 cells move by a few points on the synthetic benchmarks;
// this helper runs a method across seeds and reports mean ± standard
// deviation, used by examples and by users who want tighter comparisons
// than the single-seed bench defaults.
#ifndef DAR_EVAL_AGGREGATE_H_
#define DAR_EVAL_AGGREGATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/experiment.h"

namespace dar {
namespace eval {

/// Mean and (population) standard deviation of one metric across seeds.
struct MetricSummary {
  float mean = 0.0f;
  float stddev = 0.0f;

  /// "64.2 ± 2.1" using percentage formatting.
  std::string ToString() const;
};

/// Aggregated results of running one method across seeds.
struct AggregateResult {
  std::string method;
  int64_t num_seeds = 0;
  MetricSummary sparsity;
  MetricSummary rationale_acc;
  MetricSummary precision;
  MetricSummary recall;
  MetricSummary f1;
  MetricSummary full_text_acc;
};

/// Computes mean/stddev over a set of per-seed results.
AggregateResult Aggregate(const std::string& method,
                          const std::vector<MethodResult>& results);

/// Trains `method` once per seed (fresh model each time; the dataset is
/// shared, so only initialization/sampling vary) and aggregates.
AggregateResult RunAcrossSeeds(const std::string& method,
                               const datasets::SyntheticDataset& dataset,
                               const core::TrainConfig& base_config,
                               const std::vector<uint64_t>& seeds);

}  // namespace eval
}  // namespace dar

#endif  // DAR_EVAL_AGGREGATE_H_
