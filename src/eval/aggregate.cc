#include "eval/aggregate.h"

#include <cmath>
#include <cstdio>

#include "tensor/check.h"

namespace dar {
namespace eval {

namespace {

MetricSummary Summarize(const std::vector<float>& values) {
  MetricSummary summary;
  if (values.empty()) return summary;
  double sum = 0.0;
  for (float v : values) sum += v;
  summary.mean = static_cast<float>(sum / static_cast<double>(values.size()));
  double var = 0.0;
  for (float v : values) {
    double d = v - summary.mean;
    var += d * d;
  }
  summary.stddev = static_cast<float>(
      std::sqrt(var / static_cast<double>(values.size())));
  return summary;
}

}  // namespace

std::string MetricSummary::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f ± %.1f", 100.0f * mean,
                100.0f * stddev);
  return buf;
}

AggregateResult Aggregate(const std::string& method,
                          const std::vector<MethodResult>& results) {
  DAR_CHECK(!results.empty());
  AggregateResult aggregate;
  aggregate.method = method;
  aggregate.num_seeds = static_cast<int64_t>(results.size());
  std::vector<float> s, acc, p, r, f1, full;
  for (const MethodResult& result : results) {
    s.push_back(result.rationale.sparsity);
    acc.push_back(result.rationale_acc);
    p.push_back(result.rationale.precision);
    r.push_back(result.rationale.recall);
    f1.push_back(result.rationale.f1);
    full.push_back(result.full_text_acc);
  }
  aggregate.sparsity = Summarize(s);
  aggregate.rationale_acc = Summarize(acc);
  aggregate.precision = Summarize(p);
  aggregate.recall = Summarize(r);
  aggregate.f1 = Summarize(f1);
  aggregate.full_text_acc = Summarize(full);
  return aggregate;
}

AggregateResult RunAcrossSeeds(const std::string& method,
                               const datasets::SyntheticDataset& dataset,
                               const core::TrainConfig& base_config,
                               const std::vector<uint64_t>& seeds) {
  DAR_CHECK(!seeds.empty());
  std::vector<MethodResult> results;
  results.reserve(seeds.size());
  for (uint64_t seed : seeds) {
    core::TrainConfig config = base_config;
    config.seed = seed;
    auto model = MakeMethod(method, dataset, config);
    results.push_back(TrainAndEvaluate(*model, dataset));
  }
  return Aggregate(method, results);
}

}  // namespace eval
}  // namespace dar
