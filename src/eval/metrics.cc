#include "eval/metrics.h"

#include "tensor/check.h"

namespace dar {
namespace eval {

void RationaleMetricsAccumulator::Add(const Tensor& mask,
                                      const data::Batch& batch) {
  DAR_CHECK(mask.shape() == batch.valid.shape());
  int64_t b = mask.size(0), t = mask.size(1);
  for (int64_t i = 0; i < b; ++i) {
    const std::vector<uint8_t>& gold = batch.rationales[static_cast<size_t>(i)];
    for (int64_t j = 0; j < t; ++j) {
      if (batch.valid.at(i, j) == 0.0f) continue;
      valid_ += 1.0;
      bool sel = mask.at(i, j) > 0.5f;
      if (sel) selected_ += 1.0;
      if (!gold.empty()) {
        bool is_gold = gold[static_cast<size_t>(j)] != 0;
        if (is_gold) gold_ += 1.0;
        if (sel && is_gold) overlap_ += 1.0;
      }
    }
  }
}

RationaleMetrics RationaleMetricsAccumulator::Finalize() const {
  RationaleMetrics m;
  m.sparsity = valid_ > 0.0 ? static_cast<float>(selected_ / valid_) : 0.0f;
  m.precision =
      selected_ > 0.0 ? static_cast<float>(overlap_ / selected_) : 0.0f;
  m.recall = gold_ > 0.0 ? static_cast<float>(overlap_ / gold_) : 0.0f;
  m.f1 = (m.precision + m.recall) > 0.0f
             ? 2.0f * m.precision * m.recall / (m.precision + m.recall)
             : 0.0f;
  return m;
}

BinaryPrf PositiveClassPrf(const std::vector<int64_t>& predictions,
                           const std::vector<int64_t>& labels) {
  DAR_CHECK_EQ(predictions.size(), labels.size());
  int64_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    bool pred_pos = predictions[i] == 1;
    bool is_pos = labels[i] == 1;
    if (pred_pos && is_pos) ++tp;
    if (pred_pos && !is_pos) ++fp;
    if (!pred_pos && is_pos) ++fn;
  }
  BinaryPrf prf;
  if (tp + fp == 0) {
    // Collapsed predictor: never predicts positive (paper Table I "nan").
    prf.defined = false;
    prf.precision = 0.0f;
  } else {
    prf.precision = static_cast<float>(tp) / static_cast<float>(tp + fp);
  }
  prf.recall =
      (tp + fn) > 0 ? static_cast<float>(tp) / static_cast<float>(tp + fn) : 0.0f;
  prf.f1 = (prf.defined && prf.precision + prf.recall > 0.0f)
               ? 2.0f * prf.precision * prf.recall / (prf.precision + prf.recall)
               : 0.0f;
  return prf;
}

}  // namespace eval
}  // namespace dar
