#include "eval/table.h"

#include <cstdio>
#include <sstream>
#include <utility>

namespace dar {
namespace eval {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRule() { rows_.emplace_back(); }

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto rule = [&] {
    for (size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };

  rule();
  print_row(header_);
  rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      rule();
    } else {
      print_row(row);
    }
  }
  rule();
  return os.str();
}

void TablePrinter::Print() const {
  std::fputs(Render().c_str(), stdout);
  std::fflush(stdout);
}

std::string FormatPercent(float fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", fraction * 100.0f);
  return buf;
}

std::string FormatFloat(float value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace eval
}  // namespace dar
