// Rationale-quality and label-prediction metrics.
#ifndef DAR_EVAL_METRICS_H_
#define DAR_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "data/batch.h"
#include "tensor/tensor.h"

namespace dar {
namespace eval {

/// Token-overlap metrics against gold rationales (the paper's P/R/F1) plus
/// selection sparsity (the paper's S).
struct RationaleMetrics {
  float sparsity = 0.0f;
  float precision = 0.0f;
  float recall = 0.0f;
  float f1 = 0.0f;
};

/// Micro-averaged accumulator over batches: counts are pooled across all
/// tokens of the split before the final P/R/F1 — matching how the
/// rationalization literature reports token overlap.
class RationaleMetricsAccumulator {
 public:
  /// `mask` is the model's hard selection [B, T]; gold annotations and
  /// validity come from `batch`. Batches whose examples carry no
  /// annotation contribute to sparsity only.
  void Add(const Tensor& mask, const data::Batch& batch);

  RationaleMetrics Finalize() const;

 private:
  double selected_ = 0.0;
  double gold_ = 0.0;
  double overlap_ = 0.0;
  double valid_ = 0.0;
};

/// Precision/recall/F1 of the *positive class* of label predictions —
/// the paper's Table I probe that exposes a predictor collapsed onto one
/// class ("nan" precision when it never predicts positive).
struct BinaryPrf {
  float precision = 0.0f;
  float recall = 0.0f;
  float f1 = 0.0f;
  /// False when the model never predicted the positive class (the paper
  /// prints "nan" for precision/F1 in that case).
  bool defined = true;
};

BinaryPrf PositiveClassPrf(const std::vector<int64_t>& predictions,
                           const std::vector<int64_t>& labels);

}  // namespace eval
}  // namespace dar

#endif  // DAR_EVAL_METRICS_H_
