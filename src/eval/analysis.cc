#include "eval/analysis.h"

#include <algorithm>
#include <cstdio>

#include "data/dataloader.h"
#include "tensor/check.h"

namespace dar {
namespace eval {

float TokenSelectionRate(core::RationalizerBase& model,
                         const std::vector<data::Example>& examples,
                         int64_t token_id, int64_t batch_size) {
  data::DataLoader loader(examples, batch_size, /*shuffle=*/false);
  int64_t with = 0, total = 0;
  for (const data::Batch& batch : loader.Sequential()) {
    Tensor mask = model.EvalMask(batch);
    for (int64_t i = 0; i < batch.batch_size(); ++i) {
      for (int64_t t = 0; t < batch.max_len(); ++t) {
        if (mask.at(i, t) > 0.5f &&
            batch.tokens[static_cast<size_t>(i)][static_cast<size_t>(t)] ==
                token_id) {
          ++with;
          break;
        }
      }
      ++total;
    }
  }
  return total > 0 ? static_cast<float>(with) / static_cast<float>(total)
                   : 0.0f;
}

float TokenSelectionStats::Rate(int64_t token_id) const {
  size_t id = static_cast<size_t>(token_id);
  DAR_CHECK_LT(id, occurrences.size());
  return occurrences[id] > 0 ? static_cast<float>(selected[id]) /
                                   static_cast<float>(occurrences[id])
                             : 0.0f;
}

TokenSelectionStats ComputeTokenSelectionStats(
    core::RationalizerBase& model, const std::vector<data::Example>& examples,
    int64_t vocab_size, int64_t batch_size) {
  TokenSelectionStats stats;
  stats.occurrences.assign(static_cast<size_t>(vocab_size), 0);
  stats.selected.assign(static_cast<size_t>(vocab_size), 0);
  data::DataLoader loader(examples, batch_size, /*shuffle=*/false);
  for (const data::Batch& batch : loader.Sequential()) {
    Tensor mask = model.EvalMask(batch);
    for (int64_t i = 0; i < batch.batch_size(); ++i) {
      for (int64_t t = 0; t < batch.max_len(); ++t) {
        if (batch.valid.at(i, t) == 0.0f) continue;
        int64_t id =
            batch.tokens[static_cast<size_t>(i)][static_cast<size_t>(t)];
        DAR_CHECK(id >= 0 && id < vocab_size);
        ++stats.occurrences[static_cast<size_t>(id)];
        if (mask.at(i, t) > 0.5f) ++stats.selected[static_cast<size_t>(id)];
      }
    }
  }
  return stats;
}

std::vector<std::string> MostSelectedTokens(const TokenSelectionStats& stats,
                                            const data::Vocabulary& vocab,
                                            int64_t top_k,
                                            int64_t min_occurrences) {
  std::vector<std::pair<float, int64_t>> rated;
  for (size_t id = 0; id < stats.occurrences.size(); ++id) {
    if (stats.occurrences[id] >= min_occurrences) {
      rated.emplace_back(stats.Rate(static_cast<int64_t>(id)),
                         static_cast<int64_t>(id));
    }
  }
  std::sort(rated.begin(), rated.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  for (int64_t k = 0; k < top_k && k < static_cast<int64_t>(rated.size());
       ++k) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s (%.0f%%)",
                  vocab.Token(rated[static_cast<size_t>(k)].second).c_str(),
                  100.0f * rated[static_cast<size_t>(k)].first);
    out.push_back(buf);
  }
  return out;
}

}  // namespace eval
}  // namespace dar
