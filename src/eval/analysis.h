// Rationale analysis utilities: which tokens does a trained model select?
//
// These diagnostics power the rationale-shift demos: a healthy model
// selects aspect-polarity words; a shifted model selects the spurious
// shortcut token instead.
#ifndef DAR_EVAL_ANALYSIS_H_
#define DAR_EVAL_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/rationalizer.h"
#include "data/batch.h"
#include "data/vocabulary.h"

namespace dar {
namespace eval {

/// Fraction of examples whose selected rationale contains `token_id`.
float TokenSelectionRate(core::RationalizerBase& model,
                         const std::vector<data::Example>& examples,
                         int64_t token_id, int64_t batch_size = 50);

/// Per-token selection statistics over a split.
struct TokenSelectionStats {
  /// selected[id] / occurrences[id] = how often token id is selected when
  /// it appears.
  std::vector<int64_t> occurrences;
  std::vector<int64_t> selected;

  /// Selection rate of one token (0 if it never occurs).
  float Rate(int64_t token_id) const;
};

/// Counts, for every vocabulary id, how often the model selects it.
TokenSelectionStats ComputeTokenSelectionStats(
    core::RationalizerBase& model, const std::vector<data::Example>& examples,
    int64_t vocab_size, int64_t batch_size = 50);

/// The `top_k` most-selected tokens (by rate, among tokens occurring at
/// least `min_occurrences` times), rendered as "token (rate%)" strings.
std::vector<std::string> MostSelectedTokens(const TokenSelectionStats& stats,
                                            const data::Vocabulary& vocab,
                                            int64_t top_k,
                                            int64_t min_occurrences = 5);

}  // namespace eval
}  // namespace dar

#endif  // DAR_EVAL_ANALYSIS_H_
