#include "eval/experiment.h"

#include <utility>

#include "core/baselines/a2r.h"
#include "core/baselines/car.h"
#include "core/baselines/dmr.h"
#include "core/baselines/inter_rat.h"
#include "core/baselines/spectra.h"
#include "core/baselines/three_player.h"
#include "core/baselines/vib.h"
#include "core/dar.h"
#include "core/rnp.h"
#include "core/sentence_level.h"
#include "data/dataloader.h"
#include "data/synthetic_glove.h"
#include "nn/loss.h"
#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace eval {

Tensor BuildEmbeddings(const datasets::SyntheticDataset& dataset,
                       const core::TrainConfig& config) {
  data::SyntheticGloveConfig glove;
  glove.dim = config.embedding_dim;
  // The embedding table is part of the (simulated) pretrained environment:
  // it depends on the dataset seed only, never on the method, so every
  // method sees identical vectors — as all paper baselines share GloVe.
  Pcg32 rng(config.seed ^ 0x610c3ULL, 7);
  return BuildSyntheticGlove(dataset.family, glove, rng);
}

std::unique_ptr<core::RationalizerBase> MakeMethod(
    const std::string& name, const datasets::SyntheticDataset& dataset,
    const core::TrainConfig& config) {
  Tensor embeddings = BuildEmbeddings(dataset, config);
  if (name == "RNP") {
    return std::make_unique<core::RnpModel>(std::move(embeddings), config);
  }
  if (name == "DAR") {
    return std::make_unique<core::DarModel>(std::move(embeddings), config);
  }
  if (name == "DAR-cotrained") {
    core::DarModel::Options options;
    options.pretrain_discriminator = false;
    options.freeze_discriminator = false;
    return std::make_unique<core::DarModel>(std::move(embeddings), config,
                                            options);
  }
  if (name == "DMR") {
    return std::make_unique<core::DmrModel>(std::move(embeddings), config);
  }
  if (name == "A2R") {
    return std::make_unique<core::A2rModel>(std::move(embeddings), config);
  }
  if (name == "Inter_RAT") {
    return std::make_unique<core::InterRatModel>(std::move(embeddings), config);
  }
  if (name == "CAR") {
    return std::make_unique<core::CarModel>(std::move(embeddings), config);
  }
  if (name == "3PLAYER") {
    return std::make_unique<core::ThreePlayerModel>(std::move(embeddings),
                                                    config);
  }
  if (name == "VIB") {
    return std::make_unique<core::VibModel>(std::move(embeddings), config);
  }
  if (name == "SPECTRA") {
    return std::make_unique<core::SpectraModel>(std::move(embeddings), config);
  }
  if (name == "RNP*") {
    return std::make_unique<core::SentenceRnpModel>(
        std::move(embeddings), config, dataset.vocab.IdOrUnk("."));
  }
  if (name == "A2R*") {
    return std::make_unique<core::SentenceA2rModel>(
        std::move(embeddings), config, dataset.vocab.IdOrUnk("."));
  }
  DAR_CHECK_MSG(false, "unknown method name");
  return nullptr;
}

MethodResult EvaluateOnTest(core::RationalizerBase& model,
                            const datasets::SyntheticDataset& dataset) {
  MethodResult result;
  result.method = model.name();
  model.SetTraining(false);

  data::DataLoader loader(dataset.test, model.config().batch_size,
                          /*shuffle=*/false);
  RationaleMetricsAccumulator accumulator;
  int64_t rationale_correct = 0, full_correct = 0, total = 0;
  std::vector<int64_t> full_preds, labels;
  for (const data::Batch& batch : loader.Sequential()) {
    Tensor mask = model.EvalMask(batch);
    accumulator.Add(mask, batch);

    Tensor rationale_logits = model.PredictLogits(batch, mask);
    std::vector<int64_t> preds = ArgMaxRows(rationale_logits);
    Tensor full_logits = model.PredictLogits(batch, batch.valid);
    std::vector<int64_t> fpreds = ArgMaxRows(full_logits);
    for (size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++rationale_correct;
      if (fpreds[i] == batch.labels[i]) ++full_correct;
      full_preds.push_back(fpreds[i]);
      labels.push_back(batch.labels[i]);
    }
    total += batch.batch_size();
  }

  result.rationale = accumulator.Finalize();
  result.rationale_acc =
      total > 0 ? static_cast<float>(rationale_correct) / static_cast<float>(total)
                : 0.0f;
  result.full_text_acc =
      total > 0 ? static_cast<float>(full_correct) / static_cast<float>(total)
                : 0.0f;
  result.full_text_prf = PositiveClassPrf(full_preds, labels);
  return result;
}

MethodResult TrainAndEvaluate(core::RationalizerBase& model,
                              const datasets::SyntheticDataset& dataset,
                              bool verbose) {
  core::TrainRun run = core::Fit(model, dataset, verbose);
  MethodResult result = EvaluateOnTest(model, dataset);
  result.train_run = std::move(run);
  return result;
}

}  // namespace eval
}  // namespace dar
