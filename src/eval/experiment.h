// End-to-end experiment running: method factory, training, evaluation.
#ifndef DAR_EVAL_EXPERIMENT_H_
#define DAR_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>

#include "core/rationalizer.h"
#include "core/trainer.h"
#include "datasets/synthetic_review.h"
#include "eval/metrics.h"

namespace dar {
namespace eval {

/// Everything a paper-table row needs about one trained method.
struct MethodResult {
  std::string method;
  /// Rationale overlap metrics on the annotated test set (S/P/R/F1).
  RationaleMetrics rationale;
  /// Predictive accuracy with the selected rationale as input (Acc).
  float rationale_acc = 0.0f;
  /// Predictive accuracy with the full text as input (Fig. 3 / Fig. 6).
  float full_text_acc = 0.0f;
  /// Positive-class P/R/F1 of the full-text predictions (Table I).
  BinaryPrf full_text_prf;
  /// Training trace (per-epoch dev accuracy, best epoch).
  core::TrainRun train_run;
};

/// Builds the shared synthetic-GloVe table for a dataset under `config`.
Tensor BuildEmbeddings(const datasets::SyntheticDataset& dataset,
                       const core::TrainConfig& config);

/// Instantiates a method by name: "RNP", "DAR", "DMR", "A2R", "Inter_RAT",
/// "CAR", "3PLAYER", "VIB", "SPECTRA", the sentence-level protocols
/// "RNP*" / "A2R*" (the paper's "os" rows), and the ablation arm
/// "DAR-cotrained" (unfrozen, unpretrained discriminator). Aborts on an
/// unknown name.
std::unique_ptr<core::RationalizerBase> MakeMethod(
    const std::string& name, const datasets::SyntheticDataset& dataset,
    const core::TrainConfig& config);

/// Evaluates a (trained) model on the dataset's test split.
MethodResult EvaluateOnTest(core::RationalizerBase& model,
                            const datasets::SyntheticDataset& dataset);

/// Fit + EvaluateOnTest in one call.
MethodResult TrainAndEvaluate(core::RationalizerBase& model,
                              const datasets::SyntheticDataset& dataset,
                              bool verbose = false);

}  // namespace eval
}  // namespace dar

#endif  // DAR_EVAL_EXPERIMENT_H_
