#include "core/dar.h"

#include <utility>

#include "core/trainer.h"
#include "nn/loss.h"

namespace dar {
namespace core {

DarModel::DarModel(Tensor embeddings, TrainConfig config)
    : DarModel(std::move(embeddings), config, Options{}) {}

DarModel::DarModel(Tensor embeddings, TrainConfig config, Options options)
    : RationalizerBase(std::move(embeddings), config, "DAR"),
      options_(options),
      discriminator_(embeddings_, config_, rng_) {}

void DarModel::Prepare(const datasets::SyntheticDataset& dataset) {
  if (options_.pretrain_discriminator) {
    // Eq. 4: theta_{P_t}* = argmin H_c(Y, Y^t | X) over the full input.
    discriminator_dev_acc_ = FitFullTextPredictor(
        discriminator_, dataset, config_.pretrain_epochs, config_.batch_size,
        config_.lr, rng_);
  }
  if (options_.freeze_discriminator) {
    discriminator_.SetRequiresGrad(false);
  }
}

ag::Variable DarModel::TrainLoss(const data::Batch& batch) {
  // Eq. 6: H_c(Y, P(Z)) + Omega(M)  [RNP core]  +  H_c(Y, P^t(Z)).
  nn::GumbelMask mask;
  ag::Variable core = RnpCoreLoss(batch, &mask);
  // In the paper's setting the discriminator is frozen: this term's
  // gradient reaches only the generator, through the mask (eq. 5).
  ag::Variable disc_logits = discriminator_.Forward(batch, mask.hard);
  ag::Variable disc_ce = nn::CrossEntropy(disc_logits, batch.labels);
  last_breakdown_.align_ce = disc_ce.value().item();
  last_breakdown_.has_align = true;
  ag::Variable loss = ag::Add(core, ag::MulScalar(disc_ce, config_.aux_weight));
  if (!options_.freeze_discriminator) {
    // Co-trained ablation arm: the auxiliary module also learns the
    // full-text task from scratch during the game (the failure mode the
    // paper attributes to DMR/A2R-style designs).
    ag::Variable full_ce =
        nn::CrossEntropy(discriminator_.ForwardFullText(batch), batch.labels);
    loss = ag::Add(loss, full_ce);
  }
  return loss;
}

std::vector<ag::Variable> DarModel::TrainableParameters() const {
  std::vector<ag::Variable> params = RationalizerBase::TrainableParameters();
  if (!options_.freeze_discriminator) {
    for (const nn::NamedParameter& p : discriminator_.Parameters()) {
      if (p.variable.requires_grad()) params.push_back(p.variable);
    }
  }
  return params;
}

std::unique_ptr<RationalizerBase> DarModel::CloneArchitecture() const {
  // The clone is never Prepare()d: the master pretrains predictor^t once and
  // MirrorFrom copies the frozen result (values + requires_grad) into every
  // replica, so replicas skip eq. 4 entirely.
  return std::make_unique<DarModel>(embeddings(), config(), options_);
}

void DarModel::SetTraining(bool training) {
  RationalizerBase::SetTraining(training);
  // The frozen discriminator always runs in eval mode.
  discriminator_.SetTraining(!options_.freeze_discriminator && training);
}

int64_t DarModel::TotalParameters() const {
  return RationalizerBase::TotalParameters() + CountTrainable(discriminator_);
}

std::vector<nn::NamedModule> DarModel::CheckpointModules() {
  std::vector<nn::NamedModule> modules = RationalizerBase::CheckpointModules();
  modules.push_back({"discriminator", &discriminator_});
  return modules;
}

}  // namespace core
}  // namespace dar
