// DAR — Discriminatively Aligned Rationalization (the paper's method).
//
// DAR augments the RNP game with a third module, predictor^t: a predictor
// *pretrained on the full input* (eq. 4) and *frozen* during the game.
// Feeding the selected rationale to the frozen predictor^t and minimizing
// its cross-entropy (eq. 5) w.r.t. the generator discriminatively aligns
// the rationale distribution with the full-input distribution; the overall
// objective is eq. 6:
//
//   min_{G,P}  H_c(Y, P(Z)) + H_c(Y, P^t(Z)) + Omega(M).
//
// Because predictor^t never sees deviated rationales during its own
// training, it cannot be corrupted by the generator — breaking the
// collusion loop behind rationale shift (Theorem 1).
#ifndef DAR_CORE_DAR_H_
#define DAR_CORE_DAR_H_

#include "core/rationalizer.h"

namespace dar {
namespace core {

/// The DAR model: RNP + frozen, full-text-pretrained discriminator.
class DarModel : public RationalizerBase {
 public:
  /// Ablation switches (bench/ablation_dar exercises these).
  struct Options {
    /// Paper setting: pretrain predictor^t on full text, then freeze. When
    /// false, predictor^t starts random and co-trains with the game
    /// (a DMR-like degradation used as an ablation arm).
    bool pretrain_discriminator = true;
    bool freeze_discriminator = true;
  };

  DarModel(Tensor embeddings, TrainConfig config);
  DarModel(Tensor embeddings, TrainConfig config, Options options);

  /// Pretrains predictor^t on the full input (eq. 4) and freezes it.
  void Prepare(const datasets::SyntheticDataset& dataset) override;

  ag::Variable TrainLoss(const data::Batch& batch) override;

  std::vector<ag::Variable> TrainableParameters() const override;
  std::unique_ptr<RationalizerBase> CloneArchitecture() const override;
  void SetTraining(bool training) override;
  int64_t NumModules() const override { return 3; }  // 1 gen + 2 pred
  int64_t TotalParameters() const override;
  std::vector<nn::NamedModule> CheckpointModules() override;

  Predictor& discriminator() { return discriminator_; }

  /// Dev-set full-text accuracy reached by predictor^t after Prepare().
  float discriminator_dev_accuracy() const { return discriminator_dev_acc_; }

 private:
  Options options_;
  Predictor discriminator_;
  float discriminator_dev_acc_ = 0.0f;
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_DAR_H_
