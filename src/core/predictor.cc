#include "core/predictor.h"

#include <utility>

#include "nn/pooling.h"
#include "tensor/check.h"

namespace dar {
namespace core {

Predictor::Predictor(Tensor pretrained_embeddings, const TrainConfig& config,
                     Pcg32& rng)
    : config_(config),
      embedding_(std::move(pretrained_embeddings), /*trainable=*/false),
      encoder_(MakeEncoder(config, rng)),
      head_(encoder_->output_dim(), config.num_classes, rng) {
  RegisterChild("embedding", &embedding_);
  RegisterChild("encoder", encoder_.get());
  RegisterChild("head", &head_);
}

ag::Variable Predictor::Forward(const data::Batch& batch,
                                const ag::Variable& mask) const {
  ag::Variable embedded = embedding_.Forward(batch.tokens);
  ag::Variable masked = ag::ScaleLastDim(embedded, mask);
  ag::Variable states = encoder_->Encode(masked, batch.valid);
  ag::Variable pooled = nn::MaskedMaxPool(states, batch.valid);
  return head_.Forward(pooled);
}

ag::Variable Predictor::ForwardWithConstMask(const data::Batch& batch,
                                             const Tensor& mask) const {
  return Forward(batch, ag::Variable::Constant(mask));
}

ag::Variable Predictor::EncodeWithConstMask(const data::Batch& batch,
                                            const Tensor& mask,
                                            const Tensor* embedded) const {
  ag::Variable x = embedded != nullptr ? ag::Variable::Constant(*embedded)
                                       : embedding_.Forward(batch.tokens);
  ag::Variable masked = ag::ScaleLastDim(x, ag::Variable::Constant(mask));
  return encoder_->Encode(masked, batch.valid);
}

Tensor Predictor::LogitsFromStatesConst(const Tensor& states,
                                        const Tensor& valid) const {
  ag::Variable pooled =
      nn::MaskedMaxPool(ag::Variable::Constant(states), valid);
  return head_.Forward(pooled).value();
}

ag::Variable Predictor::ForwardFullText(const data::Batch& batch) const {
  return ForwardWithConstMask(batch, batch.valid);
}

ag::Variable Predictor::ForwardMixed(
    const data::Batch& batch,
    const std::vector<std::vector<int64_t>>& alt_tokens,
    const ag::Variable& mask) const {
  DAR_CHECK_EQ(static_cast<int64_t>(alt_tokens.size()), batch.batch_size());
  ag::Variable own = embedding_.Forward(batch.tokens);
  ag::Variable alt = embedding_.Forward(alt_tokens);
  // Z_mixed = M ⊙ X + (1 - M) ⊙ X_alt, restricted to valid positions.
  ag::Variable complement = ag::Mul(ag::AddScalar(ag::Neg(mask), 1.0f),
                                    ag::Variable::Constant(batch.valid));
  ag::Variable mixed = ag::Add(ag::ScaleLastDim(own, mask),
                               ag::ScaleLastDim(alt, complement));
  ag::Variable states = encoder_->Encode(mixed, batch.valid);
  ag::Variable pooled = nn::MaskedMaxPool(states, batch.valid);
  return head_.Forward(pooled);
}

}  // namespace core
}  // namespace dar
