// Data-parallel training engine: shard → replica → reduce → step.
//
// DataParallelTrainer runs the rationalization game of core/trainer.h with
// each minibatch sharded across a serve::ThreadPool. Every shard is
// processed on a full architecture replica of the master model
// (CloneArchitecture + MirrorFrom), its backward pass seeded with
// shard_size / batch_size, and the per-replica gradients are reduced into
// the master parameters before a single optimizer step; the master values
// are then broadcast back to the replicas. Because the training losses in
// this repository are per-example means, the reduced gradient equals the
// sequential full-batch gradient exactly in real arithmetic, and up to
// float summation order in practice (bit-exactly for num_shards == 1).
// tests/parallel_trainer_test.cc is the equivalence harness certifying
// this.
//
// Determinism: Gumbel mask noise is drawn once per minibatch from the
// master RNG (in the order the sequential loop would draw it) and sliced
// per shard, so replicas consume no RNG of their own; with
// deterministic_reduce the reduction order is the shard order. Both
// together make a run a pure function of (seed, num_shards, shard_policy)
// — the worker count never changes a single bit. The only stochastic
// forward pass outside this scheme is Transformer dropout, which draws
// from per-replica RNGs: bit-reproducibility claims require dropout-free
// configs (the BiGRU setting, or transformer.dropout == 0).
#ifndef DAR_CORE_PARALLEL_TRAINER_H_
#define DAR_CORE_PARALLEL_TRAINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/rationalizer.h"
#include "core/trainer.h"
#include "serve/thread_pool.h"

namespace dar {
namespace core {

/// Row index sets of each shard for a batch of `batch_size` rows. The shard
/// count is clamped to [1, batch_size] so no shard is empty (a dropped —
/// empty — shard would starve parameters of gradients, which the optimizer
/// now rejects).
std::vector<std::vector<int64_t>> ShardRowSets(int64_t batch_size,
                                               int64_t num_shards,
                                               ShardPolicy policy);

/// FNV-1a hash of every parameter value (bit pattern) of every checkpoint
/// module. Replica-divergence checks compare these across replicas.
uint64_t ParameterChecksum(RationalizerBase& model);

/// The engine behind Fit(model, dataset, ParallelTrainConfig). Exposed so
/// tests and benches can drive single reduce cycles and inspect replicas.
class DataParallelTrainer {
 public:
  /// `master` must outlive the trainer. Replicas are created lazily (after
  /// the master's Prepare() inside Fit(), or on first use otherwise) so
  /// they mirror the master's post-pretraining state.
  DataParallelTrainer(RationalizerBase& master, ParallelTrainConfig config);

  /// The sequential Fit() protocol (Prepare, Adam, clipping, best-epoch
  /// snapshot restore) with sharded per-batch gradients. `observer` is the
  /// same passive telemetry hook as on the sequential Fit(): loss
  /// components aggregate across shards (shard-size weighted), the
  /// gradient norm is the reduced master norm, and the rationale-shift
  /// gauge is measured on the master model.
  TrainRun Fit(const datasets::SyntheticDataset& dataset, bool verbose = false,
               obs::TrainObserver* observer = nullptr);

  /// One shard → replica → reduce cycle: zeroes the master gradients, runs
  /// per-shard forward/backward on the replicas, reduces into the master
  /// parameters, and returns the batch training loss (per-example mean).
  /// Does NOT step an optimizer. The master (and hence the replicas) should
  /// be in training mode. Callers using this directly on a method with a
  /// Prepare() step (DAR) must run Prepare() first.
  float ReduceGradientsForBatch(const data::Batch& batch);

  /// Loss breakdown of the last ReduceGradientsForBatch() call: the
  /// replicas' per-shard breakdowns combined with the same shard-size
  /// weights as the loss itself. `valid` only if every shard reported one.
  const LossBreakdown& last_batch_breakdown() const {
    return last_batch_breakdown_;
  }

  /// Copies the master parameter values into every replica. Fit() calls
  /// this after each optimizer step.
  void BroadcastParameters();

  /// Number of replicas (== effective shard count). Creates them if needed.
  int64_t num_replicas();

  /// Parameter checksum of replica `i` / of the master, for divergence
  /// tests.
  uint64_t ReplicaChecksum(int64_t i);
  uint64_t MasterChecksum() { return ParameterChecksum(master_); }

  /// Invoked after every optimizer step + broadcast with the global step
  /// index (1-based). The stress suite asserts replica/master checksum
  /// equality here.
  void set_post_step_hook(std::function<void(int64_t)> hook) {
    post_step_hook_ = std::move(hook);
  }

  const ParallelTrainConfig& config() const { return config_; }

 private:
  void EnsureReplicas();
  void SetReplicasTraining(bool training);
  /// Adds replica `s`'s trainable gradients into the master's.
  void AccumulateReplicaGradients(int64_t s);

  RationalizerBase& master_;
  ParallelTrainConfig config_;
  int64_t num_shards_ = 0;  // resolved from config in EnsureReplicas
  std::vector<std::unique_ptr<RationalizerBase>> replicas_;
  std::vector<ag::Variable> master_params_;
  std::vector<std::vector<ag::Variable>> replica_params_;
  std::unique_ptr<serve::ThreadPool> pool_;
  std::function<void(int64_t)> post_step_hook_;
  int64_t step_ = 0;
  LossBreakdown last_batch_breakdown_;
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_PARALLEL_TRAINER_H_
