#include "core/parallel_trainer.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "core/telemetry.h"
#include "data/dataloader.h"
#include "nn/gumbel.h"
#include "obs/trace.h"
#include "optim/adam.h"
#include "optim/clip.h"
#include "sync/mutex.h"
#include "tensor/check.h"

namespace dar {
namespace core {

namespace {

/// Snapshot/restore of parameter values for best-epoch selection (same
/// protocol as the sequential Fit in trainer.cc).
std::vector<Tensor> SnapshotValues(const std::vector<ag::Variable>& params) {
  std::vector<Tensor> values;
  values.reserve(params.size());
  for (const ag::Variable& p : params) values.push_back(p.value());
  return values;
}

void RestoreValues(std::vector<ag::Variable>& params,
                   const std::vector<Tensor>& values) {
  DAR_CHECK_EQ(params.size(), values.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = values[i];
  }
}

/// Extracts the given rows of a [B, T] tensor into a [rows, T] tensor.
Tensor SelectRows(const Tensor& full, const std::vector<int64_t>& rows) {
  DAR_CHECK_EQ(full.dim(), 2);
  const int64_t t = full.size(1);
  Tensor out(Shape{static_cast<int64_t>(rows.size()), t});
  for (size_t i = 0; i < rows.size(); ++i) {
    DAR_CHECK(rows[i] >= 0 && rows[i] < full.size(0));
    std::memcpy(out.data() + static_cast<int64_t>(i) * t,
                full.data() + rows[i] * t, sizeof(float) * t);
  }
  return out;
}

}  // namespace

std::vector<std::vector<int64_t>> ShardRowSets(int64_t batch_size,
                                               int64_t num_shards,
                                               ShardPolicy policy) {
  DAR_CHECK_GT(batch_size, 0);
  const int64_t shards = std::max<int64_t>(1, std::min(num_shards, batch_size));
  std::vector<std::vector<int64_t>> row_sets(shards);
  switch (policy) {
    case ShardPolicy::kContiguous: {
      const int64_t base = batch_size / shards;
      const int64_t rem = batch_size % shards;
      int64_t next = 0;
      for (int64_t s = 0; s < shards; ++s) {
        const int64_t count = base + (s < rem ? 1 : 0);
        row_sets[s].reserve(count);
        for (int64_t i = 0; i < count; ++i) row_sets[s].push_back(next++);
      }
      DAR_CHECK_EQ(next, batch_size);
      break;
    }
    case ShardPolicy::kStrided: {
      for (int64_t r = 0; r < batch_size; ++r) {
        row_sets[r % shards].push_back(r);
      }
      break;
    }
  }
  return row_sets;
}

uint64_t ParameterChecksum(RationalizerBase& model) {
  // FNV-1a over the 32-bit patterns of every parameter element, in the
  // stable CheckpointModules / Parameters order.
  uint64_t h = 1469598103934665603ull;
  for (const nn::NamedModule& named : model.CheckpointModules()) {
    for (const nn::NamedParameter& p : named.module->Parameters()) {
      const Tensor& v = p.variable.value();
      const float* data = v.data();
      const int64_t n = v.numel();
      for (int64_t i = 0; i < n; ++i) {
        uint32_t bits;
        std::memcpy(&bits, &data[i], sizeof(bits));
        h ^= static_cast<uint64_t>(bits);
        h *= 1099511628211ull;
      }
    }
  }
  return h;
}

DataParallelTrainer::DataParallelTrainer(RationalizerBase& master,
                                         ParallelTrainConfig config)
    : master_(master), config_(config) {
  config_.num_workers = std::max(1, config_.num_workers);
  DAR_CHECK_GE(config_.num_shards, 0);
}

void DataParallelTrainer::EnsureReplicas() {
  if (!replicas_.empty()) return;
  num_shards_ =
      config_.num_shards > 0 ? config_.num_shards : config_.num_workers;
  master_params_ = master_.TrainableParameters();
  replicas_.reserve(num_shards_);
  replica_params_.reserve(num_shards_);
  for (int64_t s = 0; s < num_shards_; ++s) {
    std::unique_ptr<RationalizerBase> replica = master_.CloneArchitecture();
    DAR_CHECK_MSG(replica != nullptr,
                  "DataParallelTrainer: the model does not implement "
                  "CloneArchitecture() and cannot be trained data-parallel");
    replica->MirrorFrom(master_);
    replica_params_.push_back(replica->TrainableParameters());
    DAR_CHECK_EQ(replica_params_.back().size(), master_params_.size());
    replicas_.push_back(std::move(replica));
  }
  pool_ = std::make_unique<serve::ThreadPool>(config_.num_workers);
}

void DataParallelTrainer::SetReplicasTraining(bool training) {
  for (std::unique_ptr<RationalizerBase>& replica : replicas_) {
    replica->SetTraining(training);
  }
}

void DataParallelTrainer::AccumulateReplicaGradients(int64_t s) {
  std::vector<ag::Variable>& rep = replica_params_[s];
  for (size_t j = 0; j < master_params_.size(); ++j) {
    if (rep[j].has_grad()) master_params_[j].AccumulateGrad(rep[j].grad());
  }
}

float DataParallelTrainer::ReduceGradientsForBatch(const data::Batch& batch) {
  EnsureReplicas();
  const int64_t b = batch.batch_size();
  DAR_CHECK_GT(b, 0);
  const std::vector<std::vector<int64_t>> row_sets =
      ShardRowSets(b, num_shards_, config_.shard_policy);
  const int64_t shards = static_cast<int64_t>(row_sets.size());

  // Draw the whole batch's Gumbel noise from the master RNG up front — in
  // exactly the flat order the sequential loop would consume it — and hand
  // each shard its row slice. This keeps the parallel run on the sequential
  // RNG sequence and makes replica execution deterministic no matter which
  // worker thread picks up which shard.
  const bool training = master_.generator().training();
  const Tensor noise =
      training ? nn::DrawBinaryMaskNoise(Shape{b, batch.max_len()},
                                         master_.rng())
               : Tensor();

  for (ag::Variable& p : master_params_) p.ZeroGrad();

  std::vector<double> shard_loss(shards, 0.0);
  sync::Mutex reduce_mu(sync::Rank::kStats, "train.reduce");
  const bool deterministic = config_.deterministic_reduce;
  for (int64_t s = 0; s < shards; ++s) {
    pool_->Submit([this, s, b, training, deterministic, &row_sets, &batch,
                   &noise, &shard_loss, &reduce_mu] {
      obs::Span shard_span("train.shard");
      RationalizerBase& replica = *replicas_[s];
      const std::vector<int64_t>& rows = row_sets[s];
      const data::Batch shard = data::SelectBatchRows(batch, rows);
      // Seeding the backward with |shard| / |batch| makes the reduced sum
      // the gradient of the per-example-mean batch loss.
      const float weight =
          static_cast<float>(rows.size()) / static_cast<float>(b);
      for (ag::Variable& p : replica_params_[s]) p.ZeroGrad();
      Tensor shard_noise;
      if (training) {
        shard_noise = SelectRows(noise, rows);
        replica.set_injected_mask_noise(&shard_noise);
      }
      ag::Variable loss = replica.TrainLoss(shard);
      replica.set_injected_mask_noise(nullptr);
      loss.Backward(Tensor(loss.value().shape(), weight));
      shard_loss[s] = static_cast<double>(weight) *
                      static_cast<double>(loss.value().item());
      if (!deterministic) {
        // Completion-order reduce: lower latency, float summation order
        // varies run to run. The mutex serializes AccumulateGrad calls into
        // the shared master leaves (see autograd/variable.h).
        sync::MutexLock lock(reduce_mu);
        AccumulateReplicaGradients(s);
      }
    });
  }
  pool_->Wait();
  if (deterministic) {
    // Barrier above, then fixed shard-order reduce: the summation tree is a
    // function of (num_shards, shard_policy) only, never of thread timing.
    obs::Span reduce_span("train.reduce");
    for (int64_t s = 0; s < shards; ++s) AccumulateReplicaGradients(s);
  }

  // Combine the per-shard loss breakdowns with the same weights the loss
  // reduction uses; valid only if every replica stashed one.
  last_batch_breakdown_ = LossBreakdown{};
  bool all_valid = true, all_align = true;
  for (int64_t s = 0; s < shards; ++s) {
    const LossBreakdown& bd = replicas_[s]->last_loss_breakdown();
    if (!bd.valid) {
      all_valid = false;
      break;
    }
    const double w = static_cast<double>(row_sets[s].size()) /
                     static_cast<double>(b);
    last_batch_breakdown_.task_ce += static_cast<float>(w * bd.task_ce);
    last_batch_breakdown_.omega += static_cast<float>(w * bd.omega);
    last_batch_breakdown_.sparsity += static_cast<float>(w * bd.sparsity);
    if (bd.has_align) {
      last_batch_breakdown_.align_ce += static_cast<float>(w * bd.align_ce);
    } else {
      all_align = false;
    }
  }
  last_batch_breakdown_.valid = all_valid;
  last_batch_breakdown_.has_align = all_valid && all_align;

  double total = 0.0;
  for (int64_t s = 0; s < shards; ++s) total += shard_loss[s];
  return static_cast<float>(total);
}

void DataParallelTrainer::BroadcastParameters() {
  for (size_t s = 0; s < replicas_.size(); ++s) {
    std::vector<ag::Variable>& rep = replica_params_[s];
    for (size_t j = 0; j < master_params_.size(); ++j) {
      rep[j].mutable_value() = master_params_[j].value();
    }
  }
}

int64_t DataParallelTrainer::num_replicas() {
  EnsureReplicas();
  return static_cast<int64_t>(replicas_.size());
}

uint64_t DataParallelTrainer::ReplicaChecksum(int64_t i) {
  EnsureReplicas();
  DAR_CHECK(i >= 0 && i < static_cast<int64_t>(replicas_.size()));
  return ParameterChecksum(*replicas_[i]);
}

TrainRun DataParallelTrainer::Fit(const datasets::SyntheticDataset& dataset,
                                  bool verbose, obs::TrainObserver* observer) {
  const TrainConfig& config = master_.config();
  master_.Prepare(dataset);
  // Replicas must mirror the post-Prepare() state (DAR pretrains and
  // freezes its discriminator there), so rebuild any that were created
  // earlier, e.g. by an introspection call.
  replicas_.clear();
  replica_params_.clear();
  master_params_.clear();
  pool_.reset();
  EnsureReplicas();

  // Telemetry fan-out, mirroring the sequential Fit(): the classic verbose
  // console line is an observer; the display tag carries the shard count.
  obs::ConsoleTrainLogger console(obs::LogLevel::kInfo);
  obs::MultiTrainObserver observers;
  if (verbose) observers.Add(&console);
  observers.Add(observer);
  const bool observing = !observers.empty();
  const std::string model_tag =
      master_.name() + " x" + std::to_string(num_shards_);
  // The probe trains on its own RNG streams and only measures on the
  // master, so the sharded trajectory stays bit-identical with or without
  // it (asserted in tests/obs_test.cc via the num_shards=1 equivalence).
  std::unique_ptr<RationaleShiftProbe> probe;
  if (observing && observers.WantsRationaleShift()) {
    probe = std::make_unique<RationaleShiftProbe>(master_, dataset);
  }

  optim::Adam adam(master_params_, {.lr = config.lr});
  data::DataLoader train_loader(dataset.train, config.batch_size,
                                /*shuffle=*/true);

  TrainRun run;
  std::vector<Tensor> best_values;
  EpochTelemetryAccumulator epoch_acc;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    master_.SetTraining(true);
    SetReplicasTraining(true);
    double loss_sum = 0.0;
    int64_t batches = 0;
    for (const data::Batch& batch : train_loader.Epoch(master_.rng())) {
      obs::Span batch_span("train.batch");
      const float batch_loss = ReduceGradientsForBatch(batch);
      const float grad_norm =
          optim::ClipGradNorm(master_params_, config.grad_clip);
      {
        obs::Span step_span("train.step");
        adam.Step();
      }
      {
        obs::Span broadcast_span("train.broadcast");
        BroadcastParameters();
      }
      ++step_;
      if (post_step_hook_) post_step_hook_(step_);
      loss_sum += static_cast<double>(batch_loss);
      ++batches;
      if (observing) {
        obs::BatchTelemetry telemetry =
            MakeBatchTelemetry(epoch, batches - 1, batch_loss, grad_norm,
                               last_batch_breakdown_);
        if (probe != nullptr) {
          telemetry.rationale_shift = probe->MeasureShift(master_, batch);
          telemetry.has_shift = true;
        }
        observers.OnBatch(telemetry);
        epoch_acc.Add(telemetry);
      }
    }

    master_.SetTraining(false);
    float dev_acc;
    {
      obs::Span eval_span("train.eval");
      dev_acc =
          EvaluateRationaleAccuracy(master_, dataset.dev, config.batch_size);
    }
    EpochStats stats;
    stats.train_loss =
        static_cast<float>(loss_sum / std::max<int64_t>(batches, 1));
    stats.dev_acc = dev_acc;
    run.epochs.push_back(stats);
    // Same tie-break as the sequential Fit: >= keeps later epochs.
    if (dev_acc >= run.best_dev_acc || run.best_epoch < 0) {
      run.best_dev_acc = dev_acc;
      run.best_epoch = epoch;
      best_values = SnapshotValues(master_params_);
    }
    if (observing) {
      observers.OnEpoch(
          epoch_acc.Finish(epoch, model_tag, stats.train_loss, dev_acc));
    }
  }
  if (!best_values.empty()) RestoreValues(master_params_, best_values);
  master_.SetTraining(false);
  BroadcastParameters();
  SetReplicasTraining(false);
  return run;
}

}  // namespace core
}  // namespace dar
