// Skewed initializations for the synthetic rationale-shift settings
// (paper Section V-C, Tables VII and VIII).
#ifndef DAR_CORE_SKEW_H_
#define DAR_CORE_SKEW_H_

#include <cstdint>

#include "core/generator.h"
#include "core/predictor.h"
#include "datasets/synthetic_review.h"

namespace dar {
namespace core {

/// Mask selecting only each example's first sentence (tokens up to and
/// including the first `period_id`).
Tensor FirstSentenceMask(const data::Batch& batch, int64_t period_id);

/// Skewed-predictor setting (Table VII): pretrains `predictor` for
/// `epochs` epochs using only the first sentence of each input. In
/// BeerAdvocate the first sentence is about appearance, so on Aroma/Palate
/// the predictor overfits an uninformative aspect — the "interlocking"
/// obstacle of A2R. Batch size 500 / lr 1e-3 match the paper's protocol.
/// Returns the predictor's dev accuracy under the first-sentence mask.
float SkewPredictorPretrain(Predictor& predictor,
                            const datasets::SyntheticDataset& dataset,
                            int64_t epochs, Pcg32& rng,
                            int64_t batch_size = 500, float lr = 1e-3f);

/// Skewed-generator setting (Table VIII): pretrains `generator` so that
/// its selection of the *first token* leaks the label (select token 0 for
/// class 1, deselect for class 0), stopping once that degenerate
/// "classifier" reaches `accuracy_threshold` on the training set. Returns
/// the achieved accuracy (the paper's Pre_acc).
float SkewGeneratorPretrain(Generator& generator,
                            const datasets::SyntheticDataset& dataset,
                            float accuracy_threshold, Pcg32& rng,
                            int64_t max_epochs = 50, int64_t batch_size = 128,
                            float lr = 1e-3f);

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_SKEW_H_
