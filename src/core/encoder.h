// Pluggable sequence encoders for the rationalization players.
#ifndef DAR_CORE_ENCODER_H_
#define DAR_CORE_ENCODER_H_

#include <memory>

#include "core/train_config.h"
#include "nn/gru.h"
#include "nn/module.h"
#include "nn/transformer.h"

namespace dar {
namespace core {

/// Abstract contextual encoder: embedded tokens [B, T, E] -> states
/// [B, T, output_dim]. Both the generator and the predictors are built on
/// this interface so the GRU and Transformer (Table VI) settings share all
/// game logic.
class SequenceEncoder : public nn::Module {
 public:
  virtual ag::Variable Encode(const ag::Variable& x,
                              const Tensor& valid) const = 0;
  virtual int64_t output_dim() const = 0;
};

/// Bidirectional GRU encoder (the paper's main setting).
class GruEncoder : public SequenceEncoder {
 public:
  GruEncoder(int64_t input_dim, int64_t hidden_dim, Pcg32& rng);

  ag::Variable Encode(const ag::Variable& x, const Tensor& valid) const override;
  int64_t output_dim() const override { return gru_.output_dim(); }

 private:
  nn::BiGru gru_;
};

/// Transformer encoder with an input projection (the BERT stand-in).
class TransformerSeqEncoder : public SequenceEncoder {
 public:
  TransformerSeqEncoder(int64_t input_dim, const nn::TransformerConfig& config,
                        Pcg32& rng);

  ag::Variable Encode(const ag::Variable& x, const Tensor& valid) const override;
  int64_t output_dim() const override { return transformer_.output_dim(); }

  nn::TransformerEncoder& transformer() { return transformer_; }

 private:
  int64_t input_dim_;
  nn::Linear input_proj_;
  nn::TransformerEncoder transformer_;
};

/// Builds the encoder selected by `config.encoder`.
std::unique_ptr<SequenceEncoder> MakeEncoder(const TrainConfig& config,
                                             Pcg32& rng);

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_ENCODER_H_
