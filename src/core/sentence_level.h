// Sentence-level rationale selection.
//
// The paper's Table II quotes RNP* and A2R* rows with "os" (one sentence)
// selection: instead of a free token mask, the generator picks exactly one
// sentence as the rationale (the original A2R protocol on BeerAdvocate,
// whose annotations are sentence-level). This module provides:
//
//   * sentence segmentation of padded batches (split on the period token),
//   * a straight-through categorical sentence sampler built on the token
//     generator's logits (sentence score = mean token score), and
//   * SentenceRnpModel / SentenceA2rModel, the starred baselines.
#ifndef DAR_CORE_SENTENCE_LEVEL_H_
#define DAR_CORE_SENTENCE_LEVEL_H_

#include <vector>

#include "core/rationalizer.h"

namespace dar {
namespace core {

/// Half-open token span [begin, end) of one sentence.
struct SentenceSpan {
  int64_t begin = 0;
  int64_t end = 0;
};

/// Segments each example of a batch into sentences: a sentence ends at a
/// `period_id` token (inclusive) or at the last valid token. Every valid
/// token belongs to exactly one span.
std::vector<std::vector<SentenceSpan>> SegmentSentences(
    const data::Batch& batch, int64_t period_id);

/// Samples a one-sentence rationale mask from per-token selection logits.
///
/// Sentence scores are the mean of their tokens' logits; training mode
/// perturbs scores with Gumbel noise (categorical Gumbel-max) and the hard
/// one-sentence token mask passes gradients straight through to the soft
/// sentence distribution; eval mode picks the argmax sentence.
nn::GumbelMask SampleOneSentenceMask(
    const ag::Variable& token_logits,
    const std::vector<std::vector<SentenceSpan>>& sentences,
    const Tensor& valid, float tau, bool training, Pcg32& rng);

/// RNP with one-sentence selection (the paper's RNP* protocol).
class SentenceRnpModel : public RationalizerBase {
 public:
  SentenceRnpModel(Tensor embeddings, TrainConfig config, int64_t period_id);

  ag::Variable TrainLoss(const data::Batch& batch) override;
  /// Test-time selection: the argmax sentence under the soft distribution.
  Tensor EvalMaskFromStatesConst(const data::Batch& batch,
                                 const Tensor& gen_states) const override;

 protected:
  /// Shared by the A2R variant: sample mask + predictor CE (no Omega —
  /// the one-sentence constraint already fixes sparsity and coherence).
  ag::Variable SentenceCoreLoss(const data::Batch& batch,
                                nn::GumbelMask* mask_out,
                                ag::Variable* logits_out);

  int64_t period_id_;
};

/// A2R with one-sentence selection (the paper's A2R* protocol): the
/// auxiliary predictor reads the input weighted by the *soft* sentence
/// distribution, tied to the hard-path predictor by JS divergence.
class SentenceA2rModel : public SentenceRnpModel {
 public:
  SentenceA2rModel(Tensor embeddings, TrainConfig config, int64_t period_id);

  ag::Variable TrainLoss(const data::Batch& batch) override;
  std::vector<ag::Variable> TrainableParameters() const override;
  void SetTraining(bool training) override;
  int64_t NumModules() const override { return 3; }
  int64_t TotalParameters() const override;

 private:
  Predictor soft_predictor_;
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_SENTENCE_LEVEL_H_
