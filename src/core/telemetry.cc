#include "core/telemetry.h"

#include <cmath>

#include "core/trainer.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace core {

RationaleShiftProbe::RationaleShiftProbe(
    const RationalizerBase& model, const datasets::SyntheticDataset& dataset)
    // The stream constants only have to differ from the model's (0xda5 in
    // RationalizerBase) so probe pretraining never replays model noise.
    : init_rng_(model.config().seed, /*stream=*/0x0b5e),
      probe_(model.embeddings(), model.config(), init_rng_) {
  const TrainConfig& config = model.config();
  Pcg32 train_rng(config.seed, /*stream=*/0x0b5f);
  dev_acc_ = FitFullTextPredictor(probe_, dataset, config.pretrain_epochs,
                                  config.batch_size, config.lr, train_rng);
  probe_.SetRequiresGrad(false);
  probe_.SetTraining(false);
}

double RationaleShiftProbe::MeasureShift(RationalizerBase& model,
                                         const data::Batch& batch) {
  // The frozen probe reads the model's deterministic rationale and the
  // full input. EvalMask toggles eval mode around the computation and
  // restores the previous mode, so calling this mid-training is
  // side-effect free.
  Tensor mask = model.EvalMask(batch);
  Tensor rationale_logits = probe_.ForwardWithConstMask(batch, mask).value();
  Tensor full_logits = probe_.ForwardFullText(batch).value();

  // Cross-entropy gap: how much label cross-entropy the probe loses when
  // it reads the rationale instead of the full input. A semantically
  // aligned rationale carries the evidence the full-text reader keys on
  // (gap ~ 0); a deviated rationale is legible only to the predictor that
  // drifted with the generator, and the probe falls back toward chance.
  // Comparing the probe against itself keeps the trained predictor's
  // confidence and accuracy out of the gauge entirely.
  Tensor log_z = LogSoftmaxRows(rationale_logits);
  Tensor log_x = LogSoftmaxRows(full_logits);
  const int64_t rows = log_z.size(0);
  double gap_sum = 0.0;
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t label = batch.labels[static_cast<size_t>(i)];
    gap_sum += static_cast<double>(log_x.at(i, label)) -
               static_cast<double>(log_z.at(i, label));
  }
  double gap = rows > 0 ? gap_sum / static_cast<double>(rows) : 0.0;
  // The gap can dip below zero (a lucky rationale can read better than the
  // full text); zero is the aligned floor the gauge reports.
  return gap > 0.0 ? gap : 0.0;
}

void EpochTelemetryAccumulator::Add(const obs::BatchTelemetry& batch) {
  ++batches_;
  grad_norm_ += batch.grad_norm;
  if (batch.has_breakdown) {
    ++breakdown_batches_;
    task_ce_ += batch.task_ce;
    omega_ += batch.omega;
    sparsity_ += batch.sparsity;
  }
  if (batch.has_align) {
    ++align_batches_;
    align_ce_ += batch.align_ce;
  }
  if (batch.has_shift) {
    ++shift_batches_;
    shift_ += batch.rationale_shift;
  }
}

obs::EpochTelemetry EpochTelemetryAccumulator::Finish(
    int64_t epoch, const std::string& model, double train_loss,
    double dev_acc) {
  obs::EpochTelemetry t;
  t.epoch = epoch;
  t.batches = batches_;
  t.model = model;
  t.train_loss = train_loss;
  t.dev_acc = dev_acc;
  if (batches_ > 0) t.grad_norm = grad_norm_ / batches_;
  if (breakdown_batches_ > 0) {
    t.has_breakdown = true;
    t.task_ce = task_ce_ / breakdown_batches_;
    t.omega = omega_ / breakdown_batches_;
    t.sparsity = sparsity_ / breakdown_batches_;
  }
  if (align_batches_ > 0) {
    t.has_align = true;
    t.align_ce = align_ce_ / align_batches_;
  }
  if (shift_batches_ > 0) {
    t.has_shift = true;
    t.rationale_shift = shift_ / shift_batches_;
  }
  *this = EpochTelemetryAccumulator();
  return t;
}

obs::BatchTelemetry MakeBatchTelemetry(int64_t epoch, int64_t batch,
                                       double loss, double grad_norm,
                                       const LossBreakdown& breakdown) {
  obs::BatchTelemetry t;
  t.epoch = epoch;
  t.batch = batch;
  t.loss = loss;
  t.grad_norm = grad_norm;
  if (breakdown.valid) {
    t.has_breakdown = true;
    t.task_ce = breakdown.task_ce;
    t.omega = breakdown.omega;
    t.sparsity = breakdown.sparsity;
    if (breakdown.has_align) {
      t.has_align = true;
      t.align_ce = breakdown.align_ce;
    }
  }
  return t;
}

}  // namespace core
}  // namespace dar
