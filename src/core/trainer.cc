#include "core/trainer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "check/graph_audit.h"
#include "core/parallel_trainer.h"
#include "core/telemetry.h"
#include "data/dataloader.h"
#include "nn/loss.h"
#include "obs/trace.h"
#include "optim/adam.h"
#include "optim/clip.h"
#include "serve/thread_pool.h"
#include "sync/mutex.h"
#include "tensor/check.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace core {

namespace {

/// Snapshot/restore of parameter values for best-epoch selection.
std::vector<Tensor> SnapshotValues(const std::vector<ag::Variable>& params) {
  std::vector<Tensor> values;
  values.reserve(params.size());
  for (const ag::Variable& p : params) values.push_back(p.value());
  return values;
}

void RestoreValues(std::vector<ag::Variable>& params,
                   const std::vector<Tensor>& values) {
  DAR_CHECK_EQ(params.size(), values.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = values[i];
  }
}

/// TrainConfig::audit_first_step: cross-check the optimizer's parameter
/// list against the recorded tape once, on step 0, right after the first
/// Backward(). Any finding (orphaned parameter, missing/stale/doubled
/// gradient, shape mismatch, NaN/Inf) aborts before the first optimizer
/// step can bake the defect into the weights. Runs before gradient
/// clipping so the audited gradients are exactly what Backward produced.
void AuditFirstStepOrDie(RationalizerBase& model, const ag::Variable& loss) {
  check::AuditReport report =
      check::AuditGraph(loss, model.NamedTrainableParameters());
  if (report.clean()) return;
  std::fprintf(stderr,
               "audit_first_step: training-graph audit of %s failed on "
               "step 0:\n%s",
               model.name().c_str(), report.ToString().c_str());
  std::abort();
}

}  // namespace

TrainRun Fit(RationalizerBase& model, const datasets::SyntheticDataset& dataset,
             bool verbose, obs::TrainObserver* observer) {
  const TrainConfig& config = model.config();
  // Kernel-thread knob: applied at entry (a quiesced point — no forward is
  // in flight). Bit-identical for any value, so training results do not
  // depend on it.
  if (config.kernel_threads > 0) gemm::SetKernelThreads(config.kernel_threads);
  model.Prepare(dataset);

  // Telemetry fan-out: the classic verbose console line is itself a
  // TrainObserver now; user observers ride alongside it.
  obs::ConsoleTrainLogger console(obs::LogLevel::kInfo);
  obs::MultiTrainObserver observers;
  if (verbose) observers.Add(&console);
  observers.Add(observer);
  const bool observing = !observers.empty();
  // The rationale-shift gauge needs a frozen full-text probe; it trains on
  // its own RNG streams, so building it never perturbs the model's
  // trajectory (telemetry stays passive).
  std::unique_ptr<RationaleShiftProbe> probe;
  if (observing && observers.WantsRationaleShift()) {
    probe = std::make_unique<RationaleShiftProbe>(model, dataset);
  }

  std::vector<ag::Variable> params = model.TrainableParameters();
  optim::Adam adam(params, {.lr = config.lr});
  data::DataLoader train_loader(dataset.train, config.batch_size,
                                /*shuffle=*/true);

  TrainRun run;
  std::vector<Tensor> best_values;
  EpochTelemetryAccumulator epoch_acc;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    model.SetTraining(true);
    double loss_sum = 0.0;
    int64_t batches = 0;
    for (const data::Batch& batch : train_loader.Epoch(model.rng())) {
      obs::Span batch_span("train.batch");
      adam.ZeroGrad();
      ag::Variable loss = model.TrainLoss(batch);
      loss.Backward();
      if (config.audit_first_step && epoch == 0 && batches == 0) {
        AuditFirstStepOrDie(model, loss);
      }
      const float grad_norm = optim::ClipGradNorm(params, config.grad_clip);
      {
        obs::Span step_span("train.step");
        adam.Step();
      }
      loss_sum += loss.value().item();
      ++batches;
      if (observing) {
        obs::BatchTelemetry telemetry = MakeBatchTelemetry(
            epoch, batches - 1, loss.value().item(), grad_norm,
            model.last_loss_breakdown());
        if (probe != nullptr) {
          telemetry.rationale_shift = probe->MeasureShift(model, batch);
          telemetry.has_shift = true;
        }
        observers.OnBatch(telemetry);
        epoch_acc.Add(telemetry);
      }
    }

    model.SetTraining(false);
    float dev_acc;
    {
      obs::Span eval_span("train.eval");
      dev_acc =
          EvaluateRationaleAccuracy(model, dataset.dev, config.batch_size);
    }
    EpochStats stats;
    stats.train_loss = static_cast<float>(loss_sum / std::max<int64_t>(batches, 1));
    stats.dev_acc = dev_acc;
    run.epochs.push_back(stats);
    // >= breaks ties toward later epochs: dev accuracy saturates early on
    // the synthetic tasks while the rationale keeps refining under Omega.
    if (dev_acc >= run.best_dev_acc || run.best_epoch < 0) {
      run.best_dev_acc = dev_acc;
      run.best_epoch = epoch;
      best_values = SnapshotValues(params);
    }
    if (observing) {
      observers.OnEpoch(epoch_acc.Finish(epoch, model.name(),
                                         stats.train_loss, dev_acc));
    }
  }
  if (!best_values.empty()) RestoreValues(params, best_values);
  model.SetTraining(false);
  return run;
}

TrainRun Fit(RationalizerBase& model, const datasets::SyntheticDataset& dataset,
             const ParallelTrainConfig& parallel, bool verbose,
             obs::TrainObserver* observer) {
  DataParallelTrainer trainer(model, parallel);
  return trainer.Fit(dataset, verbose, observer);
}

float FitPredictorWithMask(Predictor& predictor,
                           const datasets::SyntheticDataset& dataset,
                           int64_t epochs, int64_t batch_size, float lr,
                           Pcg32& rng, MaskFn mask_fn, const void* mask_ctx) {
  std::vector<ag::Variable> params;
  for (const nn::NamedParameter& p : predictor.Parameters()) {
    if (p.variable.requires_grad()) params.push_back(p.variable);
  }
  optim::Adam adam(params, {.lr = lr});
  data::DataLoader train_loader(dataset.train, batch_size, /*shuffle=*/true);
  data::DataLoader dev_loader(dataset.dev, batch_size, /*shuffle=*/false);

  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    predictor.SetTraining(true);
    for (const data::Batch& batch : train_loader.Epoch(rng)) {
      adam.ZeroGrad();
      Tensor mask = mask_fn ? mask_fn(batch, mask_ctx) : batch.valid;
      ag::Variable logits = predictor.ForwardWithConstMask(batch, mask);
      ag::Variable loss = nn::CrossEntropy(logits, batch.labels);
      loss.Backward();
      optim::ClipGradNorm(params, 5.0f);
      adam.Step();
    }
  }

  predictor.SetTraining(false);
  int64_t correct = 0, total = 0;
  for (const data::Batch& batch : dev_loader.Sequential()) {
    Tensor mask = mask_fn ? mask_fn(batch, mask_ctx) : batch.valid;
    Tensor logits = predictor.ForwardWithConstMask(batch, mask).value();
    float acc = nn::Accuracy(logits, batch.labels);
    correct += static_cast<int64_t>(acc * static_cast<float>(batch.batch_size()) + 0.5f);
    total += batch.batch_size();
  }
  return total > 0 ? static_cast<float>(correct) / static_cast<float>(total)
                   : 0.0f;
}

float FitFullTextPredictor(Predictor& predictor,
                           const datasets::SyntheticDataset& dataset,
                           int64_t epochs, int64_t batch_size, float lr,
                           Pcg32& rng) {
  return FitPredictorWithMask(predictor, dataset, epochs, batch_size, lr, rng,
                              /*mask_fn=*/nullptr, /*mask_ctx=*/nullptr);
}

float FitPredictorWithMaskParallel(Predictor& predictor,
                                   const Tensor& embeddings,
                                   const TrainConfig& config,
                                   const datasets::SyntheticDataset& dataset,
                                   int64_t epochs, int64_t batch_size, float lr,
                                   Pcg32& rng,
                                   const ParallelTrainConfig& parallel,
                                   MaskFn mask_fn, const void* mask_ctx) {
  const int num_workers = std::max(1, parallel.num_workers);
  const int64_t num_shards =
      parallel.num_shards > 0 ? parallel.num_shards : num_workers;

  // Replica predictors: architecture from (embeddings, config), state
  // mirrored from the master. The init RNG only feeds initial weights that
  // CopyStateFrom immediately overwrites.
  std::vector<std::unique_ptr<Predictor>> replicas;
  Pcg32 init_rng(config.seed);
  replicas.reserve(num_shards);
  for (int64_t s = 0; s < num_shards; ++s) {
    replicas.push_back(
        std::make_unique<Predictor>(embeddings, config, init_rng));
    replicas.back()->CopyStateFrom(predictor);
  }

  std::vector<ag::Variable> params;
  for (const nn::NamedParameter& p : predictor.Parameters()) {
    if (p.variable.requires_grad()) params.push_back(p.variable);
  }
  optim::Adam adam(params, {.lr = lr});
  data::DataLoader train_loader(dataset.train, batch_size, /*shuffle=*/true);
  data::DataLoader dev_loader(dataset.dev, batch_size, /*shuffle=*/false);
  serve::ThreadPool pool(num_workers);
  sync::Mutex reduce_mu(sync::Rank::kStats, "train.reduce");

  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    predictor.SetTraining(true);
    for (std::unique_ptr<Predictor>& replica : replicas) {
      replica->SetTraining(true);
    }
    for (const data::Batch& batch : train_loader.Epoch(rng)) {
      adam.ZeroGrad();
      const int64_t b = batch.batch_size();
      const std::vector<std::vector<int64_t>> row_sets =
          ShardRowSets(b, num_shards, parallel.shard_policy);
      for (size_t s = 0; s < row_sets.size(); ++s) {
        pool.Submit([&, s] {
          Predictor& replica = *replicas[s];
          replica.ZeroGrad();
          const data::Batch shard = data::SelectBatchRows(batch, row_sets[s]);
          const float weight = static_cast<float>(row_sets[s].size()) /
                               static_cast<float>(b);
          // mask_fn is evaluated on the shard sub-batch; all built-in mask
          // policies are row-wise, so this equals slicing the full mask.
          Tensor mask = mask_fn ? mask_fn(shard, mask_ctx) : shard.valid;
          ag::Variable logits = replica.ForwardWithConstMask(shard, mask);
          ag::Variable loss = nn::CrossEntropy(logits, shard.labels);
          loss.Backward(Tensor(loss.value().shape(), weight));
          if (!parallel.deterministic_reduce) {
            sync::MutexLock lock(reduce_mu);
            predictor.AccumulateGradientsFrom(replica);
          }
        });
      }
      pool.Wait();
      if (parallel.deterministic_reduce) {
        for (size_t s = 0; s < row_sets.size(); ++s) {
          predictor.AccumulateGradientsFrom(*replicas[s]);
        }
      }
      optim::ClipGradNorm(params, 5.0f);
      adam.Step();
      for (std::unique_ptr<Predictor>& replica : replicas) {
        replica->CopyParametersFrom(predictor);
      }
    }
  }

  // Same sequential dev evaluation as FitPredictorWithMask.
  predictor.SetTraining(false);
  int64_t correct = 0, total = 0;
  for (const data::Batch& batch : dev_loader.Sequential()) {
    Tensor mask = mask_fn ? mask_fn(batch, mask_ctx) : batch.valid;
    Tensor logits = predictor.ForwardWithConstMask(batch, mask).value();
    float acc = nn::Accuracy(logits, batch.labels);
    correct += static_cast<int64_t>(acc * static_cast<float>(batch.batch_size()) + 0.5f);
    total += batch.batch_size();
  }
  return total > 0 ? static_cast<float>(correct) / static_cast<float>(total)
                   : 0.0f;
}

float FitFullTextPredictorParallel(Predictor& predictor,
                                   const Tensor& embeddings,
                                   const TrainConfig& config,
                                   const datasets::SyntheticDataset& dataset,
                                   int64_t epochs, int64_t batch_size, float lr,
                                   Pcg32& rng,
                                   const ParallelTrainConfig& parallel) {
  return FitPredictorWithMaskParallel(predictor, embeddings, config, dataset,
                                      epochs, batch_size, lr, rng, parallel,
                                      /*mask_fn=*/nullptr,
                                      /*mask_ctx=*/nullptr);
}

float EvaluateRationaleAccuracy(RationalizerBase& model,
                                const std::vector<data::Example>& examples,
                                int64_t batch_size) {
  data::DataLoader loader(examples, batch_size, /*shuffle=*/false);
  int64_t correct = 0, total = 0;
  for (const data::Batch& batch : loader.Sequential()) {
    Tensor mask = model.EvalMask(batch);
    Tensor logits = model.PredictLogits(batch, mask);
    std::vector<int64_t> preds = ArgMaxRows(logits);
    for (size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
    total += batch.batch_size();
  }
  return total > 0 ? static_cast<float>(correct) / static_cast<float>(total)
                   : 0.0f;
}

}  // namespace core
}  // namespace dar
