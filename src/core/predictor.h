// The predictor f_P (and the architecture of DAR's predictor^t).
#ifndef DAR_CORE_PREDICTOR_H_
#define DAR_CORE_PREDICTOR_H_

#include <memory>

#include "core/encoder.h"
#include "core/train_config.h"
#include "data/batch.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace dar {
namespace core {

/// Predictor: embeds tokens, zeroes unselected positions (Z = M ⊙ X,
/// eq. 1), encodes, masked-max-pools, and classifies.
///
/// The same class serves as RNP's predictor, DAR's frozen predictor^t
/// (constructed identically, pretrained on the all-ones mask, then frozen),
/// and every baseline's auxiliary predictors.
class Predictor : public nn::Module {
 public:
  Predictor(Tensor pretrained_embeddings, const TrainConfig& config,
            Pcg32& rng);

  /// Class logits [B, num_classes] for the rationale selected by `mask`
  /// [B, T] (a Variable so generator gradients flow through the masking).
  ag::Variable Forward(const data::Batch& batch, const ag::Variable& mask) const;

  /// Logits for a constant mask (no gradient into the mask).
  ag::Variable ForwardWithConstMask(const data::Batch& batch,
                                    const Tensor& mask) const;

  /// Post-encoder hidden states [B, T, output_dim] over the masked input
  /// Z = M ⊙ X — the first half of ForwardWithConstMask. When `embedded`
  /// is non-null it replaces the embedding-table lookup for batch.tokens
  /// (values must equal the table rows; the serving cache assembles it
  /// from cached rows).
  ag::Variable EncodeWithConstMask(const data::Batch& batch,
                                   const Tensor& mask,
                                   const Tensor* embedded = nullptr) const;

  /// Pool + classification head over precomputed encoder states — the
  /// second half of ForwardWithConstMask, as a const tensor stage:
  /// LogitsFromStatesConst(EncodeWithConstMask(b, m).value(), b.valid) is
  /// bit-identical to ForwardWithConstMask(b, m).value(), which is what
  /// lets the serving cache store states and re-run only the head.
  Tensor LogitsFromStatesConst(const Tensor& states,
                               const Tensor& valid) const;

  /// Logits with the full input visible (mask = validity mask). This is the
  /// "accuracy on full text" probe (Fig. 3) and predictor^t pretraining
  /// input (eq. 4).
  ag::Variable ForwardFullText(const data::Batch& batch) const;

  /// Logits for a *context-intervened* rationale: selected positions keep
  /// the batch's own tokens, unselected positions take `alt_tokens`'
  /// embeddings instead of zeros. Inter_RAT's backdoor-adjustment
  /// approximation resamples the non-rationale context this way.
  ag::Variable ForwardMixed(const data::Batch& batch,
                            const std::vector<std::vector<int64_t>>& alt_tokens,
                            const ag::Variable& mask) const;

  /// The contextual encoder (mutable: pretraining warm-starts copy into it).
  SequenceEncoder& encoder() { return *encoder_; }

  const nn::Embedding& embedding() const { return embedding_; }

 private:
  TrainConfig config_;
  nn::Embedding embedding_;
  std::unique_ptr<SequenceEncoder> encoder_;
  nn::Linear head_;
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_PREDICTOR_H_
