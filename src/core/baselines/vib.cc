#include "core/baselines/vib.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "nn/loss.h"
#include "tensor/check.h"

namespace dar {
namespace core {

Tensor BudgetTopKMask(const Tensor& scores, const Tensor& valid,
                      float fraction) {
  DAR_CHECK(scores.shape() == valid.shape());
  DAR_CHECK(fraction > 0.0f && fraction <= 1.0f);
  int64_t b = scores.size(0), t = scores.size(1);
  Tensor mask(scores.shape());
  for (int64_t i = 0; i < b; ++i) {
    std::vector<std::pair<float, int64_t>> order;
    int64_t len = 0;
    for (int64_t j = 0; j < t; ++j) {
      if (valid.at(i, j) > 0.0f) {
        order.emplace_back(scores.at(i, j), j);
        ++len;
      }
    }
    int64_t k = std::max<int64_t>(
        1, static_cast<int64_t>(fraction * static_cast<float>(len) + 0.5f));
    k = std::min(k, len);
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [](const auto& a, const auto& b) { return a.first > b.first; });
    for (int64_t j = 0; j < k; ++j) mask.at(i, order[static_cast<size_t>(j)].second) = 1.0f;
  }
  return mask;
}

VibModel::VibModel(Tensor embeddings, TrainConfig config)
    : RationalizerBase(std::move(embeddings), config, "VIB") {}

ag::Variable VibModel::TrainLoss(const data::Batch& batch) {
  nn::GumbelMask mask = generator_.SampleMask(batch, rng_);
  // The predictor reads the *soft* bottlenecked input.
  ag::Variable logits = predictor_.Forward(batch, mask.soft);
  ag::Variable ce = nn::CrossEntropy(logits, batch.labels);
  // Keep the KL on valid positions: pull padded probabilities (exact zeros
  // after masking) out of the penalty by restricting to a valid-weighted
  // mean. A small clamp keeps log finite.
  ag::Variable prior_kl = nn::BernoulliKl(
      ag::AddScalar(ag::MulScalar(mask.soft, 0.998f), 0.001f),
      config_.sparsity_target);
  return ag::Add(ce, ag::MulScalar(prior_kl, config_.aux_weight));
}

Tensor VibModel::EvalMaskFromStatesConst(const data::Batch& batch,
                                         const Tensor& gen_states) const {
  Tensor scores =
      generator_
          .SelectionLogitsFromStates(ag::Variable::Constant(gen_states))
          .value();
  return BudgetTopKMask(scores, batch.valid, config_.sparsity_target);
}

}  // namespace core
}  // namespace dar
