// 3PLAYER — Introspective extraction and complement control
// (Yu et al., EMNLP 2019).
//
// Adds a *complement* predictor that reads the unselected text X_{-Z}. The
// complement predictor minimizes its own cross-entropy; the generator
// adversarially maximizes it, squeezing all label-relevant information into
// the rationale. The paper's critique: this keeps information in but
// cannot keep noise out, so rationale shift persists.
#ifndef DAR_CORE_BASELINES_THREE_PLAYER_H_
#define DAR_CORE_BASELINES_THREE_PLAYER_H_

#include "core/rationalizer.h"

namespace dar {
namespace core {

/// Reimplementation of the 3PLAYER game:
///   CE(Y, P(Z)) + w * CE(Y, P_c(X_{-Z}))   [adversarial in M]  + Omega.
class ThreePlayerModel : public RationalizerBase {
 public:
  ThreePlayerModel(Tensor embeddings, TrainConfig config);

  ag::Variable TrainLoss(const data::Batch& batch) override;
  std::vector<ag::Variable> TrainableParameters() const override;
  void SetTraining(bool training) override;
  int64_t NumModules() const override { return 3; }
  int64_t TotalParameters() const override;

  Predictor& complement_predictor() { return complement_predictor_; }

 private:
  Predictor complement_predictor_;
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_BASELINES_THREE_PLAYER_H_
