#include "core/baselines/spectra.h"

#include <utility>

#include "core/baselines/vib.h"
#include "nn/loss.h"

namespace dar {
namespace core {

SpectraModel::SpectraModel(Tensor embeddings, TrainConfig config)
    : RationalizerBase(std::move(embeddings), config, "SPECTRA") {}

ag::Variable SpectraModel::TrainLoss(const data::Batch& batch) {
  ag::Variable scores = generator_.SelectionLogits(batch);
  ag::Variable soft = ag::Mul(ag::Sigmoid(scores),
                              ag::Variable::Constant(batch.valid));
  // Deterministic budgeted top-k with a straight-through relaxation:
  // forward value is the hard mask, backward gradient flows to `soft`.
  Tensor hard = BudgetTopKMask(soft.value(), batch.valid,
                               config_.sparsity_target);
  ag::Variable mask_st = ag::Add(ag::Sub(soft, soft.Detach()),
                                 ag::Variable::Constant(hard));

  ag::Variable logits = predictor_.Forward(batch, mask_st);
  ag::Variable ce = nn::CrossEntropy(logits, batch.labels);
  // The budget already fixes sparsity; only the coherence half of Omega is
  // meaningful here, which SparsityCoherencePenalty contributes (the
  // sparsity term is ~0 by construction).
  nn::GumbelMask mask{soft, mask_st};
  ag::Variable omega = SparsityCoherencePenalty(mask, batch.valid, config_);
  return ag::Add(ce, omega);
}

Tensor SpectraModel::EvalMaskFromStatesConst(const data::Batch& batch,
                                             const Tensor& gen_states) const {
  Tensor scores =
      generator_
          .SelectionLogitsFromStates(ag::Variable::Constant(gen_states))
          .value();
  return BudgetTopKMask(scores, batch.valid, config_.sparsity_target);
}

}  // namespace core
}  // namespace dar
